#ifndef QMQO_BENCH_BENCH_FIGURE_COMMON_H_
#define QMQO_BENCH_BENCH_FIGURE_COMMON_H_

/// \file bench_figure_common.h
/// Shared driver for the cost-vs-time figures (Figures 4 and 5): runs one
/// experiment class and prints (a) the per-milestone mean scaled cost of
/// every algorithm (the data behind the paper's sub-plots), (b) an ASCII
/// rendering of a representative instance, and (c) the paper's in-text
/// statistics (first-read quality, win counts, preprocessing times).

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/ascii_plot.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qmqo {
namespace bench {

inline int RunCostVsTimeFigure(const char* figure_name,
                               const PaperClass& cls, uint64_t seed) {
  Rng chip_rng(1);
  chimera::ChimeraGraph graph =
      chimera::ChimeraGraph::DWave2XWithDefects(&chip_rng);

  harness::ExperimentConfig config = MakeClassConfig(cls, seed);
  config.workload.num_queries = ClampQueries(graph, cls);

  std::printf("=== %s: %d queries, %d plans per query, %d instances ===\n",
              figure_name, config.workload.num_queries,
              cls.plans_per_query, config.num_instances);
  std::printf("classical budget per algorithm: %.0f ms%s\n",
              config.classical_time_limit_ms,
              FullScale() ? " (QMQO_BENCH_FULL)" :
                            " (set QMQO_BENCH_FULL=1 for paper scale)");
  std::printf("instance fan-out threads: %d (QMQO_BENCH_THREADS; QA results "
              "identical at any count, classical budgets are wall-clock)\n\n",
              config.num_threads);

  auto result = harness::RunExperimentClass(config, graph);
  if (!result.ok()) {
    std::printf("experiment failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Milestone table: mean scaled cost per algorithm, like reading the
  // paper's sub-plots at 1, 10, 100, ... ms.
  std::vector<double> milestones;
  for (double ms : harness::Trajectory::PaperMilestonesMs()) {
    if (ms <= config.classical_time_limit_ms * 10.0) milestones.push_back(ms);
  }
  std::vector<std::string> header = {"algorithm"};
  for (double ms : milestones) {
    header.push_back(StrFormat("%.0fms", ms));
  }
  header.push_back("final");
  TablePrinter table(header);

  const auto& first_run = result->instances.front();
  for (size_t series_index = 0; series_index < first_run.series.size();
       ++series_index) {
    std::vector<std::string> row = {first_run.series[series_index].name};
    for (double ms : milestones) {
      SummaryStats stats;
      for (const harness::InstanceRun& run : result->instances) {
        double cost = run.series[series_index].trajectory.CostAt(ms);
        if (std::isfinite(cost)) stats.Add(cost / run.scale_base);
      }
      row.push_back(stats.empty() ? std::string("-")
                                  : StrFormat("%.4f", stats.Mean()));
    }
    SummaryStats final_stats;
    for (const harness::InstanceRun& run : result->instances) {
      double cost = run.series[series_index].trajectory.FinalCost();
      if (std::isfinite(cost)) final_stats.Add(cost / run.scale_base);
    }
    row.push_back(final_stats.empty() ? std::string("-")
                                      : StrFormat("%.4f", final_stats.Mean()));
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("(scaled cost = cost / sum of each query's most expensive "
              "plan; QA times are modeled device time at 376us per read)\n\n");

  // Representative instance as an ASCII figure.
  std::vector<harness::PlotSeries> plot_series;
  for (const harness::AlgorithmSeries& series : first_run.series) {
    plot_series.push_back({series.name, &series.trajectory});
  }
  harness::PlotOptions plot_options;
  plot_options.min_time_ms = 0.1;
  plot_options.max_time_ms =
      std::max(1000.0, config.classical_time_limit_ms * 10.0);
  std::printf("%s\n",
              harness::RenderCostVsTime(plot_series, plot_options).c_str());

  // The paper's in-text statistics.
  SummaryStats first_gap;
  SummaryStats final_gap;
  SummaryStats preprocessing;
  int qa_first_beats_all_at_budget = 0;
  for (const harness::InstanceRun& run : result->instances) {
    if (run.qa_final_cost > 0.0) {
      first_gap.Add(100.0 * (run.qa_first_read_cost - run.qa_final_cost) /
                    run.qa_final_cost);
    }
    if (run.best_known_cost > 0.0) {
      final_gap.Add(100.0 * (run.qa_final_cost - run.best_known_cost) /
                    run.best_known_cost);
    }
    preprocessing.Add(run.preprocessing_ms);
    double classical_best = std::numeric_limits<double>::infinity();
    for (const harness::AlgorithmSeries& series : run.series) {
      if (series.device_time_axis) continue;
      classical_best = std::min(
          classical_best,
          series.trajectory.CostAt(config.classical_time_limit_ms));
    }
    if (run.qa_first_read_cost <= classical_best + 1e-9) {
      ++qa_first_beats_all_at_budget;
    }
  }
  std::printf("QA first-read vs QA final-cost gap:   %.2f%% mean "
              "(paper: 1.5%% over 1000 runs)\n",
              first_gap.Mean());
  std::printf("QA final vs best-known cost gap:      %.2f%% mean "
              "(paper: 0.4%% vs optimum)\n",
              final_gap.Mean());
  std::printf("instances where QA read #1 matches or beats every classical "
              "solver at its full budget: %d / %zu (paper: 13/20 at 10 s)\n",
              qa_first_beats_all_at_budget, result->instances.size());
  std::printf("mapping preprocessing time: %.1f - %.1f ms "
              "(paper: 112 - 135 ms, unoptimized)\n\n",
              preprocessing.Min(), preprocessing.Max());
  return 0;
}

}  // namespace bench
}  // namespace qmqo

#endif  // QMQO_BENCH_BENCH_FIGURE_COMMON_H_
