#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (e.g. BENCH_service.prom).

Usage:
    check_prom.py FILE [FILE...]

Checks, per file:
  * every line is a comment (# HELP / # TYPE), blank, or a sample line
    `name{labels} value` with a well-formed metric name, label syntax, and
    a parseable value (float, integer, +Inf, -Inf, NaN),
  * every sample's base family has a preceding # TYPE line,
  * TYPE values are one of counter/gauge/histogram/summary/untyped,
  * histogram families expose _bucket series with an `le` label,
    cumulative and ending in le="+Inf", plus _sum and _count,
  * counter and histogram-count values are non-negative.

Exits nonzero (listing every violation) when any check fails — CI runs
this after bench_service to guarantee the exposition endpoint's output
stays scrapeable.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
SAMPLE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                    r"(?:\{(?P<labels>.*)\})?"
                    r" (?P<value>\S+)$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN", "Inf"):
        return float(text.replace("Inf", "inf"))
    return float(text)  # raises ValueError on garbage


def family_of(name):
    """Histogram series name -> family: x_bucket/x_sum/x_count -> x."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        return [f"{path}: cannot read: {error}"]

    types = {}  # family -> declared type
    histogram_buckets = {}  # family -> list of (le, value)
    histogram_parts = {}  # family -> set of seen suffixes
    samples = 0

    for number, line in enumerate(lines, start=1):
        where = f"{path}:{number}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                    errors.append(f"{where}: malformed {parts[1]} line")
                elif parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in TYPES:
                        errors.append(f"{where}: unknown TYPE "
                                      f"{parts[3] if len(parts) > 3 else '?'}")
                    else:
                        types[parts[2]] = parts[3]
            continue

        match = SAMPLE.match(line)
        if not match:
            errors.append(f"{where}: unparseable sample line: {line!r}")
            continue
        samples += 1
        name = match.group("name")
        labels = {}
        if match.group("labels") is not None:
            for pair in split_labels(match.group("labels")):
                if not LABEL.match(pair):
                    errors.append(f"{where}: malformed label {pair!r}")
                else:
                    key, value = pair.split("=", 1)
                    labels[key] = value[1:-1]
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            errors.append(f"{where}: unparseable value "
                          f"{match.group('value')!r}")
            continue

        family = family_of(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            errors.append(f"{where}: sample {name!r} has no preceding "
                          "# TYPE line")
            continue
        if declared == "counter" and value < 0:
            errors.append(f"{where}: counter {name!r} is negative")
        if declared == "histogram":
            histogram_parts.setdefault(family, set())
            if name.endswith("_bucket"):
                histogram_parts[family].add("_bucket")
                if "le" not in labels:
                    errors.append(f"{where}: histogram bucket without an "
                                  "'le' label")
                else:
                    histogram_buckets.setdefault(family, []).append(
                        (labels["le"], value))
            elif name.endswith("_sum"):
                histogram_parts[family].add("_sum")
            elif name.endswith("_count"):
                histogram_parts[family].add("_count")
                if value < 0:
                    errors.append(f"{where}: histogram count {name!r} is "
                                  "negative")
            else:
                errors.append(f"{where}: series {name!r} of histogram "
                              f"family {family!r} is not "
                              "_bucket/_sum/_count")

    for family, parts in sorted(histogram_parts.items()):
        missing = {"_bucket", "_sum", "_count"} - parts
        if missing:
            errors.append(f"{path}: histogram {family!r} is missing "
                          f"{sorted(missing)} series")
    for family, buckets in sorted(histogram_buckets.items()):
        if buckets and buckets[-1][0] != "+Inf":
            errors.append(f"{path}: histogram {family!r} buckets do not "
                          'end in le="+Inf"')
        values = [value for _, value in buckets]
        if values != sorted(values):
            errors.append(f"{path}: histogram {family!r} buckets are not "
                          "cumulative")

    if samples == 0 and not errors:
        errors.append(f"{path}: no sample lines found")
    return errors


def split_labels(text):
    """Split 'a="b",c="d,e"' on commas outside quoted values."""
    parts = []
    current = ""
    in_quotes = False
    escaped = False
    for char in text:
        if escaped:
            current += char
            escaped = False
        elif char == "\\":
            current += char
            escaped = True
        elif char == '"':
            current += char
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            parts.append(current)
            current = ""
        else:
            current += char
    if current:
        parts.append(current)
    return parts


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    failures = []
    for path in sys.argv[1:]:
        failures.extend(check_file(path))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"OK: {len(sys.argv) - 1} exposition file(s) parse cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
