// Ablation: embedding strategy — one global TRIAD (quadratic qubit growth,
// Theorem 2/3) vs the clustered per-query embedding (linear growth,
// Figure 3). Reports qubit consumption and the largest workload each
// strategy can host, reproducing the paper's argument for clustering.

#include <cstdio>
#include <string>
#include <vector>

#include "embedding/clustered.h"
#include "embedding/triad.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace qmqo;

  chimera::ChimeraGraph graph = chimera::ChimeraGraph::DWave2X();

  std::printf("=== Ablation: global TRIAD vs clustered embedding ===\n\n");
  TablePrinter table({"queries x plans", "logical vars", "TRIAD qubits",
                      "clustered qubits", "TRIAD fits?", "clustered fits?"});
  struct Workload {
    int queries;
    int plans;
  };
  std::vector<Workload> workloads = {{4, 2},  {8, 2},   {16, 2}, {24, 2},
                                     {64, 2}, {144, 2}, {16, 3}, {48, 3},
                                     {16, 5}, {96, 5},  {144, 5}};
  for (const Workload& workload : workloads) {
    int vars = workload.queries * workload.plans;
    int triad_qubits = embedding::TriadEmbedder::QubitsNeeded(vars, 4);
    bool triad_fits = embedding::TriadEmbedder::Embed(vars, graph).ok();
    std::vector<int> sizes(static_cast<size_t>(workload.queries),
                           workload.plans);
    auto clustered = embedding::ClusteredEmbedder::Embed(sizes, graph);
    table.AddRow(
        {StrFormat("%d x %d", workload.queries, workload.plans),
         StrFormat("%d", vars), StrFormat("%d", triad_qubits),
         clustered.ok() ? StrFormat("%d", clustered->TotalQubits())
                        : std::string("-"),
         triad_fits ? "yes" : "no", clustered.ok() ? "yes" : "no"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(the global TRIAD supports arbitrary savings structure but tops out\n"
      "at 48 logical variables on 1152 qubits — 24 two-plan queries; the\n"
      "clustered pattern hosts 144+ queries by restricting inter-cluster\n"
      "couplings, exactly the paper's Theorem 2/3 trade-off)\n");
  return 0;
}
