// Solve-service benchmark: sustained-load smoke test of the MQO batch
// server. A fixed burst of paper-style instances is pushed through the
// bounded queue (overfilling it on purpose, so admission rejects and
// load-shedding both fire) and drained at 1/2/4 worker threads.
//
// Measured per thread count: wall-clock request throughput and the p50 /
// p99 *modeled* end-to-end latency (queue wait + solve charge — the
// deterministic service clock, so those two numbers are bit-identical on
// every machine). The bench *fails* (exit 1) unless every parallel run
// settles the same requests with the same outcomes (status, backend,
// cost, solution, modeled timings) as the serial run — the service's
// round scheduler must not let worker count leak into results. Results go
// to BENCH_service.json for diff_bench.py (--metric requests_per_sec).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <fstream>

#include "bench_common.h"
#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "obs/trace.h"
#include "service/solve_service.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace {

using namespace qmqo;

constexpr uint64_t kSeed = 20260808;

struct LoadResult {
  double wall_ms = 0.0;
  service::ServiceStats stats;
  std::vector<std::string> fingerprints;  // one per settled request
  std::vector<double> modeled_latency_ms;  // queue wait + solve, per request
};

std::string Fingerprint(const service::SolveOutcome& outcome) {
  std::string selected;
  for (int q = 0; q < outcome.solution.num_queries(); ++q) {
    selected += StrFormat("%d,", outcome.solution.selected(q));
  }
  return StrFormat(
      "id=%llu code=%d backend=%d cost=%.17g rung=%d shed=%d wait=%.6f "
      "solve=%.6f sel=%s",
      static_cast<unsigned long long>(outcome.id),
      static_cast<int>(outcome.status.code()),
      static_cast<int>(outcome.backend), outcome.cost, outcome.entry_rung,
      outcome.shed_degraded ? 1 : 0, outcome.queue_wait_modeled_ms,
      outcome.solve_modeled_ms, selected.c_str());
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

/// One sustained-load run: submit every instance (overfilling the queue),
/// then drain to empty. Returns outcomes in settle order. When `tracer` /
/// `prom_out` / `json_out` are set (the serial run), the run is traced
/// and its final metric snapshot captured in both exposition formats.
LoadResult RunLoad(const chimera::ChimeraGraph& graph,
                   const std::vector<harness::PaperInstance>& instances,
                   int num_requests, int num_threads,
                   obs::Tracer* tracer = nullptr,
                   std::string* prom_out = nullptr,
                   std::string* json_out = nullptr) {
  service::ServiceOptions options;
  options.graph = &graph;
  options.num_threads = num_threads;
  options.queue_capacity = 16;  // < num_requests: rejects + shedding fire
  options.round_width = 4;
  options.pipeline.device.num_reads = bench::FullScale() ? 300 : 50;
  options.pipeline.device.num_gauges = 4;
  options.pipeline.device.num_threads = 1;
  options.pipeline.device.seed = kSeed + 1;
  options.policy.seed = kSeed;
  options.policy.max_attempts_per_backend = 1;

  // The service clock only advances through modeled charges, and the
  // classical rungs charge zero — so model a fixed 5 ms of per-round
  // service overhead through the queue_stall site (probability 1: a
  // deterministic pacing tick, not an injected failure). This is what
  // makes the queue-wait percentiles below nonzero and machine-independent.
  util::FaultInjector faults(kSeed);
  util::FaultSpec pacing;
  pacing.probability = 1.0;
  pacing.latency_ms = 5.0;
  faults.Arm("service.queue_stall", pacing);
  options.faults = &faults;
  options.tracer = tracer;

  service::SolveService solve_service(options);
  Stopwatch watch;
  for (int i = 0; i < num_requests; ++i) {
    const harness::PaperInstance& instance =
        instances[static_cast<size_t>(i) % instances.size()];
    service::RequestPriority priority = (i % 3 == 0)
                                            ? service::RequestPriority::kInteractive
                                            : service::RequestPriority::kBatch;
    (void)solve_service.Submit(instance.problem, instance.embedding, priority);
  }
  solve_service.DrainAll();

  LoadResult result;
  result.wall_ms = watch.ElapsedMillis();
  result.stats = solve_service.stats();
  for (const service::SolveOutcome& outcome : solve_service.outcomes()) {
    result.fingerprints.push_back(Fingerprint(outcome));
    result.modeled_latency_ms.push_back(outcome.queue_wait_modeled_ms +
                                        outcome.solve_modeled_ms);
  }
  if (prom_out != nullptr || json_out != nullptr) {
    obs::MetricsSnapshot snapshot = solve_service.metrics().Collect();
    if (prom_out != nullptr) *prom_out = snapshot.PrometheusText();
    if (json_out != nullptr) *json_out = snapshot.JsonText();
  }
  return result;
}

}  // namespace

int main() {
  const int num_requests = bench::FullScale() ? 96 : 24;
  chimera::ChimeraGraph graph(4, 4, 4);

  Rng rng(kSeed);
  std::vector<harness::PaperInstance> instances;
  for (int i = 0; i < 6; ++i) {
    harness::PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 10;
    auto instance = harness::GeneratePaperInstance(graph, workload, &rng);
    if (!instance.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    instances.push_back(*std::move(instance));
  }

  bench::JsonObject root;
  root.Add("bench", "service");
  root.Add("num_requests", static_cast<int64_t>(num_requests));
  root.Add("queue_capacity", static_cast<int64_t>(16));
  root.Add("full_scale", bench::FullScale());

  LoadResult serial;
  obs::Tracer serial_tracer;
  std::string serial_prom;
  std::string serial_metrics_json;
  bool all_identical = true;
  bench::JsonArray runs;
  for (int threads : {1, 2, 4}) {
    // Trace + snapshot the serial run only; it is the deterministic
    // reference the stage breakdown and the exposition artifacts describe.
    LoadResult result =
        threads == 1
            ? RunLoad(graph, instances, num_requests, threads, &serial_tracer,
                      &serial_prom, &serial_metrics_json)
            : RunLoad(graph, instances, num_requests, threads);
    bool identical = true;
    if (threads == 1) {
      serial = result;
    } else {
      identical = result.fingerprints == serial.fingerprints &&
                  result.stats == serial.stats;
      all_identical = all_identical && identical;
    }
    double wall_sec = result.wall_ms / 1000.0;
    double throughput =
        wall_sec > 0.0 ? static_cast<double>(result.stats.settled()) / wall_sec
                       : 0.0;
    bench::JsonObject row;
    row.Add("engine", "service");
    row.Add("threads", static_cast<int64_t>(threads));
    row.Add("wall_ms", result.wall_ms);
    row.Add("requests_per_sec", throughput);
    row.Add("p50_modeled_latency_ms", Percentile(result.modeled_latency_ms, 0.50));
    row.Add("p99_modeled_latency_ms", Percentile(result.modeled_latency_ms, 0.99));
    row.Add("identical_to_serial", identical);
    runs.Add(row);
    std::printf(
        "service threads=%d  settled=%lld  wall=%.1f ms  %.1f req/s  "
        "p50=%.3f ms  p99=%.3f ms  identical=%s\n",
        threads, static_cast<long long>(result.stats.settled()),
        result.wall_ms, throughput,
        Percentile(result.modeled_latency_ms, 0.50),
        Percentile(result.modeled_latency_ms, 0.99),
        identical ? "yes" : "NO");
  }
  root.AddRaw("runs", runs.Dump());

  // Admission + degradation profile of the (deterministic) serial run:
  // the burst overfills the 16-slot queue, so both counters must be
  // nonzero — a zero here means the overload path silently stopped firing.
  root.Add("accepted", serial.stats.accepted);
  root.Add("rejected_queue_full", serial.stats.rejected_queue_full);
  root.Add("shed_degraded", serial.stats.shed_degraded);
  double shed_rate =
      serial.stats.accepted > 0
          ? static_cast<double>(serial.stats.shed_degraded) /
                static_cast<double>(serial.stats.accepted)
          : 0.0;
  root.Add("shed_rate", shed_rate);

  // Per-stage modeled-time breakdown of the serial run, summed over its
  // span trees (deterministic: same on every machine for this seed).
  root.Add("stage_request_modeled_ms",
           serial_tracer.ModeledTotal("service.request"));
  root.Add("stage_attempt_modeled_ms",
           serial_tracer.ModeledTotal("solve.attempt"));
  root.Add("stage_anneal_modeled_ms",
           serial_tracer.ModeledTotal("pipeline.anneal"));
  root.Add("stage_embed_wall_ms", serial_tracer.WallTotal("pipeline.embed"));
  root.Add("stage_unembed_wall_ms",
           serial_tracer.WallTotal("pipeline.unembed"));
  root.Add("stage_merge_wall_ms", serial_tracer.WallTotal("pipeline.merge"));
  root.Add("trace_count", static_cast<int64_t>(serial_tracer.size()));
  std::printf(
      "stages (serial, modeled): request=%.1f attempt=%.1f anneal=%.1f ms; "
      "%zu traces\n",
      serial_tracer.ModeledTotal("service.request"),
      serial_tracer.ModeledTotal("solve.attempt"),
      serial_tracer.ModeledTotal("pipeline.anneal"), serial_tracer.size());

  root.Add("all_identical_to_serial", all_identical);
  std::printf("accepted=%lld rejected=%lld shed_rate=%.3f\n",
              static_cast<long long>(serial.stats.accepted),
              static_cast<long long>(serial.stats.rejected_queue_full),
              shed_rate);

  std::string path = bench::WriteBenchArtifact("service", root);
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_service.json\n");
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  // The serial run's full metric snapshot in both exposition formats,
  // next to the bench artifact. CI checks both stay machine-readable:
  // bench/check_prom.py for the text exposition, a json.load for the
  // JSON one (labeled metric names carry quotes that must be escaped).
  const std::pair<const char*, const std::string*> expositions[] = {
      {"BENCH_service.prom", &serial_prom},
      {"BENCH_service_metrics.json", &serial_metrics_json},
  };
  for (const auto& [filename, content] : expositions) {
    const char* dir = std::getenv("QMQO_BENCH_OUT_DIR");
    std::string out_path =
        (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
        filename;
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    out << *content;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel service runs diverged from serial\n");
    return 1;
  }
  if (serial.stats.rejected_queue_full == 0 || serial.stats.shed_degraded == 0) {
    std::fprintf(stderr,
                 "FAIL: overload burst produced no rejects/shedding\n");
    return 1;
  }
  return 0;
}
