// Figure 7 of the paper: "Maximal problem dimensions that can be
// represented with a given number of qubits" — the capacity frontier
// (queries vs plans per query) for 1152, 2304, and 4608 qubits, assuming
// no broken qubits, plus the measured capacity of the simulated defective
// D-Wave 2X for the four experiment classes.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "embedding/capacity.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct ChipDims {
  int rows;
  int cols;
  const char* label;
};

}  // namespace

int main() {
  using namespace qmqo;

  std::printf("=== Figure 7: capacity frontier (intact hardware) ===\n\n");
  const ChipDims chips[] = {
      {12, 12, "1152 qubits"}, {12, 24, "2304 qubits"}, {24, 24, "4608 qubits"}};
  const int max_plans = 20;

  TablePrinter table({"plans/query", chips[0].label, chips[1].label,
                      chips[2].label});
  for (int l = 2; l <= max_plans; ++l) {
    std::vector<std::string> row = {StrFormat("%d", l)};
    for (const ChipDims& chip : chips) {
      row.push_back(StrFormat(
          "%d", embedding::MaxQueriesForDimensions(chip.rows, chip.cols, 4, l)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Paper reference points (Fig. 7 reads ~500 queries at 2 plans for\n"
      "1152 qubits, dropping steeply beyond ~5 plans/query; doubling the\n"
      "qubits roughly doubles each point).\n\n");

  std::printf("=== Experiment classes on the defective chip (1097 working) ===\n\n");
  Rng rng(1);
  chimera::ChimeraGraph chip = chimera::ChimeraGraph::DWave2XWithDefects(&rng);
  TablePrinter classes(
      {"plans/query", "paper queries", "measured capacity", "used in benches"});
  // The measured capacities (matching / binary-searched embeddings) are
  // independent per class: fan them across the shared pool and emit rows
  // in class order.
  constexpr size_t kNumClasses =
      sizeof(bench::kPaperClasses) / sizeof(bench::kPaperClasses[0]);
  std::vector<int> measured(kNumClasses, 0);
  util::Executor::Run(
      nullptr, static_cast<int>(kNumClasses), bench::BenchThreads(),
      [&](int begin, int end, int /*chunk*/) {
        for (int i = begin; i < end; ++i) {
          measured[static_cast<size_t>(i)] = embedding::MeasuredMaxQueries(
              chip, bench::kPaperClasses[i].plans_per_query);
        }
      });
  for (size_t i = 0; i < kNumClasses; ++i) {
    const bench::PaperClass& cls = bench::kPaperClasses[i];
    classes.AddRow({StrFormat("%d", cls.plans_per_query),
                    StrFormat("%d", cls.num_queries),
                    StrFormat("%d", measured[i]),
                    StrFormat("%d", std::min(measured[i], cls.num_queries))});
  }
  std::printf("%s\n", classes.ToString().c_str());
  return 0;
}
