// Embedding-pipeline benchmark: cold compile vs cached re-weight on a
// paper-shape clustered workload (3 plans/query on the defective D-Wave 2X
// chip — the 759-variable class of Table 1).
//
// Four paths are timed over the same set of re-weighted logical QUBOs:
//   * uncached: EmbeddedQubo::Create on the CSR pipeline (no layout
//               capture — what a cache-less pipeline pays per request),
//   * cold:     Create + layout capture — the cache's miss path, the cost
//               a hit replaces in the cache-enabled pipeline,
//   * reweight: EmbeddingCache::GetOrCreate hits (structure hash + lookup
//               + EmbeddedQubo::ReweightFrom replay),
//   * legacy:   a verbatim replica of the seed's map-based cold path
//               (per-qubit adjacency vectors, per-term double-scan coupler
//               placement in both verification and compilation).
//
// The benchmark *fails* (exit 1) unless the cached re-weight and the
// legacy compile are bit-identical to the fresh CSR compile — the cache's
// whole contract is that downstream samples cannot tell the difference.
// Results go to BENCH_embedding.json (cold/reweight/legacy ms, cache
// speedup, CSR-vs-map speedup, amortized per-request cost); diff_bench.py
// gates cache_speedup >= 10x and csr_vs_map_speedup >= 1x.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "chimera/topology.h"
#include "embedding/embedded_qubo.h"
#include "embedding/embedding.h"
#include "embedding/embedding_cache.h"
#include "harness/paper_workload.h"
#include "mapping/logical_mapping.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace qmqo;
using chimera::ChimeraGraph;
using chimera::QubitId;

// ----------------------------------------------------------------------
// The seed's map-based cold path, replicated verbatim for comparison:
// per-qubit adjacency vectors (the pre-CSR topology layout), per-term
// double-scan coupler placement run twice (once inside VerifyForProblem,
// once in the compile), hash-map accumulation throughout. Same arithmetic
// order as the CSR pipeline, so the physical problem must be
// bit-identical — only the walk order of memory (and the wall time)
// differs.
// ----------------------------------------------------------------------

struct LegacyAdjacency {
  std::vector<std::vector<QubitId>> rows;

  explicit LegacyAdjacency(const ChimeraGraph& graph) {
    rows.resize(static_cast<size_t>(graph.num_qubits()));
    for (QubitId q = 0; q < graph.num_qubits(); ++q) {
      for (QubitId n : graph.Neighbors(q)) {
        rows[static_cast<size_t>(q)].push_back(n);
      }
    }
  }

  bool CouplerUsable(const ChimeraGraph& graph, QubitId a, QubitId b) const {
    const auto& row = rows[static_cast<size_t>(a)];
    return std::binary_search(row.begin(), row.end(), b) &&
           graph.IsWorking(a) && graph.IsWorking(b);
  }
};

Status LegacyVerifyForProblem(const embedding::Embedding& emb,
                              const ChimeraGraph& graph,
                              const LegacyAdjacency& adj,
                              const qubo::QuboProblem& logical) {
  // VerifyStructure, seed edition: ownership scan + BFS with a linear
  // `seen` membership test per chain.
  std::vector<int> owner(static_cast<size_t>(graph.num_qubits()), -1);
  for (int var = 0; var < emb.num_vars(); ++var) {
    const embedding::Chain& chain = emb.chain(var);
    if (chain.qubits.empty()) {
      return Status::FailedPrecondition("empty chain");
    }
    for (QubitId q : chain.qubits) {
      if (q < 0 || q >= graph.num_qubits()) return Status::OutOfRange("qubit");
      if (graph.IsBroken(q)) return Status::FailedPrecondition("broken");
      if (owner[static_cast<size_t>(q)] != -1) {
        return Status::FailedPrecondition("overlap");
      }
      owner[static_cast<size_t>(q)] = var;
    }
    std::deque<QubitId> frontier{chain.qubits.front()};
    std::vector<QubitId> seen{chain.qubits.front()};
    while (!frontier.empty()) {
      QubitId q = frontier.front();
      frontier.pop_front();
      for (QubitId n : adj.rows[static_cast<size_t>(q)]) {
        if (owner[static_cast<size_t>(n)] != var) continue;
        if (graph.IsBroken(n)) continue;
        if (std::find(seen.begin(), seen.end(), n) != seen.end()) continue;
        seen.push_back(n);
        frontier.push_back(n);
      }
    }
    if (static_cast<int>(seen.size()) != chain.size()) {
      return Status::FailedPrecondition("disconnected chain");
    }
  }
  // Per-term double scan: first usable coupler between the two chains.
  for (const qubo::Interaction& term : logical.interactions()) {
    if (term.weight == 0.0) continue;
    bool found = false;
    for (QubitId qa : emb.chain(term.i).qubits) {
      for (QubitId n : adj.rows[static_cast<size_t>(qa)]) {
        if (owner[static_cast<size_t>(n)] == term.j &&
            adj.CouplerUsable(graph, qa, n)) {
          found = true;
          break;
        }
      }
      if (found) break;
    }
    if (!found) return Status::FailedPrecondition("no usable coupler");
  }
  return Status::OK();
}

/// The seed's EmbeddedQubo::Create body, producing the physical problem
/// (chain bookkeeping omitted — the parity check is on the energy formula).
Result<qubo::QuboProblem> LegacyCompile(const qubo::QuboProblem& logical,
                                        const embedding::Embedding& emb,
                                        const ChimeraGraph& graph,
                                        const LegacyAdjacency& adj) {
  const double epsilon = 0.25;
  const double chain_strength_scale = 1.0;
  QMQO_RETURN_IF_ERROR(LegacyVerifyForProblem(emb, graph, adj, logical));

  const int num_vars = logical.num_vars();
  std::vector<QubitId> used;
  for (int var = 0; var < num_vars; ++var) {
    const embedding::Chain& chain = emb.chain(var);
    used.insert(used.end(), chain.qubits.begin(), chain.qubits.end());
  }
  std::sort(used.begin(), used.end());
  std::vector<int> compact_index(static_cast<size_t>(graph.num_qubits()), -1);
  for (size_t i = 0; i < used.size(); ++i) {
    compact_index[static_cast<size_t>(used[i])] = static_cast<int>(i);
  }
  auto compact_of = [&](QubitId q) {
    return compact_index[static_cast<size_t>(q)];
  };

  qubo::QuboProblem physical(static_cast<int>(used.size()));
  std::vector<std::vector<int>> chains(static_cast<size_t>(num_vars));
  for (int var = 0; var < num_vars; ++var) {
    for (QubitId q : emb.chain(var).qubits) {
      chains[static_cast<size_t>(var)].push_back(compact_of(q));
    }
  }
  std::vector<int> owner = emb.QubitToVar(graph);

  // Step 1: distribute linear weights over chains.
  for (int var = 0; var < num_vars; ++var) {
    double w = logical.linear(var);
    const auto& members = chains[static_cast<size_t>(var)];
    if (w == 0.0) continue;
    double share = w / static_cast<double>(members.size());
    for (int member : members) physical.AddLinear(member, share);
  }

  // Step 2: per-term double scan again, placing into the hash map.
  for (const qubo::Interaction& term : logical.interactions()) {
    if (term.weight == 0.0) continue;
    bool placed = false;
    for (QubitId qa : emb.chain(term.i).qubits) {
      for (QubitId n : adj.rows[static_cast<size_t>(qa)]) {
        if (owner[static_cast<size_t>(n)] != term.j) continue;
        if (!adj.CouplerUsable(graph, qa, n)) continue;
        physical.AddQuadratic(compact_of(qa), compact_of(n), term.weight);
        placed = true;
        break;
      }
      if (placed) break;
    }
    if (!placed) return Status::Internal("placement diverged");
  }

  // Choi chain strengths (forces a mid-build finalize, as the seed did).
  std::vector<double> strength(static_cast<size_t>(num_vars), 0.0);
  for (int var = 0; var < num_vars; ++var) {
    const auto& members = chains[static_cast<size_t>(var)];
    double sum_up = 0.0;
    double sum_down = 0.0;
    for (int member : members) {
      double v = physical.linear(member);
      double pos = 0.0;
      double neg = 0.0;
      for (const auto& [other, w] : physical.neighbors(member)) {
        (void)other;
        if (w > 0.0) {
          pos += w;
        } else {
          neg += -w;
        }
      }
      sum_up += std::max(0.0, v + pos);
      sum_down += std::max(0.0, -v + neg);
    }
    double u = std::min(sum_up, sum_down);
    strength[static_cast<size_t>(var)] =
        std::max(epsilon, chain_strength_scale * u + epsilon);
  }

  // Step 3: equality gadgets over BFS spanning trees.
  for (int var = 0; var < num_vars; ++var) {
    const embedding::Chain& chain = emb.chain(var);
    if (chain.size() <= 1) continue;
    double s = strength[static_cast<size_t>(var)];
    std::vector<uint8_t> visited(chain.qubits.size(), 0);
    std::deque<size_t> frontier{0};
    visited[0] = 1;
    int edges = 0;
    while (!frontier.empty()) {
      size_t at = frontier.front();
      frontier.pop_front();
      QubitId qa = chain.qubits[at];
      for (size_t next = 0; next < chain.qubits.size(); ++next) {
        if (visited[next]) continue;
        QubitId qb = chain.qubits[next];
        if (!adj.CouplerUsable(graph, qa, qb)) continue;
        visited[next] = 1;
        frontier.push_back(next);
        physical.AddLinear(compact_of(qa), s);
        physical.AddLinear(compact_of(qb), s);
        physical.AddQuadratic(compact_of(qa), compact_of(qb), -2.0 * s);
        ++edges;
      }
    }
    if (edges != chain.size() - 1) return Status::Internal("tree diverged");
  }
  physical.Finalize();
  return physical;
}

bool IdenticalProblems(const qubo::QuboProblem& a, const qubo::QuboProblem& b) {
  if (a.num_vars() != b.num_vars()) return false;
  if (a.linear_terms() != b.linear_terms()) return false;
  const auto& ta = a.interactions();
  const auto& tb = b.interactions();
  if (ta.size() != tb.size()) return false;
  for (size_t t = 0; t < ta.size(); ++t) {
    if (ta[t].i != tb[t].i || ta[t].j != tb[t].j ||
        ta[t].weight != tb[t].weight) {
      return false;
    }
  }
  return a.csr().weights == b.csr().weights;
}

/// A re-weighted copy of `base`: same interaction pattern, coefficients
/// scaled by per-term factors in [0.5, 1.5] (never zero), fresh linears.
qubo::QuboProblem ReweightedVariant(const qubo::QuboProblem& base,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<double> linear = base.linear_terms();
  for (double& w : linear) w = rng.UniformReal(-10.0, 10.0);
  std::vector<qubo::Interaction> terms = base.interactions();
  for (qubo::Interaction& term : terms) {
    double w = term.weight == 0.0 ? 1.0 : term.weight;
    term.weight = w * rng.UniformReal(0.5, 1.5);
  }
  qubo::QuboProblem out = qubo::QuboProblem::FromSorted(
      base.num_vars(), std::move(linear), std::move(terms));
  out.Finalize();
  return out;
}

}  // namespace

int main() {
  const bool full = bench::FullScale();

  // The paper's 3-plan class on the defective D-Wave 2X: 253 queries,
  // 759 logical variables (Table 1). The default run scales the query
  // count down so the bench stays fast.
  Rng defects(7);
  ChimeraGraph graph = ChimeraGraph::DWave2XWithDefects(&defects);
  harness::PaperWorkloadOptions workload;
  workload.plans_per_query = 3;
  workload.num_queries = full ? 253 : 100;
  Rng workload_rng(11);
  auto instance = harness::GeneratePaperInstance(graph, workload,
                                                 &workload_rng);
  if (!instance.ok()) {
    std::fprintf(stderr, "paper workload failed: %s\n",
                 instance.status().message().c_str());
    return 1;
  }
  auto mapping = mapping::LogicalMapping::Create(instance->problem);
  if (!mapping.ok()) {
    std::fprintf(stderr, "logical mapping failed: %s\n",
                 mapping.status().message().c_str());
    return 1;
  }
  const qubo::QuboProblem& base = mapping->qubo();
  base.Finalize();
  std::printf("instance: %d plans over %d queries -> QUBO(%d vars, %d "
              "interactions)\n",
              instance->problem.num_plans(), instance->num_queries,
              base.num_vars(), base.num_interactions());

  // Pre-built re-weighted requests (outside every timed loop: building the
  // logical problem is the caller's cost, not the embedder's).
  const int kVariants = 8;
  std::vector<qubo::QuboProblem> variants;
  variants.reserve(kVariants);
  for (int v = 0; v < kVariants; ++v) {
    variants.push_back(ReweightedVariant(base, 100 + static_cast<uint64_t>(v)));
  }

  const int cold_repeats = full ? 24 : 8;
  const int reweight_repeats = full ? 600 : 200;

  // --- Cold CSR compiles (no layout capture — the plain embed cost the
  // CSR-vs-map comparison is about; the capture cost is paid once per
  // cache miss and amortized away). One untimed warm-up touches all the
  // instance memory first. ---
  int physical_qubits = 0;
  {
    auto warmup = embedding::EmbeddedQubo::Create(variants[0],
                                                  instance->embedding, graph);
    if (!warmup.ok()) {
      std::fprintf(stderr, "cold warm-up failed: %s\n",
                   warmup.status().message().c_str());
      return 1;
    }
    physical_qubits = warmup->num_physical_vars();
  }
  Stopwatch uncached_clock;
  for (int r = 0; r < cold_repeats; ++r) {
    auto compiled = embedding::EmbeddedQubo::Create(
        variants[static_cast<size_t>(r % kVariants)], instance->embedding,
        graph);
    if (!compiled.ok()) {
      std::fprintf(stderr, "uncached compile failed: %s\n",
                   compiled.status().message().c_str());
      return 1;
    }
  }
  const double uncached_ms = uncached_clock.ElapsedMillis() / cold_repeats;

  // --- Cache-miss compiles (Create + layout capture): what a cold request
  // costs in the cache-enabled pipeline, and the work a hit replaces. ---
  Stopwatch cold_clock;
  for (int r = 0; r < cold_repeats; ++r) {
    embedding::EmbeddedLayout layout;
    auto compiled = embedding::EmbeddedQubo::Create(
        variants[static_cast<size_t>(r % kVariants)], instance->embedding,
        graph, {}, &layout);
    if (!compiled.ok()) {
      std::fprintf(stderr, "cold compile failed: %s\n",
                   compiled.status().message().c_str());
      return 1;
    }
  }
  const double cold_ms = cold_clock.ElapsedMillis() / cold_repeats;

  // --- Cached re-weights: one warm-up miss, then timed hits (structure
  // hash + lookup + ReweightFrom — the full service-path cost of a hit). ---
  embedding::EmbeddingCache cache;
  {
    auto warmup = cache.GetOrCreate(variants[0], instance->embedding, graph);
    if (!warmup.ok()) {
      std::fprintf(stderr, "cache warm-up failed: %s\n",
                   warmup.status().message().c_str());
      return 1;
    }
  }
  Stopwatch reweight_clock;
  for (int r = 0; r < reweight_repeats; ++r) {
    auto compiled = cache.GetOrCreate(
        variants[static_cast<size_t>(r % kVariants)], instance->embedding,
        graph);
    if (!compiled.ok()) {
      std::fprintf(stderr, "cached re-weight failed: %s\n",
                   compiled.status().message().c_str());
      return 1;
    }
  }
  const double reweight_ms = reweight_clock.ElapsedMillis() / reweight_repeats;
  const embedding::EmbeddingCacheStats stats = cache.stats();

  // --- Legacy map-based cold compiles (the seed's algorithm). ---
  LegacyAdjacency adj(graph);
  {
    auto warmup = LegacyCompile(variants[0], instance->embedding, graph, adj);
    if (!warmup.ok()) {
      std::fprintf(stderr, "legacy warm-up failed: %s\n",
                   warmup.status().message().c_str());
      return 1;
    }
  }
  Stopwatch legacy_clock;
  for (int r = 0; r < cold_repeats; ++r) {
    auto compiled = LegacyCompile(variants[static_cast<size_t>(r % kVariants)],
                                  instance->embedding, graph, adj);
    if (!compiled.ok()) {
      std::fprintf(stderr, "legacy compile failed: %s\n",
                   compiled.status().message().c_str());
      return 1;
    }
  }
  const double legacy_ms = legacy_clock.ElapsedMillis() / cold_repeats;

  // --- Bit-parity of all three paths on every variant. ---
  bool reweight_identical = true;
  bool embedding_identical = true;
  for (int v = 0; v < kVariants; ++v) {
    const qubo::QuboProblem& request = variants[static_cast<size_t>(v)];
    auto fresh =
        embedding::EmbeddedQubo::Create(request, instance->embedding, graph);
    bool was_hit = false;
    auto cached = cache.GetOrCreate(request, instance->embedding, graph, {},
                                    &was_hit);
    auto legacy = LegacyCompile(request, instance->embedding, graph, adj);
    if (!fresh.ok() || !cached.ok() || !legacy.ok() || !was_hit) {
      std::fprintf(stderr, "parity compile failed on variant %d\n", v);
      return 1;
    }
    if (!IdenticalProblems(fresh->physical(), cached->physical())) {
      reweight_identical = false;
    }
    if (!IdenticalProblems(fresh->physical(), *legacy)) {
      embedding_identical = false;
    }
  }

  const double cache_speedup = reweight_ms > 0.0 ? cold_ms / reweight_ms : 0.0;
  const double csr_vs_map_speedup =
      uncached_ms > 0.0 ? legacy_ms / uncached_ms : 0.0;
  const int amortized_repeats = 100;
  const double amortized_ms =
      (cold_ms + (amortized_repeats - 1) * reweight_ms) / amortized_repeats;

  std::printf("uncached CSR compile: %9.3f ms\n", uncached_ms);
  std::printf("cold miss (+capture): %9.3f ms\n", cold_ms);
  std::printf("cached re-weight:     %9.3f ms  (%.1fx vs cold miss)\n",
              reweight_ms, cache_speedup);
  std::printf("legacy map compile:   %9.3f ms  (CSR %.2fx vs map)\n",
              legacy_ms, csr_vs_map_speedup);
  std::printf("amortized per request over %d repeats: %.3f ms\n",
              amortized_repeats, amortized_ms);
  std::printf("cache: %llu hits / %llu misses; parity: reweight %s, "
              "legacy %s\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              reweight_identical ? "identical" : "MISMATCH",
              embedding_identical ? "identical" : "MISMATCH");

  const double uncached_per_sec =
      uncached_ms > 0.0 ? 1000.0 / uncached_ms : 0.0;
  const double cold_per_sec = cold_ms > 0.0 ? 1000.0 / cold_ms : 0.0;
  const double reweight_per_sec =
      reweight_ms > 0.0 ? 1000.0 / reweight_ms : 0.0;
  const double legacy_per_sec = legacy_ms > 0.0 ? 1000.0 / legacy_ms : 0.0;
  bench::JsonArray rows;
  bench::JsonObject uncached_row;
  uncached_row.Add("engine", "embed_uncached")
      .Add("threads", 1)
      .Add("wall_ms", uncached_ms)
      .Add("embeds_per_sec", uncached_per_sec);
  rows.Add(uncached_row);
  bench::JsonObject cold_row;
  cold_row.Add("engine", "embed_cold_miss")
      .Add("threads", 1)
      .Add("wall_ms", cold_ms)
      .Add("embeds_per_sec", cold_per_sec);
  rows.Add(cold_row);
  bench::JsonObject reweight_row;
  reweight_row.Add("engine", "embed_reweight")
      .Add("threads", 1)
      .Add("wall_ms", reweight_ms)
      .Add("embeds_per_sec", reweight_per_sec);
  rows.Add(reweight_row);
  bench::JsonObject legacy_row;
  legacy_row.Add("engine", "embed_legacy_cold")
      .Add("threads", 1)
      .Add("wall_ms", legacy_ms)
      .Add("embeds_per_sec", legacy_per_sec);
  rows.Add(legacy_row);

  bench::JsonObject root;
  root.Add("bench", "embedding")
      .Add("full_scale", full)
      .Add("topology", "dwave2x_55_defects")
      .Add("logical_vars", base.num_vars())
      .Add("logical_interactions", base.num_interactions())
      .Add("physical_qubits", physical_qubits)
      .Add("uncached_embed_ms", uncached_ms)
      .Add("cold_embed_ms", cold_ms)
      .Add("cached_reweight_ms", reweight_ms)
      .Add("legacy_cold_embed_ms", legacy_ms)
      .Add("cache_speedup", cache_speedup)
      .Add("csr_vs_map_speedup", csr_vs_map_speedup)
      .Add("amortized_repeats", amortized_repeats)
      .Add("amortized_embed_ms", amortized_ms)
      .Add("reweight_identical", reweight_identical)
      .Add("embedding_identical", embedding_identical)
      .Add("cache_hits", static_cast<int64_t>(stats.hits))
      .Add("cache_misses", static_cast<int64_t>(stats.misses))
      .AddRaw("runs", rows.Dump());
  std::string path = bench::WriteBenchArtifact("embedding", root);
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_embedding.json\n");
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!reweight_identical || !embedding_identical) {
    std::fprintf(stderr,
                 "FAIL: re-weighted or legacy compile diverged from the "
                 "fresh CSR compile\n");
    return 1;
  }
  return 0;
}
