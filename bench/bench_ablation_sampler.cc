// Ablation: device backend — classical simulated annealing vs simulated
// quantum annealing (path-integral Monte Carlo) as the sampler inside the
// device model, plus the effect of gauge averaging under control error
// (the paper uses 10 gauges x 100 reads to cancel qubit biases).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/quantum_pipeline.h"
#include "solver/mqo_bnb.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace qmqo;
  using namespace qmqo::bench;

  chimera::ChimeraGraph graph(4, 4, 4);
  harness::PaperWorkloadOptions workload;
  workload.plans_per_query = 2;
  // A deliberately frustrated instance (strong sharing) so backend and
  // gauge effects are visible.
  workload.saving_scale = 5.0;
  Rng rng(3);
  auto instance = harness::GeneratePaperInstance(graph, workload, &rng);
  if (!instance.ok()) {
    std::printf("generation failed: %s\n",
                instance.status().ToString().c_str());
    return 1;
  }
  solver::MqoBnbOptions exact_options;
  exact_options.time_limit_ms = 10000.0;
  auto exact =
      solver::MqoBranchAndBound(exact_options).Solve(instance->problem);

  std::printf("=== Ablation: sampler backend and gauge averaging ===\n");
  std::printf("instance: %s, optimum %.1f\n\n",
              instance->problem.Summary().c_str(), exact->cost);

  const int reads = FullScale() ? 400 : 150;
  TablePrinter table({"configuration", "first-read cost", "best cost",
                      "gap to optimum", "sim wall ms"});
  struct Config {
    std::string name;
    anneal::DeviceBackend backend;
    int gauges;
    double noise;
  };
  std::vector<Config> configs = {
      {"SA, 10 gauges, 1% noise", anneal::DeviceBackend::kSimulatedAnnealing,
       10, 0.01},
      {"SA, 1 gauge, 1% noise", anneal::DeviceBackend::kSimulatedAnnealing, 1,
       0.01},
      {"SA, 10 gauges, 5% noise", anneal::DeviceBackend::kSimulatedAnnealing,
       10, 0.05},
      {"SA, 1 gauge, 5% noise", anneal::DeviceBackend::kSimulatedAnnealing, 1,
       0.05},
      {"SQA, 10 gauges, 1% noise",
       anneal::DeviceBackend::kSimulatedQuantumAnnealing, 10, 0.01},
  };
  for (const Config& config : configs) {
    harness::QuantumMqoOptions options;
    // Raw device comparison: no swap-descent post-processing.
    options.postprocess_swap_descent = false;
    options.device.backend = config.backend;
    options.device.num_reads = reads;
    options.device.num_gauges = config.gauges;
    options.device.control_error = config.noise;
    options.device.sqa.num_slices = 12;
    options.device.sqa.sweeps = 192;
    options.device.seed = 29;
    Stopwatch watch;
    auto result = harness::SolveQuantumMqo(instance->problem,
                                           instance->embedding, graph,
                                           options);
    if (!result.ok()) {
      std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({config.name, StrFormat("%.1f", result->first_read_cost),
                  StrFormat("%.1f", result->best_cost),
                  StrFormat("%+.2f%%", 100.0 * (result->best_cost - exact->cost) /
                                           exact->cost),
                  StrFormat("%.0f", result->simulator_wall_ms)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(expected shape: gauge averaging recovers quality lost to control\n"
      "error; SQA matches SA quality at higher simulation cost)\n");
  return 0;
}
