#!/usr/bin/env python3
"""Unit tests for the diff_bench.py CI gate (stdlib unittest only).

Run directly or via `python3 -m unittest` from the bench/ directory. The
tests drive diff_bench.py as a subprocess, the way CI does, so argument
parsing, exit codes, and stderr messaging are all covered as-shipped.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

DIFF_BENCH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "diff_bench.py")


def run_diff(*argv):
    return subprocess.run(
        [sys.executable, DIFF_BENCH, *argv],
        capture_output=True, text=True, check=False)


def artifact(runs=None, **extra):
    root = {"runs": runs if runs is not None else [
        {"engine": "sa", "threads": 1, "sweep_spins_per_sec": 1.0e6,
         "identical_to_serial": True}]}
    root.update(extra)
    return root


class DiffBenchTest(unittest.TestCase):

    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path

    def test_identical_artifacts_pass(self):
        fresh = self.write("fresh.json", artifact())
        baseline = self.write("baseline.json", artifact())
        result = run_diff(fresh, baseline)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("OK", result.stdout)

    def test_missing_baseline_skips_with_warning(self):
        fresh = self.write("fresh.json", artifact())
        missing = os.path.join(self.tmp.name, "no_such_baseline.json")
        result = run_diff(fresh, missing)
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("WARNING", result.stderr)
        self.assertIn("skipping", result.stderr)

    def test_missing_baseline_fails_when_required(self):
        fresh = self.write("fresh.json", artifact())
        missing = os.path.join(self.tmp.name, "no_such_baseline.json")
        result = run_diff(fresh, missing, "--require-baseline")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("FAIL", result.stderr)

    def test_missing_fresh_artifact_still_fails(self):
        baseline = self.write("baseline.json", artifact())
        missing = os.path.join(self.tmp.name, "no_such_fresh.json")
        result = run_diff(missing, baseline)
        self.assertNotEqual(result.returncode, 0)

    def test_throughput_regression_fails(self):
        fresh = self.write("fresh.json", artifact(runs=[
            {"engine": "sa", "threads": 1, "sweep_spins_per_sec": 1.0e5,
             "identical_to_serial": True}]))
        baseline = self.write("baseline.json", artifact())
        result = run_diff(fresh, baseline)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("regressed", result.stderr)

    def test_custom_metric_flag(self):
        rows = [{"engine": "workload_max_cut", "threads": 1,
                 "solves_per_sec": 100.0, "identical_to_serial": True}]
        fresh = self.write("fresh.json", artifact(runs=rows))
        baseline = self.write("baseline.json", artifact(runs=rows))
        result = run_diff(fresh, baseline, "--metric", "solves_per_sec")
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_field_parity_failure(self):
        fresh = self.write("fresh.json", artifact())
        baseline = self.write("baseline.json", artifact(extra_field=1.0))
        result = run_diff(fresh, baseline)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("extra_field", result.stderr)

    def test_stage_fields_are_informational(self):
        fresh = self.write("fresh.json", artifact(stage_solve_ms=12.5))
        baseline = self.write("baseline.json", artifact())
        result = run_diff(fresh, baseline)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_fault_free_hot_path_gate(self):
        fresh = self.write("fresh.json", artifact(solver_retries=3))
        baseline = self.write("baseline.json", artifact(solver_retries=0))
        result = run_diff(fresh, baseline)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("fault-free", result.stderr)


if __name__ == "__main__":
    unittest.main()
