// Figure 4 of the paper: solution cost as a function of optimization time
// for the hardest class — 537 queries with 2 plans per query — comparing
// the (simulated) quantum annealer against LIN-MQO, LIN-QUB, CLIMB,
// GA(50) and GA(200). Also reports the paper's in-text statistics for
// this class.

#include "bench_figure_common.h"

int main() {
  using namespace qmqo::bench;
  return RunCostVsTimeFigure("Figure 4", kPaperClasses[0], /*seed=*/41);
}
