// Figure 4 of the paper: solution cost as a function of optimization time
// for the hardest class — 537 queries with 2 plans per query — comparing
// the (simulated) quantum annealer against LIN-MQO, LIN-QUB, CLIMB,
// GA(50) and GA(200). Also reports the paper's in-text statistics for
// this class. QMQO_BENCH_THREADS=N fans the class's instances across the
// shared worker pool (QA results are bit-identical at any thread count;
// the classical baselines' wall-clock budgets make their curves
// run-dependent either way — keep 1 thread when timing them).

#include "bench_figure_common.h"

int main() {
  using namespace qmqo::bench;
  return RunCostVsTimeFigure("Figure 4", kPaperClasses[0], /*seed=*/41);
}
