// Ablation: chain-strength setting in the physical mapping. The paper
// (Sections 4-5) argues weights should be as small as possible because
// large weight ranges degrade annealer precision, while chains need
// w_B = U + eps to hold together. This bench sweeps a scale factor on the
// Choi bound and reports broken-chain rates and solution quality — showing
// both failure modes: chains shatter below 1.0x, signal drowns far above.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/quantum_pipeline.h"
#include "solver/mqo_bnb.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace qmqo;
  using namespace qmqo::bench;

  // A 3-plan class on a mid-size chip: chains of length 2, so chain
  // breaking is actually possible (the 2-plan class has 1-qubit chains).
  chimera::ChimeraGraph graph(6, 6, 4);
  harness::PaperWorkloadOptions workload;
  workload.plans_per_query = 3;
  workload.saving_scale = 2.0;  // the Figures 4-6 calibration
  Rng rng(5);
  auto instance = harness::GeneratePaperInstance(graph, workload, &rng);
  if (!instance.ok()) {
    std::printf("generation failed: %s\n",
                instance.status().ToString().c_str());
    return 1;
  }
  solver::MqoBnbOptions exact_options;
  exact_options.time_limit_ms = 30000.0;
  auto exact = solver::MqoBranchAndBound(exact_options).Solve(instance->problem);

  std::printf("=== Ablation: chain strength scale (x Choi bound) ===\n");
  std::printf("instance: %s, optimum %.1f (%s)\n\n",
              instance->problem.Summary().c_str(), exact->cost,
              exact->proven_optimal ? "proven" : "time-capped");

  TablePrinter table({"scale", "broken chains (mean %)", "valid reads",
                      "first-read cost", "best cost", "gap to optimum"});
  for (double scale : {0.05, 0.25, 0.5, 1.0, 2.0, 8.0, 32.0}) {
    harness::QuantumMqoOptions options;
    options.physical.chain_strength_scale = scale;
    options.device.num_reads = FullScale() ? 1000 : 300;
    options.device.seed = 17;
    // Raw device behaviour: no swap-descent post-processing, so the
    // effect of the chain strength on sample quality is not masked.
    options.postprocess_swap_descent = false;
    auto result = harness::SolveQuantumMqo(instance->problem,
                                           instance->embedding, graph,
                                           options);
    if (!result.ok()) {
      std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    table.AddRow({StrFormat("%.2fx", scale),
                  StrFormat("%.1f%%", 100.0 * result->broken_chain_read_fraction),
                  StrFormat("%.1f%%", 100.0 * result->valid_read_fraction),
                  StrFormat("%.1f", result->first_read_cost),
                  StrFormat("%.1f", result->best_cost),
                  StrFormat("%+.2f%%", 100.0 * (result->best_cost - exact->cost) /
                                           exact->cost)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(expected shape: heavy chain breaking at small scales; near-zero\n"
      "breaking and optimal quality around 1.0x; degrading first-read\n"
      "quality as over-strong chains compress the problem signal)\n");
  return 0;
}
