#ifndef QMQO_BENCH_BENCH_COMMON_H_
#define QMQO_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Shared configuration for the reproduction benches.
///
/// By default every bench runs a scaled-down configuration (fewer
/// instances, shorter classical time budgets) so the whole suite finishes
/// in minutes. Setting QMQO_BENCH_FULL=1 switches to the paper-scale
/// setup (20 instances per class, the full milestone grid).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "embedding/capacity.h"
#include "harness/experiment.h"

namespace qmqo {
namespace bench {

/// True when QMQO_BENCH_FULL=1 is set.
inline bool FullScale() {
  const char* env = std::getenv("QMQO_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// The paper's four experiment classes: (plans/query, queries). Query
/// counts follow the paper; the workload generator clamps the 2-plan class
/// to the simulated chip's measured matching capacity (within ~1% of 537;
/// our defect map necessarily differs from the paper's machine).
struct PaperClass {
  int plans_per_query;
  int num_queries;
};

inline constexpr PaperClass kPaperClasses[] = {
    {2, 537}, {3, 253}, {4, 140}, {5, 108}};

/// Experiment configuration for one paper class, scaled by FullScale().
inline harness::ExperimentConfig MakeClassConfig(const PaperClass& cls,
                                                 uint64_t seed) {
  harness::ExperimentConfig config;
  config.workload.plans_per_query = cls.plans_per_query;
  config.workload.num_queries = cls.num_queries;
  // The paper's saving constant is unspecified; 2.0 is the calibration
  // where the quantum-advantage shape of Figures 4-6 holds while instances
  // stay tractable for the exact baselines (see EXPERIMENTS.md).
  config.workload.saving_scale = 2.0;
  config.num_instances = FullScale() ? 20 : 3;
  // Paper: 1e5 ms per algorithm. Full scale uses 10 s (the curves are flat
  // beyond that for these solvers); default 0.4 s keeps the suite fast.
  config.classical_time_limit_ms = FullScale() ? 10000.0 : 400.0;
  config.quantum.device.num_reads = FullScale() ? 1000 : 300;
  config.quantum.device.num_gauges = 10;
  config.seed = seed;
  return config;
}

/// Clamps a requested 2-plan query count to the chip's capacity.
inline int ClampQueries(const chimera::ChimeraGraph& graph,
                        const PaperClass& cls) {
  int capacity =
      embedding::MeasuredMaxQueries(graph, cls.plans_per_query);
  return capacity < cls.num_queries ? capacity : cls.num_queries;
}

}  // namespace bench
}  // namespace qmqo

#endif  // QMQO_BENCH_BENCH_COMMON_H_
