#ifndef QMQO_BENCH_BENCH_COMMON_H_
#define QMQO_BENCH_BENCH_COMMON_H_

/// \file bench_common.h
/// Shared configuration for the reproduction benches.
///
/// By default every bench runs a scaled-down configuration (fewer
/// instances, shorter classical time budgets) so the whole suite finishes
/// in minutes. Setting QMQO_BENCH_FULL=1 switches to the paper-scale
/// setup (20 instances per class, the full milestone grid).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "embedding/capacity.h"
#include "harness/experiment.h"

namespace qmqo {
namespace bench {

/// True when QMQO_BENCH_FULL=1 is set.
inline bool FullScale() {
  const char* env = std::getenv("QMQO_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// Worker threads for the benches' experiment fan-out, from
/// QMQO_BENCH_THREADS: 1 = serial (the default, keeping wall-clock numbers
/// comparable across machines), 0 = hardware concurrency. All
/// seed-derived quantities (QA sample sets, workloads, embeddings) are
/// bit-identical for every value; the classical baselines run under
/// *wall-clock* budgets, so their recorded costs and timings vary run to
/// run regardless of threading — and concurrent instances contending for
/// cores can shift them further. Use serial runs (or the deterministic
/// caps in ExperimentConfig) when those numbers are the measurement.
inline int BenchThreads() {
  const char* env = std::getenv("QMQO_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  int threads = std::atoi(env);
  return threads >= 0 ? threads : 1;
}

/// Sweep kernel for the annealing engines, from QMQO_BENCH_KERNEL:
/// "scalar" (default, the bit-exact reference), "checkerboard", or
/// "checkerboard_fast" (see anneal/sweep_kernel.h for the contracts).
/// Unrecognized values fall back to scalar.
inline anneal::SweepKernel BenchKernel() {
  const char* env = std::getenv("QMQO_BENCH_KERNEL");
  anneal::SweepKernel kernel = anneal::SweepKernel::kScalar;
  if (env != nullptr && *env != '\0') {
    anneal::ParseSweepKernel(env, &kernel);
  }
  return kernel;
}

// ----------------------------------------------------------------------
// Machine-readable bench artifacts (BENCH_<name>.json).
//
// Every bench writes one flat JSON artifact so the perf trajectory of the
// hot paths can be tracked across PRs by diffing files, no parsing of
// human-oriented logs required. The writer is deliberately tiny: objects,
// arrays, numbers, strings, booleans — nothing the benches don't need.
// ----------------------------------------------------------------------

/// Append-only JSON object builder (insertion order preserved).
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value) {
    if (!std::isfinite(value)) return AddRaw(key, "null");  // inf/nan: not JSON
    std::ostringstream formatted;
    formatted.precision(12);
    formatted << value;
    return AddRaw(key, formatted.str());
  }
  JsonObject& Add(const std::string& key, int64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  JsonObject& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  JsonObject& Add(const std::string& key, const std::string& value) {
    return AddRaw(key, Quote(value));
  }
  JsonObject& Add(const std::string& key, const char* value) {
    return AddRaw(key, Quote(value));
  }
  /// Inserts an already-serialized JSON value (nested object/array).
  JsonObject& AddRaw(const std::string& key, const std::string& json) {
    entries_.push_back(Quote(key) + ": " + json);
    return *this;
  }

  std::string Dump() const {
    std::string out = "{";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) out += ", ";
      out += entries_[i];
    }
    out += "}";
    return out;
  }

  static std::string Quote(const std::string& text) {
    std::string out = "\"";
    for (char c : text) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char escaped[8];
        std::snprintf(escaped, sizeof(escaped), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out += escaped;
      } else {
        out += c;
      }
    }
    out += "\"";
    return out;
  }

 private:
  std::vector<std::string> entries_;
};

/// Append-only JSON array builder.
class JsonArray {
 public:
  JsonArray& Add(const JsonObject& object) {
    entries_.push_back(object.Dump());
    return *this;
  }
  std::string Dump() const {
    std::string out = "[";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i > 0) out += ", ";
      out += entries_[i];
    }
    out += "]";
    return out;
  }

 private:
  std::vector<std::string> entries_;
};

/// Writes `root` to BENCH_<name>.json in QMQO_BENCH_OUT_DIR (default: the
/// working directory). Returns the path written, or "" on failure.
inline std::string WriteBenchArtifact(const std::string& name,
                                      const JsonObject& root) {
  const char* dir = std::getenv("QMQO_BENCH_OUT_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0' ? std::string(dir) + "/" : "") +
      "BENCH_" + name + ".json";
  std::ofstream out(path);
  if (!out) return "";
  out << root.Dump() << "\n";
  out.flush();  // surface buffered write errors before reporting success
  return out ? path : "";
}

/// The paper's four experiment classes: (plans/query, queries). Query
/// counts follow the paper; the workload generator clamps the 2-plan class
/// to the simulated chip's measured matching capacity (within ~1% of 537;
/// our defect map necessarily differs from the paper's machine).
struct PaperClass {
  int plans_per_query;
  int num_queries;
};

inline constexpr PaperClass kPaperClasses[] = {
    {2, 537}, {3, 253}, {4, 140}, {5, 108}};

/// Experiment configuration for one paper class, scaled by FullScale().
inline harness::ExperimentConfig MakeClassConfig(const PaperClass& cls,
                                                 uint64_t seed) {
  harness::ExperimentConfig config;
  config.workload.plans_per_query = cls.plans_per_query;
  config.workload.num_queries = cls.num_queries;
  // The paper's saving constant is unspecified; 2.0 is the calibration
  // where the quantum-advantage shape of Figures 4-6 holds while instances
  // stay tractable for the exact baselines (see EXPERIMENTS.md).
  config.workload.saving_scale = 2.0;
  config.num_instances = FullScale() ? 20 : 3;
  // Paper: 1e5 ms per algorithm. Full scale uses 10 s (the curves are flat
  // beyond that for these solvers); default 0.4 s keeps the suite fast.
  config.classical_time_limit_ms = FullScale() ? 10000.0 : 400.0;
  config.quantum.device.num_reads = FullScale() ? 1000 : 300;
  config.quantum.device.num_gauges = 10;
  config.seed = seed;
  // Instances fan out across the shared worker pool; QMQO_BENCH_THREADS=0
  // uses every core (see BenchThreads() for what stays deterministic).
  config.num_threads = BenchThreads();
  // QMQO_BENCH_KERNEL selects the device model's Metropolis sweep kernel
  // for the whole experiment class (default: the bit-exact scalar path).
  config.quantum.device.sweep_kernel = BenchKernel();
  return config;
}

/// Clamps a requested 2-plan query count to the chip's capacity.
inline int ClampQueries(const chimera::ChimeraGraph& graph,
                        const PaperClass& cls) {
  int capacity =
      embedding::MeasuredMaxQueries(graph, cls.plans_per_query);
  return capacity < cls.num_queries ? capacity : cls.num_queries;
}

}  // namespace bench
}  // namespace qmqo

#endif  // QMQO_BENCH_BENCH_COMMON_H_
