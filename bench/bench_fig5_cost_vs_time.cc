// Figure 5 of the paper: solution cost as a function of optimization time
// for the class with the most plans per query — 108 queries with 5 plans
// each — where the quantum advantage shrinks (more qubits per variable,
// larger invalid-state blowup in the QUBO reformulation).
// QMQO_BENCH_THREADS=N fans the class's instances across the shared
// worker pool (QA results are bit-identical at any thread count; the
// classical baselines' wall-clock budgets make their curves
// run-dependent either way — keep 1 thread when timing them).

#include "bench_figure_common.h"

int main() {
  using namespace qmqo::bench;
  return RunCostVsTimeFigure("Figure 5", kPaperClasses[3], /*seed=*/51);
}
