// Figure 5 of the paper: solution cost as a function of optimization time
// for the class with the most plans per query — 108 queries with 5 plans
// each — where the quantum advantage shrinks (more qubits per variable,
// larger invalid-state blowup in the QUBO reformulation).

#include "bench_figure_common.h"

int main() {
  using namespace qmqo::bench;
  return RunCostVsTimeFigure("Figure 5", kPaperClasses[3], /*seed=*/51);
}
