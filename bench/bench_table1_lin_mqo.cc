// Table 1 of the paper: "Milliseconds until finding the optimal solution
// via integer linear programming (LIN-MQO)" — min / median / max per
// class. The paper reports 9261/25205.5/34570 ms for 537 queries down to
// 47/48/51 ms for 108 queries.
//
// Two readings are reproduced:
//  (a) the paper classes with *time-to-best-found* under a time cap (our
//      from-scratch branch-and-bound finds the final incumbent quickly but
//      cannot complete CPLEX-grade optimality proofs at 500+ queries — a
//      documented substitution gap, see EXPERIMENTS.md);
//  (b) a proof-time growth sweep over sub-chip sizes where proofs finish,
//      showing Table 1's actual message: optimization time grows steeply
//      with the query count.
//
// QMQO_BENCH_THREADS=N fans instances across the shared worker pool —
// useful for shaking out the sweep quickly, but instances then contend
// for cores, so keep the default 1 thread when the reported wall-clock
// times are the measurement.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "solver/mqo_bnb.h"
#include "util/executor.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace qmqo;
  using namespace qmqo::bench;

  Rng chip_rng(1);
  chimera::ChimeraGraph graph =
      chimera::ChimeraGraph::DWave2XWithDefects(&chip_rng);

  const int instances = FullScale() ? 20 : 3;
  const double cap_ms = FullScale() ? 30000.0 : 2000.0;
  const int threads = BenchThreads();

  std::printf("=== Table 1 (a): time until LIN-MQO finds its final solution ===\n");
  std::printf("(%d instances per class, search capped at %.0f ms, "
              "%d fan-out threads%s)\n\n",
              instances, cap_ms, threads,
              FullScale() ? "" : "; QMQO_BENCH_FULL=1 for paper scale");

  TablePrinter table({"# queries", "plans", "min ms", "median ms", "max ms",
                      "proven", "paper (min/med/max ms)"});
  const char* paper_rows[] = {"9261 / 25205.5 / 34570", "129 / 178.5 / 206",
                              "45 / 128 / 241", "47 / 48 / 51"};

  for (size_t class_index = 0; class_index < 4; ++class_index) {
    const PaperClass& cls = kPaperClasses[class_index];
    int num_queries = ClampQueries(graph, cls);
    // Instances are independent (explicit per-instance seeds), so fan them
    // across the shared pool; per-slot results are aggregated in instance
    // order afterwards, keeping the table deterministic.
    std::vector<double> times(static_cast<size_t>(instances), 0.0);
    std::vector<uint8_t> proven_flags(static_cast<size_t>(instances), 0);
    std::vector<Status> statuses(static_cast<size_t>(instances));
    util::Executor::Run(
        nullptr, instances, threads,
        [&](int begin, int end, int /*chunk*/) {
          for (int instance_id = begin; instance_id < end; ++instance_id) {
            harness::PaperWorkloadOptions workload;
            workload.plans_per_query = cls.plans_per_query;
            workload.num_queries = num_queries;
            Rng rng(1000 * (class_index + 1) +
                    static_cast<uint64_t>(instance_id));
            auto instance =
                harness::GeneratePaperInstance(graph, workload, &rng);
            if (!instance.ok()) {
              statuses[static_cast<size_t>(instance_id)] = instance.status();
              continue;
            }
            solver::MqoBnbOptions options;
            options.time_limit_ms = cap_ms;
            solver::MqoBranchAndBound bnb(options);
            auto result = bnb.Solve(instance->problem);
            if (!result.ok()) {
              statuses[static_cast<size_t>(instance_id)] = result.status();
              continue;
            }
            times[static_cast<size_t>(instance_id)] =
                result->proven_optimal ? result->total_time_ms
                                       : result->time_to_best_ms;
            proven_flags[static_cast<size_t>(instance_id)] =
                result->proven_optimal ? 1 : 0;
          }
        });
    SummaryStats best_times;
    int proven = 0;
    for (int instance_id = 0; instance_id < instances; ++instance_id) {
      if (!statuses[static_cast<size_t>(instance_id)].ok()) {
        std::printf("instance failed: %s\n",
                    statuses[static_cast<size_t>(instance_id)]
                        .ToString()
                        .c_str());
        return 1;
      }
      best_times.Add(times[static_cast<size_t>(instance_id)]);
      proven += proven_flags[static_cast<size_t>(instance_id)];
    }
    table.AddRow({StrFormat("%d", num_queries),
                  StrFormat("%d", cls.plans_per_query),
                  StrFormat("%.1f", best_times.Min()),
                  StrFormat("%.1f", best_times.Median()),
                  StrFormat("%.1f", best_times.Max()),
                  StrFormat("%d/%d", proven, instances),
                  paper_rows[class_index]});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("=== Table 1 (b): proof-time growth with the query count ===\n");
  std::printf("(2-plan instances on sub-chips; full optimality proofs)\n\n");
  TablePrinter growth({"# queries", "chip", "min ms", "median ms", "max ms",
                       "proven"});
  struct SubChip {
    int rows;
    int cols;
  };
  const SubChip chips[] = {{2, 2}, {2, 4}, {3, 4}, {4, 4}};
  for (const SubChip& sub : chips) {
    chimera::ChimeraGraph small(sub.rows, sub.cols, 4);
    int num_queries = embedding::MeasuredMaxQueries(small, 2);
    std::vector<double> proof_time(static_cast<size_t>(instances), -1.0);
    std::vector<uint8_t> proven_flags(static_cast<size_t>(instances), 0);
    util::Executor::Run(
        nullptr, instances, threads,
        [&](int begin, int end, int /*chunk*/) {
          for (int instance_id = begin; instance_id < end; ++instance_id) {
            harness::PaperWorkloadOptions workload;
            workload.plans_per_query = 2;
            workload.num_queries = num_queries;
            Rng rng(9000 + static_cast<uint64_t>(instance_id) +
                    static_cast<uint64_t>(sub.rows * 100 + sub.cols));
            auto instance =
                harness::GeneratePaperInstance(small, workload, &rng);
            if (!instance.ok()) continue;
            solver::MqoBnbOptions options;
            options.time_limit_ms = FullScale() ? 120000.0 : 20000.0;
            auto result =
                solver::MqoBranchAndBound(options).Solve(instance->problem);
            if (!result.ok()) continue;
            proof_time[static_cast<size_t>(instance_id)] =
                result->total_time_ms;
            proven_flags[static_cast<size_t>(instance_id)] =
                result->proven_optimal ? 1 : 0;
          }
        });
    SummaryStats proof_times;
    int proven = 0;
    for (int instance_id = 0; instance_id < instances; ++instance_id) {
      if (proof_time[static_cast<size_t>(instance_id)] < 0.0) continue;
      proof_times.Add(proof_time[static_cast<size_t>(instance_id)]);
      proven += proven_flags[static_cast<size_t>(instance_id)];
    }
    growth.AddRow({StrFormat("%d", num_queries),
                   StrFormat("%dx%d cells", sub.rows, sub.cols),
                   StrFormat("%.1f", proof_times.Min()),
                   StrFormat("%.1f", proof_times.Median()),
                   StrFormat("%.1f", proof_times.Max()),
                   StrFormat("%d/%d", proven, instances)});
  }
  std::printf("%s\n", growth.ToString().c_str());
  std::printf(
      "(shape check vs the paper: time-to-solution spans orders of\n"
      "magnitude as the query count grows — 537-query instances are ~3\n"
      "orders harder than 108-query ones in Table 1; our proof sweep shows\n"
      "the same explosion at smaller absolute sizes because the paper's\n"
      "commercial LP-based solver prunes far better than our from-scratch\n"
      "combinatorial branch-and-bound)\n");
  return 0;
}
