// Figure 6 of the paper: average quantum speedup per test-case class as a
// function of qubits per logical variable. Speedup is the time the best
// classical solver needs to match the quality of the quantum annealer's
// first read, divided by the first read's modeled device time (376 us).
// The paper reads roughly 10^3+ at 1.0 qubits/variable (537 x 2), falling
// towards 10^2 as the ratio grows (108 x 5).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace qmqo;
  using namespace qmqo::bench;

  Rng chip_rng(1);
  chimera::ChimeraGraph graph =
      chimera::ChimeraGraph::DWave2XWithDefects(&chip_rng);

  std::printf("=== Figure 6: quantum speedup vs qubits per variable ===\n\n");
  TablePrinter table({"class", "qubits/var", "mean speedup", "median",
                      "matched instances"});

  for (size_t class_index = 0; class_index < 4; ++class_index) {
    const PaperClass& cls = kPaperClasses[class_index];
    harness::ExperimentConfig config =
        MakeClassConfig(cls, /*seed=*/61 + class_index);
    config.workload.num_queries = ClampQueries(graph, cls);
    // The speedup only needs the QA first read and the classical
    // trajectories; LIN-QUB rarely matches and dominates runtime, so skip
    // it in the scaled-down configuration.
    config.run_lin_qub = FullScale();

    auto result = harness::RunExperimentClass(config, graph);
    if (!result.ok()) {
      std::printf("class %dx%d failed: %s\n", config.workload.num_queries,
                  cls.plans_per_query, result.status().ToString().c_str());
      return 1;
    }
    SummaryStats speedups;
    int matched = 0;
    for (const harness::InstanceRun& run : result->instances) {
      double speedup = harness::QuantumSpeedup(run);
      if (std::isfinite(speedup)) {
        speedups.Add(speedup);
        ++matched;
      } else {
        // No classical solver matched QA's first read within its budget:
        // record the budget as a (conservative) lower bound.
        speedups.Add(config.classical_time_limit_ms / run.qa_read_ms);
      }
    }
    table.AddRow({StrFormat("%d queries x %d plans",
                            config.workload.num_queries, cls.plans_per_query),
                  StrFormat("%.2f", harness::QubitsPerVariable(*result)),
                  StrFormat("%.0fx", speedups.Mean()),
                  StrFormat("%.0fx", speedups.Median()),
                  StrFormat("%d/%zu", matched, result->instances.size())});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(unmatched instances contribute the classical budget as a lower\n"
      "bound, so reported speedups are conservative; the paper's Fig. 6\n"
      "shows the same downward trend from ~10^3-10^4 at 1.0 qubit/var to\n"
      "~10^2 at 1.6 qubits/var)\n");
  return 0;
}
