// Microbenchmarks for the preprocessing pipeline (Section 6 of the paper):
// logical mapping, embedding construction, and physical mapping. The paper
// reports 112-135 ms of (unoptimized) preprocessing per 537-query test
// case; these benchmarks measure our implementation and verify the
// O(n * (m*l)^2) growth empirically.

#include <benchmark/benchmark.h>

#include "chimera/topology.h"
#include "embedding/clustered.h"
#include "embedding/embedded_qubo.h"
#include "embedding/triad.h"
#include "harness/paper_workload.h"
#include "mapping/logical_mapping.h"
#include "util/rng.h"

namespace {

using namespace qmqo;

/// Builds the chip + instance pair used by the mapping benchmarks.
harness::PaperInstance MakeInstance(int plans_per_query, int num_queries,
                                    chimera::ChimeraGraph* graph) {
  Rng chip_rng(1);
  *graph = chimera::ChimeraGraph::DWave2XWithDefects(&chip_rng);
  harness::PaperWorkloadOptions options;
  options.plans_per_query = plans_per_query;
  options.num_queries = num_queries;
  Rng rng(7);
  auto instance = harness::GeneratePaperInstance(*graph, options, &rng);
  if (!instance.ok()) std::abort();
  return std::move(*instance);
}

void BM_LogicalMapping(benchmark::State& state) {
  chimera::ChimeraGraph graph(1, 1, 4);
  harness::PaperInstance instance =
      MakeInstance(2, static_cast<int>(state.range(0)), &graph);
  for (auto _ : state) {
    auto mapping = mapping::LogicalMapping::Create(instance.problem);
    benchmark::DoNotOptimize(mapping);
  }
  state.SetLabel("queries=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_LogicalMapping)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_PhysicalMapping(benchmark::State& state) {
  chimera::ChimeraGraph graph(1, 1, 4);
  harness::PaperInstance instance =
      MakeInstance(2, static_cast<int>(state.range(0)), &graph);
  auto mapping = mapping::LogicalMapping::Create(instance.problem);
  for (auto _ : state) {
    auto embedded = embedding::EmbeddedQubo::Create(
        mapping->qubo(), instance.embedding, graph);
    benchmark::DoNotOptimize(embedded);
  }
  state.SetLabel("queries=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PhysicalMapping)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_EndToEndPreprocessing(benchmark::State& state) {
  // The paper's "preprocessing time" quantity: logical + physical mapping
  // for a full 537-query class instance (theirs: 112-135 ms).
  chimera::ChimeraGraph graph(1, 1, 4);
  harness::PaperInstance instance =
      MakeInstance(2, static_cast<int>(state.range(0)), &graph);
  for (auto _ : state) {
    auto mapping = mapping::LogicalMapping::Create(instance.problem);
    auto embedded = embedding::EmbeddedQubo::Create(
        mapping->qubo(), instance.embedding, graph);
    benchmark::DoNotOptimize(embedded);
  }
  state.SetLabel("queries=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EndToEndPreprocessing)->Arg(512);

void BM_TriadEmbedding(benchmark::State& state) {
  // TRIAD construction for K_n: Theorem 3's Theta(n^2/L) qubit growth.
  chimera::ChimeraGraph graph = chimera::ChimeraGraph::DWave2X();
  int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto embedding = embedding::TriadEmbedder::Embed(n, graph);
    benchmark::DoNotOptimize(embedding);
  }
  auto embedding = embedding::TriadEmbedder::Embed(n, graph);
  state.SetLabel("qubits=" + std::to_string(embedding->TotalQubits()));
}
BENCHMARK(BM_TriadEmbedding)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_ClusteredEmbedding(benchmark::State& state) {
  // Clustered embedding scales linearly in the cluster count (Theorem 3).
  chimera::ChimeraGraph graph = chimera::ChimeraGraph::DWave2X();
  std::vector<int> sizes(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto embedding = embedding::ClusteredEmbedder::Embed(sizes, graph);
    benchmark::DoNotOptimize(embedding);
  }
}
BENCHMARK(BM_ClusteredEmbedding)->Arg(16)->Arg(64)->Arg(144);

void BM_PairMatching(benchmark::State& state) {
  Rng rng(1);
  chimera::ChimeraGraph graph =
      chimera::ChimeraGraph::DWave2XWithDefects(&rng);
  for (auto _ : state) {
    auto pairs = embedding::PairMatchingEmbedder::MatchPairs(graph);
    benchmark::DoNotOptimize(pairs);
  }
}
BENCHMARK(BM_PairMatching);

}  // namespace

BENCHMARK_MAIN();
