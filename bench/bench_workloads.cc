// Workloads benchmark: one planted instance per combinatorial workload
// kind (max-clique, max-cut, graph coloring) solved repeatedly through the
// resilient ladder's bare-QUBO path (`ResilientSolver::SolveQubo`) at
// 1/2/4 sampler threads.
//
// Measured per (workload, threads): solve throughput (solves_per_sec) and
// a stage breakdown (formulate / solve / decode, informational stage_*
// fields). The bench *fails* (exit 1) unless every run recovers the
// generator-planted optimum with a feasible decoded solution and every
// parallel run's answers (assignment bits, energy, decoded labels) are
// byte-identical to the serial run. The ladder is {SA, greedy} with one
// attempt per rung, so the fault-free hot path gates in diff_bench.py
// (solver_retries / solver_fallbacks == 0) apply. Results go to
// BENCH_workloads.json for diff_bench.py (--metric solves_per_sec).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/resilient_solver.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workloads/coloring.h"
#include "workloads/graph.h"
#include "workloads/max_clique.h"
#include "workloads/max_cut.h"
#include "workloads/workload.h"

namespace {

using namespace qmqo;

constexpr uint64_t kSeed = 20260808;

std::string Fingerprint(const harness::SolveReport& report,
                        const workloads::WorkloadSolution& solution) {
  std::string bits;
  bits.reserve(report.qubo_assignment.size());
  for (uint8_t bit : report.qubo_assignment) bits += bit ? '1' : '0';
  std::string labels;
  for (int label : solution.labels) labels += StrFormat("%d,", label);
  return StrFormat("backend=%d energy=%.17g obj=%.17g feas=%d x=%s l=%s",
                   static_cast<int>(report.backend), report.qubo_energy,
                   solution.objective, solution.feasible ? 1 : 0,
                   bits.c_str(), labels.c_str());
}

struct KindResult {
  std::vector<std::string> fingerprints;  // one per repetition
  double wall_ms = 0.0;
  double solve_ms = 0.0;
  double decode_ms = 0.0;
  int retries = 0;
  int fallbacks = 0;
  int64_t faults = 0;
  bool recovered = true;  // planted optimum, feasible, zero gap, every rep
};

KindResult RunKind(const workloads::Workload& workload, int threads,
                   int repetitions) {
  harness::SolvePolicy policy;
  policy.seed = kSeed;
  policy.max_attempts_per_backend = 1;
  // SA answers on the first rung: the default bench run must stay on the
  // fault-free hot path (zero retries, zero fallbacks) for diff_bench.py.
  policy.ladder = {harness::SolveBackend::kSa, harness::SolveBackend::kGreedy};
  policy.sa_reads = 16;
  policy.sa_sweeps = 128;
  harness::ResilientSolver solver(policy);

  KindResult result;
  Stopwatch total;
  for (int rep = 0; rep < repetitions; ++rep) {
    harness::QuantumMqoOptions options;
    options.device.num_threads = threads;
    options.device.sweep_kernel = bench::BenchKernel();
    Stopwatch solve_watch;
    harness::SolveReport report = solver.SolveQubo(workload.qubo(), options);
    result.solve_ms += solve_watch.ElapsedMillis();
    if (!report.ok) {
      std::fprintf(stderr, "%s: solve failed: %s\n",
                   workload.name().c_str(), report.FailureChain().c_str());
      result.recovered = false;
      continue;
    }
    Stopwatch decode_watch;
    workloads::WorkloadSolution solution =
        workload.Decode(report.qubo_assignment);
    result.decode_ms += decode_watch.ElapsedMillis();
    result.retries += report.retries;
    result.fallbacks += report.fallbacks;
    result.faults += report.faults_observed;
    result.fingerprints.push_back(Fingerprint(report, solution));
    const bool feasible =
        solution.feasible && workload.ValidateFeasible(solution).ok();
    const double gap = workload.OptimalityGap(solution);
    if (!feasible || gap > 1e-9) {
      std::fprintf(stderr,
                   "%s: planted optimum not recovered (feasible=%d "
                   "objective=%.17g planted=%.17g gap=%.3g)\n",
                   workload.name().c_str(), feasible ? 1 : 0,
                   solution.objective, workload.known_optimum(), gap);
      result.recovered = false;
    }
  }
  result.wall_ms = total.ElapsedMillis();
  return result;
}

}  // namespace

int main() {
  const int repetitions = bench::FullScale() ? 64 : 16;

  // One planted instance per kind, fixed seeds: the planted optimum is
  // provable from the construction (degree-capped clique, bipartite cut,
  // k-partite coloring), so "recovered" below is ground truth, not a
  // heuristic consensus.
  std::vector<std::shared_ptr<workloads::Workload>> kinds;
  {
    auto clique = workloads::MaxCliqueWorkload::MakePlanted(
        /*num_nodes=*/24, /*clique_size=*/5, /*edge_prob=*/0.3, kSeed + 1);
    if (!clique.ok()) {
      std::fprintf(stderr, "clique generation failed: %s\n",
                   clique.status().ToString().c_str());
      return 1;
    }
    kinds.push_back(*clique);
    auto cut_instance = workloads::PlantedCutGraph(
        /*num_nodes=*/24, /*edge_prob=*/0.4, /*max_weight=*/3.0, kSeed + 2);
    if (!cut_instance.ok()) {
      std::fprintf(stderr, "cut generation failed: %s\n",
                   cut_instance.status().ToString().c_str());
      return 1;
    }
    auto cut = workloads::MaxCutWorkload::Create(
        cut_instance->graph, cut_instance->graph.total_weight());
    if (!cut.ok()) return 1;
    kinds.push_back(*cut);
    auto coloring = workloads::ColoringWorkload::MakePlanted(
        /*num_nodes=*/18, /*num_colors=*/3, /*edge_prob=*/0.4, kSeed + 3);
    if (!coloring.ok()) {
      std::fprintf(stderr, "coloring generation failed: %s\n",
                   coloring.status().ToString().c_str());
      return 1;
    }
    kinds.push_back(*coloring);
  }

  bench::JsonObject root;
  root.Add("bench", "workloads");
  root.Add("repetitions", static_cast<int64_t>(repetitions));
  root.Add("full_scale", bench::FullScale());

  bool all_identical = true;
  bool all_recovered = true;
  int total_retries = 0;
  int total_fallbacks = 0;
  int64_t total_faults = 0;
  double stage_solve_ms = 0.0;
  double stage_decode_ms = 0.0;
  bench::JsonArray runs;
  for (const auto& workload : kinds) {
    const std::string engine =
        std::string("workload_") + workloads::WorkloadKindName(workload->kind());
    std::vector<std::string> serial_fingerprints;
    for (int threads : {1, 2, 4}) {
      KindResult result = RunKind(*workload, threads, repetitions);
      bool identical = true;
      if (threads == 1) {
        serial_fingerprints = result.fingerprints;
        stage_solve_ms += result.solve_ms;
        stage_decode_ms += result.decode_ms;
      } else {
        identical = result.fingerprints == serial_fingerprints;
        all_identical = all_identical && identical;
      }
      all_recovered = all_recovered && result.recovered;
      total_retries += result.retries;
      total_fallbacks += result.fallbacks;
      total_faults += result.faults;
      const double wall_sec = result.wall_ms / 1000.0;
      const double throughput =
          wall_sec > 0.0 ? static_cast<double>(repetitions) / wall_sec : 0.0;
      bench::JsonObject row;
      row.Add("engine", engine);
      row.Add("threads", static_cast<int64_t>(threads));
      row.Add("wall_ms", result.wall_ms);
      row.Add("solves_per_sec", throughput);
      row.Add("num_vars", static_cast<int64_t>(workload->qubo().num_vars()));
      row.Add("recovered_planted_optimum", result.recovered);
      row.Add("identical_to_serial", identical);
      runs.Add(row);
      std::printf(
          "%-22s threads=%d  vars=%d  wall=%.1f ms  %.1f solves/s  "
          "recovered=%s  identical=%s\n",
          engine.c_str(), threads, workload->qubo().num_vars(),
          result.wall_ms, throughput, result.recovered ? "yes" : "NO",
          identical ? "yes" : "NO");
    }
  }
  root.AddRaw("runs", runs.Dump());

  // Fault-free hot path: the default run arms no fault injector and SA
  // answers on its first attempt, so these must be exactly zero (gated by
  // diff_bench.py).
  root.Add("injected_faults", total_faults);
  root.Add("solver_retries", static_cast<int64_t>(total_retries));
  root.Add("solver_fallbacks", static_cast<int64_t>(total_fallbacks));
  root.Add("all_recovered_planted_optima", all_recovered);
  root.Add("all_identical_to_serial", all_identical);
  // Stage breakdown of the serial runs (informational, not gated).
  root.Add("stage_solve_ms", stage_solve_ms);
  root.Add("stage_decode_ms", stage_decode_ms);

  std::string path = bench::WriteBenchArtifact("workloads", root);
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_workloads.json\n");
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel workload solves diverged from "
                         "serial\n");
    return 1;
  }
  if (!all_recovered) {
    std::fprintf(stderr, "FAIL: a workload run missed its planted "
                         "optimum or decoded infeasibly\n");
    return 1;
  }
  return 0;
}
