// Annealing-engine benchmark: read throughput of the SA kernel, the SQA
// path-integral kernel, and a full device call on a 2048-spin
// Chimera-structured spin glass (16x16 cells, shore 4 — one size up from
// the paper's 1152-qubit D-Wave 2X, exercising the same degree-6 sparsity).
//
// For each engine the serial path (1 thread) is compared against parallel
// read fan-out; the benchmark *fails* (exit 1) unless the parallel sample
// sets are bit-identical to serial. The SA engine runs once per sweep
// kernel (scalar / checkerboard / checkerboard_fast — one row group each);
// the SQA and device engines follow QMQO_BENCH_KERNEL. Results go to
// BENCH_annealer.json (sweeps*spins/sec, wall time, thread count, kernel,
// serial kernel speedups) so the perf trajectory is machine-trackable
// across PRs.

#include <sys/resource.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "anneal/dwave_simulator.h"
#include "anneal/sample_set.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "bench_common.h"
#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/resilient_solver.h"
#include "obs/trace.h"
#include "qubo/ising.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace qmqo;

/// A random spin glass on the full 16x16x4 Chimera graph: couplings on
/// every coupler, fields on every qubit.
qubo::IsingProblem MakeChimeraGlass(Rng* rng) {
  chimera::ChimeraGraph graph(16, 16, 4);
  qubo::IsingProblem ising(graph.num_qubits());
  for (chimera::QubitId q = 0; q < graph.num_qubits(); ++q) {
    ising.AddField(q, rng->UniformReal(-1.0, 1.0));
    for (chimera::QubitId other : graph.Neighbors(q)) {
      if (other > q) {
        ising.AddCoupling(q, other, rng->UniformReal(-1.0, 1.0));
      }
    }
  }
  return ising;
}

/// The seed's SA read path, replicated verbatim for comparison: pair-vector
/// adjacency walked per neighbor access, serial reads. Same RNG stream and
/// neighbor order as the CSR kernel, so its SampleSet must be bit-identical
/// — only the memory layout (and therefore the throughput) differs.
anneal::SampleSet RunLegacySa(const qubo::IsingProblem& ising,
                              const anneal::SaOptions& options) {
  const int n = ising.num_spins();
  std::vector<std::vector<std::pair<qubo::VarId, double>>> adjacency(
      static_cast<size_t>(n));
  for (const qubo::Interaction& term : ising.couplings()) {
    adjacency[static_cast<size_t>(term.i)].emplace_back(term.j, term.weight);
    adjacency[static_cast<size_t>(term.j)].emplace_back(term.i, term.weight);
  }
  auto [hot, cold] = anneal::SuggestBetaRange(ising);
  anneal::Schedule beta = options.beta;
  beta.start = hot;
  beta.end = cold;

  Rng rng(options.seed);
  anneal::SampleSet out;
  std::vector<int8_t> spins(static_cast<size_t>(n));
  std::vector<double> field(static_cast<size_t>(n));
  for (int read = 0; read < options.num_reads; ++read) {
    Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
    for (auto& s : spins) {
      s = read_rng.Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
    }
    for (qubo::VarId i = 0; i < n; ++i) {
      double f = ising.field(i);
      for (const auto& [j, w] : adjacency[static_cast<size_t>(i)]) {
        f += w * static_cast<double>(spins[static_cast<size_t>(j)]);
      }
      field[static_cast<size_t>(i)] = f;
    }
    for (int sweep = 0; sweep < options.sweeps_per_read; ++sweep) {
      double b = beta.At(sweep, options.sweeps_per_read);
      for (qubo::VarId i = 0; i < n; ++i) {
        double s_i = static_cast<double>(spins[static_cast<size_t>(i)]);
        double delta = -2.0 * s_i * field[static_cast<size_t>(i)];
        if (delta <= 0.0 ||
            read_rng.UniformReal(0.0, 1.0) < std::exp(-b * delta)) {
          spins[static_cast<size_t>(i)] = static_cast<int8_t>(-s_i);
          double change = -2.0 * s_i;
          for (const auto& [j, w] : adjacency[static_cast<size_t>(i)]) {
            field[static_cast<size_t>(j)] += w * change;
          }
        }
      }
    }
    out.Add(qubo::SpinsToAssignment(spins), ising.Energy(spins));
  }
  out.Finalize();
  return out;
}

bool Identical(const anneal::SampleSet& a, const anneal::SampleSet& b) {
  if (a.total_reads() != b.total_reads()) return false;
  if (a.samples().size() != b.samples().size()) return false;
  for (size_t i = 0; i < a.samples().size(); ++i) {
    if (a.samples()[i].assignment != b.samples()[i].assignment) return false;
    if (a.samples()[i].energy != b.samples()[i].energy) return false;
    if (a.samples()[i].num_occurrences != b.samples()[i].num_occurrences) {
      return false;
    }
  }
  return true;
}

struct RunResult {
  anneal::SampleSet samples;
  double wall_ms = 0.0;
};

/// One benchmark block: runs `run(threads)` for each thread count, checks
/// the parallel results against the 1-thread baseline, records rows.
template <typename Runner>
bool BenchEngine(const std::string& engine, const std::string& kernel,
                 const std::vector<int>& threads, double sweep_spins_per_run,
                 bench::JsonArray* rows, const Runner& run,
                 RunResult* serial_out = nullptr) {
  bool all_identical = true;
  RunResult serial;
  for (int t : threads) {
    RunResult result = run(t);
    bool identical = true;
    if (t == 1) {
      serial = result;
    } else {
      identical = Identical(serial.samples, result.samples);
      all_identical = all_identical && identical;
    }
    double throughput = sweep_spins_per_run / (result.wall_ms / 1000.0);
    bench::JsonObject row;
    row.Add("engine", engine)
        .Add("kernel", kernel)
        .Add("threads", t)
        .Add("wall_ms", result.wall_ms)
        .Add("sweep_spins_per_sec", throughput)
        .Add("best_energy", result.samples.best().energy)
        .Add("identical_to_serial", identical);
    rows->Add(row);
    std::printf(
        "%-20s threads=%2d  wall=%9.1f ms  sweeps*spins/s=%.3e  best=%.4f%s\n",
        engine.c_str(), t, result.wall_ms, throughput,
        result.samples.best().energy, identical ? "" : "  MISMATCH");
  }
  if (serial_out != nullptr) *serial_out = serial;
  return all_identical;
}

}  // namespace

int main() {
  const bool full = bench::FullScale();
  Rng instance_rng(2048);
  qubo::IsingProblem glass = MakeChimeraGlass(&instance_rng);
  glass.Finalize();
  const int n = glass.num_spins();
  const int num_couplings = static_cast<int>(glass.couplings().size());
  std::printf("instance: %d-spin Chimera(16x16x4) glass, %d couplings\n", n,
              num_couplings);

  const std::vector<int> threads = {1, 2, 4, 8};
  bench::JsonArray rows;
  bool all_identical = true;

  // One worker pool for the whole bench, sized to the largest thread
  // count: every engine run below enqueues on it, so after this line the
  // process-wide spawn counter must not move — the reuse gate at the
  // bottom fails the bench if any run spawned threads of its own.
  qmqo::util::Executor pool(8);
  const int64_t workers_spawned_baseline =
      qmqo::util::Executor::TotalWorkersSpawned();

  // --- SA: the acceptance-criteria engine, once per sweep kernel. The
  // scalar rows keep the engine name "sa" (the frozen baseline key); the
  // checkerboard kernels get their own rows so diff_bench.py can hold
  // kCheckerboard to at least kScalar throughput and track the
  // kCheckerboardFast speedup. ---
  anneal::SaOptions sa;
  sa.num_reads = full ? 256 : 48;
  sa.sweeps_per_read = 256;
  sa.seed = 7;
  sa.executor = &pool;
  const double sa_sweep_spins =
      static_cast<double>(sa.num_reads) * sa.sweeps_per_read * n;
  auto run_sa = [&](anneal::SweepKernel kernel, int t) {
    anneal::SaOptions options = sa;
    options.num_threads = t;
    options.sweep_kernel = kernel;
    Stopwatch clock;
    RunResult result;
    result.samples = anneal::SimulatedAnnealer(options).SampleIsing(glass);
    result.wall_ms = clock.ElapsedMillis();
    return result;
  };
  RunResult sa_serial;
  all_identical &= BenchEngine(
      "sa", "scalar", threads, sa_sweep_spins, &rows,
      [&](int t) { return run_sa(anneal::SweepKernel::kScalar, t); },
      &sa_serial);
  RunResult sa_checkerboard_serial;
  all_identical &= BenchEngine(
      "sa_checkerboard", "checkerboard", threads, sa_sweep_spins, &rows,
      [&](int t) { return run_sa(anneal::SweepKernel::kCheckerboard, t); },
      &sa_checkerboard_serial);
  RunResult sa_fast_serial;
  all_identical &= BenchEngine(
      "sa_checkerboard_fast", "checkerboard_fast", threads, sa_sweep_spins,
      &rows,
      [&](int t) { return run_sa(anneal::SweepKernel::kCheckerboardFast, t); },
      &sa_fast_serial);
  const double checkerboard_speedup =
      sa_serial.wall_ms / sa_checkerboard_serial.wall_ms;
  const double checkerboard_fast_speedup =
      sa_serial.wall_ms / sa_fast_serial.wall_ms;
  std::printf(
      "serial kernel speedup vs scalar: checkerboard %.2fx, "
      "checkerboard_fast %.2fx\n",
      checkerboard_speedup, checkerboard_fast_speedup);

  // --- Seed reference path: pair-vector adjacency, serial reads. Must be
  // bit-identical to the CSR kernel; the wall-time ratio is the layout
  // speedup this PR's acceptance criterion measures against. ---
  double legacy_speedup = 0.0;
  {
    Stopwatch clock;
    anneal::SampleSet legacy = RunLegacySa(glass, sa);
    double wall_ms = clock.ElapsedMillis();
    bool identical = Identical(legacy, sa_serial.samples);
    all_identical &= identical;
    legacy_speedup = wall_ms / sa_serial.wall_ms;
    double throughput = sa_sweep_spins / (wall_ms / 1000.0);
    bench::JsonObject row;
    row.Add("engine", "sa_legacy")
        .Add("kernel", "scalar")
        .Add("threads", 1)
        .Add("wall_ms", wall_ms)
        .Add("sweep_spins_per_sec", throughput)
        .Add("best_energy", legacy.best().energy)
        .Add("identical_to_serial", identical);
    rows.Add(row);
    std::printf(
        "%-20s threads= 1  wall=%9.1f ms  sweeps*spins/s=%.3e  best=%.4f%s\n",
        "legacy", wall_ms, throughput, legacy.best().energy,
        identical ? "" : "  MISMATCH");
    std::printf("CSR serial speedup over seed pair-vector path: %.2fx\n",
                legacy_speedup);
  }

  // --- Memory accounting: bytes per retained sample on the serial SA
  // result. `bytes_per_sample` is measured (packed arena words + entry
  // records over the retained count); the unpacked reference is the
  // byte-vector representation this storage replaced — one heap
  // `std::vector<uint8_t>` per sample (n payload bytes + vector header)
  // plus the energy/count fields. diff_bench.py gates the ratio at >= 4x
  // for the 2048-spin instance. ---
  const size_t retained = sa_serial.samples.samples().size();
  const double bytes_per_sample =
      retained > 0 ? static_cast<double>(sa_serial.samples.memory_bytes()) /
                         static_cast<double>(retained)
                   : 0.0;
  const double unpacked_bytes_per_sample =
      static_cast<double>(n) +
      static_cast<double>(sizeof(std::vector<uint8_t>)) +
      static_cast<double>(sizeof(double) + sizeof(int));
  const double packed_memory_reduction =
      bytes_per_sample > 0.0 ? unpacked_bytes_per_sample / bytes_per_sample
                             : 0.0;
  std::printf(
      "memory: %.1f B/sample packed (%zu retained) vs %.1f B/sample "
      "unpacked representation -> %.2fx reduction\n",
      bytes_per_sample, retained, unpacked_bytes_per_sample,
      packed_memory_reduction);

  // --- SQA: P coupled replicas, so a "sweep" touches P * n spins. The
  // sweep kernel follows QMQO_BENCH_KERNEL (default scalar), keyed into
  // the engine name so the frozen "sqa" baseline row stays scalar. ---
  const anneal::SweepKernel bench_kernel = bench::BenchKernel();
  const std::string kernel_name = anneal::SweepKernelName(bench_kernel);
  const std::string kernel_suffix =
      bench_kernel == anneal::SweepKernel::kScalar ? "" : "_" + kernel_name;
  anneal::SqaOptions sqa;
  sqa.num_reads = full ? 16 : 4;
  sqa.num_slices = 8;
  sqa.sweeps = 32;
  sqa.seed = 7;
  sqa.executor = &pool;
  sqa.sweep_kernel = bench_kernel;
  const double sqa_sweep_spins = static_cast<double>(sqa.num_reads) *
                                 sqa.sweeps * sqa.num_slices * n;
  all_identical &= BenchEngine("sqa" + kernel_suffix, kernel_name, threads,
                               sqa_sweep_spins, &rows,
                               [&](int t) {
                                 anneal::SqaOptions options = sqa;
                                 options.num_threads = t;
                                 Stopwatch clock;
                                 RunResult result;
                                 result.samples =
                                     anneal::SimulatedQuantumAnnealer(options)
                                         .SampleIsing(glass);
                                 result.wall_ms = clock.ElapsedMillis();
                                 return result;
                               });

  // --- Full device call (gauges + control error + SA backend), on the
  // QMQO_BENCH_KERNEL-selected kernel like SQA above. ---
  qubo::QuboWithOffset as_qubo = qubo::IsingToQubo(glass);
  anneal::DWaveOptions device;
  device.num_reads = full ? 200 : 50;
  device.num_gauges = 5;
  device.sa_sweeps = 256;
  device.seed = 7;
  device.executor = &pool;
  device.sweep_kernel = bench_kernel;
  const double device_sweep_spins =
      static_cast<double>(device.num_reads) * device.sa_sweeps * n;
  all_identical &= BenchEngine(
      "device" + kernel_suffix, kernel_name, threads, device_sweep_spins,
      &rows, [&](int t) {
        anneal::DWaveOptions options = device;
        options.num_threads = t;
        Stopwatch clock;
        RunResult result;
        auto device_result =
            anneal::DWaveSimulator(options).Sample(as_qubo.qubo);
        if (!device_result.ok()) {
          std::fprintf(stderr, "device call failed: %s\n",
                       device_result.status().message().c_str());
          std::exit(1);
        }
        result.samples = std::move(device_result->samples);
        result.wall_ms = clock.ElapsedMillis();
        return result;
      });

  // --- Resilient orchestrator, no-fault hot path: one resilient MQO solve
  // on a 4x4x4 paper instance through the shared pool. The interesting
  // numbers are the fault/retry/fallback totals — all must stay zero in
  // the default bench (one null-pointer test per fault site is the entire
  // cost of the fault machinery), which diff_bench.py gates. ---
  double resilient_wall_ms = 0.0;
  harness::SolveReport solve_report;
  // Traced (the per-stage rows below come from its span tree); the timed
  // engine rows above run untraced, so the trace costs the hot path
  // nothing.
  obs::SolveTrace solve_trace;
  {
    Rng workload_rng(4);
    chimera::ChimeraGraph chip(4, 4, 4);
    harness::PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 16;
    auto paper = harness::GeneratePaperInstance(chip, workload, &workload_rng);
    if (!paper.ok()) {
      std::fprintf(stderr, "paper workload failed: %s\n",
                   paper.status().message().c_str());
      return 1;
    }
    harness::SolvePolicy policy;
    policy.seed = 7;
    harness::QuantumMqoOptions solve_options;
    solve_options.device.num_reads = full ? 200 : 50;
    solve_options.device.num_gauges = 5;
    solve_options.device.sa_sweeps = 64;
    solve_options.device.num_threads = 4;
    solve_options.device.executor = &pool;
    solve_options.trace = &solve_trace;
    Stopwatch clock;
    solve_report = harness::ResilientSolver(policy).Solve(
        paper->problem, paper->embedding, chip, solve_options);
    resilient_wall_ms = clock.ElapsedMillis();
    if (!solve_report.ok) {
      std::fprintf(stderr, "resilient solve failed: %s\n",
                   solve_report.FailureChain().c_str());
      return 1;
    }
    std::printf(
        "resilient solve: backend=%s wall=%.1f ms cost=%.1f faults=%lld "
        "retries=%d fallbacks=%d\n",
        harness::SolveBackendName(solve_report.backend), resilient_wall_ms,
        solve_report.cost,
        static_cast<long long>(solve_report.faults_observed),
        solve_report.retries, solve_report.fallbacks);
    std::printf(
        "  stages: embed=%.2f anneal=%.2f unembed=%.2f merge=%.2f ms (wall)\n",
        solve_trace.WallTotal("pipeline.embed"),
        solve_trace.WallTotal("pipeline.anneal"),
        solve_trace.WallTotal("pipeline.unembed"),
        solve_trace.WallTotal("pipeline.merge"));
  }

  // Pool-reuse gate: every parallel run above must have executed on the
  // one pool created before the timed section.
  const int64_t workers_spawned_during_runs =
      qmqo::util::Executor::TotalWorkersSpawned() - workers_spawned_baseline;
  std::printf("worker threads spawned during timed runs: %lld (pool size %d)\n",
              static_cast<long long>(workers_spawned_during_runs),
              pool.num_threads());

  // Peak resident set of the whole bench process, for tracking the memory
  // trajectory across PRs next to the per-sample accounting (machine- and
  // allocator-dependent, so reported rather than gated).
  struct rusage usage;
  const int64_t peak_rss_kb =
      getrusage(RUSAGE_SELF, &usage) == 0
          ? static_cast<int64_t>(usage.ru_maxrss)
          : 0;
  std::printf("peak RSS: %lld KB\n", static_cast<long long>(peak_rss_kb));

  bench::JsonObject root;
  root.Add("bench", "annealer")
      .Add("spins", n)
      .Add("couplings", num_couplings)
      .Add("topology", "chimera_16x16x4")
      .Add("full_scale", full)
      .Add("all_identical_to_serial", all_identical)
      .Add("csr_serial_speedup_vs_legacy", legacy_speedup)
      .Add("bench_kernel", kernel_name)
      .Add("checkerboard_speedup_vs_scalar", checkerboard_speedup)
      .Add("checkerboard_fast_speedup_vs_scalar", checkerboard_fast_speedup)
      .Add("bytes_per_sample", bytes_per_sample)
      .Add("unpacked_bytes_per_sample", unpacked_bytes_per_sample)
      .Add("packed_memory_reduction", packed_memory_reduction)
      .Add("peak_rss_kb", peak_rss_kb)
      .Add("resilient_backend",
           std::string(harness::SolveBackendName(solve_report.backend)))
      .Add("resilient_wall_ms", resilient_wall_ms)
      .Add("injected_faults",
           static_cast<int64_t>(solve_report.faults_observed))
      .Add("solver_retries", solve_report.retries)
      .Add("solver_fallbacks", solve_report.fallbacks)
      .Add("stage_embed_wall_ms", solve_trace.WallTotal("pipeline.embed"))
      .Add("stage_anneal_wall_ms", solve_trace.WallTotal("pipeline.anneal"))
      .Add("stage_unembed_wall_ms", solve_trace.WallTotal("pipeline.unembed"))
      .Add("stage_merge_wall_ms", solve_trace.WallTotal("pipeline.merge"))
      .Add("stage_anneal_modeled_ms",
           solve_trace.ModeledTotal("pipeline.anneal"))
      .Add("trace_spans", static_cast<int64_t>(solve_trace.spans().size()))
      .Add("executor_pool_size", pool.num_threads())
      .Add("workers_spawned_during_runs",
           static_cast<int64_t>(workers_spawned_during_runs))
      .AddRaw("runs", rows.Dump());
  std::string path = bench::WriteBenchArtifact("annealer", root);
  if (path.empty()) {
    std::fprintf(stderr, "failed to write BENCH_annealer.json\n");
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: parallel sample sets differ from the serial path\n");
    return 1;
  }
  if (workers_spawned_during_runs != 0) {
    std::fprintf(stderr,
                 "FAIL: engines spawned %lld threads instead of reusing the "
                 "shared pool\n",
                 static_cast<long long>(workers_spawned_during_runs));
    return 1;
  }
  return 0;
}
