// Microbenchmarks for the annealing backends: sweep throughput of the
// classical SA kernel, the SQA path-integral kernel, and a full device
// call, on physical problems of the paper's scale (~1100 qubits for the
// 537 x 2 class).

#include <benchmark/benchmark.h>

#include "anneal/dwave_simulator.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "embedding/embedded_qubo.h"
#include "harness/paper_workload.h"
#include "mapping/logical_mapping.h"
#include "util/rng.h"

namespace {

using namespace qmqo;

/// The physical QUBO of a paper-class instance.
qubo::QuboProblem MakePhysical(int plans_per_query, int num_queries) {
  Rng chip_rng(1);
  chimera::ChimeraGraph graph =
      chimera::ChimeraGraph::DWave2XWithDefects(&chip_rng);
  harness::PaperWorkloadOptions options;
  options.plans_per_query = plans_per_query;
  options.num_queries = num_queries;
  Rng rng(7);
  auto instance = harness::GeneratePaperInstance(graph, options, &rng);
  if (!instance.ok()) std::abort();
  auto mapping = mapping::LogicalMapping::Create(instance->problem);
  auto embedded = embedding::EmbeddedQubo::Create(mapping->qubo(),
                                                  instance->embedding, graph);
  if (!embedded.ok()) std::abort();
  return embedded->physical();
}

void BM_SaRead(benchmark::State& state) {
  qubo::QuboProblem physical = MakePhysical(2, 512);
  anneal::SaOptions options;
  options.num_reads = 1;
  options.sweeps_per_read = static_cast<int>(state.range(0));
  anneal::SimulatedAnnealer annealer(options);
  int read = 0;
  for (auto _ : state) {
    anneal::SaOptions per_read = options;
    per_read.seed = static_cast<uint64_t>(++read);
    anneal::SampleSet samples =
        anneal::SimulatedAnnealer(per_read).Sample(physical);
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          physical.num_vars());
  state.SetLabel("spin-updates/s in items");
}
BENCHMARK(BM_SaRead)->Arg(64)->Arg(256)->Arg(1024);

void BM_SqaRead(benchmark::State& state) {
  qubo::QuboProblem physical = MakePhysical(2, 128);
  anneal::SqaOptions options;
  options.num_reads = 1;
  options.num_slices = static_cast<int>(state.range(0));
  options.sweeps = 64;
  int read = 0;
  for (auto _ : state) {
    anneal::SqaOptions per_read = options;
    per_read.seed = static_cast<uint64_t>(++read);
    anneal::SampleSet samples =
        anneal::SimulatedQuantumAnnealer(per_read).Sample(physical);
    benchmark::DoNotOptimize(samples);
  }
  state.SetLabel("slices=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SqaRead)->Arg(8)->Arg(16)->Arg(32);

void BM_DeviceCall100Reads(benchmark::State& state) {
  qubo::QuboProblem physical = MakePhysical(2, 512);
  anneal::DWaveOptions options;
  options.num_reads = 100;
  options.num_gauges = 1;
  uint64_t seed = 0;
  for (auto _ : state) {
    options.seed = ++seed;
    anneal::DWaveSimulator device(options);
    auto result = device.Sample(physical);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("wall time per 100-read batch; modeled device time 37.6ms");
}
BENCHMARK(BM_DeviceCall100Reads)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
