#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json artifact against a committed baseline.

Usage:
    diff_bench.py FRESH_JSON BASELINE_JSON [--max-regression PCT]
                  [--metric NAME] [--require-baseline]

A missing BASELINE_JSON is not an error by default: a newly added bench
has no committed baseline on its first run, and the gate skips with a
warning (exit 0) telling the author to commit one. Pass
--require-baseline to make a missing baseline fail instead (for benches
whose baselines are known to be committed).

Exits nonzero when
  * a top-level field present in one artifact is missing from the other
    (field parity, both directions: a baseline field missing from the
    fresh artifact means the bench silently stopped emitting a
    measurement; a fresh field missing from the baseline means the
    committed baseline needs a refresh to pin the new coverage),
  * the fresh artifact reports nonzero injected_faults / solver_retries /
    solver_fallbacks (the default bench run must stay on the fault-free
    hot path),
  * any (engine, threads) row present in the baseline is missing from the
    fresh artifact (coverage regression),
  * any row's throughput metric (default: sweep_spins_per_sec) regressed
    by more than --max-regression percent (default: 50) relative to the
    baseline,
  * the fresh artifact reports a determinism failure
    (all_identical_to_serial / identical_to_serial false),
  * the fresh artifact reports worker threads spawned during timed runs
    (the pool-reuse gate), or
  * the fresh artifact's serial checkerboard-kernel SA row falls below the
    serial scalar-kernel row's throughput (the checkerboard sweep layout
    must never lose to the per-spin loop it replaces), or
  * the fresh artifact's packed_memory_reduction (bytes per retained
    sample of the byte-vector representation over the packed arena, on the
    2048-spin instance) falls below --min-memory-reduction (default: 4),
  * the fresh artifact's cache_speedup (cold embed incl. layout capture
    over a cached re-weight, same process) falls below
    --min-cache-speedup (default: 10),
  * the fresh artifact's csr_vs_map_speedup (the seed's map-based cold
    embed over the CSR cold embed) falls below --min-csr-map-speedup
    (default: 1), or
  * the fresh artifact reports an embedding parity MISMATCH
    (reweight_identical / embedding_identical false).

The default threshold is deliberately loose: bench machines differ (CI
runners vs laptops), so this gate is meant to catch order-of-magnitude
performance cliffs and correctness-flag regressions, not single-digit
noise. Track fine-grained trends by archiving the uploaded artifacts.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        sys.exit(f"diff_bench: cannot read {path}: {error}")


def rows_by_key(artifact):
    rows = artifact.get("runs", [])
    if not isinstance(rows, list):
        sys.exit("diff_bench: 'runs' is not a list")
    return {(row.get("engine"), row.get("threads")): row for row in rows}


def main():
    parser = argparse.ArgumentParser(
        description="Compare a fresh bench artifact against a baseline.")
    parser.add_argument("fresh", help="freshly produced BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=50.0,
                        metavar="PCT",
                        help="maximum tolerated throughput regression in "
                             "percent (default: %(default)s)")
    parser.add_argument("--metric", default="sweep_spins_per_sec",
                        help="per-row throughput metric to compare "
                             "(default: %(default)s)")
    parser.add_argument("--min-memory-reduction", type=float, default=4.0,
                        metavar="FACTOR",
                        help="minimum tolerated packed_memory_reduction "
                             "factor when the fresh artifact reports one "
                             "(default: %(default)s)")
    parser.add_argument("--min-cache-speedup", type=float, default=10.0,
                        metavar="FACTOR",
                        help="minimum tolerated cache_speedup factor when "
                             "the fresh artifact reports one "
                             "(default: %(default)s)")
    parser.add_argument("--min-csr-map-speedup", type=float, default=1.0,
                        metavar="FACTOR",
                        help="minimum tolerated csr_vs_map_speedup factor "
                             "when the fresh artifact reports one "
                             "(default: %(default)s)")
    parser.add_argument("--require-baseline", action="store_true",
                        help="fail when the baseline file is missing instead "
                             "of skipping the comparison with a warning")
    args = parser.parse_args()

    fresh = load(args.fresh)
    # A bench's very first run has no committed baseline; that is a
    # skip-with-warning, not a crash — unless the caller asserts the
    # baseline must exist.
    if not os.path.exists(args.baseline):
        if args.require_baseline:
            print(f"FAIL: baseline {args.baseline} is missing and "
                  "--require-baseline was given", file=sys.stderr)
            return 1
        print(f"WARNING: baseline {args.baseline} is missing; skipping the "
              "comparison. Commit the fresh artifact as the baseline to "
              "enable gating (or pass --require-baseline to make this an "
              "error).", file=sys.stderr)
        return 0
    baseline = load(args.baseline)
    fresh_rows = rows_by_key(fresh)
    baseline_rows = rows_by_key(baseline)

    failures = []

    # Top-level field parity, both directions. Machine-dependent *values*
    # are fine (throughput gates have their own tolerance below); what may
    # never drift silently is which measurements exist at all.
    # Observability breakdowns (stage_* timing totals from solve traces,
    # trace_* counts) are informational: they may appear or change without
    # a baseline refresh, so they are exempt from parity and printed below.
    def informational(key):
        return key.startswith("stage_") or key.startswith("trace_")

    fresh_keys = {key for key in fresh if not informational(key)}
    baseline_keys = {key for key in baseline if not informational(key)}
    for key in sorted(baseline_keys - fresh_keys):
        failures.append(
            f"top-level field '{key}' exists in the baseline "
            f"({args.baseline}) but is missing from the fresh artifact "
            f"({args.fresh}): the bench stopped emitting it, or the wrong "
            "artifact was diffed")
    for key in sorted(fresh_keys - baseline_keys):
        failures.append(
            f"top-level field '{key}' is emitted by the bench but absent "
            f"from the baseline ({args.baseline}): refresh the committed "
            "baseline to pin the new measurement")

    # Fault-free hot path: the default bench run arms no fault injector,
    # so its resilience counters must be exactly zero. Nonzero means fault
    # machinery leaked into the no-fault path (or a retry/fallback fired
    # on a healthy run) — a correctness bug, not a perf regression.
    for field in ("injected_faults", "solver_retries", "solver_fallbacks"):
        value = fresh.get(field)
        if isinstance(value, (int, float)) and value != 0:
            failures.append(
                f"fresh artifact reports {field}={value}; the default "
                "bench run must stay on the fault-free hot path")

    stage_fields = sorted(key for key in fresh if informational(key))
    if stage_fields:
        print("observability breakdown (informational, not gated):")
        for key in stage_fields:
            print(f"  {key} = {fresh[key]}")

    if fresh.get("all_identical_to_serial") is False:
        failures.append("fresh artifact reports a parallel-vs-serial "
                        "determinism MISMATCH")
    spawned = fresh.get("workers_spawned_during_runs")
    if isinstance(spawned, (int, float)) and spawned != 0:
        failures.append(f"fresh artifact reports {spawned} worker threads "
                        "spawned during timed runs (pool not reused)")

    # Packed-storage memory gate: the bench measures bytes per retained
    # sample for the packed arena against the byte-vector representation
    # it replaced; the reduction must hold (machine-independent — both
    # numbers come from the same process on the same instance). A baseline
    # that carries the field pins coverage: the fresh artifact may not
    # silently drop the measurement.
    reduction = fresh.get("packed_memory_reduction")
    if isinstance(reduction, (int, float)):
        if reduction < args.min_memory_reduction:
            failures.append(
                f"packed_memory_reduction {reduction:.2f}x fell below the "
                f"required {args.min_memory_reduction:.1f}x")
        else:
            print(f"memory: packed_memory_reduction {reduction:.2f}x "
                  f"(limit {args.min_memory_reduction:.1f}x)")
    elif "packed_memory_reduction" in baseline:
        failures.append("fresh artifact has no numeric "
                        "'packed_memory_reduction' but the baseline does")

    # Embedding-cache gates. Both speedups compare two timings from the
    # same process on the same instance, so they are machine-independent
    # ratios like the memory gate above; the parity flags assert that the
    # cached re-weight and the legacy map-based compile produced
    # bit-identical physical problems.
    for field, minimum, label in (
            ("cache_speedup", args.min_cache_speedup,
             "cached re-weight vs cold embed"),
            ("csr_vs_map_speedup", args.min_csr_map_speedup,
             "CSR cold embed vs legacy map-based embed")):
        value = fresh.get(field)
        if isinstance(value, (int, float)):
            if value < minimum:
                failures.append(
                    f"{field} {value:.2f}x ({label}) fell below the "
                    f"required {minimum:.1f}x")
            else:
                print(f"embedding: {field} {value:.2f}x "
                      f"(limit {minimum:.1f}x)")
        elif field in baseline:
            failures.append(f"fresh artifact has no numeric '{field}' but "
                            "the baseline does")
    for flag in ("reweight_identical", "embedding_identical"):
        if fresh.get(flag) is False:
            failures.append(f"fresh artifact reports {flag}=false: the "
                            "embedding pipeline produced a non-identical "
                            "physical problem")

    # Kernel ordering gate: the checkerboard sweep must at least match the
    # scalar loop's serial throughput (same machine, same artifact, so no
    # cross-machine noise allowance is needed beyond the measurement
    # itself).
    scalar_row = fresh_rows.get(("sa", 1))
    checkerboard_row = fresh_rows.get(("sa_checkerboard", 1))
    if scalar_row is not None and checkerboard_row is not None:
        scalar_value = scalar_row.get(args.metric)
        checkerboard_value = checkerboard_row.get(args.metric)
        if (isinstance(scalar_value, (int, float)) and
                isinstance(checkerboard_value, (int, float)) and
                checkerboard_value < scalar_value):
            failures.append(
                f"kCheckerboard serial {args.metric} "
                f"({checkerboard_value:.3e}) fell below kScalar "
                f"({scalar_value:.3e})")

    print(f"{'engine':<12}{'threads':>8}{'baseline':>14}{'fresh':>14}"
          f"{'delta':>9}")
    for key in sorted(baseline_rows, key=lambda k: (str(k[0]), str(k[1]))):
        engine, threads = key
        base_row = baseline_rows[key]
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            failures.append(f"row ({engine}, threads={threads}) missing "
                            "from fresh artifact")
            continue
        if fresh_row.get("identical_to_serial") is False:
            failures.append(f"row ({engine}, threads={threads}) is not "
                            "identical to the serial run")
        base_value = base_row.get(args.metric)
        fresh_value = fresh_row.get(args.metric)
        if not isinstance(base_value, (int, float)) or base_value <= 0:
            continue
        if not isinstance(fresh_value, (int, float)):
            failures.append(f"row ({engine}, threads={threads}) has no "
                            f"numeric '{args.metric}'")
            continue
        delta_pct = 100.0 * (fresh_value - base_value) / base_value
        print(f"{engine:<12}{threads:>8}{base_value:>14.3e}"
              f"{fresh_value:>14.3e}{delta_pct:>+8.1f}%")
        if -delta_pct > args.max_regression:
            failures.append(
                f"row ({engine}, threads={threads}): {args.metric} "
                f"regressed {-delta_pct:.1f}% "
                f"(limit {args.max_regression:.1f}%)")

    if failures:
        print()
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: no regression beyond {args.max_regression:.1f}% and all "
          "determinism flags clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
