// Where does a solve spend its time? Runs one paper-style workload
// through the resilient orchestrator with fault injection armed and a
// SolveTrace attached, then pretty-prints the span tree: one solve.attempt
// per ladder rung tried (tagged with status, backoff, faults), and under
// each device attempt the pipeline stages — embed (cache hit or miss),
// anneal with one anneal.gauge child per gauge transform, unembed, merge —
// each with its modeled (deterministic) and wall (measured) duration.
//
// Build & run:   ./build/trace_solve [chaos_seed]

#include <cstdio>
#include <cstdlib>

#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "harness/resilient_solver.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace qmqo;

  uint64_t seed = 1;
  if (argc > 1) seed = static_cast<uint64_t>(std::strtoull(argv[1], nullptr, 10));

  // --- The chip and a paper-style workload co-designed with it. ---
  chimera::ChimeraGraph chip(4, 4, 4);
  Rng rng(seed);
  harness::PaperWorkloadOptions workload;
  workload.plans_per_query = 2;
  workload.num_queries = 10;
  auto instance = harness::GeneratePaperInstance(chip, workload, &rng);
  if (!instance.ok()) {
    std::printf("generation failed: %s\n",
                instance.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n", instance->problem.Summary().c_str());

  // --- Chaos: a flaky device and occasional programming failures, so the
  // trace shows retries, backoff, and a fallback or two. ---
  util::FaultInjector faults(seed);
  util::FaultSpec flaky_device;
  flaky_device.probability = 0.35;
  flaky_device.latency_ms = 5.0;
  faults.Arm("solve.device", flaky_device);

  // --- The solve, traced. ---
  harness::SolvePolicy policy;
  policy.seed = seed;
  policy.max_attempts_per_backend = 2;
  policy.backoff_initial_ms = 2.0;
  policy.faults = &faults;
  policy.sqa_reads = 8;
  policy.sqa_slices = 4;
  policy.sqa_sweeps = 32;

  obs::SolveTrace trace;
  harness::QuantumMqoOptions options;
  options.device.num_reads = 50;
  options.device.num_gauges = 4;
  options.device.seed = seed + 7;
  options.faults = &faults;
  options.trace = &trace;

  harness::ResilientSolver solver(policy);
  harness::SolveReport report = solver.Solve(instance->problem,
                                             instance->embedding, chip,
                                             options);

  std::printf("\nanswer: %s via %s, cost %.2f (%d attempts, %lld faults)\n",
              report.ok ? "ok" : "FAILED",
              harness::SolveBackendName(report.backend), report.cost,
              report.total_attempts,
              static_cast<long long>(report.faults_observed));
  std::printf("chain:  %s\n", report.FailureChain().c_str());

  // --- The span tree: modeled (deterministic) + wall (measured) time per
  // stage, fault and status annotations inline. ---
  std::printf("\nspan tree:\n%s", trace.Pretty(/*include_wall=*/true).c_str());

  std::printf("\nstage totals (modeled ms):\n");
  for (const char* stage :
       {"solve.attempt", "pipeline.embed", "pipeline.anneal", "anneal.gauge",
        "pipeline.unembed", "pipeline.merge"}) {
    std::printf("  %-17s %8.3f\n", stage, trace.ModeledTotal(stage));
  }

  std::printf("\nas JSON-lines (wall suppressed — byte-stable for a seed):\n%s",
              trace.JsonLine(/*include_wall=*/false).c_str());
  std::printf("\n");
  return 0;
}
