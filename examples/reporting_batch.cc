// Scenario: a nightly reporting batch. Dozens of dashboard queries hit the
// same star schema; consecutive reports extend each other's scans and
// several teams' reports share join subplans. The optimizer must pick one
// plan per report so the batch finishes fastest.
//
// This example builds such a workload (chained sharing between consecutive
// reports plus clustered sharing within team dashboards), then compares
// every optimizer in the library on equal footing: greedy, iterated hill
// climbing, genetic algorithms, exact branch-and-bound, and the simulated
// quantum annealer.
//
// Build & run:   ./build/reporting_batch [--threads N]
//
// With --threads N (0 = all cores) the annealer's reads fan out across the
// shared worker pool; the run prints the wall-clock speedup over the
// serial pass and verifies the solution cost is identical — the executor
// subsystem's determinism contract, end to end.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/genetic.h"
#include "baselines/greedy.h"
#include "baselines/hill_climbing.h"
#include "embedding/clustered.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "mqo/clustering.h"
#include "mqo/generator.h"
#include "solver/mqo_bnb.h"
#include "util/executor.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace qmqo;

  int num_threads = 1;
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--threads") == 0 && arg + 1 < argc) {
      num_threads = std::atoi(argv[++arg]);
    } else {
      std::printf("usage: reporting_batch [--threads N]  (0 = all cores)\n");
      return 1;
    }
  }
  const int resolved_threads = util::ResolveNumThreads(num_threads);

  // --- The batch: 40 reports, grouped into 8 team dashboards of 5. ---
  Rng rng(2026);
  mqo::ClusteredWorkloadOptions workload;
  workload.num_clusters = 8;       // team dashboards
  workload.queries_per_cluster = 5;  // reports per dashboard
  workload.plans_per_query = 3;    // join orders per report
  workload.cost_min = 20.0;        // seconds of scan/join work
  workload.cost_max = 90.0;
  workload.intra_cluster_probability = 0.5;   // shared subplans in a team
  workload.inter_cluster_probability = 0.004;  // rare cross-team reuse
  workload.saving_min = 5.0;
  workload.saving_max = 25.0;
  mqo::MqoProblem batch = mqo::GenerateClusteredWorkload(workload, &rng);
  std::printf("reporting batch: %s\n", batch.Summary().c_str());
  std::printf("no-sharing baseline (cheapest plan per report): ");
  double naive = 0.0;
  for (mqo::QueryId q = 0; q < batch.num_queries(); ++q) {
    double best = batch.plan_cost(batch.first_plan(q));
    for (int k = 1; k < batch.num_plans_of(q); ++k) {
      best = std::min(best, batch.plan_cost(batch.first_plan(q) + k));
    }
    naive += best;
  }
  std::printf("%.0f s of work, ignoring all sharing\n\n", naive);

  TablePrinter table({"optimizer", "batch cost", "vs naive", "wall ms"});
  auto report = [&](const std::string& name, double cost, double ms) {
    table.AddRow({name, StrFormat("%.0f", cost),
                  StrFormat("%+.1f%%", 100.0 * (cost - naive) / naive),
                  StrFormat("%.1f", ms)});
  };

  // --- Greedy. ---
  {
    Stopwatch watch;
    mqo::MqoSolution solution = baselines::GreedySolver::Construct(batch);
    report("GREEDY", mqo::EvaluateCost(batch, solution),
           watch.ElapsedMillis());
  }
  // --- Iterated hill climbing. ---
  {
    baselines::OptimizerBudget budget;
    budget.time_limit_ms = 200.0;
    Rng opt_rng(1);
    Stopwatch watch;
    auto solution = baselines::IteratedHillClimbing().Optimize(
        batch, budget, &opt_rng, nullptr);
    report("CLIMB (200ms)", mqo::EvaluateCost(batch, *solution),
           watch.ElapsedMillis());
  }
  // --- Genetic algorithms. ---
  for (int population : {50, 200}) {
    baselines::GeneticOptions options;
    options.population_size = population;
    baselines::OptimizerBudget budget;
    budget.time_limit_ms = 200.0;
    Rng opt_rng(static_cast<uint64_t>(population));
    Stopwatch watch;
    auto solution = baselines::GeneticAlgorithm(options).Optimize(
        batch, budget, &opt_rng, nullptr);
    report(StrFormat("GA(%d) (200ms)", population),
           mqo::EvaluateCost(batch, *solution), watch.ElapsedMillis());
  }
  // --- Exact branch and bound. ---
  {
    solver::MqoBnbOptions options;
    options.time_limit_ms = 2000.0;
    Stopwatch watch;
    auto result = solver::MqoBranchAndBound(options).Solve(batch);
    report(result->proven_optimal ? "LIN-MQO (exact)" : "LIN-MQO (capped 2s)",
           result->cost, watch.ElapsedMillis());
  }
  // --- Simulated quantum annealer. ---
  {
    chimera::ChimeraGraph chip = chimera::ChimeraGraph::DWave2X();
    // One clique region per dashboard cluster (15 variables each). The
    // clustered embedding cannot realize cross-team savings without a
    // coupler — the paper's Section 5 trade-off — so the annealer solves
    // the instance with those few savings dropped, and the solution is
    // re-costed on the full batch.
    mqo::MqoProblem embeddable;
    for (mqo::QueryId q = 0; q < batch.num_queries(); ++q) {
      std::vector<double> costs;
      for (int k = 0; k < batch.num_plans_of(q); ++k) {
        costs.push_back(batch.plan_cost(batch.first_plan(q) + k));
      }
      embeddable.AddQuery(std::move(costs));
    }
    auto team_of = [&](mqo::QueryId q) {
      return q / workload.queries_per_cluster;
    };
    int dropped = 0;
    for (const mqo::Saving& saving : batch.savings()) {
      if (team_of(batch.query_of(saving.plan_a)) ==
          team_of(batch.query_of(saving.plan_b))) {
        (void)embeddable.AddSaving(saving.plan_a, saving.plan_b, saving.value);
      } else {
        ++dropped;
      }
    }
    std::vector<int> sizes(
        static_cast<size_t>(workload.num_clusters),
        workload.queries_per_cluster * workload.plans_per_query);
    auto embedding = embedding::ClusteredEmbedder::Embed(sizes, chip);
    if (embedding.ok()) {
      harness::QuantumMqoOptions options;
      options.device.num_reads = 500;
      Stopwatch watch;
      auto result =
          harness::SolveQuantumMqo(embeddable, *embedding, chip, options);
      if (result.ok()) {
        double serial_ms = watch.ElapsedMillis();
        report(StrFormat("QA (500 reads, %d savings dropped)", dropped),
               mqo::EvaluateCost(batch, result->best_solution),
               serial_ms);
        std::printf("QA modeled device time: %.0f us; embedding: %s\n",
                    result->device_time_us,
                    embedding->Summary().c_str());
        if (resolved_threads > 1) {
          // Same device call with reads fanned over the shared worker
          // pool: bit-identical samples, so the only difference the user
          // can observe is the wall clock.
          options.device.num_threads = num_threads;
          Stopwatch parallel_watch;
          auto parallel_result =
              harness::SolveQuantumMqo(embeddable, *embedding, chip, options);
          if (parallel_result.ok()) {
            double parallel_ms = parallel_watch.ElapsedMillis();
            report(StrFormat("QA (%d threads)", resolved_threads),
                   mqo::EvaluateCost(batch, parallel_result->best_solution),
                   parallel_ms);
            std::printf(
                "QA read fan-out on %d threads: %.1f ms -> %.1f ms "
                "(%.2fx), best cost %s\n",
                resolved_threads, serial_ms, parallel_ms,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
                parallel_result->best_cost == result->best_cost
                    ? "identical to serial"
                    : "MISMATCH (bug!)");
          }
        }
      } else {
        std::printf("QA failed: %s\n", result.status().ToString().c_str());
      }
    } else {
      std::printf("embedding failed: %s\n",
                  embedding.status().ToString().c_str());
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "(the clustered embedding drops the few cross-team savings that lack\n"
      "couplers; the loss is negligible because teams rarely share — the\n"
      "paper's argument for clustering in Section 5)\n");
  return 0;
}
