// Quickstart: solve a small multiple query optimization problem on the
// simulated quantum annealer, end to end.
//
// The instance is the paper's running example (Example 1): two queries
// with two plans each; plans p2 and p3 can share an intermediate result
// worth 5 cost units. The optimal solution executes exactly those two
// plans.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "chimera/topology.h"
#include "embedding/clustered.h"
#include "harness/quantum_pipeline.h"
#include "mqo/brute_force.h"
#include "mqo/problem.h"

int main() {
  using namespace qmqo;

  // 1. Model the MQO instance: queries, alternative plans, sharing.
  mqo::MqoProblem problem;
  mqo::QueryId q1 = problem.AddQuery({2.0, 4.0});  // plans p1, p2
  mqo::QueryId q2 = problem.AddQuery({3.0, 1.0});  // plans p3, p4
  (void)q1;
  (void)q2;
  if (Status s = problem.AddSaving(/*p2=*/1, /*p3=*/2, 5.0); !s.ok()) {
    std::printf("bad instance: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("instance: %s\n", problem.Summary().c_str());

  // 2. Pick hardware and an embedding. Each query is one cluster; a single
  //    Chimera unit cell is plenty for two 2-plan queries.
  chimera::ChimeraGraph chip(2, 2, 4);
  auto embedding = embedding::ClusteredEmbedder::Embed({2, 2}, chip);
  if (!embedding.ok()) {
    std::printf("embedding failed: %s\n",
                embedding.status().ToString().c_str());
    return 1;
  }
  std::printf("embedding: %s\n", embedding->Summary().c_str());

  // 3. Run Algorithm 1 on the simulated D-Wave 2X.
  harness::QuantumMqoOptions options;
  options.device.num_reads = 100;
  auto result = harness::SolveQuantumMqo(problem, *embedding, chip, options);
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nquantum annealer result:\n");
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    std::printf("  query %d executes plan %d (cost %.0f)\n", q,
                result->best_solution.selected(q),
                problem.plan_cost(result->best_solution.selected(q)));
  }
  std::printf("  total cost %.0f  (device time %.0f us, preprocessing %.2f ms)\n",
              result->best_cost, result->device_time_us,
              result->preprocessing_ms);

  // 4. Cross-check against exhaustive enumeration.
  auto exact = mqo::SolveExhaustive(problem);
  std::printf("\nexhaustive optimum: %.0f  -> %s\n", exact->cost,
              exact->cost == result->best_cost ? "annealer found the optimum"
                                               : "annealer was suboptimal");
  return 0;
}
