// Capacity planner: how large an MQO workload fits on a given annealer
// generation? Reproduces the reasoning behind the paper's Figure 7 as a
// small CLI tool.
//
// Usage:   ./build/capacity_planner [num_queries plans_per_query]
//          ./build/capacity_planner --threads N
//
// Without arguments, prints the capacity table for three hardware
// generations. With a workload size, reports which generation (if any)
// can host it and how many qubits it would use. With --threads N
// (0 = all cores), additionally *measures* capacity on the simulated
// defective D-Wave 2X — one embedding search per plans-per-query value,
// fanned across the shared worker pool — and prints the wall-clock
// speedup over the serial pass (the measured numbers are identical at
// every thread count).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "chimera/topology.h"
#include "embedding/capacity.h"
#include "embedding/clique_in_cell.h"
#include "embedding/triad.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct Generation {
  const char* name;
  int rows;
  int cols;
};

constexpr Generation kGenerations[] = {
    {"D-Wave 2X (1152 qubits)", 12, 12},
    {"next gen (2304 qubits)", 12, 24},
    {"next-next gen (4608 qubits)", 24, 24},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace qmqo;

  if (argc == 3 && std::strcmp(argv[1], "--threads") == 0) {
    const int num_threads = std::atoi(argv[2]);
    const int resolved = util::ResolveNumThreads(num_threads);
    const int min_plans = 2;
    const int max_plans = 7;
    const int count = max_plans - min_plans + 1;

    Rng rng(1);
    chimera::ChimeraGraph chip =
        chimera::ChimeraGraph::DWave2XWithDefects(&rng);
    std::printf("=== Measured capacity, defective D-Wave 2X (%d working "
                "qubits) ===\n\n",
                chip.num_working_qubits());

    auto measure = [&](int threads, std::vector<int>* capacities) {
      util::Executor::Run(
          nullptr, count, threads,
          [&](int begin, int end, int /*chunk*/) {
            for (int i = begin; i < end; ++i) {
              (*capacities)[static_cast<size_t>(i)] =
                  embedding::MeasuredMaxQueries(chip, min_plans + i);
            }
          });
    };

    std::vector<int> serial(static_cast<size_t>(count), 0);
    Stopwatch serial_watch;
    measure(1, &serial);
    double serial_ms = serial_watch.ElapsedMillis();

    std::vector<int> parallel(static_cast<size_t>(count), 0);
    Stopwatch parallel_watch;
    measure(num_threads, &parallel);
    double parallel_ms = parallel_watch.ElapsedMillis();

    TablePrinter table({"plans/query", "analytic (12x12)", "measured"});
    bool identical = true;
    for (int i = 0; i < count; ++i) {
      identical = identical && serial[static_cast<size_t>(i)] ==
                                   parallel[static_cast<size_t>(i)];
      table.AddRow(
          {StrFormat("%d", min_plans + i),
           StrFormat("%d", embedding::MaxQueriesForDimensions(
                               chip.rows(), chip.cols(), chip.shore(),
                               min_plans + i)),
           StrFormat("%d", serial[static_cast<size_t>(i)])});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("embedding searches on %d threads: %.1f ms -> %.1f ms "
                "(%.2fx); results %s\n",
                resolved, serial_ms, parallel_ms,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
                identical ? "identical to serial" : "MISMATCH (bug!)");
    return identical ? 0 : 1;
  }

  if (argc == 3) {
    int num_queries = std::atoi(argv[1]);
    int plans = std::atoi(argv[2]);
    if (num_queries <= 0 || plans <= 0) {
      std::printf("usage: capacity_planner [num_queries plans_per_query]\n");
      return 1;
    }
    int per_query_qubits =
        plans <= 5 ? embedding::CliqueInCellEmbedder::QubitsNeeded(plans)
                   : embedding::TriadEmbedder::QubitsNeeded(plans, 4);
    std::printf("workload: %d queries x %d plans (%d logical variables, "
                "~%d qubits per query)\n\n",
                num_queries, plans, num_queries * plans, per_query_qubits);
    for (const Generation& gen : kGenerations) {
      int capacity =
          embedding::MaxQueriesForDimensions(gen.rows, gen.cols, 4, plans);
      std::printf("  %-28s capacity %5d queries -> %s\n", gen.name, capacity,
                  capacity >= num_queries ? "FITS" : "does not fit");
    }
    return 0;
  }

  std::printf("=== MQO capacity by annealer generation (Figure 7) ===\n\n");
  TablePrinter table({"plans/query", kGenerations[0].name,
                      kGenerations[1].name, kGenerations[2].name});
  for (int plans = 2; plans <= 16; ++plans) {
    std::vector<std::string> row = {StrFormat("%d", plans)};
    for (const Generation& gen : kGenerations) {
      row.push_back(StrFormat("%d", embedding::MaxQueriesForDimensions(
                                        gen.rows, gen.cols, 4, plans)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("run with arguments to check a specific workload:\n"
              "  capacity_planner 500 3\n");
  return 0;
}
