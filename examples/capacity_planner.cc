// Capacity planner: how large an MQO workload fits on a given annealer
// generation? Reproduces the reasoning behind the paper's Figure 7 as a
// small CLI tool.
//
// Usage:   ./build/examples/capacity_planner [num_queries plans_per_query]
//
// Without arguments, prints the capacity table for three hardware
// generations. With a workload size, reports which generation (if any)
// can host it and how many qubits it would use.

#include <cstdio>
#include <cstdlib>

#include "embedding/capacity.h"
#include "embedding/clique_in_cell.h"
#include "embedding/triad.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct Generation {
  const char* name;
  int rows;
  int cols;
};

constexpr Generation kGenerations[] = {
    {"D-Wave 2X (1152 qubits)", 12, 12},
    {"next gen (2304 qubits)", 12, 24},
    {"next-next gen (4608 qubits)", 24, 24},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace qmqo;

  if (argc == 3) {
    int num_queries = std::atoi(argv[1]);
    int plans = std::atoi(argv[2]);
    if (num_queries <= 0 || plans <= 0) {
      std::printf("usage: capacity_planner [num_queries plans_per_query]\n");
      return 1;
    }
    int per_query_qubits =
        plans <= 5 ? embedding::CliqueInCellEmbedder::QubitsNeeded(plans)
                   : embedding::TriadEmbedder::QubitsNeeded(plans, 4);
    std::printf("workload: %d queries x %d plans (%d logical variables, "
                "~%d qubits per query)\n\n",
                num_queries, plans, num_queries * plans, per_query_qubits);
    for (const Generation& gen : kGenerations) {
      int capacity =
          embedding::MaxQueriesForDimensions(gen.rows, gen.cols, 4, plans);
      std::printf("  %-28s capacity %5d queries -> %s\n", gen.name, capacity,
                  capacity >= num_queries ? "FITS" : "does not fit");
    }
    return 0;
  }

  std::printf("=== MQO capacity by annealer generation (Figure 7) ===\n\n");
  TablePrinter table({"plans/query", kGenerations[0].name,
                      kGenerations[1].name, kGenerations[2].name});
  for (int plans = 2; plans <= 16; ++plans) {
    std::vector<std::string> row = {StrFormat("%d", plans)};
    for (const Generation& gen : kGenerations) {
      row.push_back(StrFormat("%d", embedding::MaxQueriesForDimensions(
                                        gen.rows, gen.cols, 4, plans)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("run with arguments to check a specific workload:\n"
              "  capacity_planner 500 3\n");
  return 0;
}
