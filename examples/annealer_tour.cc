// A guided tour of the quantum-annealing substrate: the Chimera chip with
// manufacturing defects, a clustered embedding rendered on the chip, the
// logical and physical energy formulas, chain strengths, gauge
// transformations, and the device call itself — every intermediate of the
// paper's Algorithm 1 made visible.
//
// Build & run:   ./build/examples/annealer_tour

#include <cstdio>

#include "anneal/dwave_simulator.h"
#include "chimera/render.h"
#include "chimera/topology.h"
#include "embedding/embedded_qubo.h"
#include "harness/paper_workload.h"
#include "mapping/logical_mapping.h"
#include "util/rng.h"

int main() {
  using namespace qmqo;

  // --- The chip: a small Chimera with a few broken qubits. ---
  Rng chip_rng(7);
  chimera::ChimeraGraph chip(4, 4, 4);
  chip.BreakRandom(5, &chip_rng);
  std::printf("chip: %s, %d couplers\n\n", chip.Summary().c_str(),
              chip.num_couplers());

  // --- A paper-style workload co-designed with its embedding. ---
  harness::PaperWorkloadOptions workload;
  workload.plans_per_query = 3;
  Rng rng(11);
  auto instance = harness::GeneratePaperInstance(chip, workload, &rng);
  if (!instance.ok()) {
    std::printf("generation failed: %s\n",
                instance.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n", instance->problem.Summary().c_str());
  std::printf("embedding: %s\n\n", instance->embedding.Summary().c_str());

  std::printf("chip layout ('#' broken, digits/letters = logical variable "
              "of each chain, one cell per query cluster):\n%s\n",
              chimera::Render(chip,
                              instance->embedding.QubitToVar(chip)).c_str());

  // --- Logical mapping: the QUBO energy formula of Section 4. ---
  auto logical = mapping::LogicalMapping::Create(instance->problem);
  if (!logical.ok()) return 1;
  std::printf("logical energy formula: %s\n", logical->qubo().Summary().c_str());
  std::printf("  w_L = %.2f (max plan cost + 0.25)\n", logical->wl());
  std::printf("  w_M = %.2f (w_L + max accumulated saving + 0.25)\n\n",
              logical->wm());

  // --- Physical mapping: chains, couplers, chain strengths (Section 5). ---
  auto physical = embedding::EmbeddedQubo::Create(logical->qubo(),
                                                  instance->embedding, chip);
  if (!physical.ok()) return 1;
  std::printf("physical energy formula: %s\n",
              physical->physical().Summary().c_str());
  double min_strength = 1e300;
  double max_strength = 0.0;
  for (int v = 0; v < physical->num_logical_vars(); ++v) {
    min_strength = std::min(min_strength, physical->chain_strength(v));
    max_strength = std::max(max_strength, physical->chain_strength(v));
  }
  std::printf("  chain strengths w_B in [%.2f, %.2f] (Choi bound + 0.25)\n\n",
              min_strength, max_strength);

  // --- The device call: gauges, control error, annealing, read-out. ---
  anneal::DWaveOptions device_options;
  device_options.num_reads = 200;
  device_options.num_gauges = 10;
  device_options.record_reads = true;
  anneal::DWaveSimulator device(device_options);
  auto reads = device.Sample(physical->physical());
  if (!reads.ok()) return 1;
  std::printf("device call: %d reads across %d gauges\n",
              reads->samples.total_reads(), device_options.num_gauges);
  std::printf("  weight auto-scale factor: %.4f (h range ±%.0f, J range ±%.0f)\n",
              reads->scale_factor, device_options.h_range,
              device_options.j_range);
  std::printf("  modeled device time: %.0f us (129 anneal + 247 readout per "
              "read)\n",
              reads->device_time_us);
  std::printf("  simulator wall clock: %.1f ms\n", reads->wall_clock_ms);
  std::printf("  best physical energy: %.2f (%d distinct states seen)\n",
              reads->samples.best().energy,
              static_cast<int>(reads->samples.samples().size()));

  // --- Read-out: chains, repair, plan selection. ---
  int broken_chain_reads = 0;
  std::vector<uint8_t> read_bytes;
  for (anneal::AssignmentRef read : reads->raw_reads) {
    read.CopyBytesTo(&read_bytes);
    if (!physical->ChainsConsistent(read_bytes)) ++broken_chain_reads;
  }
  std::printf("  reads with broken chains: %d / %d\n", broken_chain_reads,
              reads->raw_reads.size());

  std::vector<uint8_t> best_logical =
      physical->Unembed(reads->samples.best().assignment.ToBytes());
  auto solution = logical->ToMqoSolution(best_logical);
  if (solution.ok()) {
    std::printf("\nbest read decodes to a valid plan selection with cost "
                "%.0f\n",
                mqo::EvaluateCost(instance->problem, *solution));
  } else {
    auto repaired = logical->RepairedSolution(best_logical);
    std::printf("\nbest read needed repair; repaired cost %.0f\n",
                mqo::EvaluateCost(instance->problem, repaired));
  }
  return 0;
}
