// Tests for the shared executor subsystem: thread-count resolution, static
// chunk partitioning, task ordering independence, exception rethrow on the
// submitting thread, nested ParallelFor safety, and worker-pool reuse
// (zero spawns after construction).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/executor.h"

namespace qmqo {
namespace util {
namespace {

TEST(ResolveNumThreadsTest, PositiveRequestsPassThrough) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(3), 3);
  EXPECT_EQ(ResolveNumThreads(64), 64);
}

TEST(ResolveNumThreadsTest, AutoAndNegativeFallBackToAtLeastOne) {
  EXPECT_GE(ResolveNumThreads(0), 1);
  EXPECT_GE(ResolveNumThreads(-5), 1);
  EXPECT_EQ(ResolveNumThreads(0), ResolveNumThreads(-1));
}

TEST(ExecutorTest, CoversEveryIndexExactlyOnce) {
  for (int pool_size : {1, 2, 4}) {
    Executor executor(pool_size);
    for (int parallelism : {1, 2, 3, 16}) {
      for (int total : {1, 7, 13, 64}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(total));
        for (auto& h : hits) h.store(0);
        executor.ParallelFor(total, parallelism,
                             [&](int begin, int end, int /*chunk*/) {
                               for (int i = begin; i < end; ++i) {
                                 hits[static_cast<size_t>(i)].fetch_add(1);
                               }
                             });
        for (int i = 0; i < total; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "pool=" << pool_size << " parallelism=" << parallelism
              << " total=" << total << " index=" << i;
        }
      }
    }
  }
}

TEST(ExecutorTest, ZeroOrNegativeTotalRunsNothing) {
  Executor executor(2);
  executor.ParallelFor(0, 4, [](int, int, int) { FAIL(); });
  executor.ParallelFor(-3, 4, [](int, int, int) { FAIL(); });
}

TEST(ExecutorTest, ChunkingIsStaticAndContiguous) {
  // The partition depends only on (total, parallelism): base-size chunks
  // with the first `total % parts` chunks taking one extra index.
  Executor executor(4);
  const int total = 10;
  const int parallelism = 4;
  std::vector<std::pair<int, int>> ranges(static_cast<size_t>(parallelism),
                                          {-1, -1});
  executor.ParallelFor(total, parallelism, [&](int begin, int end, int chunk) {
    ranges[static_cast<size_t>(chunk)] = {begin, end};
  });
  EXPECT_EQ(ranges[0], std::make_pair(0, 3));
  EXPECT_EQ(ranges[1], std::make_pair(3, 6));
  EXPECT_EQ(ranges[2], std::make_pair(6, 8));
  EXPECT_EQ(ranges[3], std::make_pair(8, 10));
}

TEST(ExecutorTest, ResultIndependentOfParallelism) {
  // Per-chunk partial sums combined in chunk order give the same total for
  // every pool size and parallelism — the reduction discipline RunReads
  // and the harness rely on.
  const int total = 1000;
  std::vector<int64_t> values(static_cast<size_t>(total));
  std::iota(values.begin(), values.end(), 1);
  const int64_t expected = 1000LL * 1001LL / 2LL;
  for (int pool_size : {1, 3}) {
    Executor executor(pool_size);
    for (int parallelism : {1, 2, 8, 1000}) {
      std::vector<int64_t> partials(
          static_cast<size_t>(std::min(parallelism, total)), 0);
      executor.ParallelFor(total, parallelism,
                           [&](int begin, int end, int chunk) {
                             int64_t sum = 0;
                             for (int i = begin; i < end; ++i) {
                               sum += values[static_cast<size_t>(i)];
                             }
                             partials[static_cast<size_t>(chunk)] = sum;
                           });
      int64_t combined = 0;
      for (int64_t partial : partials) combined += partial;
      EXPECT_EQ(combined, expected) << "pool=" << pool_size
                                    << " parallelism=" << parallelism;
    }
  }
}

TEST(ExecutorTest, ExceptionRethrownOnSubmittingThread) {
  Executor executor(4);
  EXPECT_THROW(
      executor.ParallelFor(16, 8,
                           [](int begin, int end, int /*chunk*/) {
                             for (int i = begin; i < end; ++i) {
                               if (i == 11) throw std::runtime_error("boom");
                             }
                           }),
      std::runtime_error);
  // The pool survives a throwing batch and stays usable.
  std::atomic<int> count{0};
  executor.ParallelFor(8, 8, [&](int begin, int end, int /*chunk*/) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ExecutorTest, NestedParallelForIsSafe) {
  // Inner ParallelFor calls issued from inside worker chunks must not
  // deadlock (submitters drain their own chunks) and must still cover
  // every index.
  Executor executor(2);
  const int outer = 4;
  const int inner = 32;
  std::vector<std::atomic<int>> hits(static_cast<size_t>(outer * inner));
  for (auto& h : hits) h.store(0);
  executor.ParallelFor(outer, outer, [&](int begin, int end, int /*chunk*/) {
    for (int o = begin; o < end; ++o) {
      executor.ParallelFor(inner, 4, [&, o](int b, int e, int /*c*/) {
        for (int i = b; i < e; ++i) {
          hits[static_cast<size_t>(o * inner + i)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ExecutorTest, WorkersSpawnedOnceAndReused) {
  const int64_t before = Executor::TotalWorkersSpawned();
  Executor executor(3);
  EXPECT_EQ(executor.num_threads(), 3);
  EXPECT_EQ(Executor::TotalWorkersSpawned(), before + 3);
  // Repeated ParallelFor calls reuse the pool: no further spawns.
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    executor.ParallelFor(64, 3, [&](int begin, int end, int /*chunk*/) {
      count.fetch_add(end - begin);
    });
    EXPECT_EQ(count.load(), 64);
  }
  EXPECT_EQ(Executor::TotalWorkersSpawned(), before + 3);
}

TEST(ExecutorTest, SharedPoolIsOneInstance) {
  Executor& a = Executor::Shared();
  Executor& b = Executor::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1);
  const int64_t before = Executor::TotalWorkersSpawned();
  std::atomic<int> count{0};
  a.ParallelFor(32, 0, [&](int begin, int end, int /*chunk*/) {
    count.fetch_add(end - begin);
  });
  EXPECT_EQ(count.load(), 32);
  EXPECT_EQ(Executor::TotalWorkersSpawned(), before);
}

TEST(ExecutorTest, PerIndexConvenienceOverload) {
  Executor executor(2);
  std::vector<std::atomic<int>> hits(25);
  for (auto& h : hits) h.store(0);
  executor.ParallelFor(25, [&](int i) { hits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace util
}  // namespace qmqo
