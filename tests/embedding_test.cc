// Tests for minor embeddings: chain/embedding validation, TRIAD clique
// embeddings, in-cell cliques, clustered placement, pair matching, and
// cross-chain coupler enumeration.

#include <gtest/gtest.h>

#include <set>

#include "embedding/capacity.h"
#include "embedding/clique_in_cell.h"
#include "embedding/clustered.h"
#include "embedding/embedding.h"
#include "embedding/triad.h"
#include "util/rng.h"

namespace qmqo {
namespace embedding {
namespace {

using chimera::ChimeraGraph;

/// Complete logical QUBO over n variables (every pair interacts), the
/// worst case an embedding must support.
qubo::QuboProblem CompleteQubo(int n) {
  qubo::QuboProblem problem(n);
  for (int i = 0; i < n; ++i) {
    problem.AddLinear(i, 1.0);
    for (int j = i + 1; j < n; ++j) {
      problem.AddQuadratic(i, j, 1.0);
    }
  }
  return problem;
}

// --------------------------------------------------------------------
// Embedding structure and verification
// --------------------------------------------------------------------

TEST(EmbeddingTest, StatsOnSimpleEmbedding) {
  ChimeraGraph graph(1, 1, 4);
  Embedding embedding(2);
  embedding.SetChain(0, Chain{{graph.IdOf(0, 0, 0, 0)}});
  embedding.SetChain(
      1, Chain{{graph.IdOf(0, 0, 1, 0), graph.IdOf(0, 0, 0, 1)}});
  EXPECT_EQ(embedding.TotalQubits(), 3);
  EXPECT_EQ(embedding.MaxChainLength(), 2);
  EXPECT_DOUBLE_EQ(embedding.MeanChainLength(), 1.5);
  EXPECT_TRUE(embedding.VerifyStructure(graph).ok());
}

TEST(EmbeddingTest, VerifyRejectsEmptyChain) {
  ChimeraGraph graph(1, 1, 4);
  Embedding embedding(1);
  EXPECT_EQ(embedding.VerifyStructure(graph).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EmbeddingTest, VerifyRejectsOverlappingChains) {
  ChimeraGraph graph(1, 1, 4);
  Embedding embedding(2);
  embedding.SetChain(0, Chain{{graph.IdOf(0, 0, 0, 0)}});
  embedding.SetChain(1, Chain{{graph.IdOf(0, 0, 0, 0)}});
  EXPECT_FALSE(embedding.VerifyStructure(graph).ok());
}

TEST(EmbeddingTest, VerifyRejectsBrokenQubit) {
  ChimeraGraph graph(1, 1, 4);
  graph.SetBroken(graph.IdOf(0, 0, 0, 0), true);
  Embedding embedding(1);
  embedding.SetChain(0, Chain{{graph.IdOf(0, 0, 0, 0)}});
  EXPECT_FALSE(embedding.VerifyStructure(graph).ok());
}

TEST(EmbeddingTest, VerifyRejectsDisconnectedChain) {
  ChimeraGraph graph(1, 1, 4);
  Embedding embedding(1);
  // Two left-shore qubits of one cell are NOT coupled.
  embedding.SetChain(0,
                     Chain{{graph.IdOf(0, 0, 0, 0), graph.IdOf(0, 0, 0, 1)}});
  EXPECT_FALSE(embedding.VerifyStructure(graph).ok());
}

TEST(EmbeddingTest, VerifyForProblemNeedsCouplers) {
  ChimeraGraph graph(2, 1, 4);
  Embedding embedding(2);
  // Left qubit of cell (0,0) and right qubit of cell (1,0): no coupler.
  embedding.SetChain(0, Chain{{graph.IdOf(0, 0, 0, 0)}});
  embedding.SetChain(1, Chain{{graph.IdOf(1, 0, 1, 0)}});
  qubo::QuboProblem logical(2);
  logical.AddQuadratic(0, 1, 1.0);
  EXPECT_FALSE(embedding.VerifyForProblem(graph, logical).ok());
  // Without the interaction the embedding is fine.
  qubo::QuboProblem no_interaction(2);
  EXPECT_TRUE(embedding.VerifyForProblem(graph, no_interaction).ok());
}

TEST(EmbeddingTest, VerifyForProblemSizeMismatch) {
  ChimeraGraph graph(1, 1, 4);
  Embedding embedding(1);
  embedding.SetChain(0, Chain{{0}});
  qubo::QuboProblem logical(2);
  EXPECT_EQ(embedding.VerifyForProblem(graph, logical).code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------
// TRIAD
// --------------------------------------------------------------------

TEST(TriadTest, BlockAndQubitFormulas) {
  EXPECT_EQ(TriadEmbedder::BlockSize(4, 4), 1);
  EXPECT_EQ(TriadEmbedder::BlockSize(5, 4), 2);
  EXPECT_EQ(TriadEmbedder::BlockSize(48, 4), 12);
  // Theorem 3's quadratic growth: n * (M + 1).
  EXPECT_EQ(TriadEmbedder::QubitsNeeded(48, 4), 48 * 13);
  EXPECT_EQ(TriadEmbedder::MaxCliqueSize(12, 12, 4), 48);
}

class TriadSizes : public ::testing::TestWithParam<int> {};

TEST_P(TriadSizes, EmbedsCompleteGraph) {
  int n = GetParam();
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  auto embedding = TriadEmbedder::Embed(n, graph);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_EQ(embedding->num_vars(), n);
  // Every chain has exactly M + 1 qubits.
  int m = TriadEmbedder::BlockSize(n, 4);
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(embedding->chain(v).size(), m + 1);
  }
  // The embedding supports a complete problem: all pairs connected.
  EXPECT_TRUE(embedding->VerifyForProblem(graph, CompleteQubo(n)).ok());
}

INSTANTIATE_TEST_SUITE_P(CliqueSizes, TriadSizes,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16, 20, 32, 48));

TEST(TriadTest, RejectsTooLargeClique) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  EXPECT_FALSE(TriadEmbedder::Embed(49, graph).ok());
}

TEST(TriadTest, RejectsNonPositive) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  EXPECT_FALSE(TriadEmbedder::Embed(0, graph).ok());
}

TEST(TriadTest, AvoidsBrokenQubitsByRelocating) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  // Break an entire cell in the top-left corner; K_8 (2x2 block) must
  // relocate or drop to other chains.
  for (int side = 0; side < 2; ++side) {
    for (int k = 0; k < 4; ++k) {
      graph.SetBroken(graph.IdOf(0, 0, side, k), true);
    }
  }
  auto embedding = TriadEmbedder::Embed(8, graph);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(embedding->VerifyForProblem(graph, CompleteQubo(8)).ok());
}

TEST(TriadTest, UsesSparebChainsWhenSomeAreBroken) {
  // On an exactly-fitting graph with one broken qubit, K_7 still fits
  // because the 2x2 block offers 8 chains.
  ChimeraGraph graph(2, 2, 4);
  graph.SetBroken(graph.IdOf(0, 0, 1, 0), true);  // kills one chain
  auto embedding = TriadEmbedder::Embed(7, graph);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_TRUE(embedding->VerifyForProblem(graph, CompleteQubo(7)).ok());
  // K_8 needs all 8 chains; with one broken it must fail on this graph.
  EXPECT_FALSE(TriadEmbedder::Embed(8, graph).ok());
}

TEST(TriadTest, FixedOriginPlacement) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  TriadOptions options;
  options.origin_row = 3;
  options.origin_col = 5;
  auto embedding = TriadEmbedder::Embed(8, graph, options);
  ASSERT_TRUE(embedding.ok());
  for (int v = 0; v < 8; ++v) {
    for (chimera::QubitId q : embedding->chain(v).qubits) {
      chimera::QubitCoord coord = graph.CoordOf(q);
      EXPECT_GE(coord.row, 3);
      EXPECT_LE(coord.row, 4);
      EXPECT_GE(coord.col, 5);
      EXPECT_LE(coord.col, 6);
    }
  }
}

TEST(TriadTest, RejectsFixedOriginWithoutRoom) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  TriadOptions options;
  options.origin_row = 11;  // K_8 needs a 2x2 block; row 11 leaves 1 row
  auto embedding = TriadEmbedder::Embed(8, graph, options);
  EXPECT_EQ(embedding.status().code(), StatusCode::kInvalidArgument);
  TriadOptions col_options;
  col_options.origin_col = 11;
  EXPECT_EQ(TriadEmbedder::Embed(8, graph, col_options).status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------
// Clique in cell
// --------------------------------------------------------------------

TEST(CliqueInCellTest, QubitCostFormula) {
  EXPECT_EQ(CliqueInCellEmbedder::QubitsNeeded(1), 1);
  EXPECT_EQ(CliqueInCellEmbedder::QubitsNeeded(2), 2);
  EXPECT_EQ(CliqueInCellEmbedder::QubitsNeeded(3), 4);
  EXPECT_EQ(CliqueInCellEmbedder::QubitsNeeded(4), 6);
  EXPECT_EQ(CliqueInCellEmbedder::QubitsNeeded(5), 8);
  EXPECT_EQ(CliqueInCellEmbedder::MaxK(4), 5);
}

class CliqueInCellSizes : public ::testing::TestWithParam<int> {};

TEST_P(CliqueInCellSizes, ChainsArePairwiseCoupled) {
  int k = GetParam();
  ChimeraGraph graph(2, 2, 4);
  auto chains = CliqueInCellEmbedder::EmbedInCell(k, 1, 1, graph);
  ASSERT_TRUE(chains.ok()) << chains.status().ToString();
  ASSERT_EQ(chains->size(), static_cast<size_t>(k));
  // Build an embedding and check against the complete problem.
  Embedding embedding(k);
  int total = 0;
  for (int v = 0; v < k; ++v) {
    total += (*chains)[static_cast<size_t>(v)].size();
    embedding.SetChain(v, (*chains)[static_cast<size_t>(v)]);
  }
  EXPECT_EQ(total, CliqueInCellEmbedder::QubitsNeeded(k));
  EXPECT_TRUE(embedding.VerifyForProblem(graph, CompleteQubo(k)).ok());
}

INSTANTIATE_TEST_SUITE_P(K, CliqueInCellSizes, ::testing::Range(1, 6));

TEST(CliqueInCellTest, DefectAwareRoleAssignment) {
  ChimeraGraph graph(1, 1, 4);
  graph.SetBroken(graph.IdOf(0, 0, 0, 0), true);
  graph.SetBroken(graph.IdOf(0, 0, 1, 2), true);
  // 3 left + 3 right working: K_4 (needs 3 per shore) still fits.
  auto chains = CliqueInCellEmbedder::EmbedInCell(4, 0, 0, graph);
  ASSERT_TRUE(chains.ok()) << chains.status().ToString();
  Embedding embedding(4);
  for (int v = 0; v < 4; ++v) {
    embedding.SetChain(v, (*chains)[static_cast<size_t>(v)]);
  }
  EXPECT_TRUE(embedding.VerifyForProblem(graph, CompleteQubo(4)).ok());
  // K_5 needs 4 per shore: impossible now.
  EXPECT_FALSE(CliqueInCellEmbedder::EmbedInCell(5, 0, 0, graph).ok());
}

TEST(CliqueInCellTest, RejectsOversizedClique) {
  ChimeraGraph graph(1, 1, 4);
  EXPECT_FALSE(CliqueInCellEmbedder::EmbedInCell(6, 0, 0, graph).ok());
}

TEST(CliqueInCellTest, RejectsOutOfGridCell) {
  ChimeraGraph graph(2, 3, 4);
  EXPECT_EQ(CliqueInCellEmbedder::EmbedInCell(3, 2, 0, graph).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CliqueInCellEmbedder::EmbedInCell(3, 0, 3, graph).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CliqueInCellEmbedder::EmbedInCell(3, -1, 0, graph).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CliqueInCellEmbedder::EmbedInCell(3, 0, -1, graph).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliqueInCellTest, SingleVariableUsesAnyWorkingQubit) {
  ChimeraGraph graph(1, 1, 4);
  for (int k = 0; k < 4; ++k) graph.SetBroken(graph.IdOf(0, 0, 0, k), true);
  auto chains = CliqueInCellEmbedder::EmbedInCell(1, 0, 0, graph);
  ASSERT_TRUE(chains.ok());
  EXPECT_EQ((*chains)[0].size(), 1);
}

// --------------------------------------------------------------------
// Clustered embedder
// --------------------------------------------------------------------

TEST(ClusteredTest, PlacesManySmallClusters) {
  ChimeraGraph graph(3, 3, 4);
  std::vector<int> sizes(9, 3);  // nine K_3 clusters, one per cell
  auto embedding = ClusteredEmbedder::Embed(sizes, graph);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_EQ(embedding->num_vars(), 27);
  EXPECT_TRUE(embedding->VerifyStructure(graph).ok());
  // Each cluster is a clique: check with a block-diagonal problem.
  qubo::QuboProblem logical(27);
  for (int c = 0; c < 9; ++c) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        logical.AddQuadratic(3 * c + i, 3 * c + j, 1.0);
      }
    }
  }
  EXPECT_TRUE(embedding->VerifyForProblem(graph, logical).ok());
}

TEST(ClusteredTest, FailsWhenOutOfCells) {
  ChimeraGraph graph(1, 2, 4);
  std::vector<int> sizes(3, 4);  // three K_4 clusters, only two cells
  EXPECT_EQ(ClusteredEmbedder::Embed(sizes, graph).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ClusteredTest, LargeClusterGetsTriadBlock) {
  ChimeraGraph graph(4, 4, 4);
  std::vector<int> sizes = {8, 3};  // K_8 needs a 2x2 block, K_3 one cell
  auto embedding = ClusteredEmbedder::Embed(sizes, graph);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  qubo::QuboProblem logical(11);
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) logical.AddQuadratic(i, j, 1.0);
  }
  logical.AddQuadratic(8, 9, 1.0);
  logical.AddQuadratic(9, 10, 1.0);
  logical.AddQuadratic(8, 10, 1.0);
  EXPECT_TRUE(embedding->VerifyForProblem(graph, logical).ok());
}

TEST(ClusteredTest, PacksTwoSmallCliquesPerCell) {
  // K_3 consumes 2 left + 2 right indices, so an intact cell hosts two.
  ChimeraGraph graph(1, 2, 4);
  std::vector<int> four(4, 3);
  auto embedding = ClusteredEmbedder::Embed(four, graph);
  ASSERT_TRUE(embedding.ok()) << embedding.status().ToString();
  EXPECT_TRUE(embedding->VerifyStructure(graph).ok());
  qubo::QuboProblem logical(12);
  for (int c = 0; c < 4; ++c) {
    logical.AddQuadratic(3 * c, 3 * c + 1, 1.0);
    logical.AddQuadratic(3 * c, 3 * c + 2, 1.0);
    logical.AddQuadratic(3 * c + 1, 3 * c + 2, 1.0);
  }
  EXPECT_TRUE(embedding->VerifyForProblem(graph, logical).ok());
  std::vector<int> five(5, 3);
  EXPECT_FALSE(ClusteredEmbedder::Embed(five, graph).ok());
}

TEST(ClusteredTest, SkipsDamagedCells) {
  ChimeraGraph graph(1, 3, 4);
  // Middle cell loses its whole right shore: K_3 cannot fit there, so the
  // two intact cells (two K_3 regions each) bound the capacity at 4.
  for (int k = 0; k < 4; ++k) graph.SetBroken(graph.IdOf(0, 1, 1, k), true);
  std::vector<int> four(4, 3);
  auto embedding = ClusteredEmbedder::Embed(four, graph);
  ASSERT_TRUE(embedding.ok());
  EXPECT_TRUE(embedding->VerifyStructure(graph).ok());
  std::vector<int> five(5, 3);
  EXPECT_FALSE(ClusteredEmbedder::Embed(five, graph).ok());
}

TEST(ClusteredTest, RejectsNonPositiveClusterSize) {
  ChimeraGraph graph(2, 2, 4);
  EXPECT_EQ(ClusteredEmbedder::Embed({2, 0}, graph).status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------
// Pair matching
// --------------------------------------------------------------------

TEST(PairMatchingTest, IntactCellYieldsFourPairs) {
  ChimeraGraph graph(1, 1, 4);
  EXPECT_EQ(PairMatchingEmbedder::Capacity(graph), 4);
}

TEST(PairMatchingTest, PairsAreDisjointAndCoupled) {
  Rng rng(3);
  ChimeraGraph graph = ChimeraGraph::DWave2XWithDefects(&rng);
  auto pairs = PairMatchingEmbedder::MatchPairs(graph);
  std::set<chimera::QubitId> used;
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(graph.CouplerUsable(a, b));
    EXPECT_TRUE(used.insert(a).second);
    EXPECT_TRUE(used.insert(b).second);
  }
}

TEST(PairMatchingTest, CapacityNearPaperClass) {
  // The paper hosts 537 two-plan queries on its chip's 1097 working
  // qubits. Our defect map differs (we only know the defect *count*), so
  // require the matching to land within ~3% of the paper's figure and
  // below the perfect-matching bound.
  Rng rng(4);
  ChimeraGraph graph = ChimeraGraph::DWave2XWithDefects(&rng);
  int capacity = PairMatchingEmbedder::Capacity(graph);
  EXPECT_GE(capacity, 520);
  EXPECT_LE(capacity, graph.num_working_qubits() / 2);
}

TEST(PairMatchingTest, EmbedProducesVerifiableEmbedding) {
  Rng rng(5);
  ChimeraGraph graph = ChimeraGraph::DWave2XWithDefects(&rng);
  auto embedding = PairMatchingEmbedder::Embed(100, graph);
  ASSERT_TRUE(embedding.ok());
  EXPECT_EQ(embedding->num_vars(), 200);
  EXPECT_TRUE(embedding->VerifyStructure(graph).ok());
  // Plan pair of each query is coupled.
  qubo::QuboProblem logical(200);
  for (int q = 0; q < 100; ++q) logical.AddQuadratic(2 * q, 2 * q + 1, 1.0);
  EXPECT_TRUE(embedding->VerifyForProblem(graph, logical).ok());
}

TEST(PairMatchingTest, FailsBeyondCapacity) {
  ChimeraGraph graph(1, 1, 4);
  EXPECT_FALSE(PairMatchingEmbedder::Embed(5, graph).ok());
}

TEST(PairMatchingTest, RejectsNegativeQueryCount) {
  ChimeraGraph graph(1, 1, 4);
  EXPECT_EQ(PairMatchingEmbedder::Embed(-1, graph).status().code(),
            StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------
// Cross-chain couplers
// --------------------------------------------------------------------

TEST(CrossChainTest, FindsInterChainCouplers) {
  ChimeraGraph graph(1, 1, 4);
  auto chains = CliqueInCellEmbedder::EmbedInCell(3, 0, 0, graph);
  ASSERT_TRUE(chains.ok());
  Embedding embedding(3);
  for (int v = 0; v < 3; ++v) {
    embedding.SetChain(v, (*chains)[static_cast<size_t>(v)]);
  }
  auto couplers = CrossChainCouplers(embedding, graph);
  // All three pairs must appear at least once.
  std::set<std::pair<int, int>> pairs;
  for (const ChainCoupler& c : couplers) {
    EXPECT_LT(c.var_a, c.var_b);
    EXPECT_TRUE(graph.CouplerUsable(c.qubit_a, c.qubit_b));
    pairs.insert({c.var_a, c.var_b});
  }
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(CrossChainTest, IgnoresIntraChainCouplers) {
  ChimeraGraph graph(1, 1, 4);
  Embedding embedding(1);
  embedding.SetChain(
      0, Chain{{graph.IdOf(0, 0, 0, 0), graph.IdOf(0, 0, 1, 0)}});
  EXPECT_TRUE(CrossChainCouplers(embedding, graph).empty());
}

// --------------------------------------------------------------------
// Capacity model (Figure 7)
// --------------------------------------------------------------------

TEST(CapacityTest, AnalyticFormulaOnDWave2X) {
  // 12x12 cells: l=2 -> 4 per cell (576), l=3 -> 2 per cell (288),
  // l=4/5 -> 1 per cell (144), l=8 -> one 2x2 block each (36).
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 2), 576);
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 3), 288);
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 4), 144);
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 5), 144);
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 8), 36);
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 48), 1);
  EXPECT_EQ(MaxQueriesForDimensions(12, 12, 4, 49), 0);
}

TEST(CapacityTest, CurveIsMonotoneNonIncreasing) {
  auto curve = CapacityCurve(12, 12, 4, 20);
  ASSERT_EQ(curve.size(), 20u);
  for (size_t i = 2; i < curve.size(); ++i) {
    EXPECT_LE(curve[i].max_queries, curve[i - 1].max_queries)
        << "at l=" << curve[i].plans_per_query;
  }
}

TEST(CapacityTest, DoublingQubitsGrowsCapacity) {
  for (int l : {2, 3, 4, 5, 8}) {
    EXPECT_GE(MaxQueriesForDimensions(12, 24, 4, l),
              2 * MaxQueriesForDimensions(12, 12, 4, l) - 1)
        << "l=" << l;
  }
}

TEST(CapacityTest, MeasuredMatchesAnalyticOnIntactChip) {
  ChimeraGraph graph(2, 2, 4);
  EXPECT_EQ(MeasuredMaxQueries(graph, 2), 16);  // 4 cells x 4 pairs
  EXPECT_EQ(MeasuredMaxQueries(graph, 3), 8);
  EXPECT_EQ(MeasuredMaxQueries(graph, 5), 4);
}

TEST(CapacityTest, MeasuredDropsWithDefects) {
  ChimeraGraph graph(2, 2, 4);
  for (int k = 0; k < 4; ++k) graph.SetBroken(graph.IdOf(0, 0, 1, k), true);
  EXPECT_EQ(MeasuredMaxQueries(graph, 5), 3);
}

}  // namespace
}  // namespace embedding
}  // namespace qmqo
