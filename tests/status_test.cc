// Tests for the Status/Result error model: code/message plumbing, the
// named constructors the resilience stack leans on (Timeout,
// ResourceExhausted), string formatting, and Result round-trips through
// the QMQO_* macros.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qmqo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const std::vector<Case> cases = {
      {Status::InvalidArgument("bad"), StatusCode::kInvalidArgument},
      {Status::NotFound("missing"), StatusCode::kNotFound},
      {Status::FailedPrecondition("early"), StatusCode::kFailedPrecondition},
      {Status::ResourceExhausted("full"), StatusCode::kResourceExhausted},
      {Status::Internal("broken"), StatusCode::kInternal},
      {Status::Unimplemented("todo"), StatusCode::kUnimplemented},
      {Status::Timeout("late"), StatusCode::kTimeout},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, TimeoutForDeadlineExpiry) {
  Status status = Status::Timeout("attempt exceeded 50 ms budget");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  EXPECT_EQ(status.message(), "attempt exceeded 50 ms budget");
  EXPECT_EQ(status.ToString(), "Timeout: attempt exceeded 50 ms budget");
}

TEST(StatusTest, ResourceExhaustedForBudgetExhaustion) {
  Status status = Status::ResourceExhausted("all reads dropped");
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.ToString(), "ResourceExhausted: all reads dropped");
}

TEST(StatusTest, CodeToStringIsStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTimeout), "Timeout");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Timeout("x"), Status::Timeout("x"));
  EXPECT_FALSE(Status::Timeout("x") == Status::Timeout("y"));
  EXPECT_FALSE(Status::Timeout("x") == Status::Internal("x"));
  EXPECT_EQ(Status(), Status::OK());
}

TEST(ResultTest, ValueRoundTrip) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, ErrorRoundTrip) {
  Result<int> result = Status::Timeout("too slow");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(result.status().message(), "too slow");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 7);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result = std::string("resilient");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 9u);
}

namespace macros {

Status FailWhen(bool fail) {
  if (fail) return Status::ResourceExhausted("budget spent");
  return Status::OK();
}

Status Propagates(bool fail) {
  QMQO_RETURN_IF_ERROR(FailWhen(fail));
  return Status::OK();
}

Result<int> Half(int value) {
  if (value % 2 != 0) return Status::InvalidArgument("odd");
  return value / 2;
}

Result<int> Quarter(int value) {
  int half;
  QMQO_ASSIGN_OR_RETURN(half, Half(value));
  QMQO_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

}  // namespace macros

TEST(ResultTest, ReturnIfErrorPropagatesAndPassesThrough) {
  EXPECT_TRUE(macros::Propagates(false).ok());
  Status failed = macros::Propagates(true);
  EXPECT_EQ(failed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failed.message(), "budget spent");
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = macros::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  // First division succeeds (8 -> 4 is fine for 10 -> 5), second fails.
  Result<int> odd_inner = macros::Quarter(10);
  EXPECT_FALSE(odd_inner.ok());
  EXPECT_EQ(odd_inner.status().code(), StatusCode::kInvalidArgument);
  Result<int> odd_outer = macros::Quarter(7);
  EXPECT_FALSE(odd_outer.ok());
}

}  // namespace
}  // namespace qmqo
