// Determinism of the parallel read engine: for a fixed seed, serial and
// multi-threaded execution (1, 2, 8 workers) must produce *identical*
// SampleSets — same assignments, energies, occurrence counts, and order —
// for SA, SQA, and the device simulator.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "anneal/dwave_simulator.h"
#include "anneal/parallel.h"
#include "anneal/sample_set.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace qmqo {
namespace anneal {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

/// Binary encoding of `value` as a `width`-bit 0/1 assignment (the packed
/// arena stores bits, not multi-valued bytes).
std::vector<uint8_t> Bits(int value, int width) {
  std::vector<uint8_t> out(static_cast<size_t>(width));
  for (int b = 0; b < width; ++b) {
    out[static_cast<size_t>(b)] = static_cast<uint8_t>((value >> b) & 1);
  }
  return out;
}

qubo::QuboProblem RandomQubo(int num_vars, double density, Rng* rng) {
  qubo::QuboProblem problem(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    problem.AddLinear(i, rng->UniformReal(-4.0, 4.0));
    for (int j = i + 1; j < num_vars; ++j) {
      if (rng->Bernoulli(density)) {
        problem.AddQuadratic(i, j, rng->UniformReal(-4.0, 4.0));
      }
    }
  }
  return problem;
}

/// Exact equality — bit-identical energies, not approximate.
void ExpectIdentical(const SampleSet& a, const SampleSet& b) {
  EXPECT_EQ(a.total_reads(), b.total_reads());
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].assignment, b.samples()[i].assignment);
    EXPECT_EQ(a.samples()[i].energy, b.samples()[i].energy);
    EXPECT_EQ(a.samples()[i].num_occurrences, b.samples()[i].num_occurrences);
  }
}

TEST(RunReadsTest, PartitionsEveryReadExactlyOnce) {
  for (int threads : {1, 2, 3, 8, 16}) {
    SampleSet set = RunReads(13, threads, [](int read, SampleSet* local) {
      local->Add(Bits(read, 4), static_cast<double>(read));
    });
    EXPECT_EQ(set.total_reads(), 13);
    ASSERT_EQ(set.samples().size(), 13u);
    for (int read = 0; read < 13; ++read) {
      EXPECT_EQ(set.samples()[static_cast<size_t>(read)].energy,
                static_cast<double>(read));
    }
  }
}

TEST(RunReadsTest, ZeroReadsYieldsEmptyFinalizedSet) {
  SampleSet set = RunReads(0, 4, [](int, SampleSet*) { FAIL(); });
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total_reads(), 0);
}

TEST(RunReadsTest, MoreThreadsThanReads) {
  SampleSet set = RunReads(3, 16, [](int read, SampleSet* local) {
    local->Add(Bits(read, 2), 0.0);
  });
  EXPECT_EQ(set.total_reads(), 3);
}

TEST(RunReadsTest, WorkerExceptionPropagates) {
  EXPECT_THROW(RunReads(8, 4,
                        [](int read, SampleSet*) {
                          if (read == 5) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
}

TEST(RunReadsTest, CallerSuppliedExecutorIsReusedNotRespawned) {
  util::Executor executor(2);
  const int64_t spawned = util::Executor::TotalWorkersSpawned();
  for (int round = 0; round < 5; ++round) {
    SampleSet set = RunReads(
        11, 4,
        [](int read, SampleSet* local) {
          local->Add(Bits(read, 4), static_cast<double>(read));
        },
        &executor);
    EXPECT_EQ(set.total_reads(), 11);
  }
  EXPECT_EQ(util::Executor::TotalWorkersSpawned(), spawned);
}

TEST(RunReadsTest, SharedPoolFallbackSpawnsNothingPerCall) {
  util::Executor::Shared();  // force the one-time lazy construction
  const int64_t spawned = util::Executor::TotalWorkersSpawned();
  for (int round = 0; round < 3; ++round) {
    SampleSet set = RunReads(7, 3, [](int read, SampleSet* local) {
      local->Add(Bits(read, 3), 0.0);
    });
    EXPECT_EQ(set.total_reads(), 7);
  }
  EXPECT_EQ(util::Executor::TotalWorkersSpawned(), spawned);
}

TEST(ParallelDeterminismTest, SimulatedAnnealerMatchesSerial) {
  Rng rng(42);
  qubo::QuboProblem problem = RandomQubo(24, 0.3, &rng);
  SaOptions options;
  options.num_reads = 33;
  options.sweeps_per_read = 64;
  options.seed = 7;
  options.num_threads = 1;
  SampleSet serial = SimulatedAnnealer(options).Sample(problem);
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    SampleSet parallel = SimulatedAnnealer(options).Sample(problem);
    ExpectIdentical(serial, parallel);
  }
}

TEST(ParallelDeterminismTest, SqaMatchesSerial) {
  Rng rng(43);
  qubo::QuboProblem problem = RandomQubo(12, 0.4, &rng);
  SqaOptions options;
  options.num_reads = 9;
  options.num_slices = 6;
  options.sweeps = 48;
  options.seed = 11;
  options.num_threads = 1;
  SampleSet serial = SimulatedQuantumAnnealer(options).Sample(problem);
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    SampleSet parallel = SimulatedQuantumAnnealer(options).Sample(problem);
    ExpectIdentical(serial, parallel);
  }
}

TEST(ParallelDeterminismTest, DeviceSimulatorMatchesSerial) {
  Rng rng(44);
  qubo::QuboProblem problem = RandomQubo(16, 0.4, &rng);
  DWaveOptions options;
  options.num_reads = 40;
  options.num_gauges = 4;
  options.sa_sweeps = 32;
  options.seed = 99;
  options.record_reads = true;
  options.num_threads = 1;
  auto serial = DWaveSimulator(options).Sample(problem);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    auto parallel = DWaveSimulator(options).Sample(problem);
    ASSERT_TRUE(parallel.ok());
    ExpectIdentical(serial->samples, parallel->samples);
    // raw_reads must stay chronological regardless of worker assignment.
    EXPECT_EQ(serial->raw_reads, parallel->raw_reads);
  }
}

TEST(ParallelDeterminismTest, DeviceSimulatorSqaBackendMatchesSerial) {
  Rng rng(45);
  qubo::QuboProblem problem = RandomQubo(10, 0.4, &rng);
  DWaveOptions options;
  options.backend = DeviceBackend::kSimulatedQuantumAnnealing;
  options.num_reads = 12;
  options.num_gauges = 3;
  options.sqa.num_slices = 4;
  options.sqa.sweeps = 32;
  options.seed = 5;
  options.num_threads = 1;
  auto serial = DWaveSimulator(options).Sample(problem);
  ASSERT_TRUE(serial.ok());
  for (int threads : kThreadCounts) {
    options.num_threads = threads;
    auto parallel = DWaveSimulator(options).Sample(problem);
    ASSERT_TRUE(parallel.ok());
    ExpectIdentical(serial->samples, parallel->samples);
  }
}

TEST(ParallelDeterminismTest, DeviceCallSpawnsZeroThreadsPerGauge) {
  // The acceptance criterion of the executor subsystem: a multi-gauge,
  // multi-threaded device call enqueues every gauge's reads on one
  // reusable pool — the worker-spawn counter must not move across calls.
  Rng rng(46);
  qubo::QuboProblem problem = RandomQubo(14, 0.4, &rng);
  util::Executor executor(2);
  DWaveOptions options;
  options.num_reads = 24;
  options.num_gauges = 6;  // six programming cycles per Sample call
  options.sa_sweeps = 16;
  options.seed = 3;
  options.num_threads = 2;
  options.executor = &executor;
  auto first = DWaveSimulator(options).Sample(problem);
  ASSERT_TRUE(first.ok());
  const int64_t spawned = util::Executor::TotalWorkersSpawned();
  auto second = DWaveSimulator(options).Sample(problem);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(util::Executor::TotalWorkersSpawned(), spawned);
  ExpectIdentical(first->samples, second->samples);

  // Same with the SQA backend sharing the same pool.
  options.backend = DeviceBackend::kSimulatedQuantumAnnealing;
  options.sqa.num_slices = 4;
  options.sqa.sweeps = 16;
  auto sqa_result = DWaveSimulator(options).Sample(problem);
  ASSERT_TRUE(sqa_result.ok());
  EXPECT_EQ(util::Executor::TotalWorkersSpawned(), spawned);
}

TEST(ParallelDeterminismTest, ExplicitExecutorMatchesSharedPoolResults) {
  Rng rng(47);
  qubo::QuboProblem problem = RandomQubo(18, 0.3, &rng);
  SaOptions options;
  options.num_reads = 21;
  options.sweeps_per_read = 32;
  options.seed = 13;
  options.num_threads = 1;
  SampleSet serial = SimulatedAnnealer(options).Sample(problem);
  util::Executor executor(3);
  options.num_threads = 4;
  options.executor = &executor;
  SampleSet pooled = SimulatedAnnealer(options).Sample(problem);
  ExpectIdentical(serial, pooled);
}

TEST(SampleSetOpsTest, AddEnergyOffsetShiftsInPlace) {
  SampleSet set;
  set.Add({1, 0}, 3.0);
  set.Add({0, 1}, -1.0);
  set.Finalize();
  set.AddEnergyOffset(10.0);
  EXPECT_DOUBLE_EQ(set.samples()[0].energy, 9.0);
  EXPECT_DOUBLE_EQ(set.samples()[1].energy, 13.0);
  EXPECT_EQ(set.total_reads(), 2);
}

TEST(SampleSetOpsTest, AppendThenFinalizeEqualsMerge) {
  SampleSet a;
  a.Add({1, 0}, 1.0);
  a.Add({0, 0}, 0.0);
  a.Finalize();
  SampleSet b;
  b.Add({1, 0}, 1.0);
  b.Add({1, 1}, 2.0);  // different assignment, makes ordering interesting
  b.Finalize();

  SampleSet merged = a;
  merged.Merge(b);
  SampleSet appended = a;
  appended.Append(b);
  appended.Finalize();
  ExpectIdentical(merged, appended);
  EXPECT_EQ(merged.total_reads(), 4);
  EXPECT_EQ(merged.samples()[1].num_occurrences, 2);  // {1, 0} twice
}

TEST(SampleSetOpsTest, MergeUnfinalizedInputsStillFinalizes) {
  SampleSet a;
  a.Add({1}, 5.0);
  SampleSet b;
  b.Add({0}, -5.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.best().energy, -5.0);
  EXPECT_EQ(a.total_reads(), 2);
}

}  // namespace
}  // namespace anneal
}  // namespace qmqo
