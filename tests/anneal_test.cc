// Tests for schedules, samplers (SA, SQA), gauge transforms, sample sets,
// and the D-Wave device simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "anneal/dwave_simulator.h"
#include "anneal/gauge.h"
#include "anneal/sample_set.h"
#include "anneal/schedule.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "qubo/brute_force.h"
#include "util/rng.h"

namespace qmqo {
namespace anneal {
namespace {

/// Binary encoding of `value` as a `width`-bit 0/1 assignment. The packed
/// arena stores assignments as bits, so synthetic test assignments use bit
/// patterns where the byte-vector representation tolerated multi-valued
/// bytes.
std::vector<uint8_t> Bits(int value, int width) {
  std::vector<uint8_t> out(static_cast<size_t>(width));
  for (int b = 0; b < width; ++b) {
    out[static_cast<size_t>(b)] = static_cast<uint8_t>((value >> b) & 1);
  }
  return out;
}

qubo::QuboProblem RandomQubo(int num_vars, double density, Rng* rng) {
  qubo::QuboProblem problem(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    problem.AddLinear(i, rng->UniformReal(-4.0, 4.0));
    for (int j = i + 1; j < num_vars; ++j) {
      if (rng->Bernoulli(density)) {
        problem.AddQuadratic(i, j, rng->UniformReal(-4.0, 4.0));
      }
    }
  }
  return problem;
}

// --------------------------------------------------------------------
// Schedules
// --------------------------------------------------------------------

TEST(ScheduleTest, LinearInterpolation) {
  Schedule schedule{0.0, 10.0, ScheduleShape::kLinear};
  EXPECT_DOUBLE_EQ(schedule.At(0, 11), 0.0);
  EXPECT_DOUBLE_EQ(schedule.At(5, 11), 5.0);
  EXPECT_DOUBLE_EQ(schedule.At(10, 11), 10.0);
}

TEST(ScheduleTest, GeometricInterpolation) {
  Schedule schedule{1.0, 100.0, ScheduleShape::kGeometric};
  EXPECT_DOUBLE_EQ(schedule.At(0, 3), 1.0);
  EXPECT_NEAR(schedule.At(1, 3), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(schedule.At(2, 3), 100.0);
}

TEST(ScheduleTest, SingleStepReturnsEnd) {
  Schedule schedule{1.0, 8.0, ScheduleShape::kGeometric};
  EXPECT_DOUBLE_EQ(schedule.At(0, 1), 8.0);
}

TEST(ScheduleTest, SuggestBetaRangeOrdering) {
  Rng rng(1);
  qubo::QuboProblem qubo = RandomQubo(8, 0.5, &rng);
  qubo::IsingWithOffset ising = qubo::QuboToIsing(qubo);
  auto [hot, cold] = SuggestBetaRange(ising.ising);
  EXPECT_GT(hot, 0.0);
  EXPECT_GT(cold, hot);
}

TEST(ScheduleTest, SuggestBetaRangeTrivialProblem) {
  qubo::IsingProblem empty(4);
  auto [hot, cold] = SuggestBetaRange(empty);
  EXPECT_GT(hot, 0.0);
  EXPECT_GT(cold, hot);
}

// Regression: a near-overflow coupling used to drive beta_hot to a
// denormal / zero, which a geometric schedule asserts on. The suggestion
// must stay finite, positive, and ordered for any input magnitudes.
TEST(ScheduleTest, SuggestBetaRangeExtremeMagnitudesStaysSane) {
  qubo::IsingProblem huge(3);
  huge.AddCoupling(0, 1, 1e308);
  huge.AddField(2, 1e-320);  // denormal: log(100)/field overflows to inf
  auto [hot, cold] = SuggestBetaRange(huge);
  EXPECT_TRUE(std::isfinite(hot));
  EXPECT_TRUE(std::isfinite(cold));
  EXPECT_GT(hot, 0.0);
  EXPECT_GT(cold, hot);
}

// Regression: two near-max couplings on one spin sum to inf, which used
// to propagate through beta_hot = log(2)/inf = 0. Non-finite field sums
// must be skipped, not poison the range.
TEST(ScheduleTest, SuggestBetaRangeOverflowingFieldSumSkipped) {
  qubo::IsingProblem overflow(4);
  overflow.AddCoupling(0, 1, 1.5e308);
  overflow.AddCoupling(0, 2, 1.5e308);  // spin 0's field sum is inf
  overflow.AddField(3, 2.0);            // a sane spin remains
  auto [hot, cold] = SuggestBetaRange(overflow);
  EXPECT_TRUE(std::isfinite(hot));
  EXPECT_TRUE(std::isfinite(cold));
  EXPECT_GT(hot, 0.0);
  EXPECT_GT(cold, hot);
}

// Regression: when *every* spin's field sum is non-finite there is no
// usable signal; the suggestion must fall back to the trivial-problem
// defaults instead of returning NaN/inf or an inverted pair.
TEST(ScheduleTest, SuggestBetaRangeAllNonFiniteFallsBack) {
  qubo::IsingProblem bad(2);
  bad.AddCoupling(0, 1, 1.5e308);
  bad.AddCoupling(0, 1, 1.5e308);  // J_01 itself overflows to inf
  auto [hot, cold] = SuggestBetaRange(bad);
  EXPECT_TRUE(std::isfinite(hot));
  EXPECT_TRUE(std::isfinite(cold));
  EXPECT_GT(hot, 0.0);
  EXPECT_GT(cold, hot);
}

// The sanitization must not perturb ordinary problems: the clamp band is
// far outside anything a sane instance produces, so values match the
// unclamped arithmetic exactly (golden fixtures flow through this path).
TEST(ScheduleTest, SuggestBetaRangeNormalValuesUnchangedByClamping) {
  qubo::IsingProblem plain(2);
  plain.AddField(0, 2.0);
  plain.AddCoupling(0, 1, 1.0);
  auto [hot, cold] = SuggestBetaRange(plain);
  // Spin 0: |2.0| + |1.0| = 3.0 (max); spin 1: |1.0| (min).
  EXPECT_DOUBLE_EQ(hot, std::log(2.0) / 3.0);
  EXPECT_DOUBLE_EQ(cold, std::log(100.0) / 1.0);
}

// --------------------------------------------------------------------
// Sample sets
// --------------------------------------------------------------------

TEST(SampleSetTest, SortsByEnergyAndMergesDuplicates) {
  SampleSet set;
  set.Add({1, 0}, 5.0);
  set.Add({0, 1}, -2.0);
  set.Add({1, 0}, 5.0);
  set.Finalize();
  ASSERT_EQ(set.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(set.best().energy, -2.0);
  EXPECT_EQ(set.samples()[1].num_occurrences, 2);
  EXPECT_EQ(set.total_reads(), 3);
}

TEST(SampleSetTest, MaxSamplesKeepsExactTopK) {
  // A capped set must equal the uncapped set truncated after Finalize —
  // membership, energies, and occurrence counts — while total_reads keeps
  // counting dropped reads.
  Rng rng(51);
  SampleSet capped;
  capped.set_max_samples(5);
  SampleSet uncapped;
  for (int i = 0; i < 400; ++i) {
    // Few distinct energies force duplicates near the cutoff.
    int level = rng.UniformInt(0, 19);
    std::vector<uint8_t> assignment = Bits(level, 5);
    capped.Add(assignment, static_cast<double>(level));
    uncapped.Add(assignment, static_cast<double>(level));
  }
  capped.Finalize();
  uncapped.Finalize();
  ASSERT_LE(capped.samples().size(), 5u);
  EXPECT_EQ(capped.total_reads(), 400);
  for (size_t i = 0; i < capped.samples().size(); ++i) {
    EXPECT_EQ(capped.samples()[i].assignment, uncapped.samples()[i].assignment);
    EXPECT_DOUBLE_EQ(capped.samples()[i].energy, uncapped.samples()[i].energy);
    EXPECT_EQ(capped.samples()[i].num_occurrences,
              uncapped.samples()[i].num_occurrences);
  }
}

TEST(SampleSetTest, MaxSamplesBoundsMemoryDuringStreaming) {
  SampleSet set;
  set.set_max_samples(3);
  for (int i = 0; i < 10000; ++i) {
    set.Add(Bits(i & 7, 3), static_cast<double>(i % 100));
    // The streaming compaction keeps the buffer within 2k + 64 entries.
    ASSERT_LE(set.samples().size(), 3u * 2 + 64u);
  }
  set.Finalize();
  EXPECT_EQ(set.samples().size(), 3u);
  EXPECT_EQ(set.total_reads(), 10000);
  EXPECT_DOUBLE_EQ(set.best().energy, 0.0);
}

TEST(SampleSetTest, MergeRespectsCap) {
  SampleSet a;
  a.set_max_samples(2);
  a.Add(Bits(0, 2), 3.0);
  a.Add(Bits(1, 2), 1.0);
  a.Finalize();
  SampleSet b;
  b.Add(Bits(2, 2), 0.0);
  b.Add(Bits(3, 2), 2.0);
  b.Finalize();
  a.Merge(b);
  ASSERT_EQ(a.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(a.samples()[0].energy, 0.0);
  EXPECT_DOUBLE_EQ(a.samples()[1].energy, 1.0);
  EXPECT_EQ(a.total_reads(), 4);
}

TEST(SampleSetTest, MergeOfCappedSetsOverlappingAtEnergyCutBoundary) {
  // Two capped sets whose retained ranges overlap exactly at the energy
  // cut: every survivor of the merge sits at the tie energy, so retention
  // is decided purely by the assignment tie-break (byte-lexicographic
  // order of the unpacked bits). The merged capped result must equal the
  // uncapped union truncated after Finalize — membership, energies, AND
  // occurrence counts.
  constexpr int kCap = 3;
  constexpr double kCut = 5.0;  // every sample ties at the cut energy
  SampleSet a;
  a.set_max_samples(kCap);
  SampleSet b;
  b.set_max_samples(kCap);
  SampleSet uncapped;
  // Assignments 0..5 all at the cut energy, split across the sets with a
  // shared straddler (assignment 2 appears in both, so its occurrence
  // count must survive the per-set caps intact).
  for (int value : {0, 2, 4, 2, 1}) {
    a.Add(Bits(value, 3), kCut);
    uncapped.Add(Bits(value, 3), kCut);
  }
  for (int value : {5, 2, 3, 0}) {
    b.Add(Bits(value, 3), kCut);
    uncapped.Add(Bits(value, 3), kCut);
  }
  // Byte-lex order over the unpacked bits (LSB first) ranks the values
  // 0 < 4 < 2 < 1 < 5 < 3 at the tie energy.
  a.Finalize();
  b.Finalize();
  ASSERT_EQ(a.samples().size(), 3u);  // {0, 4, 2} survive a's cap
  ASSERT_EQ(b.samples().size(), 3u);  // {0, 2, 5} survive b's cap
  a.Merge(b);
  uncapped.Finalize();
  ASSERT_EQ(a.samples().size(), 3u);
  EXPECT_EQ(a.total_reads(), 9);
  for (size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].assignment, uncapped.samples()[i].assignment);
    EXPECT_DOUBLE_EQ(a.samples()[i].energy, uncapped.samples()[i].energy);
    EXPECT_EQ(a.samples()[i].num_occurrences,
              uncapped.samples()[i].num_occurrences);
  }
  // The boundary survivors under the byte-lex tie-break: 0 (twice, once
  // per set), 4, and the straddler 2 (three occurrences across both sets
  // — a's cap kept both of its copies, b's kept its one).
  EXPECT_EQ(a.samples()[0].num_occurrences, 2);
  EXPECT_EQ(a.samples()[1].num_occurrences, 1);
  EXPECT_EQ(a.samples()[2].num_occurrences, 3);
}

TEST(SampleSetTest, MergeCombines) {
  SampleSet a;
  a.Add({1}, 1.0);
  a.Finalize();
  SampleSet b;
  b.Add({0}, 0.0);
  b.Add({1}, 1.0);
  b.Finalize();
  a.Merge(b);
  EXPECT_EQ(a.total_reads(), 3);
  ASSERT_EQ(a.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(a.best().energy, 0.0);
  EXPECT_EQ(a.samples()[1].num_occurrences, 2);
}

// --------------------------------------------------------------------
// Gauge transforms
// --------------------------------------------------------------------

class GaugeProperty : public ::testing::TestWithParam<int> {};

TEST_P(GaugeProperty, EnergyInvariantUnderGauge) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 10);
  qubo::QuboProblem qubo = RandomQubo(8, 0.5, &rng);
  qubo::IsingWithOffset converted = qubo::QuboToIsing(qubo);
  GaugeTransform gauge = GaugeTransform::Random(8, &rng);
  qubo::IsingProblem transformed = gauge.Apply(converted.ising);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<int8_t> spins(8);
    for (auto& s : spins) s = rng.Bernoulli(0.5) ? 1 : -1;
    // H'(s') == H(g ⊙ s') where s = RestoreSpins(s').
    EXPECT_NEAR(transformed.Energy(spins),
                converted.ising.Energy(gauge.RestoreSpins(spins)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaugeProperty, ::testing::Range(0, 8));

TEST(GaugeTest, IdentityGaugeIsNoOp) {
  GaugeTransform identity(4);
  std::vector<int8_t> spins = {1, -1, 1, -1};
  EXPECT_EQ(identity.RestoreSpins(spins), spins);
}

TEST(GaugeTest, RestoreIsInvolution) {
  Rng rng(3);
  GaugeTransform gauge = GaugeTransform::Random(6, &rng);
  std::vector<int8_t> spins = {1, 1, -1, 1, -1, -1};
  EXPECT_EQ(gauge.RestoreSpins(gauge.RestoreSpins(spins)), spins);
}

// --------------------------------------------------------------------
// Simulated annealing
// --------------------------------------------------------------------

class SaOptimalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SaOptimalityProperty, FindsGroundStateOfSmallProblems) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 20);
  qubo::QuboProblem problem = RandomQubo(rng.UniformInt(4, 14), 0.5, &rng);
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  SaOptions options;
  options.num_reads = 32;
  options.sweeps_per_read = 256;
  options.seed = rng.Next();
  SimulatedAnnealer annealer(options);
  SampleSet samples = annealer.Sample(problem);
  ASSERT_FALSE(samples.empty());
  EXPECT_NEAR(samples.best().energy, exact->energy, 1e-9);
  // Reported energies must match re-evaluation.
  for (const Sample& sample : samples.samples()) {
    EXPECT_NEAR(problem.Energy(sample.assignment.ToBytes()), sample.energy, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaOptimalityProperty, ::testing::Range(0, 12));

TEST(SimulatedAnnealerTest, DeterministicGivenSeed) {
  Rng rng(7);
  qubo::QuboProblem problem = RandomQubo(10, 0.4, &rng);
  SaOptions options;
  options.num_reads = 8;
  options.sweeps_per_read = 64;
  options.seed = 99;
  SimulatedAnnealer annealer(options);
  SampleSet a = annealer.Sample(problem);
  SampleSet b = annealer.Sample(problem);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].assignment, b.samples()[i].assignment);
  }
}

TEST(SimulatedAnnealerTest, MaxSamplesMatchesUncappedTruncationAtAnyThreads) {
  Rng rng(77);
  qubo::QuboProblem problem = RandomQubo(10, 0.5, &rng);
  SaOptions options;
  options.num_reads = 64;
  options.sweeps_per_read = 32;
  options.seed = 3;
  SampleSet uncapped = SimulatedAnnealer(options).Sample(problem);
  for (int num_threads : {1, 2, 4}) {
    SaOptions capped_options = options;
    capped_options.max_samples = 4;
    capped_options.num_threads = num_threads;
    SampleSet capped = SimulatedAnnealer(capped_options).Sample(problem);
    ASSERT_LE(capped.samples().size(), 4u);
    EXPECT_EQ(capped.total_reads(), uncapped.total_reads());
    for (size_t i = 0; i < capped.samples().size(); ++i) {
      EXPECT_EQ(capped.samples()[i].assignment,
                uncapped.samples()[i].assignment);
      EXPECT_DOUBLE_EQ(capped.samples()[i].energy,
                       uncapped.samples()[i].energy);
      EXPECT_EQ(capped.samples()[i].num_occurrences,
                uncapped.samples()[i].num_occurrences);
    }
  }
}

TEST(SimulatedAnnealerTest, ReadCountHonored) {
  Rng rng(8);
  qubo::QuboProblem problem = RandomQubo(6, 0.5, &rng);
  SaOptions options;
  options.num_reads = 17;
  options.sweeps_per_read = 16;
  SimulatedAnnealer annealer(options);
  EXPECT_EQ(annealer.Sample(problem).total_reads(), 17);
}

// --------------------------------------------------------------------
// Simulated quantum annealing
// --------------------------------------------------------------------

class SqaOptimalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(SqaOptimalityProperty, FindsGroundStateOfSmallProblems) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 30);
  qubo::QuboProblem problem = RandomQubo(rng.UniformInt(4, 10), 0.5, &rng);
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  SqaOptions options;
  options.num_reads = 12;
  options.num_slices = 8;
  options.sweeps = 128;
  options.seed = rng.Next();
  SimulatedQuantumAnnealer annealer(options);
  SampleSet samples = annealer.Sample(problem);
  ASSERT_FALSE(samples.empty());
  EXPECT_NEAR(samples.best().energy, exact->energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqaOptimalityProperty,
                         ::testing::Range(0, 8));

TEST(SqaTest, EnergiesMatchAssignments) {
  Rng rng(9);
  qubo::QuboProblem problem = RandomQubo(8, 0.5, &rng);
  SqaOptions options;
  options.num_reads = 6;
  options.num_slices = 6;
  options.sweeps = 64;
  SimulatedQuantumAnnealer annealer(options);
  SampleSet samples = annealer.Sample(problem);
  for (const Sample& sample : samples.samples()) {
    EXPECT_NEAR(problem.Energy(sample.assignment.ToBytes()), sample.energy, 1e-9);
  }
}

// --------------------------------------------------------------------
// D-Wave device simulator
// --------------------------------------------------------------------

TEST(DWaveSimulatorTest, ValidatesOptions) {
  qubo::QuboProblem problem(2);
  problem.AddLinear(0, -1.0);
  DWaveOptions bad_reads;
  bad_reads.num_reads = 0;
  EXPECT_FALSE(DWaveSimulator(bad_reads).Sample(problem).ok());
  DWaveOptions bad_gauges;
  bad_gauges.num_gauges = 0;
  EXPECT_FALSE(DWaveSimulator(bad_gauges).Sample(problem).ok());
  DWaveOptions bad_range;
  bad_range.h_range = 0.0;
  EXPECT_FALSE(DWaveSimulator(bad_range).Sample(problem).ok());
}

TEST(DWaveSimulatorTest, TimingModelMatchesPaper) {
  DWaveOptions options;  // defaults: 129 + 247 us, 1000 reads
  DWaveSimulator device(options);
  EXPECT_DOUBLE_EQ(device.DeviceTimeForReads(1), 376.0);
  EXPECT_DOUBLE_EQ(device.DeviceTimeForReads(1000), 376000.0);
}

TEST(DWaveSimulatorTest, SamplesSmallProblemToOptimality) {
  Rng rng(10);
  qubo::QuboProblem problem = RandomQubo(10, 0.5, &rng);
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  DWaveOptions options;
  options.num_reads = 200;
  options.num_gauges = 5;
  options.sa_sweeps = 64;
  options.control_error = 0.01;
  DWaveSimulator device(options);
  auto result = device.Sample(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->samples.total_reads(), 200);
  EXPECT_NEAR(result->samples.best().energy, exact->energy, 1e-9);
  EXPECT_DOUBLE_EQ(result->device_time_us, 200 * 376.0);
  EXPECT_GT(result->scale_factor, 0.0);
}

TEST(DWaveSimulatorTest, EnergiesReportedOnOriginalScale) {
  // Even with scaling and noise, reported energies must be exact w.r.t.
  // the submitted problem.
  Rng rng(11);
  qubo::QuboProblem problem = RandomQubo(8, 0.6, &rng);
  DWaveOptions options;
  options.num_reads = 50;
  options.control_error = 0.1;  // heavy noise
  DWaveSimulator device(options);
  auto result = device.Sample(problem);
  ASSERT_TRUE(result.ok());
  for (const Sample& sample : result->samples.samples()) {
    EXPECT_NEAR(problem.Energy(sample.assignment.ToBytes()), sample.energy, 1e-9);
  }
}

TEST(DWaveSimulatorTest, RecordReadsKeepsChronologicalCount) {
  Rng rng(12);
  qubo::QuboProblem problem = RandomQubo(6, 0.5, &rng);
  DWaveOptions options;
  options.num_reads = 37;
  options.num_gauges = 4;
  options.record_reads = true;
  DWaveSimulator device(options);
  auto result = device.Sample(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->raw_reads.size(), 37);
}

TEST(DWaveSimulatorTest, DeterministicGivenSeed) {
  Rng rng(13);
  qubo::QuboProblem problem = RandomQubo(8, 0.5, &rng);
  DWaveOptions options;
  options.num_reads = 20;
  options.seed = 1234;
  options.record_reads = true;
  DWaveSimulator device(options);
  auto a = device.Sample(problem);
  auto b = device.Sample(problem);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->raw_reads, b->raw_reads);
}

TEST(DWaveSimulatorTest, SqaBackendWorks) {
  Rng rng(14);
  qubo::QuboProblem problem = RandomQubo(6, 0.6, &rng);
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  DWaveOptions options;
  options.backend = DeviceBackend::kSimulatedQuantumAnnealing;
  options.num_reads = 20;
  options.num_gauges = 2;
  options.control_error = 0.0;
  options.sqa.num_slices = 8;
  options.sqa.sweeps = 128;
  DWaveSimulator device(options);
  auto result = device.Sample(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->samples.total_reads(), 20);
  EXPECT_NEAR(result->samples.best().energy, exact->energy, 1e-9);
}

TEST(DWaveSimulatorTest, NoiseDegradesButNeverLies) {
  // With extreme control error the device may return bad solutions, but
  // the sample set stays sorted and self-consistent.
  Rng rng(15);
  qubo::QuboProblem problem = RandomQubo(8, 0.5, &rng);
  DWaveOptions options;
  options.num_reads = 30;
  options.control_error = 0.5;
  DWaveSimulator device(options);
  auto result = device.Sample(problem);
  ASSERT_TRUE(result.ok());
  double previous = -1e300;
  for (const Sample& sample : result->samples.samples()) {
    EXPECT_GE(sample.energy, previous);
    previous = sample.energy;
  }
}

}  // namespace
}  // namespace anneal
}  // namespace qmqo
