// Tests for util::Deadline, in particular the thread-safety contract of
// `Charge`: the solve service's worker lanes charge one shared per-request
// deadline concurrently, and the modeled debit must accumulate exactly —
// a lost update would silently extend a request's budget.

#include "util/deadline.h"

#include <gtest/gtest.h>

#include "util/executor.h"

namespace qmqo {
namespace util {
namespace {

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d = Deadline::Infinite();
  EXPECT_FALSE(d.has_budget());
  EXPECT_FALSE(d.expired());
  d.Charge(1e18);
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.RemainingMillis(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, NonPositiveBudgetAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5.0).expired());
}

TEST(DeadlineTest, ModeledChargeExpiresWithoutWallTime) {
  Deadline d = Deadline::AfterMillis(100.0);
  EXPECT_FALSE(d.expired());
  d.Charge(60.0);
  EXPECT_FALSE(d.expired());
  d.Charge(60.0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.charged_millis(), 120.0);
  EXPECT_EQ(d.RemainingMillis(), 0.0);
}

TEST(DeadlineTest, NonPositiveChargeIsIgnored) {
  Deadline d = Deadline::AfterMillis(1e9);
  d.Charge(0.0);
  d.Charge(-10.0);
  EXPECT_EQ(d.charged_millis(), 0.0);
}

TEST(DeadlineTest, CopySnapshotsChargeAndDiverges) {
  Deadline a = Deadline::AfterMillis(1e9);
  a.Charge(5.0);
  Deadline b = a;
  EXPECT_EQ(b.charged_millis(), 5.0);
  b.Charge(7.0);
  EXPECT_EQ(a.charged_millis(), 5.0);
  EXPECT_EQ(b.charged_millis(), 12.0);
  a = b;
  EXPECT_EQ(a.charged_millis(), 12.0);
}

// The exactness contract: 0.25 is a power of two, so every partial sum is
// exactly representable and the final total is independent of the
// interleaving — any lost CAS update shows up as a wrong total.
TEST(DeadlineTest, ConcurrentChargesAccumulateExactly) {
  Executor executor(8);
  Deadline d = Deadline::AfterMillis(1e9);
  const int kCharges = 8000;
  executor.ParallelFor(kCharges, [&](int) { d.Charge(0.25); });
  EXPECT_EQ(d.charged_millis(), 0.25 * kCharges);
}

TEST(DeadlineTest, ConcurrentChargesCrossExpiryExactlyOnce) {
  Executor executor(4);
  // 400 x 0.5 ms against a 100 ms budget: the deadline must expire and the
  // charge must still be exact (no double counting near the boundary).
  Deadline d = Deadline::AfterMillis(100.0);
  executor.ParallelFor(400, [&](int) { d.Charge(0.5); });
  EXPECT_EQ(d.charged_millis(), 200.0);
  EXPECT_TRUE(d.expired());
}

}  // namespace
}  // namespace util
}  // namespace qmqo
