// Tests for the fault-injection framework: FaultSpec schedules, seed
// determinism, per-site counters, the Deadline modeled-time budget, and —
// the property everything else leans on — that a device call with faults
// armed stays bit-identical at any thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "anneal/dwave_simulator.h"
#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "mapping/logical_mapping.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/rng.h"

namespace qmqo {
namespace {

// Chaos suites honor QMQO_CHAOS_SEED so CI can sweep seeds; default 1.
uint64_t ChaosSeed() {
  const char* env = std::getenv("QMQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

// --------------------------------------------------------------------
// FaultInjector
// --------------------------------------------------------------------

TEST(FaultInjectorTest, DisarmedInjectorNeverFires) {
  util::FaultInjector faults(ChaosSeed());
  EXPECT_FALSE(faults.armed());
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(faults.ShouldFail("device.program", key));
  }
  EXPECT_TRUE(faults.MaybeFail("device.program", 0).ok());
  EXPECT_EQ(faults.faults_injected(), 0);
}

TEST(FaultInjectorTest, UnarmedSiteNeverFiresEvenWhenOthersAre) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("device.program", always);
  EXPECT_TRUE(faults.armed());
  EXPECT_TRUE(faults.ShouldFail("device.program", 0));
  EXPECT_FALSE(faults.ShouldFail("device.read_dropout", 0));
}

TEST(FaultInjectorTest, FailFirstFiresExactlyTheFirstKeys) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec spec;
  spec.fail_first = 3;
  faults.Arm("solve.device", spec);
  EXPECT_TRUE(faults.ShouldFail("solve.device", 0));
  EXPECT_TRUE(faults.ShouldFail("solve.device", 1));
  EXPECT_TRUE(faults.ShouldFail("solve.device", 2));
  EXPECT_FALSE(faults.ShouldFail("solve.device", 3));
  EXPECT_FALSE(faults.ShouldFail("solve.device", 1000));
  EXPECT_EQ(faults.FaultCount("solve.device"), 3);
}

TEST(FaultInjectorTest, ProbabilityZeroAndOneAreExact) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec never;
  faults.Arm("a", never);
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("b", always);
  for (uint64_t key = 0; key < 256; ++key) {
    EXPECT_FALSE(faults.WouldFail("a", key));
    EXPECT_TRUE(faults.WouldFail("b", key));
  }
}

TEST(FaultInjectorTest, BernoulliRateIsRoughlyHonored) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec spec;
  spec.probability = 0.25;
  faults.Arm("device.read_dropout", spec);
  int fired = 0;
  const int kKeys = 20000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (faults.WouldFail("device.read_dropout", key)) ++fired;
  }
  double rate = static_cast<double>(fired) / kKeys;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjectorTest, DecisionsArePureInSeedSiteKey) {
  util::FaultSpec spec;
  spec.probability = 0.5;
  util::FaultInjector a(42);
  a.Arm("site", spec);
  util::FaultInjector b(42);
  b.Arm("site", spec);
  util::FaultInjector c(43);
  c.Arm("site", spec);
  int differs = 0;
  for (uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(a.WouldFail("site", key), b.WouldFail("site", key)) << key;
    if (a.WouldFail("site", key) != c.WouldFail("site", key)) ++differs;
  }
  // A different seed must give a genuinely different pattern.
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, SitesDrawIndependentStreams) {
  util::FaultSpec spec;
  spec.probability = 0.5;
  util::FaultInjector faults(ChaosSeed());
  faults.Arm("x", spec);
  faults.Arm("y", spec);
  int differs = 0;
  for (uint64_t key = 0; key < 512; ++key) {
    if (faults.WouldFail("x", key) != faults.WouldFail("y", key)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjectorTest, WouldFailDoesNotCount) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("site", always);
  EXPECT_TRUE(faults.WouldFail("site", 0));
  EXPECT_EQ(faults.faults_injected(), 0);
  EXPECT_TRUE(faults.ShouldFail("site", 0));
  EXPECT_EQ(faults.faults_injected(), 1);
}

TEST(FaultInjectorTest, MaybeFailNamesSiteAndKey) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("embed.compile", always);
  Status status = faults.MaybeFail("embed.compile", 7);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("embed.compile"), std::string::npos);
  EXPECT_NE(status.message().find("7"), std::string::npos);
}

TEST(FaultInjectorTest, CountsReportPerSiteInArmingOrder) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("first", always);
  faults.Arm("second", always);
  faults.ShouldFail("first", 0);
  faults.ShouldFail("first", 1);
  faults.ShouldFail("second", 0);
  auto counts = faults.Counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, "first");
  EXPECT_EQ(counts[0].second, 2);
  EXPECT_EQ(counts[1].first, "second");
  EXPECT_EQ(counts[1].second, 1);
  EXPECT_EQ(faults.faults_injected(), 3);
  EXPECT_EQ(faults.FaultCount("unarmed"), 0);
}

TEST(FaultInjectorTest, LatencyIntensityAndPayloadHash) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec spec;
  spec.probability = 1.0;
  spec.latency_ms = 12.5;
  spec.intensity = 4;
  faults.Arm("device.chain_break", spec);
  EXPECT_DOUBLE_EQ(faults.LatencyMillis("device.chain_break"), 12.5);
  EXPECT_EQ(faults.Intensity("device.chain_break"), 4);
  EXPECT_DOUBLE_EQ(faults.LatencyMillis("unarmed"), 0.0);
  EXPECT_EQ(faults.Intensity("unarmed"), 1);
  // Payload randomness: deterministic, key-sensitive, and distinct from
  // the firing stream.
  EXPECT_EQ(faults.HashAt("device.chain_break", 3),
            faults.HashAt("device.chain_break", 3));
  EXPECT_NE(faults.HashAt("device.chain_break", 3),
            faults.HashAt("device.chain_break", 4));
}

TEST(FaultInjectorTest, RearmingReplacesSpec) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("site", always);
  EXPECT_TRUE(faults.WouldFail("site", 0));
  faults.Arm("site", util::FaultSpec());
  EXPECT_FALSE(faults.WouldFail("site", 0));
}

// --------------------------------------------------------------------
// Deadline
// --------------------------------------------------------------------

TEST(DeadlineTest, DefaultNeverExpires) {
  util::Deadline deadline;
  EXPECT_FALSE(deadline.has_budget());
  EXPECT_FALSE(deadline.expired());
  EXPECT_TRUE(std::isinf(deadline.RemainingMillis()));
  deadline.Charge(1e12);
  EXPECT_FALSE(deadline.expired());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(util::Deadline::AfterMillis(0.0).expired());
  EXPECT_TRUE(util::Deadline::AfterMillis(-5.0).expired());
}

TEST(DeadlineTest, ModeledChargeExpiresDeterministically) {
  util::Deadline deadline = util::Deadline::AfterMillis(1e9);
  EXPECT_FALSE(deadline.expired());
  deadline.Charge(4e8);
  EXPECT_FALSE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.charged_millis(), 4e8);
  deadline.Charge(7e8);
  EXPECT_TRUE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.RemainingMillis(), 0.0);
}

// --------------------------------------------------------------------
// Device-level fault behavior
// --------------------------------------------------------------------

class DeviceFaultTest : public ::testing::Test {
 protected:
  DeviceFaultTest() : graph_(4, 4, 4) {
    Rng rng(ChaosSeed());
    harness::PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 12;
    auto instance = harness::GeneratePaperInstance(graph_, workload, &rng);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    instance_ = *std::move(instance);
  }

  harness::QuantumMqoOptions SmallOptions() const {
    harness::QuantumMqoOptions options;
    options.device.num_reads = 40;
    options.device.num_gauges = 4;
    options.device.sa_sweeps = 16;
    options.device.seed = ChaosSeed() + 7;
    return options;
  }

  chimera::ChimeraGraph graph_;
  harness::PaperInstance instance_{};
};

TEST_F(DeviceFaultTest, ProgramFaultFailsTheCallWithTypedError) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("device.program", always);
  harness::QuantumMqoOptions options = SmallOptions();
  options.faults = &faults;
  auto result = harness::SolveQuantumMqo(instance_.problem,
                                         instance_.embedding, graph_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_GT(faults.FaultCount("device.program"), 0);
}

TEST_F(DeviceFaultTest, ReadDropoutShrinksRawReads) {
  harness::QuantumMqoOptions clean = SmallOptions();
  auto baseline = harness::SolveQuantumMqo(instance_.problem,
                                           instance_.embedding, graph_, clean);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec dropout;
  dropout.probability = 0.3;
  faults.Arm("device.read_dropout", dropout);
  harness::QuantumMqoOptions faulty = SmallOptions();
  faulty.faults = &faults;
  auto result = harness::SolveQuantumMqo(instance_.problem,
                                         instance_.embedding, graph_, faulty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->dropped_reads, 0);
  EXPECT_EQ(result->faults_injected, faults.faults_injected());
  // The surviving reads still yield a valid (repaired) solution.
  EXPECT_TRUE(
      mqo::ValidateSolution(instance_.problem, result->best_solution).ok());
}

TEST_F(DeviceFaultTest, TotalDropoutIsResourceExhausted) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec all;
  all.probability = 1.0;
  faults.Arm("device.read_dropout", all);
  harness::QuantumMqoOptions options = SmallOptions();
  options.faults = &faults;
  auto result = harness::SolveQuantumMqo(instance_.problem,
                                         instance_.embedding, graph_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(DeviceFaultTest, ForcedChainBreaksRaiseBrokenFraction) {
  // l = 2 instances embed every plan on a single qubit, so chains cannot
  // break; chain-break faults need the l = 3 workload's 2-qubit chains.
  Rng rng(ChaosSeed() + 3);
  harness::PaperWorkloadOptions workload;
  workload.plans_per_query = 3;
  workload.num_queries = 8;
  auto instance = harness::GeneratePaperInstance(graph_, workload, &rng);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  harness::QuantumMqoOptions clean = SmallOptions();
  auto baseline = harness::SolveQuantumMqo(instance->problem,
                                           instance->embedding, graph_, clean);
  ASSERT_TRUE(baseline.ok());

  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec breaks;
  breaks.probability = 1.0;
  breaks.intensity = 8;
  faults.Arm("device.chain_break", breaks);
  harness::QuantumMqoOptions faulty = SmallOptions();
  faulty.faults = &faults;
  auto result = harness::SolveQuantumMqo(instance->problem,
                                         instance->embedding, graph_, faulty);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->broken_chain_read_fraction,
            baseline->broken_chain_read_fraction);
}

TEST_F(DeviceFaultTest, InjectedLatencyIsReportedNotSlept) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec latency;
  latency.probability = 1.0;
  latency.latency_ms = 250.0;
  faults.Arm("device.latency", latency);
  harness::QuantumMqoOptions options = SmallOptions();
  options.faults = &faults;
  auto result = harness::SolveQuantumMqo(instance_.problem,
                                         instance_.embedding, graph_, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // One latency spike per programming cycle (4 gauges).
  EXPECT_DOUBLE_EQ(result->injected_latency_ms, 4 * 250.0);
}

TEST_F(DeviceFaultTest, NoFaultRunsAreUnchangedByNullInjector) {
  harness::QuantumMqoOptions a = SmallOptions();
  auto without = harness::SolveQuantumMqo(instance_.problem,
                                          instance_.embedding, graph_, a);
  ASSERT_TRUE(without.ok());
  util::FaultInjector disarmed(ChaosSeed());
  harness::QuantumMqoOptions b = SmallOptions();
  b.faults = &disarmed;  // armed() is false: the fast path must not change
  auto with = harness::SolveQuantumMqo(instance_.problem,
                                       instance_.embedding, graph_, b);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(without->best_cost, with->best_cost);
  EXPECT_EQ(without->broken_chain_read_fraction,
            with->broken_chain_read_fraction);
  EXPECT_EQ(with->faults_injected, 0);
}

// The central determinism contract: with faults armed, a device call is
// bit-identical at 1/2/4 threads — firing decisions are pure in
// (seed, site, key), never in scheduling order.
TEST_F(DeviceFaultTest, FaultyDeviceCallBitIdenticalAcrossThreadCounts) {
  auto run = [&](int threads) {
    util::FaultInjector faults(ChaosSeed());
    util::FaultSpec dropout;
    dropout.probability = 0.2;
    faults.Arm("device.read_dropout", dropout);
    util::FaultSpec stuck;
    stuck.probability = 0.1;
    faults.Arm("device.stuck_qubit", stuck);
    util::FaultSpec breaks;
    breaks.probability = 0.15;
    breaks.intensity = 3;
    faults.Arm("device.chain_break", breaks);
    harness::QuantumMqoOptions options = SmallOptions();
    options.faults = &faults;
    options.device.num_threads = threads;
    auto result = harness::SolveQuantumMqo(
        instance_.problem, instance_.embedding, graph_, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *std::move(result);
  };

  harness::QuantumMqoResult serial = run(1);
  EXPECT_GT(serial.faults_injected, 0);
  for (int threads : {2, 4}) {
    harness::QuantumMqoResult parallel = run(threads);
    EXPECT_EQ(serial.best_cost, parallel.best_cost) << threads;
    EXPECT_EQ(serial.first_read_cost, parallel.first_read_cost) << threads;
    EXPECT_EQ(serial.broken_chain_read_fraction,
              parallel.broken_chain_read_fraction)
        << threads;
    EXPECT_EQ(serial.valid_read_fraction, parallel.valid_read_fraction)
        << threads;
    EXPECT_EQ(serial.faults_injected, parallel.faults_injected) << threads;
    EXPECT_EQ(serial.dropped_reads, parallel.dropped_reads) << threads;
    EXPECT_EQ(serial.best_solution.selections(),
              parallel.best_solution.selections())
        << threads;
  }
}

TEST_F(DeviceFaultTest, EmbedCompileFaultSurfacesAsStatus) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec once;
  once.fail_first = 1;
  faults.Arm("embed.compile", once);
  harness::QuantumMqoOptions options = SmallOptions();
  options.faults = &faults;
  options.fault_attempt = 0;
  auto failed = harness::SolveQuantumMqo(instance_.problem,
                                         instance_.embedding, graph_, options);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("embed.compile"),
            std::string::npos);
  // The next attempt (key 1) is past the fail-first window.
  options.fault_attempt = 1;
  auto retried = harness::SolveQuantumMqo(instance_.problem,
                                          instance_.embedding, graph_, options);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
}

}  // namespace
}  // namespace qmqo
