// Tests for the sweep-kernel layer: CSR graph coloring, the bit-exact vs
// fast-math kernel contracts (FastExp error bound, frozen scalar stream,
// batched initialization pinning), field-update equivalence of the
// checkerboard sweep, thread-count determinism, and energy-quality parity
// of all three kernels on a 512-spin Chimera glass.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "anneal/schedule.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "anneal/sweep_kernel.h"
#include "chimera/topology.h"
#include "qubo/brute_force.h"
#include "qubo/csr.h"
#include "qubo/ising.h"
#include "util/rng.h"

namespace qmqo {
namespace anneal {
namespace {

/// A random spin glass on an intact rows x cols x 4 Chimera graph.
qubo::IsingProblem ChimeraGlass(int rows, int cols, Rng* rng) {
  chimera::ChimeraGraph graph(rows, cols, 4);
  qubo::IsingProblem ising(graph.num_qubits());
  for (chimera::QubitId q = 0; q < graph.num_qubits(); ++q) {
    ising.AddField(q, rng->UniformReal(-1.0, 1.0));
    for (chimera::QubitId other : graph.Neighbors(q)) {
      if (other > q) {
        ising.AddCoupling(q, other, rng->UniformReal(-1.0, 1.0));
      }
    }
  }
  return ising;
}

qubo::IsingProblem RandomIsing(int num_spins, double density, Rng* rng) {
  qubo::IsingProblem ising(num_spins);
  for (int i = 0; i < num_spins; ++i) {
    ising.AddField(i, rng->UniformReal(-2.0, 2.0));
    for (int j = i + 1; j < num_spins; ++j) {
      if (rng->Bernoulli(density)) {
        ising.AddCoupling(i, j, rng->UniformReal(-2.0, 2.0));
      }
    }
  }
  return ising;
}

/// A proper coloring never places two adjacent vertices in one class, and
/// its classes partition the vertex set.
void ExpectValidColoring(const qubo::CsrGraph& graph,
                         const qubo::Coloring& coloring) {
  const int n = graph.num_vars();
  ASSERT_EQ(static_cast<int>(coloring.color_of.size()), n);
  for (qubo::VarId v = 0; v < n; ++v) {
    int c = coloring.color_of[static_cast<size_t>(v)];
    ASSERT_GE(c, 0);
    ASSERT_LT(c, coloring.num_colors);
    for (auto [u, w] : graph.row(v)) {
      (void)w;
      EXPECT_NE(coloring.color_of[static_cast<size_t>(u)], c)
          << "edge (" << v << ", " << u << ") inside color class " << c;
    }
  }
  // class_members is a permutation of [0, n) grouped consistently.
  ASSERT_EQ(static_cast<int>(coloring.class_members.size()), n);
  ASSERT_EQ(static_cast<int>(coloring.class_offsets.size()),
            coloring.num_colors + 1);
  std::vector<int> seen(static_cast<size_t>(n), 0);
  for (int c = 0; c < coloring.num_colors; ++c) {
    for (int k = 0; k < coloring.class_size(c); ++k) {
      qubo::VarId v = coloring.class_begin(c)[k];
      EXPECT_EQ(coloring.color_of[static_cast<size_t>(v)], c);
      ++seen[static_cast<size_t>(v)];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// --------------------------------------------------------------------
// Graph coloring
// --------------------------------------------------------------------

TEST(ColoringTest, ChimeraIsBipartiteWithTwoBalancedClasses) {
  Rng rng(1);
  qubo::IsingProblem glass = ChimeraGlass(4, 4, &rng);
  glass.Finalize();
  qubo::Coloring coloring = qubo::ColorGraph(glass.csr());
  EXPECT_TRUE(coloring.is_bipartite);
  EXPECT_EQ(coloring.num_colors, 2);
  ExpectValidColoring(glass.csr(), coloring);
  // The Chimera checkerboard: (side + row + col) parity splits evenly.
  EXPECT_EQ(coloring.class_size(0), glass.num_spins() / 2);
  EXPECT_EQ(coloring.class_size(1), glass.num_spins() / 2);
}

TEST(ColoringTest, RandomCsrGraphsGetValidColorings) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(static_cast<uint64_t>(seed) + 100);
    qubo::IsingProblem ising =
        RandomIsing(rng.UniformInt(8, 40), rng.UniformReal(0.1, 0.6), &rng);
    ising.Finalize();
    qubo::Coloring coloring = qubo::ColorGraph(ising.csr());
    ExpectValidColoring(ising.csr(), coloring);
  }
}

TEST(ColoringTest, TriangleNeedsThreeColors) {
  qubo::IsingProblem ising(3);
  ising.AddCoupling(0, 1, 1.0);
  ising.AddCoupling(1, 2, 1.0);
  ising.AddCoupling(0, 2, 1.0);
  ising.Finalize();
  qubo::Coloring coloring = qubo::ColorGraph(ising.csr());
  EXPECT_FALSE(coloring.is_bipartite);
  EXPECT_EQ(coloring.num_colors, 3);
  ExpectValidColoring(ising.csr(), coloring);
}

TEST(ColoringTest, EdgelessGraphUsesOneClass) {
  qubo::IsingProblem ising(5);
  ising.AddField(0, 1.0);
  ising.Finalize();
  qubo::Coloring coloring = qubo::ColorGraph(ising.csr());
  EXPECT_TRUE(coloring.is_bipartite);
  EXPECT_EQ(coloring.num_colors, 1);
  EXPECT_EQ(coloring.class_size(0), 5);
}

// --------------------------------------------------------------------
// Kernel naming
// --------------------------------------------------------------------

TEST(SweepKernelTest, NamesRoundTrip) {
  for (SweepKernel kernel :
       {SweepKernel::kScalar, SweepKernel::kCheckerboard,
        SweepKernel::kCheckerboardFast}) {
    SweepKernel parsed = SweepKernel::kScalar;
    EXPECT_TRUE(ParseSweepKernel(SweepKernelName(kernel), &parsed));
    EXPECT_EQ(parsed, kernel);
  }
  SweepKernel untouched = SweepKernel::kCheckerboard;
  EXPECT_FALSE(ParseSweepKernel("warp", &untouched));
  EXPECT_EQ(untouched, SweepKernel::kCheckerboard);
}

// --------------------------------------------------------------------
// FastExp
// --------------------------------------------------------------------

TEST(FastExpTest, RelativeErrorBoundedOverKernelRange) {
  // Dense scan of the full argument range the kernels can produce.
  double max_rel = 0.0;
  for (double x = -708.0; x <= 0.0; x += 1e-3) {
    double exact = std::exp(x);
    double rel = std::abs(FastExp(x) - exact) / exact;
    max_rel = std::max(max_rel, rel);
  }
  EXPECT_LT(max_rel, kFastExpMaxRelError);
  EXPECT_DOUBLE_EQ(FastExp(0.0), 1.0);
  // Beyond the clamp the result stays beneath every nonzero 53-bit
  // uniform, so Metropolis tests treat it as zero.
  EXPECT_LT(FastExp(-1e9), 1e-300);
}

TEST(FastExpTest, RealizedBetaDeltaRangeStaysInBound) {
  // The realized arguments are -beta * delta with beta from the suggested
  // schedule and |delta| <= 2 * (|h_i| + sum_j |J_ij|); sample that range
  // for the 512-spin glass the parity test below anneals.
  Rng rng(3);
  qubo::IsingProblem glass = ChimeraGlass(8, 8, &rng);
  glass.Finalize();
  auto [hot, cold] = SuggestBetaRange(glass);
  double max_delta = 0.0;
  for (qubo::VarId i = 0; i < glass.num_spins(); ++i) {
    double reach = std::abs(glass.field(i));
    for (auto [j, w] : glass.neighbors(i)) {
      (void)j;
      reach += std::abs(w);
    }
    max_delta = std::max(max_delta, 2.0 * reach);
  }
  double lo = -cold * max_delta;
  ASSERT_LT(lo, 0.0);
  for (int k = 0; k <= 20000; ++k) {
    double x = lo * (static_cast<double>(k) / 20000.0);
    if (x < -708.0) continue;
    double exact = std::exp(x);
    EXPECT_LT(std::abs(FastExp(x) - exact) / exact, kFastExpMaxRelError)
        << "at x = " << x << " (hot " << hot << ", cold " << cold << ")";
  }
}

// --------------------------------------------------------------------
// Initialization contracts
// --------------------------------------------------------------------

TEST(RandomSpinsTest, BatchedSequenceIsPinned) {
  // The checkerboard kernels' seed contract: 64 spins bit-unpacked per
  // Rng::Next draw. This literal sequence (seed 42) must never change
  // without bumping the documented contract in sweep_kernel.h.
  const int8_t kExpected[80] = {
      1,  -1, -1, 1,  1,  1,  1,  1,  1,  1,  1,  -1, -1, 1,  -1, 1,
      1,  1,  -1, 1,  -1, 1,  1,  -1, 1,  -1, 1,  -1, 1,  -1, 1,  -1,
      -1, -1, -1, -1, -1, 1,  1,  -1, 1,  1,  -1, 1,  -1, -1, -1, 1,
      1,  -1, -1, -1, -1, -1, 1,  1,  1,  1,  -1, -1, -1, 1,  -1, -1,
      1,  -1, 1,  -1, -1, 1,  -1, -1, 1,  1,  -1, -1, 1,  1,  1,  1};
  std::vector<int8_t> spins(80);
  Rng rng(42);
  RandomSpinsBatched(&rng, &spins);
  for (int i = 0; i < 80; ++i) {
    EXPECT_EQ(spins[i], kExpected[i]) << "at index " << i;
  }
}

TEST(RandomSpinsTest, BatchedMatchesWordBitUnpack) {
  // The batched draw consumes exactly ceil(n / 64) Next() calls and maps
  // bit b of each word to spin 64*word + b.
  std::vector<int8_t> spins(130);
  Rng rng(9);
  RandomSpinsBatched(&rng, &spins);
  Rng replay(9);
  for (size_t base = 0; base < spins.size(); base += 64) {
    uint64_t word = replay.Next();
    for (size_t bit = 0; bit < 64 && base + bit < spins.size(); ++bit) {
      EXPECT_EQ(spins[base + bit], (word >> bit) & 1 ? 1 : -1);
    }
  }
}

TEST(RandomSpinsTest, ScalarKernelKeepsLegacyBernoulliStream) {
  // InitSpins(kScalar) must stay on the legacy one-Bernoulli-per-spin
  // stream — that is the bit-exactness contract of the default path.
  std::vector<int8_t> via_init(50), via_legacy(50);
  Rng a(7), b(7);
  InitSpins(SweepKernel::kScalar, &a, &via_init);
  for (auto& s : via_legacy) s = b.Bernoulli(0.5) ? 1 : -1;
  EXPECT_EQ(via_init, via_legacy);
}

// --------------------------------------------------------------------
// Field-update equivalence on a frozen spin trajectory
// --------------------------------------------------------------------

TEST(CheckerboardTest, IntraClassFlipsLeaveMemberDeltasFrozen) {
  // The invariant the checkerboard sweep rests on: flipping any subset of
  // one color class never changes another member's flip delta, so deciding
  // the whole class against pre-pass fields equals deciding sequentially.
  Rng rng(11);
  qubo::IsingProblem glass = ChimeraGlass(2, 3, &rng);
  glass.Finalize();
  qubo::Coloring coloring = qubo::ColorGraph(glass.csr());
  ASSERT_EQ(coloring.num_colors, 2);
  for (int c = 0; c < coloring.num_colors; ++c) {
    std::vector<int8_t> spins(static_cast<size_t>(glass.num_spins()));
    RandomSpinsBatched(&rng, &spins);
    // Frozen trajectory: pre-pass deltas of every member.
    std::vector<double> frozen(static_cast<size_t>(coloring.class_size(c)));
    for (int k = 0; k < coloring.class_size(c); ++k) {
      frozen[static_cast<size_t>(k)] =
          glass.FlipDelta(spins, coloring.class_begin(c)[k]);
    }
    // Flip an arbitrary half of the class, then re-evaluate the rest.
    double flipped_delta_sum = 0.0;
    for (int k = 0; k < coloring.class_size(c); k += 2) {
      qubo::VarId v = coloring.class_begin(c)[k];
      flipped_delta_sum += frozen[static_cast<size_t>(k)];
      spins[static_cast<size_t>(v)] =
          static_cast<int8_t>(-spins[static_cast<size_t>(v)]);
    }
    for (int k = 1; k < coloring.class_size(c); k += 2) {
      EXPECT_DOUBLE_EQ(
          glass.FlipDelta(spins, coloring.class_begin(c)[k]),
          frozen[static_cast<size_t>(k)]);
    }
    // And the summed frozen deltas are exactly the realized energy change
    // — the fields scattered by the apply phase stay consistent.
    std::vector<int8_t> original(spins);
    for (int k = 0; k < coloring.class_size(c); k += 2) {
      qubo::VarId v = coloring.class_begin(c)[k];
      original[static_cast<size_t>(v)] =
          static_cast<int8_t>(-original[static_cast<size_t>(v)]);
    }
    EXPECT_NEAR(glass.Energy(spins) - glass.Energy(original),
                flipped_delta_sum, 1e-9);
  }
}

TEST(CheckerboardTest, ZeroBetaSweepFlipsEverySpinLikeScalar) {
  // At beta == 0 every proposal is accepted (u < exp(0) = 1 for u in
  // [0, 1)), so one sweep of *any* kernel negates the state — a frozen
  // trajectory on which scalar and checkerboard field updates must agree
  // exactly despite their different orders and random streams.
  Rng rng(13);
  qubo::IsingProblem glass = ChimeraGlass(3, 3, &rng);
  glass.Finalize();
  SweepPlan plan(glass);
  Schedule zero_beta{0.0, 0.0, ScheduleShape::kLinear};
  for (SweepKernel kernel :
       {SweepKernel::kScalar, SweepKernel::kCheckerboard,
        SweepKernel::kCheckerboardFast}) {
    for (int sweeps : {1, 3}) {
      std::vector<int8_t> spins(static_cast<size_t>(glass.num_spins()));
      Rng read_rng(99);
      RandomSpinsBatched(&read_rng, &spins);
      std::vector<int8_t> initial(spins);
      RunSweeps(glass, &plan, zero_beta, sweeps, kernel, &read_rng, &spins);
      for (size_t i = 0; i < spins.size(); ++i) {
        EXPECT_EQ(spins[i], sweeps % 2 == 0 ? initial[i] : -initial[i])
            << SweepKernelName(kernel) << " sweeps=" << sweeps
            << " spin " << i;
      }
    }
  }
}

// --------------------------------------------------------------------
// Determinism across thread counts
// --------------------------------------------------------------------

bool SameSamples(const SampleSet& a, const SampleSet& b) {
  if (a.total_reads() != b.total_reads()) return false;
  if (a.samples().size() != b.samples().size()) return false;
  for (size_t i = 0; i < a.samples().size(); ++i) {
    if (a.samples()[i].assignment != b.samples()[i].assignment) return false;
    if (a.samples()[i].energy != b.samples()[i].energy) return false;
    if (a.samples()[i].num_occurrences != b.samples()[i].num_occurrences) {
      return false;
    }
  }
  return true;
}

TEST(CheckerboardTest, BitIdenticalAcrossReadAndSweepThreads) {
  Rng rng(17);
  qubo::IsingProblem glass = ChimeraGlass(3, 3, &rng);
  for (SweepKernel kernel :
       {SweepKernel::kCheckerboard, SweepKernel::kCheckerboardFast}) {
    SaOptions options;
    options.num_reads = 8;
    options.sweeps_per_read = 48;
    options.seed = 21;
    options.sweep_kernel = kernel;
    SampleSet serial = SimulatedAnnealer(options).SampleIsing(glass);
    for (int num_threads : {2, 4}) {
      SaOptions parallel = options;
      parallel.num_threads = num_threads;
      EXPECT_TRUE(
          SameSamples(serial, SimulatedAnnealer(parallel).SampleIsing(glass)))
          << SweepKernelName(kernel) << " num_threads=" << num_threads;
    }
    for (int sweep_threads : {0, 2, 3}) {
      SaOptions fanned = options;
      fanned.sweep_threads = sweep_threads;
      EXPECT_TRUE(
          SameSamples(serial, SimulatedAnnealer(fanned).SampleIsing(glass)))
          << SweepKernelName(kernel) << " sweep_threads=" << sweep_threads;
    }
  }
}

// --------------------------------------------------------------------
// Energy-quality parity on a 512-spin glass
// --------------------------------------------------------------------

TEST(SweepKernelTest, KernelsReachParityOn512SpinGlass) {
  Rng rng(23);
  qubo::IsingProblem glass = ChimeraGlass(8, 8, &rng);  // 512 spins
  ASSERT_EQ(glass.num_spins(), 512);
  double best[3] = {0, 0, 0};
  int index = 0;
  for (SweepKernel kernel :
       {SweepKernel::kScalar, SweepKernel::kCheckerboard,
        SweepKernel::kCheckerboardFast}) {
    SaOptions options;
    options.num_reads = 24;
    options.sweeps_per_read = 256;
    options.seed = 5;
    options.sweep_kernel = kernel;
    SampleSet samples = SimulatedAnnealer(options).SampleIsing(glass);
    ASSERT_FALSE(samples.empty());
    best[index++] = samples.best().energy;
    // Reported energies are exact re-evaluations under every kernel.
    for (const Sample& sample : samples.samples()) {
      EXPECT_NEAR(glass.Energy(sample.assignment.ToSpins()), sample.energy,
                  1e-9);
    }
  }
  // All kernels sample the same Boltzmann target: best-of-24 energies
  // agree within a few percent on a glass this size.
  for (int k = 1; k < 3; ++k) {
    EXPECT_NEAR(best[k], best[0], 0.03 * std::abs(best[0]))
        << "kernel " << k << " vs scalar: " << best[k] << " vs " << best[0];
  }
}

// --------------------------------------------------------------------
// SQA kernels
// --------------------------------------------------------------------

TEST(SqaKernelTest, AllKernelsFindGroundStateOfSmallProblem) {
  Rng rng(29);
  qubo::QuboProblem problem(8);
  for (int i = 0; i < 8; ++i) {
    problem.AddLinear(i, rng.UniformReal(-4.0, 4.0));
    for (int j = i + 1; j < 8; ++j) {
      if (rng.Bernoulli(0.5)) {
        problem.AddQuadratic(i, j, rng.UniformReal(-4.0, 4.0));
      }
    }
  }
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  for (SweepKernel kernel :
       {SweepKernel::kScalar, SweepKernel::kCheckerboard,
        SweepKernel::kCheckerboardFast}) {
    SqaOptions options;
    options.num_reads = 12;
    options.num_slices = 8;
    options.sweeps = 128;
    options.seed = 31;
    options.sweep_kernel = kernel;
    SampleSet samples = SimulatedQuantumAnnealer(options).Sample(problem);
    ASSERT_FALSE(samples.empty());
    EXPECT_NEAR(samples.best().energy, exact->energy, 1e-9)
        << SweepKernelName(kernel);
  }
}

TEST(SqaKernelTest, CheckerboardDeterministicAcrossThreads) {
  Rng rng(37);
  qubo::IsingProblem glass = ChimeraGlass(2, 2, &rng);
  SqaOptions options;
  options.num_reads = 6;
  options.num_slices = 6;
  options.sweeps = 24;
  options.seed = 41;
  options.sweep_kernel = SweepKernel::kCheckerboardFast;
  SampleSet serial = SimulatedQuantumAnnealer(options).SampleIsing(glass);
  for (int num_threads : {2, 3}) {
    SqaOptions parallel = options;
    parallel.num_threads = num_threads;
    EXPECT_TRUE(SameSamples(
        serial, SimulatedQuantumAnnealer(parallel).SampleIsing(glass)));
  }
}

}  // namespace
}  // namespace anneal
}  // namespace qmqo
