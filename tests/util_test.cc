// Unit tests for src/util: Status/Result, Rng, SummaryStats, string and
// table helpers.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace qmqo {
namespace {

// --------------------------------------------------------------------
// Status / Result
// --------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllNamedConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Timeout("x").code(), StatusCode::kTimeout);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Status FailingHelper() { return Status::Internal("inner"); }

Status UsesReturnIfError() {
  QMQO_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kInternal);
}

Result<int> ProducesValue() { return 10; }

Result<int> UsesAssignOrReturn() {
  QMQO_ASSIGN_OR_RETURN(int value, ProducesValue());
  return value * 2;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto result = UsesAssignOrReturn();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 20);
}

// --------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRealRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.5) ? 1 : 0;
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, GaussianMeanRoughlyCorrect) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkIsDecorrelatedAndDeterministic) {
  Rng parent1(99);
  Rng parent2(99);
  Rng child_a = parent1.Fork(1);
  Rng child_b = parent2.Fork(1);
  EXPECT_EQ(child_a.Next(), child_b.Next());
  Rng child_c = parent1.Fork(2);
  EXPECT_NE(child_a.Next(), child_c.Next());
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  std::vector<int> picks = rng.SampleWithoutReplacement(100, 30);
  std::set<int> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int p : picks) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementAllWhenCountExceedsN) {
  Rng rng(37);
  std::vector<int> picks = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(picks.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------------
// SummaryStats
// --------------------------------------------------------------------

TEST(StatsTest, BasicMoments) {
  SummaryStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_NEAR(stats.Stddev(), 1.29099, 1e-4);
}

TEST(StatsTest, MedianEvenAndOdd) {
  SummaryStats even;
  for (double v : {4.0, 1.0, 3.0, 2.0}) even.Add(v);
  EXPECT_DOUBLE_EQ(even.Median(), 2.5);
  SummaryStats odd;
  for (double v : {5.0, 1.0, 3.0}) odd.Add(v);
  EXPECT_DOUBLE_EQ(odd.Median(), 3.0);
}

TEST(StatsTest, PercentileInterpolation) {
  SummaryStats stats;
  for (double v : {0.0, 10.0}) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0.25), 2.5);
}

TEST(StatsTest, SingleSampleStddevZero) {
  SummaryStats stats;
  stats.Add(7.0);
  EXPECT_DOUBLE_EQ(stats.Stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Median(), 7.0);
}

TEST(StatsTest, QueriesAfterInterleavedAdds) {
  SummaryStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.0);
  stats.Add(9.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 3.0);
}

// --------------------------------------------------------------------
// String utilities
// --------------------------------------------------------------------

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, JoinAndSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,c", ','), parts);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  std::vector<std::string> expected = {"", "x", "", ""};
  EXPECT_EQ(Split(",x,,", ','), expected);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("query 1 2", "query"));
  EXPECT_FALSE(StartsWith("que", "query"));
}

// --------------------------------------------------------------------
// TablePrinter
// --------------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("only,,"), std::string::npos);
}

TEST(TablePrinterTest, MarkdownShape) {
  TablePrinter table({"h1", "h2"});
  table.AddRow({"v1", "v2"});
  std::string md = table.ToMarkdown();
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| v1 | v2 |"), std::string::npos);
}

// --------------------------------------------------------------------
// Stopwatch
// --------------------------------------------------------------------

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch watch;
  int64_t first = watch.ElapsedMicros();
  int64_t second = watch.ElapsedMicros();
  EXPECT_GE(first, 0);
  EXPECT_GE(second, first);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  (void)sink;
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 100.0);
}

}  // namespace
}  // namespace qmqo
