// Tests for the logical mapping (the paper's Section 4): weight derivation,
// the worked Example 1, Theorem 1 (QUBO optimum == MQO optimum) verified
// exhaustively on random instances, and the inverse/repair mappings.

#include <gtest/gtest.h>

#include "mapping/logical_mapping.h"
#include "mqo/brute_force.h"
#include "mqo/generator.h"
#include "qubo/brute_force.h"
#include "util/rng.h"

namespace qmqo {
namespace mapping {
namespace {

using mqo::MqoProblem;
using mqo::MqoSolution;

MqoProblem PaperExample() {
  MqoProblem problem;
  problem.AddQuery({2.0, 4.0});
  problem.AddQuery({3.0, 1.0});
  EXPECT_TRUE(problem.AddSaving(1, 2, 5.0).ok());
  return problem;
}

TEST(LogicalMappingTest, WeightsFollowPaperFormulas) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  // w_L = max cost + eps = 4.25; w_M = w_L + max accumulated saving + eps.
  EXPECT_DOUBLE_EQ(mapping->wl(), 4.25);
  EXPECT_DOUBLE_EQ(mapping->wm(), 4.25 + 5.0 + 0.25);
}

TEST(LogicalMappingTest, EnergyTermsOfPaperExample) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  const qubo::QuboProblem& qubo = mapping->qubo();
  EXPECT_EQ(qubo.num_vars(), 4);
  // Linear terms: c_p - w_L.
  EXPECT_DOUBLE_EQ(qubo.linear(0), 2.0 - mapping->wl());
  EXPECT_DOUBLE_EQ(qubo.linear(1), 4.0 - mapping->wl());
  // Intra-query penalties carry w_M.
  EXPECT_DOUBLE_EQ(qubo.quadratic(0, 1), mapping->wm());
  EXPECT_DOUBLE_EQ(qubo.quadratic(2, 3), mapping->wm());
  // The saving appears negated.
  EXPECT_DOUBLE_EQ(qubo.quadratic(1, 2), -5.0);
  // No spurious couplings.
  EXPECT_DOUBLE_EQ(qubo.quadratic(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(qubo.quadratic(0, 3), 0.0);
}

TEST(LogicalMappingTest, PaperExampleOptimum) {
  // The paper states X = (0, 1, 1, 0) minimizes the energy formula.
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  auto ground = qubo::SolveExhaustive(mapping->qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<uint8_t> expected = {0, 1, 1, 0};
  EXPECT_EQ(ground->assignment, expected);
}

TEST(LogicalMappingTest, ValidAssignmentEnergyEqualsCostPlusOffset) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  MqoSolution solution(2);
  solution.Select(0, 0);
  solution.Select(1, 3);
  std::vector<uint8_t> x = mapping->FromMqoSolution(solution);
  EXPECT_NEAR(mapping->qubo().Energy(x),
              mqo::EvaluateCost(problem, solution) + mapping->constant_offset(),
              1e-9);
}

TEST(LogicalMappingTest, RejectsNonPositiveEpsilon) {
  MqoProblem problem = PaperExample();
  LogicalMappingOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(LogicalMapping::Create(problem, options).ok());
}

TEST(LogicalMappingTest, RejectsInvalidProblem) {
  MqoProblem empty;
  EXPECT_FALSE(LogicalMapping::Create(empty).ok());
}

TEST(LogicalMappingTest, IsValidAssignment) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(mapping->IsValidAssignment({1, 0, 0, 1}));
  EXPECT_FALSE(mapping->IsValidAssignment({1, 1, 0, 1}));  // two for query 0
  EXPECT_FALSE(mapping->IsValidAssignment({1, 0, 0, 0}));  // none for query 1
  EXPECT_FALSE(mapping->IsValidAssignment({1, 0, 0}));     // wrong size
}

TEST(LogicalMappingTest, ToMqoSolutionStrict) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  auto solution = mapping->ToMqoSolution({0, 1, 1, 0});
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->selected(0), 1);
  EXPECT_EQ(solution->selected(1), 2);
  EXPECT_FALSE(mapping->ToMqoSolution({1, 1, 1, 0}).ok());
  EXPECT_FALSE(mapping->ToMqoSolution({0, 0, 1, 0}).ok());
}

TEST(LogicalMappingTest, RepairKeepsValidAssignments) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  MqoSolution repaired = mapping->RepairedSolution({0, 1, 1, 0});
  EXPECT_EQ(repaired.selected(0), 1);
  EXPECT_EQ(repaired.selected(1), 2);
}

TEST(LogicalMappingTest, RepairResolvesOverfullQuery) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  // Query 0 selects both plans; plan 1 shares 5 with selected plan 2, so
  // its marginal cost 4 - 5 = -1 beats plan 0's cost 2.
  MqoSolution repaired = mapping->RepairedSolution({1, 1, 1, 0});
  EXPECT_EQ(repaired.selected(0), 1);
  EXPECT_EQ(repaired.selected(1), 2);
  EXPECT_TRUE(mqo::ValidateSolution(problem, repaired).ok());
}

TEST(LogicalMappingTest, RepairFillsEmptyQuery) {
  MqoProblem problem = PaperExample();
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  MqoSolution repaired = mapping->RepairedSolution({0, 0, 0, 0});
  EXPECT_TRUE(mqo::ValidateSolution(problem, repaired).ok());
}

// --------------------------------------------------------------------
// Theorem 1, verified exhaustively: the QUBO ground state is a valid
// assignment whose decoded solution has minimal MQO cost, and the ground
// energy equals that cost plus the constant offset.
// --------------------------------------------------------------------

struct TheoremCase {
  int seed;
  int num_queries;
  int max_plans;
  double sharing;
};

class TheoremOneProperty : public ::testing::TestWithParam<TheoremCase> {};

TEST_P(TheoremOneProperty, QuboGroundStateEncodesMqoOptimum) {
  const TheoremCase& param = GetParam();
  Rng rng(static_cast<uint64_t>(param.seed));
  mqo::RandomWorkloadOptions options;
  options.num_queries = param.num_queries;
  options.min_plans = 1;
  options.max_plans = param.max_plans;
  options.sharing_probability = param.sharing;
  // Large savings relative to costs stress Lemma 1 (multiple selections
  // must still be suboptimal).
  options.saving_min = 1.0;
  options.saving_max = 60.0;
  MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);

  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  ASSERT_LE(mapping->qubo().num_vars(), 20);

  auto ground = qubo::SolveExhaustive(mapping->qubo());
  ASSERT_TRUE(ground.ok());
  auto exact = mqo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());

  // Lemmas 1 + 2: the ground state is a valid assignment.
  EXPECT_TRUE(mapping->IsValidAssignment(ground->assignment));
  // Theorem 1: decoded cost equals the true optimum...
  auto decoded = mapping->ToMqoSolution(ground->assignment);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(mqo::EvaluateCost(problem, *decoded), exact->cost, 1e-9);
  // ...and the energy is that cost shifted by the constant offset.
  EXPECT_NEAR(ground->energy, exact->cost + mapping->constant_offset(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, TheoremOneProperty,
    ::testing::Values(
        TheoremCase{1, 3, 2, 0.3}, TheoremCase{2, 3, 3, 0.5},
        TheoremCase{3, 4, 2, 0.4}, TheoremCase{4, 4, 3, 0.6},
        TheoremCase{5, 5, 2, 0.2}, TheoremCase{6, 5, 3, 0.8},
        TheoremCase{7, 6, 2, 0.5}, TheoremCase{8, 6, 3, 0.3},
        TheoremCase{9, 7, 2, 0.6}, TheoremCase{10, 8, 2, 0.4},
        TheoremCase{11, 4, 4, 0.7}, TheoremCase{12, 5, 4, 0.5},
        TheoremCase{13, 9, 2, 0.3}, TheoremCase{14, 10, 2, 0.2},
        TheoremCase{15, 6, 3, 1.0}, TheoremCase{16, 3, 5, 0.9}));

// Lemma-level checks: perturbing the optimal valid assignment to an
// invalid one must increase the energy.
class LemmaProperty : public ::testing::TestWithParam<int> {};

TEST_P(LemmaProperty, InvalidPerturbationsIncreaseEnergy) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 900);
  mqo::RandomWorkloadOptions options;
  options.num_queries = rng.UniformInt(2, 5);
  options.min_plans = 2;
  options.max_plans = 3;
  options.sharing_probability = 0.6;
  options.saving_max = 80.0;  // savings can dwarf costs
  MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);
  auto mapping = LogicalMapping::Create(problem);
  ASSERT_TRUE(mapping.ok());
  auto ground = qubo::SolveExhaustive(mapping->qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<uint8_t> x = ground->assignment;

  // Lemma 1: additionally selecting any unselected plan raises energy.
  // Lemma 2: dropping any selected plan raises energy.
  for (int p = 0; p < mapping->qubo().num_vars(); ++p) {
    std::vector<uint8_t> mutated = x;
    mutated[static_cast<size_t>(p)] ^= 1;
    EXPECT_GT(mapping->qubo().Energy(mutated), ground->energy - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace mapping
}  // namespace qmqo
