// Tests for the LP model, simplex solver, MIP branch-and-bound, and the
// ILP formulations (LIN-MQO / LIN-QUB).

#include <gtest/gtest.h>

#include "mqo/brute_force.h"
#include "mqo/generator.h"
#include "qubo/brute_force.h"
#include "solver/linearize.h"
#include "solver/lp.h"
#include "solver/mip.h"
#include "solver/simplex.h"
#include "util/rng.h"

namespace qmqo {
namespace solver {
namespace {

// --------------------------------------------------------------------
// LpModel
// --------------------------------------------------------------------

TEST(LpModelTest, BuildAndValidate) {
  LpModel model;
  int x = model.AddVariable(0.0, 1.0, 2.0);
  int y = model.AddVariable(0.0, kInfinity, -1.0);
  model.AddConstraint(
      {{{x, 1.0}, {y, 1.0}}, ConstraintSense::kLessEqual, 5.0});
  model.MarkInteger(x);
  EXPECT_EQ(model.num_vars(), 2);
  EXPECT_EQ(model.num_constraints(), 1);
  EXPECT_TRUE(model.is_integer(x));
  EXPECT_FALSE(model.is_integer(y));
  EXPECT_TRUE(model.Validate().ok());
  EXPECT_EQ(model.IntegerVars(), std::vector<int>{x});
}

TEST(LpModelTest, ValidateRejectsEmptyDomainAndBadIndex) {
  LpModel model;
  int x = model.AddVariable(2.0, 1.0, 0.0);
  (void)x;
  EXPECT_FALSE(model.Validate().ok());
  LpModel model2;
  model2.AddVariable(0.0, 1.0, 0.0);
  model2.AddConstraint({{{5, 1.0}}, ConstraintSense::kEqual, 1.0});
  EXPECT_FALSE(model2.Validate().ok());
}

// --------------------------------------------------------------------
// Simplex on textbook LPs
// --------------------------------------------------------------------

TEST(SimplexTest, SimpleMaximizationAsMinimization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig).
  // Optimal: x = 2, y = 6, objective 36 -> minimize the negation.
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, -3.0);
  int y = model.AddVariable(0.0, kInfinity, -5.0);
  model.AddConstraint({{{x, 1.0}}, ConstraintSense::kLessEqual, 4.0});
  model.AddConstraint({{{y, 2.0}}, ConstraintSense::kLessEqual, 12.0});
  model.AddConstraint(
      {{{x, 3.0}, {y, 2.0}}, ConstraintSense::kLessEqual, 18.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -36.0, 1e-6);
  EXPECT_NEAR(solution.values[static_cast<size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(solution.values[static_cast<size_t>(y)], 6.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x - y = 1  ->  x = 2, y = 1, objective 4.
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, 1.0);
  int y = model.AddVariable(0.0, kInfinity, 2.0);
  model.AddConstraint({{{x, 1.0}, {y, 1.0}}, ConstraintSense::kEqual, 3.0});
  model.AddConstraint({{{x, 1.0}, {y, -1.0}}, ConstraintSense::kEqual, 1.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 4.0, 1e-6);
  EXPECT_NEAR(solution.values[static_cast<size_t>(x)], 2.0, 1e-6);
  EXPECT_NEAR(solution.values[static_cast<size_t>(y)], 1.0, 1e-6);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  x = 4, y = 0? No:
  // cost favors x (2 < 3), so x = 4, y = 0, objective 8.
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, 2.0);
  int y = model.AddVariable(0.0, kInfinity, 3.0);
  model.AddConstraint(
      {{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 4.0});
  model.AddConstraint({{{x, 1.0}}, ConstraintSense::kGreaterEqual, 1.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 8.0, 1e-6);
}

TEST(SimplexTest, DetectsInfeasibility) {
  LpModel model;
  int x = model.AddVariable(0.0, 1.0, 1.0);
  model.AddConstraint({{{x, 1.0}}, ConstraintSense::kGreaterEqual, 2.0});
  LpSolution solution = SimplexSolver().Solve(model);
  EXPECT_EQ(solution.status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, -1.0);  // minimize -x, x free up
  model.AddConstraint({{{x, -1.0}}, ConstraintSense::kLessEqual, 0.0});
  LpSolution solution = SimplexSolver().Solve(model);
  EXPECT_EQ(solution.status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RespectsVariableUpperBounds) {
  LpModel model;
  int x = model.AddVariable(0.0, 2.5, -1.0);  // min -x, x <= 2.5
  (void)x;
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -2.5, 1e-6);
}

TEST(SimplexTest, ShiftsNonZeroLowerBounds) {
  // min x + y with x in [2, 5], y in [3, 10], x + y >= 7.
  LpModel model;
  int x = model.AddVariable(2.0, 5.0, 1.0);
  int y = model.AddVariable(3.0, 10.0, 1.0);
  model.AddConstraint(
      {{{x, 1.0}, {y, 1.0}}, ConstraintSense::kGreaterEqual, 7.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 7.0, 1e-6);
  EXPECT_GE(solution.values[static_cast<size_t>(x)], 2.0 - 1e-9);
  EXPECT_GE(solution.values[static_cast<size_t>(y)], 3.0 - 1e-9);
}

TEST(SimplexTest, NegativeRhsNormalization) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, 1.0);
  model.AddConstraint({{{x, -1.0}}, ConstraintSense::kLessEqual, -3.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-6);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, -1.0);
  int y = model.AddVariable(0.0, kInfinity, -1.0);
  model.AddConstraint({{{x, 1.0}, {y, 1.0}}, ConstraintSense::kLessEqual, 1.0});
  model.AddConstraint({{{x, 2.0}, {y, 2.0}}, ConstraintSense::kLessEqual, 2.0});
  model.AddConstraint({{{x, 1.0}}, ConstraintSense::kLessEqual, 1.0});
  model.AddConstraint({{{y, 1.0}}, ConstraintSense::kLessEqual, 1.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.objective, -1.0, 1e-6);
}

TEST(SimplexTest, RepeatedTermsAccumulate) {
  // x appears twice in the row: effectively 2x <= 4.
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, -1.0);
  model.AddConstraint(
      {{{x, 1.0}, {x, 1.0}}, ConstraintSense::kLessEqual, 4.0});
  LpSolution solution = SimplexSolver().Solve(model);
  ASSERT_EQ(solution.status, LpStatus::kOptimal);
  EXPECT_NEAR(solution.values[static_cast<size_t>(x)], 2.0, 1e-6);
}

// --------------------------------------------------------------------
// MIP branch and bound
// --------------------------------------------------------------------

TEST(MipTest, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c, weight 3a + 4b + 2c <= 6, binary.
  // Best: a + c (17) vs b + c (20) -> b + c = 20.
  LpModel model;
  int a = model.AddVariable(0.0, 1.0, -10.0);
  int b = model.AddVariable(0.0, 1.0, -13.0);
  int c = model.AddVariable(0.0, 1.0, -7.0);
  model.AddConstraint(
      {{{a, 3.0}, {b, 4.0}, {c, 2.0}}, ConstraintSense::kLessEqual, 6.0});
  model.MarkInteger(a);
  model.MarkInteger(b);
  model.MarkInteger(c);
  MipResult result = MipSolver().Solve(&model);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, -20.0, 1e-6);
  EXPECT_NEAR(result.values[static_cast<size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(result.values[static_cast<size_t>(c)], 1.0, 1e-6);
}

TEST(MipTest, IntegralityForcesWorseObjective) {
  // LP relaxation would take x = 1.5; integrality forces x <= 1.
  LpModel model;
  int x = model.AddVariable(0.0, kInfinity, -1.0);
  model.AddConstraint({{{x, 2.0}}, ConstraintSense::kLessEqual, 3.0});
  model.MarkInteger(x);
  MipResult result = MipSolver().Solve(&model);
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.objective, -1.0, 1e-6);
}

TEST(MipTest, InfeasibleIntegerProblem) {
  // 2x = 1 has no integer solution with x binary.
  LpModel model;
  int x = model.AddVariable(0.0, 1.0, 1.0);
  model.AddConstraint({{{x, 2.0}}, ConstraintSense::kEqual, 1.0});
  model.MarkInteger(x);
  MipResult result = MipSolver().Solve(&model);
  EXPECT_FALSE(result.feasible);
}

TEST(MipTest, RestoresModelBounds) {
  LpModel model;
  int x = model.AddVariable(0.0, 1.0, -1.0);
  int y = model.AddVariable(0.0, 1.0, -1.0);
  model.AddConstraint(
      {{{x, 1.0}, {y, 1.0}}, ConstraintSense::kLessEqual, 1.0});
  model.MarkInteger(x);
  model.MarkInteger(y);
  MipSolver().Solve(&model);
  EXPECT_DOUBLE_EQ(model.lower(x), 0.0);
  EXPECT_DOUBLE_EQ(model.upper(x), 1.0);
  EXPECT_DOUBLE_EQ(model.lower(y), 0.0);
  EXPECT_DOUBLE_EQ(model.upper(y), 1.0);
}

TEST(MipTest, IncumbentCallbackFires) {
  LpModel model;
  int x = model.AddVariable(0.0, 1.0, -5.0);
  model.MarkInteger(x);
  int callbacks = 0;
  MipResult result = MipSolver().Solve(
      &model, [&](double, double, const std::vector<double>&) { ++callbacks; });
  EXPECT_TRUE(result.feasible);
  EXPECT_GE(callbacks, 1);
}

// --------------------------------------------------------------------
// LIN-MQO / LIN-QUB formulations: solved with the MIP solver, they must
// match exhaustive enumeration.
// --------------------------------------------------------------------

class MqoIlpProperty : public ::testing::TestWithParam<int> {};

TEST_P(MqoIlpProperty, IlpOptimumEqualsExhaustiveOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 60);
  mqo::RandomWorkloadOptions options;
  options.num_queries = rng.UniformInt(2, 5);
  options.min_plans = 1;
  options.max_plans = 3;
  options.sharing_probability = 0.5;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);
  auto exact = mqo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());

  MqoIlp ilp = MqoToIlp(problem);
  MipResult result = MipSolver().Solve(&ilp.model);
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, exact->cost, 1e-6);
  mqo::MqoSolution decoded = IlpValuesToSolution(problem, result.values);
  EXPECT_TRUE(mqo::ValidateSolution(problem, decoded).ok());
  EXPECT_NEAR(mqo::EvaluateCost(problem, decoded), exact->cost, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqoIlpProperty, ::testing::Range(0, 8));

class QuboIlpProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuboIlpProperty, IlpOptimumEqualsExhaustiveOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 160);
  int n = rng.UniformInt(2, 8);
  qubo::QuboProblem problem(n);
  for (int i = 0; i < n; ++i) {
    problem.AddLinear(i, rng.UniformReal(-5.0, 5.0));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.5)) {
        problem.AddQuadratic(i, j, rng.UniformReal(-5.0, 5.0));
      }
    }
  }
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());

  QuboIlp ilp = QuboToIlp(problem);
  MipResult result = MipSolver().Solve(&ilp.model);
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.proven_optimal);
  EXPECT_NEAR(result.objective, exact->energy, 1e-6);
  std::vector<uint8_t> assignment =
      IlpValuesToAssignment(ilp.num_qubo_vars, result.values);
  EXPECT_NEAR(problem.Energy(assignment), exact->energy, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboIlpProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace solver
}  // namespace qmqo
