// Tests for the experiment harness: trajectories, the paper workload
// generator, ASCII plots, and experiment aggregation helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "harness/ascii_plot.h"
#include "util/executor.h"
#include "harness/experiment.h"
#include "harness/paper_workload.h"
#include "harness/trajectory.h"
#include "mqo/serialization.h"
#include "mapping/logical_mapping.h"
#include "util/rng.h"

namespace qmqo {
namespace harness {
namespace {

// --------------------------------------------------------------------
// Trajectory
// --------------------------------------------------------------------

TEST(TrajectoryTest, KeepsOnlyImprovements) {
  Trajectory trajectory;
  trajectory.Record(1.0, 10.0);
  trajectory.Record(2.0, 12.0);  // worse: dropped
  trajectory.Record(3.0, 8.0);
  ASSERT_EQ(trajectory.points().size(), 2u);
  EXPECT_DOUBLE_EQ(trajectory.FinalCost(), 8.0);
}

TEST(TrajectoryTest, CostAtStaircaseSemantics) {
  Trajectory trajectory;
  trajectory.Record(1.0, 10.0);
  trajectory.Record(100.0, 5.0);
  EXPECT_TRUE(std::isinf(trajectory.CostAt(0.5)));
  EXPECT_DOUBLE_EQ(trajectory.CostAt(1.0), 10.0);
  EXPECT_DOUBLE_EQ(trajectory.CostAt(50.0), 10.0);
  EXPECT_DOUBLE_EQ(trajectory.CostAt(100.0), 5.0);
  EXPECT_DOUBLE_EQ(trajectory.CostAt(1e9), 5.0);
}

TEST(TrajectoryTest, TimeToReach) {
  Trajectory trajectory;
  trajectory.Record(1.0, 10.0);
  trajectory.Record(100.0, 5.0);
  EXPECT_DOUBLE_EQ(trajectory.TimeToReach(10.0), 1.0);
  EXPECT_DOUBLE_EQ(trajectory.TimeToReach(7.0), 100.0);
  EXPECT_TRUE(std::isinf(trajectory.TimeToReach(4.9)));
}

TEST(TrajectoryTest, ClockJitterIsClamped) {
  Trajectory trajectory;
  trajectory.Record(5.0, 10.0);
  trajectory.Record(4.0, 9.0);  // time went backwards: clamped to 5.0
  EXPECT_DOUBLE_EQ(trajectory.points().back().time_ms, 5.0);
}

TEST(TrajectoryTest, PaperMilestones) {
  auto milestones = Trajectory::PaperMilestonesMs();
  ASSERT_EQ(milestones.size(), 6u);
  EXPECT_DOUBLE_EQ(milestones.front(), 1.0);
  EXPECT_DOUBLE_EQ(milestones.back(), 100000.0);
}

// --------------------------------------------------------------------
// Paper workload
// --------------------------------------------------------------------

class PaperWorkloadPlans : public ::testing::TestWithParam<int> {};

TEST_P(PaperWorkloadPlans, GeneratesEmbeddableInstances) {
  int l = GetParam();
  Rng defects(1);
  chimera::ChimeraGraph graph(4, 4, 4);  // small chip for test speed
  graph.BreakRandom(6, &defects);
  PaperWorkloadOptions options;
  options.plans_per_query = l;
  Rng rng(static_cast<uint64_t>(l));
  auto instance = GeneratePaperInstance(graph, options, &rng);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_GT(instance->num_queries, 0);
  EXPECT_EQ(instance->problem.num_queries(), instance->num_queries);
  EXPECT_EQ(instance->problem.num_plans(), instance->num_queries * l);
  EXPECT_TRUE(instance->problem.Validate().ok());

  // The pre-computed embedding must support the *mapped* problem: every
  // E_M and E_S interaction needs a coupler.
  auto mapping = mapping::LogicalMapping::Create(instance->problem);
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(
      instance->embedding.VerifyForProblem(graph, mapping->qubo()).ok());

  // Savings follow the paper's {1,2} x scale distribution.
  for (const mqo::Saving& s : instance->problem.savings()) {
    EXPECT_TRUE(s.value == options.saving_scale ||
                s.value == 2.0 * options.saving_scale)
        << s.value;
  }
}

INSTANTIATE_TEST_SUITE_P(PlansPerQuery, PaperWorkloadPlans,
                         ::testing::Values(2, 3, 4, 5));

TEST(PaperWorkloadTest, RespectsExplicitQueryCount) {
  chimera::ChimeraGraph graph(4, 4, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 2;
  options.num_queries = 10;
  Rng rng(3);
  auto instance = GeneratePaperInstance(graph, options, &rng);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_queries, 10);
}

TEST(PaperWorkloadTest, FailsBeyondCapacity) {
  chimera::ChimeraGraph graph(1, 1, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 2;
  options.num_queries = 100;
  Rng rng(4);
  EXPECT_EQ(GeneratePaperInstance(graph, options, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PaperWorkloadTest, RejectsSinglePlanQueries) {
  chimera::ChimeraGraph graph(2, 2, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 1;
  Rng rng(5);
  EXPECT_FALSE(GeneratePaperInstance(graph, options, &rng).ok());
}

TEST(PaperWorkloadTest, DeterministicInSeed) {
  chimera::ChimeraGraph graph(3, 3, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 3;
  Rng rng1(6);
  Rng rng2(6);
  auto a = GeneratePaperInstance(graph, options, &rng1);
  auto b = GeneratePaperInstance(graph, options, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(mqo::ToText(a->problem), mqo::ToText(b->problem));
}

TEST(PaperWorkloadTest, SavingProbabilityThinsSharing) {
  chimera::ChimeraGraph graph(4, 4, 4);
  PaperWorkloadOptions dense;
  dense.plans_per_query = 2;
  PaperWorkloadOptions sparse = dense;
  sparse.saving_probability = 0.2;
  Rng rng1(7);
  Rng rng2(7);
  auto a = GeneratePaperInstance(graph, dense, &rng1);
  auto b = GeneratePaperInstance(graph, sparse, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->problem.num_savings(), b->problem.num_savings());
}

// --------------------------------------------------------------------
// ASCII plot
// --------------------------------------------------------------------

TEST(AsciiPlotTest, RendersSeriesAndLegend) {
  Trajectory fast;
  fast.Record(0.5, 100.0);
  fast.Record(1.0, 20.0);
  Trajectory slow;
  slow.Record(100.0, 90.0);
  slow.Record(10000.0, 25.0);
  PlotOptions options;
  options.min_time_ms = 0.1;
  options.max_time_ms = 100000.0;
  std::string art = RenderCostVsTime(
      {{"QA", &fast}, {"LIN-MQO", &slow}}, options);
  EXPECT_NE(art.find("Q=QA"), std::string::npos);
  EXPECT_NE(art.find("M=LIN-MQO"), std::string::npos);
  EXPECT_NE(art.find('Q'), std::string::npos);
  EXPECT_NE(art.find("time (log)"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyTrajectoriesRenderWithoutCrashing) {
  Trajectory empty;
  PlotOptions options;
  std::string art = RenderCostVsTime({{"X", &empty}}, options);
  EXPECT_FALSE(art.empty());
}

// --------------------------------------------------------------------
// Experiment aggregation
// --------------------------------------------------------------------

TEST(ExperimentTest, SpeedupDefinition) {
  InstanceRun run;
  run.qa_first_read_cost = 50.0;
  run.qa_read_ms = 0.376;
  AlgorithmSeries qa;
  qa.name = "QA";
  qa.device_time_axis = true;
  qa.trajectory.Record(0.376, 50.0);
  run.series.push_back(qa);
  AlgorithmSeries classical;
  classical.name = "LIN-MQO";
  classical.trajectory.Record(10.0, 80.0);
  classical.trajectory.Record(376.0, 50.0);  // matches QA at 376 ms
  run.series.push_back(classical);
  EXPECT_NEAR(QuantumSpeedup(run), 1000.0, 1e-6);
}

TEST(ExperimentTest, SpeedupInfiniteWhenUnmatched) {
  InstanceRun run;
  run.qa_first_read_cost = 10.0;
  run.qa_read_ms = 0.376;
  AlgorithmSeries classical;
  classical.name = "CLIMB";
  classical.trajectory.Record(5.0, 50.0);  // never reaches 10.0
  run.series.push_back(classical);
  EXPECT_TRUE(std::isinf(QuantumSpeedup(run)));
}

TEST(ExperimentTest, QubitsPerVariableAverages) {
  ClassResult result;
  InstanceRun a;
  a.physical_qubits = 100;
  a.logical_vars = 100;
  InstanceRun b;
  b.physical_qubits = 300;
  b.logical_vars = 150;
  result.instances = {a, b};
  EXPECT_DOUBLE_EQ(QubitsPerVariable(result), 1.5);
}

// Compares the machine-independent content of two class results exactly
// (bit-identical doubles). Wall-clock fields (preprocessing_ms,
// lin_mqo_proof_ms, classical trajectory timestamps) are excluded — they
// differ even between two serial runs. Everything else, including the QA
// trajectory's modeled-device-time axis and every recorded cost of every
// series, must match bit for bit.
void ExpectClassResultsIdentical(const ClassResult& a, const ClassResult& b) {
  EXPECT_EQ(a.actual_num_queries, b.actual_num_queries);
  ASSERT_EQ(a.instances.size(), b.instances.size());
  for (size_t i = 0; i < a.instances.size(); ++i) {
    const InstanceRun& run_a = a.instances[i];
    const InstanceRun& run_b = b.instances[i];
    EXPECT_EQ(run_a.qa_first_read_cost, run_b.qa_first_read_cost);
    EXPECT_EQ(run_a.qa_final_cost, run_b.qa_final_cost);
    EXPECT_EQ(run_a.best_known_cost, run_b.best_known_cost);
    EXPECT_EQ(run_a.optimum_proven, run_b.optimum_proven);
    EXPECT_EQ(run_a.scale_base, run_b.scale_base);
    EXPECT_EQ(run_a.qa_read_ms, run_b.qa_read_ms);
    EXPECT_EQ(run_a.physical_qubits, run_b.physical_qubits);
    EXPECT_EQ(run_a.logical_vars, run_b.logical_vars);
    ASSERT_EQ(run_a.series.size(), run_b.series.size());
    for (size_t s = 0; s < run_a.series.size(); ++s) {
      const AlgorithmSeries& series_a = run_a.series[s];
      const AlgorithmSeries& series_b = run_b.series[s];
      EXPECT_EQ(series_a.name, series_b.name);
      EXPECT_EQ(series_a.device_time_axis, series_b.device_time_axis);
      ASSERT_EQ(series_a.trajectory.points().size(),
                series_b.trajectory.points().size())
          << series_a.name;
      for (size_t p = 0; p < series_a.trajectory.points().size(); ++p) {
        EXPECT_EQ(series_a.trajectory.points()[p].cost,
                  series_b.trajectory.points()[p].cost)
            << series_a.name;
        if (series_a.device_time_axis) {
          // Modeled device time, not wall clock: exactly reproducible.
          EXPECT_EQ(series_a.trajectory.points()[p].time_ms,
                    series_b.trajectory.points()[p].time_ms);
        }
      }
    }
  }
}

TEST(ExperimentTest, ClassResultBitIdenticalAtAnyThreadCount) {
  chimera::ChimeraGraph graph(3, 3, 4);
  ExperimentConfig config;
  config.workload.plans_per_query = 2;
  config.workload.num_queries = 8;
  config.num_instances = 5;
  // Deterministic caps instead of wall-clock budgets: baselines stop after
  // a fixed iteration count and the exact solvers after a fixed node
  // count, so recorded costs do not depend on machine speed or scheduling.
  config.classical_time_limit_ms = 1e9;
  config.classical_max_iterations = 25;
  config.classical_max_nodes = 200000;
  config.ga_populations = {10};
  config.quantum.device.num_reads = 40;
  config.quantum.device.num_gauges = 4;
  config.quantum.device.sa_sweeps = 16;
  // Nested parallelism on the shared pool: reads inside each instance.
  config.quantum.device.num_threads = 2;

  config.num_threads = 1;
  auto serial = RunExperimentClass(config, graph);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (int threads : {2, 4}) {
    config.num_threads = threads;
    auto parallel = RunExperimentClass(config, graph);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ExpectClassResultsIdentical(*serial, *parallel);
  }
}

TEST(ExperimentTest, InstanceFanOutSpawnsNoThreadsPerClass) {
  chimera::ChimeraGraph graph(3, 3, 4);
  ExperimentConfig config;
  config.workload.plans_per_query = 2;
  config.workload.num_queries = 6;
  config.num_instances = 3;
  config.classical_time_limit_ms = 1e9;
  config.classical_max_iterations = 5;
  config.classical_max_nodes = 50000;
  config.ga_populations = {10};
  config.quantum.device.num_reads = 20;
  config.quantum.device.num_gauges = 2;
  config.quantum.device.sa_sweeps = 8;
  config.num_threads = 2;
  util::Executor executor(2);
  config.executor = &executor;
  auto first = RunExperimentClass(config, graph);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const int64_t spawned = util::Executor::TotalWorkersSpawned();
  auto second = RunExperimentClass(config, graph);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(util::Executor::TotalWorkersSpawned(), spawned);
  ExpectClassResultsIdentical(*first, *second);
}

TEST(ExperimentTest, EndToEndTinyClass) {
  // A miniature version of the paper's experiment on a 3x3 chip: checks
  // that all series are produced and QA trajectories are non-empty.
  chimera::ChimeraGraph graph(3, 3, 4);
  ExperimentConfig config;
  config.workload.plans_per_query = 2;
  config.workload.num_queries = 8;
  config.num_instances = 2;
  config.classical_time_limit_ms = 30.0;
  config.ga_populations = {10};
  config.quantum.device.num_reads = 50;
  config.quantum.device.num_gauges = 5;
  config.quantum.device.sa_sweeps = 16;
  auto result = RunExperimentClass(config, graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->instances.size(), 2u);
  for (const InstanceRun& run : result->instances) {
    // QA, LIN-MQO, LIN-QUB, CLIMB, GA(10).
    ASSERT_EQ(run.series.size(), 5u);
    for (const AlgorithmSeries& series : run.series) {
      EXPECT_FALSE(series.trajectory.empty()) << series.name;
    }
    EXPECT_GT(run.scale_base, 0.0);
  }
}

}  // namespace
}  // namespace harness
}  // namespace qmqo
