// Tests for the experiment harness: trajectories, the paper workload
// generator, ASCII plots, and experiment aggregation helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "harness/ascii_plot.h"
#include "harness/experiment.h"
#include "harness/paper_workload.h"
#include "harness/trajectory.h"
#include "mqo/serialization.h"
#include "mapping/logical_mapping.h"
#include "util/rng.h"

namespace qmqo {
namespace harness {
namespace {

// --------------------------------------------------------------------
// Trajectory
// --------------------------------------------------------------------

TEST(TrajectoryTest, KeepsOnlyImprovements) {
  Trajectory trajectory;
  trajectory.Record(1.0, 10.0);
  trajectory.Record(2.0, 12.0);  // worse: dropped
  trajectory.Record(3.0, 8.0);
  ASSERT_EQ(trajectory.points().size(), 2u);
  EXPECT_DOUBLE_EQ(trajectory.FinalCost(), 8.0);
}

TEST(TrajectoryTest, CostAtStaircaseSemantics) {
  Trajectory trajectory;
  trajectory.Record(1.0, 10.0);
  trajectory.Record(100.0, 5.0);
  EXPECT_TRUE(std::isinf(trajectory.CostAt(0.5)));
  EXPECT_DOUBLE_EQ(trajectory.CostAt(1.0), 10.0);
  EXPECT_DOUBLE_EQ(trajectory.CostAt(50.0), 10.0);
  EXPECT_DOUBLE_EQ(trajectory.CostAt(100.0), 5.0);
  EXPECT_DOUBLE_EQ(trajectory.CostAt(1e9), 5.0);
}

TEST(TrajectoryTest, TimeToReach) {
  Trajectory trajectory;
  trajectory.Record(1.0, 10.0);
  trajectory.Record(100.0, 5.0);
  EXPECT_DOUBLE_EQ(trajectory.TimeToReach(10.0), 1.0);
  EXPECT_DOUBLE_EQ(trajectory.TimeToReach(7.0), 100.0);
  EXPECT_TRUE(std::isinf(trajectory.TimeToReach(4.9)));
}

TEST(TrajectoryTest, ClockJitterIsClamped) {
  Trajectory trajectory;
  trajectory.Record(5.0, 10.0);
  trajectory.Record(4.0, 9.0);  // time went backwards: clamped to 5.0
  EXPECT_DOUBLE_EQ(trajectory.points().back().time_ms, 5.0);
}

TEST(TrajectoryTest, PaperMilestones) {
  auto milestones = Trajectory::PaperMilestonesMs();
  ASSERT_EQ(milestones.size(), 6u);
  EXPECT_DOUBLE_EQ(milestones.front(), 1.0);
  EXPECT_DOUBLE_EQ(milestones.back(), 100000.0);
}

// --------------------------------------------------------------------
// Paper workload
// --------------------------------------------------------------------

class PaperWorkloadPlans : public ::testing::TestWithParam<int> {};

TEST_P(PaperWorkloadPlans, GeneratesEmbeddableInstances) {
  int l = GetParam();
  Rng defects(1);
  chimera::ChimeraGraph graph(4, 4, 4);  // small chip for test speed
  graph.BreakRandom(6, &defects);
  PaperWorkloadOptions options;
  options.plans_per_query = l;
  Rng rng(static_cast<uint64_t>(l));
  auto instance = GeneratePaperInstance(graph, options, &rng);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_GT(instance->num_queries, 0);
  EXPECT_EQ(instance->problem.num_queries(), instance->num_queries);
  EXPECT_EQ(instance->problem.num_plans(), instance->num_queries * l);
  EXPECT_TRUE(instance->problem.Validate().ok());

  // The pre-computed embedding must support the *mapped* problem: every
  // E_M and E_S interaction needs a coupler.
  auto mapping = mapping::LogicalMapping::Create(instance->problem);
  ASSERT_TRUE(mapping.ok());
  EXPECT_TRUE(
      instance->embedding.VerifyForProblem(graph, mapping->qubo()).ok());

  // Savings follow the paper's {1,2} x scale distribution.
  for (const mqo::Saving& s : instance->problem.savings()) {
    EXPECT_TRUE(s.value == options.saving_scale ||
                s.value == 2.0 * options.saving_scale)
        << s.value;
  }
}

INSTANTIATE_TEST_SUITE_P(PlansPerQuery, PaperWorkloadPlans,
                         ::testing::Values(2, 3, 4, 5));

TEST(PaperWorkloadTest, RespectsExplicitQueryCount) {
  chimera::ChimeraGraph graph(4, 4, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 2;
  options.num_queries = 10;
  Rng rng(3);
  auto instance = GeneratePaperInstance(graph, options, &rng);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_queries, 10);
}

TEST(PaperWorkloadTest, FailsBeyondCapacity) {
  chimera::ChimeraGraph graph(1, 1, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 2;
  options.num_queries = 100;
  Rng rng(4);
  EXPECT_EQ(GeneratePaperInstance(graph, options, &rng).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(PaperWorkloadTest, RejectsSinglePlanQueries) {
  chimera::ChimeraGraph graph(2, 2, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 1;
  Rng rng(5);
  EXPECT_FALSE(GeneratePaperInstance(graph, options, &rng).ok());
}

TEST(PaperWorkloadTest, DeterministicInSeed) {
  chimera::ChimeraGraph graph(3, 3, 4);
  PaperWorkloadOptions options;
  options.plans_per_query = 3;
  Rng rng1(6);
  Rng rng2(6);
  auto a = GeneratePaperInstance(graph, options, &rng1);
  auto b = GeneratePaperInstance(graph, options, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(mqo::ToText(a->problem), mqo::ToText(b->problem));
}

TEST(PaperWorkloadTest, SavingProbabilityThinsSharing) {
  chimera::ChimeraGraph graph(4, 4, 4);
  PaperWorkloadOptions dense;
  dense.plans_per_query = 2;
  PaperWorkloadOptions sparse = dense;
  sparse.saving_probability = 0.2;
  Rng rng1(7);
  Rng rng2(7);
  auto a = GeneratePaperInstance(graph, dense, &rng1);
  auto b = GeneratePaperInstance(graph, sparse, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->problem.num_savings(), b->problem.num_savings());
}

// --------------------------------------------------------------------
// ASCII plot
// --------------------------------------------------------------------

TEST(AsciiPlotTest, RendersSeriesAndLegend) {
  Trajectory fast;
  fast.Record(0.5, 100.0);
  fast.Record(1.0, 20.0);
  Trajectory slow;
  slow.Record(100.0, 90.0);
  slow.Record(10000.0, 25.0);
  PlotOptions options;
  options.min_time_ms = 0.1;
  options.max_time_ms = 100000.0;
  std::string art = RenderCostVsTime(
      {{"QA", &fast}, {"LIN-MQO", &slow}}, options);
  EXPECT_NE(art.find("Q=QA"), std::string::npos);
  EXPECT_NE(art.find("M=LIN-MQO"), std::string::npos);
  EXPECT_NE(art.find('Q'), std::string::npos);
  EXPECT_NE(art.find("time (log)"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyTrajectoriesRenderWithoutCrashing) {
  Trajectory empty;
  PlotOptions options;
  std::string art = RenderCostVsTime({{"X", &empty}}, options);
  EXPECT_FALSE(art.empty());
}

// --------------------------------------------------------------------
// Experiment aggregation
// --------------------------------------------------------------------

TEST(ExperimentTest, SpeedupDefinition) {
  InstanceRun run;
  run.qa_first_read_cost = 50.0;
  run.qa_read_ms = 0.376;
  AlgorithmSeries qa;
  qa.name = "QA";
  qa.device_time_axis = true;
  qa.trajectory.Record(0.376, 50.0);
  run.series.push_back(qa);
  AlgorithmSeries classical;
  classical.name = "LIN-MQO";
  classical.trajectory.Record(10.0, 80.0);
  classical.trajectory.Record(376.0, 50.0);  // matches QA at 376 ms
  run.series.push_back(classical);
  EXPECT_NEAR(QuantumSpeedup(run), 1000.0, 1e-6);
}

TEST(ExperimentTest, SpeedupInfiniteWhenUnmatched) {
  InstanceRun run;
  run.qa_first_read_cost = 10.0;
  run.qa_read_ms = 0.376;
  AlgorithmSeries classical;
  classical.name = "CLIMB";
  classical.trajectory.Record(5.0, 50.0);  // never reaches 10.0
  run.series.push_back(classical);
  EXPECT_TRUE(std::isinf(QuantumSpeedup(run)));
}

TEST(ExperimentTest, QubitsPerVariableAverages) {
  ClassResult result;
  InstanceRun a;
  a.physical_qubits = 100;
  a.logical_vars = 100;
  InstanceRun b;
  b.physical_qubits = 300;
  b.logical_vars = 150;
  result.instances = {a, b};
  EXPECT_DOUBLE_EQ(QubitsPerVariable(result), 1.5);
}

TEST(ExperimentTest, EndToEndTinyClass) {
  // A miniature version of the paper's experiment on a 3x3 chip: checks
  // that all series are produced and QA trajectories are non-empty.
  chimera::ChimeraGraph graph(3, 3, 4);
  ExperimentConfig config;
  config.workload.plans_per_query = 2;
  config.workload.num_queries = 8;
  config.num_instances = 2;
  config.classical_time_limit_ms = 30.0;
  config.ga_populations = {10};
  config.quantum.device.num_reads = 50;
  config.quantum.device.num_gauges = 5;
  config.quantum.device.sa_sweeps = 16;
  auto result = RunExperimentClass(config, graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->instances.size(), 2u);
  for (const InstanceRun& run : result->instances) {
    // QA, LIN-MQO, LIN-QUB, CLIMB, GA(10).
    ASSERT_EQ(run.series.size(), 5u);
    for (const AlgorithmSeries& series : run.series) {
      EXPECT_FALSE(series.trajectory.empty()) << series.name;
    }
    EXPECT_GT(run.scale_base, 0.0);
  }
}

}  // namespace
}  // namespace harness
}  // namespace qmqo
