// Tests for the Chimera topology model: addressing, coupler structure,
// degree bounds, defects, and rendering.

#include <gtest/gtest.h>

#include <set>

#include "chimera/render.h"
#include "chimera/topology.h"
#include "util/rng.h"

namespace qmqo {
namespace chimera {
namespace {

TEST(ChimeraTest, SizesOfDWave2X) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  EXPECT_EQ(graph.rows(), 12);
  EXPECT_EQ(graph.cols(), 12);
  EXPECT_EQ(graph.shore(), 4);
  EXPECT_EQ(graph.num_cells(), 144);
  EXPECT_EQ(graph.num_qubits(), 1152);
  EXPECT_EQ(graph.num_working_qubits(), 1152);
  EXPECT_EQ(graph.num_broken_qubits(), 0);
}

TEST(ChimeraTest, DefectProfileMatchesPaper) {
  Rng rng(1);
  ChimeraGraph graph = ChimeraGraph::DWave2XWithDefects(&rng);
  EXPECT_EQ(graph.num_broken_qubits(), 55);
  EXPECT_EQ(graph.num_working_qubits(), 1097);  // the paper's figure
}

TEST(ChimeraTest, IdCoordRoundTrip) {
  ChimeraGraph graph(3, 5, 4);
  for (QubitId q = 0; q < graph.num_qubits(); ++q) {
    QubitCoord coord = graph.CoordOf(q);
    EXPECT_EQ(graph.IdOf(coord), q);
    EXPECT_GE(coord.row, 0);
    EXPECT_LT(coord.row, 3);
    EXPECT_GE(coord.col, 0);
    EXPECT_LT(coord.col, 5);
    EXPECT_TRUE(coord.side == 0 || coord.side == 1);
    EXPECT_GE(coord.index, 0);
    EXPECT_LT(coord.index, 4);
  }
}

TEST(ChimeraTest, IntraCellCouplersFormBipartiteK44) {
  ChimeraGraph graph(1, 1, 4);
  // All left-right pairs coupled; no left-left or right-right.
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_TRUE(graph.HasCoupler(graph.IdOf(0, 0, 0, i),
                                   graph.IdOf(0, 0, 1, j)));
    }
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_FALSE(graph.HasCoupler(graph.IdOf(0, 0, 0, i),
                                      graph.IdOf(0, 0, 0, j)));
        EXPECT_FALSE(graph.HasCoupler(graph.IdOf(0, 0, 1, i),
                                      graph.IdOf(0, 0, 1, j)));
      }
    }
  }
}

TEST(ChimeraTest, VerticalCouplersOnLeftShoreOnly) {
  ChimeraGraph graph(2, 2, 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(
        graph.HasCoupler(graph.IdOf(0, 0, 0, k), graph.IdOf(1, 0, 0, k)));
    EXPECT_FALSE(
        graph.HasCoupler(graph.IdOf(0, 0, 1, k), graph.IdOf(1, 0, 1, k)));
    // Different index never couples vertically.
    EXPECT_FALSE(graph.HasCoupler(graph.IdOf(0, 0, 0, k),
                                  graph.IdOf(1, 0, 0, (k + 1) % 4)));
  }
}

TEST(ChimeraTest, HorizontalCouplersOnRightShoreOnly) {
  ChimeraGraph graph(2, 2, 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(
        graph.HasCoupler(graph.IdOf(0, 0, 1, k), graph.IdOf(0, 1, 1, k)));
    EXPECT_FALSE(
        graph.HasCoupler(graph.IdOf(0, 0, 0, k), graph.IdOf(0, 1, 0, k)));
  }
}

TEST(ChimeraTest, NoDiagonalOrDistantCouplers) {
  ChimeraGraph graph(3, 3, 4);
  EXPECT_FALSE(
      graph.HasCoupler(graph.IdOf(0, 0, 0, 0), graph.IdOf(1, 1, 0, 0)));
  EXPECT_FALSE(
      graph.HasCoupler(graph.IdOf(0, 0, 0, 0), graph.IdOf(2, 0, 0, 0)));
  EXPECT_FALSE(
      graph.HasCoupler(graph.IdOf(0, 0, 1, 0), graph.IdOf(0, 2, 1, 0)));
}

TEST(ChimeraTest, DegreeAtMostShorePlusTwo) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  int max_degree = 0;
  for (QubitId q = 0; q < graph.num_qubits(); ++q) {
    max_degree =
        std::max(max_degree, static_cast<int>(graph.Neighbors(q).size()));
  }
  // The paper: "each qubit is hence connected to at most six other qubits".
  EXPECT_EQ(max_degree, 6);
}

TEST(ChimeraTest, CouplerCountFormula) {
  ChimeraGraph graph = ChimeraGraph::DWave2X();
  // 144 cells x 16 intra + 11*12*4 vertical + 12*11*4 horizontal.
  EXPECT_EQ(graph.num_couplers(), 144 * 16 + 11 * 12 * 4 + 12 * 11 * 4);
  // Cross-check against the adjacency lists.
  int half_edges = 0;
  for (QubitId q = 0; q < graph.num_qubits(); ++q) {
    half_edges += static_cast<int>(graph.Neighbors(q).size());
  }
  EXPECT_EQ(half_edges, 2 * graph.num_couplers());
}

TEST(ChimeraTest, AdjacencyIsSymmetric) {
  ChimeraGraph graph(3, 4, 4);
  for (QubitId q = 0; q < graph.num_qubits(); ++q) {
    for (QubitId n : graph.Neighbors(q)) {
      EXPECT_TRUE(graph.HasCoupler(n, q));
    }
  }
}

TEST(ChimeraTest, BreakAndRepairQubits) {
  ChimeraGraph graph(2, 2, 4);
  QubitId q = graph.IdOf(0, 1, 0, 2);
  EXPECT_TRUE(graph.IsWorking(q));
  graph.SetBroken(q, true);
  EXPECT_TRUE(graph.IsBroken(q));
  EXPECT_EQ(graph.num_broken_qubits(), 1);
  graph.SetBroken(q, true);  // idempotent
  EXPECT_EQ(graph.num_broken_qubits(), 1);
  graph.SetBroken(q, false);
  EXPECT_EQ(graph.num_broken_qubits(), 0);
}

TEST(ChimeraTest, CouplerUsableRespectsDefects) {
  ChimeraGraph graph(1, 1, 4);
  QubitId a = graph.IdOf(0, 0, 0, 0);
  QubitId b = graph.IdOf(0, 0, 1, 0);
  EXPECT_TRUE(graph.CouplerUsable(a, b));
  graph.SetBroken(b, true);
  EXPECT_TRUE(graph.HasCoupler(a, b));  // structure is defect-independent
  EXPECT_FALSE(graph.CouplerUsable(a, b));
}

TEST(ChimeraTest, BreakRandomIsExactAndDistinct) {
  Rng rng(33);
  ChimeraGraph graph(4, 4, 4);
  graph.BreakRandom(10, &rng);
  EXPECT_EQ(graph.num_broken_qubits(), 10);
  graph.BreakRandom(1000, &rng);  // clamped to remaining
  EXPECT_EQ(graph.num_broken_qubits(), graph.num_qubits());
}

TEST(ChimeraTest, WorkingNeighborsFilterBroken) {
  ChimeraGraph graph(1, 1, 4);
  QubitId a = graph.IdOf(0, 0, 0, 0);
  EXPECT_EQ(graph.WorkingNeighbors(a).size(), 4u);
  graph.SetBroken(graph.IdOf(0, 0, 1, 3), true);
  EXPECT_EQ(graph.WorkingNeighbors(a).size(), 3u);
}

TEST(ChimeraTest, SummaryString) {
  Rng rng(2);
  ChimeraGraph graph = ChimeraGraph::DWave2XWithDefects(&rng, 5);
  EXPECT_EQ(graph.Summary(), "Chimera(12x12x4, 1152 qubits, 5 broken)");
}

TEST(RenderTest, ShowsBrokenAndLabeledQubits) {
  ChimeraGraph graph(1, 2, 4);
  graph.SetBroken(graph.IdOf(0, 0, 0, 0), true);
  std::vector<int> labels(static_cast<size_t>(graph.num_qubits()), -1);
  labels[static_cast<size_t>(graph.IdOf(0, 1, 1, 0))] = 3;
  std::string art = Render(graph, labels);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('3'), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);
}

TEST(RenderTest, UnlabeledRenderHasOneGlyphPerQubit) {
  ChimeraGraph graph(2, 3, 4);
  std::string art = Render(graph);
  int dots = 0;
  for (char c : art) {
    if (c == '.') ++dots;
  }
  EXPECT_EQ(dots, graph.num_qubits());
}

}  // namespace
}  // namespace chimera
}  // namespace qmqo
