// Unit tests of the observability layer itself: sharded counters, gauge
// bit round-trips, histogram bucket boundaries (inclusive `le`), the
// Prometheus text exposition (golden), JSON exposition, collectors, and
// span-tree construction/serialization.

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qmqo {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kPerThread);
}

TEST(CounterTest, IncrementByDelta) {
  Counter counter;
  counter.Increment(5);
  counter.Increment(0);
  counter.Increment(37);
  EXPECT_EQ(counter.Value(), 42);
}

TEST(CounterTest, SetToAbsoluteMirrorsMonotonicSource) {
  Counter counter;
  counter.SetToAbsolute(10);
  EXPECT_EQ(counter.Value(), 10);
  counter.SetToAbsolute(10);  // idempotent
  EXPECT_EQ(counter.Value(), 10);
  counter.SetToAbsolute(25);
  EXPECT_EQ(counter.Value(), 25);
  counter.SetToAbsolute(3);  // a counter never goes backwards
  EXPECT_EQ(counter.Value(), 25);
}

TEST(GaugeTest, RoundTripsExactBits) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  for (double v : {36.5, -0.0, 1e-300, 0.1, 12345.6789}) {
    gauge.Set(v);
    double got = gauge.Value();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(v)), 0) << v;
  }
}

TEST(HistogramTest, UpperBoundsAreInclusive) {
  Histogram h({1.0, 2.5, 5.0});
  h.Observe(1.0);        // exactly on a bound -> that bucket (le semantics)
  h.Observe(1.0000001);  // just over -> next bucket
  h.Observe(2.5);
  h.Observe(5.0);
  h.Observe(5.0001);  // over the last bound -> +Inf bucket
  h.Observe(-3.0);    // below everything -> first bucket
  EXPECT_EQ(h.BucketCount(0), 2);  // 1.0, -3.0
  EXPECT_EQ(h.BucketCount(1), 2);  // 1.0000001, 2.5
  EXPECT_EQ(h.BucketCount(2), 1);  // 5.0
  EXPECT_EQ(h.BucketCount(3), 1);  // 5.0001
  EXPECT_EQ(h.Count(), 6);
}

TEST(HistogramTest, SumIsFixedPointThousandths) {
  Histogram h({10.0});
  h.Observe(1.2344);  // rounds to 1.234
  h.Observe(0.0006);  // rounds to 0.001
  h.Observe(0.0004);  // rounds to 0.000
  EXPECT_DOUBLE_EQ(h.Sum(), 1.235);
  EXPECT_EQ(h.Count(), 3);
}

TEST(HistogramTest, BoundsAreSortedAndDeduplicated) {
  Histogram h({5.0, 1.0, 5.0, 2.5});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.bounds()[0], 1.0);
  EXPECT_EQ(h.bounds()[1], 2.5);
  EXPECT_EQ(h.bounds()[2], 5.0);
}

TEST(RegistryTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x_total");
  Counter* b = reg.counter("x_total");
  EXPECT_EQ(a, b);
  Histogram* h1 = reg.histogram("h_ms", {1.0, 2.0});
  Histogram* h2 = reg.histogram("h_ms", {99.0});  // never re-bucketed
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
}

TEST(RegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.counter("x"), nullptr);
  EXPECT_EQ(reg.gauge("x"), nullptr);
  EXPECT_EQ(reg.histogram("x", {1.0}), nullptr);
  ASSERT_NE(reg.gauge("g"), nullptr);
  EXPECT_EQ(reg.counter("g"), nullptr);
}

TEST(RegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("zebra");
  reg.counter("alpha");
  reg.counter("mid");
  MetricsSnapshot snap = reg.Collect();
  ASSERT_EQ(snap.points.size(), 3u);
  EXPECT_EQ(snap.points[0].name, "alpha");
  EXPECT_EQ(snap.points[1].name, "mid");
  EXPECT_EQ(snap.points[2].name, "zebra");
}

TEST(RegistryTest, CollectorsRunAtCollectTime) {
  MetricsRegistry reg;
  int runs = 0;
  reg.AddCollector([&runs](MetricsRegistry* r) {
    ++runs;
    r->gauge("mirrored")->Set(static_cast<double>(runs));
  });
  MetricsSnapshot first = reg.Collect();
  MetricsSnapshot second = reg.Collect();
  EXPECT_EQ(runs, 2);
  ASSERT_EQ(second.points.size(), 1u);
  EXPECT_EQ(second.points[0].gauge_value, 2.0);
  (void)first;
}

// The exposition format is an interface: goldens pin the exact bytes.
TEST(ExpositionTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.counter("app_requests_total", "Total requests")->Increment(3);
  reg.counter("app_errors_total{kind=\"parse\"}", "Errors by kind")
      ->Increment();
  reg.counter("app_errors_total{kind=\"io\"}")->Increment(2);
  reg.gauge("app_temperature", "Current temp")->Set(36.5);
  Histogram* h = reg.histogram("app_latency_ms", {1.0, 5.0}, "Latency");
  h->Observe(0.5);
  h->Observe(1.0);
  h->Observe(3.0);
  h->Observe(100.0);

  const char* expected =
      "# HELP app_errors_total Errors by kind\n"
      "# TYPE app_errors_total counter\n"
      "app_errors_total{kind=\"io\"} 2\n"
      "app_errors_total{kind=\"parse\"} 1\n"
      "# HELP app_latency_ms Latency\n"
      "# TYPE app_latency_ms histogram\n"
      "app_latency_ms_bucket{le=\"1\"} 2\n"
      "app_latency_ms_bucket{le=\"5\"} 3\n"
      "app_latency_ms_bucket{le=\"+Inf\"} 4\n"
      "app_latency_ms_sum 104.5\n"
      "app_latency_ms_count 4\n"
      "# HELP app_requests_total Total requests\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total 3\n"
      "# HELP app_temperature Current temp\n"
      "# TYPE app_temperature gauge\n"
      "app_temperature 36.5\n";
  EXPECT_EQ(reg.PrometheusText(), expected);
}

// A family's labeled series sort after any metric whose next character
// is in ('_', '{') — e.g. `rq_total` < `rq_total_x` < `rq_total{...}` —
// so header emission must group by base name, never by adjacency, or the
// family gets two # TYPE lines and Prometheus parsers reject the scrape.
TEST(ExpositionTest, SplitFamilyEmitsOneTypeHeader) {
  MetricsRegistry reg;
  reg.counter("rq_total", "Requests")->Increment(5);
  reg.counter("rq_total{kind=\"a\"}")->Increment(2);
  reg.gauge("rq_total_x", "Sorts between the family's series")->Set(1.0);
  const char* expected =
      "# HELP rq_total Requests\n"
      "# TYPE rq_total counter\n"
      "rq_total 5\n"
      "rq_total{kind=\"a\"} 2\n"
      "# HELP rq_total_x Sorts between the family's series\n"
      "# TYPE rq_total_x gauge\n"
      "rq_total_x 1\n";
  EXPECT_EQ(reg.PrometheusText(), expected);
}

// FormatDouble must not consult LC_NUMERIC: an embedding application
// that calls setlocale() must not be able to turn "36.5" into "36,5"
// (which breaks Prometheus parsing and the byte-identity contract).
TEST(ExpositionTest, NumberFormattingIgnoresLocale) {
  // Any locale whose decimal separator is ',' exercises the bug; skip
  // (rather than fail) on minimal images that ship only "C"/"POSIX".
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved = previous != nullptr ? previous : "C";
  bool locale_available = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      locale_available = true;
      break;
    }
  }
  if (!locale_available) {
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  MetricsRegistry reg;
  reg.gauge("g_value")->Set(36.5);
  std::string prom = reg.PrometheusText();
  std::string json = reg.JsonText();
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_NE(prom.find("g_value 36.5\n"), std::string::npos) << prom;
  EXPECT_EQ(json, "{\"g_value\": 36.5}");
}

TEST(ExpositionTest, LabeledHistogramMergesLeIntoExistingLabels) {
  MetricsRegistry reg;
  Histogram* h =
      reg.histogram("lat_ms{backend=\"device\"}", {1.0}, "Latency by backend");
  h->Observe(0.5);
  std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("lat_ms_bucket{backend=\"device\",le=\"1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ms_sum{backend=\"device\"} 0.5"), std::string::npos)
      << text;
}

TEST(ExpositionTest, JsonTextGolden) {
  MetricsRegistry reg;
  reg.counter("c_total")->Increment(7);
  reg.gauge("g_value")->Set(2.5);
  Histogram* h = reg.histogram("h_ms", {1.0});
  h->Observe(0.25);
  h->Observe(4.0);
  const char* expected =
      "{\"c_total\": 7, \"g_value\": 2.5, "
      "\"h_ms\": {\"buckets\": [{\"le\": \"1\", \"count\": 1}, "
      "{\"le\": \"inf\", \"count\": 2}], \"sum\": 4.25, \"count\": 2}}";
  EXPECT_EQ(reg.JsonText(), expected);
}

// Labeled metric names carry literal double quotes; as JSON keys they
// must be escaped or the whole document is invalid (this is the shape
// SolveService registers unconditionally, e.g.
// qmqo_service_requests_rejected_total{reason="invalid"}).
TEST(ExpositionTest, JsonTextEscapesLabeledNames) {
  MetricsRegistry reg;
  reg.counter("rq_rejected_total{reason=\"invalid\"}")->Increment(3);
  EXPECT_EQ(reg.JsonText(),
            "{\"rq_rejected_total{reason=\\\"invalid\\\"}\": 3}");
}

TEST(TraceTest, SpanTreeStructure) {
  SolveTrace trace;
  int root = trace.Open("root");
  trace.Tag("id", static_cast<int64_t>(7));
  int child = trace.Open("child");
  trace.AddModeled(2.5);
  int grandchild = trace.Open("grandchild");
  trace.Close(0.5);  // grandchild
  trace.Close(1.0);  // child
  trace.AddModeled(5.0);
  trace.Close(10.0);  // root
  EXPECT_FALSE(trace.has_open_span());

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(root)].parent, -1);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(root)].depth, 0);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(child)].parent, root);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(child)].depth, 1);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(grandchild)].parent, child);
  EXPECT_EQ(trace.spans()[static_cast<size_t>(grandchild)].depth, 2);
  EXPECT_DOUBLE_EQ(trace.spans()[static_cast<size_t>(root)].modeled_ms, 5.0);
  EXPECT_DOUBLE_EQ(trace.spans()[static_cast<size_t>(child)].modeled_ms, 2.5);
  EXPECT_DOUBLE_EQ(trace.spans()[static_cast<size_t>(root)].wall_ms, 10.0);
}

TEST(TraceTest, JsonLineOmitsWallWhenAsked) {
  SolveTrace trace;
  trace.Open("root");
  trace.Tag("verdict", "completed");
  trace.AddModeled(5.0);
  trace.Close(123.456);
  EXPECT_EQ(trace.JsonLine(/*include_wall=*/false),
            "{\"spans\": [{\"name\": \"root\", \"parent\": -1, "
            "\"modeled_ms\": 5, \"tags\": {\"verdict\": \"completed\"}}]}");
  std::string with_wall = trace.JsonLine(/*include_wall=*/true);
  EXPECT_NE(with_wall.find("\"wall_ms\": 123.456"), std::string::npos)
      << with_wall;
}

TEST(TraceTest, ModeledTotalsSumByName) {
  SolveTrace trace;
  trace.Open("a");
  trace.AddModeled(1.0);
  trace.Open("b");
  trace.AddModeled(2.0);
  trace.Close(0.0);
  trace.Close(0.0);
  trace.Open("b");
  trace.AddModeled(3.0);
  trace.Close(0.0);
  EXPECT_DOUBLE_EQ(trace.ModeledTotal("a"), 1.0);
  EXPECT_DOUBLE_EQ(trace.ModeledTotal("b"), 5.0);
  EXPECT_DOUBLE_EQ(trace.ModeledTotal("missing"), 0.0);
}

TEST(TraceTest, SpanScopeIsNullSafe) {
  SpanScope scope(nullptr, "never-recorded");
  scope.AddModeled(1.0);
  scope.Tag("k", "v");  // all no-ops; must not crash
}

TEST(TraceTest, SpanScopeRecordsOnDestruction) {
  SolveTrace trace;
  {
    SpanScope scope(&trace, "scoped");
    scope.AddModeled(2.0);
    scope.Tag("k", static_cast<int64_t>(1));
  }
  EXPECT_FALSE(trace.has_open_span());
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].name, "scoped");
  EXPECT_DOUBLE_EQ(trace.spans()[0].modeled_ms, 2.0);
  EXPECT_GE(trace.spans()[0].wall_ms, 0.0);
}

TEST(TracerTest, DumpsOneJsonLinePerTrace) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    SolveTrace trace;
    trace.Open("request");
    trace.Tag("id", static_cast<int64_t>(i));
    trace.AddModeled(static_cast<double>(i));
    trace.Close(0.0);
    tracer.Commit(std::move(trace));
  }
  ASSERT_EQ(tracer.size(), 3u);
  std::string dump = tracer.DumpJsonLines(/*include_wall=*/false);
  int lines = 0;
  for (char c : dump) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 3);
  EXPECT_DOUBLE_EQ(tracer.ModeledTotal("request"), 3.0);
}

}  // namespace
}  // namespace obs
}  // namespace qmqo
