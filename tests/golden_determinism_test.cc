// Golden determinism fixtures: committed JSON snapshots of the SampleSets
// that SA, SQA, and the device simulator produce at fixed seeds — energies
// (as exact IEEE-754 bit patterns), occurrence counts, and the packed
// assignment words — for every sweep kernel. Each snapshot is asserted
// byte-stable across 1/2/4 worker threads and against the committed file,
// so future refactors of the samplers, the parallel read engine, or the
// SampleSet representation diff against committed truth instead of
// re-deriving "serial equals parallel" from scratch.
//
// Regenerating (only when an intentional stream/contract change lands):
//   QMQO_UPDATE_GOLDEN=1 ./golden_determinism_test
// then commit the rewritten files under tests/golden/ and call the change
// out in the PR description — a golden diff IS a results change.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "anneal/dwave_simulator.h"
#include "anneal/sample_set.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "harness/resilient_solver.h"
#include "util/rng.h"
#include "workloads/coloring.h"
#include "workloads/max_clique.h"
#include "workloads/max_cut.h"
#include "workloads/workload.h"

#ifndef QMQO_GOLDEN_DIR
#define QMQO_GOLDEN_DIR "tests/golden"
#endif

namespace qmqo {
namespace anneal {
namespace {

/// The shared fixture problem: a fixed 16-variable random QUBO. Small
/// enough that every engine finishes in milliseconds, dense enough that
/// duplicate assignments exercise the dedup-merge path.
qubo::QuboProblem FixtureProblem() {
  Rng rng(20260729);
  qubo::QuboProblem problem(16);
  for (int i = 0; i < 16; ++i) {
    problem.AddLinear(i, rng.UniformReal(-4.0, 4.0));
    for (int j = i + 1; j < 16; ++j) {
      if (rng.Bernoulli(0.5)) {
        problem.AddQuadratic(i, j, rng.UniformReal(-4.0, 4.0));
      }
    }
  }
  return problem;
}

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Canonical byte-stable serialization: energies as IEEE-754 bit patterns
/// (the readable decimal rendering rides along for humans), counts, and
/// the packed assignment words. One sample per line for reviewable diffs.
std::string Serialize(const std::string& engine, const std::string& kernel,
                      const SampleSet& set) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"engine\": \"" << engine << "\",\n";
  out << "  \"kernel\": \"" << kernel << "\",\n";
  out << "  \"num_bits\": " << set.assignments().num_bits() << ",\n";
  out << "  \"total_reads\": " << set.total_reads() << ",\n";
  out << "  \"samples\": [";
  for (size_t i = 0; i < set.samples().size(); ++i) {
    const Sample sample = set.samples()[i];
    uint64_t energy_bits;
    static_assert(sizeof(energy_bits) == sizeof(sample.energy), "");
    std::memcpy(&energy_bits, &sample.energy, sizeof(energy_bits));
    char energy_text[64];
    std::snprintf(energy_text, sizeof(energy_text), "%.17g", sample.energy);
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"energy_hex\": \"" << HexU64(energy_bits)
        << "\", \"energy\": \"" << energy_text
        << "\", \"count\": " << sample.num_occurrences << ", \"words\": [";
    const AssignmentRef ref = sample.assignment;
    for (int w = 0; w < ref.num_words(); ++w) {
      out << (w == 0 ? "" : ", ") << "\"" << HexU64(ref.words()[w]) << "\"";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

/// Compares `serialized` against the committed fixture (or rewrites it
/// under QMQO_UPDATE_GOLDEN=1).
void CheckGolden(const std::string& name, const std::string& serialized) {
  const std::string path = std::string(QMQO_GOLDEN_DIR) + "/" + name + ".json";
  if (std::getenv("QMQO_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << serialized;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden fixture " << path
      << " — run with QMQO_UPDATE_GOLDEN=1 to generate it";
  std::stringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), serialized)
      << name << ": results diverged from the committed fixture. If the "
      << "change is intentional, regenerate with QMQO_UPDATE_GOLDEN=1 and "
      << "call the golden diff out in the PR.";
}

constexpr SweepKernel kKernels[] = {SweepKernel::kScalar,
                                    SweepKernel::kCheckerboard,
                                    SweepKernel::kCheckerboardFast};
constexpr int kThreadCounts[] = {1, 2, 4};

TEST(GoldenDeterminismTest, SimulatedAnnealerSnapshots) {
  qubo::QuboProblem problem = FixtureProblem();
  for (SweepKernel kernel : kKernels) {
    std::string reference;
    for (int threads : kThreadCounts) {
      SaOptions options;
      options.num_reads = 12;
      options.sweeps_per_read = 48;
      options.seed = 7;
      options.sweep_kernel = kernel;
      options.num_threads = threads;
      const std::string serialized =
          Serialize("sa", SweepKernelName(kernel),
                    SimulatedAnnealer(options).Sample(problem));
      if (threads == 1) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "sa/" << SweepKernelName(kernel) << " at " << threads
            << " threads diverged from serial";
      }
    }
    CheckGolden(std::string("sa_") + SweepKernelName(kernel), reference);
  }
}

TEST(GoldenDeterminismTest, SqaSnapshots) {
  qubo::QuboProblem problem = FixtureProblem();
  for (SweepKernel kernel : kKernels) {
    std::string reference;
    for (int threads : kThreadCounts) {
      SqaOptions options;
      options.num_reads = 6;
      options.num_slices = 4;
      options.sweeps = 24;
      options.seed = 9;
      options.sweep_kernel = kernel;
      options.num_threads = threads;
      const std::string serialized =
          Serialize("sqa", SweepKernelName(kernel),
                    SimulatedQuantumAnnealer(options).Sample(problem));
      if (threads == 1) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "sqa/" << SweepKernelName(kernel) << " at " << threads
            << " threads diverged from serial";
      }
    }
    CheckGolden(std::string("sqa_") + SweepKernelName(kernel), reference);
  }
}

TEST(GoldenDeterminismTest, DeviceSnapshots) {
  qubo::QuboProblem problem = FixtureProblem();
  for (SweepKernel kernel : kKernels) {
    std::string reference;
    for (int threads : kThreadCounts) {
      DWaveOptions options;
      options.num_reads = 12;
      options.num_gauges = 3;
      options.sa_sweeps = 24;
      options.seed = 11;
      options.sweep_kernel = kernel;
      options.num_threads = threads;
      auto result = DWaveSimulator(options).Sample(problem);
      ASSERT_TRUE(result.ok());
      const std::string serialized =
          Serialize("device", SweepKernelName(kernel), result->samples);
      if (threads == 1) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "device/" << SweepKernelName(kernel) << " at " << threads
            << " threads diverged from serial";
      }
    }
    CheckGolden(std::string("device_") + SweepKernelName(kernel), reference);
  }
}

/// The capped (streaming top-k) SA result is part of the frozen contract
/// too: top-k membership, energies, counts at any thread count.
TEST(GoldenDeterminismTest, CappedSaSnapshot) {
  qubo::QuboProblem problem = FixtureProblem();
  std::string reference;
  for (int threads : kThreadCounts) {
    SaOptions options;
    options.num_reads = 24;
    options.sweeps_per_read = 32;
    options.seed = 13;
    options.max_samples = 5;
    options.num_threads = threads;
    const std::string serialized =
        Serialize("sa_capped", "scalar",
                  SimulatedAnnealer(options).Sample(problem));
    if (threads == 1) {
      reference = serialized;
    } else {
      EXPECT_EQ(serialized, reference)
          << "sa_capped at " << threads << " threads diverged from serial";
    }
  }
  CheckGolden("sa_capped_scalar", reference);
}

/// One fixed instance per workload kind, solved through the resilient
/// ladder's bare-QUBO path (`SolveQubo`: SQA answers, device rung gated,
/// deterministic descent refinement). The snapshot freezes the winning
/// assignment bits, the energy's IEEE-754 pattern, and the decoded domain
/// labels — asserted byte-stable at 1/2/4 threads and against the
/// committed fixture. Fixed seeds, NOT QMQO_CHAOS_SEED: goldens are
/// committed files, chaos variation lives in workloads_test.
TEST(GoldenDeterminismTest, WorkloadSolveSnapshots) {
  struct Fixture {
    std::string name;
    std::shared_ptr<workloads::Workload> workload;
  };
  std::vector<Fixture> fixtures;
  {
    auto clique = workloads::MaxCliqueWorkload::MakePlanted(
        /*num_nodes=*/20, /*clique_size=*/5, /*edge_prob=*/0.35,
        /*seed=*/20260801);
    ASSERT_TRUE(clique.ok()) << clique.status().ToString();
    fixtures.push_back({"workload_max_clique", *clique});
    auto cut_instance =
        workloads::PlantedCutGraph(/*num_nodes=*/18, /*edge_prob=*/0.45,
                                   /*max_weight=*/3.0, /*seed=*/20260802);
    ASSERT_TRUE(cut_instance.ok());
    auto cut = workloads::MaxCutWorkload::Create(
        cut_instance->graph, cut_instance->graph.total_weight());
    ASSERT_TRUE(cut.ok());
    fixtures.push_back({"workload_max_cut", *cut});
    auto coloring = workloads::ColoringWorkload::MakePlanted(
        /*num_nodes=*/15, /*num_colors=*/3, /*edge_prob=*/0.4,
        /*seed=*/20260803);
    ASSERT_TRUE(coloring.ok());
    fixtures.push_back({"workload_coloring", *coloring});
  }
  harness::SolvePolicy policy;
  policy.seed = 20260804;
  policy.max_attempts_per_backend = 1;
  policy.sqa_reads = 8;
  policy.sqa_slices = 6;
  policy.sqa_sweeps = 64;
  policy.sa_reads = 16;
  policy.sa_sweeps = 128;
  harness::ResilientSolver solver(policy);
  for (const Fixture& fixture : fixtures) {
    std::string reference;
    for (int threads : kThreadCounts) {
      harness::QuantumMqoOptions options;
      options.device.num_threads = threads;
      harness::SolveReport report =
          solver.SolveQubo(fixture.workload->qubo(), options);
      ASSERT_TRUE(report.ok) << fixture.name << ": "
                             << report.FailureChain();
      const workloads::WorkloadSolution decoded =
          fixture.workload->Decode(report.qubo_assignment);
      uint64_t energy_bits;
      static_assert(sizeof(energy_bits) == sizeof(report.qubo_energy), "");
      std::memcpy(&energy_bits, &report.qubo_energy, sizeof(energy_bits));
      char energy_text[64];
      std::snprintf(energy_text, sizeof(energy_text), "%.17g",
                    report.qubo_energy);
      std::ostringstream out;
      out << "{\n";
      out << "  \"workload\": \"" << fixture.name << "\",\n";
      out << "  \"backend\": \""
          << harness::SolveBackendName(report.backend) << "\",\n";
      out << "  \"energy_hex\": \"" << HexU64(energy_bits) << "\",\n";
      out << "  \"energy\": \"" << energy_text << "\",\n";
      out << "  \"objective\": " << decoded.objective << ",\n";
      out << "  \"feasible\": " << (decoded.feasible ? "true" : "false")
          << ",\n";
      out << "  \"assignment\": \"";
      for (uint8_t bit : report.qubo_assignment) out << (bit ? '1' : '0');
      out << "\",\n  \"labels\": [";
      for (size_t i = 0; i < decoded.labels.size(); ++i) {
        out << (i == 0 ? "" : ", ") << decoded.labels[i];
      }
      out << "]\n}\n";
      if (threads == 1) {
        reference = out.str();
      } else {
        EXPECT_EQ(out.str(), reference)
            << fixture.name << " at " << threads
            << " threads diverged from serial";
      }
    }
    CheckGolden(fixture.name, reference);
  }
}

}  // namespace
}  // namespace anneal
}  // namespace qmqo
