// Tests for the service's per-backend circuit breaker: the rolling-window
// state machine (closed -> open -> half-open -> closed/open), latency-as-
// failure classification, probe budgeting with re-arm, and counters. All
// timestamps are modeled milliseconds — the breaker has no clock of its
// own, which is what makes these transitions exactly testable.

#include "service/circuit_breaker.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace qmqo {
namespace service {
namespace {

CircuitBreakerOptions SmallOptions() {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.failure_rate_to_open = 0.5;
  options.open_cooldown_ms = 100.0;
  options.half_open_probes = 1;
  options.successes_to_close = 1;
  return options;
}

TEST(CircuitBreakerTest, StartsClosedAndAdmits) {
  CircuitBreaker breaker(SmallOptions());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Admit(0.0).ok());
  EXPECT_EQ(breaker.admitted(), 1);
  EXPECT_EQ(breaker.WindowFailureRate(), 0.0);
}

TEST(CircuitBreakerTest, MinSamplesGuardsColdOpen) {
  CircuitBreaker breaker(SmallOptions());
  // Three failures: rate 1.0 but below min_samples — stays closed.
  for (int i = 0; i < 3; ++i) breaker.Record(false, 0.0, 0.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  // The fourth reaches min_samples at rate 1.0 >= 0.5 — opens.
  breaker.Record(false, 0.0, 10.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 1);
}

TEST(CircuitBreakerTest, OpensOnWindowedRateNotStreak) {
  CircuitBreaker breaker(SmallOptions());
  // Successes first, then failures: the breaker opens exactly when the
  // window rate reaches 0.5, not on any failure streak length.
  for (int i = 0; i < 3; ++i) breaker.Record(true, 0.0, 0.0);
  breaker.Record(false, 0.0, 0.0);  // rate 1/4
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.Record(false, 0.0, 0.0);  // rate 2/5
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.Record(false, 0.0, 0.0);  // rate 3/6 = 0.5
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, OpenRejectsUntilCooldown) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 50.0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  Status rejected = breaker.Admit(149.0);  // opened at 50, cooldown 100
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(breaker.rejected(), 1);
  // At 150 the cooldown has elapsed: half-open, one probe admitted.
  EXPECT_TRUE(breaker.Admit(150.0).ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, ProbeSuccessCloses) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 0.0);
  ASSERT_TRUE(breaker.Admit(100.0).ok());
  breaker.Record(true, 0.0, 100.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.times_closed(), 1);
  // The window was reset on close: old failures don't re-open it.
  breaker.Record(false, 0.0, 101.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ProbeFailureReopens) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 0.0);
  ASSERT_TRUE(breaker.Admit(100.0).ok());
  breaker.Record(false, 0.0, 100.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.times_opened(), 2);
  // The new open episode restarts the cooldown from the probe failure.
  EXPECT_EQ(breaker.Admit(150.0).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(breaker.Admit(200.0).ok());
}

TEST(CircuitBreakerTest, ProbeBudgetLimitsHalfOpenAdmissions) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 0.0);
  ASSERT_TRUE(breaker.Admit(100.0).ok());
  // Budget (1 probe) spent; a second request at the same time is rejected.
  EXPECT_EQ(breaker.Admit(100.0).code(), StatusCode::kUnavailable);
}

TEST(CircuitBreakerTest, ProbeBudgetReArmsAfterSilentCooldown) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 0.0);
  ASSERT_TRUE(breaker.Admit(100.0).ok());
  // The probe never reports back (an earlier ladder rung answered). After
  // another full cooldown the budget re-arms instead of wedging half-open.
  EXPECT_EQ(breaker.Admit(199.0).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(breaker.Admit(200.0).ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, SlowSuccessCountsAsFailure) {
  CircuitBreakerOptions options = SmallOptions();
  options.latency_threshold_ms = 10.0;
  CircuitBreaker breaker(options);
  // OK outcomes, but 50 ms modeled latency against a 10 ms SLA: the
  // browned-out backend opens the breaker just like a crashing one.
  for (int i = 0; i < 4; ++i) breaker.Record(true, 50.0, 0.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // Fast OK outcomes stay successes.
  CircuitBreaker fast(options);
  for (int i = 0; i < 8; ++i) fast.Record(true, 5.0, 0.0);
  EXPECT_EQ(fast.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, StragglerOutcomeWhileOpenIsIgnored) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 0.0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // A late success from a request admitted before the open must not close
  // the breaker out of band.
  breaker.Record(true, 0.0, 1.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, SuccessesToCloseRequiresStreak) {
  CircuitBreakerOptions options = SmallOptions();
  options.half_open_probes = 2;
  options.successes_to_close = 2;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 4; ++i) breaker.Record(false, 0.0, 0.0);
  ASSERT_TRUE(breaker.Admit(100.0).ok());
  ASSERT_TRUE(breaker.Admit(100.0).ok());
  breaker.Record(true, 0.0, 100.0);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.Record(true, 0.0, 100.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, WindowEvictsOldOutcomes) {
  CircuitBreaker breaker(SmallOptions());
  // One early failure, then a run of successes: the failure ages out of
  // the window (size 8) and the rate returns to zero.
  breaker.Record(false, 0.0, 0.0);
  for (int i = 0; i < 11; ++i) breaker.Record(true, 0.0, 0.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.WindowFailureRate(), 0.0);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace service
}  // namespace qmqo
