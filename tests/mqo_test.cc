// Unit and property tests for the MQO problem model, solutions, incremental
// evaluation, generators, clustering, brute force, and serialization.

#include <gtest/gtest.h>

#include "mqo/brute_force.h"
#include "mqo/clustering.h"
#include "mqo/generator.h"
#include "mqo/problem.h"
#include "mqo/serialization.h"
#include "mqo/solution.h"
#include "util/rng.h"

namespace qmqo {
namespace mqo {
namespace {

/// The running example of the paper (Example 1): two queries, two plans
/// each, costs 2/4/3/1, saving 5 between p2 and p3 (plan ids 1 and 2).
MqoProblem PaperExample() {
  MqoProblem problem;
  problem.AddQuery({2.0, 4.0});
  problem.AddQuery({3.0, 1.0});
  EXPECT_TRUE(problem.AddSaving(1, 2, 5.0).ok());
  return problem;
}

TEST(MqoProblemTest, BuildAndAccessors) {
  MqoProblem problem = PaperExample();
  EXPECT_EQ(problem.num_queries(), 2);
  EXPECT_EQ(problem.num_plans(), 4);
  EXPECT_EQ(problem.num_savings(), 1);
  EXPECT_EQ(problem.first_plan(0), 0);
  EXPECT_EQ(problem.first_plan(1), 2);
  EXPECT_EQ(problem.num_plans_of(0), 2);
  EXPECT_EQ(problem.query_of(0), 0);
  EXPECT_EQ(problem.query_of(3), 1);
  EXPECT_DOUBLE_EQ(problem.plan_cost(1), 4.0);
  EXPECT_DOUBLE_EQ(problem.max_plan_cost(), 4.0);
  EXPECT_DOUBLE_EQ(problem.total_plan_cost(), 10.0);
}

TEST(MqoProblemTest, SavingLookupIsSymmetric) {
  MqoProblem problem = PaperExample();
  EXPECT_DOUBLE_EQ(problem.saving_between(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(problem.saving_between(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(problem.saving_between(0, 3), 0.0);
}

TEST(MqoProblemTest, SavingsAccumulateOnDuplicatePairs) {
  MqoProblem problem = PaperExample();
  ASSERT_TRUE(problem.AddSaving(2, 1, 1.5).ok());
  EXPECT_EQ(problem.num_savings(), 1);
  EXPECT_DOUBLE_EQ(problem.saving_between(1, 2), 6.5);
  // The adjacency view stays in sync.
  ASSERT_EQ(problem.savings_of(1).size(), 1u);
  EXPECT_DOUBLE_EQ(problem.savings_of(1)[0].second, 6.5);
  EXPECT_DOUBLE_EQ(problem.savings_of(2)[0].second, 6.5);
}

TEST(MqoProblemTest, MaxAccumulatedSaving) {
  MqoProblem problem = PaperExample();
  ASSERT_TRUE(problem.AddSaving(1, 3, 2.0).ok());
  // Plan 1 now shares 5 + 2 = 7.
  EXPECT_DOUBLE_EQ(problem.max_accumulated_saving(), 7.0);
  EXPECT_DOUBLE_EQ(problem.accumulated_saving_of(1), 7.0);
  EXPECT_DOUBLE_EQ(problem.accumulated_saving_of(0), 0.0);
}

TEST(MqoProblemTest, AddSavingRejectsSameQuery) {
  MqoProblem problem = PaperExample();
  Status status = problem.AddSaving(0, 1, 1.0);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MqoProblemTest, AddSavingRejectsSelfAndRangeAndNonPositive) {
  MqoProblem problem = PaperExample();
  EXPECT_EQ(problem.AddSaving(1, 1, 1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(problem.AddSaving(0, 99, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(problem.AddSaving(-1, 2, 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(problem.AddSaving(0, 2, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(problem.AddSaving(0, 2, -1.0).code(),
            StatusCode::kInvalidArgument);
}

TEST(MqoProblemTest, ValidateEmptyProblemFails) {
  MqoProblem problem;
  EXPECT_EQ(problem.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(MqoProblemTest, ValidateRejectsNegativeCost) {
  MqoProblem problem;
  problem.AddQuery({-1.0});
  EXPECT_EQ(problem.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(MqoProblemTest, SummaryMentionsCounts) {
  MqoProblem problem = PaperExample();
  EXPECT_EQ(problem.Summary(), "MQO(2 queries, 4 plans, 1 savings)");
}

// --------------------------------------------------------------------
// Solutions and cost
// --------------------------------------------------------------------

TEST(MqoSolutionTest, CompletenessTracking) {
  MqoSolution solution(2);
  EXPECT_FALSE(solution.IsComplete());
  solution.Select(0, 0);
  EXPECT_FALSE(solution.IsComplete());
  solution.Select(1, 2);
  EXPECT_TRUE(solution.IsComplete());
}

TEST(MqoSolutionTest, EvaluateCostAppliesSavings) {
  MqoProblem problem = PaperExample();
  MqoSolution solution(2);
  solution.Select(0, 1);  // cost 4
  solution.Select(1, 2);  // cost 3, shares 5 with plan 1
  EXPECT_DOUBLE_EQ(EvaluateCost(problem, solution), 2.0);
}

TEST(MqoSolutionTest, EvaluateCostWithoutSharedPlans) {
  MqoProblem problem = PaperExample();
  MqoSolution solution(2);
  solution.Select(0, 0);
  solution.Select(1, 3);
  EXPECT_DOUBLE_EQ(EvaluateCost(problem, solution), 3.0);
}

TEST(MqoSolutionTest, ValidateSolutionChecksOwnership) {
  MqoProblem problem = PaperExample();
  MqoSolution solution(2);
  solution.Select(0, 2);  // plan 2 belongs to query 1
  solution.Select(1, 3);
  EXPECT_EQ(ValidateSolution(problem, solution).code(),
            StatusCode::kInvalidArgument);
}

TEST(MqoSolutionTest, ValidateSolutionChecksCompleteness) {
  MqoProblem problem = PaperExample();
  MqoSolution solution(2);
  solution.Select(0, 0);
  EXPECT_EQ(ValidateSolution(problem, solution).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MqoSolutionTest, ValidateSolutionAccepts) {
  MqoProblem problem = PaperExample();
  MqoSolution solution(2);
  solution.Select(0, 1);
  solution.Select(1, 2);
  EXPECT_TRUE(ValidateSolution(problem, solution).ok());
}

// --------------------------------------------------------------------
// Incremental evaluation: property — SwapDelta matches full re-evaluation.
// --------------------------------------------------------------------

class IncrementalEvalProperty : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalEvalProperty, SwapDeltaMatchesFullReevaluation) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  RandomWorkloadOptions options;
  options.num_queries = rng.UniformInt(2, 10);
  options.min_plans = 1;
  options.max_plans = 4;
  options.sharing_probability = 0.3;
  MqoProblem problem = GenerateRandomWorkload(options, &rng);

  MqoSolution solution(problem.num_queries());
  for (QueryId q = 0; q < problem.num_queries(); ++q) {
    solution.Select(q, problem.first_plan(q) +
                           rng.UniformInt(0, problem.num_plans_of(q) - 1));
  }
  IncrementalCostEvaluator eval(problem);
  eval.Reset(solution);
  EXPECT_NEAR(eval.cost(), EvaluateCost(problem, solution), 1e-9);

  for (int step = 0; step < 50; ++step) {
    QueryId q = rng.UniformInt(0, problem.num_queries() - 1);
    PlanId p = problem.first_plan(q) +
               rng.UniformInt(0, problem.num_plans_of(q) - 1);
    MqoSolution next = eval.ToSolution();
    next.Select(q, p);
    double expected_delta =
        EvaluateCost(problem, next) - EvaluateCost(problem, eval.ToSolution());
    EXPECT_NEAR(eval.SwapDelta(q, p), expected_delta, 1e-9);
    eval.ApplySwap(q, p);
    EXPECT_NEAR(eval.cost(), EvaluateCost(problem, next), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEvalProperty,
                         ::testing::Range(0, 12));

// --------------------------------------------------------------------
// Brute force
// --------------------------------------------------------------------

TEST(BruteForceTest, PaperExampleOptimum) {
  MqoProblem problem = PaperExample();
  auto result = SolveExhaustive(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cost, 2.0);
  EXPECT_EQ(result->solution.selected(0), 1);
  EXPECT_EQ(result->solution.selected(1), 2);
  EXPECT_EQ(result->states_visited, 4u);
}

TEST(BruteForceTest, RespectsStateLimit) {
  MqoProblem problem;
  for (int q = 0; q < 30; ++q) problem.AddQuery({1.0, 2.0});
  auto result = SolveExhaustive(problem, /*max_states=*/1 << 10);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

class BruteForceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BruteForceProperty, MatchesNaiveEnumeration) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  RandomWorkloadOptions options;
  options.num_queries = rng.UniformInt(2, 6);
  options.min_plans = 1;
  options.max_plans = 3;
  options.sharing_probability = 0.4;
  MqoProblem problem = GenerateRandomWorkload(options, &rng);

  auto result = SolveExhaustive(problem);
  ASSERT_TRUE(result.ok());
  // Naive: enumerate with nested counters and EvaluateCost.
  std::vector<int> index(static_cast<size_t>(problem.num_queries()), 0);
  double naive_best = 1e300;
  while (true) {
    MqoSolution solution(problem.num_queries());
    for (QueryId q = 0; q < problem.num_queries(); ++q) {
      solution.Select(q, problem.first_plan(q) + index[static_cast<size_t>(q)]);
    }
    naive_best = std::min(naive_best, EvaluateCost(problem, solution));
    int q = 0;
    while (q < problem.num_queries()) {
      size_t uq = static_cast<size_t>(q);
      if (++index[uq] < problem.num_plans_of(q)) break;
      index[uq] = 0;
      ++q;
    }
    if (q == problem.num_queries()) break;
  }
  EXPECT_NEAR(result->cost, naive_best, 1e-9);
  EXPECT_NEAR(EvaluateCost(problem, result->solution), result->cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceProperty, ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------

TEST(GeneratorTest, RandomWorkloadIsValidAndSized) {
  Rng rng(5);
  RandomWorkloadOptions options;
  options.num_queries = 12;
  options.min_plans = 2;
  options.max_plans = 4;
  options.sharing_probability = 0.2;
  MqoProblem problem = GenerateRandomWorkload(options, &rng);
  EXPECT_TRUE(problem.Validate().ok());
  EXPECT_EQ(problem.num_queries(), 12);
  for (QueryId q = 0; q < problem.num_queries(); ++q) {
    EXPECT_GE(problem.num_plans_of(q), 2);
    EXPECT_LE(problem.num_plans_of(q), 4);
  }
}

TEST(GeneratorTest, RandomWorkloadIntegralValues) {
  Rng rng(6);
  RandomWorkloadOptions options;
  options.num_queries = 8;
  options.integral = true;
  options.sharing_probability = 0.5;
  MqoProblem problem = GenerateRandomWorkload(options, &rng);
  for (PlanId p = 0; p < problem.num_plans(); ++p) {
    EXPECT_DOUBLE_EQ(problem.plan_cost(p), std::round(problem.plan_cost(p)));
  }
  for (const Saving& s : problem.savings()) {
    EXPECT_DOUBLE_EQ(s.value, std::round(s.value));
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  RandomWorkloadOptions options;
  options.num_queries = 10;
  options.sharing_probability = 0.3;
  Rng rng1(77);
  Rng rng2(77);
  MqoProblem a = GenerateRandomWorkload(options, &rng1);
  MqoProblem b = GenerateRandomWorkload(options, &rng2);
  EXPECT_EQ(ToText(a), ToText(b));
}

TEST(GeneratorTest, ClusteredWorkloadRespectsClusterStructure) {
  Rng rng(9);
  ClusteredWorkloadOptions options;
  options.num_clusters = 3;
  options.queries_per_cluster = 2;
  options.plans_per_query = 2;
  options.intra_cluster_probability = 1.0;
  options.inter_cluster_probability = 0.0;
  MqoProblem problem = GenerateClusteredWorkload(options, &rng);
  EXPECT_EQ(problem.num_queries(), 6);
  for (const Saving& s : problem.savings()) {
    int cluster_a = problem.query_of(s.plan_a) / 2;
    int cluster_b = problem.query_of(s.plan_b) / 2;
    EXPECT_EQ(cluster_a, cluster_b);
  }
  EXPECT_GT(problem.num_savings(), 0);
}

TEST(GeneratorTest, ChainWorkloadLinksOnlyNeighbors) {
  Rng rng(10);
  ChainWorkloadOptions options;
  options.num_queries = 6;
  options.plans_per_query = 2;
  options.link_probability = 1.0;
  MqoProblem problem = GenerateChainWorkload(options, &rng);
  for (const Saving& s : problem.savings()) {
    int qa = problem.query_of(s.plan_a);
    int qb = problem.query_of(s.plan_b);
    EXPECT_EQ(std::abs(qa - qb), 1);
  }
  // Full link probability: every adjacent plan pair shares.
  EXPECT_EQ(problem.num_savings(), 5 * 2 * 2);
}

// --------------------------------------------------------------------
// Clustering
// --------------------------------------------------------------------

TEST(ClusteringTest, ConnectedComponentsOfChain) {
  Rng rng(11);
  ChainWorkloadOptions options;
  options.num_queries = 5;
  options.link_probability = 1.0;
  MqoProblem problem = GenerateChainWorkload(options, &rng);
  QueryClustering clustering = ClusterByConnectedComponents(problem);
  EXPECT_EQ(clustering.num_clusters(), 1);
  EXPECT_EQ(CountCrossClusterSavings(problem, clustering), 0);
}

TEST(ClusteringTest, IsolatedQueriesAreSingletons) {
  MqoProblem problem;
  problem.AddQuery({1.0});
  problem.AddQuery({2.0});
  problem.AddQuery({3.0});
  QueryClustering clustering = ClusterByConnectedComponents(problem);
  EXPECT_EQ(clustering.num_clusters(), 3);
}

TEST(ClusteringTest, TwoComponents) {
  MqoProblem problem;
  problem.AddQuery({1.0, 2.0});
  problem.AddQuery({1.0, 2.0});
  problem.AddQuery({1.0, 2.0});
  problem.AddQuery({1.0, 2.0});
  ASSERT_TRUE(problem.AddSaving(0, 2, 1.0).ok());  // queries 0-1
  ASSERT_TRUE(problem.AddSaving(4, 6, 1.0).ok());  // queries 2-3
  QueryClustering clustering = ClusterByConnectedComponents(problem);
  EXPECT_EQ(clustering.num_clusters(), 2);
  EXPECT_EQ(clustering.cluster_of[0], clustering.cluster_of[1]);
  EXPECT_EQ(clustering.cluster_of[2], clustering.cluster_of[3]);
  EXPECT_NE(clustering.cluster_of[0], clustering.cluster_of[2]);
}

TEST(ClusteringTest, SizeCapSplitsComponents) {
  Rng rng(12);
  ChainWorkloadOptions options;
  options.num_queries = 9;
  options.link_probability = 1.0;
  MqoProblem problem = GenerateChainWorkload(options, &rng);
  QueryClustering clustering = ClusterWithSizeCap(problem, 3);
  EXPECT_EQ(clustering.num_clusters(), 3);
  for (const auto& members : clustering.members) {
    EXPECT_LE(members.size(), 3u);
  }
  // Every query appears in exactly one cluster.
  std::vector<int> seen(9, 0);
  for (const auto& members : clustering.members) {
    for (QueryId q : members) seen[static_cast<size_t>(q)]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

// --------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------

TEST(SerializationTest, RoundTripPreservesEverything) {
  Rng rng(13);
  RandomWorkloadOptions options;
  options.num_queries = 7;
  options.min_plans = 1;
  options.max_plans = 3;
  options.sharing_probability = 0.4;
  options.integral = false;
  MqoProblem problem = GenerateRandomWorkload(options, &rng);
  auto restored = FromText(ToText(problem));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(ToText(problem), ToText(*restored));
}

TEST(SerializationTest, RejectsMissingHeader) {
  EXPECT_FALSE(FromText("query 1 2\nend\n").ok());
}

TEST(SerializationTest, RejectsMissingEnd) {
  EXPECT_FALSE(FromText("mqo v1\nquery 1 2\n").ok());
}

TEST(SerializationTest, RejectsBadCost) {
  EXPECT_FALSE(FromText("mqo v1\nquery abc\nend\n").ok());
}

TEST(SerializationTest, RejectsBadSaving) {
  // Saving between plans of the same query.
  EXPECT_FALSE(FromText("mqo v1\nquery 1 2\nsaving 0 1 3\nend\n").ok());
}

TEST(SerializationTest, IgnoresCommentsAndBlankLines) {
  auto result =
      FromText("# workload\nmqo v1\n\nquery 1 2\nquery 3 4\n# done\nend\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_queries(), 2);
}

TEST(SerializationTest, FileRoundTrip) {
  MqoProblem problem = PaperExample();
  std::string path = ::testing::TempDir() + "/mqo_roundtrip.txt";
  ASSERT_TRUE(SaveToFile(problem, path).ok());
  auto loaded = LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(ToText(problem), ToText(*loaded));
}

TEST(SerializationTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadFromFile("/nonexistent/path/x.mqo").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace mqo
}  // namespace qmqo
