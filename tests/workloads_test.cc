// Tests for the combinatorial workloads layer: planted-instance
// generators (the planted optimum must be *provable* from the generated
// structure), QUBO formulation identities against graph-native
// objectives, deterministic decode/repair, exact planted-optimum
// recovery by brute force, end-to-end recovery through the resilient
// ladder (SQA/SA + descent), 1/2/4-thread determinism, wire-format
// round-trips with hostile payloads, and service integration including
// the unknown-request-tag rejection path. Chaos-labeled: every seed
// below forks from QMQO_CHAOS_SEED.

#include "workloads/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "chimera/topology.h"
#include "harness/resilient_solver.h"
#include "qubo/brute_force.h"
#include "service/solve_service.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"
#include "workloads/coloring.h"
#include "workloads/graph.h"
#include "workloads/max_clique.h"
#include "workloads/max_cut.h"
#include "workloads/serialization.h"

namespace qmqo {
namespace workloads {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("QMQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

std::vector<uint8_t> RandomBits(int n, Rng* rng) {
  std::vector<uint8_t> bits(static_cast<size_t>(n));
  for (uint8_t& bit : bits) bit = rng->Bernoulli(0.5) ? 1 : 0;
  return bits;
}

// --------------------------------------------------------------------
// Graph container
// --------------------------------------------------------------------

TEST(GraphTest, RejectsMalformedEdges) {
  Graph graph(4);
  EXPECT_FALSE(graph.AddEdge(1, 1).ok());        // self-loop
  EXPECT_FALSE(graph.AddEdge(-1, 2).ok());       // out of range
  EXPECT_FALSE(graph.AddEdge(0, 4).ok());        // out of range
  EXPECT_FALSE(graph.AddEdge(0, 1, 0.0).ok());   // non-positive weight
  EXPECT_FALSE(graph.AddEdge(0, 1, -2.0).ok());  // negative weight
  EXPECT_FALSE(graph.AddEdge(0, 1, 1.0 / 0.0).ok());  // non-finite
  ASSERT_TRUE(graph.AddEdge(0, 1).ok());
  EXPECT_FALSE(graph.AddEdge(1, 0).ok());  // duplicate (either order)
  EXPECT_EQ(graph.num_edges(), 1);
}

TEST(GraphTest, CanonicalStorageAndLookup) {
  Graph graph(5);
  ASSERT_TRUE(graph.AddEdge(3, 1, 2.5).ok());
  ASSERT_TRUE(graph.AddEdge(0, 4).ok());
  EXPECT_TRUE(graph.HasEdge(1, 3));
  EXPECT_TRUE(graph.HasEdge(3, 1));
  EXPECT_FALSE(graph.HasEdge(0, 1));
  EXPECT_DOUBLE_EQ(graph.total_weight(), 3.5);
  for (const Edge& e : graph.edges()) EXPECT_LT(e.u, e.v);
  EXPECT_EQ(graph.degree(1), 1);
  EXPECT_EQ(graph.neighbors(1)[0], 3);
}

// --------------------------------------------------------------------
// Planted-instance generators: the optimum must be provable from the
// generated structure, not just asserted by the generator.
// --------------------------------------------------------------------

TEST(GeneratorTest, PlantedCliqueIsProvablyMaximum) {
  const uint64_t seed = ChaosSeed();
  for (uint64_t salt = 0; salt < 4; ++salt) {
    auto instance = PlantedCliqueGraph(24, 5, 0.3, seed + salt);
    ASSERT_TRUE(instance.ok()) << instance.status().ToString();
    const Graph& graph = instance->graph;
    const std::vector<int>& clique = instance->clique;
    ASSERT_EQ(clique.size(), 5u);
    // The planted set is a clique.
    for (size_t a = 0; a < clique.size(); ++a) {
      for (size_t b = a + 1; b < clique.size(); ++b) {
        EXPECT_TRUE(graph.HasEdge(clique[a], clique[b]));
      }
    }
    // Every vertex outside it has degree <= k-1, so a clique through any
    // outsider has size <= degree+1 <= k: the planted clique is maximum.
    for (int v = 0; v < graph.num_nodes(); ++v) {
      if (std::find(clique.begin(), clique.end(), v) != clique.end()) {
        continue;
      }
      EXPECT_LE(graph.degree(v), 4) << "vertex " << v;
    }
  }
}

TEST(GeneratorTest, PlantedCutIsBipartiteSoCutEqualsTotalWeight) {
  auto instance = PlantedCutGraph(20, 0.4, 5.0, ChaosSeed());
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  const Graph& graph = instance->graph;
  ASSERT_EQ(instance->side.size(), 20u);
  EXPECT_GT(graph.num_edges(), 0);
  // Every edge crosses the planted partition, so the planted cut weight
  // equals total_weight() — an upper bound for any cut.
  for (const Edge& e : graph.edges()) {
    EXPECT_NE(instance->side[static_cast<size_t>(e.u)],
              instance->side[static_cast<size_t>(e.v)]);
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 5.0);
  }
}

TEST(GeneratorTest, KColorableGraphHasProperColoringAndKClique) {
  auto instance = KColorableGraph(18, 3, 0.4, ChaosSeed());
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  const Graph& graph = instance->graph;
  ASSERT_EQ(instance->color.size(), 18u);
  // The planted assignment is proper (k-partite construction).
  for (const Edge& e : graph.edges()) {
    EXPECT_NE(instance->color[static_cast<size_t>(e.u)],
              instance->color[static_cast<size_t>(e.v)]);
  }
  // A k-clique exists (so fewer than k colors cannot suffice): the
  // generator wires one vertex per group into a clique. Find any k
  // mutually adjacent vertices among the first k*2 — cheaper: trust but
  // verify via the generator's contract that nodes 0..k-1 span distinct
  // groups and are mutually adjacent.
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      EXPECT_TRUE(graph.HasEdge(a, b)) << a << "," << b;
    }
  }
}

TEST(GeneratorTest, GeneratorsAreDeterministicInSeed) {
  const uint64_t seed = ChaosSeed() + 17;
  auto first = PlantedCliqueGraph(16, 4, 0.5, seed);
  auto second = PlantedCliqueGraph(16, 4, 0.5, seed);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->clique, second->clique);
  ASSERT_EQ(first->graph.num_edges(), second->graph.num_edges());
  for (int i = 0; i < first->graph.num_edges(); ++i) {
    EXPECT_EQ(first->graph.edges()[static_cast<size_t>(i)].u,
              second->graph.edges()[static_cast<size_t>(i)].u);
    EXPECT_EQ(first->graph.edges()[static_cast<size_t>(i)].v,
              second->graph.edges()[static_cast<size_t>(i)].v);
  }
}

TEST(GeneratorTest, RejectsDegenerateParameters) {
  EXPECT_FALSE(PlantedCliqueGraph(4, 1, 0.5, 1).ok());   // clique < 2
  EXPECT_FALSE(PlantedCliqueGraph(4, 5, 0.5, 1).ok());   // clique > n
  EXPECT_FALSE(PlantedCliqueGraph(4, 3, 1.5, 1).ok());   // bad prob
  EXPECT_FALSE(PlantedCutGraph(1, 0.5, 2.0, 1).ok());    // n < 2
  EXPECT_FALSE(PlantedCutGraph(4, 0.5, 0.5, 1).ok());    // weight < 1
  EXPECT_FALSE(KColorableGraph(4, 1, 0.5, 1).ok());      // k < 2
  EXPECT_FALSE(KColorableGraph(4, 5, 0.5, 1).ok());      // k > n
}

// --------------------------------------------------------------------
// Formulation identities: QUBO energy vs graph-native objective.
// --------------------------------------------------------------------

TEST(FormulationTest, MaxCutEnergyIsMinusCutWeightForAnyBits) {
  auto instance = PlantedCutGraph(12, 0.5, 3.0, ChaosSeed() + 3);
  ASSERT_TRUE(instance.ok());
  auto workload = MaxCutWorkload::Create(instance->graph,
                                         instance->graph.total_weight());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  const MaxCutWorkload& cut = **workload;
  Rng rng(ChaosSeed() + 4);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<uint8_t> bits = RandomBits(cut.qubo().num_vars(), &rng);
    std::vector<int> side(bits.begin(), bits.end());
    EXPECT_NEAR(cut.qubo().Energy(bits) + cut.energy_offset(),
                -cut.CutWeight(side), 1e-9);
  }
}

TEST(FormulationTest, CliqueEnergyCountsRewardAndConflicts) {
  auto instance = PlantedCliqueGraph(14, 4, 0.4, ChaosSeed() + 5);
  ASSERT_TRUE(instance.ok());
  auto workload = MaxCliqueWorkload::Create(instance->graph, 4);
  ASSERT_TRUE(workload.ok());
  const MaxCliqueWorkload& clique = **workload;
  const Graph& graph = clique.graph();
  Rng rng(ChaosSeed() + 6);
  for (int trial = 0; trial < 32; ++trial) {
    std::vector<uint8_t> bits = RandomBits(graph.num_nodes(), &rng);
    double selected = 0.0;
    double non_edges = 0.0;
    for (int u = 0; u < graph.num_nodes(); ++u) {
      if (!bits[static_cast<size_t>(u)]) continue;
      selected += 1.0;
      for (int v = u + 1; v < graph.num_nodes(); ++v) {
        if (bits[static_cast<size_t>(v)] && !graph.HasEdge(u, v)) {
          non_edges += 1.0;
        }
      }
    }
    // E(x) = -A*|S| + B*(non-edges inside S), A=1, B=2.
    EXPECT_NEAR(clique.qubo().Energy(bits), -selected + 2.0 * non_edges,
                1e-9);
  }
}

TEST(FormulationTest, ColoringEnergyIsZeroExactlyOnProperOneHotColorings) {
  auto instance = KColorableGraph(10, 3, 0.5, ChaosSeed() + 7);
  ASSERT_TRUE(instance.ok());
  auto workload = ColoringWorkload::Create(instance->graph, 3);
  ASSERT_TRUE(workload.ok());
  const ColoringWorkload& coloring = **workload;
  // One-hot encode the planted proper coloring: energy + offset == 0.
  std::vector<uint8_t> bits(
      static_cast<size_t>(coloring.qubo().num_vars()), 0);
  for (int v = 0; v < instance->graph.num_nodes(); ++v) {
    bits[static_cast<size_t>(
        v * 3 + instance->color[static_cast<size_t>(v)])] = 1;
  }
  EXPECT_NEAR(coloring.qubo().Energy(bits) + coloring.energy_offset(), 0.0,
              1e-9);
  // Breaking one edge's colors costs exactly B (= 1) conflict.
  const Edge& e = instance->graph.edges().front();
  std::vector<uint8_t> broken = bits;
  broken[static_cast<size_t>(
      e.u * 3 + instance->color[static_cast<size_t>(e.u)])] = 0;
  broken[static_cast<size_t>(
      e.u * 3 + instance->color[static_cast<size_t>(e.v)])] = 1;
  const double broken_energy =
      coloring.qubo().Energy(broken) + coloring.energy_offset();
  EXPECT_GT(broken_energy, 0.0);
}

// --------------------------------------------------------------------
// Decode / repair: every bitstring becomes a valid domain answer.
// --------------------------------------------------------------------

TEST(DecodeTest, CliqueRepairAlwaysYieldsAClique) {
  auto workload = MaxCliqueWorkload::MakePlanted(16, 4, 0.4, ChaosSeed() + 8);
  ASSERT_TRUE(workload.ok());
  const MaxCliqueWorkload& clique = **workload;
  Rng rng(ChaosSeed() + 9);
  for (int trial = 0; trial < 16; ++trial) {
    WorkloadSolution solution =
        clique.Decode(RandomBits(clique.qubo().num_vars(), &rng));
    EXPECT_TRUE(solution.feasible);
    EXPECT_TRUE(clique.ValidateFeasible(solution).ok());
  }
  // Empty and oversized inputs are repaired too, never a crash.
  EXPECT_TRUE(clique.Decode({}).feasible);
  EXPECT_TRUE(
      clique.Decode(std::vector<uint8_t>(64, 1)).feasible);
}

TEST(DecodeTest, DecodeIsDeterministic) {
  auto workload = MaxCliqueWorkload::MakePlanted(16, 4, 0.4, ChaosSeed() + 8);
  ASSERT_TRUE(workload.ok());
  Rng rng(ChaosSeed() + 10);
  std::vector<uint8_t> bits = RandomBits((*workload)->qubo().num_vars(), &rng);
  WorkloadSolution a = (*workload)->Decode(bits);
  WorkloadSolution b = (*workload)->Decode(bits);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(DecodeTest, ColoringDecodeOfPlantedColoringIsFeasibleWithZeroGap) {
  auto instance = KColorableGraph(12, 3, 0.4, ChaosSeed() + 11);
  ASSERT_TRUE(instance.ok());
  auto workload = ColoringWorkload::Create(instance->graph, 3);
  ASSERT_TRUE(workload.ok());
  std::vector<uint8_t> bits(
      static_cast<size_t>((*workload)->qubo().num_vars()), 0);
  for (int v = 0; v < instance->graph.num_nodes(); ++v) {
    bits[static_cast<size_t>(
        v * 3 + instance->color[static_cast<size_t>(v)])] = 1;
  }
  WorkloadSolution solution = (*workload)->Decode(bits);
  EXPECT_TRUE(solution.feasible);
  EXPECT_TRUE((*workload)->ValidateFeasible(solution).ok());
  EXPECT_DOUBLE_EQ((*workload)->OptimalityGap(solution), 0.0);
}

TEST(DecodeTest, ValidationRejectsMalformedSolutions) {
  auto workload = MaxCliqueWorkload::MakePlanted(10, 3, 0.3, ChaosSeed());
  ASSERT_TRUE(workload.ok());
  WorkloadSolution bogus;
  bogus.labels = {1, 1};  // wrong length
  EXPECT_FALSE((*workload)->ValidateFeasible(bogus).ok());
  // A non-clique selection must be rejected even if labeled feasible.
  const Graph& graph = (*workload)->graph();
  WorkloadSolution fake;
  fake.labels.assign(static_cast<size_t>(graph.num_nodes()), 0);
  int picked = 0;
  for (int u = 0; u < graph.num_nodes() && picked < 2; ++u) {
    for (int v = u + 1; v < graph.num_nodes(); ++v) {
      if (!graph.HasEdge(u, v)) {
        fake.labels[static_cast<size_t>(u)] = 1;
        fake.labels[static_cast<size_t>(v)] = 1;
        fake.objective = 2.0;
        fake.feasible = true;
        picked = 2;
        break;
      }
    }
  }
  if (picked == 2) {
    EXPECT_FALSE((*workload)->ValidateFeasible(fake).ok());
  }
}

// --------------------------------------------------------------------
// Exact planted-optimum recovery (brute force on small instances): the
// formulation's ground state must BE the planted optimum.
// --------------------------------------------------------------------

TEST(ExactRecoveryTest, CliqueGroundStateIsPlantedClique) {
  auto workload = MaxCliqueWorkload::MakePlanted(12, 4, 0.3, ChaosSeed() + 12);
  ASSERT_TRUE(workload.ok());
  auto exact = qubo::SolveExhaustive((*workload)->qubo());
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  // Ground energy of the clique QUBO is exactly -A * omega(G) = -4.
  EXPECT_NEAR(exact->energy, -4.0, 1e-9);
  WorkloadSolution solution = (*workload)->Decode(exact->assignment);
  EXPECT_TRUE(solution.feasible);
  EXPECT_DOUBLE_EQ(solution.objective, 4.0);
  EXPECT_DOUBLE_EQ((*workload)->OptimalityGap(solution), 0.0);
}

TEST(ExactRecoveryTest, CutGroundStateAttainsTotalWeight) {
  auto instance = PlantedCutGraph(12, 0.5, 4.0, ChaosSeed() + 13);
  ASSERT_TRUE(instance.ok());
  auto workload = MaxCutWorkload::Create(instance->graph,
                                         instance->graph.total_weight());
  ASSERT_TRUE(workload.ok());
  auto exact = qubo::SolveExhaustive((*workload)->qubo());
  ASSERT_TRUE(exact.ok());
  // E(x) = -cut(x); the bipartite construction makes total weight
  // attainable, so the ground energy is exactly -total_weight.
  EXPECT_NEAR(exact->energy, -instance->graph.total_weight(), 1e-9);
  WorkloadSolution solution = (*workload)->Decode(exact->assignment);
  EXPECT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.objective, instance->graph.total_weight(), 1e-9);
  EXPECT_NEAR((*workload)->OptimalityGap(solution), 0.0, 1e-9);
}

TEST(ExactRecoveryTest, ColoringGroundStateIsConflictFree) {
  auto workload = ColoringWorkload::MakePlanted(8, 2, 0.4, ChaosSeed() + 14);
  ASSERT_TRUE(workload.ok());
  ASSERT_LE((*workload)->qubo().num_vars(), 16);
  auto exact = qubo::SolveExhaustive((*workload)->qubo());
  ASSERT_TRUE(exact.ok());
  // Proper coloring <=> E + offset == 0, and the instance is 2-colorable.
  EXPECT_NEAR(exact->energy + (*workload)->energy_offset(), 0.0, 1e-9);
  WorkloadSolution solution = (*workload)->Decode(exact->assignment);
  EXPECT_TRUE(solution.feasible);
  EXPECT_DOUBLE_EQ(solution.objective, 0.0);
}

// --------------------------------------------------------------------
// End-to-end through the resilient ladder (SolveQubo): SQA answers with
// the device rung gated, the decoded answer is feasible, and the planted
// optimum is recovered on these instance sizes.
// --------------------------------------------------------------------

harness::SolvePolicy LadderPolicy() {
  harness::SolvePolicy policy;
  policy.seed = ChaosSeed();
  policy.max_attempts_per_backend = 1;
  policy.sqa_reads = 8;
  policy.sqa_slices = 6;
  policy.sqa_sweeps = 64;
  policy.sa_reads = 16;
  policy.sa_sweeps = 128;
  return policy;
}

TEST(LadderTest, SolveQuboGatesDeviceAndRecoversPlantedOptima) {
  std::vector<std::shared_ptr<Workload>> workloads;
  {
    auto clique =
        MaxCliqueWorkload::MakePlanted(18, 5, 0.35, ChaosSeed() + 20);
    ASSERT_TRUE(clique.ok());
    workloads.push_back(*clique);
    auto cut_instance = PlantedCutGraph(18, 0.4, 3.0, ChaosSeed() + 21);
    ASSERT_TRUE(cut_instance.ok());
    auto cut = MaxCutWorkload::Create(cut_instance->graph,
                                      cut_instance->graph.total_weight());
    ASSERT_TRUE(cut.ok());
    workloads.push_back(*cut);
    auto coloring =
        ColoringWorkload::MakePlanted(15, 3, 0.4, ChaosSeed() + 22);
    ASSERT_TRUE(coloring.ok());
    workloads.push_back(*coloring);
  }
  harness::ResilientSolver solver(LadderPolicy());
  harness::QuantumMqoOptions options;
  for (const auto& workload : workloads) {
    harness::SolveReport report = solver.SolveQubo(workload->qubo(), options);
    ASSERT_TRUE(report.ok) << workload->name() << ": "
                           << report.FailureChain();
    // The device rung was gated with a typed skip, not attempted.
    ASSERT_FALSE(report.attempts.empty());
    EXPECT_EQ(report.attempts.front().backend, harness::SolveBackend::kDevice);
    EXPECT_EQ(report.attempts.front().attempt, 0);
    EXPECT_EQ(report.attempts.front().status.code(),
              StatusCode::kUnimplemented);
    EXPECT_EQ(report.backend, harness::SolveBackend::kSqa);
    EXPECT_EQ(static_cast<int>(report.qubo_assignment.size()),
              workload->qubo().num_vars());
    WorkloadSolution solution = workload->Decode(report.qubo_assignment);
    EXPECT_TRUE(solution.feasible) << workload->name();
    EXPECT_TRUE(workload->ValidateFeasible(solution).ok())
        << workload->name();
    EXPECT_NEAR(workload->OptimalityGap(solution), 0.0, 1e-9)
        << workload->name() << " objective " << solution.objective
        << " vs planted " << workload->known_optimum();
  }
}

TEST(LadderTest, SolveQuboIsBitIdenticalAcrossThreadCounts) {
  auto workload = MaxCliqueWorkload::MakePlanted(20, 5, 0.3, ChaosSeed() + 23);
  ASSERT_TRUE(workload.ok());
  harness::ResilientSolver solver(LadderPolicy());
  std::vector<uint8_t> serial_assignment;
  double serial_energy = 0.0;
  for (int threads : {1, 2, 4}) {
    harness::QuantumMqoOptions options;
    options.device.num_threads = threads;
    harness::SolveReport report =
        solver.SolveQubo((*workload)->qubo(), options);
    ASSERT_TRUE(report.ok) << report.FailureChain();
    if (threads == 1) {
      serial_assignment = report.qubo_assignment;
      serial_energy = report.qubo_energy;
      continue;
    }
    EXPECT_EQ(report.qubo_assignment, serial_assignment)
        << "threads=" << threads;
    EXPECT_EQ(report.qubo_energy, serial_energy) << "threads=" << threads;
  }
}

TEST(LadderTest, ChaosFaultsDegradeToGreedyWhichStillAnswers) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("solve.sqa", always);
  faults.Arm("solve.sa", always);

  harness::SolvePolicy policy = LadderPolicy();
  policy.faults = &faults;
  auto workload = MaxCliqueWorkload::MakePlanted(16, 4, 0.3, ChaosSeed() + 24);
  ASSERT_TRUE(workload.ok());
  harness::QuantumMqoOptions options;
  harness::SolveReport report =
      harness::ResilientSolver(policy).SolveQubo((*workload)->qubo(), options);
  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_EQ(report.backend, harness::SolveBackend::kGreedy);
  EXPECT_GT(report.faults_observed, 0);
  WorkloadSolution solution = (*workload)->Decode(report.qubo_assignment);
  EXPECT_TRUE(solution.feasible);
  EXPECT_TRUE((*workload)->ValidateFeasible(solution).ok());
}

// --------------------------------------------------------------------
// Wire format: round-trips and hostile payloads.
// --------------------------------------------------------------------

TEST(SerializationTest, RoundTripsEveryKind) {
  auto clique = MaxCliqueWorkload::MakePlanted(10, 3, 0.4, ChaosSeed() + 30);
  ASSERT_TRUE(clique.ok());
  auto cut_instance = PlantedCutGraph(8, 0.6, 2.5, ChaosSeed() + 31);
  ASSERT_TRUE(cut_instance.ok());
  auto cut = MaxCutWorkload::Create(cut_instance->graph,
                                    cut_instance->graph.total_weight());
  ASSERT_TRUE(cut.ok());
  auto coloring = ColoringWorkload::MakePlanted(9, 3, 0.4, ChaosSeed() + 32);
  ASSERT_TRUE(coloring.ok());
  const std::shared_ptr<Workload> all[] = {*clique, *cut, *coloring};
  for (const auto& original : all) {
    const std::string text = ToText(SpecOf(*original));
    Result<WorkloadSpec> spec = FromText(text);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString() << "\n" << text;
    Result<std::shared_ptr<Workload>> rebuilt = MakeWorkload(*spec);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ((*rebuilt)->kind(), original->kind());
    EXPECT_EQ((*rebuilt)->qubo().num_vars(), original->qubo().num_vars());
    EXPECT_DOUBLE_EQ((*rebuilt)->known_optimum(), original->known_optimum());
    EXPECT_EQ((*rebuilt)->graph().num_edges(), original->graph().num_edges());
    // The rebuilt formulation is numerically identical: equal energies on
    // a probe assignment.
    Rng rng(ChaosSeed() + 33);
    std::vector<uint8_t> bits =
        RandomBits(original->qubo().num_vars(), &rng);
    EXPECT_DOUBLE_EQ((*rebuilt)->qubo().Energy(bits),
                     original->qubo().Energy(bits));
  }
}

TEST(SerializationTest, HostilePayloadsAreTypedRejections) {
  const char* hostile[] = {
      "",                                       // empty
      "workload v2\nend\n",                     // wrong header version
      "workload v1\nend\n",                     // missing type/nodes
      "workload v1\ntype frobnicate\nnodes 4\nend\n",  // unknown type
      "workload v1\ntype max_cut\nnodes 0\nend\n",     // zero nodes
      "workload v1\ntype max_cut\nnodes 99999999\nend\n",  // over cap
      "workload v1\ntype max_cut\nnodes 4\nedge 0 9\nend\n",   // range
      "workload v1\ntype max_cut\nnodes 4\nedge 0 0\nend\n",   // loop
      "workload v1\ntype max_cut\nnodes 4\nedge 0 1 nan\nend\n",
      "workload v1\ntype max_cut\nnodes 4\nedge 0 1 1e999\nend\n",
      "workload v1\ntype max_cut\nnodes 4\nedge a b\nend\n",
      "workload v1\ntype max_cut\nnodes 4\ncolors 2\nend\n",  // colors!=ok
      "workload v1\ntype coloring\nnodes 4\nend\n",  // coloring w/o colors
      "workload v1\ntype max_cut\nnodes 4\noptimum inf\nend\n",
      "workload v1\ntype max_cut\nnodes 4\nbogus 1\nend\n",
      "workload v1\ntype max_cut\nnodes 4\n",  // missing end
      "workload v1\ntype coloring\nnodes 1000000\ncolors 1024\nend\n",
  };
  for (const char* payload : hostile) {
    Result<WorkloadSpec> parsed = FromText(payload);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << payload;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << payload;
    }
  }
  // Clique optimum must be an integer clique size.
  Result<WorkloadSpec> bad_opt = FromText(
      "workload v1\ntype max_clique\nnodes 4\noptimum 2.5\n"
      "edge 0 1\nend\n");
  ASSERT_TRUE(bad_opt.ok());
  EXPECT_FALSE(MakeWorkload(*bad_opt).ok());
}

TEST(SerializationTest, CommentsAndBlankLinesAreIgnored) {
  Result<WorkloadSpec> spec = FromText(
      "# a comment\n\nworkload v1\ntype max_cut\n# another\nnodes 3\n"
      "edge 0 1 2.0\nedge 1 2\nend\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->graph.num_edges(), 2);
  EXPECT_DOUBLE_EQ(spec->graph.total_weight(), 3.0);
}

// --------------------------------------------------------------------
// Service integration: workload requests as first-class request types,
// and the unknown-tag rejection path (a satellite bugfix: unknown tags
// must be typed InvalidArgument, counted, and never parsed as mqo).
// --------------------------------------------------------------------

service::ServiceOptions WorkloadServiceOptions(
    const chimera::ChimeraGraph* graph) {
  service::ServiceOptions options;
  options.graph = graph;
  options.num_threads = 1;
  options.policy = LadderPolicy();
  return options;
}

TEST(ServiceWorkloadTest, SubmitTextRoutesWorkloadsThroughTheLadder) {
  chimera::ChimeraGraph graph(4, 4, 4);
  service::SolveService service(WorkloadServiceOptions(&graph));
  auto clique = MaxCliqueWorkload::MakePlanted(14, 4, 0.35, ChaosSeed() + 40);
  ASSERT_TRUE(clique.ok());
  Result<uint64_t> id = service.SubmitText(ToText(SpecOf(**clique)));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(service.DrainAll(), 1);
  ASSERT_EQ(service.outcomes().size(), 1u);
  const service::SolveOutcome& outcome = service.outcomes().front();
  ASSERT_TRUE(outcome.status.ok()) << outcome.detail;
  ASSERT_NE(outcome.workload, nullptr);
  EXPECT_EQ(outcome.workload->kind(), WorkloadKind::kMaxClique);
  EXPECT_TRUE(outcome.workload_solution.feasible);
  EXPECT_TRUE(
      outcome.workload->ValidateFeasible(outcome.workload_solution).ok());
  EXPECT_NEAR(outcome.workload_gap, 0.0, 1e-9);
  // Workload requests enter past the device rung (no embedding exists).
  EXPECT_GE(outcome.entry_rung, 1);
  EXPECT_NE(outcome.backend, harness::SolveBackend::kDevice);
}

TEST(ServiceWorkloadTest, UnknownRequestTagIsTypedRejectionWithCounter) {
  chimera::ChimeraGraph graph(4, 4, 4);
  service::SolveService service(WorkloadServiceOptions(&graph));
  const char* hostile[] = {
      "frobnicate v1\nend\n",
      "workloadx v1\nend\n",
      "\x01\x02\x03 binary garbage",
      "   \n# only comments\n",
      "mqoo v1\n",
  };
  int64_t expected_invalid = 0;
  for (const char* payload : hostile) {
    Result<uint64_t> id = service.SubmitText(payload);
    ASSERT_FALSE(id.ok()) << "accepted: " << payload;
    EXPECT_EQ(id.status().code(), StatusCode::kInvalidArgument) << payload;
    ++expected_invalid;
    EXPECT_EQ(service.stats().rejected_invalid, expected_invalid) << payload;
  }
  // Nothing was enqueued; the queue never saw the hostile payloads.
  EXPECT_TRUE(service.queue().empty());
  EXPECT_EQ(service.stats().accepted, 0);
  // An oversized payload is rejected before any parsing.
  std::string oversized(size_t{17} << 20, 'x');
  Result<uint64_t> big = service.SubmitText(oversized);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServiceWorkloadTest, MixedMqoAndWorkloadRoundsAreDeterministic) {
  auto cut_instance = PlantedCutGraph(12, 0.5, 2.0, ChaosSeed() + 41);
  ASSERT_TRUE(cut_instance.ok());
  auto cut = MaxCutWorkload::Create(cut_instance->graph,
                                    cut_instance->graph.total_weight());
  ASSERT_TRUE(cut.ok());
  auto coloring = ColoringWorkload::MakePlanted(10, 2, 0.4, ChaosSeed() + 42);
  ASSERT_TRUE(coloring.ok());

  std::vector<std::vector<int>> labels_by_threads;
  std::vector<double> costs_by_threads;
  for (int threads : {1, 2, 4}) {
    chimera::ChimeraGraph graph(4, 4, 4);
    service::ServiceOptions options = WorkloadServiceOptions(&graph);
    options.num_threads = threads;
    service::SolveService service(options);
    ASSERT_TRUE(service.SubmitWorkload(*cut).ok());
    ASSERT_TRUE(service.SubmitWorkload(*coloring).ok());
    service.DrainAll();
    ASSERT_EQ(service.outcomes().size(), 2u);
    std::vector<int> labels;
    double cost_sum = 0.0;
    for (const service::SolveOutcome& outcome : service.outcomes()) {
      ASSERT_TRUE(outcome.status.ok()) << outcome.detail;
      labels.insert(labels.end(), outcome.workload_solution.labels.begin(),
                    outcome.workload_solution.labels.end());
      cost_sum += outcome.cost;
    }
    labels_by_threads.push_back(std::move(labels));
    costs_by_threads.push_back(cost_sum);
  }
  EXPECT_EQ(labels_by_threads[0], labels_by_threads[1]);
  EXPECT_EQ(labels_by_threads[0], labels_by_threads[2]);
  EXPECT_EQ(costs_by_threads[0], costs_by_threads[1]);
  EXPECT_EQ(costs_by_threads[0], costs_by_threads[2]);
}

TEST(ServiceWorkloadTest, WorkloadAcceptedCounterByKind) {
  chimera::ChimeraGraph graph(4, 4, 4);
  service::SolveService service(WorkloadServiceOptions(&graph));
  auto cut_instance = PlantedCutGraph(8, 0.5, 2.0, ChaosSeed() + 43);
  ASSERT_TRUE(cut_instance.ok());
  auto cut = MaxCutWorkload::Create(cut_instance->graph,
                                    cut_instance->graph.total_weight());
  ASSERT_TRUE(cut.ok());
  ASSERT_TRUE(service.SubmitWorkload(*cut).ok());
  ASSERT_TRUE(service.SubmitWorkload(*cut).ok());
  const std::string prometheus = service.metrics().PrometheusText();
  EXPECT_NE(prometheus.find(
                "qmqo_service_workload_accepted_total{kind=\"max_cut\"} 2"),
            std::string::npos)
      << prometheus;
  // Null workloads are invalid, not a crash.
  Result<uint64_t> null_submit = service.SubmitWorkload(nullptr);
  EXPECT_FALSE(null_submit.ok());
  EXPECT_EQ(null_submit.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace workloads
}  // namespace qmqo
