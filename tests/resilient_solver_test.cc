// Tests for the resilient solve orchestrator: the degradation ladder under
// injected chaos, retry/backoff/deadline policy mechanics, and report
// determinism across thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "harness/resilient_solver.h"
#include "mqo/solution.h"
#include "util/fault.h"
#include "util/rng.h"

namespace qmqo {
namespace harness {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("QMQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

class ResilientSolverTest : public ::testing::Test {
 protected:
  ResilientSolverTest() : graph_(4, 4, 4) {
    Rng rng(ChaosSeed());
    PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 12;
    auto instance = GeneratePaperInstance(graph_, workload, &rng);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    instance_ = *std::move(instance);
  }

  QuantumMqoOptions SmallOptions() const {
    QuantumMqoOptions options;
    options.device.num_reads = 40;
    options.device.num_gauges = 4;
    options.device.sa_sweeps = 16;
    options.device.seed = ChaosSeed() + 7;
    return options;
  }

  SolvePolicy QuickPolicy() const {
    SolvePolicy policy;
    policy.seed = ChaosSeed();
    policy.max_attempts_per_backend = 2;
    policy.sqa_reads = 4;
    policy.sqa_slices = 4;
    policy.sqa_sweeps = 16;
    policy.sa_reads = 8;
    policy.sa_sweeps = 32;
    return policy;
  }

  SolveReport Run(const SolvePolicy& policy) const {
    return ResilientSolver(policy).Solve(instance_.problem,
                                         instance_.embedding, graph_,
                                         SmallOptions());
  }

  chimera::ChimeraGraph graph_;
  PaperInstance instance_{};
};

TEST_F(ResilientSolverTest, NoFaultRunAnswersOnDeviceFirstTry) {
  SolveReport report = Run(QuickPolicy());
  ASSERT_TRUE(report.ok) << report.final_status.ToString();
  EXPECT_EQ(report.backend, SolveBackend::kDevice);
  EXPECT_EQ(report.total_attempts, 1);
  EXPECT_EQ(report.retries, 0);
  EXPECT_EQ(report.fallbacks, 0);
  EXPECT_EQ(report.faults_observed, 0);
  EXPECT_FALSE(report.deadline_exhausted);
  EXPECT_TRUE(
      mqo::ValidateSolution(instance_.problem, report.solution).ok());

  // The no-fault resilient answer is exactly the plain pipeline's answer.
  auto plain = SolveQuantumMqo(instance_.problem, instance_.embedding,
                               graph_, SmallOptions());
  ASSERT_TRUE(plain.ok());
  double plain_cost = mqo::EvaluateCost(instance_.problem,
                                        plain->best_solution);
  EXPECT_EQ(report.cost, plain_cost);
}

// ISSUE acceptance scenario: the device fails 100% of its programming
// cycles; the orchestrator must still return a valid MQO solution through
// the degraded ladder, within the deadline, with the full failure chain
// visible in the report. No aborts, no exceptions.
TEST_F(ResilientSolverTest, DeviceDeadChaosStillYieldsValidSolution) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("device.program", always);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  policy.deadline_ms = 60000.0;
  SolveReport report = Run(policy);

  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_NE(report.backend, SolveBackend::kDevice);
  EXPECT_TRUE(
      mqo::ValidateSolution(instance_.problem, report.solution).ok());
  EXPECT_GT(report.faults_observed, 0);
  // Both device attempts failed before a degraded backend answered.
  EXPECT_GE(report.total_attempts, 3);
  EXPECT_EQ(report.retries, 1);
  EXPECT_GE(report.fallbacks, 1);
  // The failure chain narrates every device failure and the final success.
  std::string chain = report.FailureChain();
  EXPECT_NE(chain.find("device#1"), std::string::npos) << chain;
  EXPECT_NE(chain.find("device#2"), std::string::npos) << chain;
  EXPECT_NE(chain.find("OK (cost"), std::string::npos) << chain;
}

TEST_F(ResilientSolverTest, LadderBottomsOutAtGreedyWhenAllSamplersFail) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("solve.device", always);
  faults.Arm("solve.sqa", always);
  faults.Arm("solve.sa", always);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  SolveReport report = Run(policy);

  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_EQ(report.backend, SolveBackend::kGreedy);
  EXPECT_EQ(report.fallbacks, 3);
  EXPECT_TRUE(
      mqo::ValidateSolution(instance_.problem, report.solution).ok());
}

TEST_F(ResilientSolverTest, EveryBackendFaultedReportsLastError) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("solve.device", always);
  faults.Arm("solve.sqa", always);
  faults.Arm("solve.sa", always);
  faults.Arm("solve.greedy", always);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  SolveReport report = Run(policy);

  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.final_status.ok());
  EXPECT_EQ(report.total_attempts, 8);  // 2 attempts x 4 backends
  EXPECT_EQ(report.retries, 4);
}

TEST_F(ResilientSolverTest, FailFirstScheduleRecoversOnRetry) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec once;
  once.fail_first = 1;  // attempt 1 (key 0) fails; attempt 2 succeeds
  faults.Arm("solve.device", once);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  SolveReport report = Run(policy);

  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_EQ(report.backend, SolveBackend::kDevice);
  EXPECT_EQ(report.total_attempts, 2);
  EXPECT_EQ(report.retries, 1);
  EXPECT_EQ(report.fallbacks, 0);
  ASSERT_EQ(report.attempts.size(), 2u);
  EXPECT_FALSE(report.attempts[0].status.ok());
  EXPECT_TRUE(report.attempts[1].status.ok());
}

TEST_F(ResilientSolverTest, InjectedLatencyTimesOutTheAttempt) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec slow;
  slow.probability = 1.0;
  slow.latency_ms = 1e6;  // modeled, not slept
  faults.Arm("device.latency", slow);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  policy.attempt_timeout_ms = 1000.0;
  policy.max_attempts_per_backend = 1;
  SolveReport report = Run(policy);

  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_NE(report.backend, SolveBackend::kDevice);
  ASSERT_FALSE(report.attempts.empty());
  EXPECT_EQ(report.attempts[0].status.code(), StatusCode::kTimeout);
  EXPECT_GE(report.attempts[0].modeled_ms, 1e6);
}

TEST_F(ResilientSolverTest, ModeledLatencyExhaustsTheDeadline) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec slow;
  slow.probability = 1.0;
  slow.latency_ms = 1e6;
  faults.Arm("device.latency", slow);
  util::FaultSpec broken;
  broken.probability = 1.0;
  faults.Arm("device.program", broken);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  policy.deadline_ms = 2000.0;
  SolveReport report = Run(policy);

  // The first device attempt charges ~4e6 modeled ms, blowing the budget;
  // the orchestrator skips to the last resort, which always runs.
  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_EQ(report.backend, SolveBackend::kGreedy);
  EXPECT_TRUE(report.deadline_exhausted);
  EXPECT_GE(report.total_modeled_ms, 1e6);
  EXPECT_TRUE(
      mqo::ValidateSolution(instance_.problem, report.solution).ok());
}

TEST_F(ResilientSolverTest, BackoffIsModeledChargedAndJittered) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec always;
  always.probability = 1.0;
  faults.Arm("solve.device", always);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  policy.max_attempts_per_backend = 3;
  policy.backoff_initial_ms = 100.0;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter = 0.25;
  SolveReport report = Run(policy);

  ASSERT_TRUE(report.ok) << report.FailureChain();
  ASSERT_GE(report.attempts.size(), 3u);
  const SolveAttempt& first = report.attempts[0];
  const SolveAttempt& second = report.attempts[1];
  // Jittered exponential: within +-25% of 100 ms and 200 ms respectively.
  EXPECT_GE(first.backoff_ms, 75.0);
  EXPECT_LE(first.backoff_ms, 125.0);
  EXPECT_GE(second.backoff_ms, 150.0);
  EXPECT_LE(second.backoff_ms, 250.0);
  // The last attempt of the backend takes no backoff.
  EXPECT_DOUBLE_EQ(report.attempts[2].backoff_ms, 0.0);
  // Modeled, not slept: total wall time stays far below the backoff sum.
  EXPECT_LT(report.total_wall_ms, first.backoff_ms + second.backoff_ms);
  EXPECT_GE(report.total_modeled_ms, first.backoff_ms + second.backoff_ms);
}

TEST_F(ResilientSolverTest, ChainBreakStormTriggersFreshGaugeRetry) {
  // Chain breaks need multi-qubit chains: the l = 3 workload embeds one
  // plan per query on a 2-qubit chain (l = 2 chains are singletons).
  Rng rng(ChaosSeed() + 3);
  PaperWorkloadOptions workload;
  workload.plans_per_query = 3;
  workload.num_queries = 8;
  auto instance = GeneratePaperInstance(graph_, workload, &rng);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec storm;
  storm.probability = 1.0;
  storm.intensity = 16;
  faults.Arm("device.chain_break", storm);

  SolvePolicy policy = QuickPolicy();
  policy.faults = &faults;
  policy.chain_break_storm_fraction = 0.05;
  SolveReport report = ResilientSolver(policy).Solve(
      instance->problem, instance->embedding, graph_, SmallOptions());

  ASSERT_TRUE(report.ok) << report.FailureChain();
  // Every device read is corrupted, so both device attempts are classified
  // as storms and a degraded backend answers.
  ASSERT_GE(report.attempts.size(), 2u);
  EXPECT_NE(report.attempts[0].status.ToString().find("chain-break storm"),
            std::string::npos)
      << report.FailureChain();
  EXPECT_GE(report.attempts[0].broken_chain_fraction, 0.05);
  EXPECT_NE(report.backend, SolveBackend::kDevice);
}

TEST_F(ResilientSolverTest, CustomLadderIsHonored) {
  SolvePolicy policy = QuickPolicy();
  policy.ladder = {SolveBackend::kSa, SolveBackend::kGreedy};
  SolveReport report = Run(policy);
  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_EQ(report.backend, SolveBackend::kSa);
  EXPECT_TRUE(
      mqo::ValidateSolution(instance_.problem, report.solution).ok());
}

TEST_F(ResilientSolverTest, BackendNamesAreStable) {
  EXPECT_STREQ(SolveBackendName(SolveBackend::kDevice), "device");
  EXPECT_STREQ(SolveBackendName(SolveBackend::kSqa), "sqa");
  EXPECT_STREQ(SolveBackendName(SolveBackend::kSa), "sa");
  EXPECT_STREQ(SolveBackendName(SolveBackend::kGreedy), "greedy");
}

// Determinism: same seed + same fault config => identical SolveReport,
// including under parallel read fan-out (1/2/4 threads).
TEST_F(ResilientSolverTest, ReportDeterministicAcrossRunsAndThreadCounts) {
  auto run_chaos = [&](int threads) {
    util::FaultInjector faults(ChaosSeed());
    util::FaultSpec flaky;
    flaky.probability = 0.5;
    faults.Arm("device.program", flaky);
    util::FaultSpec dropout;
    dropout.probability = 0.2;
    faults.Arm("device.read_dropout", dropout);
    SolvePolicy policy = QuickPolicy();
    policy.faults = &faults;
    policy.backoff_initial_ms = 10.0;
    QuantumMqoOptions options = SmallOptions();
    options.device.num_threads = threads;
    return ResilientSolver(policy).Solve(instance_.problem,
                                         instance_.embedding, graph_,
                                         options);
  };

  SolveReport reference = run_chaos(1);
  ASSERT_TRUE(reference.ok) << reference.FailureChain();
  for (int threads : {1, 2, 4}) {
    SolveReport other = run_chaos(threads);
    EXPECT_EQ(reference.backend, other.backend) << threads;
    EXPECT_EQ(reference.total_attempts, other.total_attempts) << threads;
    EXPECT_EQ(reference.retries, other.retries) << threads;
    EXPECT_EQ(reference.fallbacks, other.fallbacks) << threads;
    EXPECT_EQ(reference.faults_observed, other.faults_observed) << threads;
    EXPECT_EQ(reference.cost, other.cost) << threads;
    EXPECT_EQ(reference.solution.selections(), other.solution.selections())
        << threads;
    ASSERT_EQ(reference.attempts.size(), other.attempts.size()) << threads;
    for (size_t i = 0; i < reference.attempts.size(); ++i) {
      EXPECT_EQ(reference.attempts[i].status.ToString(),
                other.attempts[i].status.ToString())
          << threads;
      EXPECT_EQ(reference.attempts[i].backoff_ms, other.attempts[i].backoff_ms)
          << threads;
    }
  }
}

// Seed-sweep property (driven by QMQO_CHAOS_SEED in CI): under random
// per-site fault probabilities derived from the seed, the orchestrator
// always returns a valid solution and never reports success with an error
// status (or vice versa).
TEST_F(ResilientSolverTest, RandomChaosAlwaysYieldsValidSolution) {
  Rng rng(ChaosSeed() * 7919 + 1);
  for (int trial = 0; trial < 3; ++trial) {
    util::FaultInjector faults(rng.Next());
    util::FaultSpec program;
    program.probability = rng.UniformReal(0.0, 1.0);
    faults.Arm("device.program", program);
    util::FaultSpec dropout;
    dropout.probability = rng.UniformReal(0.0, 0.5);
    faults.Arm("device.read_dropout", dropout);
    util::FaultSpec breaks;
    breaks.probability = rng.UniformReal(0.0, 0.5);
    breaks.intensity = rng.UniformInt(1, 8);
    faults.Arm("device.chain_break", breaks);

    SolvePolicy policy = QuickPolicy();
    policy.faults = &faults;
    policy.seed = rng.Next();
    SolveReport report = Run(policy);
    ASSERT_TRUE(report.ok) << report.FailureChain();
    EXPECT_TRUE(report.final_status.ok());
    EXPECT_TRUE(
        mqo::ValidateSolution(instance_.problem, report.solution).ok())
        << report.FailureChain();
    EXPECT_EQ(report.total_attempts,
              static_cast<int>(report.attempts.size()));
  }
}

}  // namespace
}  // namespace harness
}  // namespace qmqo
