// Tests for the physical mapping: weight distribution, chain strengths
// (Choi's bound), ground-state chain consistency, and unembedding.

#include <gtest/gtest.h>

#include "embedding/clique_in_cell.h"
#include "embedding/embedded_qubo.h"
#include "embedding/triad.h"
#include "qubo/brute_force.h"
#include "util/rng.h"

namespace qmqo {
namespace embedding {
namespace {

using chimera::ChimeraGraph;

/// Random logical QUBO over n fully-embeddable variables.
qubo::QuboProblem RandomLogical(int n, double density, Rng* rng) {
  qubo::QuboProblem problem(n);
  for (int i = 0; i < n; ++i) {
    problem.AddLinear(i, rng->UniformReal(-10.0, 10.0));
    for (int j = i + 1; j < n; ++j) {
      if (rng->Bernoulli(density)) {
        problem.AddQuadratic(i, j, rng->UniformReal(-10.0, 10.0));
      }
    }
  }
  return problem;
}

TEST(EmbeddedQuboTest, ConsistentAssignmentPreservesEnergy) {
  ChimeraGraph graph(2, 2, 4);
  Rng rng(1);
  qubo::QuboProblem logical = RandomLogical(6, 0.8, &rng);
  auto embedding = TriadEmbedder::Embed(6, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();

  for (int trial = 0; trial < 64; ++trial) {
    std::vector<uint8_t> logical_x(6);
    for (int i = 0; i < 6; ++i) logical_x[static_cast<size_t>(i)] = (trial >> i) & 1;
    std::vector<uint8_t> physical_x = embedded->EmbedAssignment(logical_x);
    EXPECT_TRUE(embedded->ChainsConsistent(physical_x));
    EXPECT_NEAR(embedded->physical().Energy(physical_x),
                logical.Energy(logical_x), 1e-9)
        << "trial " << trial;
  }
}

TEST(EmbeddedQuboTest, StrictUnembedRoundTrip) {
  ChimeraGraph graph(2, 2, 4);
  Rng rng(2);
  qubo::QuboProblem logical = RandomLogical(5, 0.6, &rng);
  auto embedding = TriadEmbedder::Embed(5, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok());
  std::vector<uint8_t> logical_x = {1, 0, 1, 1, 0};
  auto round_trip = embedded->UnembedStrict(embedded->EmbedAssignment(logical_x));
  ASSERT_TRUE(round_trip.ok());
  EXPECT_EQ(*round_trip, logical_x);
}

TEST(EmbeddedQuboTest, StrictUnembedRejectsBrokenChain) {
  ChimeraGraph graph(2, 2, 4);
  Rng rng(3);
  qubo::QuboProblem logical = RandomLogical(5, 0.6, &rng);
  auto embedding = TriadEmbedder::Embed(5, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok());
  std::vector<uint8_t> physical_x =
      embedded->EmbedAssignment({1, 1, 1, 1, 1});
  physical_x[0] ^= 1;  // break one chain
  EXPECT_FALSE(embedded->UnembedStrict(physical_x).ok());
  EXPECT_FALSE(embedded->ChainsConsistent(physical_x));
  EXPECT_GT(embedded->BrokenChainFraction(physical_x), 0.0);
}

TEST(EmbeddedQuboTest, MajorityVoteUnembedRepairsMinorityFlips) {
  ChimeraGraph graph(3, 3, 4);
  // K_9 on a 3x3 block: chains of length 4 — majority is meaningful.
  qubo::QuboProblem logical(9);
  for (int i = 0; i < 9; ++i) logical.AddLinear(i, -1.0);
  auto embedding = TriadEmbedder::Embed(9, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok());
  std::vector<uint8_t> physical_x =
      embedded->EmbedAssignment(std::vector<uint8_t>(9, 1));
  // Flip a single qubit of variable 0's chain: majority still says 1.
  int member = embedded->chain_members(0)[0];
  physical_x[static_cast<size_t>(member)] ^= 1;
  std::vector<uint8_t> decoded = embedded->Unembed(physical_x);
  EXPECT_EQ(decoded, std::vector<uint8_t>(9, 1));
}

TEST(EmbeddedQuboTest, ChainStrengthsArePositive) {
  ChimeraGraph graph(2, 2, 4);
  Rng rng(4);
  qubo::QuboProblem logical = RandomLogical(8, 0.7, &rng);
  auto embedding = TriadEmbedder::Embed(8, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok());
  for (int v = 0; v < 8; ++v) {
    EXPECT_GT(embedded->chain_strength(v), 0.0);
  }
}

TEST(EmbeddedQuboTest, UniformChainStrengthOption) {
  ChimeraGraph graph(2, 2, 4);
  Rng rng(5);
  qubo::QuboProblem logical = RandomLogical(8, 0.7, &rng);
  auto embedding = TriadEmbedder::Embed(8, graph);
  ASSERT_TRUE(embedding.ok());
  EmbeddedQuboOptions options;
  options.uniform_chain_strength = true;
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph, options);
  ASSERT_TRUE(embedded.ok());
  for (int v = 1; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(embedded->chain_strength(v),
                     embedded->chain_strength(0));
  }
}

TEST(EmbeddedQuboTest, RejectsBadOptions) {
  ChimeraGraph graph(2, 2, 4);
  qubo::QuboProblem logical(2);
  auto embedding = TriadEmbedder::Embed(2, graph);
  ASSERT_TRUE(embedding.ok());
  EmbeddedQuboOptions bad_eps;
  bad_eps.epsilon = 0.0;
  EXPECT_FALSE(EmbeddedQubo::Create(logical, *embedding, graph, bad_eps).ok());
  EmbeddedQuboOptions bad_scale;
  bad_scale.chain_strength_scale = -1.0;
  EXPECT_FALSE(
      EmbeddedQubo::Create(logical, *embedding, graph, bad_scale).ok());
}

TEST(EmbeddedQuboTest, CompactIndexRoundTrip) {
  ChimeraGraph graph(2, 2, 4);
  Rng rng(6);
  qubo::QuboProblem logical = RandomLogical(4, 0.5, &rng);
  auto embedding = TriadEmbedder::Embed(4, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok());
  EXPECT_EQ(embedded->num_physical_vars(), embedding->TotalQubits());
  for (int i = 0; i < embedded->num_physical_vars(); ++i) {
    EXPECT_EQ(embedded->compact_of(embedded->qubit_of(i)), i);
  }
}

// --------------------------------------------------------------------
// The headline guarantee: with Choi's chain strength, the physical ground
// state has consistent chains and decodes to the logical ground state.
// Verified by brute force on instances small enough to enumerate.
// --------------------------------------------------------------------

class GroundStateProperty : public ::testing::TestWithParam<int> {};

TEST_P(GroundStateProperty, PhysicalGroundStateDecodesLogicalOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 40);
  ChimeraGraph graph(2, 2, 4);
  int n = rng.UniformInt(3, 6);
  qubo::QuboProblem logical = RandomLogical(n, 0.8, &rng);
  auto embedding = TriadEmbedder::Embed(n, graph);
  ASSERT_TRUE(embedding.ok());
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph);
  ASSERT_TRUE(embedded.ok());
  ASSERT_LE(embedded->num_physical_vars(), 20);

  auto physical_ground = qubo::SolveExhaustive(embedded->physical());
  ASSERT_TRUE(physical_ground.ok());
  auto logical_ground = qubo::SolveExhaustive(logical);
  ASSERT_TRUE(logical_ground.ok());

  // Chains consistent at the physical ground state (Choi's guarantee)...
  EXPECT_TRUE(embedded->ChainsConsistent(physical_ground->assignment));
  // ...and the energies coincide.
  EXPECT_NEAR(physical_ground->energy, logical_ground->energy, 1e-9);
  // The decoded assignment achieves the logical optimum.
  std::vector<uint8_t> decoded = embedded->Unembed(physical_ground->assignment);
  EXPECT_NEAR(logical.Energy(decoded), logical_ground->energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroundStateProperty, ::testing::Range(0, 12));

// Ablation sanity: a deliberately weakened chain strength can break the
// guarantee, which is exactly what the chain-strength ablation bench
// demonstrates. Here we only require that weakening never *raises* the
// physical ground energy above the logical optimum (gadgets only add
// non-negative terms for consistent states).
class WeakChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(WeakChainProperty, WeakenedChainsLowerOrKeepGroundEnergy) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  ChimeraGraph graph(2, 2, 4);
  qubo::QuboProblem logical = RandomLogical(5, 0.9, &rng);
  auto embedding = TriadEmbedder::Embed(5, graph);
  ASSERT_TRUE(embedding.ok());
  EmbeddedQuboOptions weak;
  weak.chain_strength_scale = 0.05;
  auto embedded = EmbeddedQubo::Create(logical, *embedding, graph, weak);
  ASSERT_TRUE(embedded.ok());
  auto physical_ground = qubo::SolveExhaustive(embedded->physical());
  ASSERT_TRUE(physical_ground.ok());
  auto logical_ground = qubo::SolveExhaustive(logical);
  ASSERT_TRUE(logical_ground.ok());
  EXPECT_LE(physical_ground->energy, logical_ground->energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakChainProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace embedding
}  // namespace qmqo
