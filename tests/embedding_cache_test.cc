// Tests for the structure-keyed embedding cache: hit/miss semantics,
// bit-identity of re-weighted embeddings (problems, strengths, and device
// samples at any thread count), concurrent-access determinism, the LRU
// eviction bound, and the harness wiring.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "anneal/dwave_simulator.h"
#include "chimera/topology.h"
#include "embedding/embedding_cache.h"
#include "embedding/triad.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "harness/resilient_solver.h"
#include "util/fault.h"
#include "util/rng.h"

namespace qmqo {
namespace embedding {
namespace {

using chimera::ChimeraGraph;

/// Logical QUBO whose interaction *pattern* depends only on
/// `structure_seed` and whose coefficients depend only on `weight_seed` —
/// the cache must hit across weight seeds and miss across structure seeds.
qubo::QuboProblem MakeLogical(int n, uint64_t structure_seed,
                              uint64_t weight_seed) {
  Rng structure(structure_seed);
  Rng weights(weight_seed);
  qubo::QuboProblem problem(n);
  for (int i = 0; i < n; ++i) {
    problem.AddLinear(i, weights.UniformReal(-10.0, 10.0));
    for (int j = i + 1; j < n; ++j) {
      if (structure.Bernoulli(0.6)) {
        double w = 0.0;
        while (w == 0.0) w = weights.UniformReal(-10.0, 10.0);
        problem.AddQuadratic(i, j, w);
      }
    }
  }
  return problem;
}

/// Strict equality of two physical compilations, field by field (EXPECT_EQ
/// on doubles is exact comparison — bit identity modulo signed zeros,
/// which the compile path never produces from nonzero inputs).
void ExpectIdenticalCompile(const EmbeddedQubo& a, const EmbeddedQubo& b) {
  ASSERT_EQ(a.num_physical_vars(), b.num_physical_vars());
  ASSERT_EQ(a.num_logical_vars(), b.num_logical_vars());
  EXPECT_EQ(a.physical().linear_terms(), b.physical().linear_terms());
  const auto& ta = a.physical().interactions();
  const auto& tb = b.physical().interactions();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t t = 0; t < ta.size(); ++t) {
    EXPECT_EQ(ta[t].i, tb[t].i);
    EXPECT_EQ(ta[t].j, tb[t].j);
    EXPECT_EQ(ta[t].weight, tb[t].weight) << "term " << t;
  }
  EXPECT_EQ(a.physical().csr().weights, b.physical().csr().weights);
  for (int v = 0; v < a.num_logical_vars(); ++v) {
    EXPECT_EQ(a.chain_strength(v), b.chain_strength(v)) << "chain " << v;
    EXPECT_EQ(a.chain_members(v), b.chain_members(v)) << "chain " << v;
  }
  for (int i = 0; i < a.num_physical_vars(); ++i) {
    EXPECT_EQ(a.qubit_of(i), b.qubit_of(i));
  }
}

class EmbeddingCacheTest : public ::testing::Test {
 protected:
  EmbeddingCacheTest() : graph_(2, 2, 4) {
    auto embedding = TriadEmbedder::Embed(kVars, graph_);
    EXPECT_TRUE(embedding.ok()) << embedding.status().ToString();
    embedding_ = *std::move(embedding);
  }

  static constexpr int kVars = 8;
  ChimeraGraph graph_;
  Embedding embedding_{0};
};

TEST_F(EmbeddingCacheTest, HitsOnSameStructureDifferentWeights) {
  EmbeddingCache cache;
  qubo::QuboProblem first = MakeLogical(kVars, /*structure_seed=*/1, 100);
  qubo::QuboProblem second = MakeLogical(kVars, /*structure_seed=*/1, 200);

  bool was_hit = true;
  auto cold = cache.GetOrCreate(first, embedding_, graph_, {}, &was_hit);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(was_hit);

  auto warm = cache.GetOrCreate(second, embedding_, graph_, {}, &was_hit);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(was_hit);

  EmbeddingCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.bypasses, 0u);
  EXPECT_EQ(cache.size(), 1u);

  // The cached re-weight is indistinguishable from a fresh compile.
  auto fresh = EmbeddedQubo::Create(second, embedding_, graph_);
  ASSERT_TRUE(fresh.ok());
  ExpectIdenticalCompile(*warm, *fresh);
}

TEST_F(EmbeddingCacheTest, MissesOnDifferentStructure) {
  EmbeddingCache cache;
  qubo::QuboProblem first = MakeLogical(kVars, /*structure_seed=*/1, 100);
  qubo::QuboProblem second = MakeLogical(kVars, /*structure_seed=*/2, 100);
  ASSERT_TRUE(cache.GetOrCreate(first, embedding_, graph_).ok());
  bool was_hit = true;
  ASSERT_TRUE(
      cache.GetOrCreate(second, embedding_, graph_, {}, &was_hit).ok());
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(EmbeddingCacheTest, DifferentDefectSetsMissEachOther) {
  // Same logical problem and chains, but a defect elsewhere on the chip
  // changes the hardware key (couplers usable for future placements
  // differ), so the entries must not alias.
  qubo::QuboProblem logical = MakeLogical(kVars, 1, 100);
  ChimeraGraph scarred = graph_;
  // Break a qubit no chain uses (chains of an 8-var TRIAD on 2x2 use all
  // cells, so find a qubit outside every chain).
  std::vector<int> owner = embedding_.QubitToVar(scarred);
  chimera::QubitId spare = -1;
  for (chimera::QubitId q = 0; q < scarred.num_qubits(); ++q) {
    if (owner[static_cast<size_t>(q)] == -1) {
      spare = q;
      break;
    }
  }
  ASSERT_GE(spare, 0);
  scarred.SetBroken(spare, true);

  EmbeddingCache cache;
  ASSERT_TRUE(cache.GetOrCreate(logical, embedding_, graph_).ok());
  bool was_hit = true;
  auto second =
      cache.GetOrCreate(logical, embedding_, scarred, {}, &was_hit);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(was_hit);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(EmbeddingCacheTest, ZeroWeightTermsBypassTheCache) {
  EmbeddingCache cache;
  qubo::QuboProblem logical = MakeLogical(kVars, 1, 100);
  // Add a zero-weight term on a pair the structure does not already use
  // (accumulating 0.0 onto an existing weight would change nothing).
  int zi = -1;
  int zj = -1;
  for (int i = 0; i < kVars && zi < 0; ++i) {
    for (int j = i + 1; j < kVars && zi < 0; ++j) {
      if (logical.quadratic(i, j) == 0.0) {
        zi = i;
        zj = j;
      }
    }
  }
  ASSERT_GE(zi, 0) << "structure seed 1 unexpectedly produced a clique";
  logical.AddQuadratic(zi, zj, 0.0);
  auto compiled = cache.GetOrCreate(logical, embedding_, graph_);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(cache.stats().bypasses, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(EmbeddingCacheTest, ReweightedSamplesBitIdenticalAtAnyThreadCount) {
  EmbeddingCache cache;
  qubo::QuboProblem warmup = MakeLogical(kVars, 1, 100);
  qubo::QuboProblem request = MakeLogical(kVars, 1, 200);
  ASSERT_TRUE(cache.GetOrCreate(warmup, embedding_, graph_).ok());
  bool was_hit = false;
  auto cached = cache.GetOrCreate(request, embedding_, graph_, {}, &was_hit);
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(was_hit);
  auto fresh = EmbeddedQubo::Create(request, embedding_, graph_);
  ASSERT_TRUE(fresh.ok());

  for (int threads : {1, 2, 4}) {
    anneal::DWaveOptions device;
    device.num_reads = 24;
    device.num_gauges = 2;
    device.sa_sweeps = 16;
    device.record_reads = true;
    device.seed = 99;
    device.num_threads = threads;
    auto from_fresh = anneal::DWaveSimulator(device).Sample(fresh->physical());
    auto from_cache =
        anneal::DWaveSimulator(device).Sample(cached->physical());
    ASSERT_TRUE(from_fresh.ok());
    ASSERT_TRUE(from_cache.ok());
    ASSERT_EQ(from_fresh->raw_reads.size(), from_cache->raw_reads.size());
    std::vector<uint8_t> bytes_fresh;
    std::vector<uint8_t> bytes_cache;
    for (int r = 0; r < from_fresh->raw_reads.size(); ++r) {
      from_fresh->raw_reads[r].CopyBytesTo(&bytes_fresh);
      from_cache->raw_reads[r].CopyBytesTo(&bytes_cache);
      ASSERT_EQ(bytes_fresh, bytes_cache)
          << "read " << r << " at " << threads << " threads";
    }
  }
}

TEST_F(EmbeddingCacheTest, ConcurrentAccessIsDeterministic) {
  EmbeddingCache cache;
  constexpr int kThreads = 8;
  constexpr int kIterations = 4;
  std::vector<Status> failures(kThreads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        uint64_t weight_seed = 1000 + static_cast<uint64_t>(t * 100 + it);
        qubo::QuboProblem logical = MakeLogical(kVars, 1, weight_seed);
        auto compiled = cache.GetOrCreate(logical, embedding_, graph_);
        if (!compiled.ok()) {
          failures[static_cast<size_t>(t)] = compiled.status();
          return;
        }
        auto fresh = EmbeddedQubo::Create(logical, embedding_, graph_);
        if (!fresh.ok()) {
          failures[static_cast<size_t>(t)] = fresh.status();
          return;
        }
        // Same coefficients either way, no matter how the threads raced.
        if (compiled->physical().linear_terms() !=
                fresh->physical().linear_terms() ||
            compiled->physical().csr().weights !=
                fresh->physical().csr().weights) {
          failures[static_cast<size_t>(t)] =
              Status::Internal("cached compile diverged from fresh compile");
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[static_cast<size_t>(t)].ok())
        << "thread " << t << ": " << failures[static_cast<size_t>(t)].ToString();
  }
  // One structure: every request after the first cold compile(s) hits.
  EmbeddingCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kIterations));
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(EmbeddingCacheTest, EvictionRespectsTheBoundLruFirst) {
  EmbeddingCache::Options options;
  options.max_entries = 2;
  EmbeddingCache cache(options);
  qubo::QuboProblem a = MakeLogical(kVars, 1, 100);
  qubo::QuboProblem b = MakeLogical(kVars, 2, 100);
  qubo::QuboProblem c = MakeLogical(kVars, 3, 100);
  ASSERT_TRUE(cache.GetOrCreate(a, embedding_, graph_).ok());
  ASSERT_TRUE(cache.GetOrCreate(b, embedding_, graph_).ok());
  ASSERT_TRUE(cache.GetOrCreate(c, embedding_, graph_).ok());  // evicts a
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool was_hit = false;
  ASSERT_TRUE(cache.GetOrCreate(c, embedding_, graph_, {}, &was_hit).ok());
  EXPECT_TRUE(was_hit);  // c stayed
  ASSERT_TRUE(cache.GetOrCreate(a, embedding_, graph_, {}, &was_hit).ok());
  EXPECT_FALSE(was_hit);  // a was the LRU victim
  EXPECT_EQ(cache.stats().evictions, 2u);  // re-inserting a evicted b
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(EmbeddingCacheTest, ClearDropsEntriesKeepsCounters) {
  EmbeddingCache cache;
  qubo::QuboProblem logical = MakeLogical(kVars, 1, 100);
  ASSERT_TRUE(cache.GetOrCreate(logical, embedding_, graph_).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  bool was_hit = true;
  ASSERT_TRUE(
      cache.GetOrCreate(logical, embedding_, graph_, {}, &was_hit).ok());
  EXPECT_FALSE(was_hit);
}

// --------------------------------------------------------------------
// Harness wiring
// --------------------------------------------------------------------

class CachedPipelineTest : public ::testing::Test {
 protected:
  CachedPipelineTest() : graph_(4, 4, 4) {
    Rng rng(11);
    harness::PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 10;
    auto instance = harness::GeneratePaperInstance(graph_, workload, &rng);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    instance_ = *std::move(instance);
  }

  harness::QuantumMqoOptions SmallOptions() const {
    harness::QuantumMqoOptions options;
    options.device.num_reads = 24;
    options.device.num_gauges = 2;
    options.device.sa_sweeps = 16;
    options.device.seed = 21;
    return options;
  }

  ChimeraGraph graph_;
  harness::PaperInstance instance_{};
};

TEST_F(CachedPipelineTest, PipelineReportsHitAndMatchesUncachedAnswer) {
  auto uncached =
      harness::SolveQuantumMqo(instance_.problem, instance_.embedding,
                               graph_, SmallOptions());
  ASSERT_TRUE(uncached.ok()) << uncached.status().ToString();
  EXPECT_FALSE(uncached->embedding_cache_hit);

  EmbeddingCache cache;
  harness::QuantumMqoOptions options = SmallOptions();
  options.embedding_cache = &cache;
  auto cold = harness::SolveQuantumMqo(instance_.problem, instance_.embedding,
                                       graph_, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->embedding_cache_hit);
  auto warm = harness::SolveQuantumMqo(instance_.problem, instance_.embedding,
                                       graph_, options);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->embedding_cache_hit);

  // Same seed, bit-identical physical problem: identical runs throughout.
  EXPECT_EQ(warm->best_cost, uncached->best_cost);
  EXPECT_EQ(warm->first_read_cost, uncached->first_read_cost);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(CachedPipelineTest, ResilientRetriesReuseTheRequestLayout) {
  // Kill the first device programming cycle: attempt 1 compiles cold and
  // fails in the device, attempt 2 re-weights the cached layout and
  // answers. The caller-provided cache lets the test observe both.
  util::FaultInjector faults(1);
  util::FaultSpec fail_first;
  fail_first.fail_first = 1;
  faults.Arm("device.program", fail_first);

  harness::SolvePolicy policy;
  policy.seed = 5;
  policy.max_attempts_per_backend = 2;
  policy.faults = &faults;

  EmbeddingCache cache;
  harness::QuantumMqoOptions options = SmallOptions();
  options.embedding_cache = &cache;
  harness::SolveReport report =
      harness::ResilientSolver(policy).Solve(instance_.problem,
                                             instance_.embedding, graph_,
                                             options);
  ASSERT_TRUE(report.ok) << report.FailureChain();
  EXPECT_EQ(report.backend, harness::SolveBackend::kDevice);
  EXPECT_EQ(report.total_attempts, 2);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

}  // namespace
}  // namespace embedding
}  // namespace qmqo
