// CSR-vs-map equivalence: the CSR evaluation structures of QuboProblem and
// IsingProblem must agree with reference implementations computed straight
// from the coefficient-map accessors (linear/quadratic, field/coupling) on
// random instances.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "qubo/csr.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace qmqo {
namespace qubo {
namespace {

QuboProblem RandomQubo(int num_vars, double density, Rng* rng) {
  QuboProblem problem(num_vars);
  for (int i = 0; i < num_vars; ++i) {
    problem.AddLinear(i, rng->UniformReal(-4.0, 4.0));
    for (int j = i + 1; j < num_vars; ++j) {
      if (rng->Bernoulli(density)) {
        problem.AddQuadratic(i, j, rng->UniformReal(-4.0, 4.0));
      }
    }
  }
  return problem;
}

IsingProblem RandomIsing(int num_spins, double density, Rng* rng) {
  IsingProblem ising(num_spins);
  for (int i = 0; i < num_spins; ++i) {
    ising.AddField(i, rng->UniformReal(-2.0, 2.0));
    for (int j = i + 1; j < num_spins; ++j) {
      if (rng->Bernoulli(density)) {
        ising.AddCoupling(i, j, rng->UniformReal(-2.0, 2.0));
      }
    }
  }
  return ising;
}

/// Reference energy straight from the map accessors; no CSR involved.
double MapEnergy(const QuboProblem& problem, const std::vector<uint8_t>& x) {
  double energy = 0.0;
  for (VarId i = 0; i < problem.num_vars(); ++i) {
    if (x[static_cast<size_t>(i)]) energy += problem.linear(i);
    for (VarId j = i + 1; j < problem.num_vars(); ++j) {
      if (x[static_cast<size_t>(i)] && x[static_cast<size_t>(j)]) {
        energy += problem.quadratic(i, j);
      }
    }
  }
  return energy;
}

double MapEnergy(const IsingProblem& ising, const std::vector<int8_t>& s) {
  double energy = 0.0;
  for (VarId i = 0; i < ising.num_spins(); ++i) {
    energy += ising.field(i) * static_cast<double>(s[static_cast<size_t>(i)]);
    for (VarId j = i + 1; j < ising.num_spins(); ++j) {
      energy += ising.coupling(i, j) *
                static_cast<double>(s[static_cast<size_t>(i)]) *
                static_cast<double>(s[static_cast<size_t>(j)]);
    }
  }
  return energy;
}

class CsrEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(CsrEquivalence, QuboEnergyAndFlipDeltaMatchMapReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  QuboProblem problem = RandomQubo(rng.UniformInt(2, 24), 0.4, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint8_t> x(static_cast<size_t>(problem.num_vars()));
    for (auto& bit : x) bit = rng.Bernoulli(0.5) ? 1 : 0;
    EXPECT_NEAR(problem.Energy(x), MapEnergy(problem, x), 1e-9);
    for (VarId i = 0; i < problem.num_vars(); ++i) {
      std::vector<uint8_t> flipped = x;
      flipped[static_cast<size_t>(i)] ^= 1;
      EXPECT_NEAR(problem.FlipDelta(x, i),
                  MapEnergy(problem, flipped) - MapEnergy(problem, x), 1e-9);
    }
  }
}

TEST_P(CsrEquivalence, IsingEnergyAndFlipDeltaMatchMapReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 200);
  IsingProblem ising = RandomIsing(rng.UniformInt(2, 24), 0.4, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int8_t> s(static_cast<size_t>(ising.num_spins()));
    for (auto& spin : s) spin = rng.Bernoulli(0.5) ? 1 : -1;
    EXPECT_NEAR(ising.Energy(s), MapEnergy(ising, s), 1e-9);
    for (VarId i = 0; i < ising.num_spins(); ++i) {
      std::vector<int8_t> flipped = s;
      flipped[static_cast<size_t>(i)] =
          static_cast<int8_t>(-flipped[static_cast<size_t>(i)]);
      EXPECT_NEAR(ising.FlipDelta(s, i),
                  MapEnergy(ising, flipped) - MapEnergy(ising, s), 1e-9);
    }
  }
}

TEST_P(CsrEquivalence, QuboNeighborsMatchMapReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 300);
  QuboProblem problem = RandomQubo(rng.UniformInt(2, 24), 0.4, &rng);
  for (VarId i = 0; i < problem.num_vars(); ++i) {
    // Reference: every j with a nonzero-touched quadratic term, ascending.
    std::vector<std::pair<VarId, double>> expected;
    for (const Interaction& term : problem.interactions()) {
      if (term.i == i) expected.emplace_back(term.j, term.weight);
      if (term.j == i) expected.emplace_back(term.i, term.weight);
    }
    std::sort(expected.begin(), expected.end());
    NeighborView view = problem.neighbors(i);
    ASSERT_EQ(view.size(), expected.size());
    size_t k = 0;
    for (const auto& [j, w] : view) {
      EXPECT_EQ(j, expected[k].first);
      EXPECT_DOUBLE_EQ(w, expected[k].second);
      ++k;
    }
    // operator[] agrees with iteration.
    for (size_t e = 0; e < view.size(); ++e) {
      EXPECT_EQ(view[e].first, expected[e].first);
      EXPECT_DOUBLE_EQ(view[e].second, expected[e].second);
    }
  }
}

TEST_P(CsrEquivalence, IsingNeighborsMatchCouplings) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 400);
  IsingProblem ising = RandomIsing(rng.UniformInt(2, 24), 0.4, &rng);
  const CsrGraph& csr = ising.csr();
  ASSERT_EQ(csr.num_vars(), ising.num_spins());
  int total_entries = 0;
  for (VarId i = 0; i < ising.num_spins(); ++i) {
    VarId previous = -1;
    for (const auto& [j, w] : ising.neighbors(i)) {
      EXPECT_GT(j, previous);  // sorted, no duplicates
      previous = j;
      EXPECT_DOUBLE_EQ(w, ising.coupling(i, j));
      ++total_entries;
    }
  }
  // Every coupling appears exactly twice across the rows.
  EXPECT_EQ(total_entries, 2 * static_cast<int>(ising.couplings().size()));
}

TEST_P(CsrEquivalence, MutationInvalidatesAndRebuilds) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  QuboProblem problem = RandomQubo(8, 0.5, &rng);
  std::vector<uint8_t> x(8, 1);
  double before = problem.Energy(x);  // forces CSR build
  problem.AddQuadratic(0, 7, 2.5);
  EXPECT_NEAR(problem.Energy(x), before + 2.5, 1e-9);
  EXPECT_NEAR(problem.Energy(x), MapEnergy(problem, x), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalence, ::testing::Range(0, 8));

TEST(CsrGraphTest, EmptyProblem) {
  QuboProblem problem(3);
  const CsrGraph& csr = problem.csr();
  EXPECT_EQ(csr.num_vars(), 3);
  for (VarId i = 0; i < 3; ++i) {
    EXPECT_EQ(csr.degree(i), 0);
    EXPECT_TRUE(problem.neighbors(i).empty());
  }
}

TEST(CsrGraphTest, ZeroVariableProblem) {
  QuboProblem problem(0);
  EXPECT_EQ(problem.csr().num_vars(), 0);
  EXPECT_DOUBLE_EQ(problem.Energy({}), 0.0);
}

}  // namespace
}  // namespace qubo
}  // namespace qmqo
