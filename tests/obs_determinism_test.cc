// The observability layer's own acceptance bar: under a full chaos run
// (queue stalls, worker crashes, brownouts, a flaky device, deadline
// shedding, backoff), the service's metric snapshots — Prometheus text and
// JSON exposition — and its trace dumps (wall clocks suppressed) are
// BYTE-IDENTICAL at 1, 2, and 4 worker threads. Sharded counters, the
// fixed-point histogram sums, and the serial span commit discipline exist
// to make this true; this test is what keeps them honest.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "obs/trace.h"
#include "service/solve_service.h"
#include "util/fault.h"
#include "util/rng.h"

namespace qmqo {
namespace service {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("QMQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  ObsDeterminismTest() : graph_(4, 4, 4) {
    Rng rng(ChaosSeed());
    harness::PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 10;
    auto instance = harness::GeneratePaperInstance(graph_, workload, &rng);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    instance_ = *std::move(instance);
  }

  ServiceOptions SmallServiceOptions() const {
    ServiceOptions options;
    options.graph = &graph_;
    options.num_threads = 1;
    options.pipeline.device.num_reads = 30;
    options.pipeline.device.num_gauges = 3;
    options.pipeline.device.sa_sweeps = 16;
    options.pipeline.device.num_threads = 1;
    options.pipeline.device.seed = ChaosSeed() + 7;
    options.policy.seed = ChaosSeed();
    options.policy.max_attempts_per_backend = 1;
    options.policy.sqa_reads = 4;
    options.policy.sqa_slices = 4;
    options.policy.sqa_sweeps = 16;
    options.policy.sa_reads = 8;
    options.policy.sa_sweeps = 32;
    return options;
  }

  chimera::ChimeraGraph graph_;
  harness::PaperInstance instance_;
};

struct ObsDump {
  std::string prometheus;
  std::string json;
  std::string traces;
  size_t trace_count = 0;
  int64_t settled = 0;
};

TEST_F(ObsDeterminismTest, SnapshotsAndTracesAreIdenticalAcrossThreads) {
  auto run_with_threads = [&](int num_threads) {
    util::FaultInjector faults(ChaosSeed());
    util::FaultSpec stall;
    stall.probability = 1.0;  // every round ages the queue 25 modeled ms
    stall.latency_ms = 25.0;
    faults.Arm("service.queue_stall", stall);
    util::FaultSpec crash;
    crash.probability = 0.15;
    faults.Arm("service.worker_crash", crash);
    util::FaultSpec brownout;
    brownout.probability = 0.25;
    faults.Arm("service.brownout", brownout);
    util::FaultSpec flaky_device;
    flaky_device.probability = 0.4;
    flaky_device.latency_ms = 5.0;
    faults.Arm("solve.device", flaky_device);

    obs::Tracer tracer;
    ServiceOptions options = SmallServiceOptions();
    options.faults = &faults;
    options.tracer = &tracer;
    options.num_threads = num_threads;
    options.queue_capacity = 8;
    options.round_width = 3;
    options.policy.max_attempts_per_backend = 2;
    options.policy.backoff_initial_ms = 1.0;
    options.breaker.window = 6;
    options.breaker.min_samples = 3;
    options.breaker.open_cooldown_ms = 40.0;

    SolveService service(options);
    int submitted = 0;
    for (int wave = 0; wave < 3; ++wave) {
      for (int i = 0; i < 4; ++i) {
        RequestPriority priority = (submitted % 3 == 0)
                                       ? RequestPriority::kInteractive
                                       : RequestPriority::kBatch;
        double deadline = (submitted % 4 == 3) ? 20.0 : 0.0;
        auto id = service.Submit(instance_.problem, instance_.embedding,
                                 priority, deadline);
        if (id.ok()) ++submitted;
      }
      service.ProcessRound();
    }
    service.Shutdown(/*graceful=*/true);

    // Every committed trace must be a finished tree: no leaked open spans
    // (error paths are required to close their spans too).
    for (const obs::SolveTrace& trace : tracer.traces()) {
      EXPECT_FALSE(trace.has_open_span());
      EXPECT_FALSE(trace.spans().empty());
      if (trace.spans().empty()) continue;
      EXPECT_EQ(trace.spans()[0].name, "service.request");
    }

    ObsDump dump;
    dump.prometheus = service.metrics().PrometheusText();
    dump.json = service.metrics().JsonText();
    dump.traces = tracer.DumpJsonLines(/*include_wall=*/false);
    dump.trace_count = tracer.size();
    dump.settled = service.stats().settled();
    EXPECT_EQ(service.stats().in_flight(), 0);
    return dump;
  };

  ObsDump base = run_with_threads(1);
  // One service.request root per settled request, committed in settle
  // order from the serial path.
  EXPECT_EQ(static_cast<int64_t>(base.trace_count), base.settled);
  EXPECT_FALSE(base.prometheus.empty());
  EXPECT_FALSE(base.traces.empty());

  for (int num_threads : {2, 4}) {
    ObsDump other = run_with_threads(num_threads);
    EXPECT_EQ(base.prometheus, other.prometheus)
        << "Prometheus snapshot differs at " << num_threads << " threads";
    EXPECT_EQ(base.json, other.json)
        << "JSON snapshot differs at " << num_threads << " threads";
    EXPECT_EQ(base.traces, other.traces)
        << "trace dump differs at " << num_threads << " threads";
  }
}

}  // namespace
}  // namespace service
}  // namespace qmqo
