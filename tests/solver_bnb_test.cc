// Tests for the exact anytime branch-and-bound solvers (the LIN-MQO and
// LIN-QUB stand-ins).

#include <gtest/gtest.h>

#include "mqo/brute_force.h"
#include "mqo/generator.h"
#include "qubo/brute_force.h"
#include "solver/mqo_bnb.h"
#include "solver/qubo_bnb.h"
#include "util/rng.h"

namespace qmqo {
namespace solver {
namespace {

struct BnbCase {
  int seed;
  int num_queries;
  int max_plans;
  double sharing;
  bool decompose;
};

class MqoBnbProperty : public ::testing::TestWithParam<BnbCase> {};

TEST_P(MqoBnbProperty, MatchesExhaustiveOptimum) {
  const BnbCase& param = GetParam();
  Rng rng(static_cast<uint64_t>(param.seed));
  mqo::RandomWorkloadOptions options;
  options.num_queries = param.num_queries;
  options.min_plans = 1;
  options.max_plans = param.max_plans;
  options.sharing_probability = param.sharing;
  options.saving_max = 40.0;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);
  auto exact = mqo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());

  MqoBnbOptions bnb_options;
  bnb_options.decompose_components = param.decompose;
  MqoBranchAndBound bnb(bnb_options);
  auto result = bnb.Solve(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_NEAR(result->cost, exact->cost, 1e-9);
  EXPECT_TRUE(mqo::ValidateSolution(problem, result->solution).ok());
  EXPECT_NEAR(mqo::EvaluateCost(problem, result->solution), result->cost,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, MqoBnbProperty,
    ::testing::Values(BnbCase{1, 4, 2, 0.3, true},
                      BnbCase{2, 5, 3, 0.5, true},
                      BnbCase{3, 6, 2, 0.7, true},
                      BnbCase{4, 7, 3, 0.2, true},
                      BnbCase{5, 8, 2, 0.4, true},
                      BnbCase{6, 8, 2, 0.4, false},
                      BnbCase{7, 9, 2, 0.3, false},
                      BnbCase{8, 5, 4, 0.6, true},
                      BnbCase{9, 10, 2, 0.15, true},
                      BnbCase{10, 6, 3, 0.9, false},
                      BnbCase{11, 12, 2, 0.1, true},
                      BnbCase{12, 4, 5, 0.8, true}));

TEST(MqoBnbTest, CallbackReportsMonotoneImprovingFullCosts) {
  Rng rng(77);
  mqo::RandomWorkloadOptions options;
  options.num_queries = 10;
  options.min_plans = 2;
  options.max_plans = 3;
  options.sharing_probability = 0.3;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);

  double last_cost = 1e300;
  double last_ms = -1.0;
  int calls = 0;
  MqoBranchAndBound bnb;
  auto result = bnb.Solve(
      problem, [&](double ms, double cost, const mqo::MqoSolution& solution) {
        ++calls;
        EXPECT_LT(cost, last_cost);
        EXPECT_GE(ms, last_ms);
        // Reported cost must equal the solution's true cost.
        EXPECT_NEAR(mqo::EvaluateCost(problem, solution), cost, 1e-9);
        last_cost = cost;
        last_ms = ms;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_GE(calls, 1);
  EXPECT_NEAR(result->cost, last_cost, 1e-9);
}

TEST(MqoBnbTest, TimeLimitReturnsValidIncumbent) {
  Rng rng(78);
  mqo::RandomWorkloadOptions options;
  options.num_queries = 40;
  options.min_plans = 2;
  options.max_plans = 2;
  options.sharing_probability = 0.3;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);
  MqoBnbOptions bnb_options;
  bnb_options.time_limit_ms = 5.0;
  MqoBranchAndBound bnb(bnb_options);
  auto result = bnb.Solve(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(mqo::ValidateSolution(problem, result->solution).ok());
}

TEST(MqoBnbTest, NodeLimitStopsSearch) {
  Rng rng(79);
  mqo::RandomWorkloadOptions options;
  options.num_queries = 20;
  options.min_plans = 2;
  options.max_plans = 2;
  options.sharing_probability = 0.5;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &rng);
  MqoBnbOptions bnb_options;
  bnb_options.max_nodes = 10;
  MqoBranchAndBound bnb(bnb_options);
  auto result = bnb.Solve(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->proven_optimal);
  EXPECT_TRUE(mqo::ValidateSolution(problem, result->solution).ok());
}

TEST(MqoBnbTest, DisconnectedInstancesDecompose) {
  // Two independent 3-query chains; with decomposition the node count
  // should be far below the product of the component search spaces.
  Rng rng(80);
  mqo::ChainWorkloadOptions chain;
  chain.num_queries = 3;
  chain.plans_per_query = 3;
  chain.link_probability = 1.0;
  mqo::MqoProblem a = mqo::GenerateChainWorkload(chain, &rng);
  // Build one problem holding two disjoint copies.
  mqo::MqoProblem combined;
  for (int copy = 0; copy < 2; ++copy) {
    for (mqo::QueryId q = 0; q < a.num_queries(); ++q) {
      std::vector<double> costs;
      for (int k = 0; k < a.num_plans_of(q); ++k) {
        costs.push_back(a.plan_cost(a.first_plan(q) + k));
      }
      combined.AddQuery(std::move(costs));
    }
    int offset = copy * a.num_plans();
    for (const mqo::Saving& s : a.savings()) {
      ASSERT_TRUE(
          combined.AddSaving(s.plan_a + offset, s.plan_b + offset, s.value)
              .ok());
    }
  }
  auto exact = mqo::SolveExhaustive(combined);
  ASSERT_TRUE(exact.ok());
  MqoBranchAndBound bnb;
  auto result = bnb.Solve(combined);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_NEAR(result->cost, exact->cost, 1e-9);
}

// --------------------------------------------------------------------
// QUBO branch and bound
// --------------------------------------------------------------------

class QuboBnbProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuboBnbProperty, MatchesExhaustiveOptimum) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 700);
  int n = rng.UniformInt(3, 14);
  qubo::QuboProblem problem(n);
  for (int i = 0; i < n; ++i) {
    problem.AddLinear(i, rng.UniformReal(-6.0, 6.0));
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.4)) {
        problem.AddQuadratic(i, j, rng.UniformReal(-6.0, 6.0));
      }
    }
  }
  auto exact = qubo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  QuboBranchAndBound bnb;
  auto result = bnb.Solve(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->proven_optimal);
  EXPECT_NEAR(result->energy, exact->energy, 1e-9);
  EXPECT_NEAR(problem.Energy(result->assignment), result->energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboBnbProperty, ::testing::Range(0, 14));

TEST(QuboBnbTest, RejectsEmptyProblem) {
  qubo::QuboProblem empty(0);
  EXPECT_FALSE(QuboBranchAndBound().Solve(empty).ok());
}

TEST(QuboBnbTest, CallbackCostsAreConsistent) {
  Rng rng(81);
  qubo::QuboProblem problem(10);
  for (int i = 0; i < 10; ++i) {
    problem.AddLinear(i, rng.UniformReal(-3.0, 3.0));
    for (int j = i + 1; j < 10; ++j) {
      if (rng.Bernoulli(0.5)) {
        problem.AddQuadratic(i, j, rng.UniformReal(-3.0, 3.0));
      }
    }
  }
  double last_energy = 1e300;
  QuboBranchAndBound bnb;
  auto result =
      bnb.Solve(problem, [&](double, double energy,
                             const std::vector<uint8_t>& assignment) {
        EXPECT_LT(energy, last_energy);
        EXPECT_NEAR(problem.Energy(assignment), energy, 1e-9);
        last_energy = energy;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->energy, last_energy, 1e-9);
}

TEST(QuboBnbTest, NodeLimitKeepsIncumbent) {
  Rng rng(82);
  qubo::QuboProblem problem(20);
  for (int i = 0; i < 20; ++i) {
    problem.AddLinear(i, rng.UniformReal(-3.0, 3.0));
    for (int j = i + 1; j < 20; ++j) {
      if (rng.Bernoulli(0.3)) {
        problem.AddQuadratic(i, j, rng.UniformReal(-3.0, 3.0));
      }
    }
  }
  QuboBnbOptions options;
  options.max_nodes = 100;
  QuboBranchAndBound bnb(options);
  auto result = bnb.Solve(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->proven_optimal);
  EXPECT_EQ(result->assignment.size(), 20u);
}

}  // namespace
}  // namespace solver
}  // namespace qmqo
