// End-to-end tests of Algorithm 1: MQO -> logical QUBO -> embedded QUBO ->
// (simulated) annealing -> unembedding -> plan selection, checked against
// exhaustive ground truth on chips small enough to verify.

#include <gtest/gtest.h>

#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "mqo/brute_force.h"
#include "util/rng.h"

namespace qmqo {
namespace {

using chimera::ChimeraGraph;
using harness::GeneratePaperInstance;
using harness::PaperWorkloadOptions;
using harness::QuantumMqoOptions;
using harness::SolveQuantumMqo;

struct PipelineCase {
  int seed;
  int plans_per_query;
  int num_queries;
};

class PipelineProperty : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineProperty, FindsOptimalSolutionOnSmallChip) {
  const PipelineCase& param = GetParam();
  ChimeraGraph graph(2, 2, 4);
  PaperWorkloadOptions workload;
  workload.plans_per_query = param.plans_per_query;
  workload.num_queries = param.num_queries;
  Rng rng(static_cast<uint64_t>(param.seed));
  auto instance = GeneratePaperInstance(graph, workload, &rng);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  auto exact = mqo::SolveExhaustive(instance->problem);
  ASSERT_TRUE(exact.ok());

  QuantumMqoOptions options;
  options.device.num_reads = 300;
  options.device.num_gauges = 10;
  options.device.sa_sweeps = 48;
  options.device.control_error = 0.015;
  options.device.seed = static_cast<uint64_t>(param.seed) * 13 + 1;
  auto result =
      SolveQuantumMqo(instance->problem, instance->embedding, graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The returned solution is valid and (with 300 reads on these tiny
  // instances) optimal.
  EXPECT_TRUE(
      mqo::ValidateSolution(instance->problem, result->best_solution).ok());
  EXPECT_NEAR(result->best_cost, exact->cost, 1e-9);
  EXPECT_NEAR(mqo::EvaluateCost(instance->problem, result->best_solution),
              result->best_cost, 1e-9);
  // Measurement metadata is populated.
  EXPECT_GT(result->preprocessing_ms, 0.0);
  EXPECT_DOUBLE_EQ(result->device_time_us, 300 * 376.0);
  EXPECT_FALSE(result->cost_vs_device_time.empty());
  EXPECT_GT(result->physical_qubits, 0);
  EXPECT_GE(result->first_read_cost, result->best_cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallChips, PipelineProperty,
    ::testing::Values(PipelineCase{1, 2, 6}, PipelineCase{2, 2, 10},
                      PipelineCase{3, 3, 4}, PipelineCase{4, 3, 6},
                      PipelineCase{5, 4, 4}, PipelineCase{6, 5, 3},
                      PipelineCase{7, 2, 16}, PipelineCase{8, 5, 4}));

TEST(PipelineTest, WorksOnDefectiveChip) {
  ChimeraGraph graph(3, 3, 4);
  Rng defect_rng(42);
  graph.BreakRandom(8, &defect_rng);
  PaperWorkloadOptions workload;
  workload.plans_per_query = 3;
  Rng rng(9);
  auto instance = GeneratePaperInstance(graph, workload, &rng);
  ASSERT_TRUE(instance.ok());
  ASSERT_LE(instance->problem.num_queries() * 3, 36);

  QuantumMqoOptions options;
  options.device.num_reads = 200;
  options.device.sa_sweeps = 48;
  auto result =
      SolveQuantumMqo(instance->problem, instance->embedding, graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto exact = mqo::SolveExhaustive(instance->problem);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(result->best_cost, exact->cost, 1e-9);
}

TEST(PipelineTest, DeterministicGivenSeeds) {
  ChimeraGraph graph(2, 2, 4);
  PaperWorkloadOptions workload;
  workload.plans_per_query = 2;
  workload.num_queries = 8;
  Rng rng1(10);
  Rng rng2(10);
  auto a = GeneratePaperInstance(graph, workload, &rng1);
  auto b = GeneratePaperInstance(graph, workload, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  QuantumMqoOptions options;
  options.device.num_reads = 64;
  options.device.seed = 777;
  auto result_a = SolveQuantumMqo(a->problem, a->embedding, graph, options);
  auto result_b = SolveQuantumMqo(b->problem, b->embedding, graph, options);
  ASSERT_TRUE(result_a.ok());
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(result_a->best_cost, result_b->best_cost);
  EXPECT_TRUE(result_a->best_solution == result_b->best_solution);
}

TEST(PipelineTest, SqaBackendEndToEnd) {
  ChimeraGraph graph(2, 2, 4);
  PaperWorkloadOptions workload;
  workload.plans_per_query = 2;
  workload.num_queries = 5;
  Rng rng(11);
  auto instance = GeneratePaperInstance(graph, workload, &rng);
  ASSERT_TRUE(instance.ok());
  auto exact = mqo::SolveExhaustive(instance->problem);
  ASSERT_TRUE(exact.ok());

  QuantumMqoOptions options;
  options.device.backend = anneal::DeviceBackend::kSimulatedQuantumAnnealing;
  options.device.num_reads = 40;
  options.device.num_gauges = 4;
  options.device.control_error = 0.01;
  options.device.sqa.num_slices = 8;
  options.device.sqa.sweeps = 96;
  auto result =
      SolveQuantumMqo(instance->problem, instance->embedding, graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->best_cost, exact->cost, 1e-9);
}

TEST(PipelineTest, FirstReadQualityIsNearOptimalOnPaperLikeChip) {
  // The paper's headline: the very first annealing run is already close
  // to the optimum. Verify the shape on a mid-size chip: first read within
  // 15% of the best-known cost.
  ChimeraGraph graph(4, 4, 4);
  PaperWorkloadOptions workload;
  workload.plans_per_query = 2;
  Rng rng(12);
  auto instance = GeneratePaperInstance(graph, workload, &rng);
  ASSERT_TRUE(instance.ok());

  QuantumMqoOptions options;
  options.device.num_reads = 500;
  options.device.sa_sweeps = 64;
  auto result =
      SolveQuantumMqo(instance->problem, instance->embedding, graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->first_read_cost,
            1.15 * result->best_cost + 1e-9);
}

}  // namespace
}  // namespace qmqo
