// Tests for the QUBO/Ising formalism: energies, flip deltas, conversions,
// exhaustive minimization, and serialization.

#include <gtest/gtest.h>

#include "qubo/brute_force.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "qubo/serialization.h"
#include "util/rng.h"

namespace qmqo {
namespace qubo {
namespace {

QuboProblem RandomQubo(int num_vars, double density, Rng* rng) {
  QuboProblem problem(num_vars);
  for (VarId i = 0; i < num_vars; ++i) {
    problem.AddLinear(i, rng->UniformReal(-5.0, 5.0));
  }
  for (VarId i = 0; i < num_vars; ++i) {
    for (VarId j = i + 1; j < num_vars; ++j) {
      if (rng->Bernoulli(density)) {
        problem.AddQuadratic(i, j, rng->UniformReal(-5.0, 5.0));
      }
    }
  }
  return problem;
}

std::vector<uint8_t> RandomAssignment(int num_vars, Rng* rng) {
  std::vector<uint8_t> x(static_cast<size_t>(num_vars));
  for (auto& v : x) v = rng->Bernoulli(0.5) ? 1 : 0;
  return x;
}

TEST(QuboTest, EnergyOfSmallInstance) {
  QuboProblem problem(3);
  problem.AddLinear(0, 1.0);
  problem.AddLinear(1, -2.0);
  problem.AddQuadratic(0, 1, 3.0);
  problem.AddQuadratic(1, 2, -1.0);
  EXPECT_DOUBLE_EQ(problem.Energy({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(problem.Energy({1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(problem.Energy({1, 1, 0}), 1.0 - 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(problem.Energy({0, 1, 1}), -2.0 - 1.0);
  EXPECT_DOUBLE_EQ(problem.Energy({1, 1, 1}), 1.0 - 2.0 + 3.0 - 1.0);
}

TEST(QuboTest, WeightsAccumulate) {
  QuboProblem problem(2);
  problem.AddLinear(0, 1.0);
  problem.AddLinear(0, 2.0);
  problem.AddQuadratic(0, 1, 1.0);
  problem.AddQuadratic(1, 0, 0.5);  // same pair, either order
  EXPECT_DOUBLE_EQ(problem.linear(0), 3.0);
  EXPECT_DOUBLE_EQ(problem.quadratic(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(problem.quadratic(1, 0), 1.5);
  EXPECT_EQ(problem.num_interactions(), 1);
}

TEST(QuboTest, NeighborsAreSymmetric) {
  QuboProblem problem(3);
  problem.AddQuadratic(0, 2, 4.0);
  ASSERT_EQ(problem.neighbors(0).size(), 1u);
  EXPECT_EQ(problem.neighbors(0)[0].first, 2);
  EXPECT_DOUBLE_EQ(problem.neighbors(0)[0].second, 4.0);
  ASSERT_EQ(problem.neighbors(2).size(), 1u);
  EXPECT_EQ(problem.neighbors(2)[0].first, 0);
  EXPECT_TRUE(problem.neighbors(1).empty());
}

TEST(QuboTest, MutationAfterQueryingInvalidatesCaches) {
  QuboProblem problem(2);
  problem.AddQuadratic(0, 1, 1.0);
  EXPECT_EQ(problem.interactions().size(), 1u);
  problem.AddQuadratic(0, 1, 1.0);  // accumulates to 2.0
  EXPECT_DOUBLE_EQ(problem.interactions()[0].weight, 2.0);
}

TEST(QuboTest, WeightRangeAndMaxAbs) {
  QuboProblem problem(3);
  problem.AddLinear(0, -7.0);
  problem.AddLinear(1, 2.0);
  problem.AddQuadratic(0, 1, 4.0);
  auto [lo, hi] = problem.WeightRange();
  EXPECT_DOUBLE_EQ(lo, -7.0);
  EXPECT_DOUBLE_EQ(hi, 4.0);
  EXPECT_DOUBLE_EQ(problem.MaxAbsWeight(), 7.0);
}

TEST(QuboTest, EmptyProblemWeightRange) {
  QuboProblem problem(4);
  auto [lo, hi] = problem.WeightRange();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 0.0);
}

class QuboFlipDeltaProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuboFlipDeltaProperty, FlipDeltaMatchesEnergyDifference) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  QuboProblem problem = RandomQubo(rng.UniformInt(2, 12), 0.4, &rng);
  std::vector<uint8_t> x = RandomAssignment(problem.num_vars(), &rng);
  for (int step = 0; step < 40; ++step) {
    VarId i = rng.UniformInt(0, problem.num_vars() - 1);
    double before = problem.Energy(x);
    double delta = problem.FlipDelta(x, i);
    x[static_cast<size_t>(i)] ^= 1;
    EXPECT_NEAR(problem.Energy(x), before + delta, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboFlipDeltaProperty,
                         ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Ising
// --------------------------------------------------------------------

TEST(IsingTest, EnergyOfSmallInstance) {
  IsingProblem ising(2);
  ising.AddField(0, 1.0);
  ising.AddField(1, -0.5);
  ising.AddCoupling(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(ising.Energy({1, 1}), 1.0 - 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(ising.Energy({-1, 1}), -1.0 - 0.5 - 2.0);
  EXPECT_DOUBLE_EQ(ising.Energy({-1, -1}), -1.0 + 0.5 + 2.0);
}

TEST(IsingTest, FlipDeltaMatchesEnergyDifference) {
  Rng rng(5);
  IsingProblem ising(6);
  for (VarId i = 0; i < 6; ++i) ising.AddField(i, rng.UniformReal(-2, 2));
  for (VarId i = 0; i < 6; ++i) {
    for (VarId j = i + 1; j < 6; ++j) {
      if (rng.Bernoulli(0.5)) ising.AddCoupling(i, j, rng.UniformReal(-2, 2));
    }
  }
  std::vector<int8_t> s = {1, -1, 1, 1, -1, -1};
  for (VarId i = 0; i < 6; ++i) {
    double before = ising.Energy(s);
    double delta = ising.FlipDelta(s, i);
    s[static_cast<size_t>(i)] = static_cast<int8_t>(-s[static_cast<size_t>(i)]);
    EXPECT_NEAR(ising.Energy(s), before + delta, 1e-9);
    s[static_cast<size_t>(i)] = static_cast<int8_t>(-s[static_cast<size_t>(i)]);
  }
}

TEST(IsingTest, MaxAbsAccessors) {
  IsingProblem ising(3);
  ising.AddField(0, -3.0);
  ising.AddField(2, 1.0);
  ising.AddCoupling(0, 1, -0.25);
  ising.AddCoupling(1, 2, 0.75);
  EXPECT_DOUBLE_EQ(ising.MaxAbsField(), 3.0);
  EXPECT_DOUBLE_EQ(ising.MaxAbsCoupling(), 0.75);
}

class IsingConversionProperty : public ::testing::TestWithParam<int> {};

TEST_P(IsingConversionProperty, QuboToIsingPreservesEnergies) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 50);
  QuboProblem qubo = RandomQubo(rng.UniformInt(1, 10), 0.5, &rng);
  IsingWithOffset converted = QuboToIsing(qubo);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint8_t> x = RandomAssignment(qubo.num_vars(), &rng);
    std::vector<int8_t> s = AssignmentToSpins(x);
    EXPECT_NEAR(qubo.Energy(x), converted.ising.Energy(s) + converted.offset,
                1e-9);
  }
}

TEST_P(IsingConversionProperty, IsingToQuboPreservesEnergies) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 150);
  int n = rng.UniformInt(1, 10);
  IsingProblem ising(n);
  for (VarId i = 0; i < n; ++i) ising.AddField(i, rng.UniformReal(-3, 3));
  for (VarId i = 0; i < n; ++i) {
    for (VarId j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.4)) ising.AddCoupling(i, j, rng.UniformReal(-3, 3));
    }
  }
  QuboWithOffset converted = IsingToQubo(ising);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<uint8_t> x = RandomAssignment(n, &rng);
    std::vector<int8_t> s = AssignmentToSpins(x);
    EXPECT_NEAR(ising.Energy(s), converted.qubo.Energy(x) + converted.offset,
                1e-9);
  }
}

TEST_P(IsingConversionProperty, RoundTripPreservesEnergies) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 250);
  QuboProblem qubo = RandomQubo(rng.UniformInt(1, 8), 0.5, &rng);
  IsingWithOffset to_ising = QuboToIsing(qubo);
  QuboWithOffset back = IsingToQubo(to_ising.ising);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint8_t> x = RandomAssignment(qubo.num_vars(), &rng);
    EXPECT_NEAR(qubo.Energy(x),
                back.qubo.Energy(x) + back.offset + to_ising.offset, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsingConversionProperty,
                         ::testing::Range(0, 8));

TEST(SpinConversionTest, RoundTrip) {
  std::vector<uint8_t> x = {0, 1, 1, 0};
  std::vector<int8_t> expected_spins = {-1, 1, 1, -1};
  EXPECT_EQ(AssignmentToSpins(x), expected_spins);
  EXPECT_EQ(SpinsToAssignment(expected_spins), x);
}

// --------------------------------------------------------------------
// Exhaustive minimization
// --------------------------------------------------------------------

TEST(QuboBruteForceTest, SolvesTinyInstance) {
  QuboProblem problem(2);
  problem.AddLinear(0, -1.0);
  problem.AddLinear(1, 2.0);
  problem.AddQuadratic(0, 1, -4.0);
  auto result = SolveExhaustive(problem);
  ASSERT_TRUE(result.ok());
  // Setting both: -1 + 2 - 4 = -3 is minimal.
  EXPECT_DOUBLE_EQ(result->energy, -3.0);
  std::vector<uint8_t> expected = {1, 1};
  EXPECT_EQ(result->assignment, expected);
}

TEST(QuboBruteForceTest, CountsDegenerateOptima) {
  QuboProblem problem(2);  // all zero weights: all 4 states tie at 0
  auto result = SolveExhaustive(problem);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->energy, 0.0);
  EXPECT_EQ(result->num_optima, 4);
}

TEST(QuboBruteForceTest, RejectsLargeInstances) {
  QuboProblem problem(30);
  auto result = SolveExhaustive(problem, /*max_vars=*/26);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

class QuboBruteForceProperty : public ::testing::TestWithParam<int> {};

TEST_P(QuboBruteForceProperty, GrayCodeMatchesNaiveScan) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  QuboProblem problem = RandomQubo(rng.UniformInt(1, 10), 0.5, &rng);
  auto result = SolveExhaustive(problem);
  ASSERT_TRUE(result.ok());
  double naive_best = 1e300;
  int n = problem.num_vars();
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<uint8_t> x(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) x[static_cast<size_t>(i)] = (mask >> i) & 1;
    naive_best = std::min(naive_best, problem.Energy(x));
  }
  EXPECT_NEAR(result->energy, naive_best, 1e-9);
  EXPECT_NEAR(problem.Energy(result->assignment), result->energy, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboBruteForceProperty,
                         ::testing::Range(0, 10));

// --------------------------------------------------------------------
// Serialization
// --------------------------------------------------------------------

TEST(QuboSerializationTest, RoundTrip) {
  Rng rng(3);
  QuboProblem problem = RandomQubo(6, 0.5, &rng);
  auto restored = FromText(ToText(problem));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_vars(), problem.num_vars());
  for (VarId i = 0; i < problem.num_vars(); ++i) {
    EXPECT_DOUBLE_EQ(restored->linear(i), problem.linear(i));
    for (VarId j = i + 1; j < problem.num_vars(); ++j) {
      EXPECT_DOUBLE_EQ(restored->quadratic(i, j), problem.quadratic(i, j));
    }
  }
}

TEST(QuboSerializationTest, RejectsMalformed) {
  EXPECT_FALSE(FromText("").ok());
  EXPECT_FALSE(FromText("qubo v1 2\nlin 5 1.0\nend\n").ok());   // var range
  EXPECT_FALSE(FromText("qubo v1 2\nquad 0 0 1.0\nend\n").ok());  // i == j
  EXPECT_FALSE(FromText("qubo v1 2\nlin 0 1.0\n").ok());          // no end
  EXPECT_FALSE(FromText("qubo v1 2\nbogus 1\nend\n").ok());
}

}  // namespace
}  // namespace qubo
}  // namespace qmqo
