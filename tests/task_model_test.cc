// Tests for the task-based MQO model and the paper's footnote-4 reduction
// to the pairwise-savings model.

#include <gtest/gtest.h>

#include "mqo/brute_force.h"
#include "mqo/task_model.h"
#include "util/rng.h"

namespace qmqo {
namespace mqo {
namespace {

/// Two queries sharing one scan task.
TaskBasedProblem SharedScan() {
  TaskBasedProblem tasks;
  tasks.task_costs = {10.0, 4.0, 6.0, 3.0};
  // Query 0: plan A = {scan0, join1}, plan B = {join2} (pre-aggregated).
  // Query 1: plan A = {scan0, filter3}, plan B = {join2, filter3}.
  tasks.plans_of = {
      {{0, 1}, {2}},
      {{0, 3}, {2, 3}},
  };
  return tasks;
}

TEST(TaskModelTest, ReductionShapes) {
  auto reduction = ReduceToPairwise(SharedScan());
  ASSERT_TRUE(reduction.ok()) << reduction.status().ToString();
  // 2 original queries + 4 task queries.
  EXPECT_EQ(reduction->problem.num_queries(), 6);
  EXPECT_EQ(reduction->num_original_queries, 2);
  // Plan costs are task-cost sums.
  EXPECT_DOUBLE_EQ(reduction->problem.plan_cost(0), 14.0);  // {0,1}
  EXPECT_DOUBLE_EQ(reduction->problem.plan_cost(1), 6.0);   // {2}
  EXPECT_DOUBLE_EQ(reduction->problem.plan_cost(2), 13.0);  // {0,3}
  // Task queries: materialize cost then skip 0.
  for (int t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(
        reduction->problem.plan_cost(reduction->materialize_plan(t)),
        SharedScan().task_costs[static_cast<size_t>(t)]);
    EXPECT_DOUBLE_EQ(reduction->problem.plan_cost(reduction->skip_plan(t)),
                     0.0);
  }
  // Savings: plan 0 shares task 0 and task 1 with their materialize plans.
  EXPECT_DOUBLE_EQ(
      reduction->problem.saving_between(0, reduction->materialize_plan(0)),
      10.0);
  EXPECT_DOUBLE_EQ(
      reduction->problem.saving_between(0, reduction->materialize_plan(1)),
      4.0);
}

TEST(TaskModelTest, ReductionOptimumMatchesDirectSemantics) {
  TaskBasedProblem tasks = SharedScan();
  auto reduction = ReduceToPairwise(tasks);
  ASSERT_TRUE(reduction.ok());
  auto reduced_opt = SolveExhaustive(reduction->problem);
  ASSERT_TRUE(reduced_opt.ok());
  // Direct enumeration over the 2 x 2 original selections.
  double direct_best = 1e300;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      direct_best = std::min(direct_best, EvaluateTaskCost(tasks, {a, b}));
    }
  }
  EXPECT_NEAR(reduced_opt->cost, direct_best, 1e-9);
  // The decoded original selection achieves the direct optimum too.
  std::vector<int> selection =
      OriginalSelection(*reduction, reduced_opt->solution);
  EXPECT_NEAR(EvaluateTaskCost(tasks, selection), direct_best, 1e-9);
}

TEST(TaskModelTest, UnusedTasksCostNothing) {
  TaskBasedProblem tasks;
  tasks.task_costs = {5.0, 7.0};
  tasks.plans_of = {{{0}}};  // one query, one plan, task 1 never used
  auto reduction = ReduceToPairwise(tasks);
  ASSERT_TRUE(reduction.ok());
  auto optimum = SolveExhaustive(reduction->problem);
  ASSERT_TRUE(optimum.ok());
  EXPECT_NEAR(optimum->cost, 5.0, 1e-9);
}

TEST(TaskModelTest, TaskSharedByThreePlansChargedOnce) {
  // Three queries all needing the same expensive scan: the pairwise model
  // cannot express this directly (the paper's footnote: introduce the
  // intermediate-result query), but the reduction charges it exactly once.
  TaskBasedProblem tasks;
  tasks.task_costs = {100.0, 1.0, 2.0, 3.0};
  tasks.plans_of = {
      {{0, 1}},
      {{0, 2}},
      {{0, 3}},
  };
  auto reduction = ReduceToPairwise(tasks);
  ASSERT_TRUE(reduction.ok());
  auto optimum = SolveExhaustive(reduction->problem);
  ASSERT_TRUE(optimum.ok());
  EXPECT_NEAR(optimum->cost, 100.0 + 1.0 + 2.0 + 3.0, 1e-9);
}

TEST(TaskModelTest, DuplicateTaskIdsWithinPlanAreDeduplicated) {
  TaskBasedProblem tasks;
  tasks.task_costs = {8.0};
  tasks.plans_of = {{{0, 0, 0}}};
  auto reduction = ReduceToPairwise(tasks);
  ASSERT_TRUE(reduction.ok());
  EXPECT_DOUBLE_EQ(reduction->problem.plan_cost(0), 8.0);
}

TEST(TaskModelTest, RejectsInvalidInput) {
  TaskBasedProblem empty;
  EXPECT_FALSE(ReduceToPairwise(empty).ok());

  TaskBasedProblem bad_task;
  bad_task.task_costs = {1.0};
  bad_task.plans_of = {{{7}}};  // task id out of range
  EXPECT_FALSE(ReduceToPairwise(bad_task).ok());

  TaskBasedProblem no_plans;
  no_plans.task_costs = {1.0};
  no_plans.plans_of = {{}};  // a query with no plans
  EXPECT_FALSE(ReduceToPairwise(no_plans).ok());

  TaskBasedProblem negative;
  negative.task_costs = {-1.0};
  negative.plans_of = {{{0}}};
  EXPECT_FALSE(ReduceToPairwise(negative).ok());
}

/// Property: on random task-based instances, the reduced pairwise optimum
/// equals the direct union-cost optimum.
class TaskReductionProperty : public ::testing::TestWithParam<int> {};

TEST_P(TaskReductionProperty, ReductionIsExact) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  TaskBasedProblem tasks;
  int num_tasks = rng.UniformInt(2, 6);
  for (int t = 0; t < num_tasks; ++t) {
    tasks.task_costs.push_back(static_cast<double>(rng.UniformInt(1, 20)));
  }
  int num_queries = rng.UniformInt(2, 4);
  for (int q = 0; q < num_queries; ++q) {
    std::vector<std::vector<int>> plans;
    int num_plans = rng.UniformInt(1, 3);
    for (int k = 0; k < num_plans; ++k) {
      std::vector<int> task_set;
      for (int t = 0; t < num_tasks; ++t) {
        if (rng.Bernoulli(0.45)) task_set.push_back(t);
      }
      if (task_set.empty()) task_set.push_back(rng.UniformInt(0, num_tasks - 1));
      plans.push_back(std::move(task_set));
    }
    tasks.plans_of.push_back(std::move(plans));
  }

  auto reduction = ReduceToPairwise(tasks);
  ASSERT_TRUE(reduction.ok());
  auto reduced_opt = SolveExhaustive(reduction->problem);
  ASSERT_TRUE(reduced_opt.ok());

  // Direct enumeration of original selections.
  double direct_best = 1e300;
  std::vector<int> selection(static_cast<size_t>(num_queries), 0);
  while (true) {
    direct_best = std::min(direct_best, EvaluateTaskCost(tasks, selection));
    int q = 0;
    while (q < num_queries) {
      size_t uq = static_cast<size_t>(q);
      if (++selection[uq] <
          static_cast<int>(tasks.plans_of[uq].size())) {
        break;
      }
      selection[uq] = 0;
      ++q;
    }
    if (q == num_queries) break;
  }
  EXPECT_NEAR(reduced_opt->cost, direct_best, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskReductionProperty,
                         ::testing::Range(0, 14));

}  // namespace
}  // namespace mqo
}  // namespace qmqo
