// Property tests for the bit-packed assignment storage (anneal/packed.h)
// and its load-bearing contract: the packed representation must agree with
// the unpacked `std::vector<uint8_t>` representation it replaced — on
// round-trips, on equality, on the lexicographic order that defines
// SampleSet's sort (and therefore the parallel read engine's bit-identical
// results), and on the full sort/dedup/cap/merge pipeline under shuffled
// insertion orders.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "anneal/packed.h"
#include "anneal/sample_set.h"
#include "qubo/ising.h"
#include "util/rng.h"

namespace qmqo {
namespace anneal {
namespace {

/// Sizes covering every word-boundary edge from 1 bit to just past 64
/// words, as the ISSUE prescribes: 1..4097 with the ±1 neighborhoods of
/// multiples of 64.
std::vector<int> BoundarySizes() {
  std::vector<int> sizes = {1, 2, 3, 31, 32, 33, 63, 64, 65, 127, 128, 129,
                            191, 192, 193, 1000, 2047, 2048, 2049, 4095,
                            4096, 4097};
  return sizes;
}

std::vector<uint8_t> RandomBytes(int n, Rng* rng) {
  std::vector<uint8_t> out(static_cast<size_t>(n));
  for (auto& b : out) b = rng->Bernoulli(0.5) ? 1 : 0;
  return out;
}

// --------------------------------------------------------------------
// Round-trips
// --------------------------------------------------------------------

TEST(PackedRoundTripTest, BytesSurviveAcrossWordBoundarySizes) {
  Rng rng(1);
  for (int n : BoundarySizes()) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<uint8_t> bytes = RandomBytes(n, &rng);
      std::vector<uint64_t> words(
          static_cast<size_t>(PackedWordsForBits(n)));
      PackBytes(bytes.data(), n, words.data());
      AssignmentRef ref(words.data(), n);
      EXPECT_EQ(ref.ToBytes(), bytes) << "n=" << n;
      // Per-bit accessor agrees with bulk unpack.
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(ref.bit(i), bytes[static_cast<size_t>(i)])
            << "n=" << n << " bit " << i;
      }
    }
  }
}

TEST(PackedRoundTripTest, SpinsSurviveAcrossWordBoundarySizes) {
  Rng rng(2);
  for (int n : BoundarySizes()) {
    std::vector<int8_t> spins(static_cast<size_t>(n));
    for (auto& s : spins) s = rng.Bernoulli(0.5) ? 1 : -1;
    std::vector<uint64_t> words(static_cast<size_t>(PackedWordsForBits(n)));
    PackSpins(spins.data(), n, words.data());
    AssignmentRef ref(words.data(), n);
    EXPECT_EQ(ref.ToSpins(), spins) << "n=" << n;
    // PackSpins is the fused SpinsToAssignment + PackBytes.
    std::vector<uint64_t> via_bytes(words.size());
    std::vector<uint8_t> bytes = qubo::SpinsToAssignment(spins);
    PackBytes(bytes.data(), n, via_bytes.data());
    EXPECT_EQ(words, via_bytes) << "n=" << n;
  }
}

TEST(PackedRoundTripTest, TailBitsStayCanonicalZero) {
  Rng rng(3);
  for (int n : {1, 63, 65, 100, 129}) {
    std::vector<uint8_t> bytes(static_cast<size_t>(n), 1);  // all ones
    std::vector<uint64_t> words(
        static_cast<size_t>(PackedWordsForBits(n)), ~uint64_t{0});
    PackBytes(bytes.data(), n, words.data());
    if (n % 64 != 0) {
      const uint64_t tail = words.back() >> (n % 64);
      EXPECT_EQ(tail, 0u) << "n=" << n;
    }
    (void)rng;
  }
}

TEST(PackedRoundTripTest, PopCountMatchesByteSum) {
  Rng rng(4);
  for (int n : {1, 64, 65, 1000, 4097}) {
    std::vector<uint8_t> bytes = RandomBytes(n, &rng);
    std::vector<uint64_t> words(static_cast<size_t>(PackedWordsForBits(n)));
    PackBytes(bytes.data(), n, words.data());
    int expected = 0;
    for (uint8_t b : bytes) expected += b;
    EXPECT_EQ(AssignmentRef(words.data(), n).PopCount(), expected)
        << "n=" << n;
  }
}

// --------------------------------------------------------------------
// Equality / ordering agreement with the byte representation
// --------------------------------------------------------------------

TEST(PackedOrderingTest, CompareAgreesWithByteLexOrder) {
  Rng rng(5);
  for (int n : BoundarySizes()) {
    PackedAssignments pool(n);
    std::vector<std::vector<uint8_t>> bytes;
    for (int i = 0; i < 24; ++i) {
      std::vector<uint8_t> b = RandomBytes(n, &rng);
      // Half the pairs share a long prefix so the tie-break scans into
      // late words (the case word-wise compare gets wrong first).
      if (i % 2 == 1 && n > 1) {
        b = bytes.back();
        const int flip = rng.UniformInt(0, n - 1);
        b[static_cast<size_t>(flip)] ^= 1;
      }
      pool.AppendBytes(b);
      bytes.push_back(std::move(b));
    }
    for (size_t i = 0; i < bytes.size(); ++i) {
      for (size_t j = 0; j < bytes.size(); ++j) {
        const int cmp =
            pool[static_cast<int>(i)].Compare(pool[static_cast<int>(j)]);
        const bool lt = bytes[i] < bytes[j];
        const bool eq = bytes[i] == bytes[j];
        EXPECT_EQ(cmp < 0, lt) << "n=" << n;
        EXPECT_EQ(cmp == 0, eq) << "n=" << n;
        EXPECT_EQ(pool[static_cast<int>(i)] == pool[static_cast<int>(j)],
                  eq)
            << "n=" << n;
        EXPECT_EQ(pool[static_cast<int>(i)] < pool[static_cast<int>(j)], lt)
            << "n=" << n;
      }
    }
  }
}

// --------------------------------------------------------------------
// Arena mechanics
// --------------------------------------------------------------------

TEST(PackedArenaTest, EmptyAndDefaultComparisonsAreDefined) {
  // Default-constructed refs and empty pools have null word storage; the
  // comparisons must not hand those pointers to memcmp (UB the sanitizer
  // jobs would trap). Pinned here so the guard never regresses.
  AssignmentRef a;
  AssignmentRef b;
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
  PackedAssignments x;
  PackedAssignments y;
  EXPECT_TRUE(x == y);
  PackedAssignments z(8);
  EXPECT_TRUE(x == x);
  std::vector<uint8_t> bytes(8, 1);
  z.AppendBytes(bytes);
  EXPECT_FALSE(x == z);
}

TEST(PackedArenaTest, AppendAllConcatenatesAndAdoptsWidth) {
  Rng rng(6);
  PackedAssignments a(130);
  PackedAssignments b(130);
  std::vector<std::vector<uint8_t>> all;
  for (int i = 0; i < 5; ++i) {
    all.push_back(RandomBytes(130, &rng));
    a.AppendBytes(all.back());
  }
  for (int i = 0; i < 7; ++i) {
    all.push_back(RandomBytes(130, &rng));
    b.AppendBytes(all.back());
  }
  PackedAssignments joined;  // unset width: adopted from the first append
  EXPECT_EQ(joined.AppendAll(a), 0);
  EXPECT_EQ(joined.AppendAll(b), 5);
  ASSERT_EQ(joined.size(), 12);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(joined.ToBytes(i), all[static_cast<size_t>(i)]) << i;
  }
}

TEST(PackedArenaTest, ResizeAndStoreFillSlotsOutOfOrder) {
  Rng rng(7);
  const int n = 77;
  PackedAssignments pool(n);
  pool.Resize(9);
  std::vector<std::vector<uint8_t>> expected(9);
  // Store in a scrambled order, as parallel workers do.
  for (int slot : {4, 0, 8, 2, 6, 1, 7, 3, 5}) {
    expected[static_cast<size_t>(slot)] = RandomBytes(n, &rng);
    pool.StoreBytes(slot, expected[static_cast<size_t>(slot)].data(), n);
  }
  for (int slot = 0; slot < 9; ++slot) {
    EXPECT_EQ(pool.ToBytes(slot), expected[static_cast<size_t>(slot)])
        << slot;
  }
  pool.Truncate(4);
  ASSERT_EQ(pool.size(), 4);
  EXPECT_EQ(pool.ToBytes(3), expected[3]);
}

TEST(PackedArenaTest, MemoryFootprintIsWordsNotBytes) {
  const int n = 2048;
  PackedAssignments pool(n);
  pool.Reserve(100);
  std::vector<uint8_t> bytes(static_cast<size_t>(n), 1);
  for (int i = 0; i < 100; ++i) pool.AppendBytes(bytes);
  // 100 assignments x 32 words: the arena holds exactly what it reserved.
  EXPECT_EQ(pool.memory_bytes(), 100u * 32u * sizeof(uint64_t));
}

// --------------------------------------------------------------------
// SampleSet pipeline equivalence against an unpacked reference model
// --------------------------------------------------------------------

/// The byte-vector reference: the exact algorithm SampleSet implemented
/// before the packed arena (sort by (energy, byte-lex assignment), merge
/// adjacent duplicates, truncate to the cap).
struct RefSample {
  std::vector<uint8_t> assignment;
  double energy;
  int count;
};

std::vector<RefSample> ReferenceFinalize(std::vector<RefSample> raw,
                                         int max_samples) {
  std::sort(raw.begin(), raw.end(), [](const RefSample& a,
                                       const RefSample& b) {
    if (a.energy != b.energy) return a.energy < b.energy;
    return a.assignment < b.assignment;
  });
  std::vector<RefSample> merged;
  for (RefSample& sample : raw) {
    if (!merged.empty() && merged.back().assignment == sample.assignment) {
      merged.back().count += sample.count;
    } else {
      merged.push_back(std::move(sample));
    }
  }
  if (max_samples > 0 &&
      static_cast<int>(merged.size()) > max_samples) {
    merged.resize(static_cast<size_t>(max_samples));
  }
  return merged;
}

void ExpectMatchesReference(const SampleSet& set,
                            const std::vector<RefSample>& reference) {
  ASSERT_EQ(set.samples().size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(set.samples()[i].assignment.ToBytes(),
              reference[i].assignment)
        << i;
    EXPECT_EQ(set.samples()[i].energy, reference[i].energy) << i;
    EXPECT_EQ(set.samples()[i].num_occurrences, reference[i].count) << i;
  }
}

class PackedSampleSetProperty : public ::testing::TestWithParam<int> {};

TEST_P(PackedSampleSetProperty, FinalizeMatchesUnpackedReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 600);
  // Word-boundary widths and a small duplicate-rich universe.
  const int n = std::vector<int>{1, 5, 63, 64, 65, 130}[GetParam() % 6];
  const int distinct = rng.UniformInt(2, 12);
  std::vector<std::vector<uint8_t>> universe;
  for (int d = 0; d < distinct; ++d) {
    universe.push_back(RandomBytes(n, &rng));
  }
  std::vector<RefSample> raw;
  for (int i = 0; i < 200; ++i) {
    const int pick = rng.UniformInt(0, distinct - 1);
    // Energies collide across assignments (integer levels) to stress the
    // assignment tie-break; one assignment always maps to one energy, as
    // the samplers guarantee.
    raw.push_back(RefSample{universe[static_cast<size_t>(pick)],
                            static_cast<double>(pick % 4), 1});
  }
  rng.Shuffle(&raw);
  for (int cap : {0, 3}) {
    SampleSet set;
    set.set_max_samples(cap);
    for (const RefSample& sample : raw) {
      set.Add(sample.assignment, sample.energy);
    }
    set.Finalize();
    EXPECT_EQ(set.total_reads(), 200);
    ExpectMatchesReference(set, ReferenceFinalize(raw, cap));
  }
}

TEST_P(PackedSampleSetProperty, MergeDedupMatchesReferenceUnderShuffles) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 700);
  const int n = std::vector<int>{2, 64, 65, 96}[GetParam() % 4];
  const int distinct = rng.UniformInt(3, 10);
  std::vector<std::vector<uint8_t>> universe;
  for (int d = 0; d < distinct; ++d) {
    universe.push_back(RandomBytes(n, &rng));
  }
  auto draw = [&](int count) {
    std::vector<RefSample> out;
    for (int i = 0; i < count; ++i) {
      const int pick = rng.UniformInt(0, distinct - 1);
      out.push_back(RefSample{universe[static_cast<size_t>(pick)],
                              static_cast<double>(pick % 3), 1});
    }
    rng.Shuffle(&out);
    return out;
  };
  const std::vector<RefSample> raw_a = draw(60);
  const std::vector<RefSample> raw_b = draw(45);
  std::vector<RefSample> raw_union = raw_a;
  raw_union.insert(raw_union.end(), raw_b.begin(), raw_b.end());

  for (int cap : {0, 4}) {
    SampleSet a;
    a.set_max_samples(cap);
    for (const RefSample& sample : raw_a) a.Add(sample.assignment, sample.energy);
    SampleSet b;
    b.set_max_samples(cap);
    for (const RefSample& sample : raw_b) b.Add(sample.assignment, sample.energy);
    a.Finalize();
    b.Finalize();
    a.Merge(b);  // finalized x finalized: the linear no-re-sort path
    EXPECT_EQ(a.total_reads(), 105);
    ExpectMatchesReference(a, ReferenceFinalize(raw_union, cap));

    // Append + Finalize (the parallel engine's accumulation path) agrees.
    SampleSet c;
    c.set_max_samples(cap);
    for (const RefSample& sample : raw_a) c.Add(sample.assignment, sample.energy);
    SampleSet d;
    for (const RefSample& sample : raw_b) d.Add(sample.assignment, sample.energy);
    c.Append(std::move(d));
    c.Finalize();
    ExpectMatchesReference(c, ReferenceFinalize(raw_union, cap));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedSampleSetProperty,
                         ::testing::Range(0, 12));

TEST(PackedSampleSetTest, AddSpinsEqualsAddOfSpinsToAssignment) {
  Rng rng(8);
  const int n = 70;
  SampleSet via_spins;
  SampleSet via_bytes;
  for (int i = 0; i < 20; ++i) {
    std::vector<int8_t> spins(static_cast<size_t>(n));
    for (auto& s : spins) s = rng.Bernoulli(0.5) ? 1 : -1;
    const double energy = rng.UniformReal(-5.0, 5.0);
    via_spins.AddSpins(spins, energy);
    via_bytes.Add(qubo::SpinsToAssignment(spins), energy);
  }
  via_spins.Finalize();
  via_bytes.Finalize();
  ASSERT_EQ(via_spins.samples().size(), via_bytes.samples().size());
  for (size_t i = 0; i < via_spins.samples().size(); ++i) {
    EXPECT_EQ(via_spins.samples()[i].assignment,
              via_bytes.samples()[i].assignment);
    EXPECT_EQ(via_spins.samples()[i].energy, via_bytes.samples()[i].energy);
  }
}

}  // namespace
}  // namespace anneal
}  // namespace qmqo
