// Tests for the classical heuristics (GA, iterated hill climbing, greedy).

#include <gtest/gtest.h>

#include "baselines/anytime.h"
#include "baselines/genetic.h"
#include "baselines/greedy.h"
#include "baselines/hill_climbing.h"
#include "mqo/brute_force.h"
#include "mqo/generator.h"
#include "util/rng.h"

namespace qmqo {
namespace baselines {
namespace {

mqo::MqoProblem MediumProblem(uint64_t seed) {
  Rng rng(seed);
  mqo::RandomWorkloadOptions options;
  options.num_queries = 15;
  options.min_plans = 2;
  options.max_plans = 3;
  options.sharing_probability = 0.2;
  return mqo::GenerateRandomWorkload(options, &rng);
}

TEST(RandomSolutionTest, IsValid) {
  mqo::MqoProblem problem = MediumProblem(1);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    mqo::MqoSolution solution = RandomSolution(problem, &rng);
    EXPECT_TRUE(mqo::ValidateSolution(problem, solution).ok());
  }
}

// --------------------------------------------------------------------
// Genetic algorithm
// --------------------------------------------------------------------

TEST(GeneticTest, NameIncludesPopulation) {
  GeneticOptions options;
  options.population_size = 200;
  EXPECT_EQ(GeneticAlgorithm(options).name(), "GA(200)");
}

TEST(GeneticTest, ReturnsValidSolution) {
  mqo::MqoProblem problem = MediumProblem(3);
  Rng rng(4);
  OptimizerBudget budget;
  budget.time_limit_ms = 50.0;
  auto result = GeneticAlgorithm().Optimize(problem, budget, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(mqo::ValidateSolution(problem, *result).ok());
}

TEST(GeneticTest, ImprovementCallbackIsMonotone) {
  mqo::MqoProblem problem = MediumProblem(5);
  Rng rng(6);
  OptimizerBudget budget;
  budget.time_limit_ms = 100.0;
  double last = 1e300;
  int calls = 0;
  auto result = GeneticAlgorithm().Optimize(
      problem, budget, &rng,
      [&](double, double cost, const mqo::MqoSolution& solution) {
        ++calls;
        EXPECT_LT(cost, last);
        EXPECT_NEAR(mqo::EvaluateCost(problem, solution), cost, 1e-9);
        last = cost;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_GE(calls, 1);
  EXPECT_NEAR(mqo::EvaluateCost(problem, *result), last, 1e-9);
}

TEST(GeneticTest, GenerationLimitRespected) {
  mqo::MqoProblem problem = MediumProblem(7);
  Rng rng(8);
  OptimizerBudget budget;
  budget.time_limit_ms = 10000.0;
  budget.max_iterations = 3;  // generations
  auto result = GeneticAlgorithm().Optimize(problem, budget, &rng, nullptr);
  ASSERT_TRUE(result.ok());  // mostly checks it returns promptly
}

TEST(GeneticTest, RejectsTinyPopulation) {
  mqo::MqoProblem problem = MediumProblem(9);
  Rng rng(10);
  GeneticOptions options;
  options.population_size = 1;
  OptimizerBudget budget;
  EXPECT_FALSE(
      GeneticAlgorithm(options).Optimize(problem, budget, &rng, nullptr).ok());
}

TEST(GeneticTest, SolvesTinyProblemExactly) {
  Rng gen_rng(11);
  mqo::RandomWorkloadOptions options;
  options.num_queries = 4;
  options.min_plans = 2;
  options.max_plans = 2;
  options.sharing_probability = 0.5;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &gen_rng);
  auto exact = mqo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  Rng rng(12);
  OptimizerBudget budget;
  budget.time_limit_ms = 200.0;
  auto result = GeneticAlgorithm().Optimize(problem, budget, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(mqo::EvaluateCost(problem, *result), exact->cost, 1e-9);
}

// --------------------------------------------------------------------
// Iterated hill climbing
// --------------------------------------------------------------------

TEST(ClimbTest, ReturnsValidSolution) {
  mqo::MqoProblem problem = MediumProblem(13);
  Rng rng(14);
  OptimizerBudget budget;
  budget.time_limit_ms = 50.0;
  auto result =
      IteratedHillClimbing().Optimize(problem, budget, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(mqo::ValidateSolution(problem, *result).ok());
}

TEST(ClimbTest, ResultIsLocalOptimum) {
  mqo::MqoProblem problem = MediumProblem(15);
  Rng rng(16);
  OptimizerBudget budget;
  budget.time_limit_ms = 1e9;  // no time pressure
  budget.max_iterations = 1;   // single descent
  auto result =
      IteratedHillClimbing().Optimize(problem, budget, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  // No single-query swap improves the returned solution.
  mqo::IncrementalCostEvaluator eval(problem);
  eval.Reset(*result);
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    for (int k = 0; k < problem.num_plans_of(q); ++k) {
      mqo::PlanId p = problem.first_plan(q) + k;
      EXPECT_GE(eval.SwapDelta(q, p), -1e-9);
    }
  }
}

TEST(ClimbTest, SolvesTinyProblemExactly) {
  Rng gen_rng(17);
  mqo::RandomWorkloadOptions options;
  options.num_queries = 5;
  options.min_plans = 2;
  options.max_plans = 2;
  options.sharing_probability = 0.4;
  mqo::MqoProblem problem = mqo::GenerateRandomWorkload(options, &gen_rng);
  auto exact = mqo::SolveExhaustive(problem);
  ASSERT_TRUE(exact.ok());
  Rng rng(18);
  OptimizerBudget budget;
  budget.time_limit_ms = 200.0;
  auto result =
      IteratedHillClimbing().Optimize(problem, budget, &rng, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(mqo::EvaluateCost(problem, *result), exact->cost, 1e-9);
}

// --------------------------------------------------------------------
// Greedy
// --------------------------------------------------------------------

TEST(GreedyTest, ReturnsValidSolution) {
  mqo::MqoProblem problem = MediumProblem(19);
  mqo::MqoSolution solution = GreedySolver::Construct(problem);
  EXPECT_TRUE(mqo::ValidateSolution(problem, solution).ok());
}

TEST(GreedyTest, ExploitsObviousSharing) {
  // Query 0: expensive plan with a huge saving vs cheap loner plan.
  mqo::MqoProblem problem;
  problem.AddQuery({10.0, 9.0});
  problem.AddQuery({10.0});
  ASSERT_TRUE(problem.AddSaving(0, 2, 8.0).ok());
  mqo::MqoSolution solution = GreedySolver::Construct(problem);
  // Choosing plan 0 (10 - 8 = 2 marginal) beats plan 1 (9).
  EXPECT_EQ(solution.selected(0), 0);
  EXPECT_DOUBLE_EQ(mqo::EvaluateCost(problem, solution), 12.0);
}

TEST(GreedyTest, AnytimeWrapperReportsOnce) {
  mqo::MqoProblem problem = MediumProblem(20);
  Rng rng(21);
  OptimizerBudget budget;
  int calls = 0;
  auto result = GreedySolver().Optimize(
      problem, budget, &rng,
      [&](double, double, const mqo::MqoSolution&) { ++calls; });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 1);
}

TEST(GreedyTest, DeterministicAcrossCalls) {
  mqo::MqoProblem problem = MediumProblem(22);
  mqo::MqoSolution a = GreedySolver::Construct(problem);
  mqo::MqoSolution b = GreedySolver::Construct(problem);
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------------
// Cross-cutting: determinism in the seed for the randomized baselines.
// --------------------------------------------------------------------

class BaselineDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(BaselineDeterminism, SameSeedSameResult) {
  mqo::MqoProblem problem = MediumProblem(23);
  OptimizerBudget budget;
  budget.max_iterations = 5;
  budget.time_limit_ms = 1e9;
  Rng rng1(static_cast<uint64_t>(GetParam()));
  Rng rng2(static_cast<uint64_t>(GetParam()));
  auto a = IteratedHillClimbing().Optimize(problem, budget, &rng1, nullptr);
  auto b = IteratedHillClimbing().Optimize(problem, budget, &rng2, nullptr);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineDeterminism, ::testing::Range(0, 4));

}  // namespace
}  // namespace baselines
}  // namespace qmqo
