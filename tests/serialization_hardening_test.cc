// Hostile-input hardening of the wire formats (mqo and qubo text
// serialization). The service deserializes untrusted payloads, so the
// contract is: any byte string either parses into a validated instance or
// comes back as a typed InvalidArgument/OutOfRange — never an assert, an
// abort, a silently-wrong value (atoi's 0-on-garbage), or an
// attacker-sized allocation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mqo/problem.h"
#include "mqo/serialization.h"
#include "qubo/qubo.h"
#include "qubo/serialization.h"
#include "util/rng.h"

namespace qmqo {
namespace {

uint64_t ChaosSeed() {
  const char* env = std::getenv("QMQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

mqo::MqoProblem RandomProblem(Rng* rng) {
  mqo::MqoProblem problem;
  const int queries = rng->UniformInt(2, 6);
  for (int q = 0; q < queries; ++q) {
    std::vector<double> costs;
    const int plans = rng->UniformInt(1, 4);
    for (int p = 0; p < plans; ++p) {
      costs.push_back(static_cast<double>(rng->UniformInt(1, 50)));
    }
    problem.AddQuery(std::move(costs));
  }
  const int savings = rng->UniformInt(0, 2 * queries);
  for (int s = 0; s < savings; ++s) {
    int a = rng->UniformInt(0, problem.num_plans() - 1);
    int b = rng->UniformInt(0, problem.num_plans() - 1);
    if (problem.query_of(a) == problem.query_of(b)) continue;
    (void)problem.AddSaving(a, b, static_cast<double>(rng->UniformInt(1, 5)));
  }
  return problem;
}

TEST(MqoSerializationHardeningTest, SeededRoundTrip) {
  Rng rng(ChaosSeed());
  for (int i = 0; i < 25; ++i) {
    mqo::MqoProblem problem = RandomProblem(&rng);
    std::string text = mqo::ToText(problem);
    auto parsed = mqo::FromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // Canonical-text equality is the strongest round-trip check the
    // format offers: it covers costs, query partitioning, and savings.
    EXPECT_EQ(mqo::ToText(*parsed), text);
  }
}

TEST(MqoSerializationHardeningTest, TruncationAtEveryPrefixIsSafe) {
  Rng rng(ChaosSeed() + 2);
  mqo::MqoProblem problem = RandomProblem(&rng);
  std::string text = mqo::ToText(problem);
  for (size_t cut = 0; cut < text.size(); ++cut) {
    auto parsed = mqo::FromText(text.substr(0, cut));
    // A prefix either fails with a typed status or (when the cut lands
    // after a complete 'end') yields an instance that validates.
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->Validate().ok());
    } else {
      EXPECT_FALSE(parsed.status().ok());
    }
  }
}

TEST(MqoSerializationHardeningTest, MutationFuzzNeverCrashes) {
  Rng rng(ChaosSeed() + 17);
  const char kBytes[] = "0123456789-+.eE naninf#\t qs";
  for (int round = 0; round < 200; ++round) {
    std::string text = mqo::ToText(RandomProblem(&rng));
    const int mutations = rng.UniformInt(1, 8);
    for (int m = 0; m < mutations; ++m) {
      size_t at = static_cast<size_t>(
          rng.UniformInt64(0, static_cast<int64_t>(text.size()) - 1));
      text[at] = kBytes[rng.UniformInt(0, sizeof(kBytes) - 2)];
    }
    auto parsed = mqo::FromText(text);
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->Validate().ok());
    }
  }
}

TEST(MqoSerializationHardeningTest, RejectsHostilePayloads) {
  // Non-finite costs and savings.
  EXPECT_FALSE(mqo::FromText("mqo v1\nquery nan\nend\n").ok());
  EXPECT_FALSE(mqo::FromText("mqo v1\nquery inf\nend\n").ok());
  EXPECT_FALSE(
      mqo::FromText("mqo v1\nquery 1\nquery 1\nsaving 0 1 nan\nend\n").ok());
  EXPECT_FALSE(
      mqo::FromText("mqo v1\nquery 1\nquery 1\nsaving 0 1 inf\nend\n").ok());
  // Overflowing plan ids used to go through atoi (undefined behavior).
  EXPECT_FALSE(mqo::FromText("mqo v1\nquery 1\nquery 1\n"
                             "saving 99999999999999999999 1 2\nend\n")
                   .ok());
  // Garbage ids used to silently parse as 0.
  EXPECT_FALSE(
      mqo::FromText("mqo v1\nquery 1\nquery 1\nsaving xx 1 2\nend\n").ok());
  // Trailing junk on numeric fields.
  EXPECT_FALSE(mqo::FromText("mqo v1\nquery 1abc\nend\n").ok());
  // Wrong field count.
  EXPECT_FALSE(
      mqo::FromText("mqo v1\nquery 1\nquery 1\nsaving 0 1 2 3\nend\n").ok());
  // Missing terminator / header.
  EXPECT_FALSE(mqo::FromText("mqo v1\nquery 1\n").ok());
  EXPECT_FALSE(mqo::FromText("query 1\nend\n").ok());
}

TEST(MqoSerializationHardeningTest, RejectsOversizedPayloadCheaply) {
  std::string huge(17u << 20, '#');
  auto parsed = mqo::FromText(huge);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(QuboSerializationHardeningTest, SeededRoundTrip) {
  Rng rng(ChaosSeed() + 99);
  for (int i = 0; i < 25; ++i) {
    const int n = rng.UniformInt(2, 12);
    qubo::QuboProblem problem(n);
    for (int v = 0; v < n; ++v) {
      problem.AddLinear(v, rng.UniformReal(-4.0, 4.0));
    }
    for (int e = 0; e < n; ++e) {
      int a = rng.UniformInt(0, n - 1);
      int b = rng.UniformInt(0, n - 1);
      if (a != b) problem.AddQuadratic(a, b, rng.UniformReal(-2.0, 2.0));
    }
    std::string text = qubo::ToText(problem);
    auto parsed = qubo::FromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(qubo::ToText(*parsed), text);
  }
}

TEST(QuboSerializationHardeningTest, TruncationAndMutationAreSafe) {
  Rng rng(ChaosSeed() + 5);
  qubo::QuboProblem problem(6);
  for (int v = 0; v < 6; ++v) problem.AddLinear(v, v - 2.5);
  problem.AddQuadratic(0, 3, 1.5);
  problem.AddQuadratic(2, 5, -0.75);
  std::string text = qubo::ToText(problem);
  for (size_t cut = 0; cut < text.size(); ++cut) {
    (void)qubo::FromText(text.substr(0, cut));  // must not crash
  }
  const char kBytes[] = "0123456789-+.eE naninf#\t lq";
  for (int round = 0; round < 200; ++round) {
    std::string mutated = text;
    const int mutations = rng.UniformInt(1, 6);
    for (int m = 0; m < mutations; ++m) {
      size_t at = static_cast<size_t>(
          rng.UniformInt64(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[at] = kBytes[rng.UniformInt(0, sizeof(kBytes) - 2)];
    }
    (void)qubo::FromText(mutated);  // must not crash or UB
  }
}

TEST(QuboSerializationHardeningTest, RejectsHostilePayloads) {
  // A tiny header must not be able to request a gigabyte allocation.
  EXPECT_FALSE(qubo::FromText("qubo v1 999999999\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 99999999999999999999\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 -3\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 x\nend\n").ok());
  // Out-of-range and malformed terms.
  EXPECT_FALSE(qubo::FromText("qubo v1 2\nlin 5 1\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 2\nquad 0 0 1\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 2\nlin 0 nan\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 2\nlin 0 1 extra\nend\n").ok());
  EXPECT_FALSE(qubo::FromText("qubo v1 2\nlin 0abc 1\nend\n").ok());
  // Valid boundary case still parses.
  EXPECT_TRUE(qubo::FromText("qubo v1 2\nlin 0 1\nquad 0 1 -1\nend\n").ok());
}

}  // namespace
}  // namespace qmqo
