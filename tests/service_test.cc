// Tests for the MQO solve service: admission control, priority lanes,
// deadline shedding, load-shedded entry rungs, circuit-breaker feedback,
// drain/shutdown accounting, and — the acceptance bar for everything
// above — bit-identical outcomes and counters at 1/2/4 worker threads
// under a fixed QMQO_CHAOS_SEED.

#include "service/solve_service.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "harness/resilient_solver.h"
#include "mqo/serialization.h"
#include "mqo/solution.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace qmqo {
namespace service {
namespace {

using harness::SolveBackend;

uint64_t ChaosSeed() {
  const char* env = std::getenv("QMQO_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

class SolveServiceTest : public ::testing::Test {
 protected:
  SolveServiceTest() : graph_(4, 4, 4) {
    Rng rng(ChaosSeed());
    harness::PaperWorkloadOptions workload;
    workload.plans_per_query = 2;
    workload.num_queries = 10;
    auto instance = harness::GeneratePaperInstance(graph_, workload, &rng);
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    instance_ = *std::move(instance);
  }

  ServiceOptions SmallServiceOptions() const {
    ServiceOptions options;
    options.graph = &graph_;
    options.num_threads = 1;
    options.pipeline.device.num_reads = 30;
    options.pipeline.device.num_gauges = 3;
    options.pipeline.device.sa_sweeps = 16;
    options.pipeline.device.num_threads = 1;
    options.pipeline.device.seed = ChaosSeed() + 7;
    options.policy.seed = ChaosSeed();
    options.policy.max_attempts_per_backend = 1;
    options.policy.sqa_reads = 4;
    options.policy.sqa_slices = 4;
    options.policy.sqa_sweeps = 16;
    options.policy.sa_reads = 8;
    options.policy.sa_sweeps = 32;
    return options;
  }

  chimera::ChimeraGraph graph_;
  harness::PaperInstance instance_;
};

TEST_F(SolveServiceTest, DrainSolvesEverythingOnTheDevice) {
  SolveService service(SmallServiceOptions());
  for (int i = 0; i < 3; ++i) {
    auto id = service.Submit(instance_.problem, instance_.embedding);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(service.DrainAll(), 3);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.accepted, 3);
  EXPECT_EQ(stats.completed_ok, 3);
  EXPECT_EQ(stats.answered_by[static_cast<int>(SolveBackend::kDevice)], 3);
  EXPECT_EQ(stats.in_flight(), 0);
  for (const SolveOutcome& outcome : service.outcomes()) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.detail;
    EXPECT_EQ(outcome.backend, SolveBackend::kDevice);
    EXPECT_EQ(outcome.entry_rung, 0);
    EXPECT_FALSE(outcome.shed_degraded);
  }
}

// The no-fault, no-overload acceptance bar: a request routed through the
// whole service (queue, admission, breakers, round scheduling) answers
// bit-identically to calling the quantum pipeline directly.
TEST_F(SolveServiceTest, NoFaultPathMatchesDirectPipelineBitExactly) {
  ServiceOptions options = SmallServiceOptions();
  SolveService service(options);
  ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  ASSERT_EQ(service.DrainAll(), 1);
  const SolveOutcome& outcome = service.outcomes()[0];
  ASSERT_TRUE(outcome.status.ok()) << outcome.detail;

  auto direct = harness::SolveQuantumMqo(instance_.problem,
                                         instance_.embedding, graph_,
                                         options.pipeline);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(outcome.cost, direct->best_cost);
  ASSERT_EQ(outcome.solution.num_queries(),
            direct->best_solution.num_queries());
  for (int q = 0; q < outcome.solution.num_queries(); ++q) {
    EXPECT_EQ(outcome.solution.selected(q), direct->best_solution.selected(q));
  }
}

TEST_F(SolveServiceTest, SubmitTextRoundTripMatchesDirectSubmit) {
  SolveService a(SmallServiceOptions());
  SolveService b(SmallServiceOptions());
  ASSERT_TRUE(a.Submit(instance_.problem, instance_.embedding).ok());
  auto id = b.SubmitText(mqo::ToText(instance_.problem));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_EQ(a.DrainAll(), 1);
  ASSERT_EQ(b.DrainAll(), 1);
  // The wire path re-derives the embedding from the cluster structure —
  // the same construction the workload generator used — so the answer is
  // bit-identical to the in-process submission.
  EXPECT_TRUE(b.outcomes()[0].status.ok()) << b.outcomes()[0].detail;
  EXPECT_EQ(b.outcomes()[0].cost, a.outcomes()[0].cost);
  EXPECT_EQ(b.outcomes()[0].backend, a.outcomes()[0].backend);
}

TEST_F(SolveServiceTest, HostilePayloadIsRejectedNotCrashed) {
  SolveService service(SmallServiceOptions());
  auto bad = service.SubmitText("mqo v1\nquery nan\nend\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.stats().rejected_invalid, 1);
  EXPECT_EQ(service.stats().accepted, 0);
}

TEST_F(SolveServiceTest, FullQueueRejectsWithResourceExhausted) {
  ServiceOptions options = SmallServiceOptions();
  options.queue_capacity = 2;
  SolveService service(options);
  ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  auto rejected = service.Submit(instance_.problem, instance_.embedding);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_queue_full, 1);
  // The two admitted requests still drain normally.
  EXPECT_EQ(service.DrainAll(), 2);
  EXPECT_EQ(service.stats().in_flight(), 0);
}

TEST_F(SolveServiceTest, InteractiveLaneDequeuesAheadOfBatch) {
  ServiceOptions options = SmallServiceOptions();
  options.round_width = 1;
  SolveService service(options);
  auto batch1 = service.Submit(instance_.problem, instance_.embedding,
                               RequestPriority::kBatch);
  auto batch2 = service.Submit(instance_.problem, instance_.embedding,
                               RequestPriority::kBatch);
  auto interactive = service.Submit(instance_.problem, instance_.embedding,
                                    RequestPriority::kInteractive);
  ASSERT_TRUE(batch1.ok() && batch2.ok() && interactive.ok());
  ASSERT_EQ(service.ProcessRound(), 1);
  EXPECT_EQ(service.outcomes()[0].id, *interactive);
  ASSERT_EQ(service.ProcessRound(), 1);
  EXPECT_EQ(service.outcomes()[1].id, *batch1);
  ASSERT_EQ(service.ProcessRound(), 1);
  EXPECT_EQ(service.outcomes()[2].id, *batch2);
}

TEST_F(SolveServiceTest, QueueStallExpiresDeadlinedRequestsWithoutSolving) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec stall;
  stall.probability = 1.0;
  stall.latency_ms = 100.0;
  faults.Arm("service.queue_stall", stall);

  ServiceOptions options = SmallServiceOptions();
  options.faults = &faults;
  SolveService service(options);
  auto doomed =
      service.Submit(instance_.problem, instance_.embedding,
                     RequestPriority::kBatch, /*deadline_ms=*/50.0);
  auto patient = service.Submit(instance_.problem, instance_.embedding);
  ASSERT_TRUE(doomed.ok() && patient.ok());
  EXPECT_EQ(service.DrainAll(), 2);

  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.expired_in_queue, 1);
  EXPECT_EQ(stats.completed_ok, 1);
  EXPECT_EQ(stats.in_flight(), 0);
  const SolveOutcome& expired = service.outcomes()[0];
  EXPECT_EQ(expired.id, *doomed);
  EXPECT_EQ(expired.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(expired.attempts, 0);          // never occupied a worker
  EXPECT_GE(expired.queue_wait_modeled_ms, 100.0);
  EXPECT_GE(service.modeled_now_ms(), 100.0);
}

TEST_F(SolveServiceTest, QueuePressureShedsTheEntryRung) {
  ServiceOptions options = SmallServiceOptions();
  options.queue_capacity = 8;  // 4 queued = fill 0.5 = shed_device_fill
  options.round_width = 4;
  SolveService service(options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  }
  ASSERT_EQ(service.ProcessRound(), 4);
  // All four were claimed by an overfilled round: device rung shed, SQA
  // answers, requests still complete.
  EXPECT_EQ(service.stats().shed_degraded, 4);
  EXPECT_EQ(service.stats().answered_by[static_cast<int>(SolveBackend::kSqa)],
            4);
  for (const SolveOutcome& outcome : service.outcomes()) {
    EXPECT_TRUE(outcome.status.ok()) << outcome.detail;
    EXPECT_EQ(outcome.entry_rung, 1);
    EXPECT_TRUE(outcome.shed_degraded);
  }
  // Pressure gone: the next request gets the full ladder again.
  ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  ASSERT_EQ(service.ProcessRound(), 1);
  EXPECT_EQ(
      service.stats().answered_by[static_cast<int>(SolveBackend::kDevice)], 1);
  EXPECT_EQ(service.outcomes()[4].entry_rung, 0);
}

TEST_F(SolveServiceTest, BreakerOpensOnDeviceFailuresThenRecovers) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec down;
  down.fail_first = INT64_MAX;  // device rung fails every attempt
  down.latency_ms = 10.0;       // each failure advances the modeled clock
  faults.Arm("solve.device", down);

  ServiceOptions options = SmallServiceOptions();
  options.faults = &faults;
  options.round_width = 1;
  options.breaker.window = 4;
  options.breaker.min_samples = 2;
  options.breaker.failure_rate_to_open = 0.5;
  options.breaker.open_cooldown_ms = 15.0;
  SolveService service(options);

  // Two failing device attempts open the breaker; the third request skips
  // the device rung at admission without burning an attempt on it.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
    ASSERT_EQ(service.ProcessRound(), 1);
  }
  EXPECT_EQ(service.breaker(SolveBackend::kDevice).state(),
            BreakerState::kOpen);
  EXPECT_EQ(service.stats().completed_ok, 3);  // SQA absorbed everything
  EXPECT_EQ(service.stats().answered_by[static_cast<int>(SolveBackend::kSqa)],
            3);
  EXPECT_EQ(service.outcomes()[2].breaker_skips, 1);
  EXPECT_EQ(service.stats().breaker_skips, 1);

  // The device comes back; queue stalls advance the modeled clock past the
  // cooldown, the half-open probe succeeds, and the breaker closes.
  util::FaultSpec recovered;
  faults.Arm("solve.device", recovered);
  util::FaultSpec stall;
  stall.probability = 1.0;
  stall.latency_ms = 10.0;
  faults.Arm("service.queue_stall", stall);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
    ASSERT_EQ(service.ProcessRound(), 1);
  }
  EXPECT_EQ(service.breaker(SolveBackend::kDevice).state(),
            BreakerState::kClosed);
  EXPECT_GE(service.breaker(SolveBackend::kDevice).times_closed(), 1);
  EXPECT_GE(
      service.stats().answered_by[static_cast<int>(SolveBackend::kDevice)], 1);
}

TEST_F(SolveServiceTest, WorkerCrashFaultFailsOnlyThatRequest) {
  util::FaultInjector faults(ChaosSeed());
  util::FaultSpec crash;
  crash.fail_first = 2;  // request ids start at 1: only id 1 crashes
  faults.Arm("service.worker_crash", crash);

  ServiceOptions options = SmallServiceOptions();
  options.faults = &faults;
  SolveService service(options);
  ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  EXPECT_EQ(service.DrainAll(), 2);
  EXPECT_EQ(service.outcomes()[0].status.code(), StatusCode::kInternal);
  EXPECT_TRUE(service.outcomes()[1].status.ok());
  EXPECT_EQ(service.stats().completed_failed, 1);
  EXPECT_EQ(service.stats().completed_ok, 1);
  EXPECT_EQ(service.stats().in_flight(), 0);
}

TEST_F(SolveServiceTest, FailFastShutdownLeaksNothingAndStopsAdmission) {
  ServiceOptions options = SmallServiceOptions();
  options.round_width = 4;
  SolveService service(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  }
  ASSERT_EQ(service.ProcessRound(), 4);
  EXPECT_EQ(service.Shutdown(/*graceful=*/false), 1);
  const ServiceStats& stats = service.stats();
  EXPECT_EQ(stats.drained_failfast, 1);
  EXPECT_EQ(stats.in_flight(), 0);  // the zero-leak invariant
  EXPECT_EQ(stats.accepted, stats.settled());
  EXPECT_EQ(service.outcomes().back().status.code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(service.accepting());

  auto late = service.Submit(instance_.problem, instance_.embedding);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.stats().rejected_shutdown, 1);
}

TEST_F(SolveServiceTest, GracefulShutdownDrainsFirst) {
  SolveService service(SmallServiceOptions());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service.Submit(instance_.problem, instance_.embedding).ok());
  }
  EXPECT_EQ(service.Shutdown(/*graceful=*/true), 3);
  EXPECT_EQ(service.stats().completed_ok, 3);
  EXPECT_EQ(service.stats().drained_failfast, 0);
  EXPECT_EQ(service.stats().in_flight(), 0);
  EXPECT_FALSE(service.accepting());
}

// The tentpole acceptance test: a full chaos run — queue stalls, worker
// crashes, brownouts, a flaky device, deadline shedding, backoff — settles
// every request with identical per-request outcomes and bit-identical
// stats at 1, 2, and 4 worker threads.
TEST_F(SolveServiceTest, ChaosRunIsIdenticalAcrossWorkerThreads) {
  struct RunResult {
    ServiceStats stats;
    std::vector<std::string> outcomes;
  };
  auto run_with_threads = [&](int num_threads) {
    util::FaultInjector faults(ChaosSeed());
    util::FaultSpec stall;
    stall.probability = 1.0;  // every round ages the queue 25 modeled ms
    stall.latency_ms = 25.0;
    faults.Arm("service.queue_stall", stall);
    util::FaultSpec crash;
    crash.probability = 0.15;
    faults.Arm("service.worker_crash", crash);
    util::FaultSpec brownout;
    brownout.probability = 0.25;
    faults.Arm("service.brownout", brownout);
    util::FaultSpec flaky_device;
    flaky_device.probability = 0.4;
    flaky_device.latency_ms = 5.0;
    faults.Arm("solve.device", flaky_device);

    ServiceOptions options = SmallServiceOptions();
    options.faults = &faults;
    options.num_threads = num_threads;
    options.queue_capacity = 8;
    options.round_width = 3;
    options.policy.max_attempts_per_backend = 2;
    options.policy.backoff_initial_ms = 1.0;
    options.breaker.window = 6;
    options.breaker.min_samples = 3;
    options.breaker.open_cooldown_ms = 40.0;

    SolveService service(options);
    int submitted = 0;
    for (int wave = 0; wave < 3; ++wave) {
      for (int i = 0; i < 4; ++i) {
        RequestPriority priority = (submitted % 3 == 0)
                                       ? RequestPriority::kInteractive
                                       : RequestPriority::kBatch;
        // Every fourth request carries a deadline shorter than one queue
        // stall, so it deterministically expires before scheduling.
        double deadline = (submitted % 4 == 3) ? 20.0 : 0.0;
        auto id = service.Submit(instance_.problem, instance_.embedding,
                                 priority, deadline);
        if (id.ok()) ++submitted;
      }
      service.ProcessRound();
    }
    service.Shutdown(/*graceful=*/true);

    RunResult result;
    result.stats = service.stats();
    for (const SolveOutcome& o : service.outcomes()) {
      std::string selected;
      for (int q = 0; q < o.solution.num_queries(); ++q) {
        selected += StrFormat("%d,", o.solution.selected(q));
      }
      result.outcomes.push_back(StrFormat(
          "id=%llu status=[%s] backend=%d cost=%.17g rung=%d shed=%d "
          "wait=%.3f solve=%.3f attempts=%d skips=%d faults=%lld sel=%s",
          static_cast<unsigned long long>(o.id), o.status.ToString().c_str(),
          static_cast<int>(o.backend), o.cost, o.entry_rung,
          o.shed_degraded ? 1 : 0, o.queue_wait_modeled_ms,
          o.solve_modeled_ms, o.attempts, o.breaker_skips,
          static_cast<long long>(o.faults_observed), selected.c_str()));
    }
    EXPECT_EQ(result.stats.in_flight(), 0) << result.stats.ToString();
    return result;
  };

  RunResult serial = run_with_threads(1);
  EXPECT_GT(serial.stats.accepted, 0);
  EXPECT_GT(serial.stats.expired_in_queue, 0);
  for (int threads : {2, 4}) {
    RunResult parallel = run_with_threads(threads);
    EXPECT_TRUE(parallel.stats == serial.stats)
        << "threads=" << threads << "\nserial:   " << serial.stats.ToString()
        << "\nparallel: " << parallel.stats.ToString();
    ASSERT_EQ(parallel.outcomes.size(), serial.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
      EXPECT_EQ(parallel.outcomes[i], serial.outcomes[i])
          << "threads=" << threads << " outcome " << i;
    }
  }
}

}  // namespace
}  // namespace service
}  // namespace qmqo
