#ifndef QMQO_QUBO_BRUTE_FORCE_H_
#define QMQO_QUBO_BRUTE_FORCE_H_

/// \file brute_force.h
/// Exhaustive QUBO minimization, the ground truth for mapping and annealer
/// tests. Uses a Gray-code walk so consecutive states differ in one bit and
/// each step costs O(degree) via `FlipDelta`.

#include <cstdint>
#include <vector>

#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace qubo {

/// Result of exhaustive minimization.
struct QuboExhaustiveResult {
  std::vector<uint8_t> assignment;
  double energy = 0.0;
  /// Number of optimal assignments encountered (detects degeneracy).
  int num_optima = 1;
};

/// Enumerates all 2^n assignments; fails with ResourceExhausted when
/// n > `max_vars` (default 26). Ties within `tie_epsilon` count as co-optima.
Result<QuboExhaustiveResult> SolveExhaustive(const QuboProblem& qubo,
                                             int max_vars = 26,
                                             double tie_epsilon = 1e-9);

}  // namespace qubo
}  // namespace qmqo

#endif  // QMQO_QUBO_BRUTE_FORCE_H_
