#ifndef QMQO_QUBO_SERIALIZATION_H_
#define QMQO_QUBO_SERIALIZATION_H_

/// \file serialization.h
/// Text serialization for QUBO instances in a qbsolv-style coordinate
/// format, so embedded problems can be inspected or replayed:
///   qubo v1 <num_vars>
///   lin <i> <w>
///   quad <i> <j> <w>
///   end

#include <string>

#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace qubo {

/// Serializes `problem` (only nonzero terms are emitted).
std::string ToText(const QuboProblem& problem);

/// Parses the v1 text format.
Result<QuboProblem> FromText(const std::string& text);

}  // namespace qubo
}  // namespace qmqo

#endif  // QMQO_QUBO_SERIALIZATION_H_
