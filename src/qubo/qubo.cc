#include "qubo/qubo.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace qmqo {
namespace qubo {

QuboProblem::QuboProblem(int num_vars)
    : num_vars_(num_vars), linear_(static_cast<size_t>(num_vars), 0.0) {
  assert(num_vars >= 0);
}

QuboProblem QuboProblem::FromSorted(int num_vars, std::vector<double> linear,
                                    std::vector<Interaction> interactions,
                                    CsrGraph csr) {
  QuboProblem out(num_vars);
  assert(static_cast<int>(linear.size()) == num_vars);
  out.linear_ = std::move(linear);
  out.interactions_ = std::move(interactions);
  if (csr.row_offsets.empty()) {
    out.csr_.Build(num_vars, out.interactions_);
  } else {
    assert(csr.num_vars() == num_vars);
    assert(csr.neighbor_ids.size() == 2 * out.interactions_.size());
    out.csr_ = std::move(csr);
  }
  out.finalized_ = true;
  out.quadratic_map_synced_ = false;
  return out;
}

uint64_t QuboProblem::PairKey(VarId a, VarId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

void QuboProblem::AddLinear(VarId i, double w) {
  assert(i >= 0 && i < num_vars_);
  // Mutation invalidates the derived structures, so the pair map must be
  // current first — it becomes the only source for the next finalize.
  EnsureQuadraticMap();
  linear_[static_cast<size_t>(i)] += w;
  finalized_ = false;
}

void QuboProblem::AddQuadratic(VarId i, VarId j, double w) {
  assert(i >= 0 && i < num_vars_);
  assert(j >= 0 && j < num_vars_);
  assert(i != j && "quadratic term requires distinct variables");
  EnsureQuadraticMap();
  quadratic_[PairKey(i, j)] += w;
  finalized_ = false;
}

double QuboProblem::quadratic(VarId i, VarId j) const {
  EnsureQuadraticMap();
  auto it = quadratic_.find(PairKey(i, j));
  return it == quadratic_.end() ? 0.0 : it->second;
}

void QuboProblem::EnsureQuadraticMap() const {
  if (quadratic_map_synced_) return;
  quadratic_.clear();
  quadratic_.reserve(interactions_.size());
  for (const Interaction& term : interactions_) {
    quadratic_.emplace(PairKey(term.i, term.j), term.weight);
  }
  quadratic_map_synced_ = true;
}

void QuboProblem::EnsureFinalized() const {
  if (finalized_) return;
  interactions_.clear();
  interactions_.reserve(quadratic_.size());
  for (const auto& [key, w] : quadratic_) {
    Interaction term;
    term.i = static_cast<VarId>(key >> 32);
    term.j = static_cast<VarId>(key & 0xffffffffu);
    term.weight = w;
    interactions_.push_back(term);
  }
  std::sort(interactions_.begin(), interactions_.end(),
            [](const Interaction& a, const Interaction& b) {
              return std::tie(a.i, a.j) < std::tie(b.i, b.j);
            });
  csr_.Build(num_vars_, interactions_);
  finalized_ = true;
}

int QuboProblem::num_interactions() const {
  return static_cast<int>(quadratic_map_synced_ ? quadratic_.size()
                                                : interactions_.size());
}

const std::vector<Interaction>& QuboProblem::interactions() const {
  EnsureFinalized();
  return interactions_;
}

NeighborView QuboProblem::neighbors(VarId i) const {
  EnsureFinalized();
  return csr_.row(i);
}

const CsrGraph& QuboProblem::csr() const {
  EnsureFinalized();
  return csr_;
}

double QuboProblem::Energy(const std::vector<uint8_t>& x) const {
  assert(static_cast<int>(x.size()) == num_vars_);
  EnsureFinalized();
  double energy = 0.0;
  for (VarId i = 0; i < num_vars_; ++i) {
    if (x[static_cast<size_t>(i)]) energy += linear_[static_cast<size_t>(i)];
  }
  for (const Interaction& term : interactions_) {
    if (x[static_cast<size_t>(term.i)] && x[static_cast<size_t>(term.j)]) {
      energy += term.weight;
    }
  }
  return energy;
}

double QuboProblem::EnergySpins(const std::vector<int8_t>& spins) const {
  assert(static_cast<int>(spins.size()) == num_vars_);
  EnsureFinalized();
  double energy = 0.0;
  for (VarId i = 0; i < num_vars_; ++i) {
    if (spins[static_cast<size_t>(i)] > 0) {
      energy += linear_[static_cast<size_t>(i)];
    }
  }
  for (const Interaction& term : interactions_) {
    if (spins[static_cast<size_t>(term.i)] > 0 &&
        spins[static_cast<size_t>(term.j)] > 0) {
      energy += term.weight;
    }
  }
  return energy;
}

double QuboProblem::FlipDelta(const std::vector<uint8_t>& x, VarId i) const {
  EnsureFinalized();
  // Local field: linear term plus quadratic terms with currently-set
  // neighbors. Flipping 0->1 adds the field, 1->0 removes it.
  const int32_t* offsets = csr_.row_offsets.data();
  const VarId* ids = csr_.neighbor_ids.data();
  const double* weights = csr_.weights.data();
  double field = linear_[static_cast<size_t>(i)];
  for (int32_t e = offsets[i]; e < offsets[i + 1]; ++e) {
    if (x[static_cast<size_t>(ids[e])]) field += weights[e];
  }
  return x[static_cast<size_t>(i)] ? -field : field;
}

std::pair<double, double> QuboProblem::WeightRange() const {
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  auto absorb = [&](double w) {
    if (first) {
      lo = hi = w;
      first = false;
    } else {
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  };
  for (double w : linear_) absorb(w);
  if (quadratic_map_synced_) {
    for (const auto& [key, w] : quadratic_) {
      (void)key;
      absorb(w);
    }
  } else {
    for (const Interaction& term : interactions_) absorb(term.weight);
  }
  if (first) return {0.0, 0.0};
  return {lo, hi};
}

double QuboProblem::MaxAbsWeight() const {
  auto [lo, hi] = WeightRange();
  return std::max(std::fabs(lo), std::fabs(hi));
}

std::string QuboProblem::Summary() const {
  return StrFormat("QUBO(%d vars, %d interactions)", num_vars_,
                   num_interactions());
}

}  // namespace qubo
}  // namespace qmqo
