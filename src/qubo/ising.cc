#include "qubo/ising.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <tuple>

namespace qmqo {
namespace qubo {

IsingProblem::IsingProblem(int num_spins)
    : h_(static_cast<size_t>(num_spins), 0.0) {
  assert(num_spins >= 0);
}

uint64_t IsingProblem::PairKey(VarId a, VarId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

void IsingProblem::AddField(VarId i, double w) {
  h_[static_cast<size_t>(i)] += w;
  finalized_ = false;
}

void IsingProblem::AddCoupling(VarId i, VarId j, double w) {
  assert(i != j);
  j_[PairKey(i, j)] += w;
  finalized_ = false;
}

double IsingProblem::coupling(VarId i, VarId j) const {
  auto it = j_.find(PairKey(i, j));
  return it == j_.end() ? 0.0 : it->second;
}

void IsingProblem::EnsureFinalized() const {
  if (finalized_) return;
  couplings_.clear();
  couplings_.reserve(j_.size());
  for (const auto& [key, w] : j_) {
    Interaction term;
    term.i = static_cast<VarId>(key >> 32);
    term.j = static_cast<VarId>(key & 0xffffffffu);
    term.weight = w;
    couplings_.push_back(term);
  }
  std::sort(couplings_.begin(), couplings_.end(),
            [](const Interaction& a, const Interaction& b) {
              return std::tie(a.i, a.j) < std::tie(b.i, b.j);
            });
  csr_.Build(num_spins(), couplings_);
  finalized_ = true;
}

const std::vector<Interaction>& IsingProblem::couplings() const {
  EnsureFinalized();
  return couplings_;
}

NeighborView IsingProblem::neighbors(VarId i) const {
  EnsureFinalized();
  return csr_.row(i);
}

const CsrGraph& IsingProblem::csr() const {
  EnsureFinalized();
  return csr_;
}

double IsingProblem::Energy(const std::vector<int8_t>& s) const {
  assert(s.size() == h_.size());
  EnsureFinalized();
  double energy = 0.0;
  for (size_t i = 0; i < h_.size(); ++i) {
    energy += h_[i] * static_cast<double>(s[i]);
  }
  for (const Interaction& term : couplings_) {
    energy += term.weight * static_cast<double>(s[static_cast<size_t>(term.i)]) *
              static_cast<double>(s[static_cast<size_t>(term.j)]);
  }
  return energy;
}

double IsingProblem::FlipDelta(const std::vector<int8_t>& s, VarId i) const {
  EnsureFinalized();
  const int32_t* offsets = csr_.row_offsets.data();
  const VarId* ids = csr_.neighbor_ids.data();
  const double* weights = csr_.weights.data();
  double field = h_[static_cast<size_t>(i)];
  for (int32_t e = offsets[i]; e < offsets[i + 1]; ++e) {
    field += weights[e] * static_cast<double>(s[static_cast<size_t>(ids[e])]);
  }
  // Flipping s_i negates its contribution s_i * field.
  return -2.0 * static_cast<double>(s[static_cast<size_t>(i)]) * field;
}

double IsingProblem::MaxAbsField() const {
  double best = 0.0;
  for (double v : h_) best = std::max(best, std::fabs(v));
  return best;
}

double IsingProblem::MaxAbsCoupling() const {
  double best = 0.0;
  for (const auto& [key, w] : j_) {
    (void)key;
    best = std::max(best, std::fabs(w));
  }
  return best;
}

IsingWithOffset QuboToIsing(const QuboProblem& qubo) {
  IsingWithOffset out{IsingProblem(qubo.num_vars()), 0.0};
  // x_i = (1 + s_i)/2:
  //   w x_i         = w/2 s_i + w/2
  //   w x_i x_j     = w/4 s_i s_j + w/4 s_i + w/4 s_j + w/4
  for (VarId i = 0; i < qubo.num_vars(); ++i) {
    double w = qubo.linear(i);
    if (w != 0.0) {
      out.ising.AddField(i, w / 2.0);
      out.offset += w / 2.0;
    }
  }
  for (const Interaction& term : qubo.interactions()) {
    out.ising.AddCoupling(term.i, term.j, term.weight / 4.0);
    out.ising.AddField(term.i, term.weight / 4.0);
    out.ising.AddField(term.j, term.weight / 4.0);
    out.offset += term.weight / 4.0;
  }
  return out;
}

QuboWithOffset IsingToQubo(const IsingProblem& ising) {
  QuboWithOffset out{QuboProblem(ising.num_spins()), 0.0};
  // s_i = 2 x_i − 1:
  //   h s_i        = 2h x_i − h
  //   J s_i s_j    = 4J x_i x_j − 2J x_i − 2J x_j + J
  for (VarId i = 0; i < ising.num_spins(); ++i) {
    double h = ising.field(i);
    if (h != 0.0) {
      out.qubo.AddLinear(i, 2.0 * h);
      out.offset -= h;
    }
  }
  for (const Interaction& term : ising.couplings()) {
    out.qubo.AddQuadratic(term.i, term.j, 4.0 * term.weight);
    out.qubo.AddLinear(term.i, -2.0 * term.weight);
    out.qubo.AddLinear(term.j, -2.0 * term.weight);
    out.offset += term.weight;
  }
  return out;
}

std::vector<int8_t> AssignmentToSpins(const std::vector<uint8_t>& x) {
  std::vector<int8_t> s(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    s[i] = x[i] ? int8_t{1} : int8_t{-1};
  }
  return s;
}

std::vector<uint8_t> SpinsToAssignment(const std::vector<int8_t>& s) {
  std::vector<uint8_t> x(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    x[i] = s[i] > 0 ? uint8_t{1} : uint8_t{0};
  }
  return x;
}

}  // namespace qubo
}  // namespace qmqo
