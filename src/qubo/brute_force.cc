#include "qubo/brute_force.h"

#include <cmath>

#include "util/string_util.h"

namespace qmqo {
namespace qubo {

Result<QuboExhaustiveResult> SolveExhaustive(const QuboProblem& qubo,
                                             int max_vars,
                                             double tie_epsilon) {
  int n = qubo.num_vars();
  if (n > max_vars) {
    return Status::ResourceExhausted(
        StrFormat("QUBO has %d vars, exhaustive limit is %d", n, max_vars));
  }
  std::vector<uint8_t> x(static_cast<size_t>(n), 0);
  double energy = qubo.Energy(x);  // all-zero assignment: 0, but stay generic

  QuboExhaustiveResult best;
  best.assignment = x;
  best.energy = energy;
  best.num_optima = 1;

  // Gray-code enumeration: state k differs from k-1 in bit ctz(k).
  uint64_t total = n >= 64 ? 0 : (1ull << n);
  for (uint64_t k = 1; k < total; ++k) {
    int bit = __builtin_ctzll(k);
    energy += qubo.FlipDelta(x, bit);
    x[static_cast<size_t>(bit)] ^= 1;
    if (energy < best.energy - tie_epsilon) {
      best.energy = energy;
      best.assignment = x;
      best.num_optima = 1;
    } else if (std::fabs(energy - best.energy) <= tie_epsilon) {
      ++best.num_optima;
    }
  }
  return best;
}

}  // namespace qubo
}  // namespace qmqo
