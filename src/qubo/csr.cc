#include "qubo/csr.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace qmqo {
namespace qubo {

void CsrGraph::Build(int num_vars,
                     const std::vector<Interaction>& interactions) {
  assert(num_vars >= 0);
  row_offsets.assign(static_cast<size_t>(num_vars) + 1, 0);
  neighbor_ids.assign(interactions.size() * 2, 0);
  weights.assign(interactions.size() * 2, 0.0);

  // Pass 1: degrees (counted into row_offsets[i + 1]).
  for (const Interaction& term : interactions) {
    ++row_offsets[static_cast<size_t>(term.i) + 1];
    ++row_offsets[static_cast<size_t>(term.j) + 1];
  }
  for (int i = 0; i < num_vars; ++i) {
    row_offsets[static_cast<size_t>(i) + 1] +=
        row_offsets[static_cast<size_t>(i)];
  }

  // Pass 2: fill. Scanning the (i, j)-sorted interaction list keeps every
  // row sorted by neighbor id: row v receives neighbors a < v (from terms
  // (a, v), scanned in ascending a) before neighbors b > v (from terms
  // (v, b), scanned in ascending b).
  std::vector<int32_t> cursor(row_offsets.begin(), row_offsets.end() - 1);
  for (const Interaction& term : interactions) {
    int32_t slot_i = cursor[static_cast<size_t>(term.i)]++;
    neighbor_ids[static_cast<size_t>(slot_i)] = term.j;
    weights[static_cast<size_t>(slot_i)] = term.weight;
    int32_t slot_j = cursor[static_cast<size_t>(term.j)]++;
    neighbor_ids[static_cast<size_t>(slot_j)] = term.i;
    weights[static_cast<size_t>(slot_j)] = term.weight;
  }
}

int Coloring::max_class_size() const {
  int max_size = 0;
  for (int c = 0; c < num_colors; ++c) {
    max_size = std::max(max_size, class_size(c));
  }
  return max_size;
}

namespace {

/// BFS 2-coloring; returns false (leaving `color_of` partially filled) on
/// the first odd cycle.
bool TryBipartite(const CsrGraph& graph, std::vector<int>* color_of) {
  const int n = graph.num_vars();
  color_of->assign(static_cast<size_t>(n), -1);
  std::deque<VarId> queue;
  for (VarId start = 0; start < n; ++start) {
    if ((*color_of)[static_cast<size_t>(start)] != -1) continue;
    (*color_of)[static_cast<size_t>(start)] = 0;
    queue.push_back(start);
    while (!queue.empty()) {
      VarId v = queue.front();
      queue.pop_front();
      int neighbor_color = 1 - (*color_of)[static_cast<size_t>(v)];
      for (auto [u, w] : graph.row(v)) {
        (void)w;
        int& c = (*color_of)[static_cast<size_t>(u)];
        if (c == -1) {
          c = neighbor_color;
          queue.push_back(u);
        } else if (c != neighbor_color) {
          return false;
        }
      }
    }
  }
  return true;
}

/// First-fit greedy coloring over ascending vertex ids.
int GreedyColors(const CsrGraph& graph, std::vector<int>* color_of) {
  const int n = graph.num_vars();
  color_of->assign(static_cast<size_t>(n), -1);
  int num_colors = 1;
  std::vector<uint8_t> used;
  for (VarId v = 0; v < n; ++v) {
    used.assign(static_cast<size_t>(num_colors) + 1, 0);
    for (auto [u, w] : graph.row(v)) {
      (void)w;
      int c = (*color_of)[static_cast<size_t>(u)];
      if (c >= 0 && c <= num_colors) used[static_cast<size_t>(c)] = 1;
    }
    int color = 0;
    while (used[static_cast<size_t>(color)]) ++color;
    (*color_of)[static_cast<size_t>(v)] = color;
    num_colors = std::max(num_colors, color + 1);
  }
  return num_colors;
}

}  // namespace

Coloring ColorGraph(const CsrGraph& graph) {
  const int n = graph.num_vars();
  Coloring coloring;
  coloring.is_bipartite = TryBipartite(graph, &coloring.color_of);
  coloring.num_colors =
      coloring.is_bipartite ? (n > 0 ? 2 : 0)
                            : GreedyColors(graph, &coloring.color_of);
  if (coloring.is_bipartite && n > 0) {
    // A connected bipartite graph may still use one color (no edges).
    bool any_one = false;
    for (int c : coloring.color_of) any_one = any_one || (c == 1);
    if (!any_one) coloring.num_colors = 1;
  }

  // Counting sort into classes; ascending ids within each class.
  coloring.class_offsets.assign(static_cast<size_t>(coloring.num_colors) + 1,
                                0);
  for (int c : coloring.color_of) {
    ++coloring.class_offsets[static_cast<size_t>(c) + 1];
  }
  for (int c = 0; c < coloring.num_colors; ++c) {
    coloring.class_offsets[static_cast<size_t>(c) + 1] +=
        coloring.class_offsets[static_cast<size_t>(c)];
  }
  coloring.class_members.resize(static_cast<size_t>(n));
  std::vector<int32_t> cursor(coloring.class_offsets.begin(),
                              coloring.class_offsets.end() - 1);
  for (VarId v = 0; v < n; ++v) {
    coloring
        .class_members[static_cast<size_t>(
            cursor[static_cast<size_t>(
                coloring.color_of[static_cast<size_t>(v)])]++)] = v;
  }
  return coloring;
}

}  // namespace qubo
}  // namespace qmqo
