#include "qubo/csr.h"

#include <cassert>

namespace qmqo {
namespace qubo {

void CsrGraph::Build(int num_vars,
                     const std::vector<Interaction>& interactions) {
  assert(num_vars >= 0);
  row_offsets.assign(static_cast<size_t>(num_vars) + 1, 0);
  neighbor_ids.assign(interactions.size() * 2, 0);
  weights.assign(interactions.size() * 2, 0.0);

  // Pass 1: degrees (counted into row_offsets[i + 1]).
  for (const Interaction& term : interactions) {
    ++row_offsets[static_cast<size_t>(term.i) + 1];
    ++row_offsets[static_cast<size_t>(term.j) + 1];
  }
  for (int i = 0; i < num_vars; ++i) {
    row_offsets[static_cast<size_t>(i) + 1] +=
        row_offsets[static_cast<size_t>(i)];
  }

  // Pass 2: fill. Scanning the (i, j)-sorted interaction list keeps every
  // row sorted by neighbor id: row v receives neighbors a < v (from terms
  // (a, v), scanned in ascending a) before neighbors b > v (from terms
  // (v, b), scanned in ascending b).
  std::vector<int32_t> cursor(row_offsets.begin(), row_offsets.end() - 1);
  for (const Interaction& term : interactions) {
    int32_t slot_i = cursor[static_cast<size_t>(term.i)]++;
    neighbor_ids[static_cast<size_t>(slot_i)] = term.j;
    weights[static_cast<size_t>(slot_i)] = term.weight;
    int32_t slot_j = cursor[static_cast<size_t>(term.j)]++;
    neighbor_ids[static_cast<size_t>(slot_j)] = term.i;
    weights[static_cast<size_t>(slot_j)] = term.weight;
  }
}

}  // namespace qubo
}  // namespace qmqo
