#include "qubo/serialization.h"

#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace qmqo {
namespace qubo {

std::string ToText(const QuboProblem& problem) {
  std::string out = StrFormat("qubo v1 %d\n", problem.num_vars());
  for (VarId i = 0; i < problem.num_vars(); ++i) {
    if (problem.linear(i) != 0.0) {
      out += StrFormat("lin %d %.17g\n", i, problem.linear(i));
    }
  }
  for (const Interaction& term : problem.interactions()) {
    if (term.weight != 0.0) {
      out += StrFormat("quad %d %d %.17g\n", term.i, term.j, term.weight);
    }
  }
  out += "end\n";
  return out;
}

Result<QuboProblem> FromText(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  int num_vars = 0;
  QuboProblem problem(0);
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, ' ');
    if (!saw_header) {
      if (fields.size() != 3 || fields[0] != "qubo" || fields[1] != "v1") {
        return Status::InvalidArgument(
            StrFormat("line %d: expected 'qubo v1 <num_vars>'", line_no));
      }
      num_vars = std::atoi(fields[2].c_str());
      if (num_vars < 0) {
        return Status::InvalidArgument("negative variable count");
      }
      problem = QuboProblem(num_vars);
      saw_header = true;
      continue;
    }
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    if (fields[0] == "lin" && fields.size() >= 3) {
      int i = std::atoi(fields[1].c_str());
      if (i < 0 || i >= num_vars) {
        return Status::OutOfRange(StrFormat("line %d: var %d", line_no, i));
      }
      problem.AddLinear(i, std::strtod(fields[2].c_str(), nullptr));
    } else if (fields[0] == "quad" && fields.size() >= 4) {
      int i = std::atoi(fields[1].c_str());
      int j = std::atoi(fields[2].c_str());
      if (i < 0 || i >= num_vars || j < 0 || j >= num_vars || i == j) {
        return Status::OutOfRange(
            StrFormat("line %d: pair (%d, %d)", line_no, i, j));
      }
      problem.AddQuadratic(i, j, std::strtod(fields[3].c_str(), nullptr));
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", line_no,
                    fields[0].c_str()));
    }
  }
  if (!saw_header) return Status::InvalidArgument("missing header");
  if (!saw_end) return Status::InvalidArgument("missing 'end'");
  return problem;
}

}  // namespace qubo
}  // namespace qmqo
