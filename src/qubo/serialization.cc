#include "qubo/serialization.h"

#include <sstream>

#include "util/string_util.h"

namespace qmqo {
namespace qubo {
namespace {

/// Hostile-input guards: cap the payload before linear parsing work, and
/// cap the declared variable count before `QuboProblem(num_vars)` commits
/// to an O(num_vars) allocation — a 10-byte header must not be able to
/// request gigabytes.
constexpr size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB
constexpr int kMaxVars = 1 << 22;               // ~4M variables

}  // namespace

std::string ToText(const QuboProblem& problem) {
  std::string out = StrFormat("qubo v1 %d\n", problem.num_vars());
  for (VarId i = 0; i < problem.num_vars(); ++i) {
    if (problem.linear(i) != 0.0) {
      out += StrFormat("lin %d %.17g\n", i, problem.linear(i));
    }
  }
  for (const Interaction& term : problem.interactions()) {
    if (term.weight != 0.0) {
      out += StrFormat("quad %d %d %.17g\n", term.i, term.j, term.weight);
    }
  }
  out += "end\n";
  return out;
}

Result<QuboProblem> FromText(const std::string& text) {
  if (text.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("oversized payload: %zu bytes (limit %zu)", text.size(),
                  kMaxPayloadBytes));
  }
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  bool saw_end = false;
  int num_vars = 0;
  QuboProblem problem(0);
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = Split(line, ' ');
    if (!saw_header) {
      if (fields.size() != 3 || fields[0] != "qubo" || fields[1] != "v1" ||
          !ParseInt(fields[2], &num_vars)) {
        return Status::InvalidArgument(
            StrFormat("line %d: expected 'qubo v1 <num_vars>'", line_no));
      }
      if (num_vars < 0) {
        return Status::InvalidArgument("negative variable count");
      }
      if (num_vars > kMaxVars) {
        return Status::InvalidArgument(StrFormat(
            "variable count %d exceeds the %d limit", num_vars, kMaxVars));
      }
      problem = QuboProblem(num_vars);
      saw_header = true;
      continue;
    }
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    if (fields[0] == "lin") {
      int i = 0;
      double w = 0.0;
      if (fields.size() != 3 || !ParseInt(fields[1], &i) ||
          !ParseFiniteDouble(fields[2], &w)) {
        return Status::InvalidArgument(
            StrFormat("line %d: bad 'lin' line", line_no));
      }
      if (i < 0 || i >= num_vars) {
        return Status::OutOfRange(StrFormat("line %d: var %d", line_no, i));
      }
      problem.AddLinear(i, w);
    } else if (fields[0] == "quad") {
      int i = 0;
      int j = 0;
      double w = 0.0;
      if (fields.size() != 4 || !ParseInt(fields[1], &i) ||
          !ParseInt(fields[2], &j) || !ParseFiniteDouble(fields[3], &w)) {
        return Status::InvalidArgument(
            StrFormat("line %d: bad 'quad' line", line_no));
      }
      if (i < 0 || i >= num_vars || j < 0 || j >= num_vars || i == j) {
        return Status::OutOfRange(
            StrFormat("line %d: pair (%d, %d)", line_no, i, j));
      }
      problem.AddQuadratic(i, j, w);
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", line_no,
                    fields[0].c_str()));
    }
  }
  if (!saw_header) return Status::InvalidArgument("missing header");
  if (!saw_end) return Status::InvalidArgument("missing 'end'");
  return problem;
}

}  // namespace qubo
}  // namespace qmqo
