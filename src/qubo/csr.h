#ifndef QMQO_QUBO_CSR_H_
#define QMQO_QUBO_CSR_H_

/// \file csr.h
/// Compressed sparse row (CSR) adjacency for QUBO/Ising problems.
///
/// The annealing kernels are memory-bandwidth bound: a sweep reads every
/// neighbor list once. The previous `vector<vector<pair<VarId, double>>>`
/// layout scatters each row across the heap and interleaves 4-byte ids with
/// 8-byte weights; CSR packs the whole graph into three contiguous arrays
/// (`row_offsets`, `neighbor_ids`, `weights`) so a sweep is two sequential
/// streams plus one gather. Rows keep neighbors sorted by id, matching the
/// iteration order of the old adjacency so numerical results are
/// bit-identical.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qmqo {
namespace qubo {

/// Index of a binary variable / spin.
using VarId = int;

/// One quadratic term w * x_i * x_j with i < j.
struct Interaction {
  VarId i = -1;
  VarId j = -1;
  double weight = 0.0;
};

/// A lightweight iterable view of one CSR row, yielding (neighbor, weight)
/// pairs. Supports the same access patterns as the old
/// `vector<pair<VarId, double>>` rows (range-for, size(), operator[]).
class NeighborView {
 public:
  class Iterator {
   public:
    Iterator(const VarId* ids, const double* weights)
        : ids_(ids), weights_(weights) {}
    std::pair<VarId, double> operator*() const { return {*ids_, *weights_}; }
    Iterator& operator++() {
      ++ids_;
      ++weights_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return ids_ != other.ids_; }
    bool operator==(const Iterator& other) const { return ids_ == other.ids_; }

   private:
    const VarId* ids_;
    const double* weights_;
  };

  NeighborView(const VarId* ids, const double* weights, size_t size)
      : ids_(ids), weights_(weights), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::pair<VarId, double> operator[](size_t k) const {
    return {ids_[k], weights_[k]};
  }
  Iterator begin() const { return Iterator(ids_, weights_); }
  Iterator end() const { return Iterator(ids_ + size_, weights_ + size_); }

 private:
  const VarId* ids_;
  const double* weights_;
  size_t size_;
};

/// Symmetric sparse graph in CSR form. Each undirected interaction (i, j)
/// appears twice: j in row i and i in row j. Rows are sorted by neighbor id.
struct CsrGraph {
  /// row_offsets[i] .. row_offsets[i+1] delimit row i; size num_vars + 1.
  std::vector<int32_t> row_offsets;
  /// Flat neighbor ids, 2 * num_interactions entries.
  std::vector<VarId> neighbor_ids;
  /// Weights aligned with `neighbor_ids`.
  std::vector<double> weights;

  /// Rebuilds from a lexicographically sorted (i < j) interaction list.
  void Build(int num_vars, const std::vector<Interaction>& interactions);

  int num_vars() const { return static_cast<int>(row_offsets.size()) - 1; }

  int degree(VarId i) const {
    return row_offsets[static_cast<size_t>(i) + 1] -
           row_offsets[static_cast<size_t>(i)];
  }

  NeighborView row(VarId i) const {
    int32_t begin = row_offsets[static_cast<size_t>(i)];
    int32_t end = row_offsets[static_cast<size_t>(i) + 1];
    return NeighborView(neighbor_ids.data() + begin, weights.data() + begin,
                        static_cast<size_t>(end - begin));
  }
};

/// A partition of a graph's vertices into independent sets ("color
/// classes"): no edge connects two vertices of the same class. The sweep
/// kernels update one class at a time — within a class, no spin's local
/// field depends on another member, so the whole class can be decided
/// concurrently (checkerboard sweep).
struct Coloring {
  int num_colors = 0;
  /// True when the graph is bipartite and the coloring uses <= 2 colors
  /// (Chimera always is: left/right shores alternate with cell parity).
  bool is_bipartite = false;
  /// color_of[v] in [0, num_colors); size num_vars.
  std::vector<int> color_of;
  /// class_offsets[c] .. class_offsets[c+1] delimit class c's members in
  /// `class_members`; size num_colors + 1.
  std::vector<int32_t> class_offsets;
  /// Vertex ids grouped by color, ascending within each class.
  std::vector<VarId> class_members;

  int class_size(int c) const {
    return class_offsets[static_cast<size_t>(c) + 1] -
           class_offsets[static_cast<size_t>(c)];
  }
  const VarId* class_begin(int c) const {
    return class_members.data() + class_offsets[static_cast<size_t>(c)];
  }
  int max_class_size() const;
};

/// Colors `graph` deterministically: BFS 2-coloring when the graph is
/// bipartite (which recovers the Chimera checkerboard — side + cell-row +
/// cell-column parity), else a greedy first-fit coloring over ascending
/// vertex ids (at most max_degree + 1 colors). Isolated vertices get
/// color 0; an edgeless graph yields one class.
Coloring ColorGraph(const CsrGraph& graph);

}  // namespace qubo
}  // namespace qmqo

#endif  // QMQO_QUBO_CSR_H_
