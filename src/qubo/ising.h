#ifndef QMQO_QUBO_ISING_H_
#define QMQO_QUBO_ISING_H_

/// \file ising.h
/// Ising-model problems and exact QUBO <-> Ising conversion.
///
/// The D-Wave hardware natively minimizes an Ising Hamiltonian
///   H(s) = sum_i h_i s_i + sum_{i<j} J_ij s_i s_j,  s_i in {-1, +1}.
/// QUBO and Ising are related by the change of variables x = (1 + s) / 2,
/// which maps energies exactly up to a constant `offset` that both
/// directions of the conversion track, so optimal values can be compared
/// across representations in tests.

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qubo/qubo.h"

namespace qmqo {
namespace qubo {

/// A sparse Ising instance over spins s_i in {-1, +1}.
class IsingProblem {
 public:
  explicit IsingProblem(int num_spins);

  int num_spins() const { return static_cast<int>(h_.size()); }

  /// Adds `w` to the field h_i.
  void AddField(VarId i, double w);

  /// Adds `w` to the coupling J_ij (i != j, order irrelevant).
  void AddCoupling(VarId i, VarId j, double w);

  double field(VarId i) const { return h_[static_cast<size_t>(i)]; }
  double coupling(VarId i, VarId j) const;

  /// All couplings with i < j.
  const std::vector<Interaction>& couplings() const;

  /// Neighbors of spin i as (j, J_ij) pairs (a view into the CSR arrays,
  /// sorted by neighbor id).
  NeighborView neighbors(VarId i) const;

  /// The CSR adjacency used by the annealing kernels. Valid until the next
  /// mutation.
  const CsrGraph& csr() const;

  /// The fields as a flat array (index = spin id).
  const std::vector<double>& fields() const { return h_; }

  /// Builds the evaluation structures now (idempotent). Call before
  /// sharing a const reference across threads.
  void Finalize() const { EnsureFinalized(); }

  /// Evaluates H(s) for spins in {-1, +1} (stored as int8_t).
  double Energy(const std::vector<int8_t>& s) const;

  /// Energy change if spin i were flipped. O(degree(i)).
  double FlipDelta(const std::vector<int8_t>& s, VarId i) const;

  /// Largest |h| and largest |J| (for hardware-range scaling).
  double MaxAbsField() const;
  double MaxAbsCoupling() const;

 private:
  static uint64_t PairKey(VarId a, VarId b);
  void EnsureFinalized() const;

  std::vector<double> h_;
  std::unordered_map<uint64_t, double> j_;

  mutable bool finalized_ = false;
  mutable std::vector<Interaction> couplings_;
  mutable CsrGraph csr_;
};

/// An Ising instance together with the constant separating its energy scale
/// from the QUBO it was derived from: E_qubo(x) = H(s(x)) + offset.
struct IsingWithOffset {
  IsingProblem ising;
  double offset = 0.0;
};

/// Converts QUBO -> Ising exactly (x = (1+s)/2).
IsingWithOffset QuboToIsing(const QuboProblem& qubo);

/// The reverse conversion; `E_ising(s) = E_qubo(x(s)) + offset`.
struct QuboWithOffset {
  QuboProblem qubo;
  double offset = 0.0;
};
QuboWithOffset IsingToQubo(const IsingProblem& ising);

/// Maps a QUBO assignment to spins (0 -> -1, 1 -> +1).
std::vector<int8_t> AssignmentToSpins(const std::vector<uint8_t>& x);

/// Maps spins to a QUBO assignment (-1 -> 0, +1 -> 1).
std::vector<uint8_t> SpinsToAssignment(const std::vector<int8_t>& s);

}  // namespace qubo
}  // namespace qmqo

#endif  // QMQO_QUBO_ISING_H_
