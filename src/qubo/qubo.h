#ifndef QMQO_QUBO_QUBO_H_
#define QMQO_QUBO_QUBO_H_

/// \file qubo.h
/// Quadratic unconstrained binary optimization (QUBO) problems.
///
/// A QUBO instance over binary variables x_0..x_{n-1} asks to minimize
///   E(x) = sum_i w_ii x_i + sum_{i<j} w_ij x_i x_j.
/// This is the input format of the D-Wave annealer (Section 3 of the paper)
/// and the output of the logical mapping. The representation is sparse: a
/// dense n x n matrix would waste memory on Chimera-structured problems
/// where each variable touches at most six others.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qubo/csr.h"
#include "util/status.h"

namespace qmqo {
namespace qubo {

/// A sparse QUBO instance. Build with `AddLinear` / `AddQuadratic`
/// (weights accumulate), then evaluate. Evaluation structures (interaction
/// list, CSR adjacency) are built lazily on first use and invalidated by
/// further mutation; instances are not thread-safe while being mutated.
/// Concurrent *const* access is safe once `Finalize` (or any evaluation
/// accessor) has run — the parallel read engine relies on this.
class QuboProblem {
 public:
  /// Creates an instance with `num_vars` variables and no terms.
  explicit QuboProblem(int num_vars);

  /// Builds a *finalized* instance directly from evaluation-ready arrays:
  /// the full linear vector and a lexicographically sorted (i < j, no
  /// duplicate pairs) interaction list. This skips the per-term hash-map
  /// accumulation of `AddLinear`/`AddQuadratic` and the finalize sort —
  /// the fast path for re-weighting a cached embedding layout.
  ///
  /// When `csr` is provided it must be the exact CSR adjacency of
  /// `interactions` (same rows, neighbor-sorted) and is adopted as-is;
  /// otherwise it is built here.
  ///
  /// The pair map backing `quadratic()` point lookups and further
  /// `Add*` mutation is materialized lazily on first use; trigger it
  /// single-threaded (one `quadratic()` call) before sharing the instance
  /// across threads if concurrent point lookups are needed. The annealing
  /// read path (csr/linear/interactions/energies) never touches it.
  static QuboProblem FromSorted(int num_vars, std::vector<double> linear,
                                std::vector<Interaction> interactions,
                                CsrGraph csr = CsrGraph());

  int num_vars() const { return num_vars_; }

  /// Adds `w` to the linear coefficient of x_i.
  void AddLinear(VarId i, double w);

  /// Adds `w` to the quadratic coefficient of x_i * x_j (i != j; the order
  /// of i and j does not matter).
  void AddQuadratic(VarId i, VarId j, double w);

  /// Current linear coefficient of x_i.
  double linear(VarId i) const { return linear_[static_cast<size_t>(i)]; }

  /// Current quadratic coefficient of x_i x_j (0 when absent).
  double quadratic(VarId i, VarId j) const;

  /// Number of distinct nonzero-touched quadratic pairs.
  int num_interactions() const;

  /// All quadratic terms with i < j (sorted lexicographically).
  const std::vector<Interaction>& interactions() const;

  /// Neighbors of variable i as (j, w_ij) pairs (a view into the CSR
  /// arrays, sorted by neighbor id).
  NeighborView neighbors(VarId i) const;

  /// The CSR adjacency used by the annealing kernels. Valid until the next
  /// mutation.
  const CsrGraph& csr() const;

  /// The linear coefficients as a flat array (index = variable id).
  const std::vector<double>& linear_terms() const { return linear_; }

  /// Builds the evaluation structures now (idempotent). Call before
  /// sharing a const reference across threads.
  void Finalize() const { EnsureFinalized(); }

  /// Evaluates E(x); `x` must have `num_vars()` entries of 0/1.
  double Energy(const std::vector<uint8_t>& x) const;

  /// Evaluates E(x) for x_i = (s_i > 0), i.e. directly on a ±1 spin vector
  /// — the annealer read-out path, which skips materializing the byte
  /// assignment just to evaluate it. (A distinct name, not an overload:
  /// braced initializer lists at Energy call sites must stay unambiguous.)
  double EnergySpins(const std::vector<int8_t>& spins) const;

  /// Energy change if x_i were flipped: E(x with flip) − E(x). O(degree(i)).
  double FlipDelta(const std::vector<uint8_t>& x, VarId i) const;

  /// Smallest and largest coefficient over linear and quadratic terms;
  /// (0, 0) for an empty instance. Used by the device weight-range model.
  std::pair<double, double> WeightRange() const;

  /// Largest |coefficient|; 0 for an empty instance.
  double MaxAbsWeight() const;

  /// One-line summary, e.g. "QUBO(12 vars, 30 interactions)".
  std::string Summary() const;

 private:
  static uint64_t PairKey(VarId a, VarId b);
  void EnsureFinalized() const;
  void EnsureQuadraticMap() const;

  int num_vars_;
  std::vector<double> linear_;
  // Source of truth for mutation and point lookups. For instances built by
  // `FromSorted` the truth starts in `interactions_` instead and the map is
  // materialized on demand (`quadratic_map_synced_`); both mutators sync it
  // first, so `finalized_ == false` implies the map is current.
  mutable std::unordered_map<uint64_t, double> quadratic_;
  mutable bool quadratic_map_synced_ = true;

  // Lazily derived evaluation structures.
  mutable bool finalized_ = false;
  mutable std::vector<Interaction> interactions_;
  mutable CsrGraph csr_;
};

}  // namespace qubo
}  // namespace qmqo

#endif  // QMQO_QUBO_QUBO_H_
