#include "mqo/problem.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace qmqo {
namespace mqo {

uint64_t MqoProblem::PairKey(PlanId a, PlanId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

QueryId MqoProblem::AddQuery(std::vector<double> plan_costs) {
  QueryId q = num_queries();
  query_first_plan_.push_back(num_plans());
  query_num_plans_.push_back(static_cast<int>(plan_costs.size()));
  for (double c : plan_costs) {
    plan_cost_.push_back(c);
    plan_query_.push_back(q);
    savings_adj_.emplace_back();
    max_plan_cost_ = std::max(max_plan_cost_, c);
  }
  return q;
}

Status MqoProblem::AddSaving(PlanId a, PlanId b, double value) {
  if (a < 0 || a >= num_plans() || b < 0 || b >= num_plans()) {
    return Status::OutOfRange(
        StrFormat("saving references plan out of range: (%d, %d)", a, b));
  }
  if (a == b) {
    return Status::InvalidArgument("saving between a plan and itself");
  }
  if (query_of(a) == query_of(b)) {
    return Status::InvalidArgument(StrFormat(
        "saving between plans %d and %d of the same query %d", a, b,
        query_of(a)));
  }
  // NaN compares false against every threshold, so test finiteness
  // explicitly — a NaN saving would silently poison all cost arithmetic.
  if (!std::isfinite(value) || value <= 0.0) {
    return Status::InvalidArgument("saving value must be positive and finite");
  }
  uint64_t key = PairKey(a, b);
  auto it = saving_index_.find(key);
  if (it != saving_index_.end()) {
    // Accumulate: multiple shared intermediate results between the same
    // plan pair fold into one pairwise link, as in the paper's model.
    Saving& s = savings_[it->second];
    s.value += value;
    for (auto& [other, v] : savings_adj_[static_cast<size_t>(a)]) {
      if (other == b) v = s.value;
    }
    for (auto& [other, v] : savings_adj_[static_cast<size_t>(b)]) {
      if (other == a) v = s.value;
    }
    return Status::OK();
  }
  saving_index_.emplace(key, savings_.size());
  savings_.push_back(Saving{std::min(a, b), std::max(a, b), value});
  savings_adj_[static_cast<size_t>(a)].emplace_back(b, value);
  savings_adj_[static_cast<size_t>(b)].emplace_back(a, value);
  return Status::OK();
}

Status MqoProblem::Validate() const {
  if (num_queries() == 0) {
    return Status::FailedPrecondition("problem has no queries");
  }
  for (QueryId q = 0; q < num_queries(); ++q) {
    if (num_plans_of(q) <= 0) {
      return Status::FailedPrecondition(
          StrFormat("query %d has no plans", q));
    }
  }
  for (PlanId p = 0; p < num_plans(); ++p) {
    if (!std::isfinite(plan_cost(p)) || plan_cost(p) < 0.0) {
      return Status::FailedPrecondition(
          StrFormat("plan %d has negative or non-finite cost", p));
    }
  }
  for (const Saving& s : savings_) {
    if (query_of(s.plan_a) == query_of(s.plan_b)) {
      return Status::FailedPrecondition("intra-query saving");
    }
    if (!std::isfinite(s.value) || s.value <= 0.0) {
      return Status::FailedPrecondition("non-positive saving");
    }
  }
  return Status::OK();
}

double MqoProblem::max_accumulated_saving() const {
  double best = 0.0;
  for (PlanId p = 0; p < num_plans(); ++p) {
    best = std::max(best, accumulated_saving_of(p));
  }
  return best;
}

double MqoProblem::total_plan_cost() const {
  double sum = 0.0;
  for (double c : plan_cost_) sum += c;
  return sum;
}

double MqoProblem::saving_between(PlanId a, PlanId b) const {
  auto it = saving_index_.find(PairKey(a, b));
  if (it == saving_index_.end()) return 0.0;
  return savings_[it->second].value;
}

double MqoProblem::accumulated_saving_of(PlanId p) const {
  double sum = 0.0;
  for (const auto& [other, value] : savings_adj_[static_cast<size_t>(p)]) {
    (void)other;
    sum += value;
  }
  return sum;
}

std::string MqoProblem::Summary() const {
  return StrFormat("MQO(%d queries, %d plans, %d savings)", num_queries(),
                   num_plans(), num_savings());
}

}  // namespace mqo
}  // namespace qmqo
