#include "mqo/generator.h"

#include <cmath>

namespace qmqo {
namespace mqo {
namespace {

double DrawValue(double lo, double hi, bool integral, Rng* rng) {
  double v = rng->UniformReal(lo, hi);
  if (integral) v = std::max(1.0, std::round(v));
  return v;
}

void AddQueries(int num_queries, int min_plans, int max_plans, double cost_min,
                double cost_max, bool integral, Rng* rng, MqoProblem* problem) {
  for (int q = 0; q < num_queries; ++q) {
    int plans = min_plans == max_plans ? min_plans
                                       : rng->UniformInt(min_plans, max_plans);
    std::vector<double> costs;
    costs.reserve(static_cast<size_t>(plans));
    for (int p = 0; p < plans; ++p) {
      costs.push_back(DrawValue(cost_min, cost_max, integral, rng));
    }
    problem->AddQuery(std::move(costs));
  }
}

}  // namespace

MqoProblem GenerateRandomWorkload(const RandomWorkloadOptions& options,
                                  Rng* rng) {
  MqoProblem problem;
  AddQueries(options.num_queries, options.min_plans, options.max_plans,
             options.cost_min, options.cost_max, options.integral, rng,
             &problem);
  for (PlanId a = 0; a < problem.num_plans(); ++a) {
    for (PlanId b = a + 1; b < problem.num_plans(); ++b) {
      if (problem.query_of(a) == problem.query_of(b)) continue;
      if (!rng->Bernoulli(options.sharing_probability)) continue;
      double s = DrawValue(options.saving_min, options.saving_max,
                           options.integral, rng);
      // By construction a != b, different queries, s > 0: cannot fail.
      (void)problem.AddSaving(a, b, s);
    }
  }
  return problem;
}

MqoProblem GenerateClusteredWorkload(const ClusteredWorkloadOptions& options,
                                     Rng* rng) {
  MqoProblem problem;
  AddQueries(options.num_clusters * options.queries_per_cluster,
             options.plans_per_query, options.plans_per_query,
             options.cost_min, options.cost_max, options.integral, rng,
             &problem);
  auto cluster_of = [&](QueryId q) { return q / options.queries_per_cluster; };
  for (PlanId a = 0; a < problem.num_plans(); ++a) {
    for (PlanId b = a + 1; b < problem.num_plans(); ++b) {
      QueryId qa = problem.query_of(a);
      QueryId qb = problem.query_of(b);
      if (qa == qb) continue;
      double prob = cluster_of(qa) == cluster_of(qb)
                        ? options.intra_cluster_probability
                        : options.inter_cluster_probability;
      if (!rng->Bernoulli(prob)) continue;
      double s = DrawValue(options.saving_min, options.saving_max,
                           options.integral, rng);
      (void)problem.AddSaving(a, b, s);
    }
  }
  return problem;
}

MqoProblem GenerateChainWorkload(const ChainWorkloadOptions& options,
                                 Rng* rng) {
  MqoProblem problem;
  AddQueries(options.num_queries, options.plans_per_query,
             options.plans_per_query, options.cost_min, options.cost_max,
             options.integral, rng, &problem);
  for (QueryId q = 0; q + 1 < problem.num_queries(); ++q) {
    for (int i = 0; i < problem.num_plans_of(q); ++i) {
      for (int j = 0; j < problem.num_plans_of(q + 1); ++j) {
        if (!rng->Bernoulli(options.link_probability)) continue;
        double s = DrawValue(options.saving_min, options.saving_max,
                             options.integral, rng);
        (void)problem.AddSaving(problem.first_plan(q) + i,
                                problem.first_plan(q + 1) + j, s);
      }
    }
  }
  return problem;
}

}  // namespace mqo
}  // namespace qmqo
