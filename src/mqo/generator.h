#ifndef QMQO_MQO_GENERATOR_H_
#define QMQO_MQO_GENERATOR_H_

/// \file generator.h
/// Synthetic MQO workload generators.
///
/// Three generic generator families cover the shapes used throughout the
/// MQO literature; the paper's exact workload (savings placed only where the
/// Chimera embedding offers couplers) additionally needs the hardware model
/// and lives in `harness/paper_workload.h`.

#include "mqo/problem.h"
#include "util/rng.h"

namespace qmqo {
namespace mqo {

/// Parameters for `GenerateRandomWorkload`.
struct RandomWorkloadOptions {
  int num_queries = 10;
  /// Each query independently draws its plan count from [min_plans, max_plans].
  int min_plans = 2;
  int max_plans = 2;
  /// Plan costs drawn uniformly from [cost_min, cost_max].
  double cost_min = 10.0;
  double cost_max = 50.0;
  /// Probability that an (unordered) pair of plans from different queries
  /// shares work.
  double sharing_probability = 0.1;
  /// Saving values drawn uniformly from [saving_min, saving_max].
  double saving_min = 1.0;
  double saving_max = 5.0;
  /// Round costs and savings to integers (the paper uses integral values).
  bool integral = true;
};

/// Erdos-Renyi-style sharing: every cross-query plan pair independently
/// shares work with `sharing_probability`.
MqoProblem GenerateRandomWorkload(const RandomWorkloadOptions& options,
                                  Rng* rng);

/// Parameters for `GenerateClusteredWorkload`.
struct ClusteredWorkloadOptions {
  int num_clusters = 4;
  int queries_per_cluster = 3;
  int plans_per_query = 2;
  double cost_min = 10.0;
  double cost_max = 50.0;
  /// Sharing probability for plan pairs inside the same cluster.
  double intra_cluster_probability = 0.5;
  /// Sharing probability for plan pairs across clusters (typically sparse).
  double inter_cluster_probability = 0.0;
  double saving_min = 1.0;
  double saving_max = 5.0;
  bool integral = true;
};

/// Cluster-structured sharing, the regime motivating the paper's clustered
/// embedding (Section 5, Figure 3): dense sharing within a cluster, sparse
/// or no sharing across clusters.
MqoProblem GenerateClusteredWorkload(const ClusteredWorkloadOptions& options,
                                     Rng* rng);

/// Parameters for `GenerateChainWorkload`.
struct ChainWorkloadOptions {
  int num_queries = 10;
  int plans_per_query = 2;
  double cost_min = 10.0;
  double cost_max = 50.0;
  /// Probability that a given plan pair of *adjacent* queries shares work.
  double link_probability = 0.8;
  double saving_min = 1.0;
  double saving_max = 2.0;
  bool integral = true;
};

/// Savings only between consecutive queries — e.g. a dashboard refresh where
/// each report extends its predecessor's scan. Chain instances decompose
/// nicely and exercise the sparse end of the sharing spectrum.
MqoProblem GenerateChainWorkload(const ChainWorkloadOptions& options,
                                 Rng* rng);

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_GENERATOR_H_
