#ifndef QMQO_MQO_PROBLEM_H_
#define QMQO_MQO_PROBLEM_H_

/// \file problem.h
/// The multiple query optimization (MQO) problem model of Trummer & Koch
/// (PVLDB'16, Section 3).
///
/// An instance consists of a set Q of queries; each query q has a non-empty
/// set P_q of alternative plans; each plan p has an execution cost c_p; pairs
/// of plans belonging to *different* queries may share intermediate results,
/// expressed as a cost saving s_{p1,p2} > 0 realized when both plans are
/// executed. A solution selects exactly one plan per query and costs
/// C(Pe) = sum_{p in Pe} c_p − sum_{{p1,p2} ⊆ Pe} s_{p1,p2}.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qmqo {
namespace mqo {

/// Index of a query within a problem, in [0, num_queries).
using QueryId = int;
/// Global index of a plan within a problem, in [0, num_plans).
using PlanId = int;

/// One pairwise cost-saving link between plans of different queries.
struct Saving {
  PlanId plan_a = -1;
  PlanId plan_b = -1;
  double value = 0.0;
};

/// An MQO problem instance. Build with `AddQuery` / `AddSaving`, then query.
///
/// Plans are identified by a single global `PlanId`; plans of query q occupy
/// the contiguous range [first_plan(q), first_plan(q) + num_plans_of(q)).
class MqoProblem {
 public:
  MqoProblem() = default;

  /// Adds a query with the given per-plan execution costs (one entry per
  /// alternative plan). Returns the new query's id. `plan_costs` must be
  /// non-empty and non-negative; violations are reported by `Validate`.
  QueryId AddQuery(std::vector<double> plan_costs);

  /// Registers (or accumulates onto an existing) saving between two plans.
  /// Fails if the plans coincide, are out of range, belong to the same
  /// query, or if `value` is not positive.
  Status AddSaving(PlanId a, PlanId b, double value);

  /// Checks structural invariants (non-negative costs, savings between
  /// distinct queries only). Cheap; intended after deserialization.
  Status Validate() const;

  int num_queries() const { return static_cast<int>(query_first_plan_.size()); }
  int num_plans() const { return static_cast<int>(plan_cost_.size()); }
  int num_savings() const { return static_cast<int>(savings_.size()); }

  /// Query owning plan `p`.
  QueryId query_of(PlanId p) const { return plan_query_[static_cast<size_t>(p)]; }

  /// First (global) plan id of query `q`.
  PlanId first_plan(QueryId q) const {
    return query_first_plan_[static_cast<size_t>(q)];
  }

  /// Number of alternative plans of query `q`.
  int num_plans_of(QueryId q) const {
    return query_num_plans_[static_cast<size_t>(q)];
  }

  /// Execution cost of plan `p` (ignoring any sharing).
  double plan_cost(PlanId p) const { return plan_cost_[static_cast<size_t>(p)]; }

  /// Largest single-plan execution cost; 0 for an empty problem.
  /// This is the quantity bounding the paper's weight w_L.
  double max_plan_cost() const { return max_plan_cost_; }

  /// max over plans p1 of (sum over p2 of s_{p1,p2}): the accumulated-saving
  /// bound used for the paper's weight w_M.
  double max_accumulated_saving() const;

  /// Sum of all plan costs (a trivial upper bound on any solution cost).
  double total_plan_cost() const;

  /// All savings in insertion order (accumulated duplicates merged).
  const std::vector<Saving>& savings() const { return savings_; }

  /// Saving between plans `a` and `b`; 0 when the pair shares nothing.
  double saving_between(PlanId a, PlanId b) const;

  /// Plans sharing work with `p`, as (other plan, saving value) pairs.
  const std::vector<std::pair<PlanId, double>>& savings_of(PlanId p) const {
    return savings_adj_[static_cast<size_t>(p)];
  }

  /// Sum of savings incident to plan `p`.
  double accumulated_saving_of(PlanId p) const;

  /// Human-readable one-line summary, e.g. "MQO(20 queries, 40 plans, 35 savings)".
  std::string Summary() const;

 private:
  static uint64_t PairKey(PlanId a, PlanId b);

  // Per plan.
  std::vector<double> plan_cost_;
  std::vector<QueryId> plan_query_;
  std::vector<std::vector<std::pair<PlanId, double>>> savings_adj_;

  // Per query.
  std::vector<PlanId> query_first_plan_;
  std::vector<int> query_num_plans_;

  // Savings, deduplicated by unordered plan pair.
  std::vector<Saving> savings_;
  std::unordered_map<uint64_t, size_t> saving_index_;

  double max_plan_cost_ = 0.0;
};

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_PROBLEM_H_
