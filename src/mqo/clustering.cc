#include "mqo/clustering.h"

#include <algorithm>
#include <deque>
#include <numeric>

namespace qmqo {
namespace mqo {
namespace {

/// Builds the query-level sharing adjacency (deduplicated neighbor lists).
std::vector<std::vector<QueryId>> QuerySharingGraph(const MqoProblem& problem) {
  std::vector<std::vector<QueryId>> adj(
      static_cast<size_t>(problem.num_queries()));
  for (const Saving& s : problem.savings()) {
    QueryId qa = problem.query_of(s.plan_a);
    QueryId qb = problem.query_of(s.plan_b);
    adj[static_cast<size_t>(qa)].push_back(qb);
    adj[static_cast<size_t>(qb)].push_back(qa);
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adj;
}

}  // namespace

QueryClustering ClusterByConnectedComponents(const MqoProblem& problem) {
  return ClusterWithSizeCap(problem, problem.num_queries());
}

QueryClustering ClusterWithSizeCap(const MqoProblem& problem,
                                   int max_queries_per_cluster) {
  auto adj = QuerySharingGraph(problem);
  QueryClustering out;
  out.cluster_of.assign(static_cast<size_t>(problem.num_queries()), -1);
  for (QueryId start = 0; start < problem.num_queries(); ++start) {
    if (out.cluster_of[static_cast<size_t>(start)] != -1) continue;
    // BFS over the component, chopping into caps of the requested size.
    std::deque<QueryId> frontier{start};
    std::vector<QueryId> current;
    auto flush = [&]() {
      if (current.empty()) return;
      int cluster = out.num_clusters();
      for (QueryId q : current) {
        out.cluster_of[static_cast<size_t>(q)] = cluster;
      }
      out.members.push_back(std::move(current));
      current.clear();
    };
    std::vector<uint8_t> enqueued(static_cast<size_t>(problem.num_queries()),
                                  0);
    enqueued[static_cast<size_t>(start)] = 1;
    while (!frontier.empty()) {
      QueryId q = frontier.front();
      frontier.pop_front();
      current.push_back(q);
      if (static_cast<int>(current.size()) >= max_queries_per_cluster) {
        flush();
      }
      for (QueryId next : adj[static_cast<size_t>(q)]) {
        if (!enqueued[static_cast<size_t>(next)]) {
          enqueued[static_cast<size_t>(next)] = 1;
          frontier.push_back(next);
        }
      }
    }
    flush();
  }
  return out;
}

int CountCrossClusterSavings(const MqoProblem& problem,
                             const QueryClustering& clustering) {
  int count = 0;
  for (const Saving& s : problem.savings()) {
    QueryId qa = problem.query_of(s.plan_a);
    QueryId qb = problem.query_of(s.plan_b);
    if (clustering.cluster_of[static_cast<size_t>(qa)] !=
        clustering.cluster_of[static_cast<size_t>(qb)]) {
      ++count;
    }
  }
  return count;
}

}  // namespace mqo
}  // namespace qmqo
