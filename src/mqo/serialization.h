#ifndef QMQO_MQO_SERIALIZATION_H_
#define QMQO_MQO_SERIALIZATION_H_

/// \file serialization.h
/// A small line-oriented text format for MQO instances so workloads can be
/// saved, diffed, and replayed across benchmark runs.
///
/// Format (comments start with '#'):
///   mqo v1
///   query <cost_1> <cost_2> ...        # one line per query, in id order
///   saving <plan_a> <plan_b> <value>   # one line per saving
///   end

#include <string>

#include "mqo/problem.h"
#include "util/status.h"

namespace qmqo {
namespace mqo {

/// Serializes `problem` into the v1 text format.
std::string ToText(const MqoProblem& problem);

/// Parses the v1 text format; validates the reconstructed instance.
Result<MqoProblem> FromText(const std::string& text);

/// Writes `ToText(problem)` to `path`.
Status SaveToFile(const MqoProblem& problem, const std::string& path);

/// Reads and parses an instance from `path`.
Result<MqoProblem> LoadFromFile(const std::string& path);

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_SERIALIZATION_H_
