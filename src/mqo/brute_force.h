#ifndef QMQO_MQO_BRUTE_FORCE_H_
#define QMQO_MQO_BRUTE_FORCE_H_

/// \file brute_force.h
/// Exhaustive MQO solver, used as ground truth in tests and small examples.

#include <cstdint>

#include "mqo/problem.h"
#include "mqo/solution.h"
#include "util/status.h"

namespace qmqo {
namespace mqo {

/// Result of an exhaustive search.
struct ExhaustiveResult {
  MqoSolution solution;
  double cost = 0.0;
  uint64_t states_visited = 0;
};

/// Enumerates every complete plan selection (an odometer over the cartesian
/// product of per-query plan sets) and returns a minimum-cost solution.
///
/// Fails with ResourceExhausted if the search space exceeds `max_states`
/// (default 2^22), guarding against accidental exponential blow-up in tests.
Result<ExhaustiveResult> SolveExhaustive(const MqoProblem& problem,
                                         uint64_t max_states = (1ull << 22));

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_BRUTE_FORCE_H_
