#ifndef QMQO_MQO_SOLUTION_H_
#define QMQO_MQO_SOLUTION_H_

/// \file solution.h
/// Solutions to MQO problems and (incremental) cost evaluation.

#include <vector>

#include "mqo/problem.h"
#include "util/status.h"

namespace qmqo {
namespace mqo {

/// A (possibly partial) plan selection: one chosen plan per query.
class MqoSolution {
 public:
  /// Sentinel for "no plan chosen yet" for a query.
  static constexpr PlanId kUnselected = -1;

  /// Creates an empty selection for `num_queries` queries.
  explicit MqoSolution(int num_queries)
      : selected_(static_cast<size_t>(num_queries), kUnselected) {}

  /// Chooses plan `p` for query `q` (replacing any previous choice).
  void Select(QueryId q, PlanId p) { selected_[static_cast<size_t>(q)] = p; }

  /// The chosen plan of query `q`, or `kUnselected`.
  PlanId selected(QueryId q) const { return selected_[static_cast<size_t>(q)]; }

  int num_queries() const { return static_cast<int>(selected_.size()); }

  /// True when every query has a chosen plan.
  bool IsComplete() const;

  /// The selected plan ids in query order (only meaningful when complete).
  const std::vector<PlanId>& selections() const { return selected_; }

  bool operator==(const MqoSolution& other) const {
    return selected_ == other.selected_;
  }

 private:
  std::vector<PlanId> selected_;
};

/// Checks that `solution` is a valid solution of `problem`: complete, and
/// every chosen plan belongs to the query it is chosen for.
Status ValidateSolution(const MqoProblem& problem, const MqoSolution& solution);

/// Evaluates C(Pe) = sum(costs) − sum(savings among chosen plans).
/// `solution` must be valid; unselected queries contribute nothing.
double EvaluateCost(const MqoProblem& problem, const MqoSolution& solution);

/// Greedy steepest-descent over single-query plan swaps, in place, until no
/// swap improves the cost. Returns the number of swaps applied. This is the
/// classical post-processing step applied to annealer read-outs (the real
/// D-Wave SAPI exposes the same capability as its "optimization"
/// post-processing mode) and the building block of the CLIMB baseline.
int SwapDescent(const MqoProblem& problem, MqoSolution* solution);

/// Maintains the cost of a complete solution under single-query plan swaps
/// in O(degree) per swap. This is the inner loop of the hill-climbing and
/// genetic baselines, where full O(|savings|) re-evaluation would dominate.
class IncrementalCostEvaluator {
 public:
  explicit IncrementalCostEvaluator(const MqoProblem& problem);

  /// Loads a complete solution and computes its cost from scratch.
  void Reset(const MqoSolution& solution);

  /// Current solution cost.
  double cost() const { return cost_; }

  /// Plan currently chosen for query `q`.
  PlanId selected(QueryId q) const { return selected_[static_cast<size_t>(q)]; }

  /// Cost change if query `q` switched to `new_plan` (no state change).
  double SwapDelta(QueryId q, PlanId new_plan) const;

  /// Applies the swap and updates the cached cost.
  void ApplySwap(QueryId q, PlanId new_plan);

  /// Exports the current selection as an MqoSolution.
  MqoSolution ToSolution() const;

 private:
  const MqoProblem& problem_;
  std::vector<PlanId> selected_;
  // is_chosen_[p] == 1 iff plan p is currently selected.
  std::vector<uint8_t> is_chosen_;
  double cost_ = 0.0;
};

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_SOLUTION_H_
