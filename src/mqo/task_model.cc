#include "mqo/task_model.h"

#include <algorithm>

#include "util/string_util.h"

namespace qmqo {
namespace mqo {

Result<TaskReduction> ReduceToPairwise(const TaskBasedProblem& tasks) {
  if (tasks.num_queries() == 0) {
    return Status::InvalidArgument("task problem has no queries");
  }
  for (double cost : tasks.task_costs) {
    if (cost < 0.0) {
      return Status::InvalidArgument("task costs must be non-negative");
    }
  }
  TaskReduction out;
  out.num_original_queries = tasks.num_queries();

  // Original queries: plan cost = sum of its (deduplicated) task costs.
  std::vector<std::vector<std::vector<int>>> plan_tasks = tasks.plans_of;
  for (int q = 0; q < tasks.num_queries(); ++q) {
    if (plan_tasks[static_cast<size_t>(q)].empty()) {
      return Status::InvalidArgument(StrFormat("query %d has no plans", q));
    }
    std::vector<double> costs;
    for (auto& task_set : plan_tasks[static_cast<size_t>(q)]) {
      std::sort(task_set.begin(), task_set.end());
      task_set.erase(std::unique(task_set.begin(), task_set.end()),
                     task_set.end());
      double cost = 0.0;
      for (int t : task_set) {
        if (t < 0 || t >= tasks.num_tasks()) {
          return Status::OutOfRange(
              StrFormat("query %d references task %d", q, t));
        }
        cost += tasks.task_costs[static_cast<size_t>(t)];
      }
      costs.push_back(cost);
    }
    out.problem.AddQuery(std::move(costs));
  }
  // Intermediate-result queries: {materialize (c_t), skip (0)}.
  for (int t = 0; t < tasks.num_tasks(); ++t) {
    out.problem.AddQuery({tasks.task_costs[static_cast<size_t>(t)], 0.0});
  }
  // Savings: c_t between the materialize plan and every plan containing t.
  for (int q = 0; q < tasks.num_queries(); ++q) {
    for (size_t k = 0; k < plan_tasks[static_cast<size_t>(q)].size(); ++k) {
      PlanId plan = out.problem.first_plan(q) + static_cast<PlanId>(k);
      for (int t : plan_tasks[static_cast<size_t>(q)][k]) {
        double cost = tasks.task_costs[static_cast<size_t>(t)];
        if (cost <= 0.0) continue;  // free tasks need no sharing bookkeeping
        QMQO_RETURN_IF_ERROR(
            out.problem.AddSaving(plan, out.materialize_plan(t), cost));
      }
    }
  }
  QMQO_RETURN_IF_ERROR(out.problem.Validate());
  return out;
}

double EvaluateTaskCost(const TaskBasedProblem& tasks,
                        const std::vector<int>& selection) {
  std::vector<uint8_t> used(tasks.task_costs.size(), 0);
  for (int q = 0; q < tasks.num_queries(); ++q) {
    const auto& task_set =
        tasks.plans_of[static_cast<size_t>(q)]
                      [static_cast<size_t>(selection[static_cast<size_t>(q)])];
    for (int t : task_set) {
      used[static_cast<size_t>(t)] = 1;
    }
  }
  double cost = 0.0;
  for (size_t t = 0; t < used.size(); ++t) {
    if (used[t]) cost += tasks.task_costs[t];
  }
  return cost;
}

std::vector<int> OriginalSelection(const TaskReduction& reduction,
                                   const MqoSolution& solution) {
  std::vector<int> out(static_cast<size_t>(reduction.num_original_queries));
  for (int q = 0; q < reduction.num_original_queries; ++q) {
    out[static_cast<size_t>(q)] =
        solution.selected(q) - reduction.problem.first_plan(q);
  }
  return out;
}

}  // namespace mqo
}  // namespace qmqo
