#include "mqo/brute_force.h"

#include <cmath>
#include <vector>

#include "util/string_util.h"

namespace qmqo {
namespace mqo {

Result<ExhaustiveResult> SolveExhaustive(const MqoProblem& problem,
                                         uint64_t max_states) {
  QMQO_RETURN_IF_ERROR(problem.Validate());
  // Estimate search-space size with overflow care.
  double log_states = 0.0;
  for (QueryId q = 0; q < problem.num_queries(); ++q) {
    log_states += std::log2(static_cast<double>(problem.num_plans_of(q)));
  }
  if (log_states > std::log2(static_cast<double>(max_states))) {
    return Status::ResourceExhausted(
        StrFormat("search space 2^%.1f exceeds limit of %llu states",
                  log_states, static_cast<unsigned long long>(max_states)));
  }

  int n = problem.num_queries();
  // Odometer over per-query plan indices, using the incremental evaluator so
  // each step costs O(plan degree) instead of O(|savings|).
  MqoSolution current(n);
  for (QueryId q = 0; q < n; ++q) {
    current.Select(q, problem.first_plan(q));
  }
  IncrementalCostEvaluator eval(problem);
  eval.Reset(current);

  ExhaustiveResult best{eval.ToSolution(), eval.cost(), 1};
  std::vector<int> index(static_cast<size_t>(n), 0);
  while (true) {
    // Advance the odometer.
    int q = 0;
    while (q < n) {
      size_t uq = static_cast<size_t>(q);
      if (index[uq] + 1 < problem.num_plans_of(q)) {
        ++index[uq];
        eval.ApplySwap(q, problem.first_plan(q) + index[uq]);
        break;
      }
      index[uq] = 0;
      eval.ApplySwap(q, problem.first_plan(q));
      ++q;
    }
    if (q == n) break;  // wrapped around: enumeration complete
    ++best.states_visited;
    if (eval.cost() < best.cost) {
      best.cost = eval.cost();
      best.solution = eval.ToSolution();
    }
  }
  return best;
}

}  // namespace mqo
}  // namespace qmqo
