#ifndef QMQO_MQO_CLUSTERING_H_
#define QMQO_MQO_CLUSTERING_H_

/// \file clustering.h
/// Query clustering: partitions queries into groups that share work.
///
/// The paper's clustered embedding (Section 5) assumes queries have been
/// clustered "based on structural properties in a preprocessing step" so
/// that cross-cluster sharing is rare. We provide the canonical such
/// preprocessing: connected components of the query-sharing graph (two
/// queries are adjacent when any of their plans share work), plus a greedy
/// size-capped refinement for components larger than an embedding region.

#include <vector>

#include "mqo/problem.h"

namespace qmqo {
namespace mqo {

/// A partition of queries into clusters. `cluster_of[q]` gives the cluster
/// index of query q; `members[c]` lists queries of cluster c.
struct QueryClustering {
  std::vector<int> cluster_of;
  std::vector<std::vector<QueryId>> members;

  int num_clusters() const { return static_cast<int>(members.size()); }
};

/// Exact clustering: connected components of the query-sharing graph.
/// Queries in different components never share work, so components can be
/// optimized (or embedded) independently.
QueryClustering ClusterByConnectedComponents(const MqoProblem& problem);

/// Like `ClusterByConnectedComponents`, but splits any component with more
/// than `max_queries_per_cluster` queries using a BFS order. Splitting may
/// cut sharing edges; the result is still a valid partition but no longer
/// guarantees zero inter-cluster sharing (the paper accepts the same
/// trade-off when the clustered embedding drops cross-cluster couplers).
QueryClustering ClusterWithSizeCap(const MqoProblem& problem,
                                   int max_queries_per_cluster);

/// Counts savings whose endpoints lie in different clusters (a quality
/// measure: 0 means the clustering is lossless for embedding purposes).
int CountCrossClusterSavings(const MqoProblem& problem,
                             const QueryClustering& clustering);

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_CLUSTERING_H_
