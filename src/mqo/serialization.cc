#include "mqo/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace qmqo {
namespace mqo {

std::string ToText(const MqoProblem& problem) {
  std::string out = "mqo v1\n";
  for (QueryId q = 0; q < problem.num_queries(); ++q) {
    out += "query";
    for (int i = 0; i < problem.num_plans_of(q); ++i) {
      out += StrFormat(" %.17g", problem.plan_cost(problem.first_plan(q) + i));
    }
    out += "\n";
  }
  for (const Saving& s : problem.savings()) {
    out += StrFormat("saving %d %d %.17g\n", s.plan_a, s.plan_b, s.value);
  }
  out += "end\n";
  return out;
}

namespace {

/// Hostile-input guard: no legitimate instance needs more than this many
/// bytes of text, and parsing is linear in the payload — cap before doing
/// any work so an attacker-sized payload is a cheap typed rejection.
constexpr size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

}  // namespace

Result<MqoProblem> FromText(const std::string& text) {
  if (text.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("oversized payload: %zu bytes (limit %zu)", text.size(),
                  kMaxPayloadBytes));
  }
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_end = false;
  MqoProblem problem;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "mqo v1") {
        return Status::InvalidArgument(
            StrFormat("line %d: expected header 'mqo v1'", line_no));
      }
      saw_header = true;
      continue;
    }
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty()) continue;
    if (fields[0] == "query") {
      std::vector<double> costs;
      for (size_t i = 1; i < fields.size(); ++i) {
        if (fields[i].empty()) continue;
        double v = 0.0;
        if (!ParseFiniteDouble(fields[i], &v)) {
          return Status::InvalidArgument(
              StrFormat("line %d: bad cost '%s'", line_no, fields[i].c_str()));
        }
        costs.push_back(v);
      }
      if (costs.empty()) {
        return Status::InvalidArgument(
            StrFormat("line %d: query with no plans", line_no));
      }
      problem.AddQuery(std::move(costs));
    } else if (fields[0] == "saving") {
      if (fields.size() != 4) {
        return Status::InvalidArgument(
            StrFormat("line %d: saving needs exactly 3 fields", line_no));
      }
      int a = 0;
      int b = 0;
      double v = 0.0;
      if (!ParseInt(fields[1], &a) || !ParseInt(fields[2], &b) ||
          !ParseFiniteDouble(fields[3], &v)) {
        return Status::InvalidArgument(StrFormat(
            "line %d: bad saving '%s'", line_no, line.c_str()));
      }
      Status s = problem.AddSaving(a, b, v);
      if (!s.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %d: %s", line_no, s.message().c_str()));
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", line_no,
                    fields[0].c_str()));
    }
  }
  if (!saw_header) return Status::InvalidArgument("missing 'mqo v1' header");
  if (!saw_end) return Status::InvalidArgument("missing 'end' terminator");
  QMQO_RETURN_IF_ERROR(problem.Validate());
  return problem;
}

Status SaveToFile(const MqoProblem& problem, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  out << ToText(problem);
  if (!out) {
    return Status::Internal(StrFormat("write to '%s' failed", path.c_str()));
  }
  return Status::OK();
}

Result<MqoProblem> LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromText(buffer.str());
}

}  // namespace mqo
}  // namespace qmqo
