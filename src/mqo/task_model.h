#ifndef QMQO_MQO_TASK_MODEL_H_
#define QMQO_MQO_TASK_MODEL_H_

/// \file task_model.h
/// The task-based MQO model of Sellis (TODS'88) and its reduction to the
/// pairwise-savings model — the transformation of the paper's footnote 4
/// (Section 3).
///
/// In the task-based model a plan is a *set of tasks* (scans, joins,
/// materializations); executing several plans costs the union of their
/// tasks, so any number of plans may share one task. The paper's model
/// only has pairwise savings; footnote 4 reduces tasks to it:
///
///   * each plan's cost becomes the sum of its task costs;
///   * each task t becomes one extra "intermediate result" query with two
///     plans — materialize (cost c_t) or skip (cost 0);
///   * each original plan containing t gets a saving of exactly c_t with
///     the materialize plan.
///
/// Selecting k >= 1 plans that contain t then makes "materialize" pay for
/// itself (+c_t − k*c_t <= 0), and the task is charged exactly once; with
/// k = 0 the "skip" plan costs nothing. The reduction is exact — verified
/// against direct union-cost enumeration in the tests.

#include <vector>

#include "mqo/problem.h"
#include "mqo/solution.h"
#include "util/status.h"

namespace qmqo {
namespace mqo {

/// An MQO instance in the task-based model.
struct TaskBasedProblem {
  /// Cost of each task, indexed by task id.
  std::vector<double> task_costs;
  /// plans_of[q][k] = the set of task ids of plan k of query q.
  std::vector<std::vector<std::vector<int>>> plans_of;

  int num_queries() const { return static_cast<int>(plans_of.size()); }
  int num_tasks() const { return static_cast<int>(task_costs.size()); }
};

/// The reduction's output: the pairwise problem plus the bookkeeping to
/// interpret its solutions.
struct TaskReduction {
  MqoProblem problem;
  /// Queries [0, num_original_queries) are the original ones; query
  /// num_original_queries + t is task t's intermediate-result query.
  int num_original_queries = 0;

  /// Plan id of task t's "materialize" plan.
  PlanId materialize_plan(int task) const {
    return problem.first_plan(num_original_queries + task);
  }
  /// Plan id of task t's "skip" plan.
  PlanId skip_plan(int task) const { return materialize_plan(task) + 1; }
};

/// Reduces a task-based instance to the pairwise model. Fails on invalid
/// input (empty queries, task ids out of range, negative costs).
Result<TaskReduction> ReduceToPairwise(const TaskBasedProblem& tasks);

/// Direct task-model cost of choosing plan `selection[q]` (an index into
/// `plans_of[q]`) for each query: the cost of the union of selected tasks.
double EvaluateTaskCost(const TaskBasedProblem& tasks,
                        const std::vector<int>& selection);

/// Extracts the original queries' plan indices from a solution of the
/// reduced problem.
std::vector<int> OriginalSelection(const TaskReduction& reduction,
                                   const MqoSolution& solution);

}  // namespace mqo
}  // namespace qmqo

#endif  // QMQO_MQO_TASK_MODEL_H_
