#include "mqo/solution.h"

#include <cassert>

#include "util/string_util.h"

namespace qmqo {
namespace mqo {

bool MqoSolution::IsComplete() const {
  for (PlanId p : selected_) {
    if (p == kUnselected) return false;
  }
  return true;
}

Status ValidateSolution(const MqoProblem& problem,
                        const MqoSolution& solution) {
  if (solution.num_queries() != problem.num_queries()) {
    return Status::InvalidArgument(
        StrFormat("solution covers %d queries, problem has %d",
                  solution.num_queries(), problem.num_queries()));
  }
  for (QueryId q = 0; q < problem.num_queries(); ++q) {
    PlanId p = solution.selected(q);
    if (p == MqoSolution::kUnselected) {
      return Status::FailedPrecondition(
          StrFormat("query %d has no selected plan", q));
    }
    if (p < 0 || p >= problem.num_plans() || problem.query_of(p) != q) {
      return Status::InvalidArgument(
          StrFormat("plan %d is not a plan of query %d", p, q));
    }
  }
  return Status::OK();
}

double EvaluateCost(const MqoProblem& problem, const MqoSolution& solution) {
  std::vector<uint8_t> chosen(static_cast<size_t>(problem.num_plans()), 0);
  double cost = 0.0;
  for (QueryId q = 0; q < solution.num_queries(); ++q) {
    PlanId p = solution.selected(q);
    if (p == MqoSolution::kUnselected) continue;
    chosen[static_cast<size_t>(p)] = 1;
    cost += problem.plan_cost(p);
  }
  for (const Saving& s : problem.savings()) {
    if (chosen[static_cast<size_t>(s.plan_a)] &&
        chosen[static_cast<size_t>(s.plan_b)]) {
      cost -= s.value;
    }
  }
  return cost;
}

int SwapDescent(const MqoProblem& problem, MqoSolution* solution) {
  IncrementalCostEvaluator eval(problem);
  eval.Reset(*solution);
  int swaps = 0;
  while (true) {
    QueryId best_query = -1;
    PlanId best_plan = -1;
    double best_delta = -1e-12;
    for (QueryId q = 0; q < problem.num_queries(); ++q) {
      for (int k = 0; k < problem.num_plans_of(q); ++k) {
        PlanId p = problem.first_plan(q) + k;
        if (p == eval.selected(q)) continue;
        double delta = eval.SwapDelta(q, p);
        if (delta < best_delta) {
          best_delta = delta;
          best_query = q;
          best_plan = p;
        }
      }
    }
    if (best_query < 0) break;
    eval.ApplySwap(best_query, best_plan);
    ++swaps;
  }
  if (swaps > 0) *solution = eval.ToSolution();
  return swaps;
}

IncrementalCostEvaluator::IncrementalCostEvaluator(const MqoProblem& problem)
    : problem_(problem),
      selected_(static_cast<size_t>(problem.num_queries()),
                MqoSolution::kUnselected),
      is_chosen_(static_cast<size_t>(problem.num_plans()), 0) {}

void IncrementalCostEvaluator::Reset(const MqoSolution& solution) {
  assert(solution.num_queries() == problem_.num_queries());
  std::fill(is_chosen_.begin(), is_chosen_.end(), 0);
  for (QueryId q = 0; q < problem_.num_queries(); ++q) {
    selected_[static_cast<size_t>(q)] = solution.selected(q);
    if (solution.selected(q) != MqoSolution::kUnselected) {
      is_chosen_[static_cast<size_t>(solution.selected(q))] = 1;
    }
  }
  cost_ = EvaluateCost(problem_, solution);
}

double IncrementalCostEvaluator::SwapDelta(QueryId q, PlanId new_plan) const {
  PlanId old_plan = selected_[static_cast<size_t>(q)];
  if (old_plan == new_plan) return 0.0;
  double delta = problem_.plan_cost(new_plan);
  if (old_plan != MqoSolution::kUnselected) {
    delta -= problem_.plan_cost(old_plan);
    // Savings lost by dropping old_plan (links to plans that stay selected).
    for (const auto& [other, value] : problem_.savings_of(old_plan)) {
      if (is_chosen_[static_cast<size_t>(other)]) delta += value;
    }
  }
  // Savings gained by adding new_plan. Note old_plan is still flagged chosen
  // here; a link new_plan<->old_plan is impossible (same query), so the sum
  // is unaffected by the ordering of the swap's two halves.
  for (const auto& [other, value] : problem_.savings_of(new_plan)) {
    if (is_chosen_[static_cast<size_t>(other)]) delta -= value;
  }
  return delta;
}

void IncrementalCostEvaluator::ApplySwap(QueryId q, PlanId new_plan) {
  PlanId old_plan = selected_[static_cast<size_t>(q)];
  if (old_plan == new_plan) return;
  cost_ += SwapDelta(q, new_plan);
  if (old_plan != MqoSolution::kUnselected) {
    is_chosen_[static_cast<size_t>(old_plan)] = 0;
  }
  is_chosen_[static_cast<size_t>(new_plan)] = 1;
  selected_[static_cast<size_t>(q)] = new_plan;
}

MqoSolution IncrementalCostEvaluator::ToSolution() const {
  MqoSolution out(problem_.num_queries());
  for (QueryId q = 0; q < problem_.num_queries(); ++q) {
    out.Select(q, selected_[static_cast<size_t>(q)]);
  }
  return out;
}

}  // namespace mqo
}  // namespace qmqo
