#include "service/service_stats.h"

#include "util/string_util.h"

namespace qmqo {
namespace service {

bool ServiceStats::operator==(const ServiceStats& other) const {
  for (int b = 0; b < 4; ++b) {
    if (answered_by[b] != other.answered_by[b]) return false;
  }
  return submitted == other.submitted && accepted == other.accepted &&
         rejected_invalid == other.rejected_invalid &&
         rejected_queue_full == other.rejected_queue_full &&
         rejected_shutdown == other.rejected_shutdown &&
         completed_ok == other.completed_ok &&
         completed_failed == other.completed_failed &&
         expired_in_queue == other.expired_in_queue &&
         drained_failfast == other.drained_failfast &&
         shed_degraded == other.shed_degraded &&
         breaker_skips == other.breaker_skips &&
         faults_observed == other.faults_observed &&
         rounds == other.rounds && modeled_ms == other.modeled_ms;
}

std::string ServiceStats::ToString() const {
  return StrFormat(
      "submitted %lld | accepted %lld, rejected invalid %lld / full %lld / "
      "shutdown %lld | ok %lld, failed %lld, expired %lld, drained %lld | "
      "degraded %lld, breaker skips %lld, faults %lld | "
      "answers d/q/s/g %lld/%lld/%lld/%lld | rounds %lld, modeled %.1f ms",
      static_cast<long long>(submitted), static_cast<long long>(accepted),
      static_cast<long long>(rejected_invalid),
      static_cast<long long>(rejected_queue_full),
      static_cast<long long>(rejected_shutdown),
      static_cast<long long>(completed_ok),
      static_cast<long long>(completed_failed),
      static_cast<long long>(expired_in_queue),
      static_cast<long long>(drained_failfast),
      static_cast<long long>(shed_degraded),
      static_cast<long long>(breaker_skips),
      static_cast<long long>(faults_observed),
      static_cast<long long>(answered_by[0]),
      static_cast<long long>(answered_by[1]),
      static_cast<long long>(answered_by[2]),
      static_cast<long long>(answered_by[3]),
      static_cast<long long>(rounds), modeled_ms);
}

}  // namespace service
}  // namespace qmqo
