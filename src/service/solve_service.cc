#include "service/solve_service.h"

#include <algorithm>
#include <array>
#include <utility>

#include "embedding/clustered.h"
#include "embedding/embedding_cache.h"
#include "mqo/serialization.h"
#include "util/executor.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workloads/serialization.h"

namespace qmqo {
namespace service {
namespace {

// Maximum accepted wire payload (mirrors both formats' own caps) — checked
// before the tag scan so oversized hostile payloads are rejected up front.
constexpr size_t kMaxSubmitTextBytes = 16u << 20;  // 16 MiB

// The request-type tag: first token of the first non-blank, non-comment
// line. One linear scan, no parsing.
std::string LeadingRequestTag(const std::string& text) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = Trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.find(' ');
    return space == std::string::npos ? line : line.substr(0, space);
  }
  return "";
}

// Entry rung implied by queue occupancy at round formation: 0 = full
// ladder, 1 = skip device (SQA first), 2 = SA first, 3 = greedy only.
// Thresholds are inclusive so fill == threshold already sheds.
int ShedRungForFill(const ServiceOptions& options, double fill) {
  int rung = 0;
  if (fill >= options.shed_device_fill) rung = 1;
  if (fill >= options.shed_sqa_fill) rung = 2;
  if (fill >= options.shed_sa_fill) rung = 3;
  return rung;
}

// One round slot: everything decided serially at admission, filled in by
// the parallel solve, then committed serially.
struct RoundSlot {
  QueuedRequest request;
  harness::SolvePolicy policy;
  harness::QuantumMqoOptions pipeline;
  bool crashed = false;  // service.worker_crash fired at admission
  bool shed = false;     // entry rung degraded by pressure or brownout
  double crash_latency_ms = 0.0;
  harness::SolveReport report;
  // Per-slot trace: the root span opens at admission (serial), solver
  // spans nest under it in the worker, the verdict closes it at the
  // serial commit — then it is committed to the shared Tracer in slot
  // order, the same discipline that makes outcomes deterministic.
  obs::SolveTrace trace;
  int root_span = -1;
};

}  // namespace

SolveService::SolveService(const ServiceOptions& options)
    : options_(options),
      queue_(options.queue_capacity),
      breakers_{CircuitBreaker(options.breaker), CircuitBreaker(options.breaker),
                CircuitBreaker(options.breaker),
                CircuitBreaker(options.breaker)} {
  if (options_.round_width <= 0) options_.round_width = 4;
  RegisterMetrics();
}

void SolveService::RegisterMetrics() {
  m_submitted_ = registry_.counter("qmqo_service_requests_submitted_total",
                                   "Submit calls, accepted or not");
  m_accepted_ = registry_.counter("qmqo_service_requests_accepted_total",
                                  "Requests admitted into the queue");
  m_rejected_invalid_ =
      registry_.counter("qmqo_service_requests_rejected_total{reason=\"invalid\"}",
                        "Rejected requests by reason");
  m_rejected_queue_full_ = registry_.counter(
      "qmqo_service_requests_rejected_total{reason=\"queue_full\"}");
  m_rejected_shutdown_ = registry_.counter(
      "qmqo_service_requests_rejected_total{reason=\"shutdown\"}");
  m_completed_ok_ =
      registry_.counter("qmqo_service_requests_settled_total{verdict=\"ok\"}",
                        "Settled requests by verdict");
  m_completed_failed_ = registry_.counter(
      "qmqo_service_requests_settled_total{verdict=\"failed\"}");
  m_expired_in_queue_ = registry_.counter(
      "qmqo_service_requests_settled_total{verdict=\"expired_in_queue\"}");
  m_drained_failfast_ = registry_.counter(
      "qmqo_service_requests_settled_total{verdict=\"drained_failfast\"}");
  m_shed_degraded_ =
      registry_.counter("qmqo_service_shed_degraded_total",
                        "Requests whose ladder entry rung was degraded");
  m_breaker_skips_ =
      registry_.counter("qmqo_service_breaker_skips_total",
                        "Ladder rungs skipped on an open breaker");
  m_faults_observed_ =
      registry_.counter("qmqo_service_faults_observed_total",
                        "Faults observed inside routed solves");
  for (int b = 0; b < 4; ++b) {
    m_answered_by_[b] = registry_.counter(
        StrFormat("qmqo_service_answered_total{backend=\"%s\"}",
                  harness::SolveBackendName(
                      static_cast<harness::SolveBackend>(b))),
        b == 0 ? "Successful answers by backend" : "");
  }
  for (int k = 0; k < 3; ++k) {
    m_workload_accepted_[k] = registry_.counter(
        StrFormat("qmqo_service_workload_accepted_total{kind=\"%s\"}",
                  workloads::WorkloadKindName(
                      static_cast<workloads::WorkloadKind>(k))),
        k == 0 ? "Accepted workload requests by kind" : "");
  }
  m_rounds_ = registry_.counter("qmqo_service_rounds_total",
                                "Scheduling rounds run");
  m_modeled_clock_ = registry_.gauge("qmqo_service_modeled_clock_ms",
                                     "Modeled service clock, milliseconds");
  m_queue_wait_hist_ = registry_.histogram(
      "qmqo_service_queue_wait_modeled_ms", obs::DefaultLatencyBucketsMs(),
      "Modeled milliseconds settled requests spent queued");
  m_solve_hist_ = registry_.histogram(
      "qmqo_service_solve_modeled_ms", obs::DefaultLatencyBucketsMs(),
      "Modeled milliseconds charged by scheduled solves");

  // Subsystems that keep their own counters for layering reasons are
  // mirrored at snapshot time. Monotonic sources mirror as counters via
  // SetToAbsolute so the exposition's TYPE matches their semantics
  // (scrapers rate() them); point-in-time values (breaker state, window
  // failure rate) stay gauges. Collect() runs on the serial scheduling
  // thread, which is what breaker access requires.
  registry_.AddCollector([this](obs::MetricsRegistry* r) {
    for (int b = 0; b < 4; ++b) {
      const CircuitBreaker& breaker = breakers_[b];
      const char* name = harness::SolveBackendName(
          static_cast<harness::SolveBackend>(b));
      r->gauge(StrFormat("qmqo_breaker_state{backend=\"%s\"}", name),
               b == 0 ? "Breaker state: 0 closed, 1 open, 2 half-open" : "")
          ->Set(static_cast<double>(static_cast<int>(breaker.state())));
      r->gauge(
           StrFormat("qmqo_breaker_window_failure_rate{backend=\"%s\"}", name))
          ->Set(breaker.WindowFailureRate());
      r->counter(StrFormat("qmqo_breaker_admitted_total{backend=\"%s\"}",
                           name))
          ->SetToAbsolute(breaker.admitted());
      r->counter(StrFormat("qmqo_breaker_rejected_total{backend=\"%s\"}",
                           name))
          ->SetToAbsolute(breaker.rejected());
      r->counter(StrFormat("qmqo_breaker_opened_total{backend=\"%s\"}", name))
          ->SetToAbsolute(breaker.times_opened());
    }
  });
  if (options_.faults != nullptr) {
    const util::FaultInjector* faults = options_.faults;
    registry_.AddCollector([faults](obs::MetricsRegistry* r) {
      r->counter("qmqo_faults_fired_total",
                 "Total fault-injector firings across all sites")
          ->SetToAbsolute(faults->faults_injected());
      for (const auto& [site, count] : faults->Counts()) {
        r->counter(
             StrFormat("qmqo_faults_fired_site_total{site=\"%s\"}",
                       site.c_str()))
            ->SetToAbsolute(count);
      }
    });
  }
  if (options_.pipeline.embedding_cache != nullptr) {
    embedding::EmbeddingCache* cache = options_.pipeline.embedding_cache;
    registry_.AddCollector([cache](obs::MetricsRegistry* r) {
      const embedding::EmbeddingCacheStats stats = cache->stats();
      r->counter("qmqo_embedding_cache_hits_total",
                 "Embedding cache lookups by kind")
          ->SetToAbsolute(static_cast<int64_t>(stats.hits));
      r->counter("qmqo_embedding_cache_misses_total")
          ->SetToAbsolute(static_cast<int64_t>(stats.misses));
      r->counter("qmqo_embedding_cache_evictions_total")
          ->SetToAbsolute(static_cast<int64_t>(stats.evictions));
      r->counter("qmqo_embedding_cache_bypasses_total")
          ->SetToAbsolute(static_cast<int64_t>(stats.bypasses));
    });
  }
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.submitted = m_submitted_->Value();
  s.accepted = m_accepted_->Value();
  s.rejected_invalid = m_rejected_invalid_->Value();
  s.rejected_queue_full = m_rejected_queue_full_->Value();
  s.rejected_shutdown = m_rejected_shutdown_->Value();
  s.completed_ok = m_completed_ok_->Value();
  s.completed_failed = m_completed_failed_->Value();
  s.expired_in_queue = m_expired_in_queue_->Value();
  s.drained_failfast = m_drained_failfast_->Value();
  s.shed_degraded = m_shed_degraded_->Value();
  s.breaker_skips = m_breaker_skips_->Value();
  s.faults_observed = m_faults_observed_->Value();
  for (int b = 0; b < 4; ++b) s.answered_by[b] = m_answered_by_[b]->Value();
  s.rounds = m_rounds_->Value();
  s.modeled_ms = m_modeled_clock_->Value();
  return s;
}

Result<uint64_t> SolveService::Enqueue(QueuedRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  m_submitted_->Increment();
  if (!accepting_) {
    m_rejected_shutdown_->Increment();
    return Status::Unavailable("service is shut down");
  }
  request.id = next_id_;
  request.submit_ms = clock_ms_;
  Status pushed = queue_.Push(std::move(request));
  if (!pushed.ok()) {
    m_rejected_queue_full_->Increment();
    return pushed;
  }
  uint64_t id = next_id_++;
  m_accepted_->Increment();
  return id;
}

Result<uint64_t> SolveService::Submit(mqo::MqoProblem problem,
                                      embedding::Embedding embedding,
                                      RequestPriority priority,
                                      double deadline_ms) {
  Status valid = problem.Validate();
  if (!valid.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    m_submitted_->Increment();
    m_rejected_invalid_->Increment();
    return valid;
  }
  QueuedRequest request;
  request.priority = priority;
  request.deadline_ms =
      deadline_ms < 0.0 ? options_.default_deadline_ms : deadline_ms;
  request.problem = std::move(problem);
  request.has_embedding = embedding.num_vars() == request.problem.num_plans();
  request.embedding = std::move(embedding);
  return Enqueue(std::move(request));
}

Result<uint64_t> SolveService::SubmitText(const std::string& text,
                                          RequestPriority priority,
                                          double deadline_ms) {
  // Dispatch on the request-type tag (the first token of the first
  // non-blank, non-comment line): "mqo" and "workload" route to their
  // parsers; anything else is a typed InvalidArgument — an unknown tag
  // must never fall through into a format parser whose errors would
  // misreport it as a malformed instance of the wrong format.
  if (text.size() > kMaxSubmitTextBytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    m_submitted_->Increment();
    m_rejected_invalid_->Increment();
    return Status::InvalidArgument(
        StrFormat("oversized payload: %zu bytes (limit %zu)", text.size(),
                  kMaxSubmitTextBytes));
  }
  const std::string tag = LeadingRequestTag(text);
  if (tag == "workload") {
    Result<workloads::WorkloadSpec> spec = workloads::FromText(text);
    if (!spec.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      m_submitted_->Increment();
      m_rejected_invalid_->Increment();
      return spec.status();
    }
    Result<std::shared_ptr<workloads::Workload>> made =
        workloads::MakeWorkload(*spec);
    if (!made.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      m_submitted_->Increment();
      m_rejected_invalid_->Increment();
      return made.status();
    }
    return SubmitWorkload(std::move(made).value(), priority, deadline_ms);
  }
  if (tag != "mqo") {
    std::lock_guard<std::mutex> lock(mutex_);
    m_submitted_->Increment();
    m_rejected_invalid_->Increment();
    return Status::InvalidArgument(StrFormat(
        "unknown request type tag '%s' (expected 'mqo' or 'workload')",
        tag.c_str()));
  }
  Result<mqo::MqoProblem> parsed = mqo::FromText(text);
  if (!parsed.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    m_submitted_->Increment();
    m_rejected_invalid_->Increment();
    return parsed.status();
  }
  mqo::MqoProblem problem = std::move(parsed).value();
  // Re-derive the embedding from the instance's cluster structure — the
  // same construction the paper workload uses, so a round-tripped payload
  // gets a bit-identical device layout. No fit is not a rejection: the
  // request enters the ladder at the first classical rung instead.
  embedding::Embedding embedding(0);
  bool has_embedding = false;
  if (options_.graph != nullptr && problem.num_queries() > 0) {
    std::vector<int> cluster_sizes(
        static_cast<size_t>(problem.num_queries()));
    for (int q = 0; q < problem.num_queries(); ++q) {
      cluster_sizes[static_cast<size_t>(q)] = problem.num_plans_of(q);
    }
    Result<embedding::Embedding> embedded =
        embedding::ClusteredEmbedder::Embed(cluster_sizes, *options_.graph);
    if (embedded.ok()) {
      embedding = std::move(embedded).value();
      has_embedding = true;
    }
  }
  QueuedRequest request;
  request.priority = priority;
  request.deadline_ms =
      deadline_ms < 0.0 ? options_.default_deadline_ms : deadline_ms;
  request.problem = std::move(problem);
  request.embedding = std::move(embedding);
  request.has_embedding = has_embedding;
  return Enqueue(std::move(request));
}

Result<uint64_t> SolveService::SubmitWorkload(
    std::shared_ptr<const workloads::Workload> workload,
    RequestPriority priority, double deadline_ms) {
  if (workload == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    m_submitted_->Increment();
    m_rejected_invalid_->Increment();
    return Status::InvalidArgument("null workload");
  }
  const int kind = static_cast<int>(workload->kind());
  QueuedRequest request;
  request.priority = priority;
  request.deadline_ms =
      deadline_ms < 0.0 ? options_.default_deadline_ms : deadline_ms;
  // No embedding exists for a bare QUBO: admission degrades the entry rung
  // past the device exactly as for an MQO request whose embedding did not
  // fit, and SolveQubo's own gate records the typed skip.
  request.has_embedding = false;
  request.workload = std::move(workload);
  Result<uint64_t> id = Enqueue(std::move(request));
  if (id.ok() && kind >= 0 && kind < 3) {
    std::lock_guard<std::mutex> lock(mutex_);
    m_workload_accepted_[kind]->Increment();
  }
  return id;
}

int SolveService::ProcessRound() {
  const util::FaultInjector* faults = options_.faults;
  obs::Tracer* tracer = options_.tracer;
  std::vector<RoundSlot> slots;
  int settled = 0;
  uint64_t round = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return 0;
    m_rounds_->Increment();
    round = static_cast<uint64_t>(round_index_++);

    // An injected queue stall ages everything still queued before this
    // round claims work — the mechanism deadline-expiry tests use.
    if (faults != nullptr && faults->ShouldFail("service.queue_stall", round)) {
      clock_ms_ += faults->LatencyMillis("service.queue_stall");
    }

    // Shed level is measured once per round, at formation — every request
    // claimed by the round sees the same queue-pressure decision.
    const double fill = queue_.FillFraction();
    const int shed_rung = ShedRungForFill(options_, fill);

    QueuedRequest request;
    while (static_cast<int>(slots.size()) < options_.round_width &&
           queue_.Pop(&request)) {
      const double queue_wait = clock_ms_ - request.submit_ms;
      // Shed requests that aged past their deadline while queued: they
      // settle here, without ever occupying a worker.
      if (request.deadline_ms > 0.0 && queue_wait >= request.deadline_ms) {
        SolveOutcome outcome;
        outcome.id = request.id;
        outcome.status = Status::Timeout(
            StrFormat("deadline (%.1f ms) expired after %.1f ms in queue",
                      request.deadline_ms, queue_wait));
        outcome.queue_wait_modeled_ms = queue_wait;
        m_queue_wait_hist_->Observe(queue_wait);
        if (tracer != nullptr) {
          obs::SolveTrace trace;
          trace.Open("service.request");
          trace.Tag("id", static_cast<int64_t>(request.id));
          trace.Tag("round", static_cast<int64_t>(round));
          trace.Tag("verdict", "expired_in_queue");
          trace.Tag("queue_wait_ms", obs::FormatMs(queue_wait));
          trace.AddModeled(queue_wait);
          trace.Close(0.0);
          tracer->Commit(std::move(trace));
        }
        outcomes_.push_back(std::move(outcome));
        m_expired_in_queue_->Increment();
        ++settled;
        continue;
      }

      RoundSlot slot;
      // Entry rung: queue pressure, a brownout fault, or a missing
      // embedding each force the request past the device rung.
      int entry_rung = shed_rung;
      bool shed = shed_rung > 0;
      if (faults != nullptr &&
          faults->ShouldFail("service.brownout", request.id)) {
        entry_rung = std::max(entry_rung, 1);
        shed = true;
      }
      if (!request.has_embedding) entry_rung = std::max(entry_rung, 1);
      if (shed) m_shed_degraded_->Increment();
      slot.shed = shed;

      // Per-request policy: forked seed, remaining deadline, breaker gate
      // snapshot. The snapshot is taken here, on the serial path — workers
      // never touch live breaker state.
      slot.policy = options_.policy;
      slot.policy.seed = Rng(options_.policy.seed).Fork(request.id).Next();
      slot.policy.entry_rung = entry_rung;
      if (slot.policy.faults == nullptr) slot.policy.faults = faults;
      if (request.deadline_ms > 0.0) {
        slot.policy.deadline_ms = request.deadline_ms - queue_wait;
      }
      if (options_.breakers_enabled && !slot.policy.ladder.empty()) {
        std::array<Status, 4> gate_snapshot;
        for (size_t rung = static_cast<size_t>(entry_rung);
             rung + 1 < slot.policy.ladder.size(); ++rung) {
          const harness::SolveBackend backend = slot.policy.ladder[rung];
          gate_snapshot[static_cast<size_t>(backend)] =
              breakers_[static_cast<size_t>(backend)].Admit(clock_ms_);
        }
        slot.policy.backend_gate =
            [gate_snapshot](harness::SolveBackend backend) {
              return gate_snapshot[static_cast<size_t>(backend)];
            };
      }

      slot.pipeline = options_.pipeline;
      if (slot.pipeline.faults == nullptr) slot.pipeline.faults = faults;
      if (slot.pipeline.device.executor == nullptr) {
        slot.pipeline.device.executor = options_.executor;
      }
      if (slot.pipeline.device.num_threads <= 0) {
        slot.pipeline.device.num_threads = std::max(1, options_.num_threads);
      }

      // A crashed worker is decided at admission (pure in seed and id, so
      // any thread would decide identically) and skips the solve entirely.
      if (faults != nullptr &&
          faults->ShouldFail("service.worker_crash", request.id)) {
        slot.crashed = true;
        slot.crash_latency_ms = faults->LatencyMillis("service.worker_crash");
      }

      if (tracer != nullptr) {
        // Root span opened on the serial path with admission-time tags;
        // the slot's worker nests solver spans under it.
        slot.root_span = slot.trace.Open("service.request");
        slot.trace.Tag("id", static_cast<int64_t>(request.id));
        slot.trace.Tag("round", static_cast<int64_t>(round));
      }

      slot.request = std::move(request);
      slots.push_back(std::move(slot));
    }
  }

  if (slots.empty()) return settled;

  // Parallel fan-out into per-index slots. Everything order-dependent
  // already happened above; everything order-dependent below happens after
  // the barrier — results are bit-identical at any worker count.
  const chimera::ChimeraGraph* graph = options_.graph;
  util::Executor::Run(
      options_.executor, static_cast<int>(slots.size()),
      std::max(1, options_.num_threads), [&](int begin, int end, int) {
        for (int i = begin; i < end; ++i) {
          RoundSlot& slot = slots[static_cast<size_t>(i)];
          if (slot.crashed) continue;
          if (slot.root_span >= 0) slot.pipeline.trace = &slot.trace;
          if (slot.request.workload != nullptr) {
            // Workload requests solve the formulated QUBO through the same
            // ladder/budget machinery; no embedding, no device rung.
            slot.report = harness::ResilientSolver(slot.policy)
                              .SolveQubo(slot.request.workload->qubo(),
                                         slot.pipeline);
          } else {
            slot.report = harness::ResilientSolver(slot.policy)
                              .Solve(slot.request.problem,
                                     slot.request.embedding, *graph,
                                     slot.pipeline);
          }
        }
      });

  // Serial commit, in slot order: advance the modeled clock by the round's
  // longest solve, then feed breakers, counters, and the tracer.
  std::lock_guard<std::mutex> lock(mutex_);
  double round_ms = 0.0;
  for (const RoundSlot& slot : slots) {
    round_ms = std::max(round_ms, slot.crashed ? slot.crash_latency_ms
                                               : slot.report.total_modeled_ms);
  }
  clock_ms_ += round_ms;
  m_modeled_clock_->Set(clock_ms_);

  for (RoundSlot& slot : slots) {
    SolveOutcome outcome;
    outcome.id = slot.request.id;
    outcome.entry_rung = slot.policy.entry_rung;
    outcome.shed_degraded = slot.shed;
    outcome.queue_wait_modeled_ms =
        (clock_ms_ - round_ms) - slot.request.submit_ms;

    if (slot.crashed) {
      outcome.status = Status::Internal(StrFormat(
          "injected worker crash while solving request %llu",
          static_cast<unsigned long long>(slot.request.id)));
      outcome.solve_modeled_ms = slot.crash_latency_ms;
      outcome.faults_observed = 1;
      m_completed_failed_->Increment();
      m_faults_observed_->Increment();
    } else {
      const harness::SolveReport& report = slot.report;
      // Breaker feedback: only attempts that actually ran (attempt >= 1)
      // are outcomes; gate skips (attempt 0) are counted as skips.
      for (const harness::SolveAttempt& attempt : report.attempts) {
        if (attempt.attempt == 0) {
          ++outcome.breaker_skips;
          continue;
        }
        if (options_.breakers_enabled) {
          breakers_[static_cast<size_t>(attempt.backend)].Record(
              attempt.status.ok(), attempt.modeled_ms, clock_ms_);
        }
      }
      m_breaker_skips_->Increment(outcome.breaker_skips);
      outcome.status = report.final_status;
      outcome.backend = report.backend;
      outcome.cost = report.cost;
      outcome.solution = report.solution;
      outcome.solve_modeled_ms = report.total_modeled_ms;
      outcome.attempts = report.total_attempts;
      outcome.faults_observed = report.faults_observed;
      outcome.detail = report.FailureChain();
      if (slot.request.workload != nullptr) {
        outcome.workload = slot.request.workload;
        if (report.ok) {
          // Decode is a pure function of the winning assignment (repair
          // included), so running it on the serial commit path keeps the
          // outcome deterministic at any worker count for free.
          outcome.workload_solution =
              slot.request.workload->Decode(report.qubo_assignment);
          outcome.workload_gap = slot.request.workload->OptimalityGap(
              outcome.workload_solution);
        }
      }
      m_faults_observed_->Increment(report.faults_observed);
      if (report.ok) {
        m_completed_ok_->Increment();
        m_answered_by_[static_cast<size_t>(report.backend)]->Increment();
      } else {
        m_completed_failed_->Increment();
      }
    }
    m_queue_wait_hist_->Observe(outcome.queue_wait_modeled_ms);
    m_solve_hist_->Observe(outcome.solve_modeled_ms);

    if (slot.root_span >= 0 && tracer != nullptr) {
      obs::SolveTrace& trace = slot.trace;
      if (slot.crashed) {
        trace.Tag("verdict", "worker_crash");
      } else if (slot.report.ok) {
        trace.Tag("verdict", "completed");
        trace.Tag("backend", harness::SolveBackendName(slot.report.backend));
      } else {
        trace.Tag("verdict", "failed");
      }
      trace.Tag("entry_rung", static_cast<int64_t>(outcome.entry_rung));
      if (slot.request.workload != nullptr) {
        trace.Tag("workload", workloads::WorkloadKindName(
                                  slot.request.workload->kind()));
      }
      if (slot.shed) trace.Tag("shed", static_cast<int64_t>(1));
      if (outcome.breaker_skips > 0) {
        trace.Tag("breaker_skips", static_cast<int64_t>(outcome.breaker_skips));
      }
      trace.Tag("queue_wait_ms",
                obs::FormatMs(outcome.queue_wait_modeled_ms));
      trace.AddModeled(outcome.queue_wait_modeled_ms +
                       outcome.solve_modeled_ms);
      trace.Close(slot.crashed ? 0.0 : slot.report.total_wall_ms);
      tracer->Commit(std::move(trace));
    }

    outcomes_.push_back(std::move(outcome));
    ++settled;
  }
  return settled;
}

int SolveService::DrainAll() {
  int settled = 0;
  while (!queue_.empty()) {
    int round = ProcessRound();
    if (round == 0 && queue_.empty()) break;
    settled += round;
  }
  return settled;
}

int SolveService::Shutdown(bool graceful) {
  int settled = 0;
  if (graceful) {
    settled = DrainAll();
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    return settled;
  }
  std::vector<QueuedRequest> abandoned;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
    abandoned = queue_.DrainAll();
    for (QueuedRequest& request : abandoned) {
      SolveOutcome outcome;
      outcome.id = request.id;
      outcome.status =
          Status::Unavailable("request failed fast by service shutdown");
      outcome.queue_wait_modeled_ms = clock_ms_ - request.submit_ms;
      m_queue_wait_hist_->Observe(outcome.queue_wait_modeled_ms);
      if (options_.tracer != nullptr) {
        obs::SolveTrace trace;
        trace.Open("service.request");
        trace.Tag("id", static_cast<int64_t>(request.id));
        trace.Tag("verdict", "drained_failfast");
        trace.Tag("queue_wait_ms",
                  obs::FormatMs(outcome.queue_wait_modeled_ms));
        trace.AddModeled(outcome.queue_wait_modeled_ms);
        trace.Close(0.0);
        options_.tracer->Commit(std::move(trace));
      }
      outcomes_.push_back(std::move(outcome));
      m_drained_failfast_->Increment();
      ++settled;
    }
  }
  return settled;
}

}  // namespace service
}  // namespace qmqo
