#include "service/circuit_breaker.h"

#include <algorithm>

#include "util/string_util.h"

namespace qmqo {
namespace service {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options) {
  options_.window = std::max(1, options_.window);
  options_.min_samples = std::max(1, options_.min_samples);
  options_.half_open_probes = std::max(1, options_.half_open_probes);
  options_.successes_to_close = std::max(1, options_.successes_to_close);
}

Status CircuitBreaker::Admit(double now_ms) {
  if (state_ == BreakerState::kOpen &&
      now_ms - opened_at_ms_ >= options_.open_cooldown_ms) {
    state_ = BreakerState::kHalfOpen;
    probes_admitted_ = 0;
    probe_successes_ = 0;
  }
  switch (state_) {
    case BreakerState::kClosed:
      ++admitted_;
      return Status::OK();
    case BreakerState::kOpen:
      ++rejected_;
      return Status::Unavailable(StrFormat(
          "circuit open (failure rate %.2f over last %d outcomes)",
          WindowFailureRate(), static_cast<int>(window_.size())));
    case BreakerState::kHalfOpen:
      // Admitted probes that never produce an outcome (an earlier rung
      // answered first) would otherwise wedge the episode; re-arm the probe
      // budget once a full cooldown passes with no verdict.
      if (probes_admitted_ >= options_.half_open_probes &&
          now_ms - last_probe_admit_ms_ >= options_.open_cooldown_ms) {
        probes_admitted_ = 0;
      }
      if (probes_admitted_ < options_.half_open_probes) {
        ++probes_admitted_;
        last_probe_admit_ms_ = now_ms;
        ++admitted_;
        return Status::OK();
      }
      ++rejected_;
      return Status::Unavailable("circuit half-open, probe budget spent");
  }
  return Status::Internal("unknown breaker state");
}

void CircuitBreaker::Record(bool ok, double modeled_latency_ms,
                            double now_ms) {
  const bool failure =
      !ok || (options_.latency_threshold_ms > 0.0 &&
              modeled_latency_ms > options_.latency_threshold_ms);

  if (state_ == BreakerState::kHalfOpen) {
    if (failure) {
      Open(now_ms);
    } else if (++probe_successes_ >= options_.successes_to_close) {
      Close();
    }
    return;
  }
  if (state_ == BreakerState::kOpen) {
    // A straggler outcome from a request admitted before the breaker
    // opened; the open decision already stands.
    return;
  }

  window_.push_back(failure ? 1 : 0);
  window_failures_ += failure ? 1 : 0;
  while (static_cast<int>(window_.size()) > options_.window) {
    window_failures_ -= window_.front();
    window_.pop_front();
  }
  if (static_cast<int>(window_.size()) >= options_.min_samples &&
      WindowFailureRate() >= options_.failure_rate_to_open) {
    Open(now_ms);
  }
}

double CircuitBreaker::WindowFailureRate() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_.size());
}

void CircuitBreaker::Open(double now_ms) {
  state_ = BreakerState::kOpen;
  opened_at_ms_ = now_ms;
  probes_admitted_ = 0;
  probe_successes_ = 0;
  ++times_opened_;
}

void CircuitBreaker::Close() {
  state_ = BreakerState::kClosed;
  window_.clear();
  window_failures_ = 0;
  probes_admitted_ = 0;
  probe_successes_ = 0;
  ++times_closed_;
}

std::string CircuitBreaker::Summary() const {
  return StrFormat("%s (failure rate %.2f over %d, opened %lldx)",
                   BreakerStateName(state_), WindowFailureRate(),
                   static_cast<int>(window_.size()),
                   static_cast<long long>(times_opened_));
}

}  // namespace service
}  // namespace qmqo
