#ifndef QMQO_SERVICE_REQUEST_QUEUE_H_
#define QMQO_SERVICE_REQUEST_QUEUE_H_

/// \file request_queue.h
/// The solve service's bounded, two-lane request queue.
///
/// Admission control starts here: the queue holds at most `capacity`
/// requests across both lanes, and `Push` reports `ResourceExhausted`
/// instead of growing — backpressure is a typed, observable outcome, never
/// an unbounded buffer. Two priority lanes (interactive ahead of batch)
/// are drained strictly lane-major, FIFO within a lane, so a burst of
/// batch work can never starve interactive requests of queue *order* —
/// only of capacity, which admission control already meters.
///
/// The queue is internally synchronized (submitters may race); everything
/// order-dependent the service does with popped requests happens on its
/// serial scheduling path, so thread-safety here is about not corrupting
/// the deques, not about determinism.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "embedding/embedding.h"
#include "mqo/problem.h"
#include "util/status.h"

namespace qmqo {
namespace workloads {
class Workload;
}  // namespace workloads

namespace service {

/// Scheduling class of a request. Interactive requests dequeue ahead of
/// batch requests regardless of arrival order.
enum class RequestPriority {
  kInteractive = 0,
  kBatch = 1,
};

/// Stable lower-case name ("interactive", "batch").
const char* RequestPriorityName(RequestPriority priority);

/// One admitted solve request, queued until a scheduling round claims it.
struct QueuedRequest {
  /// Service-assigned id, unique and monotone in admission order.
  uint64_t id = 0;
  RequestPriority priority = RequestPriority::kBatch;
  /// Modeled service-clock timestamp at admission (queue-wait accounting).
  double submit_ms = 0.0;
  /// Modeled per-request deadline, milliseconds since `submit_ms`;
  /// <= 0 = none. Requests that age past it in the queue are shed.
  double deadline_ms = 0.0;
  mqo::MqoProblem problem;
  embedding::Embedding embedding{0};
  /// False when no embedding could be derived for the instance — the
  /// device rung is unusable and admission degrades the entry rung.
  bool has_embedding = false;
  /// Non-null for workload requests (max-clique / max-cut / coloring):
  /// the formulated problem the solve runs against (`SolveQubo` on its
  /// QUBO) instead of `problem`/`embedding`. Shared and immutable — the
  /// outcome keeps a reference for decoding.
  std::shared_ptr<const workloads::Workload> workload;
};

/// Bounded two-lane FIFO. Thread-safe.
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(int capacity);

  /// Enqueues, or reports `ResourceExhausted` when the queue is at
  /// capacity (the request is not consumed on failure).
  Status Push(QueuedRequest&& request);

  /// Pops the next request (interactive lane first, FIFO within lane).
  /// False when empty.
  bool Pop(QueuedRequest* out);

  /// Removes and returns everything still queued, interactive lane first —
  /// the fail-fast shutdown path, which fails each returned request.
  std::vector<QueuedRequest> DrainAll();

  int capacity() const { return capacity_; }
  int size() const;
  bool empty() const { return size() == 0; }

  /// Occupancy in [0, 1] — the load-shedding signal.
  double FillFraction() const;

  /// High-water mark of `size()` since construction.
  int peak_size() const;

 private:
  const int capacity_;
  mutable std::mutex mutex_;
  std::deque<QueuedRequest> lanes_[2];
  int peak_size_ = 0;
};

}  // namespace service
}  // namespace qmqo

#endif  // QMQO_SERVICE_REQUEST_QUEUE_H_
