#include "service/request_queue.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace qmqo {
namespace service {

const char* RequestPriorityName(RequestPriority priority) {
  switch (priority) {
    case RequestPriority::kInteractive:
      return "interactive";
    case RequestPriority::kBatch:
      return "batch";
  }
  return "unknown";
}

BoundedRequestQueue::BoundedRequestQueue(int capacity)
    : capacity_(std::max(1, capacity)) {}

Status BoundedRequestQueue::Push(QueuedRequest&& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  int depth = static_cast<int>(lanes_[0].size() + lanes_[1].size());
  if (depth >= capacity_) {
    return Status::ResourceExhausted(StrFormat(
        "request queue full (%d/%d)", depth, capacity_));
  }
  lanes_[static_cast<size_t>(request.priority)].push_back(std::move(request));
  peak_size_ = std::max(peak_size_, depth + 1);
  return Status::OK();
}

bool BoundedRequestQueue::Pop(QueuedRequest* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      *out = std::move(lane.front());
      lane.pop_front();
      return true;
    }
  }
  return false;
}

std::vector<QueuedRequest> BoundedRequestQueue::DrainAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueuedRequest> drained;
  for (auto& lane : lanes_) {
    for (QueuedRequest& request : lane) {
      drained.push_back(std::move(request));
    }
    lane.clear();
  }
  return drained;
}

int BoundedRequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(lanes_[0].size() + lanes_[1].size());
}

double BoundedRequestQueue::FillFraction() const {
  return static_cast<double>(size()) / static_cast<double>(capacity_);
}

int BoundedRequestQueue::peak_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_size_;
}

}  // namespace service
}  // namespace qmqo
