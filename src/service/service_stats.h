#ifndef QMQO_SERVICE_SERVICE_STATS_H_
#define QMQO_SERVICE_SERVICE_STATS_H_

/// \file service_stats.h
/// Counters of everything the solve service admits, sheds, and finishes.
///
/// Every request ends in exactly one admission counter (accepted or one of
/// the rejected_* buckets) and, if accepted, exactly one completion counter
/// (completed_ok, completed_failed, expired_in_queue, or drained_failfast)
/// — so `accepted == completed_ok + completed_failed + expired_in_queue +
/// drained_failfast` holds after a drain, and "zero leaked in-flight
/// requests" is checkable arithmetic, not a hope. All counters are updated
/// on the service's serial admission/commit path, so under a fixed chaos
/// seed they are exact and bit-identical at any worker-thread count.
///
/// Since the unified observability layer landed, the counters themselves
/// live in the service's `obs::MetricsRegistry` (one snapshot surface for
/// counters, histograms, breaker state, and cache stats); this struct is
/// the stable accessor API, synthesized by `SolveService::stats()` from
/// the registry handles. See obs/metrics.h and SolveService::metrics().

#include <cstdint>
#include <string>

namespace qmqo {
namespace service {

/// Snapshot of the service's counters (see SolveService::stats()).
struct ServiceStats {
  // ---- Admission (one per Submit call) ----
  int64_t submitted = 0;
  int64_t accepted = 0;
  /// Wire payload failed to parse or validate.
  int64_t rejected_invalid = 0;
  /// Bounded queue at capacity.
  int64_t rejected_queue_full = 0;
  /// Service no longer accepting (shut down).
  int64_t rejected_shutdown = 0;

  // ---- Completion (one per accepted request) ----
  int64_t completed_ok = 0;
  int64_t completed_failed = 0;
  /// Shed: deadline expired while queued (never scheduled).
  int64_t expired_in_queue = 0;
  /// Shed: failed unstarted by a fail-fast shutdown.
  int64_t drained_failfast = 0;

  // ---- Degradation diagnostics ----
  /// Requests whose entry rung was degraded below the ladder top by queue
  /// pressure or a brownout fault (they still complete, on cheaper rungs).
  int64_t shed_degraded = 0;
  /// Ladder rungs skipped because a circuit breaker was open/half-open.
  int64_t breaker_skips = 0;
  /// Faults observed inside solves routed by the service.
  int64_t faults_observed = 0;

  // ---- Per-backend answers (index = harness::SolveBackend) ----
  int64_t answered_by[4] = {0, 0, 0, 0};

  // ---- Scheduling ----
  int64_t rounds = 0;
  /// Modeled service-clock milliseconds accumulated over all rounds.
  double modeled_ms = 0.0;

  /// Completion counters summed — equals `accepted` once drained.
  int64_t settled() const {
    return completed_ok + completed_failed + expired_in_queue +
           drained_failfast;
  }

  /// Accepted requests not yet settled (0 after a drain).
  int64_t in_flight() const { return accepted - settled(); }

  bool operator==(const ServiceStats& other) const;

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace service
}  // namespace qmqo

#endif  // QMQO_SERVICE_SERVICE_STATS_H_
