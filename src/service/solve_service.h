#ifndef QMQO_SERVICE_SOLVE_SERVICE_H_
#define QMQO_SERVICE_SOLVE_SERVICE_H_

/// \file solve_service.h
/// MQO-as-a-service: a process-local bounded batch-solve server.
///
/// `SolveService` turns the one-shot resilient solve orchestrator into a
/// long-running service loop with the operational behaviors a shared MQO
/// endpoint needs:
///
///  * **Admission control.** Requests arrive through `Submit` /
///    `SubmitText` (the v1 wire format) into a bounded two-lane queue
///    (`BoundedRequestQueue`); when it is full, submission is rejected with
///    `ResourceExhausted` instead of buffering unboundedly. Invalid
///    payloads are rejected with `InvalidArgument`; a shut-down service
///    rejects with `Unavailable`. Every rejection is a typed `Status` and a
///    counter — overload is observable, never an abort.
///  * **Circuit breakers.** Each ladder backend owns a `CircuitBreaker`.
///    Attempt outcomes (including modeled-latency SLA violations) feed the
///    breaker on the serial commit path; open breakers cause subsequent
///    requests to *skip* that rung at admission, via
///    `SolvePolicy::backend_gate`, so a dying device stops taxing every
///    request's retry budget. The last-resort rung is never gated.
///  * **Load shedding.** Queue occupancy measured at round formation
///    degrades the ladder *entry rung* (`SolvePolicy::entry_rung`):
///    past `shed_device_fill` new work skips the device, past
///    `shed_sqa_fill` it also skips SQA, past `shed_sa_fill` everything
///    goes straight to greedy. Degraded requests still complete — graceful
///    degradation trades answer quality for throughput, never availability.
///  * **Deadlines.** Each request carries a modeled deadline; requests that
///    age past it while still queued are shed (`expired_in_queue`) without
///    ever occupying a worker, and scheduled requests inherit only their
///    *remaining* budget.
///  * **Drain / shutdown.** `Shutdown(/*graceful=*/true)` solves everything
///    queued, then stops accepting; fail-fast shutdown fails queued
///    requests with `Unavailable` (`drained_failfast`). Either way
///    `stats().in_flight() == 0` afterwards — zero leaked requests is
///    checkable arithmetic.
///
/// Determinism contract (the same discipline as the rest of the repo):
/// scheduling runs in *rounds*. Round formation, deadline expiry, shed
/// level, and breaker consultation all happen serially; the round's solves
/// fan out on a `util::Executor` into per-index outcome slots; outcomes
/// commit serially in index order (feeding breakers and counters). The
/// round width is deliberately independent of the worker-thread count, and
/// all queue-wait/latency accounting uses the service's *modeled* clock —
/// so for a fixed submission order and `QMQO_CHAOS_SEED`, per-request
/// outcomes and every counter are bit-identical at 1, 2, or 4 worker
/// threads. With no faults armed and no overload, a request's answer is
/// bit-identical to calling `ResilientSolver::Solve` directly.
///
/// Fault sites queried here (see util/fault.h): "service.queue_stall"
/// (keyed by round), "service.worker_crash" and "service.brownout" (keyed
/// by request id).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "chimera/topology.h"
#include "harness/quantum_pipeline.h"
#include "harness/resilient_solver.h"
#include "mqo/problem.h"
#include "mqo/solution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/circuit_breaker.h"
#include "service/request_queue.h"
#include "service/service_stats.h"
#include "util/status.h"
#include "workloads/workload.h"

namespace qmqo {
namespace util {
class Executor;
class FaultInjector;
}  // namespace util

namespace service {

/// Configuration of a `SolveService`.
struct ServiceOptions {
  /// Bounded queue capacity (admission control; >= 1).
  int queue_capacity = 64;
  /// Requests claimed per scheduling round. Deliberately independent of
  /// `num_threads` so round composition — and therefore every outcome and
  /// counter — is identical at any worker count. <= 0 becomes 4.
  int round_width = 4;
  /// Worker parallelism of a round's solve fan-out (affects wall time
  /// only, never results).
  int num_threads = 1;
  /// Worker pool (never owned; null = the process-wide shared pool).
  util::Executor* executor = nullptr;
  /// Per-request solve policy template. The service forks `policy.seed`
  /// per request id, installs its breaker gate and shed entry rung, and
  /// rewrites `deadline_ms` to the request's remaining budget.
  harness::SolvePolicy policy;
  /// Pipeline options template for the device rung (executor and faults
  /// are filled in by the service when unset).
  harness::QuantumMqoOptions pipeline;
  /// Hardware graph solves run against (never owned; required).
  const chimera::ChimeraGraph* graph = nullptr;
  /// Queue fill fractions at which the entry rung degrades to SQA, SA,
  /// and greedy respectively (measured at round formation).
  double shed_device_fill = 0.5;
  double shed_sqa_fill = 0.75;
  double shed_sa_fill = 0.9;
  /// Per-backend breaker configuration (one breaker per ladder backend).
  CircuitBreakerOptions breaker;
  bool breakers_enabled = true;
  /// Fault injection for the service layer and (when the templates carry
  /// none) the solves it routes (never owned; null = no faults).
  const util::FaultInjector* faults = nullptr;
  /// Modeled deadline applied to requests submitted without one;
  /// <= 0 = no default deadline.
  double default_deadline_ms = 0.0;
  /// Optional trace collector (never owned; null = no tracing). One
  /// `service.request` root span is committed per settled request, in
  /// settle order, from the serial scheduling path — solver and pipeline
  /// spans nest under it. Tags record the verdict (completed / failed /
  /// expired_in_queue / worker_crash / drained_failfast), round, entry
  /// rung, shedding, and modeled queue wait. Trace dumps with wall clocks
  /// suppressed are bit-identical at any worker-thread count.
  obs::Tracer* tracer = nullptr;
};

/// What the service settled for one accepted request.
struct SolveOutcome {
  uint64_t id = 0;
  /// OK when a backend answered; `Timeout` for queue expiry; `Unavailable`
  /// for fail-fast drain; otherwise the solve's final error.
  Status status;
  /// The answering backend (meaningful when `status.ok()`).
  harness::SolveBackend backend = harness::SolveBackend::kGreedy;
  double cost = 0.0;
  mqo::MqoSolution solution{0};
  /// Ladder rung the request entered at (0 = full ladder).
  int entry_rung = 0;
  /// True when queue pressure or a brownout fault degraded the entry rung.
  bool shed_degraded = false;
  /// Modeled milliseconds spent queued before scheduling (or expiry).
  double queue_wait_modeled_ms = 0.0;
  /// Modeled milliseconds the solve itself charged.
  double solve_modeled_ms = 0.0;
  /// Solve attempts run (0 when never scheduled).
  int attempts = 0;
  /// Ladder rungs skipped on an open/half-open breaker.
  int breaker_skips = 0;
  int64_t faults_observed = 0;
  /// Human-readable failure chain of the solve (empty when unscheduled).
  std::string detail;
  /// Workload requests only: the formulated problem (null for MQO), the
  /// decoded domain solution (clique members / cut sides / colors — always
  /// repaired to the domain by `Workload::Decode`), and its optimality gap
  /// against the generator-planted optimum. `cost` carries the raw QUBO
  /// energy of the winning assignment.
  std::shared_ptr<const workloads::Workload> workload;
  workloads::WorkloadSolution workload_solution;
  double workload_gap = 0.0;
};

/// The service. `Submit*` is thread-safe; `ProcessRound` / `DrainAll` /
/// `Shutdown` form the serial scheduling path and must be called from one
/// thread at a time.
class SolveService {
 public:
  explicit SolveService(const ServiceOptions& options);

  /// Submits a parsed problem with a caller-provided embedding. Returns
  /// the assigned request id, or the typed rejection (`InvalidArgument`,
  /// `ResourceExhausted`, `Unavailable`). `deadline_ms` < 0 uses the
  /// service default; 0 means no deadline.
  Result<uint64_t> Submit(mqo::MqoProblem problem,
                          embedding::Embedding embedding,
                          RequestPriority priority = RequestPriority::kBatch,
                          double deadline_ms = -1.0);

  /// Submits a v1 wire-format payload (`mqo::FromText`). The embedding is
  /// re-derived from the parsed problem's cluster structure
  /// (`ClusteredEmbedder`), exactly as the paper workload builds it — so a
  /// round-tripped instance solves bit-identically to its in-process
  /// original. When no embedding fits the graph the request is still
  /// accepted, entering the ladder at the first classical rung.
  Result<uint64_t> SubmitText(const std::string& text,
                              RequestPriority priority = RequestPriority::kBatch,
                              double deadline_ms = -1.0);

  /// Submits a formulated workload (max-clique / max-cut / coloring). The
  /// solve runs `ResilientSolver::SolveQubo` on the workload's QUBO —
  /// there is no embedding, so the request enters the ladder at the first
  /// classical rung, exactly like an MQO request whose embedding did not
  /// fit. The outcome carries the decoded domain solution and its
  /// optimality gap. Null workloads are `InvalidArgument`.
  Result<uint64_t> SubmitWorkload(
      std::shared_ptr<const workloads::Workload> workload,
      RequestPriority priority = RequestPriority::kBatch,
      double deadline_ms = -1.0);

  /// Runs one scheduling round: claims up to `round_width` requests, sheds
  /// expired ones, solves the rest in parallel, commits outcomes and
  /// breaker feedback serially. Returns the number of requests settled.
  int ProcessRound();

  /// Rounds until the queue is empty. Returns requests settled.
  int DrainAll();

  /// Stops accepting. `graceful` drains the queue through normal rounds
  /// first; otherwise everything queued fails fast with `Unavailable`.
  /// Returns requests settled during shutdown. Idempotent.
  int Shutdown(bool graceful = true);

  bool accepting() const { return accepting_; }

  /// Outcomes in settle order (round by round, index order within rounds).
  const std::vector<SolveOutcome>& outcomes() const { return outcomes_; }

  /// Snapshot of the service counters, synthesized from the metrics
  /// registry (the counters live there; this struct is the stable
  /// accessor API). Returned by value — bind to `const ServiceStats&` or
  /// copy.
  ServiceStats stats() const;

  /// The unified metrics registry: every ServiceStats counter plus
  /// queue-wait/solve latency histograms, breaker state, fault-site
  /// counts, and embedding-cache stats (the last three mirrored by
  /// collectors at snapshot time). Call `Collect()` / `PrometheusText()` /
  /// `JsonText()` from the serial scheduling thread — breaker state is
  /// externally synchronized.
  obs::MetricsRegistry& metrics() { return registry_; }

  /// The modeled service clock, milliseconds since construction.
  double modeled_now_ms() const { return clock_ms_; }

  const CircuitBreaker& breaker(harness::SolveBackend backend) const {
    return breakers_[static_cast<size_t>(backend)];
  }

  const BoundedRequestQueue& queue() const { return queue_; }

 private:
  Result<uint64_t> Enqueue(QueuedRequest request);
  /// Creates every registry-backed counter/gauge/histogram handle and
  /// registers the breaker/fault/cache collectors. Constructor-only.
  void RegisterMetrics();

  ServiceOptions options_;
  BoundedRequestQueue queue_;
  /// One breaker per harness::SolveBackend value, indexed by the enum.
  CircuitBreaker breakers_[4];
  /// The single snapshot surface for every service counter. Handles below
  /// are stable pointers into it, created once at construction; all
  /// updates happen on the serial admission/commit paths.
  obs::MetricsRegistry registry_;
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_accepted_ = nullptr;
  obs::Counter* m_rejected_invalid_ = nullptr;
  obs::Counter* m_rejected_queue_full_ = nullptr;
  obs::Counter* m_rejected_shutdown_ = nullptr;
  obs::Counter* m_completed_ok_ = nullptr;
  obs::Counter* m_completed_failed_ = nullptr;
  obs::Counter* m_expired_in_queue_ = nullptr;
  obs::Counter* m_drained_failfast_ = nullptr;
  obs::Counter* m_shed_degraded_ = nullptr;
  obs::Counter* m_breaker_skips_ = nullptr;
  obs::Counter* m_faults_observed_ = nullptr;
  obs::Counter* m_answered_by_[4] = {nullptr, nullptr, nullptr, nullptr};
  /// Accepted workload requests by kind (max_clique / max_cut / coloring).
  obs::Counter* m_workload_accepted_[3] = {nullptr, nullptr, nullptr};
  obs::Counter* m_rounds_ = nullptr;
  obs::Gauge* m_modeled_clock_ = nullptr;
  obs::Histogram* m_queue_wait_hist_ = nullptr;
  obs::Histogram* m_solve_hist_ = nullptr;
  std::vector<SolveOutcome> outcomes_;
  double clock_ms_ = 0.0;
  uint64_t next_id_ = 1;
  int64_t round_index_ = 0;
  bool accepting_ = true;
  /// Guards admission bookkeeping (stats, clock reads, id assignment)
  /// against concurrent submitters.
  mutable std::mutex mutex_;
};

}  // namespace service
}  // namespace qmqo

#endif  // QMQO_SERVICE_SOLVE_SERVICE_H_
