#ifndef QMQO_SERVICE_CIRCUIT_BREAKER_H_
#define QMQO_SERVICE_CIRCUIT_BREAKER_H_

/// \file circuit_breaker.h
/// Per-backend circuit breakers for the solve service.
///
/// The resilient solver's degradation ladder retries a dying backend on
/// every request, burning each request's retry budget (and deadline) on
/// attempts that are overwhelmingly likely to fail. A `CircuitBreaker`
/// moves that knowledge *across* requests: outcomes of every routed attempt
/// feed a rolling window, and once the windowed failure rate crosses a
/// threshold the breaker *opens* — subsequent requests skip the backend at
/// admission time. After a cooldown the breaker turns *half-open* and lets
/// a bounded number of probe requests through; a successful probe closes
/// the breaker, a failed one re-opens it.
///
/// Determinism contract: the breaker has no clock of its own. Every
/// transition is driven by the caller-supplied *modeled* timestamp `now_ms`
/// (the service's scheduling clock) and by the order of `Admit`/`Record`
/// calls — the service issues both on its serial admission/commit path, so
/// breaker behavior is a pure function of the request stream and the fault
/// seed, bit-reproducible at any worker-thread count. The breaker is NOT
/// internally synchronized; callers serialize access (the service holds its
/// own mutex).
///
/// Latency counts as failure: an OK outcome slower (in modeled time) than
/// `latency_threshold_ms` is recorded as a failure, so a browned-out
/// backend that answers at 100x its SLA opens the breaker just like a
/// crashing one.

#include <cstdint>
#include <deque>
#include <string>

#include "util/status.h"

namespace qmqo {
namespace service {

/// When a breaker opens, how long it stays open, and how it re-closes.
struct CircuitBreakerOptions {
  /// Rolling outcome window driving the failure rate.
  int window = 16;
  /// Outcomes required in the window before the rate can open the breaker
  /// (prevents one early failure from opening a cold breaker).
  int min_samples = 4;
  /// Windowed failure rate at (or above) which the breaker opens.
  double failure_rate_to_open = 0.5;
  /// OK outcomes with modeled latency above this count as failures;
  /// <= 0 disables latency classification.
  double latency_threshold_ms = 0.0;
  /// Modeled milliseconds an open breaker waits before going half-open.
  double open_cooldown_ms = 1000.0;
  /// Probe admissions allowed per half-open episode. If probes are admitted
  /// but never produce an outcome (an earlier ladder rung answered), the
  /// probe budget re-arms after another cooldown.
  int half_open_probes = 1;
  /// Consecutive probe successes required to close from half-open.
  int successes_to_close = 1;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Stable lower-case name ("closed", "open", "half-open").
const char* BreakerStateName(BreakerState state);

/// Rolling-window circuit breaker. Externally synchronized; all timestamps
/// are modeled milliseconds on the caller's clock (monotone non-decreasing).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const CircuitBreakerOptions& options =
                              CircuitBreakerOptions());

  /// Admission-time consultation at modeled time `now_ms`. OK = the backend
  /// may be tried; `Unavailable` = skip it. Half-open probes are counted
  /// here, so at most `half_open_probes` requests per episode reach the
  /// backend.
  Status Admit(double now_ms);

  /// Feeds one routed attempt's outcome: `ok` is the attempt status,
  /// `modeled_latency_ms` its modeled cost (compared against the latency
  /// threshold), `now_ms` the commit-time modeled timestamp.
  void Record(bool ok, double modeled_latency_ms, double now_ms);

  BreakerState state() const { return state_; }

  /// Failure rate over the current window (0 when empty).
  double WindowFailureRate() const;

  /// Lifetime counters.
  int64_t admitted() const { return admitted_; }
  int64_t rejected() const { return rejected_; }
  int64_t times_opened() const { return times_opened_; }
  int64_t times_closed() const { return times_closed_; }

  /// One-line diagnostic, e.g. "open (failure rate 0.81, opened 2x)".
  std::string Summary() const;

 private:
  void Open(double now_ms);
  void Close();

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  /// Rolling outcomes, 1 = failure.
  std::deque<uint8_t> window_;
  int window_failures_ = 0;
  double opened_at_ms_ = 0.0;
  /// Half-open probe accounting (per episode; re-arms after a cooldown).
  int probes_admitted_ = 0;
  int probe_successes_ = 0;
  double last_probe_admit_ms_ = 0.0;

  int64_t admitted_ = 0;
  int64_t rejected_ = 0;
  int64_t times_opened_ = 0;
  int64_t times_closed_ = 0;
};

}  // namespace service
}  // namespace qmqo

#endif  // QMQO_SERVICE_CIRCUIT_BREAKER_H_
