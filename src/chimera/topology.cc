#include "chimera/topology.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace qmqo {
namespace chimera {

ChimeraGraph::ChimeraGraph(int rows, int cols, int shore)
    : rows_(rows), cols_(cols), shore_(shore) {
  assert(rows > 0 && cols > 0 && shore > 0);
  broken_.assign(static_cast<size_t>(num_qubits()), 0);
  BuildAdjacency();
}

ChimeraGraph ChimeraGraph::DWave2X() { return ChimeraGraph(12, 12, 4); }

ChimeraGraph ChimeraGraph::DWave2XWithDefects(Rng* rng, int num_broken) {
  ChimeraGraph graph = DWave2X();
  graph.BreakRandom(num_broken, rng);
  return graph;
}

QubitId ChimeraGraph::IdOf(int row, int col, int side, int index) const {
  assert(row >= 0 && row < rows_);
  assert(col >= 0 && col < cols_);
  assert(side == 0 || side == 1);
  assert(index >= 0 && index < shore_);
  return ((row * cols_ + col) * 2 + side) * shore_ + index;
}

QubitId ChimeraGraph::IdOf(const QubitCoord& coord) const {
  return IdOf(coord.row, coord.col, coord.side, coord.index);
}

QubitCoord ChimeraGraph::CoordOf(QubitId q) const {
  assert(q >= 0 && q < num_qubits());
  QubitCoord coord;
  coord.index = q % shore_;
  q /= shore_;
  coord.side = q % 2;
  q /= 2;
  coord.col = q % cols_;
  coord.row = q / cols_;
  return coord;
}

void ChimeraGraph::SetBroken(QubitId q, bool broken) {
  assert(q >= 0 && q < num_qubits());
  uint8_t flag = broken ? 1 : 0;
  if (broken_[static_cast<size_t>(q)] == flag) return;
  broken_[static_cast<size_t>(q)] = flag;
  num_broken_ += broken ? 1 : -1;
}

void ChimeraGraph::BreakRandom(int count, Rng* rng) {
  std::vector<QubitId> working;
  working.reserve(static_cast<size_t>(num_working_qubits()));
  for (QubitId q = 0; q < num_qubits(); ++q) {
    if (IsWorking(q)) working.push_back(q);
  }
  count = std::min<int>(count, static_cast<int>(working.size()));
  std::vector<int> picks =
      rng->SampleWithoutReplacement(static_cast<int>(working.size()), count);
  for (int pick : picks) {
    SetBroken(working[static_cast<size_t>(pick)], true);
  }
}

void ChimeraGraph::BuildAdjacency() {
  const size_t n = static_cast<size_t>(num_qubits());
  std::vector<std::vector<QubitId>> rows(n);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      // Intra-cell K_{shore,shore}.
      for (int i = 0; i < shore_; ++i) {
        QubitId left = IdOf(r, c, 0, i);
        for (int j = 0; j < shore_; ++j) {
          QubitId right = IdOf(r, c, 1, j);
          rows[static_cast<size_t>(left)].push_back(right);
          rows[static_cast<size_t>(right)].push_back(left);
        }
      }
      // Vertical couplers between left shores of vertically adjacent cells.
      if (r + 1 < rows_) {
        for (int i = 0; i < shore_; ++i) {
          QubitId upper = IdOf(r, c, 0, i);
          QubitId lower = IdOf(r + 1, c, 0, i);
          rows[static_cast<size_t>(upper)].push_back(lower);
          rows[static_cast<size_t>(lower)].push_back(upper);
        }
      }
      // Horizontal couplers between right shores of horizontally adjacent
      // cells.
      if (c + 1 < cols_) {
        for (int i = 0; i < shore_; ++i) {
          QubitId left_cell = IdOf(r, c, 1, i);
          QubitId right_cell = IdOf(r, c + 1, 1, i);
          rows[static_cast<size_t>(left_cell)].push_back(right_cell);
          rows[static_cast<size_t>(right_cell)].push_back(left_cell);
        }
      }
    }
  }
  adjacency_offsets_.assign(n + 1, 0);
  size_t total = 0;
  for (size_t q = 0; q < n; ++q) {
    total += rows[q].size();
    adjacency_offsets_[q + 1] = static_cast<int32_t>(total);
  }
  adjacency_ids_.clear();
  adjacency_ids_.reserve(total);
  for (auto& neighbors : rows) {
    std::sort(neighbors.begin(), neighbors.end());
    adjacency_ids_.insert(adjacency_ids_.end(), neighbors.begin(),
                          neighbors.end());
  }
}

int ChimeraGraph::num_couplers() const {
  int intra = rows_ * cols_ * shore_ * shore_;
  int vertical = (rows_ - 1) * cols_ * shore_;
  int horizontal = rows_ * (cols_ - 1) * shore_;
  return intra + vertical + horizontal;
}

bool ChimeraGraph::HasCoupler(QubitId a, QubitId b) const {
  if (a == b) return false;
  const QubitSpan neighbors = Neighbors(a);
  return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

std::vector<QubitId> ChimeraGraph::WorkingNeighbors(QubitId q) const {
  std::vector<QubitId> out;
  for (QubitId n : Neighbors(q)) {
    if (IsWorking(n)) out.push_back(n);
  }
  return out;
}

std::string ChimeraGraph::Summary() const {
  return StrFormat("Chimera(%dx%dx%d, %d qubits, %d broken)", rows_, cols_,
                   shore_, num_qubits(), num_broken_);
}

}  // namespace chimera
}  // namespace qmqo
