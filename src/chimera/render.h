#ifndef QMQO_CHIMERA_RENDER_H_
#define QMQO_CHIMERA_RENDER_H_

/// \file render.h
/// ASCII rendering of Chimera graphs and qubit labelings, in the spirit of
/// the paper's Figures 1-3 (unit cells, broken qubits, chain ids).

#include <string>
#include <vector>

#include "chimera/topology.h"

namespace qmqo {
namespace chimera {

/// Renders the cell grid. Each cell is drawn as two columns of `shore`
/// qubit glyphs: '.' working and unlabeled, '#' broken, or a label
/// character. `labels` (optional, may be empty) assigns an integer label to
/// each qubit; labels are shown modulo 62 as 0-9a-zA-Z; -1 means unlabeled.
std::string Render(const ChimeraGraph& graph, const std::vector<int>& labels);

/// Renders only working/broken structure.
std::string Render(const ChimeraGraph& graph);

}  // namespace chimera
}  // namespace qmqo

#endif  // QMQO_CHIMERA_RENDER_H_
