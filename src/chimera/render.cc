#include "chimera/render.h"

namespace qmqo {
namespace chimera {
namespace {

char LabelGlyph(int label) {
  if (label < 0) return '.';
  label %= 62;
  if (label < 10) return static_cast<char>('0' + label);
  if (label < 36) return static_cast<char>('a' + label - 10);
  return static_cast<char>('A' + label - 36);
}

}  // namespace

std::string Render(const ChimeraGraph& graph, const std::vector<int>& labels) {
  std::string out;
  // Each cell: "[lr]" columns; cells separated by spaces, cell rows by a
  // blank line. Left column qubit k on text row k of the block.
  for (int r = 0; r < graph.rows(); ++r) {
    for (int k = 0; k < graph.shore(); ++k) {
      for (int c = 0; c < graph.cols(); ++c) {
        QubitId left = graph.IdOf(r, c, 0, k);
        QubitId right = graph.IdOf(r, c, 1, k);
        auto glyph = [&](QubitId q) {
          if (graph.IsBroken(q)) return '#';
          if (!labels.empty()) return LabelGlyph(labels[static_cast<size_t>(q)]);
          return '.';
        };
        out += '[';
        out += glyph(left);
        out += glyph(right);
        out += ']';
        if (c + 1 < graph.cols()) out += ' ';
      }
      out += '\n';
    }
    if (r + 1 < graph.rows()) out += '\n';
  }
  return out;
}

std::string Render(const ChimeraGraph& graph) {
  return Render(graph, std::vector<int>());
}

}  // namespace chimera
}  // namespace qmqo
