#ifndef QMQO_CHIMERA_TOPOLOGY_H_
#define QMQO_CHIMERA_TOPOLOGY_H_

/// \file topology.h
/// The Chimera qubit-interconnect topology of the D-Wave 2X (Section 2).
///
/// Qubits are grouped into a grid of unit cells; each cell holds `2*shore`
/// qubits split into a left shore (side 0) and a right shore (side 1).
/// Couplers:
///   * intra-cell: every left qubit to every right qubit (K_{shore,shore});
///   * vertical:   left qubit k of cell (r,c) to left qubit k of (r±1,c);
///   * horizontal: right qubit k of cell (r,c) to right qubit k of (r,c±1).
/// For shore 4 every qubit therefore touches at most six others — the
/// sparsity that forces multi-qubit chains in the physical mapping.
///
/// Manufacturing defects are modeled as broken qubits: a broken qubit and
/// all its couplers are unusable. The D-Wave 2X profile (12x12 cells, 1152
/// qubits) defaults to 55 broken qubits, leaving the paper's 1097.

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace qmqo {
namespace chimera {

/// Physical qubit index, in [0, num_qubits).
using QubitId = int;

/// Structured address of a qubit.
struct QubitCoord {
  int row = 0;    ///< Cell row.
  int col = 0;    ///< Cell column.
  int side = 0;   ///< 0 = left shore (vertical couplers), 1 = right shore.
  int index = 0;  ///< Position within the shore, in [0, shore).
};

/// A contiguous, ascending-sorted view of one qubit's neighbor ids — one
/// row of the graph's CSR adjacency. Supports the same access patterns as
/// the `std::vector<QubitId>` rows it replaced (range-for, size(),
/// operator[]).
class QubitSpan {
 public:
  QubitSpan(const QubitId* begin, const QubitId* end)
      : begin_(begin), end_(end) {}

  const QubitId* begin() const { return begin_; }
  const QubitId* end() const { return end_; }
  size_t size() const { return static_cast<size_t>(end_ - begin_); }
  bool empty() const { return begin_ == end_; }
  QubitId operator[](size_t k) const { return begin_[k]; }

 private:
  const QubitId* begin_;
  const QubitId* end_;
};

/// An immutable-topology, mutable-defect-set Chimera graph.
class ChimeraGraph {
 public:
  /// Builds an intact rows x cols grid of cells with the given shore size.
  ChimeraGraph(int rows, int cols, int shore = 4);

  /// The D-Wave 2X: 12x12 cells, shore 4, all 1152 qubits intact.
  static ChimeraGraph DWave2X();

  /// The D-Wave 2X with `num_broken` random defects (default 55, giving the
  /// paper's 1097 working qubits). Deterministic in the rng seed.
  static ChimeraGraph DWave2XWithDefects(Rng* rng, int num_broken = 55);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int shore() const { return shore_; }
  int num_cells() const { return rows_ * cols_; }
  int num_qubits() const { return rows_ * cols_ * 2 * shore_; }
  int num_working_qubits() const { return num_qubits() - num_broken_; }
  int num_broken_qubits() const { return num_broken_; }

  /// Structural coupler count (ignoring defects).
  int num_couplers() const;

  QubitId IdOf(const QubitCoord& coord) const;
  QubitId IdOf(int row, int col, int side, int index) const;
  QubitCoord CoordOf(QubitId q) const;

  bool IsBroken(QubitId q) const { return broken_[static_cast<size_t>(q)]; }
  bool IsWorking(QubitId q) const { return !IsBroken(q); }

  /// Marks a qubit broken/working; idempotent.
  void SetBroken(QubitId q, bool broken);

  /// Breaks `count` distinct random working qubits.
  void BreakRandom(int count, Rng* rng);

  /// True when the topology has a coupler between `a` and `b` (defects
  /// ignored).
  bool HasCoupler(QubitId a, QubitId b) const;

  /// True when a coupler exists and both endpoints are working.
  bool CouplerUsable(QubitId a, QubitId b) const {
    return HasCoupler(a, b) && IsWorking(a) && IsWorking(b);
  }

  /// Structural neighbors of `q` in ascending id order (defects ignored);
  /// at most shore + 2. The view stays valid for the graph's lifetime.
  QubitSpan Neighbors(QubitId q) const {
    const size_t row = static_cast<size_t>(q);
    return QubitSpan(adjacency_ids_.data() + adjacency_offsets_[row],
                     adjacency_ids_.data() + adjacency_offsets_[row + 1]);
  }

  /// Working neighbors of a working qubit.
  std::vector<QubitId> WorkingNeighbors(QubitId q) const;

  /// One-line summary, e.g. "Chimera(12x12x4, 1152 qubits, 55 broken)".
  std::string Summary() const;

 private:
  void BuildAdjacency();

  int rows_;
  int cols_;
  int shore_;
  int num_broken_ = 0;
  std::vector<uint8_t> broken_;
  // CSR adjacency: neighbors of qubit q live in
  // adjacency_ids_[adjacency_offsets_[q] .. adjacency_offsets_[q+1])
  // sorted ascending. The topology is immutable after construction
  // (defects are tracked separately in broken_), so the arrays are built
  // once and never reallocated.
  std::vector<int32_t> adjacency_offsets_;
  std::vector<QubitId> adjacency_ids_;
};

}  // namespace chimera
}  // namespace qmqo

#endif  // QMQO_CHIMERA_TOPOLOGY_H_
