#ifndef QMQO_SOLVER_QUBO_BNB_H_
#define QMQO_SOLVER_QUBO_BNB_H_

/// \file qubo_bnb.h
/// Exact, anytime branch-and-bound directly on a QUBO — the stand-in for
/// the paper's "LIN-QUB" configuration (ILP solver applied to the QUBO
/// reformulation of the MQO instance).
///
/// Depth-first over variables in index order with a classical roof-style
/// bound: for the assigned prefix the energy is exact; every unassigned
/// variable contributes min(0, l_i + sum of negative couplings to other
/// unassigned variables), where l_i is its linear weight plus couplings to
/// assigned ones. The bound is weaker relative to the search-space blowup
/// than the native MQO bound — deliberately so, since the paper's central
/// observation for classical solvers is that the QUBO reformulation
/// (invalid states representable, penalty-weight ranges) makes exact
/// optimization *harder* than the native model.

#include <cstdint>
#include <functional>
#include <vector>

#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace solver {

/// Options for `QuboBranchAndBound`.
struct QuboBnbOptions {
  double time_limit_ms = 1e12;
  int64_t max_nodes = INT64_MAX;
};

/// Invoked on every improved incumbent: (elapsed ms, energy, assignment).
using QuboProgressCallback =
    std::function<void(double, double, const std::vector<uint8_t>&)>;

/// Result of a QUBO branch-and-bound run.
struct QuboBnbResult {
  std::vector<uint8_t> assignment;
  double energy = 0.0;
  bool proven_optimal = false;
  int64_t nodes = 0;
  double time_to_best_ms = 0.0;
  double total_time_ms = 0.0;
};

/// Exact anytime QUBO solver.
class QuboBranchAndBound {
 public:
  explicit QuboBranchAndBound(const QuboBnbOptions& options = QuboBnbOptions())
      : options_(options) {}

  Result<QuboBnbResult> Solve(
      const qubo::QuboProblem& problem,
      const QuboProgressCallback& on_incumbent = nullptr) const;

 private:
  QuboBnbOptions options_;
};

}  // namespace solver
}  // namespace qmqo

#endif  // QMQO_SOLVER_QUBO_BNB_H_
