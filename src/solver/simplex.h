#ifndef QMQO_SOLVER_SIMPLEX_H_
#define QMQO_SOLVER_SIMPLEX_H_

/// \file simplex.h
/// A dense two-phase primal simplex solver.
///
/// Standardization: variables are shifted to lower bound 0; finite upper
/// bounds become explicit <= rows; rows are scaled to non-negative RHS;
/// slack variables close <= rows, surplus+artificial pairs close >= rows,
/// artificials close = rows. Phase 1 minimizes the artificial sum (> 0 at
/// optimum means infeasible); phase 2 minimizes the original objective with
/// artificial columns barred. Dantzig pricing with an automatic switch to
/// Bland's rule after a degeneracy streak guards against cycling.
///
/// The solver targets the moderate-sized LP relaxations produced by
/// `linearize.h`; it trades sparse-revised sophistication for transparent,
/// testable correctness.

#include "solver/lp.h"

namespace qmqo {
namespace solver {

/// Options for `SimplexSolver`.
struct SimplexOptions {
  int max_iterations = 200000;
  /// Feasibility/optimality tolerance.
  double tolerance = 1e-8;
  /// Consecutive non-improving pivots before switching to Bland's rule.
  int degeneracy_threshold = 64;
};

/// Two-phase primal simplex.
class SimplexSolver {
 public:
  explicit SimplexSolver(const SimplexOptions& options = SimplexOptions())
      : options_(options) {}

  /// Solves the LP relaxation of `model` (integrality flags ignored).
  LpSolution Solve(const LpModel& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace solver
}  // namespace qmqo

#endif  // QMQO_SOLVER_SIMPLEX_H_
