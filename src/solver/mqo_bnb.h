#ifndef QMQO_SOLVER_MQO_BNB_H_
#define QMQO_SOLVER_MQO_BNB_H_

/// \file mqo_bnb.h
/// Exact, anytime branch-and-bound on the *native* MQO model — this
/// repository's stand-in for the paper's "LIN-MQO" (commercial ILP solver
/// applied directly to the MQO instance).
///
/// Search: depth-first over queries in natural (for the paper workload:
/// geometric) order; each level commits one plan of the next query.
/// Bounding: the partial cost (chosen costs minus realized savings) plus,
/// for every undecided query, the cheapest plan under an optimistic saving
/// estimate — savings to already-chosen plans are counted exactly; each
/// undecided-undecided pair is credited once, to its later-ranked endpoint,
/// at the best value over the partner's plans.
///
/// Independent components of the sharing graph are solved separately
/// (optimal per component implies optimal overall), which mirrors the
/// decomposition any competent ILP presolve performs.

#include <functional>

#include "mqo/problem.h"
#include "mqo/solution.h"
#include "util/status.h"

namespace qmqo {
namespace solver {

/// Options for `MqoBranchAndBound`.
struct MqoBnbOptions {
  /// Wall-clock budget; the search returns the incumbent when exceeded.
  double time_limit_ms = 1e12;
  int64_t max_nodes = INT64_MAX;
  /// Solve connected components of the sharing graph independently.
  bool decompose_components = true;
};

/// Invoked on every improved incumbent: (elapsed ms, cost, solution).
using MqoProgressCallback =
    std::function<void(double, double, const mqo::MqoSolution&)>;

/// Result of a branch-and-bound run.
struct MqoBnbResult {
  mqo::MqoSolution solution{0};
  double cost = 0.0;
  bool proven_optimal = false;
  int64_t nodes = 0;
  /// When the final incumbent was found (ms since start).
  double time_to_best_ms = 0.0;
  /// Total time including the proof of optimality (ms).
  double total_time_ms = 0.0;
};

/// Exact anytime MQO solver.
class MqoBranchAndBound {
 public:
  explicit MqoBranchAndBound(const MqoBnbOptions& options = MqoBnbOptions())
      : options_(options) {}

  Result<MqoBnbResult> Solve(
      const mqo::MqoProblem& problem,
      const MqoProgressCallback& on_incumbent = nullptr) const;

 private:
  MqoBnbOptions options_;
};

}  // namespace solver
}  // namespace qmqo

#endif  // QMQO_SOLVER_MQO_BNB_H_
