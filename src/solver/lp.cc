#include "solver/lp.h"

#include <cmath>

#include "util/string_util.h"

namespace qmqo {
namespace solver {

int LpModel::AddVariable(double lower, double upper, double objective) {
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  is_integer_.push_back(false);
  return num_vars() - 1;
}

void LpModel::AddConstraint(Constraint constraint) {
  constraints_.push_back(std::move(constraint));
}

std::vector<int> LpModel::IntegerVars() const {
  std::vector<int> out;
  for (int v = 0; v < num_vars(); ++v) {
    if (is_integer_[static_cast<size_t>(v)]) out.push_back(v);
  }
  return out;
}

Status LpModel::Validate() const {
  for (int v = 0; v < num_vars(); ++v) {
    if (std::isnan(lower(v)) || std::isnan(upper(v))) {
      return Status::InvalidArgument(StrFormat("variable %d has NaN bound", v));
    }
    if (lower(v) > upper(v)) {
      return Status::InvalidArgument(
          StrFormat("variable %d has empty domain [%g, %g]", v, lower(v),
                    upper(v)));
    }
  }
  for (size_t c = 0; c < constraints_.size(); ++c) {
    for (const LinearTerm& term : constraints_[c].terms) {
      if (term.var < 0 || term.var >= num_vars()) {
        return Status::OutOfRange(
            StrFormat("constraint %zu references variable %d", c, term.var));
      }
    }
  }
  return Status::OK();
}

const char* LpStatusToString(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
    case LpStatus::kNumericalError:
      return "numerical-error";
  }
  return "unknown";
}

}  // namespace solver
}  // namespace qmqo
