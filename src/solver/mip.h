#ifndef QMQO_SOLVER_MIP_H_
#define QMQO_SOLVER_MIP_H_

/// \file mip.h
/// A small branch-and-bound mixed-integer solver on top of the simplex
/// LP solver: LP-relaxation bounds, most-fractional branching, depth-first
/// search with incumbent pruning. Anytime: reports every improved
/// incumbent through a callback with its wall-clock timestamp.

#include <functional>
#include <vector>

#include "solver/lp.h"
#include "solver/simplex.h"

namespace qmqo {
namespace solver {

/// Options for `MipSolver`.
struct MipOptions {
  /// Wall-clock budget; the solver returns its incumbent when exceeded.
  double time_limit_ms = 1e12;
  /// Node budget.
  int64_t max_nodes = INT64_MAX;
  /// Integrality tolerance.
  double integrality_tolerance = 1e-6;
  SimplexOptions simplex;
};

/// Invoked whenever the incumbent improves: (elapsed ms, objective, values).
using MipProgressCallback =
    std::function<void(double, double, const std::vector<double>&)>;

/// Outcome of a MIP solve.
struct MipResult {
  /// True when some integral solution was found.
  bool feasible = false;
  /// True when optimality was proven within the budget.
  bool proven_optimal = false;
  double objective = 0.0;
  std::vector<double> values;
  int64_t nodes = 0;
  /// Time at which the final incumbent was found / proven, ms.
  double time_to_best_ms = 0.0;
  double total_time_ms = 0.0;
};

/// Branch-and-bound solver for models with integer-flagged variables.
class MipSolver {
 public:
  explicit MipSolver(const MipOptions& options = MipOptions())
      : options_(options) {}

  /// Solves `model` (bounds are restored on return; the model is mutated
  /// only transiently during the search).
  MipResult Solve(LpModel* model,
                  const MipProgressCallback& on_incumbent = nullptr) const;

 private:
  MipOptions options_;
};

}  // namespace solver
}  // namespace qmqo

#endif  // QMQO_SOLVER_MIP_H_
