#include "solver/mip.h"

#include <cmath>
#include <limits>

#include "util/stopwatch.h"

namespace qmqo {
namespace solver {
namespace {

struct SearchState {
  const MipOptions* options = nullptr;
  LpModel* model = nullptr;
  SimplexSolver lp{SimplexOptions()};
  std::vector<int> integer_vars;
  Stopwatch clock;
  MipResult result;
  const MipProgressCallback* callback = nullptr;
  bool aborted = false;
};

/// Returns the integer variable with the most fractional LP value, or -1
/// when the relaxation is integral.
int PickBranchVar(const SearchState& state, const std::vector<double>& values,
                  double tol) {
  int best = -1;
  double best_score = tol;
  for (int v : state.integer_vars) {
    double value = values[static_cast<size_t>(v)];
    double frac = value - std::floor(value);
    double score = std::min(frac, 1.0 - frac);
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

void Search(SearchState* state) {
  if (state->aborted) return;
  if (state->clock.ElapsedMillis() > state->options->time_limit_ms ||
      state->result.nodes >= state->options->max_nodes) {
    state->aborted = true;
    return;
  }
  ++state->result.nodes;

  LpSolution relaxation = state->lp.Solve(*state->model);
  if (relaxation.status == LpStatus::kInfeasible) return;
  if (relaxation.status != LpStatus::kOptimal) {
    // Unbounded relaxations cannot occur for bounded MQO/QUBO models;
    // iteration limits are treated as a node failure (prune).
    return;
  }
  // Bound pruning.
  if (state->result.feasible &&
      relaxation.objective >=
          state->result.objective - state->options->integrality_tolerance) {
    return;
  }
  int branch_var = PickBranchVar(*state, relaxation.values,
                                 state->options->integrality_tolerance);
  if (branch_var < 0) {
    // Integral: new incumbent (bound pruning above ensures improvement).
    state->result.feasible = true;
    state->result.objective = relaxation.objective;
    state->result.values = relaxation.values;
    state->result.time_to_best_ms = state->clock.ElapsedMillis();
    if (state->callback && *state->callback) {
      (*state->callback)(state->result.time_to_best_ms, relaxation.objective,
                         relaxation.values);
    }
    return;
  }

  double value = relaxation.values[static_cast<size_t>(branch_var)];
  double old_lower = state->model->lower(branch_var);
  double old_upper = state->model->upper(branch_var);

  // Down branch: x <= floor(value).
  state->model->SetUpper(branch_var, std::floor(value));
  Search(state);
  state->model->SetUpper(branch_var, old_upper);

  // Up branch: x >= ceil(value).
  state->model->SetLower(branch_var, std::ceil(value));
  Search(state);
  state->model->SetLower(branch_var, old_lower);
}

}  // namespace

MipResult MipSolver::Solve(LpModel* model,
                           const MipProgressCallback& on_incumbent) const {
  SearchState state;
  state.options = &options_;
  state.model = model;
  state.lp = SimplexSolver(options_.simplex);
  state.integer_vars = model->IntegerVars();
  state.callback = &on_incumbent;

  Search(&state);

  state.result.proven_optimal = state.result.feasible && !state.aborted;
  state.result.total_time_ms = state.clock.ElapsedMillis();
  return state.result;
}

}  // namespace solver
}  // namespace qmqo
