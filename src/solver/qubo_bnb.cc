#include "solver/qubo_bnb.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stopwatch.h"

namespace qmqo {
namespace solver {
namespace {

class QuboSearch {
 public:
  QuboSearch(const qubo::QuboProblem& problem, const QuboBnbOptions& options,
             const QuboProgressCallback& on_incumbent)
      : problem_(problem), options_(options), on_incumbent_(on_incumbent) {
    const int n = problem.num_vars();
    assignment_.assign(static_cast<size_t>(n), 0);
    assigned_.assign(static_cast<size_t>(n), 0);
    // l_i starts at the linear weight and absorbs couplings to assigned
    // ones as the search descends.
    field_.assign(static_cast<size_t>(n), 0.0);
    for (qubo::VarId i = 0; i < n; ++i) {
      field_[static_cast<size_t>(i)] = problem.linear(i);
    }
    // neg_future_[i]: sum of negative couplings from i to unassigned j.
    neg_future_.assign(static_cast<size_t>(n), 0.0);
    for (qubo::VarId i = 0; i < n; ++i) {
      for (const auto& [j, w] : problem.neighbors(i)) {
        (void)j;
        if (w < 0.0) neg_future_[static_cast<size_t>(i)] += w;
      }
    }
  }

  QuboBnbResult Run() {
    // Greedy warm start: descend variables, take the locally better value.
    std::vector<uint8_t> greedy(assignment_.size(), 0);
    double greedy_energy = 0.0;
    for (qubo::VarId i = 0; i < problem_.num_vars(); ++i) {
      double delta = problem_.FlipDelta(greedy, i);
      if (delta < 0.0) {
        greedy[static_cast<size_t>(i)] = 1;
        greedy_energy += delta;
      }
    }
    best_energy_ = greedy_energy;
    result_.assignment = greedy;
    result_.time_to_best_ms = clock_.ElapsedMillis();
    if (on_incumbent_) {
      on_incumbent_(result_.time_to_best_ms, best_energy_, greedy);
    }

    Descend(0, 0.0);

    result_.energy = best_energy_;
    result_.proven_optimal = !aborted_;
    result_.total_time_ms = clock_.ElapsedMillis();
    return result_;
  }

 private:
  /// Admissible lower bound: current energy plus, per unassigned variable,
  /// the best-case contribution of setting it (or 0 for leaving it unset).
  /// Negative couplings between two unassigned variables are credited to
  /// both endpoints; that only lowers the bound, keeping it admissible.
  double Bound(int depth, double energy) const {
    double bound = energy;
    for (qubo::VarId i = depth; i < problem_.num_vars(); ++i) {
      double best = field_[static_cast<size_t>(i)] +
                    neg_future_[static_cast<size_t>(i)];
      if (best < 0.0) bound += best;
    }
    return bound;
  }

  void Descend(int depth, double energy) {
    if (aborted_) return;
    if ((result_.nodes & 0x7ff) == 0 &&
        clock_.ElapsedMillis() > options_.time_limit_ms) {
      aborted_ = true;
      return;
    }
    if (result_.nodes >= options_.max_nodes) {
      aborted_ = true;
      return;
    }
    ++result_.nodes;
    if (depth == problem_.num_vars()) {
      if (energy < best_energy_ - 1e-12) {
        best_energy_ = energy;
        result_.assignment = assignment_;
        result_.time_to_best_ms = clock_.ElapsedMillis();
        if (on_incumbent_) {
          on_incumbent_(result_.time_to_best_ms, energy, assignment_);
        }
      }
      return;
    }
    if (Bound(depth, energy) >= best_energy_ - 1e-12) return;

    qubo::VarId i = depth;
    // Remove i's negative couplings from its unassigned neighbors' future
    // credit (i is now being decided).
    for (const auto& [j, w] : problem_.neighbors(i)) {
      if (!assigned_[static_cast<size_t>(j)] && w < 0.0) {
        neg_future_[static_cast<size_t>(j)] -= w;
      }
    }
    assigned_[static_cast<size_t>(i)] = 1;

    // Try the locally cheaper value first.
    double set_cost = field_[static_cast<size_t>(i)];
    for (int round = 0; round < 2; ++round) {
      bool set_one = (round == 0) == (set_cost < 0.0);
      assignment_[static_cast<size_t>(i)] = set_one ? 1 : 0;
      if (set_one) {
        for (const auto& [j, w] : problem_.neighbors(i)) {
          if (!assigned_[static_cast<size_t>(j)]) {
            field_[static_cast<size_t>(j)] += w;
          }
        }
        Descend(depth + 1, energy + set_cost);
        for (const auto& [j, w] : problem_.neighbors(i)) {
          if (!assigned_[static_cast<size_t>(j)]) {
            field_[static_cast<size_t>(j)] -= w;
          }
        }
      } else {
        Descend(depth + 1, energy);
      }
      if (aborted_) break;
    }

    assigned_[static_cast<size_t>(i)] = 0;
    assignment_[static_cast<size_t>(i)] = 0;
    for (const auto& [j, w] : problem_.neighbors(i)) {
      if (!assigned_[static_cast<size_t>(j)] && w < 0.0) {
        neg_future_[static_cast<size_t>(j)] += w;
      }
    }
  }

  const qubo::QuboProblem& problem_;
  const QuboBnbOptions& options_;
  const QuboProgressCallback& on_incumbent_;
  Stopwatch clock_;
  QuboBnbResult result_;
  std::vector<uint8_t> assignment_;
  std::vector<uint8_t> assigned_;
  std::vector<double> field_;
  std::vector<double> neg_future_;
  double best_energy_ = std::numeric_limits<double>::infinity();
  bool aborted_ = false;
};

}  // namespace

Result<QuboBnbResult> QuboBranchAndBound::Solve(
    const qubo::QuboProblem& problem,
    const QuboProgressCallback& on_incumbent) const {
  if (problem.num_vars() == 0) {
    return Status::InvalidArgument("empty QUBO");
  }
  // Non-finite weights would silently corrupt the bound arithmetic (NaN
  // never prunes, infinities overflow the field sums) — reject instead.
  for (qubo::VarId i = 0; i < problem.num_vars(); ++i) {
    if (!std::isfinite(problem.linear(i))) {
      return Status::InvalidArgument("non-finite linear weight");
    }
  }
  for (const qubo::Interaction& term : problem.interactions()) {
    if (!std::isfinite(term.weight)) {
      return Status::InvalidArgument("non-finite quadratic weight");
    }
  }
  QuboSearch search(problem, options_, on_incumbent);
  return search.Run();
}

}  // namespace solver
}  // namespace qmqo
