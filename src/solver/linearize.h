#ifndef QMQO_SOLVER_LINEARIZE_H_
#define QMQO_SOLVER_LINEARIZE_H_

/// \file linearize.h
/// Integer-linear-program formulations:
///
///  * `MqoToIlp` — the native MQO model the paper solves as "LIN-MQO":
///      min  sum c_p x_p − sum s_{ab} y_{ab}
///      s.t. sum_{p in P_q} x_p = 1            for every query q
///           y_{ab} <= x_a,  y_{ab} <= x_b     for every saving (a, b)
///      with x binary and y continuous in [0,1] (automatically integral at
///      the optimum because every y has a negative objective coefficient).
///
///  * `QuboToIlp` — the linear QUBO reformulation of Dash (arXiv 1306.1202)
///    the paper uses for "LIN-QUB": one product variable y_ij per quadratic
///    term; negative-weight terms need y <= x_i, y <= x_j, positive-weight
///    terms need y >= x_i + x_j − 1 (the minimization pulls each y to the
///    correct side).

#include <vector>

#include "mqo/problem.h"
#include "mqo/solution.h"
#include "qubo/qubo.h"
#include "solver/lp.h"

namespace qmqo {
namespace solver {

/// An ILP plus the bookkeeping to map solutions back to plan selections.
struct MqoIlp {
  LpModel model;
  /// model variable index of plan p (the first num_plans variables).
  int num_plan_vars = 0;
};

/// Builds the LIN-MQO model.
MqoIlp MqoToIlp(const mqo::MqoProblem& problem);

/// Extracts the plan selection from ILP values (x variables first).
mqo::MqoSolution IlpValuesToSolution(const mqo::MqoProblem& problem,
                                     const std::vector<double>& values);

/// An ILP over QUBO variables.
struct QuboIlp {
  LpModel model;
  /// model variable index of QUBO variable i (the first num_vars variables).
  int num_qubo_vars = 0;
};

/// Builds the LIN-QUB model.
QuboIlp QuboToIlp(const qubo::QuboProblem& problem);

/// Extracts the binary assignment from ILP values.
std::vector<uint8_t> IlpValuesToAssignment(int num_qubo_vars,
                                           const std::vector<double>& values);

}  // namespace solver
}  // namespace qmqo

#endif  // QMQO_SOLVER_LINEARIZE_H_
