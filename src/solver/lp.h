#ifndef QMQO_SOLVER_LP_H_
#define QMQO_SOLVER_LP_H_

/// \file lp.h
/// Linear-program model used by the from-scratch simplex and MIP solvers
/// (the reproduction's stand-in for the commercial ILP solver used in the
/// paper's experiments).
///
/// Minimization form:   min c.x   s.t.  A x {<=,>=,=} b,  lo <= x <= up.

#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace qmqo {
namespace solver {

/// Relation of a row to its right-hand side.
enum class ConstraintSense {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

/// One nonzero of a constraint row.
struct LinearTerm {
  int var = -1;
  double coeff = 0.0;
};

/// One constraint row.
struct Constraint {
  std::vector<LinearTerm> terms;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
};

/// Marker for "no upper bound".
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A mutable LP/MIP model. Variables are added with bounds and objective
/// coefficients; `MarkInteger` flags integrality for the MIP solver (the
/// LP solver ignores the flag).
class LpModel {
 public:
  LpModel() = default;

  /// Adds a variable with bounds [lower, upper] and objective coefficient
  /// `objective`; returns its index.
  int AddVariable(double lower, double upper, double objective);

  /// Appends a constraint row. Terms may repeat a variable (coefficients
  /// accumulate during standardization).
  void AddConstraint(Constraint constraint);

  /// Flags a variable as integral.
  void MarkInteger(int var) { is_integer_[static_cast<size_t>(var)] = true; }

  int num_vars() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  double lower(int var) const { return lower_[static_cast<size_t>(var)]; }
  double upper(int var) const { return upper_[static_cast<size_t>(var)]; }
  double objective(int var) const {
    return objective_[static_cast<size_t>(var)];
  }
  bool is_integer(int var) const {
    return is_integer_[static_cast<size_t>(var)];
  }

  /// Mutators used by branch-and-bound to tighten bounds along branches.
  void SetLower(int var, double lower) {
    lower_[static_cast<size_t>(var)] = lower;
  }
  void SetUpper(int var, double upper) {
    upper_[static_cast<size_t>(var)] = upper;
  }

  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// All indices flagged integral.
  std::vector<int> IntegerVars() const;

  /// Structural checks (bound sanity, term indices in range).
  Status Validate() const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<bool> is_integer_;
  std::vector<Constraint> constraints_;
};

/// Outcome of an LP solve.
enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  /// A pivot element degenerated below the numerical tolerance — the
  /// tableau can no longer be trusted. Reported as a typed status (callers
  /// prune or propagate) instead of the assert it used to be.
  kNumericalError,
};

const char* LpStatusToString(LpStatus status);

/// An LP solution.
struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> values;
};

}  // namespace solver
}  // namespace qmqo

#endif  // QMQO_SOLVER_LP_H_
