#include "solver/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace qmqo {
namespace solver {
namespace {

/// Dense standard-form tableau:  A x = b, x >= 0, minimize c.x.
struct Tableau {
  int num_rows = 0;
  int num_cols = 0;              // structural + slack + artificial columns
  std::vector<double> a;         // row-major num_rows x num_cols
  std::vector<double> b;         // rhs, length num_rows
  std::vector<int> basis;        // basic column per row
  std::vector<bool> artificial;  // per column

  double& At(int r, int c) { return a[static_cast<size_t>(r) * num_cols + c]; }
  double At(int r, int c) const {
    return a[static_cast<size_t>(r) * num_cols + c];
  }

  /// False when the pivot element has degenerated below the numerical
  /// floor — the caller reports `kNumericalError` instead of dividing by
  /// (nearly) zero. This used to be an assert, which turned a numerically
  /// hostile model into a process abort.
  bool Pivot(int row, int col) {
    double pivot = At(row, col);
    if (!(std::fabs(pivot) > 1e-12)) return false;
    double inv = 1.0 / pivot;
    for (int c = 0; c < num_cols; ++c) At(row, c) *= inv;
    b[static_cast<size_t>(row)] *= inv;
    for (int r = 0; r < num_rows; ++r) {
      if (r == row) continue;
      double factor = At(r, col);
      if (factor == 0.0) continue;
      for (int c = 0; c < num_cols; ++c) {
        At(r, c) -= factor * At(row, c);
      }
      b[static_cast<size_t>(r)] -= factor * b[static_cast<size_t>(row)];
    }
    basis[static_cast<size_t>(row)] = col;
    return true;
  }
};

/// Runs simplex iterations for objective `cost` (length num_cols).
/// Returns kOptimal / kUnbounded / kIterationLimit and leaves the optimal
/// basis in the tableau. Barred columns are never entered.
LpStatus Iterate(Tableau* t, const std::vector<double>& cost,
                 const std::vector<bool>& barred,
                 const SimplexOptions& options) {
  const double tol = options.tolerance;
  // Reduced costs are computed on demand: z_j = c_j − c_B . B^-1 A_j. With
  // a full tableau, B^-1 A_j is simply column j, and c_B are the costs of
  // basic columns.
  std::vector<double> y(static_cast<size_t>(t->num_rows));  // c_B per row
  int degenerate_streak = 0;
  double last_objective = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (int r = 0; r < t->num_rows; ++r) {
      y[static_cast<size_t>(r)] = cost[static_cast<size_t>(
          t->basis[static_cast<size_t>(r)])];
    }
    bool use_bland = degenerate_streak >= options.degeneracy_threshold;
    int entering = -1;
    double best_reduced = -tol;
    for (int c = 0; c < t->num_cols; ++c) {
      if (barred[static_cast<size_t>(c)]) continue;
      double reduced = cost[static_cast<size_t>(c)];
      for (int r = 0; r < t->num_rows; ++r) {
        double a_rc = t->At(r, c);
        if (a_rc != 0.0) reduced -= y[static_cast<size_t>(r)] * a_rc;
      }
      if (reduced < best_reduced) {
        entering = c;
        if (use_bland) break;  // first eligible column
        best_reduced = reduced;
      }
    }
    if (entering < 0) return LpStatus::kOptimal;

    // Ratio test.
    int leaving = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < t->num_rows; ++r) {
      double a_re = t->At(r, entering);
      if (a_re > tol) {
        double ratio = t->b[static_cast<size_t>(r)] / a_re;
        if (leaving < 0 || ratio < best_ratio - tol ||
            (std::fabs(ratio - best_ratio) <= tol &&
             t->basis[static_cast<size_t>(r)] <
                 t->basis[static_cast<size_t>(leaving)])) {
          leaving = r;
          best_ratio = ratio;
        }
      }
    }
    if (leaving < 0) return LpStatus::kUnbounded;

    if (!t->Pivot(leaving, entering)) return LpStatus::kNumericalError;

    double objective = 0.0;
    for (int r = 0; r < t->num_rows; ++r) {
      objective += cost[static_cast<size_t>(t->basis[static_cast<size_t>(r)])] *
                   t->b[static_cast<size_t>(r)];
    }
    if (objective < last_objective - tol) {
      degenerate_streak = 0;
    } else {
      ++degenerate_streak;
    }
    last_objective = objective;
  }
  return LpStatus::kIterationLimit;
}

}  // namespace

LpSolution SimplexSolver::Solve(const LpModel& model) const {
  LpSolution out;
  if (!model.Validate().ok()) {
    out.status = LpStatus::kInfeasible;
    return out;
  }
  const int n = model.num_vars();
  const double tol = options_.tolerance;

  // Shift variables to lower bound zero; collect finite upper bounds as
  // extra <= rows. Objective constant from the shift.
  std::vector<double> shift(static_cast<size_t>(n));
  double objective_constant = 0.0;
  for (int v = 0; v < n; ++v) {
    shift[static_cast<size_t>(v)] = model.lower(v);
    objective_constant += model.objective(v) * model.lower(v);
  }

  struct Row {
    std::vector<double> coeffs;  // dense over structural vars
    ConstraintSense sense;
    double rhs;
  };
  std::vector<Row> rows;
  for (const Constraint& constraint : model.constraints()) {
    Row row;
    row.coeffs.assign(static_cast<size_t>(n), 0.0);
    row.sense = constraint.sense;
    row.rhs = constraint.rhs;
    for (const LinearTerm& term : constraint.terms) {
      row.coeffs[static_cast<size_t>(term.var)] += term.coeff;
      row.rhs -= term.coeff * shift[static_cast<size_t>(term.var)];
    }
    rows.push_back(std::move(row));
  }
  for (int v = 0; v < n; ++v) {
    double span = model.upper(v) - model.lower(v);
    if (std::isfinite(span)) {
      Row row;
      row.coeffs.assign(static_cast<size_t>(n), 0.0);
      row.coeffs[static_cast<size_t>(v)] = 1.0;
      row.sense = ConstraintSense::kLessEqual;
      row.rhs = span;
      rows.push_back(std::move(row));
    }
  }
  // Non-negative RHS.
  for (Row& row : rows) {
    if (row.rhs < 0.0) {
      for (double& c : row.coeffs) c = -c;
      row.rhs = -row.rhs;
      if (row.sense == ConstraintSense::kLessEqual) {
        row.sense = ConstraintSense::kGreaterEqual;
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.sense = ConstraintSense::kLessEqual;
      }
    }
  }

  const int m = static_cast<int>(rows.size());
  // Column layout: [0, n) structural; then one slack/surplus per row that
  // needs one; then artificials.
  int num_slack = 0;
  for (const Row& row : rows) {
    if (row.sense != ConstraintSense::kEqual) ++num_slack;
  }
  int num_artificial = 0;
  for (const Row& row : rows) {
    if (row.sense != ConstraintSense::kLessEqual) ++num_artificial;
  }
  // <= rows with rhs >= 0 start with their slack basic; others need the
  // artificial basic.
  Tableau t;
  t.num_rows = m;
  t.num_cols = n + num_slack + num_artificial;
  t.a.assign(static_cast<size_t>(t.num_rows) * t.num_cols, 0.0);
  t.b.assign(static_cast<size_t>(m), 0.0);
  t.basis.assign(static_cast<size_t>(m), -1);
  t.artificial.assign(static_cast<size_t>(t.num_cols), false);

  int slack_at = n;
  int artificial_at = n + num_slack;
  for (int r = 0; r < m; ++r) {
    const Row& row = rows[static_cast<size_t>(r)];
    for (int v = 0; v < n; ++v) {
      t.At(r, v) = row.coeffs[static_cast<size_t>(v)];
    }
    t.b[static_cast<size_t>(r)] = row.rhs;
    switch (row.sense) {
      case ConstraintSense::kLessEqual:
        t.At(r, slack_at) = 1.0;
        t.basis[static_cast<size_t>(r)] = slack_at;
        ++slack_at;
        break;
      case ConstraintSense::kGreaterEqual:
        t.At(r, slack_at) = -1.0;
        ++slack_at;
        t.At(r, artificial_at) = 1.0;
        t.artificial[static_cast<size_t>(artificial_at)] = true;
        t.basis[static_cast<size_t>(r)] = artificial_at;
        ++artificial_at;
        break;
      case ConstraintSense::kEqual:
        t.At(r, artificial_at) = 1.0;
        t.artificial[static_cast<size_t>(artificial_at)] = true;
        t.basis[static_cast<size_t>(r)] = artificial_at;
        ++artificial_at;
        break;
    }
  }

  std::vector<bool> no_bar(static_cast<size_t>(t.num_cols), false);

  // Phase 1: minimize the artificial sum.
  if (num_artificial > 0) {
    std::vector<double> phase1_cost(static_cast<size_t>(t.num_cols), 0.0);
    for (int c = 0; c < t.num_cols; ++c) {
      if (t.artificial[static_cast<size_t>(c)]) {
        phase1_cost[static_cast<size_t>(c)] = 1.0;
      }
    }
    LpStatus status = Iterate(&t, phase1_cost, no_bar, options_);
    if (status == LpStatus::kIterationLimit ||
        status == LpStatus::kNumericalError) {
      out.status = status;
      return out;
    }
    double infeasibility = 0.0;
    for (int r = 0; r < m; ++r) {
      if (t.artificial[static_cast<size_t>(t.basis[static_cast<size_t>(r)])]) {
        infeasibility += t.b[static_cast<size_t>(r)];
      }
    }
    if (infeasibility > 1e-6) {
      out.status = LpStatus::kInfeasible;
      return out;
    }
    // Drive basic artificials (at value 0) out of the basis when possible.
    for (int r = 0; r < m; ++r) {
      int basic = t.basis[static_cast<size_t>(r)];
      if (!t.artificial[static_cast<size_t>(basic)]) continue;
      int replacement = -1;
      for (int c = 0; c < n + num_slack; ++c) {
        if (std::fabs(t.At(r, c)) > tol) {
          replacement = c;
          break;
        }
      }
      if (replacement >= 0 && !t.Pivot(r, replacement)) {
        out.status = LpStatus::kNumericalError;
        return out;
      }
      // Otherwise the row is redundant; the artificial stays basic at 0,
      // which is harmless because its column is barred in phase 2.
    }
  }

  // Phase 2: original objective, artificial columns barred.
  std::vector<double> phase2_cost(static_cast<size_t>(t.num_cols), 0.0);
  for (int v = 0; v < n; ++v) {
    phase2_cost[static_cast<size_t>(v)] = model.objective(v);
  }
  std::vector<bool> barred = t.artificial;
  LpStatus status = Iterate(&t, phase2_cost, barred, options_);
  if (status != LpStatus::kOptimal) {
    out.status = status;
    return out;
  }

  out.status = LpStatus::kOptimal;
  out.values.assign(static_cast<size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    int basic = t.basis[static_cast<size_t>(r)];
    if (basic < n) {
      out.values[static_cast<size_t>(basic)] = t.b[static_cast<size_t>(r)];
    }
  }
  out.objective = objective_constant;
  for (int v = 0; v < n; ++v) {
    out.values[static_cast<size_t>(v)] += shift[static_cast<size_t>(v)];
    out.objective += model.objective(v) *
                     (out.values[static_cast<size_t>(v)] -
                      shift[static_cast<size_t>(v)]);
  }
  return out;
}

}  // namespace solver
}  // namespace qmqo
