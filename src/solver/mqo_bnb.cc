#include "solver/mqo_bnb.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "mqo/clustering.h"
#include "util/stopwatch.h"

namespace qmqo {
namespace solver {
namespace {

using mqo::MqoProblem;
using mqo::MqoSolution;
using mqo::PlanId;
using mqo::QueryId;

/// Greedy plan choice for `q` against the plans flagged in `chosen`.
PlanId GreedyPick(const MqoProblem& problem, QueryId q,
                  const std::vector<uint8_t>& chosen, double* marginal_out) {
  PlanId best = problem.first_plan(q);
  double best_marginal = std::numeric_limits<double>::infinity();
  for (int k = 0; k < problem.num_plans_of(q); ++k) {
    PlanId p = problem.first_plan(q) + k;
    double marginal = problem.plan_cost(p);
    for (const auto& [other, value] : problem.savings_of(p)) {
      if (chosen[static_cast<size_t>(other)]) marginal -= value;
    }
    if (marginal < best_marginal) {
      best_marginal = marginal;
      best = p;
    }
  }
  if (marginal_out) *marginal_out = best_marginal;
  return best;
}

/// Cost of `solution` restricted to the queries of one component (savings
/// never cross components, so component costs sum to the full cost).
double ComponentCost(const MqoProblem& problem, const MqoSolution& solution,
                     const std::vector<QueryId>& queries) {
  std::vector<uint8_t> chosen(static_cast<size_t>(problem.num_plans()), 0);
  double cost = 0.0;
  for (QueryId q : queries) {
    PlanId p = solution.selected(q);
    cost += problem.plan_cost(p);
    chosen[static_cast<size_t>(p)] = 1;
  }
  for (QueryId q : queries) {
    PlanId p = solution.selected(q);
    for (const auto& [other, value] : problem.savings_of(p)) {
      if (other > p && chosen[static_cast<size_t>(other)]) cost -= value;
    }
  }
  return cost;
}

/// Branch-and-bound over one connected component of the sharing graph.
class ComponentSearch {
 public:
  /// `on_improved(component_cost, picks)` fires for every improvement;
  /// `picks[i]` is the plan chosen for the i-th query in decision order.
  using ImprovedCallback =
      std::function<void(double, const std::vector<PlanId>&)>;

  ComponentSearch(const MqoProblem& problem, std::vector<QueryId> queries,
                  const MqoBnbOptions& options, const Stopwatch& clock,
                  double initial_bound, ImprovedCallback on_improved,
                  int64_t* nodes)
      : problem_(problem),
        queries_(std::move(queries)),
        options_(options),
        clock_(clock),
        on_improved_(std::move(on_improved)),
        nodes_(nodes),
        best_cost_(initial_bound) {
    chosen_.assign(static_cast<size_t>(problem.num_plans()), 0);
    // Decide queries in natural (geometric) order: the paper workload
    // numbers queries by chip location, so this keeps the
    // decided/undecided frontier local and the bound tight.
    std::sort(queries_.begin(), queries_.end());
    decided_.assign(static_cast<size_t>(problem.num_queries()), 0);
    max_future_.assign(static_cast<size_t>(problem.num_queries()), 0.0);
    query_rank_.assign(static_cast<size_t>(problem.num_queries()), -1);
    for (size_t i = 0; i < queries_.size(); ++i) {
      query_rank_[static_cast<size_t>(queries_[i])] = static_cast<int>(i);
    }
  }

  const std::vector<QueryId>& decision_order() const { return queries_; }

  /// Runs the search; returns false when the budget was exhausted
  /// (incumbents reported so far remain valid).
  bool Run() {
    Descend(0, 0.0);
    return !aborted_;
  }

 private:
  double QuerySavingMass(QueryId q) const {
    double mass = 0.0;
    for (int i = 0; i < problem_.num_plans_of(q); ++i) {
      mass += problem_.accumulated_saving_of(problem_.first_plan(q) + i);
    }
    return mass;
  }

  /// Optimistic completion cost of plan `p` (of the query ranked
  /// `rank_of_q`): exact savings to chosen plans; for each undecided
  /// partner query ranked earlier, the best single saving at full value.
  /// Crediting every undecided-undecided pair to exactly one endpoint (the
  /// later rank) keeps the bound admissible.
  double OptimisticPlanCost(PlanId p, int rank_of_q) const {
    double cost = problem_.plan_cost(p);
    const auto& savings = problem_.savings_of(p);
    for (const auto& [other, value] : savings) {
      if (chosen_[static_cast<size_t>(other)]) {
        cost -= value;
        continue;
      }
      QueryId oq = problem_.query_of(other);
      if (decided_[static_cast<size_t>(oq)]) continue;  // chose another plan
      // Credit each undecided-undecided pair once: to the later-ranked
      // endpoint (full value), keeping the bound admissible.
      if (query_rank_[static_cast<size_t>(oq)] >= rank_of_q) continue;
      max_future_[static_cast<size_t>(oq)] =
          std::max(max_future_[static_cast<size_t>(oq)], value);
    }
    for (const auto& [other, value] : savings) {
      (void)value;
      QueryId oq = problem_.query_of(other);
      if (max_future_[static_cast<size_t>(oq)] > 0.0) {
        cost -= max_future_[static_cast<size_t>(oq)];
        max_future_[static_cast<size_t>(oq)] = 0.0;
      }
    }
    return cost;
  }

  /// Admissible lower bound on completing the partial solution.
  double RemainderBound(int depth) const {
    double bound = 0.0;
    for (size_t i = static_cast<size_t>(depth); i < queries_.size(); ++i) {
      QueryId q = queries_[i];
      double best = std::numeric_limits<double>::infinity();
      for (int k = 0; k < problem_.num_plans_of(q); ++k) {
        best = std::min(best, OptimisticPlanCost(problem_.first_plan(q) + k,
                                                 static_cast<int>(i)));
      }
      bound += best;
    }
    return bound;
  }

  void Descend(int depth, double partial_cost) {
    if (aborted_) return;
    if ((*nodes_ & 0x3ff) == 0 &&
        clock_.ElapsedMillis() > options_.time_limit_ms) {
      aborted_ = true;
      return;
    }
    if (*nodes_ >= options_.max_nodes) {
      aborted_ = true;
      return;
    }
    ++*nodes_;
    if (depth == static_cast<int>(queries_.size())) {
      if (partial_cost < best_cost_ - 1e-9) {
        best_cost_ = partial_cost;
        on_improved_(partial_cost, trail_);
      }
      return;
    }
    if (partial_cost + RemainderBound(depth) >= best_cost_ - 1e-9) {
      return;
    }
    QueryId q = queries_[static_cast<size_t>(depth)];
    // Cheapest marginal first, so good incumbents arrive early.
    std::vector<std::pair<double, PlanId>> ordered;
    for (int k = 0; k < problem_.num_plans_of(q); ++k) {
      PlanId p = problem_.first_plan(q) + k;
      double marginal = problem_.plan_cost(p);
      for (const auto& [other, value] : problem_.savings_of(p)) {
        if (chosen_[static_cast<size_t>(other)]) marginal -= value;
      }
      ordered.emplace_back(marginal, p);
    }
    std::sort(ordered.begin(), ordered.end());
    decided_[static_cast<size_t>(q)] = 1;
    for (const auto& [marginal, p] : ordered) {
      chosen_[static_cast<size_t>(p)] = 1;
      trail_.push_back(p);
      Descend(depth + 1, partial_cost + marginal);
      trail_.pop_back();
      chosen_[static_cast<size_t>(p)] = 0;
      if (aborted_) break;
    }
    decided_[static_cast<size_t>(q)] = 0;
  }

  const MqoProblem& problem_;
  std::vector<QueryId> queries_;
  const MqoBnbOptions& options_;
  const Stopwatch& clock_;
  ImprovedCallback on_improved_;
  int64_t* nodes_;

  std::vector<uint8_t> chosen_;
  std::vector<uint8_t> decided_;
  std::vector<int> query_rank_;
  std::vector<PlanId> trail_;
  mutable std::vector<double> max_future_;
  double best_cost_;
  bool aborted_ = false;
};

}  // namespace

Result<MqoBnbResult> MqoBranchAndBound::Solve(
    const MqoProblem& problem, const MqoProgressCallback& on_incumbent) const {
  QMQO_RETURN_IF_ERROR(problem.Validate());
  Stopwatch clock;
  MqoBnbResult result;
  result.solution = MqoSolution(problem.num_queries());

  // Global greedy warm start: a complete valid incumbent from the outset,
  // so anytime reports always describe full solutions.
  {
    std::vector<uint8_t> chosen(static_cast<size_t>(problem.num_plans()), 0);
    for (QueryId q = 0; q < problem.num_queries(); ++q) {
      PlanId p = GreedyPick(problem, q, chosen, nullptr);
      chosen[static_cast<size_t>(p)] = 1;
      result.solution.Select(q, p);
    }
  }
  double full_cost = mqo::EvaluateCost(problem, result.solution);
  result.time_to_best_ms = clock.ElapsedMillis();
  if (on_incumbent) {
    on_incumbent(result.time_to_best_ms, full_cost, result.solution);
  }

  mqo::QueryClustering components;
  if (options_.decompose_components) {
    components = mqo::ClusterByConnectedComponents(problem);
  } else {
    components.members.emplace_back();
    for (QueryId q = 0; q < problem.num_queries(); ++q) {
      components.members.back().push_back(q);
    }
  }

  bool all_proven = true;
  for (const auto& member_queries : components.members) {
    if (clock.ElapsedMillis() > options_.time_limit_ms) {
      all_proven = false;
      break;
    }
    double baseline = ComponentCost(problem, result.solution, member_queries);
    double current = baseline;
    auto on_improved = [&](double component_cost,
                           const std::vector<PlanId>& picks) {
      full_cost += component_cost - current;
      current = component_cost;
      for (PlanId pick : picks) {
        result.solution.Select(problem.query_of(pick), pick);
      }
      result.time_to_best_ms = clock.ElapsedMillis();
      if (on_incumbent) {
        on_incumbent(result.time_to_best_ms, full_cost, result.solution);
      }
    };
    ComponentSearch search(problem, member_queries, options_, clock, baseline,
                           on_improved, &result.nodes);
    bool proven = search.Run();
    all_proven = all_proven && proven;
  }

  result.cost = mqo::EvaluateCost(problem, result.solution);
  result.proven_optimal = all_proven;
  result.total_time_ms = clock.ElapsedMillis();
  return result;
}

}  // namespace solver
}  // namespace qmqo
