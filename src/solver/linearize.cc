#include "solver/linearize.h"

namespace qmqo {
namespace solver {

MqoIlp MqoToIlp(const mqo::MqoProblem& problem) {
  MqoIlp out;
  out.num_plan_vars = problem.num_plans();
  // x variables: binary, objective = plan cost.
  for (mqo::PlanId p = 0; p < problem.num_plans(); ++p) {
    int var = out.model.AddVariable(0.0, 1.0, problem.plan_cost(p));
    out.model.MarkInteger(var);
  }
  // One-plan-per-query rows.
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    Constraint row;
    row.sense = ConstraintSense::kEqual;
    row.rhs = 1.0;
    for (int i = 0; i < problem.num_plans_of(q); ++i) {
      row.terms.push_back(LinearTerm{problem.first_plan(q) + i, 1.0});
    }
    out.model.AddConstraint(std::move(row));
  }
  // y variables and linking rows per saving.
  for (const mqo::Saving& saving : problem.savings()) {
    int y = out.model.AddVariable(0.0, 1.0, -saving.value);
    Constraint le_a;
    le_a.sense = ConstraintSense::kLessEqual;
    le_a.rhs = 0.0;
    le_a.terms = {LinearTerm{y, 1.0}, LinearTerm{saving.plan_a, -1.0}};
    out.model.AddConstraint(std::move(le_a));
    Constraint le_b;
    le_b.sense = ConstraintSense::kLessEqual;
    le_b.rhs = 0.0;
    le_b.terms = {LinearTerm{y, 1.0}, LinearTerm{saving.plan_b, -1.0}};
    out.model.AddConstraint(std::move(le_b));
  }
  return out;
}

mqo::MqoSolution IlpValuesToSolution(const mqo::MqoProblem& problem,
                                     const std::vector<double>& values) {
  mqo::MqoSolution solution(problem.num_queries());
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    mqo::PlanId best = problem.first_plan(q);
    double best_value = -1.0;
    for (int i = 0; i < problem.num_plans_of(q); ++i) {
      mqo::PlanId p = problem.first_plan(q) + i;
      double value = values[static_cast<size_t>(p)];
      if (value > best_value) {
        best_value = value;
        best = p;
      }
    }
    solution.Select(q, best);
  }
  return solution;
}

QuboIlp QuboToIlp(const qubo::QuboProblem& problem) {
  QuboIlp out;
  out.num_qubo_vars = problem.num_vars();
  for (qubo::VarId i = 0; i < problem.num_vars(); ++i) {
    int var = out.model.AddVariable(0.0, 1.0, problem.linear(i));
    out.model.MarkInteger(var);
  }
  for (const qubo::Interaction& term : problem.interactions()) {
    if (term.weight == 0.0) continue;
    int y = out.model.AddVariable(0.0, 1.0, term.weight);
    if (term.weight < 0.0) {
      // Minimization pulls y up; cap it at both factors.
      Constraint le_i;
      le_i.sense = ConstraintSense::kLessEqual;
      le_i.rhs = 0.0;
      le_i.terms = {LinearTerm{y, 1.0}, LinearTerm{term.i, -1.0}};
      out.model.AddConstraint(std::move(le_i));
      Constraint le_j;
      le_j.sense = ConstraintSense::kLessEqual;
      le_j.rhs = 0.0;
      le_j.terms = {LinearTerm{y, 1.0}, LinearTerm{term.j, -1.0}};
      out.model.AddConstraint(std::move(le_j));
    } else {
      // Minimization pulls y down; force y >= x_i + x_j − 1.
      Constraint ge;
      ge.sense = ConstraintSense::kGreaterEqual;
      ge.rhs = -1.0;
      ge.terms = {LinearTerm{y, 1.0}, LinearTerm{term.i, -1.0},
                  LinearTerm{term.j, -1.0}};
      out.model.AddConstraint(std::move(ge));
    }
  }
  return out;
}

std::vector<uint8_t> IlpValuesToAssignment(int num_qubo_vars,
                                           const std::vector<double>& values) {
  std::vector<uint8_t> assignment(static_cast<size_t>(num_qubo_vars), 0);
  for (int i = 0; i < num_qubo_vars; ++i) {
    assignment[static_cast<size_t>(i)] =
        values[static_cast<size_t>(i)] > 0.5 ? 1 : 0;
  }
  return assignment;
}

}  // namespace solver
}  // namespace qmqo
