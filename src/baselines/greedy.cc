#include "baselines/greedy.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/stopwatch.h"

namespace qmqo {
namespace baselines {

mqo::MqoSolution GreedySolver::Construct(const mqo::MqoProblem& problem) {
  // Order queries by incident saving mass, largest first: queries with the
  // most sharing potential commit early so later queries can join them.
  std::vector<mqo::QueryId> order(static_cast<size_t>(problem.num_queries()));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> mass(static_cast<size_t>(problem.num_queries()), 0.0);
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    for (int k = 0; k < problem.num_plans_of(q); ++k) {
      mass[static_cast<size_t>(q)] +=
          problem.accumulated_saving_of(problem.first_plan(q) + k);
    }
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](mqo::QueryId a, mqo::QueryId b) {
                     return mass[static_cast<size_t>(a)] >
                            mass[static_cast<size_t>(b)];
                   });

  std::vector<uint8_t> chosen(static_cast<size_t>(problem.num_plans()), 0);
  std::vector<uint8_t> decided(static_cast<size_t>(problem.num_queries()), 0);
  std::vector<double> best_per_query(
      static_cast<size_t>(problem.num_queries()), 0.0);
  mqo::MqoSolution solution(problem.num_queries());
  for (mqo::QueryId q : order) {
    mqo::PlanId best = problem.first_plan(q);
    double best_marginal = std::numeric_limits<double>::infinity();
    for (int k = 0; k < problem.num_plans_of(q); ++k) {
      mqo::PlanId p = problem.first_plan(q) + k;
      // Exact credit for savings with committed plans; optimistic half
      // credit (best plan per partner query) for savings with queries not
      // yet decided — so plans that enable future sharing win over plans
      // that are marginally cheaper in isolation.
      double marginal = problem.plan_cost(p);
      const auto& savings = problem.savings_of(p);
      for (const auto& [other, value] : savings) {
        if (chosen[static_cast<size_t>(other)]) {
          marginal -= value;
          continue;
        }
        mqo::QueryId oq = problem.query_of(other);
        if (decided[static_cast<size_t>(oq)]) continue;
        best_per_query[static_cast<size_t>(oq)] =
            std::max(best_per_query[static_cast<size_t>(oq)], value);
      }
      for (const auto& [other, value] : savings) {
        (void)value;
        mqo::QueryId oq = problem.query_of(other);
        if (best_per_query[static_cast<size_t>(oq)] > 0.0) {
          marginal -= 0.5 * best_per_query[static_cast<size_t>(oq)];
          best_per_query[static_cast<size_t>(oq)] = 0.0;
        }
      }
      if (marginal < best_marginal) {
        best_marginal = marginal;
        best = p;
      }
    }
    chosen[static_cast<size_t>(best)] = 1;
    decided[static_cast<size_t>(q)] = 1;
    solution.Select(q, best);
  }
  return solution;
}

Result<mqo::MqoSolution> GreedySolver::Optimize(
    const mqo::MqoProblem& problem, const OptimizerBudget& budget, Rng* rng,
    const ProgressCallback& on_improvement) const {
  (void)budget;
  (void)rng;
  QMQO_RETURN_IF_ERROR(problem.Validate());
  Stopwatch clock;
  mqo::MqoSolution solution = Construct(problem);
  if (on_improvement) {
    on_improvement(clock.ElapsedMillis(),
                   mqo::EvaluateCost(problem, solution), solution);
  }
  return solution;
}

}  // namespace baselines
}  // namespace qmqo
