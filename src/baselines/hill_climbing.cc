#include "baselines/hill_climbing.h"

#include <limits>

#include "util/stopwatch.h"

namespace qmqo {
namespace baselines {

Result<mqo::MqoSolution> IteratedHillClimbing::Optimize(
    const mqo::MqoProblem& problem, const OptimizerBudget& budget, Rng* rng,
    const ProgressCallback& on_improvement) const {
  QMQO_RETURN_IF_ERROR(problem.Validate());
  Stopwatch clock;
  mqo::IncrementalCostEvaluator eval(problem);
  double best_cost = std::numeric_limits<double>::infinity();
  mqo::MqoSolution best(problem.num_queries());

  int64_t restarts = 0;
  bool out_of_time = false;
  while (!out_of_time &&
         (budget.max_iterations == 0 || restarts < budget.max_iterations)) {
    ++restarts;
    eval.Reset(RandomSolution(problem, rng));
    // Steepest descent: apply the best improving swap until local optimum.
    while (true) {
      if (clock.ElapsedMillis() > budget.time_limit_ms) {
        out_of_time = true;
        break;
      }
      mqo::QueryId best_query = -1;
      mqo::PlanId best_plan = -1;
      double best_delta = -1e-12;
      for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
        for (int k = 0; k < problem.num_plans_of(q); ++k) {
          mqo::PlanId p = problem.first_plan(q) + k;
          if (p == eval.selected(q)) continue;
          double delta = eval.SwapDelta(q, p);
          if (delta < best_delta) {
            best_delta = delta;
            best_query = q;
            best_plan = p;
          }
        }
      }
      if (best_query < 0) break;  // local optimum
      eval.ApplySwap(best_query, best_plan);
    }
    if (eval.cost() < best_cost - 1e-12) {
      best_cost = eval.cost();
      best = eval.ToSolution();
      if (on_improvement) {
        on_improvement(clock.ElapsedMillis(), best_cost, best);
      }
    }
  }
  return best;
}

}  // namespace baselines
}  // namespace qmqo
