#include "baselines/anytime.h"

namespace qmqo {
namespace baselines {

mqo::MqoSolution RandomSolution(const mqo::MqoProblem& problem, Rng* rng) {
  mqo::MqoSolution solution(problem.num_queries());
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    int pick = rng->UniformInt(0, problem.num_plans_of(q) - 1);
    solution.Select(q, problem.first_plan(q) + pick);
  }
  return solution;
}

}  // namespace baselines
}  // namespace qmqo
