#ifndef QMQO_BASELINES_ANYTIME_H_
#define QMQO_BASELINES_ANYTIME_H_

/// \file anytime.h
/// The common interface of the classical MQO heuristics the paper compares
/// against (Section 7.1): anytime optimizers that report every incumbent
/// improvement with a timestamp so cost-vs-time trajectories (Figures 4-5)
/// can be recorded.

#include <functional>
#include <string>

#include "mqo/problem.h"
#include "mqo/solution.h"
#include "util/rng.h"
#include "util/status.h"

namespace qmqo {
namespace baselines {

/// Time/iteration budget of one optimization run.
struct OptimizerBudget {
  /// Wall-clock limit in milliseconds.
  double time_limit_ms = 1000.0;
  /// Iteration limit (generations / restarts, solver-specific); 0 = none.
  int64_t max_iterations = 0;
};

/// Invoked whenever the incumbent improves: (elapsed ms, cost, solution).
using ProgressCallback =
    std::function<void(double, double, const mqo::MqoSolution&)>;

/// Common interface of the randomized baselines.
class AnytimeOptimizer {
 public:
  virtual ~AnytimeOptimizer() = default;

  /// Short display name (e.g. "GA(50)", "CLIMB").
  virtual std::string name() const = 0;

  /// Optimizes until the budget is exhausted; returns the best solution
  /// found (always valid).
  virtual Result<mqo::MqoSolution> Optimize(
      const mqo::MqoProblem& problem, const OptimizerBudget& budget,
      Rng* rng, const ProgressCallback& on_improvement) const = 0;
};

/// Draws a uniformly random complete solution.
mqo::MqoSolution RandomSolution(const mqo::MqoProblem& problem, Rng* rng);

}  // namespace baselines
}  // namespace qmqo

#endif  // QMQO_BASELINES_ANYTIME_H_
