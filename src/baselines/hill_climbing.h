#ifndef QMQO_BASELINES_HILL_CLIMBING_H_
#define QMQO_BASELINES_HILL_CLIMBING_H_

/// \file hill_climbing.h
/// Iterated hill climbing ("CLIMB" in the paper): repeatedly draw a random
/// plan selection and descend to a local optimum by steepest single-query
/// plan swaps, keeping the best local optimum found. Swap evaluation is
/// O(plan degree) via the incremental cost evaluator.

#include "baselines/anytime.h"

namespace qmqo {
namespace baselines {

/// The iterated hill-climbing baseline.
class IteratedHillClimbing : public AnytimeOptimizer {
 public:
  IteratedHillClimbing() = default;

  std::string name() const override { return "CLIMB"; }

  Result<mqo::MqoSolution> Optimize(
      const mqo::MqoProblem& problem, const OptimizerBudget& budget,
      Rng* rng, const ProgressCallback& on_improvement) const override;
};

}  // namespace baselines
}  // namespace qmqo

#endif  // QMQO_BASELINES_HILL_CLIMBING_H_
