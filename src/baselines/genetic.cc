#include "baselines/genetic.h"

#include <algorithm>
#include <limits>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qmqo {
namespace baselines {
namespace {

using Genome = std::vector<int>;  // per query: plan offset within the query

mqo::MqoSolution GenomeToSolution(const mqo::MqoProblem& problem,
                                  const Genome& genome) {
  mqo::MqoSolution solution(problem.num_queries());
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    solution.Select(q, problem.first_plan(q) + genome[static_cast<size_t>(q)]);
  }
  return solution;
}

/// Evaluates genomes by morphing one shared `IncrementalCostEvaluator`
/// between them: only the queries whose gene differs from the previously
/// evaluated genome pay O(degree), instead of every genome paying a full
/// O(plans + savings) re-evaluation. GA populations converge, so
/// consecutive genomes differ in few genes and evaluation is near O(diff).
class GenomeEvaluator {
 public:
  explicit GenomeEvaluator(const mqo::MqoProblem& problem)
      : problem_(problem), eval_(problem) {}

  /// Exact-cost re-anchor (bounds floating-point drift of the incremental
  /// deltas); call once per generation. Returns the exact cost.
  double Reanchor(const Genome& genome) {
    eval_.Reset(GenomeToSolution(problem_, genome));
    anchored_ = true;
    return eval_.cost();
  }

  double Cost(const Genome& genome) {
    if (!anchored_) return Reanchor(genome);
    for (mqo::QueryId q = 0; q < problem_.num_queries(); ++q) {
      mqo::PlanId p =
          problem_.first_plan(q) + genome[static_cast<size_t>(q)];
      if (eval_.selected(q) != p) eval_.ApplySwap(q, p);
    }
    return eval_.cost();
  }

 private:
  const mqo::MqoProblem& problem_;
  mqo::IncrementalCostEvaluator eval_;
  bool anchored_ = false;
};

}  // namespace

std::string GeneticAlgorithm::name() const {
  return StrFormat("GA(%d)", options_.population_size);
}

Result<mqo::MqoSolution> GeneticAlgorithm::Optimize(
    const mqo::MqoProblem& problem, const OptimizerBudget& budget, Rng* rng,
    const ProgressCallback& on_improvement) const {
  QMQO_RETURN_IF_ERROR(problem.Validate());
  if (options_.population_size < 2) {
    return Status::InvalidArgument("population size must be at least 2");
  }
  Stopwatch clock;
  const int n = problem.num_queries();
  const int pop_size = options_.population_size;

  struct Individual {
    Genome genome;
    double cost = 0.0;
  };
  GenomeEvaluator evaluator(problem);
  std::vector<Individual> population;
  population.reserve(static_cast<size_t>(pop_size));
  for (int i = 0; i < pop_size; ++i) {
    Individual ind;
    ind.genome.resize(static_cast<size_t>(n));
    for (mqo::QueryId q = 0; q < n; ++q) {
      ind.genome[static_cast<size_t>(q)] =
          rng->UniformInt(0, problem.num_plans_of(q) - 1);
    }
    ind.cost = evaluator.Cost(ind.genome);
    population.push_back(std::move(ind));
  }
  auto by_cost = [](const Individual& a, const Individual& b) {
    return a.cost < b.cost;
  };
  std::sort(population.begin(), population.end(), by_cost);

  double best_cost = population.front().cost;
  Genome best_genome = population.front().genome;
  if (on_improvement) {
    on_improvement(clock.ElapsedMillis(), best_cost,
                   GenomeToSolution(problem, best_genome));
  }

  int64_t generation = 0;
  while (clock.ElapsedMillis() < budget.time_limit_ms &&
         (budget.max_iterations == 0 ||
          generation < budget.max_iterations)) {
    ++generation;
    std::vector<Individual> offspring;
    // Crossover: `crossover_rate * pop` parent pairs, single point.
    int num_pairs =
        static_cast<int>(options_.crossover_rate * pop_size / 2.0 + 0.5);
    for (int pair = 0; pair < num_pairs; ++pair) {
      const Genome& a =
          population[static_cast<size_t>(rng->UniformInt(0, pop_size - 1))]
              .genome;
      const Genome& b =
          population[static_cast<size_t>(rng->UniformInt(0, pop_size - 1))]
              .genome;
      int cut = rng->UniformInt(1, std::max(1, n - 1));
      Individual child1{Genome(a), 0.0};
      Individual child2{Genome(b), 0.0};
      std::copy(b.begin() + cut, b.end(), child1.genome.begin() + cut);
      std::copy(a.begin() + cut, a.end(), child2.genome.begin() + cut);
      offspring.push_back(std::move(child1));
      offspring.push_back(std::move(child2));
    }
    // Mutation: every population member may spawn a mutated copy.
    for (int i = 0; i < pop_size; ++i) {
      Individual mutant;
      mutant.genome = population[static_cast<size_t>(i)].genome;
      bool changed = false;
      for (mqo::QueryId q = 0; q < n; ++q) {
        if (rng->Bernoulli(options_.mutation_rate)) {
          mutant.genome[static_cast<size_t>(q)] =
              rng->UniformInt(0, problem.num_plans_of(q) - 1);
          changed = true;
        }
      }
      if (changed) offspring.push_back(std::move(mutant));
    }
    for (Individual& child : offspring) {
      child.cost = evaluator.Cost(child.genome);
    }
    // Top-n selection over parents + offspring.
    population.insert(population.end(),
                      std::make_move_iterator(offspring.begin()),
                      std::make_move_iterator(offspring.end()));
    std::sort(population.begin(), population.end(), by_cost);
    population.resize(static_cast<size_t>(pop_size));
    // Exact re-anchor once per generation so incremental-delta drift never
    // accumulates across generations.
    population.front().cost = evaluator.Reanchor(population.front().genome);

    if (population.front().cost < best_cost - 1e-12) {
      best_cost = population.front().cost;
      best_genome = population.front().genome;
      if (on_improvement) {
        on_improvement(clock.ElapsedMillis(), best_cost,
                       GenomeToSolution(problem, best_genome));
      }
    }
  }
  return GenomeToSolution(problem, best_genome);
}

}  // namespace baselines
}  // namespace qmqo
