#include "baselines/genetic.h"

#include <algorithm>
#include <limits>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qmqo {
namespace baselines {
namespace {

using Genome = std::vector<int>;  // per query: plan offset within the query

double GenomeCost(const mqo::MqoProblem& problem, const Genome& genome) {
  mqo::MqoSolution solution(problem.num_queries());
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    solution.Select(q, problem.first_plan(q) + genome[static_cast<size_t>(q)]);
  }
  return mqo::EvaluateCost(problem, solution);
}

mqo::MqoSolution GenomeToSolution(const mqo::MqoProblem& problem,
                                  const Genome& genome) {
  mqo::MqoSolution solution(problem.num_queries());
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    solution.Select(q, problem.first_plan(q) + genome[static_cast<size_t>(q)]);
  }
  return solution;
}

}  // namespace

std::string GeneticAlgorithm::name() const {
  return StrFormat("GA(%d)", options_.population_size);
}

Result<mqo::MqoSolution> GeneticAlgorithm::Optimize(
    const mqo::MqoProblem& problem, const OptimizerBudget& budget, Rng* rng,
    const ProgressCallback& on_improvement) const {
  QMQO_RETURN_IF_ERROR(problem.Validate());
  if (options_.population_size < 2) {
    return Status::InvalidArgument("population size must be at least 2");
  }
  Stopwatch clock;
  const int n = problem.num_queries();
  const int pop_size = options_.population_size;

  struct Individual {
    Genome genome;
    double cost = 0.0;
  };
  std::vector<Individual> population;
  population.reserve(static_cast<size_t>(pop_size));
  for (int i = 0; i < pop_size; ++i) {
    Individual ind;
    ind.genome.resize(static_cast<size_t>(n));
    for (mqo::QueryId q = 0; q < n; ++q) {
      ind.genome[static_cast<size_t>(q)] =
          rng->UniformInt(0, problem.num_plans_of(q) - 1);
    }
    ind.cost = GenomeCost(problem, ind.genome);
    population.push_back(std::move(ind));
  }
  auto by_cost = [](const Individual& a, const Individual& b) {
    return a.cost < b.cost;
  };
  std::sort(population.begin(), population.end(), by_cost);

  double best_cost = population.front().cost;
  Genome best_genome = population.front().genome;
  if (on_improvement) {
    on_improvement(clock.ElapsedMillis(), best_cost,
                   GenomeToSolution(problem, best_genome));
  }

  int64_t generation = 0;
  while (clock.ElapsedMillis() < budget.time_limit_ms &&
         (budget.max_iterations == 0 ||
          generation < budget.max_iterations)) {
    ++generation;
    std::vector<Individual> offspring;
    // Crossover: `crossover_rate * pop` parent pairs, single point.
    int num_pairs =
        static_cast<int>(options_.crossover_rate * pop_size / 2.0 + 0.5);
    for (int pair = 0; pair < num_pairs; ++pair) {
      const Genome& a =
          population[static_cast<size_t>(rng->UniformInt(0, pop_size - 1))]
              .genome;
      const Genome& b =
          population[static_cast<size_t>(rng->UniformInt(0, pop_size - 1))]
              .genome;
      int cut = rng->UniformInt(1, std::max(1, n - 1));
      Individual child1;
      Individual child2;
      child1.genome.assign(a.begin(), a.begin() + cut);
      child1.genome.insert(child1.genome.end(), b.begin() + cut, b.end());
      child2.genome.assign(b.begin(), b.begin() + cut);
      child2.genome.insert(child2.genome.end(), a.begin() + cut, a.end());
      offspring.push_back(std::move(child1));
      offspring.push_back(std::move(child2));
    }
    // Mutation: every population member may spawn a mutated copy.
    for (int i = 0; i < pop_size; ++i) {
      Individual mutant;
      mutant.genome = population[static_cast<size_t>(i)].genome;
      bool changed = false;
      for (mqo::QueryId q = 0; q < n; ++q) {
        if (rng->Bernoulli(options_.mutation_rate)) {
          mutant.genome[static_cast<size_t>(q)] =
              rng->UniformInt(0, problem.num_plans_of(q) - 1);
          changed = true;
        }
      }
      if (changed) offspring.push_back(std::move(mutant));
    }
    for (Individual& child : offspring) {
      child.cost = GenomeCost(problem, child.genome);
    }
    // Top-n selection over parents + offspring.
    population.insert(population.end(),
                      std::make_move_iterator(offspring.begin()),
                      std::make_move_iterator(offspring.end()));
    std::sort(population.begin(), population.end(), by_cost);
    population.resize(static_cast<size_t>(pop_size));

    if (population.front().cost < best_cost - 1e-12) {
      best_cost = population.front().cost;
      best_genome = population.front().genome;
      if (on_improvement) {
        on_improvement(clock.ElapsedMillis(), best_cost,
                       GenomeToSolution(problem, best_genome));
      }
    }
  }
  return GenomeToSolution(problem, best_genome);
}

}  // namespace baselines
}  // namespace qmqo
