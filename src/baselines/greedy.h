#ifndef QMQO_BASELINES_GREEDY_H_
#define QMQO_BASELINES_GREEDY_H_

/// \file greedy.h
/// One-shot greedy construction: queries are processed in descending order
/// of their incident saving mass; each picks the plan with the smallest
/// marginal cost given earlier choices. Deterministic and near-instant —
/// the "cheap heuristic" yardstick in the experiment harness and the warm
/// start of the exact solvers.

#include "baselines/anytime.h"

namespace qmqo {
namespace baselines {

/// The greedy baseline (ignores the rng and budget; runs once).
class GreedySolver : public AnytimeOptimizer {
 public:
  GreedySolver() = default;

  std::string name() const override { return "GREEDY"; }

  Result<mqo::MqoSolution> Optimize(
      const mqo::MqoProblem& problem, const OptimizerBudget& budget,
      Rng* rng, const ProgressCallback& on_improvement) const override;

  /// Direct entry point without the anytime plumbing.
  static mqo::MqoSolution Construct(const mqo::MqoProblem& problem);
};

}  // namespace baselines
}  // namespace qmqo

#endif  // QMQO_BASELINES_GREEDY_H_
