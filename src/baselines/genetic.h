#ifndef QMQO_BASELINES_GENETIC_H_
#define QMQO_BASELINES_GENETIC_H_

/// \file genetic.h
/// Genetic algorithm for MQO, reimplementing the configuration the paper
/// benchmarks (JGAP 3.6.3 defaults): integer genome with one gene per query
/// (the chosen plan), single-point crossover at rate 0.35, per-gene
/// mutation at rate 1/12, and "top-n" natural selection that keeps the
/// population's best individuals each generation. Population sizes 50 and
/// 200 reproduce the paper's GA(50) / GA(200) series.

#include "baselines/anytime.h"

namespace qmqo {
namespace baselines {

/// Options for `GeneticAlgorithm`, defaults per the paper / JGAP.
struct GeneticOptions {
  int population_size = 50;
  /// Fraction of the population producing crossover offspring per
  /// generation.
  double crossover_rate = 0.35;
  /// Per-gene probability of mutating to a random plan.
  double mutation_rate = 1.0 / 12.0;
};

/// The GA baseline.
class GeneticAlgorithm : public AnytimeOptimizer {
 public:
  explicit GeneticAlgorithm(const GeneticOptions& options = GeneticOptions())
      : options_(options) {}

  std::string name() const override;

  Result<mqo::MqoSolution> Optimize(
      const mqo::MqoProblem& problem, const OptimizerBudget& budget,
      Rng* rng, const ProgressCallback& on_improvement) const override;

 private:
  GeneticOptions options_;
};

}  // namespace baselines
}  // namespace qmqo

#endif  // QMQO_BASELINES_GENETIC_H_
