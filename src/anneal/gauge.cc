#include "anneal/gauge.h"

#include <cassert>

namespace qmqo {
namespace anneal {

GaugeTransform GaugeTransform::Random(int num_spins, Rng* rng) {
  GaugeTransform gauge(num_spins);
  for (auto& sign : gauge.signs_) {
    sign = rng->Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
  }
  return gauge;
}

qubo::IsingProblem GaugeTransform::Apply(
    const qubo::IsingProblem& ising) const {
  assert(ising.num_spins() == num_spins());
  qubo::IsingProblem out(ising.num_spins());
  for (qubo::VarId i = 0; i < ising.num_spins(); ++i) {
    double h = ising.field(i);
    if (h != 0.0) {
      out.AddField(i, h * static_cast<double>(signs_[static_cast<size_t>(i)]));
    }
  }
  for (const qubo::Interaction& term : ising.couplings()) {
    out.AddCoupling(term.i, term.j,
                    term.weight *
                        static_cast<double>(signs_[static_cast<size_t>(term.i)]) *
                        static_cast<double>(signs_[static_cast<size_t>(term.j)]));
  }
  return out;
}

std::vector<int8_t> GaugeTransform::RestoreSpins(
    const std::vector<int8_t>& spins) const {
  assert(spins.size() == signs_.size());
  std::vector<int8_t> out(spins.size());
  for (size_t i = 0; i < spins.size(); ++i) {
    out[i] = static_cast<int8_t>(spins[i] * signs_[i]);
  }
  return out;
}

}  // namespace anneal
}  // namespace qmqo
