#ifndef QMQO_ANNEAL_SCHEDULE_H_
#define QMQO_ANNEAL_SCHEDULE_H_

/// \file schedule.h
/// Annealing schedules: inverse-temperature ramps for simulated annealing
/// and transverse-field ramps for simulated quantum annealing.

#include <utility>

#include "qubo/ising.h"

namespace qmqo {
namespace anneal {

/// Interpolation shape of a schedule.
enum class ScheduleShape {
  kLinear,
  kGeometric,
};

/// A monotone ramp from `start` to `end` over a fixed number of steps.
struct Schedule {
  double start = 0.1;
  double end = 10.0;
  ScheduleShape shape = ScheduleShape::kGeometric;

  /// Value at step `step` of `total` (step in [0, total-1]; total >= 1).
  double At(int step, int total) const;
};

/// Suggests an inverse-temperature range for an Ising problem following the
/// heuristic used by classical annealing samplers: the hot temperature
/// makes the largest local field flippable with probability ~1/2, the cold
/// temperature freezes the smallest nonzero field to acceptance ~1%.
std::pair<double, double> SuggestBetaRange(const qubo::IsingProblem& ising);

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_SCHEDULE_H_
