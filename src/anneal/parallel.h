#ifndef QMQO_ANNEAL_PARALLEL_H_
#define QMQO_ANNEAL_PARALLEL_H_

/// \file parallel.h
/// The shared parallel read engine of the annealing samplers.
///
/// Every sampler in this library runs `num_reads` *independent* anneals:
/// read r forks its own RNG stream (`rng.Fork(r)`), so reads can execute in
/// any order — and therefore on any thread — without changing a single
/// random draw. `RunReads` fans the reads across a reusable
/// `util::Executor` worker pool (caller-supplied, or the lazily-created
/// process-wide `util::Executor::Shared()` pool) instead of spawning
/// threads per call; each chunk accumulates its results into a chunk-local
/// `SampleSet`, and the locals are concatenated and finalized once at the
/// end. Because `SampleSet::Finalize` imposes a total order (energy, then
/// assignment) and merges duplicates, the finalized result is
/// **bit-identical** for every thread count, including the serial path.
///
/// Callers must finalize shared problem structures (`IsingProblem::Finalize`
/// / `QuboProblem::Finalize`) before entering the engine: lazy finalization
/// under concurrent const access would be a data race.

#include <functional>

#include "anneal/sample_set.h"
#include "util/executor.h"

namespace qmqo {
namespace anneal {

/// The shared thread-count resolution path (see util/executor.h): values
/// >= 1 pass through, anything else (0 = "auto") becomes the hardware
/// concurrency (at least 1).
using util::ResolveNumThreads;

/// Runs `run_read(read, &local)` for every read in [0, num_reads) across up
/// to `num_threads` concurrent chunks (0 = auto) and returns the finalized
/// union of the chunk-local sets. `run_read` must not touch shared mutable
/// state; exceptions thrown by a worker are rethrown on the calling thread.
/// `num_threads == 1` runs inline without touching any pool. `executor` is
/// the pool to run on; null means the process-wide shared pool. No threads
/// are ever spawned by this call itself. A positive `max_samples` applies
/// streaming top-k retention (see SampleSet::set_max_samples) to the
/// chunk-local sets and the returned union — the retained top-k stays
/// exact and bit-identical at any thread count, because an overall-top-k
/// assignment ranks in the top-k of every chunk it appears in.
SampleSet RunReads(int num_reads, int num_threads,
                   const std::function<void(int, SampleSet*)>& run_read,
                   util::Executor* executor = nullptr, int max_samples = 0);

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_PARALLEL_H_
