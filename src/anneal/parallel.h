#ifndef QMQO_ANNEAL_PARALLEL_H_
#define QMQO_ANNEAL_PARALLEL_H_

/// \file parallel.h
/// The shared parallel read engine of the annealing samplers.
///
/// Every sampler in this library runs `num_reads` *independent* anneals:
/// read r forks its own RNG stream (`rng.Fork(r)`), so reads can execute in
/// any order — and therefore on any thread — without changing a single
/// random draw. `RunReads` fans the reads across `std::thread` workers;
/// each worker accumulates its results into a thread-local `SampleSet`,
/// and the locals are concatenated and finalized once at the end. Because
/// `SampleSet::Finalize` imposes a total order (energy, then assignment)
/// and merges duplicates, the finalized result is **bit-identical** for
/// every thread count, including the serial path.
///
/// Callers must finalize shared problem structures (`IsingProblem::Finalize`
/// / `QuboProblem::Finalize`) before entering the engine: lazy finalization
/// under concurrent const access would be a data race.

#include <functional>

#include "anneal/sample_set.h"

namespace qmqo {
namespace anneal {

/// Resolves a requested worker count: values >= 1 pass through, anything
/// else (0 = "auto") becomes the hardware concurrency (at least 1).
int ResolveNumThreads(int requested);

/// Runs `run_read(read, &local)` for every read in [0, num_reads) across up
/// to `num_threads` workers (0 = auto) and returns the finalized union of
/// the thread-local sets. `run_read` must not touch shared mutable state;
/// exceptions thrown by a worker are rethrown on the calling thread.
/// `num_threads == 1` runs inline without spawning.
SampleSet RunReads(int num_reads, int num_threads,
                   const std::function<void(int, SampleSet*)>& run_read);

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_PARALLEL_H_
