#include "anneal/packed.h"

#include <cassert>

namespace qmqo {
namespace anneal {

void PackBytes(const uint8_t* bytes, int n, uint64_t* out) {
  const int words = PackedWordsForBits(n);
  for (int w = 0; w < words; ++w) out[w] = 0;
  for (int base = 0; base < n; base += 64) {
    uint64_t word = 0;
    const int limit = n - base < 64 ? n - base : 64;
    for (int bit = 0; bit < limit; ++bit) {
      // Assignments are 0/1 bytes; any nonzero byte packs as a set bit, so
      // the packed form canonicalizes what the byte form left implicit.
      word |= static_cast<uint64_t>(bytes[base + bit] != 0) << bit;
    }
    out[base / 64] = word;
  }
}

void PackSpins(const int8_t* spins, int n, uint64_t* out) {
  const int words = PackedWordsForBits(n);
  for (int w = 0; w < words; ++w) out[w] = 0;
  for (int base = 0; base < n; base += 64) {
    uint64_t word = 0;
    const int limit = n - base < 64 ? n - base : 64;
    for (int bit = 0; bit < limit; ++bit) {
      word |= static_cast<uint64_t>(spins[base + bit] > 0) << bit;
    }
    out[base / 64] = word;
  }
}

void UnpackBytes(const uint64_t* words, int n, uint8_t* out) {
  for (int i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>((words[i / 64] >> (i % 64)) & 1u);
  }
}

void UnpackSpins(const uint64_t* words, int n, int8_t* out) {
  for (int i = 0; i < n; ++i) {
    out[i] = (words[i / 64] >> (i % 64)) & 1u ? int8_t{1} : int8_t{-1};
  }
}

int AssignmentRef::PopCount() const {
  int count = 0;
  const int words = num_words();
  for (int w = 0; w < words; ++w) {
    count += __builtin_popcountll(words_[w]);
  }
  return count;
}

std::vector<uint8_t> AssignmentRef::ToBytes() const {
  std::vector<uint8_t> out(static_cast<size_t>(num_bits_));
  UnpackBytes(words_, num_bits_, out.data());
  return out;
}

std::vector<int8_t> AssignmentRef::ToSpins() const {
  std::vector<int8_t> out(static_cast<size_t>(num_bits_));
  UnpackSpins(words_, num_bits_, out.data());
  return out;
}

void AssignmentRef::CopyBytesTo(std::vector<uint8_t>* out) const {
  out->resize(static_cast<size_t>(num_bits_));
  UnpackBytes(words_, num_bits_, out->data());
}

void AssignmentRef::CopySpinsTo(std::vector<int8_t>* out) const {
  out->resize(static_cast<size_t>(num_bits_));
  UnpackSpins(words_, num_bits_, out->data());
}

int AssignmentRef::Compare(const AssignmentRef& other) const {
  assert(num_bits_ == other.num_bits_);
  const int words = num_words();
  for (int w = 0; w < words; ++w) {
    const uint64_t diff = words_[w] ^ other.words_[w];
    if (diff == 0) continue;
    // The lowest differing bit is the earliest differing byte position;
    // whichever side has it set holds byte 1 > 0 there.
    const int bit = __builtin_ctzll(diff);
    return (words_[w] >> bit) & 1u ? 1 : -1;
  }
  return 0;
}

void PackedAssignments::Reset(int num_bits) {
  assert(num_bits >= 0);
  num_bits_ = num_bits;
  words_per_ = num_bits > 0 ? PackedWordsForBits(num_bits) : 0;
  size_ = 0;
  words_.clear();
}

uint64_t* PackedAssignments::GrowOne(int n) {
  assert(n > 0);
  if (num_bits_ == 0) {
    Reset(n);
  } else {
    assert(n == num_bits_ && "all assignments in a pool share one width");
  }
  words_.resize(words_.size() + static_cast<size_t>(words_per_));
  const int slot = size_++;
  return words_.data() +
         static_cast<size_t>(slot) * static_cast<size_t>(words_per_);
}

int PackedAssignments::AppendBytes(const uint8_t* bytes, int n) {
  PackBytes(bytes, n, GrowOne(n));
  return size_ - 1;
}

int PackedAssignments::AppendSpins(const int8_t* spins, int n) {
  PackSpins(spins, n, GrowOne(n));
  return size_ - 1;
}

int PackedAssignments::AppendWords(const uint64_t* words) {
  assert(num_bits_ > 0);
  uint64_t* dst = GrowOne(num_bits_);
  std::memcpy(dst, words, sizeof(uint64_t) * static_cast<size_t>(words_per_));
  return size_ - 1;
}

int PackedAssignments::AppendAll(const PackedAssignments& other) {
  if (other.size_ == 0) return size_;
  if (num_bits_ == 0) {
    Reset(other.num_bits_);
  } else {
    assert(num_bits_ == other.num_bits_ &&
           "pools being combined must share one width");
  }
  const int base = size_;
  words_.insert(words_.end(), other.words_.begin(), other.words_.end());
  size_ += other.size_;
  return base;
}

void PackedAssignments::Truncate(int size) {
  assert(size >= 0 && size <= size_);
  words_.resize(static_cast<size_t>(size) * static_cast<size_t>(words_per_));
  size_ = size;
}

void PackedAssignments::Resize(int size) {
  assert(size >= 0);
  assert(num_bits_ > 0 && "Resize requires a fixed width (Reset first)");
  words_.resize(static_cast<size_t>(size) * static_cast<size_t>(words_per_),
                0);
  size_ = size;
}

void PackedAssignments::StoreBytes(int slot, const uint8_t* bytes, int n) {
  assert(slot >= 0 && slot < size_);
  assert(n == num_bits_);
  PackBytes(bytes, n,
            words_.data() +
                static_cast<size_t>(slot) * static_cast<size_t>(words_per_));
}

void PackedAssignments::StoreSpins(int slot, const int8_t* spins, int n) {
  assert(slot >= 0 && slot < size_);
  assert(n == num_bits_);
  PackSpins(spins, n,
            words_.data() +
                static_cast<size_t>(slot) * static_cast<size_t>(words_per_));
}

}  // namespace anneal
}  // namespace qmqo
