#include "anneal/sweep_kernel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/executor.h"

namespace qmqo {
namespace anneal {
namespace {

/// The original per-spin loop, byte-for-byte the pre-kernel-layer
/// implementation: ascending spin order, lazy per-proposal draws, exact
/// `std::exp`, incremental local fields. Its random stream is the frozen
/// bit-exactness contract of the default path.
void ScalarSweeps(const qubo::IsingProblem& ising, const Schedule& beta,
                  int sweeps, Rng* rng, std::vector<int8_t>* spins) {
  const int n = ising.num_spins();
  assert(static_cast<int>(spins->size()) == n);
  const qubo::CsrGraph& csr = ising.csr();
  const int32_t* offsets = csr.row_offsets.data();
  const qubo::VarId* ids = csr.neighbor_ids.data();
  const double* weights = csr.weights.data();
  const double* h = ising.fields().data();
  int8_t* s = spins->data();

  // Local fields: field[i] = h_i + sum_j J_ij s_j; flipping spin i changes
  // the energy by -2 s_i field[i] ... note the sign convention below.
  std::vector<double> field(static_cast<size_t>(n));
  for (qubo::VarId i = 0; i < n; ++i) {
    double f = h[i];
    for (int32_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      f += weights[e] * static_cast<double>(s[ids[e]]);
    }
    field[static_cast<size_t>(i)] = f;
  }
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double b = beta.At(sweep, sweeps);
    for (qubo::VarId i = 0; i < n; ++i) {
      double s_i = static_cast<double>(s[i]);
      // field[i] has no self term, so the flip delta is exact.
      double delta = -2.0 * s_i * field[static_cast<size_t>(i)];
      if (delta <= 0.0 ||
          rng->UniformReal(0.0, 1.0) < std::exp(-b * delta)) {
        s[i] = static_cast<int8_t>(-s_i);
        double change = -2.0 * s_i;
        for (int32_t e = offsets[i]; e < offsets[i + 1]; ++e) {
          field[static_cast<size_t>(ids[e])] += weights[e] * change;
        }
      }
    }
  }
}

/// The two-color sweep shared by `kCheckerboard` and `kCheckerboardFast`
/// (`fast` selects FastExp and the large-argument reject cutoff). The
/// whole read runs in the plan's color-major permuted space — spins and
/// fields are walked sequentially within a class, with no member
/// indirection — and is permuted back into `spins` at the end. Per class:
/// members are never adjacent, so no member's cached field depends on
/// another member's flip, making the decide results independent of apply
/// order. That admits two equivalent schedules: a fused decide-and-flip
/// pass (fastest serially), and a split pass whose decide half fans out
/// across the executor into per-index accept slots while the scatter
/// stays serial — bit-identical at any `sweep_threads`, because the
/// uniforms are drawn in the same per-class order either way.
void CheckerboardSweeps(const qubo::IsingProblem& ising, const SweepPlan& plan,
                        const Schedule& beta, int sweeps, bool fast, Rng* rng,
                        std::vector<int8_t>* spins, util::Executor* executor,
                        int sweep_threads) {
  const int n = ising.num_spins();
  assert(static_cast<int>(spins->size()) == n);
  const int32_t* offsets = plan.row_offsets().data();
  const qubo::VarId* ids = plan.neighbor_ids().data();
  const double* weights = plan.weights().data();
  const double* h = plan.fields().data();
  const qubo::Coloring& coloring = plan.coloring();
  // class_members concatenated in color order IS the permuted->original
  // map; class c occupies the contiguous permuted range
  // [class_offsets[c], class_offsets[c+1]).
  const qubo::VarId* to_original = coloring.class_members.data();

  std::vector<int8_t> permuted(static_cast<size_t>(n));
  int8_t* s = permuted.data();
  for (int q = 0; q < n; ++q) {
    s[q] = (*spins)[static_cast<size_t>(to_original[q])];
  }
  std::vector<double> field(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    double f = h[q];
    for (int32_t e = offsets[q]; e < offsets[q + 1]; ++e) {
      f += weights[e] * static_cast<double>(s[ids[e]]);
    }
    field[static_cast<size_t>(q)] = f;
  }

  std::vector<double> uniforms(static_cast<size_t>(plan.max_class_size()));
  std::vector<uint8_t> accept(uniforms.size());
  double* u = uniforms.data();
  uint8_t* a = accept.data();
  // Bulk randomness comes from a xoshiro256++ stream seeded once per read
  // from the read's Rng — the mt19937_64 draw itself (~12 ns) would
  // otherwise dominate the sweep (the ROADMAP's "vectorized xoshiro"
  // lever). One parent draw keeps determinism hanging off the seed.
  FastRng fast_rng(rng->Next());

  auto flip = [&](qubo::VarId q) {
    double change = -2.0 * static_cast<double>(s[q]);
    s[q] = static_cast<int8_t>(-s[q]);
    for (int32_t e = offsets[q]; e < offsets[q + 1]; ++e) {
      field[static_cast<size_t>(ids[e])] += weights[e] * change;
    }
  };
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    const double b = beta.At(sweep, sweeps);
    for (int c = 0; c < coloring.num_colors; ++c) {
      const int begin_q = coloring.class_offsets[static_cast<size_t>(c)];
      const int count = coloring.class_size(c);

      if (sweep_threads == 1) {
        // Fused decide-and-flip, drawing inline: NextUniform() at member k
        // yields exactly FillUniform's u[k], so this path is bit-identical
        // to the split path below while skipping the buffer round trip.
        if (fast) {
          for (int q = begin_q; q < begin_q + count; ++q) {
            double u_k = fast_rng.NextUniform();
            // arg = -b * delta; arg >= 0 is the downhill delta <= 0 case.
            double arg = 2.0 * b * static_cast<double>(s[q]) *
                         field[static_cast<size_t>(q)];
            if (arg >= 0.0 || u_k < FastExp(arg)) flip(q);
          }
        } else {
          for (int q = begin_q; q < begin_q + count; ++q) {
            double u_k = fast_rng.NextUniform();
            double delta = -2.0 * static_cast<double>(s[q]) *
                           field[static_cast<size_t>(q)];
            if (delta <= 0.0 || u_k < std::exp(-b * delta)) flip(q);
          }
        }
        continue;
      }
      fast_rng.FillUniform(u, count);

      // 0 = hardware concurrency (resolved by Executor::Run).
      util::Executor::Run(
          executor, count, sweep_threads,
          [&](int begin, int end, int chunk) {
            (void)chunk;
            if (fast) {
              for (int k = begin; k < end; ++k) {
                qubo::VarId q = begin_q + k;
                double arg = 2.0 * b * static_cast<double>(s[q]) *
                             field[static_cast<size_t>(q)];
                a[k] = arg >= 0.0 || u[k] < FastExp(arg);
              }
            } else {
              for (int k = begin; k < end; ++k) {
                qubo::VarId q = begin_q + k;
                double delta = -2.0 * static_cast<double>(s[q]) *
                               field[static_cast<size_t>(q)];
                a[k] = delta <= 0.0 || u[k] < std::exp(-b * delta);
              }
            }
          });
      for (int k = 0; k < count; ++k) {
        if (a[k]) flip(begin_q + k);
      }
    }
  }

  for (int q = 0; q < n; ++q) {
    (*spins)[static_cast<size_t>(to_original[q])] = s[q];
  }
}

}  // namespace

SweepPlan::SweepPlan(const qubo::IsingProblem& ising)
    : coloring_(qubo::ColorGraph(ising.csr())) {
  // Renumber vertices color-major: permuted id q maps to original vertex
  // class_members[q]. Rebuild CSR, weights, and fields in that space so
  // the class pass reads everything sequentially.
  const qubo::CsrGraph& csr = ising.csr();
  const int n = csr.num_vars();
  std::vector<qubo::VarId> to_permuted(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    to_permuted[static_cast<size_t>(coloring_.class_members[q])] = q;
  }
  row_offsets_.resize(static_cast<size_t>(n) + 1);
  row_offsets_[0] = 0;
  neighbor_ids_.resize(csr.neighbor_ids.size());
  weights_.resize(csr.weights.size());
  fields_.resize(static_cast<size_t>(n));
  const std::vector<double>& h = ising.fields();
  int32_t cursor = 0;
  for (int q = 0; q < n; ++q) {
    qubo::VarId v = coloring_.class_members[static_cast<size_t>(q)];
    fields_[static_cast<size_t>(q)] = h[static_cast<size_t>(v)];
    for (int32_t e = csr.row_offsets[static_cast<size_t>(v)];
         e < csr.row_offsets[static_cast<size_t>(v) + 1]; ++e) {
      neighbor_ids_[static_cast<size_t>(cursor)] =
          to_permuted[static_cast<size_t>(csr.neighbor_ids[static_cast<size_t>(e)])];
      weights_[static_cast<size_t>(cursor)] = csr.weights[static_cast<size_t>(e)];
      ++cursor;
    }
    row_offsets_[static_cast<size_t>(q) + 1] = cursor;
  }
}

const char* SweepKernelName(SweepKernel kernel) {
  switch (kernel) {
    case SweepKernel::kScalar:
      return "scalar";
    case SweepKernel::kCheckerboard:
      return "checkerboard";
    case SweepKernel::kCheckerboardFast:
      return "checkerboard_fast";
  }
  return "scalar";
}

bool ParseSweepKernel(const std::string& name, SweepKernel* kernel) {
  if (name == "scalar") {
    *kernel = SweepKernel::kScalar;
  } else if (name == "checkerboard") {
    *kernel = SweepKernel::kCheckerboard;
  } else if (name == "checkerboard_fast") {
    *kernel = SweepKernel::kCheckerboardFast;
  } else {
    return false;
  }
  return true;
}

void RandomSpins(Rng* rng, std::vector<int8_t>* spins) {
  for (auto& s : *spins) {
    s = rng->Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
  }
}

void RandomSpinsBatched(Rng* rng, std::vector<int8_t>* spins) {
  int8_t* s = spins->data();
  const size_t n = spins->size();
  for (size_t base = 0; base < n; base += 64) {
    uint64_t word = rng->Next();
    const size_t limit = std::min<size_t>(64, n - base);
    for (size_t bit = 0; bit < limit; ++bit) {
      s[base + bit] = (word >> bit) & 1 ? int8_t{1} : int8_t{-1};
    }
  }
}

void InitSpins(SweepKernel kernel, Rng* rng, std::vector<int8_t>* spins) {
  if (kernel == SweepKernel::kScalar) {
    RandomSpins(rng, spins);
  } else {
    RandomSpinsBatched(rng, spins);
  }
}

void RunSweeps(const qubo::IsingProblem& ising, const SweepPlan* plan,
               const Schedule& beta, int sweeps, SweepKernel kernel, Rng* rng,
               std::vector<int8_t>* spins, util::Executor* executor,
               int sweep_threads) {
  if (kernel == SweepKernel::kScalar) {
    ScalarSweeps(ising, beta, sweeps, rng, spins);
    return;
  }
  assert(plan != nullptr);
  CheckerboardSweeps(ising, *plan, beta, sweeps,
                     kernel == SweepKernel::kCheckerboardFast, rng, spins,
                     executor, sweep_threads);
}

}  // namespace anneal
}  // namespace qmqo
