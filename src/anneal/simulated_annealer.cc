#include "anneal/simulated_annealer.h"

#include <cassert>
#include <cmath>

namespace qmqo {
namespace anneal {
namespace {

/// Fills `spins` with uniform random ±1.
void RandomSpins(Rng* rng, std::vector<int8_t>* spins) {
  for (auto& s : *spins) {
    s = rng->Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
  }
}

Schedule ResolveBeta(const qubo::IsingProblem& ising, const Schedule& beta) {
  if (beta.start > 0.0 && beta.end > 0.0) return beta;
  auto [hot, cold] = SuggestBetaRange(ising);
  Schedule resolved = beta;
  resolved.start = hot;
  resolved.end = cold;
  return resolved;
}

}  // namespace

void AnnealIsingOnce(const qubo::IsingProblem& ising, const Schedule& beta,
                     int sweeps, Rng* rng, std::vector<int8_t>* spins) {
  const int n = ising.num_spins();
  assert(static_cast<int>(spins->size()) == n);
  // Local fields: field[i] = h_i + sum_j J_ij s_j; flipping spin i changes
  // the energy by -2 s_i field[i] ... note the sign convention below.
  std::vector<double> field(static_cast<size_t>(n));
  for (qubo::VarId i = 0; i < n; ++i) {
    double f = ising.field(i);
    for (const auto& [j, w] : ising.neighbors(i)) {
      f += w * static_cast<double>((*spins)[static_cast<size_t>(j)]);
    }
    field[static_cast<size_t>(i)] = f;
  }
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double b = beta.At(sweep, sweeps);
    for (qubo::VarId i = 0; i < n; ++i) {
      double s_i = static_cast<double>((*spins)[static_cast<size_t>(i)]);
      // field[i] has no self term, so the flip delta is exact.
      double delta = -2.0 * s_i * field[static_cast<size_t>(i)];
      if (delta <= 0.0 ||
          rng->UniformReal(0.0, 1.0) < std::exp(-b * delta)) {
        (*spins)[static_cast<size_t>(i)] = static_cast<int8_t>(-s_i);
        double change = -2.0 * s_i;
        for (const auto& [j, w] : ising.neighbors(i)) {
          field[static_cast<size_t>(j)] += w * change;
        }
      }
    }
  }
}

SampleSet SimulatedAnnealer::SampleIsing(const qubo::IsingProblem& ising) const {
  Schedule beta = ResolveBeta(ising, options_.beta);
  Rng rng(options_.seed);
  SampleSet out;
  std::vector<int8_t> spins(static_cast<size_t>(ising.num_spins()));
  for (int read = 0; read < options_.num_reads; ++read) {
    Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
    RandomSpins(&read_rng, &spins);
    AnnealIsingOnce(ising, beta, options_.sweeps_per_read, &read_rng, &spins);
    out.Add(qubo::SpinsToAssignment(spins), ising.Energy(spins));
  }
  out.Finalize();
  return out;
}

SampleSet SimulatedAnnealer::Sample(const qubo::QuboProblem& problem) const {
  qubo::IsingWithOffset converted = qubo::QuboToIsing(problem);
  SampleSet ising_samples = SampleIsing(converted.ising);
  // Re-express energies on the QUBO scale.
  SampleSet out;
  for (const anneal::Sample& sample : ising_samples.samples()) {
    for (int k = 0; k < sample.num_occurrences; ++k) {
      out.Add(sample.assignment, sample.energy + converted.offset);
    }
  }
  out.Finalize();
  return out;
}

}  // namespace anneal
}  // namespace qmqo
