#include "anneal/simulated_annealer.h"

#include <cassert>
#include <cmath>
#include <optional>

#include "anneal/parallel.h"

namespace qmqo {
namespace anneal {
namespace {

Schedule ResolveBeta(const qubo::IsingProblem& ising, const Schedule& beta) {
  if (beta.start > 0.0 && beta.end > 0.0) return beta;
  auto [hot, cold] = SuggestBetaRange(ising);
  Schedule resolved = beta;
  resolved.start = hot;
  resolved.end = cold;
  return resolved;
}

}  // namespace

SampleSet SimulatedAnnealer::SampleIsing(const qubo::IsingProblem& ising) const {
  Schedule beta = ResolveBeta(ising, options_.beta);
  ising.Finalize();  // shared across worker threads
  Rng rng(options_.seed);
  const size_t n = static_cast<size_t>(ising.num_spins());
  // The color classes are a per-problem precomputation shared (read-only)
  // by every read; the scalar kernel never needs them.
  std::optional<SweepPlan> plan;
  if (options_.sweep_kernel != SweepKernel::kScalar) plan.emplace(ising);
  const SweepPlan* plan_ptr = plan ? &*plan : nullptr;
  return RunReads(
      options_.num_reads, options_.num_threads,
      [&, beta](int read, SampleSet* local) {
        Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
        std::vector<int8_t> spins(n);
        InitSpins(options_.sweep_kernel, &read_rng, &spins);
        RunSweeps(ising, plan_ptr, beta, options_.sweeps_per_read,
                  options_.sweep_kernel, &read_rng, &spins, options_.executor,
                  options_.sweep_threads);
        // Read-out appends the spins bit-packed into the chunk-local
        // arena: no per-read byte vector, no per-sample heap allocation.
        local->AddSpins(spins, ising.Energy(spins));
      },
      options_.executor, options_.max_samples);
}

SampleSet SimulatedAnnealer::Sample(const qubo::QuboProblem& problem) const {
  qubo::IsingWithOffset converted = qubo::QuboToIsing(problem);
  SampleSet out = SampleIsing(converted.ising);
  // Re-express energies on the QUBO scale (a uniform in-place shift; the
  // energy order and occurrence counts are unchanged).
  out.AddEnergyOffset(converted.offset);
  return out;
}

}  // namespace anneal
}  // namespace qmqo
