#include "anneal/simulated_annealer.h"

#include <cassert>
#include <cmath>

#include "anneal/parallel.h"

namespace qmqo {
namespace anneal {
namespace {

/// Fills `spins` with uniform random ±1.
void RandomSpins(Rng* rng, std::vector<int8_t>* spins) {
  for (auto& s : *spins) {
    s = rng->Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
  }
}

Schedule ResolveBeta(const qubo::IsingProblem& ising, const Schedule& beta) {
  if (beta.start > 0.0 && beta.end > 0.0) return beta;
  auto [hot, cold] = SuggestBetaRange(ising);
  Schedule resolved = beta;
  resolved.start = hot;
  resolved.end = cold;
  return resolved;
}

}  // namespace

void AnnealIsingOnce(const qubo::IsingProblem& ising, const Schedule& beta,
                     int sweeps, Rng* rng, std::vector<int8_t>* spins) {
  const int n = ising.num_spins();
  assert(static_cast<int>(spins->size()) == n);
  const qubo::CsrGraph& csr = ising.csr();
  const int32_t* offsets = csr.row_offsets.data();
  const qubo::VarId* ids = csr.neighbor_ids.data();
  const double* weights = csr.weights.data();
  const double* h = ising.fields().data();
  int8_t* s = spins->data();

  // Local fields: field[i] = h_i + sum_j J_ij s_j; flipping spin i changes
  // the energy by -2 s_i field[i] ... note the sign convention below.
  std::vector<double> field(static_cast<size_t>(n));
  for (qubo::VarId i = 0; i < n; ++i) {
    double f = h[i];
    for (int32_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      f += weights[e] * static_cast<double>(s[ids[e]]);
    }
    field[static_cast<size_t>(i)] = f;
  }
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    double b = beta.At(sweep, sweeps);
    for (qubo::VarId i = 0; i < n; ++i) {
      double s_i = static_cast<double>(s[i]);
      // field[i] has no self term, so the flip delta is exact.
      double delta = -2.0 * s_i * field[static_cast<size_t>(i)];
      if (delta <= 0.0 ||
          rng->UniformReal(0.0, 1.0) < std::exp(-b * delta)) {
        s[i] = static_cast<int8_t>(-s_i);
        double change = -2.0 * s_i;
        for (int32_t e = offsets[i]; e < offsets[i + 1]; ++e) {
          field[static_cast<size_t>(ids[e])] += weights[e] * change;
        }
      }
    }
  }
}

SampleSet SimulatedAnnealer::SampleIsing(const qubo::IsingProblem& ising) const {
  Schedule beta = ResolveBeta(ising, options_.beta);
  ising.Finalize();  // shared across worker threads
  Rng rng(options_.seed);
  const size_t n = static_cast<size_t>(ising.num_spins());
  return RunReads(
      options_.num_reads, options_.num_threads,
      [&, beta](int read, SampleSet* local) {
        Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
        std::vector<int8_t> spins(n);
        RandomSpins(&read_rng, &spins);
        AnnealIsingOnce(ising, beta, options_.sweeps_per_read, &read_rng,
                        &spins);
        local->Add(qubo::SpinsToAssignment(spins), ising.Energy(spins));
      },
      options_.executor);
}

SampleSet SimulatedAnnealer::Sample(const qubo::QuboProblem& problem) const {
  qubo::IsingWithOffset converted = qubo::QuboToIsing(problem);
  SampleSet out = SampleIsing(converted.ising);
  // Re-express energies on the QUBO scale (a uniform in-place shift; the
  // energy order and occurrence counts are unchanged).
  out.AddEnergyOffset(converted.offset);
  return out;
}

}  // namespace anneal
}  // namespace qmqo
