#ifndef QMQO_ANNEAL_DWAVE_SIMULATOR_H_
#define QMQO_ANNEAL_DWAVE_SIMULATOR_H_

/// \file dwave_simulator.h
/// A software model of the D-Wave 2X device (the hardware substitution for
/// this reproduction; see DESIGN.md).
///
/// What the model reproduces about the real device:
///  * input format: a physical QUBO (already embedded onto the hardware
///    graph);
///  * weight ranges: problems are auto-scaled so |h| <= h_range and
///    |J| <= j_range, exactly like the SAPI auto-scale;
///  * imperfect control ("integrated control errors" / imperfect
///    shielding): per-programming Gaussian noise on h and J, which is the
///    reason annealing runs do not always return the optimum;
///  * gauge transformations: reads are split across `num_gauges` random
///    spin-reversal transforms (paper: 10 gauges x 100 reads);
///  * timing: each read is charged the paper's 129 us anneal + 247 us
///    read-out = 376 us of *modeled device time*; the simulator's own wall
///    clock is reported separately and never stands in for device time.
///
/// The sampling itself is performed by simulated annealing (default) or
/// simulated quantum annealing on the noisy, gauged Ising problem.

#include <cstdint>
#include <vector>

#include "anneal/packed.h"
#include "anneal/sample_set.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace util {
class Executor;
class FaultInjector;
}  // namespace util

namespace anneal {

/// Backend used to draw samples from the device model.
enum class DeviceBackend {
  kSimulatedAnnealing,
  kSimulatedQuantumAnnealing,
};

/// Options for `DWaveSimulator`, defaults mirroring the paper's setup.
struct DWaveOptions {
  /// Total reads (paper: 1000).
  int num_reads = 1000;
  /// Random gauges; reads are split evenly (paper: 10).
  int num_gauges = 10;
  /// Modeled device timing per read, microseconds (paper Section 7.1).
  double anneal_time_us = 129.0;
  double readout_time_us = 247.0;
  /// Hardware weight ranges (D-Wave 2X: h in [-2,2], J in [-1,1]).
  double h_range = 2.0;
  double j_range = 1.0;
  /// Control-error stddev as a fraction of the full weight range, applied
  /// per programming cycle (per gauge). 0 disables noise. The default is
  /// calibrated so the first-read quality gap on the paper workload is a
  /// few percent, matching the paper's reported 1.5% run-1 vs run-1000 gap.
  double control_error = 0.01;
  /// Inner sampler.
  DeviceBackend backend = DeviceBackend::kSimulatedAnnealing;
  /// Sweeps per read for the SA backend. Bounded so the per-read quality
  /// models the hardware's imperfect (but good) convergence.
  int sa_sweeps = 256;
  /// Options for the SQA backend (its num_reads/seed fields are ignored).
  SqaOptions sqa;
  /// Keep every read in chronological order in `DeviceResult::raw_reads`
  /// (needed for best-after-k-runs curves; costs memory).
  bool record_reads = false;
  uint64_t seed = 7;
  /// Worker threads for the read loop within each programming cycle:
  /// 1 = serial (default, keeps `wall_clock_ms` comparable across
  /// machines), 0 = hardware concurrency. Results are bit-identical for
  /// every thread count (see anneal/parallel.h).
  int num_threads = 1;
  /// Worker pool shared by all gauges of a `Sample` call (and by the SQA
  /// backend); null = the process-wide `util::Executor::Shared()` pool.
  /// Either way the pool is created once and reused — a device call spawns
  /// zero threads per gauge. Never owned.
  util::Executor* executor = nullptr;
  /// Metropolis sweep kernel for both backends (see anneal/sweep_kernel.h):
  /// `kScalar` (default) keeps the frozen bit-exact streams; the
  /// checkerboard kernels trade them for throughput. Gauge transforms,
  /// control-error noise, and read forking are kernel-independent.
  SweepKernel sweep_kernel = SweepKernel::kScalar;
  /// Streaming top-k retention for `DeviceResult::samples` (0 = unlimited),
  /// applied per gauge and to the final union; `raw_reads` is unaffected.
  /// See SaOptions::max_samples.
  int max_samples = 0;
  /// Fault injection (never owned; null = no faults, one pointer test on
  /// the hot path). Sites queried by the device model:
  ///   "device.program"      per programming cycle (key: epoch x gauges +
  ///                         gauge) — the whole call fails with an error;
  ///   "device.latency"      per programming cycle (same key) — adds the
  ///                         spec's latency_ms to `injected_latency_ms`;
  ///   "device.read_dropout" per read (key: epoch << 32 | chronological
  ///                         read index) — the read is lost: absent from
  ///                         `samples` and `raw_reads`;
  ///   "device.stuck_qubit"  per physical variable (key: compact index;
  ///                         epoch-independent — dead qubits stay dead) —
  ///                         every read reports the stuck value there;
  ///   "device.chain_break"  per read (key as read_dropout) — `intensity`
  ///                         deterministically chosen spins are flipped
  ///                         after annealing, forcing broken chains.
  /// Decisions are pure in (injector seed, site, key): results stay
  /// bit-identical at any thread count with faults armed.
  const util::FaultInjector* faults = nullptr;
  /// Epoch mixed into per-cycle/per-read fault keys, so an orchestrator
  /// retrying a call (fresh gauges) draws fresh fault decisions. Keyed
  /// schedules ("fail the first N cycles") span epochs when the caller
  /// increments this by 1 per attempt.
  uint64_t fault_epoch = 0;
};

/// Per-gauge (programming-cycle) timing, recorded serially in gauge order
/// so observability layers can build one span per gauge without threading
/// a tracer through the device. `wall_ms` is nondeterministic; everything
/// else is pure in (options, seed, faults).
struct GaugeTiming {
  int gauge = 0;
  int reads = 0;          ///< reads scheduled for this gauge
  int dropped_reads = 0;  ///< reads lost to injected dropout in this gauge
  double wall_ms = 0.0;   ///< wall time of this programming cycle
  double injected_latency_ms = 0.0;  ///< latency faults fired this cycle
};

/// Result of one device call.
struct DeviceResult {
  /// Samples over the physical variables, energies w.r.t. the *original*
  /// (unscaled, noise-free) physical QUBO.
  SampleSet samples;
  /// All reads in chronological order (only when
  /// `DWaveOptions::record_reads`), bit-packed at 64 qubits per word: the
  /// paper-scale 1000 reads x 1152 qubits cost ~144 KB of flat words
  /// instead of ~1.2 MB of per-read byte vectors. Iterate for
  /// `AssignmentRef` views or unpack per read (`raw_reads[i].ToBytes()`).
  PackedAssignments raw_reads;
  /// Modeled device time: num_reads * (anneal + readout), microseconds.
  double device_time_us = 0.0;
  /// Actual wall-clock simulation time, milliseconds.
  double wall_clock_ms = 0.0;
  /// Factor the weights were multiplied by to fit the hardware range.
  double scale_factor = 1.0;
  /// Faults fired inside this call (0 without an armed injector).
  int64_t faults_injected = 0;
  /// Reads lost to injected read dropout.
  int dropped_reads = 0;
  /// Modeled latency injected by "device.latency" faults, milliseconds
  /// (not included in `device_time_us`; callers charge it to deadlines).
  double injected_latency_ms = 0.0;
  /// One entry per executed programming cycle, in gauge order.
  std::vector<GaugeTiming> gauge_timings;
};

/// The device façade.
class DWaveSimulator {
 public:
  explicit DWaveSimulator(const DWaveOptions& options) : options_(options) {}

  /// Draws samples for a physical QUBO. Fails on invalid option
  /// combinations (no reads, no gauges).
  Result<DeviceResult> Sample(const qubo::QuboProblem& physical) const;

  /// Modeled device time for `num_reads` reads under these options, in
  /// microseconds (pure arithmetic; exposed for time-to-quality plots).
  double DeviceTimeForReads(int num_reads) const {
    return static_cast<double>(num_reads) *
           (options_.anneal_time_us + options_.readout_time_us);
  }

  const DWaveOptions& options() const { return options_; }

 private:
  DWaveOptions options_;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_DWAVE_SIMULATOR_H_
