#ifndef QMQO_ANNEAL_GAUGE_H_
#define QMQO_ANNEAL_GAUGE_H_

/// \file gauge.h
/// Gauge transformations (spin-reversal transforms).
///
/// A gauge g in {-1,+1}^n maps an Ising problem to an equivalent one with
/// h'_i = g_i h_i and J'_ij = g_i g_j J_ij; a state s' of the transformed
/// problem corresponds to s_i = g_i s'_i with identical energy. Annealing
/// hardware has small per-qubit biases favoring one state; averaging over
/// random gauges cancels them (Section 7.1 of the paper: 10 gauges x 100
/// reads).

#include <cstdint>
#include <vector>

#include "qubo/ising.h"
#include "util/rng.h"

namespace qmqo {
namespace anneal {

/// One spin-reversal transform.
class GaugeTransform {
 public:
  /// The identity gauge.
  explicit GaugeTransform(int num_spins)
      : signs_(static_cast<size_t>(num_spins), 1) {}

  /// A uniformly random gauge.
  static GaugeTransform Random(int num_spins, Rng* rng);

  int num_spins() const { return static_cast<int>(signs_.size()); }
  const std::vector<int8_t>& signs() const { return signs_; }

  /// The transformed (equivalent) problem.
  qubo::IsingProblem Apply(const qubo::IsingProblem& ising) const;

  /// Maps a state of the transformed problem back to the original frame.
  std::vector<int8_t> RestoreSpins(const std::vector<int8_t>& spins) const;

 private:
  std::vector<int8_t> signs_;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_GAUGE_H_
