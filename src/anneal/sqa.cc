#include "anneal/sqa.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace qmqo {
namespace anneal {
namespace {

/// Energy delta on the problem Hamiltonian for flipping spin i of slice k.
double ProblemDelta(const qubo::IsingProblem& ising,
                    const std::vector<int8_t>& slice, qubo::VarId i) {
  double field = ising.field(i);
  for (const auto& [j, w] : ising.neighbors(i)) {
    field += w * static_cast<double>(slice[static_cast<size_t>(j)]);
  }
  return -2.0 * static_cast<double>(slice[static_cast<size_t>(i)]) * field;
}

}  // namespace

SampleSet SimulatedQuantumAnnealer::SampleIsing(
    const qubo::IsingProblem& ising) const {
  const int n = ising.num_spins();
  const int p = options_.num_slices;
  assert(p >= 2);
  const double beta_slice = options_.beta / static_cast<double>(p);
  Rng rng(options_.seed);
  SampleSet out;

  for (int read = 0; read < options_.num_reads; ++read) {
    Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
    // slices[k][i]: spin i of replica k.
    std::vector<std::vector<int8_t>> slices(
        static_cast<size_t>(p), std::vector<int8_t>(static_cast<size_t>(n)));
    for (auto& slice : slices) {
      for (auto& s : slice) {
        s = read_rng.Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
      }
    }

    for (int step = 0; step < options_.sweeps; ++step) {
      double gamma = options_.gamma.At(step, options_.sweeps);
      gamma = std::max(gamma, 1e-9);
      // Inter-slice ferromagnetic coupling; positive, diverging as
      // gamma -> 0. The energy term is −j_perp * s_{k,i} * s_{k+1,i}.
      double j_perp =
          -0.5 / beta_slice * std::log(std::tanh(beta_slice * gamma));

      // Single-site Metropolis moves, slice by slice.
      for (int k = 0; k < p; ++k) {
        auto& slice = slices[static_cast<size_t>(k)];
        const auto& prev = slices[static_cast<size_t>((k + p - 1) % p)];
        const auto& next = slices[static_cast<size_t>((k + 1) % p)];
        for (qubo::VarId i = 0; i < n; ++i) {
          double delta = ProblemDelta(ising, slice, i);
          // Kinetic part: flipping s_{k,i} changes
          // −j_perp*s_{k,i}(s_{k-1,i}+s_{k+1,i}) by:
          double s_i = static_cast<double>(slice[static_cast<size_t>(i)]);
          double neighbors_sum =
              static_cast<double>(prev[static_cast<size_t>(i)]) +
              static_cast<double>(next[static_cast<size_t>(i)]);
          double kinetic = 2.0 * j_perp * s_i * neighbors_sum;
          double total = delta + kinetic;
          if (total <= 0.0 || read_rng.UniformReal(0.0, 1.0) <
                                  std::exp(-beta_slice * total)) {
            slice[static_cast<size_t>(i)] =
                static_cast<int8_t>(-slice[static_cast<size_t>(i)]);
          }
        }
      }
      // Global moves: flip spin i in all slices (kinetic term invariant).
      for (qubo::VarId i = 0; i < n; ++i) {
        double delta = 0.0;
        for (int k = 0; k < p; ++k) {
          delta += ProblemDelta(ising, slices[static_cast<size_t>(k)], i);
        }
        if (delta <= 0.0 || read_rng.UniformReal(0.0, 1.0) <
                                std::exp(-beta_slice * delta)) {
          for (int k = 0; k < p; ++k) {
            auto& s = slices[static_cast<size_t>(k)][static_cast<size_t>(i)];
            s = static_cast<int8_t>(-s);
          }
        }
      }
    }

    // Read out the best slice.
    double best_energy = std::numeric_limits<double>::infinity();
    const std::vector<int8_t>* best_slice = nullptr;
    for (const auto& slice : slices) {
      double energy = ising.Energy(slice);
      if (energy < best_energy) {
        best_energy = energy;
        best_slice = &slice;
      }
    }
    out.Add(qubo::SpinsToAssignment(*best_slice), best_energy);
  }
  out.Finalize();
  return out;
}

SampleSet SimulatedQuantumAnnealer::Sample(const qubo::QuboProblem& problem) const {
  qubo::IsingWithOffset converted = qubo::QuboToIsing(problem);
  SampleSet ising_samples = SampleIsing(converted.ising);
  SampleSet out;
  for (const anneal::Sample& sample : ising_samples.samples()) {
    for (int k = 0; k < sample.num_occurrences; ++k) {
      out.Add(sample.assignment, sample.energy + converted.offset);
    }
  }
  out.Finalize();
  return out;
}

}  // namespace anneal
}  // namespace qmqo
