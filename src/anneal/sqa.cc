#include "anneal/sqa.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>

#include "anneal/parallel.h"

namespace qmqo {
namespace anneal {
namespace {

/// Per-read state of the path-integral simulation: P replicas of the spin
/// vector plus, for each replica, the cached local problem fields
///   field[k][i] = h_i + sum_j J_ij s_{k,j},
/// maintained incrementally on every accepted flip (mirroring the SA
/// kernel) so a Metropolis move costs O(1) to evaluate and O(degree) only
/// when accepted — instead of O(degree) recomputation per *proposal*.
class SqaState {
 public:
  SqaState(const qubo::IsingProblem& ising, int num_slices, SweepKernel kernel,
           Rng* rng)
      : ising_(ising),
        n_(ising.num_spins()),
        p_(num_slices),
        spins_(static_cast<size_t>(num_slices) * static_cast<size_t>(n_)),
        fields_(spins_.size()) {
    // Kernel-matched initialization: the scalar kernel keeps the frozen
    // one-Bernoulli-per-spin stream, the checkerboard kernels bit-unpack
    // 64 spins per draw.
    InitSpins(kernel, rng, &spins_);
    const qubo::CsrGraph& csr = ising_.csr();
    const double* h = ising_.fields().data();
    for (int k = 0; k < p_; ++k) {
      const int8_t* slice = slice_spins(k);
      double* field = slice_fields(k);
      for (qubo::VarId i = 0; i < n_; ++i) {
        double f = h[i];
        for (int32_t e = csr.row_offsets[static_cast<size_t>(i)];
             e < csr.row_offsets[static_cast<size_t>(i) + 1]; ++e) {
          f += csr.weights[static_cast<size_t>(e)] *
               static_cast<double>(slice[csr.neighbor_ids[static_cast<size_t>(e)]]);
        }
        field[i] = f;
      }
    }
  }

  int8_t* slice_spins(int k) {
    return spins_.data() + static_cast<size_t>(k) * static_cast<size_t>(n_);
  }
  const int8_t* slice_spins(int k) const {
    return spins_.data() + static_cast<size_t>(k) * static_cast<size_t>(n_);
  }
  double* slice_fields(int k) {
    return fields_.data() + static_cast<size_t>(k) * static_cast<size_t>(n_);
  }

  /// Problem-energy delta for flipping spin i of slice k; O(1).
  double ProblemDelta(int k, qubo::VarId i) const {
    return -2.0 *
           static_cast<double>(
               spins_[static_cast<size_t>(k) * static_cast<size_t>(n_) +
                      static_cast<size_t>(i)]) *
           fields_[static_cast<size_t>(k) * static_cast<size_t>(n_) +
                   static_cast<size_t>(i)];
  }

  /// Flips spin i of slice k and updates the slice's cached fields.
  void Flip(int k, qubo::VarId i) {
    int8_t* slice = slice_spins(k);
    double* field = slice_fields(k);
    const qubo::CsrGraph& csr = ising_.csr();
    double change = -2.0 * static_cast<double>(slice[i]);
    slice[i] = static_cast<int8_t>(-slice[i]);
    for (int32_t e = csr.row_offsets[static_cast<size_t>(i)];
         e < csr.row_offsets[static_cast<size_t>(i) + 1]; ++e) {
      field[csr.neighbor_ids[static_cast<size_t>(e)]] +=
          csr.weights[static_cast<size_t>(e)] * change;
    }
  }

  /// Exact energy of slice k (recomputed from scratch; used for read-out
  /// only, so cached-field drift never reaches reported energies).
  double SliceEnergy(int k) const {
    std::vector<int8_t> slice(slice_spins(k), slice_spins(k) + n_);
    return ising_.Energy(slice);
  }

 private:
  const qubo::IsingProblem& ising_;
  int n_;
  int p_;
  std::vector<int8_t> spins_;
  std::vector<double> fields_;
};

/// The original slice loop: ascending spin order within each slice, lazy
/// per-proposal draws, exact `std::exp`. Frozen — the SQA bit-exactness
/// reference.
void ScalarStep(const qubo::IsingProblem& ising, SqaState* state, int n, int p,
                double beta_slice, double j_perp, Rng* rng) {
  (void)ising;
  // Single-site Metropolis moves, slice by slice.
  for (int k = 0; k < p; ++k) {
    const int8_t* slice = state->slice_spins(k);
    const int8_t* prev = state->slice_spins((k + p - 1) % p);
    const int8_t* next = state->slice_spins((k + 1) % p);
    for (qubo::VarId i = 0; i < n; ++i) {
      double delta = state->ProblemDelta(k, i);
      // Kinetic part: flipping s_{k,i} changes
      // −j_perp*s_{k,i}(s_{k-1,i}+s_{k+1,i}) by:
      double s_i = static_cast<double>(slice[i]);
      double neighbors_sum =
          static_cast<double>(prev[i]) + static_cast<double>(next[i]);
      double kinetic = 2.0 * j_perp * s_i * neighbors_sum;
      double total = delta + kinetic;
      if (total <= 0.0 ||
          rng->UniformReal(0.0, 1.0) < std::exp(-beta_slice * total)) {
        state->Flip(k, i);
      }
    }
  }
  // Global moves: flip spin i in all slices (kinetic term invariant). Each
  // slice's delta only involves that slice's own fields, so summing the
  // cached deltas is exact.
  for (qubo::VarId i = 0; i < n; ++i) {
    double delta = 0.0;
    for (int k = 0; k < p; ++k) {
      delta += state->ProblemDelta(k, i);
    }
    if (delta <= 0.0 ||
        rng->UniformReal(0.0, 1.0) < std::exp(-beta_slice * delta)) {
      for (int k = 0; k < p; ++k) {
        state->Flip(k, i);
      }
    }
  }
}

/// Checkerboard step: each slice is swept color class by color class with
/// the class's uniforms drawn up front. Within a class members are never
/// adjacent, so a member's cached problem field is unaffected by the other
/// members' flips — and the kinetic term reads spin i of the *neighbor*
/// slices, which this slice's sweep never touches — making the fused
/// decide-and-flip loop equivalent to an all-at-once class update. Global
/// moves keep their sequential order (their deltas chain through shared
/// neighbors) but draw uniforms batched. `fast` selects FastExp.
void CheckerboardStep(SqaState* state, const qubo::Coloring& coloring, int n,
                      int p, double beta_slice, double j_perp, bool fast,
                      FastRng* rng, std::vector<double>* uniforms) {
  double* u = uniforms->data();
  for (int k = 0; k < p; ++k) {
    const int8_t* slice = state->slice_spins(k);
    const int8_t* prev = state->slice_spins((k + p - 1) % p);
    const int8_t* next = state->slice_spins((k + 1) % p);
    for (int c = 0; c < coloring.num_colors; ++c) {
      const qubo::VarId* members = coloring.class_begin(c);
      const int count = coloring.class_size(c);
      rng->FillUniform(u, count);
      for (int m = 0; m < count; ++m) {
        qubo::VarId i = members[m];
        double delta = state->ProblemDelta(k, i);
        double s_i = static_cast<double>(slice[i]);
        double neighbors_sum =
            static_cast<double>(prev[i]) + static_cast<double>(next[i]);
        double total = delta + 2.0 * j_perp * s_i * neighbors_sum;
        bool accept =
            total <= 0.0 ||
            u[m] < (fast ? FastExp(-beta_slice * total)
                         : std::exp(-beta_slice * total));
        if (accept) state->Flip(k, i);
      }
    }
  }
  rng->FillUniform(u, n);
  for (qubo::VarId i = 0; i < n; ++i) {
    double delta = 0.0;
    for (int k = 0; k < p; ++k) {
      delta += state->ProblemDelta(k, i);
    }
    bool accept = delta <= 0.0 ||
                  u[i] < (fast ? FastExp(-beta_slice * delta)
                               : std::exp(-beta_slice * delta));
    if (accept) {
      for (int k = 0; k < p; ++k) {
        state->Flip(k, i);
      }
    }
  }
}

}  // namespace

SampleSet SimulatedQuantumAnnealer::SampleIsing(
    const qubo::IsingProblem& ising) const {
  const int n = ising.num_spins();
  const int p = options_.num_slices;
  assert(p >= 2);
  const double beta_slice = options_.beta / static_cast<double>(p);
  ising.Finalize();  // shared across worker threads
  Rng rng(options_.seed);
  const SweepKernel kernel = options_.sweep_kernel;
  const bool fast = kernel == SweepKernel::kCheckerboardFast;
  // Color classes are shared read-only across reads; scalar skips them.
  // (Only the coloring — the SQA sweep keeps the original vertex order, so
  // a full SweepPlan's permuted problem copy would go unused.)
  std::optional<qubo::Coloring> coloring;
  if (kernel != SweepKernel::kScalar) {
    coloring.emplace(qubo::ColorGraph(ising.csr()));
  }

  return RunReads(
      options_.num_reads, options_.num_threads,
      [&](int read, SampleSet* local) {
        Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
        SqaState state(ising, p, kernel, &read_rng);
        const bool scalar = kernel == SweepKernel::kScalar;
        std::vector<double> uniforms(
            scalar ? 0
                   : static_cast<size_t>(
                         std::max(n, coloring->max_class_size())));
        // Bulk uniforms for the checkerboard kernels: one xoshiro256++
        // stream per read, seeded from the read's Rng (see sweep_kernel.h).
        FastRng fast_rng(scalar ? 0 : read_rng.Next());

        for (int step = 0; step < options_.sweeps; ++step) {
          double gamma = options_.gamma.At(step, options_.sweeps);
          gamma = std::max(gamma, 1e-9);
          // Inter-slice ferromagnetic coupling; positive, diverging as
          // gamma -> 0. The energy term is −j_perp * s_{k,i} * s_{k+1,i}.
          double j_perp =
              -0.5 / beta_slice * std::log(std::tanh(beta_slice * gamma));

          if (scalar) {
            ScalarStep(ising, &state, n, p, beta_slice, j_perp, &read_rng);
          } else {
            CheckerboardStep(&state, *coloring, n, p, beta_slice, j_perp,
                             fast, &fast_rng, &uniforms);
          }
        }

        // Read out the best slice (energies recomputed exactly).
        double best_energy = std::numeric_limits<double>::infinity();
        int best_slice = 0;
        for (int k = 0; k < p; ++k) {
          double energy = state.SliceEnergy(k);
          if (energy < best_energy) {
            best_energy = energy;
            best_slice = k;
          }
        }
        local->AddSpins(state.slice_spins(best_slice), n, best_energy);
      },
      options_.executor, options_.max_samples);
}

SampleSet SimulatedQuantumAnnealer::Sample(const qubo::QuboProblem& problem) const {
  qubo::IsingWithOffset converted = qubo::QuboToIsing(problem);
  SampleSet out = SampleIsing(converted.ising);
  out.AddEnergyOffset(converted.offset);
  return out;
}

}  // namespace anneal
}  // namespace qmqo
