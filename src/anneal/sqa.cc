#include "anneal/sqa.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "anneal/parallel.h"

namespace qmqo {
namespace anneal {
namespace {

/// Per-read state of the path-integral simulation: P replicas of the spin
/// vector plus, for each replica, the cached local problem fields
///   field[k][i] = h_i + sum_j J_ij s_{k,j},
/// maintained incrementally on every accepted flip (mirroring the SA
/// kernel) so a Metropolis move costs O(1) to evaluate and O(degree) only
/// when accepted — instead of O(degree) recomputation per *proposal*.
class SqaState {
 public:
  SqaState(const qubo::IsingProblem& ising, int num_slices, Rng* rng)
      : ising_(ising),
        n_(ising.num_spins()),
        p_(num_slices),
        spins_(static_cast<size_t>(num_slices) * static_cast<size_t>(n_)),
        fields_(spins_.size()) {
    for (auto& s : spins_) {
      s = rng->Bernoulli(0.5) ? int8_t{1} : int8_t{-1};
    }
    const qubo::CsrGraph& csr = ising_.csr();
    const double* h = ising_.fields().data();
    for (int k = 0; k < p_; ++k) {
      const int8_t* slice = slice_spins(k);
      double* field = slice_fields(k);
      for (qubo::VarId i = 0; i < n_; ++i) {
        double f = h[i];
        for (int32_t e = csr.row_offsets[static_cast<size_t>(i)];
             e < csr.row_offsets[static_cast<size_t>(i) + 1]; ++e) {
          f += csr.weights[static_cast<size_t>(e)] *
               static_cast<double>(slice[csr.neighbor_ids[static_cast<size_t>(e)]]);
        }
        field[i] = f;
      }
    }
  }

  int8_t* slice_spins(int k) {
    return spins_.data() + static_cast<size_t>(k) * static_cast<size_t>(n_);
  }
  const int8_t* slice_spins(int k) const {
    return spins_.data() + static_cast<size_t>(k) * static_cast<size_t>(n_);
  }
  double* slice_fields(int k) {
    return fields_.data() + static_cast<size_t>(k) * static_cast<size_t>(n_);
  }

  /// Problem-energy delta for flipping spin i of slice k; O(1).
  double ProblemDelta(int k, qubo::VarId i) const {
    return -2.0 *
           static_cast<double>(
               spins_[static_cast<size_t>(k) * static_cast<size_t>(n_) +
                      static_cast<size_t>(i)]) *
           fields_[static_cast<size_t>(k) * static_cast<size_t>(n_) +
                   static_cast<size_t>(i)];
  }

  /// Flips spin i of slice k and updates the slice's cached fields.
  void Flip(int k, qubo::VarId i) {
    int8_t* slice = slice_spins(k);
    double* field = slice_fields(k);
    const qubo::CsrGraph& csr = ising_.csr();
    double change = -2.0 * static_cast<double>(slice[i]);
    slice[i] = static_cast<int8_t>(-slice[i]);
    for (int32_t e = csr.row_offsets[static_cast<size_t>(i)];
         e < csr.row_offsets[static_cast<size_t>(i) + 1]; ++e) {
      field[csr.neighbor_ids[static_cast<size_t>(e)]] +=
          csr.weights[static_cast<size_t>(e)] * change;
    }
  }

  /// Exact energy of slice k (recomputed from scratch; used for read-out
  /// only, so cached-field drift never reaches reported energies).
  double SliceEnergy(int k) const {
    std::vector<int8_t> slice(slice_spins(k), slice_spins(k) + n_);
    return ising_.Energy(slice);
  }

  std::vector<int8_t> SliceCopy(int k) const {
    return std::vector<int8_t>(slice_spins(k), slice_spins(k) + n_);
  }

 private:
  const qubo::IsingProblem& ising_;
  int n_;
  int p_;
  std::vector<int8_t> spins_;
  std::vector<double> fields_;
};

}  // namespace

SampleSet SimulatedQuantumAnnealer::SampleIsing(
    const qubo::IsingProblem& ising) const {
  const int n = ising.num_spins();
  const int p = options_.num_slices;
  assert(p >= 2);
  const double beta_slice = options_.beta / static_cast<double>(p);
  ising.Finalize();  // shared across worker threads
  Rng rng(options_.seed);

  return RunReads(
      options_.num_reads, options_.num_threads,
      [&](int read, SampleSet* local) {
        Rng read_rng = rng.Fork(static_cast<uint64_t>(read));
        SqaState state(ising, p, &read_rng);

        for (int step = 0; step < options_.sweeps; ++step) {
          double gamma = options_.gamma.At(step, options_.sweeps);
          gamma = std::max(gamma, 1e-9);
          // Inter-slice ferromagnetic coupling; positive, diverging as
          // gamma -> 0. The energy term is −j_perp * s_{k,i} * s_{k+1,i}.
          double j_perp =
              -0.5 / beta_slice * std::log(std::tanh(beta_slice * gamma));

          // Single-site Metropolis moves, slice by slice.
          for (int k = 0; k < p; ++k) {
            const int8_t* slice = state.slice_spins(k);
            const int8_t* prev = state.slice_spins((k + p - 1) % p);
            const int8_t* next = state.slice_spins((k + 1) % p);
            for (qubo::VarId i = 0; i < n; ++i) {
              double delta = state.ProblemDelta(k, i);
              // Kinetic part: flipping s_{k,i} changes
              // −j_perp*s_{k,i}(s_{k-1,i}+s_{k+1,i}) by:
              double s_i = static_cast<double>(slice[i]);
              double neighbors_sum = static_cast<double>(prev[i]) +
                                     static_cast<double>(next[i]);
              double kinetic = 2.0 * j_perp * s_i * neighbors_sum;
              double total = delta + kinetic;
              if (total <= 0.0 || read_rng.UniformReal(0.0, 1.0) <
                                      std::exp(-beta_slice * total)) {
                state.Flip(k, i);
              }
            }
          }
          // Global moves: flip spin i in all slices (kinetic term
          // invariant). Each slice's delta only involves that slice's own
          // fields, so summing the cached deltas is exact.
          for (qubo::VarId i = 0; i < n; ++i) {
            double delta = 0.0;
            for (int k = 0; k < p; ++k) {
              delta += state.ProblemDelta(k, i);
            }
            if (delta <= 0.0 || read_rng.UniformReal(0.0, 1.0) <
                                    std::exp(-beta_slice * delta)) {
              for (int k = 0; k < p; ++k) {
                state.Flip(k, i);
              }
            }
          }
        }

        // Read out the best slice (energies recomputed exactly).
        double best_energy = std::numeric_limits<double>::infinity();
        int best_slice = 0;
        for (int k = 0; k < p; ++k) {
          double energy = state.SliceEnergy(k);
          if (energy < best_energy) {
            best_energy = energy;
            best_slice = k;
          }
        }
        local->Add(qubo::SpinsToAssignment(state.SliceCopy(best_slice)),
                   best_energy);
      },
      options_.executor);
}

SampleSet SimulatedQuantumAnnealer::Sample(const qubo::QuboProblem& problem) const {
  qubo::IsingWithOffset converted = qubo::QuboToIsing(problem);
  SampleSet out = SampleIsing(converted.ising);
  out.AddEnergyOffset(converted.offset);
  return out;
}

}  // namespace anneal
}  // namespace qmqo
