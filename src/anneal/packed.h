#ifndef QMQO_ANNEAL_PACKED_H_
#define QMQO_ANNEAL_PACKED_H_

/// \file packed.h
/// Pooled bit-packed assignment storage for annealing results.
///
/// The paper's workflow keeps thousands of reads per annealer call to pick
/// minimum-energy plan selections; storing each read as its own
/// `std::vector<uint8_t>` costs one heap allocation plus a full byte per
/// spin. `PackedAssignments` is the arena that replaces that: every
/// assignment lives in one contiguous buffer at 64 spins per `uint64_t`
/// word, so a retained sample costs `ceil(n/64)` words and zero extra
/// allocations, and `raw_reads` at paper scale (1000 reads x 1152 qubits)
/// drops from ~1.2 MB of scattered vectors to ~144 KB of flat words.
///
/// Canonical form: bits past `num_bits` in the last word of an assignment
/// are always zero. Every mutator maintains this, which is what makes
/// equality a straight word compare and ordering a single
/// find-first-differing-bit scan.
///
/// Ordering contract: `AssignmentRef` comparisons reproduce the
/// lexicographic order of the unpacked `std::vector<uint8_t>`
/// representation exactly (bit 0 is the most significant position, as in
/// byte-vector `operator<`). The `SampleSet` sort order — and therefore
/// the bit-identical-results contract of the parallel read engine — is
/// defined in terms of that byte order, so the agreement is load-bearing
/// and pinned by `tests/packed_test.cc`.

#include <cstdint>
#include <cstring>
#include <vector>

namespace qmqo {
namespace anneal {

/// Number of 64-bit words needed for `num_bits` bits.
inline int PackedWordsForBits(int num_bits) {
  return (num_bits + 63) / 64;
}

/// Packs `n` 0/1 bytes into words, bit i of the assignment at bit (i % 64)
/// of word (i / 64). `out` must hold `PackedWordsForBits(n)` words; tail
/// bits are zeroed (canonical form).
void PackBytes(const uint8_t* bytes, int n, uint64_t* out);

/// Packs `n` ±1 spins (int8_t) into words: −1 -> 0, +1 -> 1 — the fused
/// `SpinsToAssignment` + `PackBytes`, so sampler read-out appends packed
/// words without materializing a byte vector. Tail bits are zeroed.
void PackSpins(const int8_t* spins, int n, uint64_t* out);

/// Unpacks `n` bits into 0/1 bytes.
void UnpackBytes(const uint64_t* words, int n, uint8_t* out);

/// Unpacks `n` bits into ±1 spins (0 -> −1, 1 -> +1).
void UnpackSpins(const uint64_t* words, int n, int8_t* out);

/// A non-owning view of one packed assignment (`num_bits` bits starting at
/// `words`). Views are invalidated by any mutation of the owning
/// `PackedAssignments` (the arena may reallocate), exactly like vector
/// iterators.
class AssignmentRef {
 public:
  AssignmentRef() = default;
  AssignmentRef(const uint64_t* words, int num_bits)
      : words_(words), num_bits_(num_bits) {}

  int num_bits() const { return num_bits_; }
  int num_words() const { return PackedWordsForBits(num_bits_); }
  const uint64_t* words() const { return words_; }

  /// Bit i as 0/1.
  uint8_t bit(int i) const {
    return static_cast<uint8_t>((words_[i / 64] >> (i % 64)) & 1u);
  }

  /// Number of set bits (selected QUBO variables).
  int PopCount() const;

  std::vector<uint8_t> ToBytes() const;
  std::vector<int8_t> ToSpins() const;

  /// Allocation-reusing unpack: resizes `out` to `num_bits()` entries.
  /// The read-out loops that unpack thousands of reads reuse one buffer.
  void CopyBytesTo(std::vector<uint8_t>* out) const;
  void CopySpinsTo(std::vector<int8_t>* out) const;

  /// Three-way comparison in unpacked-byte lexicographic order: negative /
  /// zero / positive like memcmp. Requires equal `num_bits` (all
  /// assignments of one sampler call share the problem size); word-wise
  /// scan + count-trailing-zeros on the first differing word.
  int Compare(const AssignmentRef& other) const;

  friend bool operator==(const AssignmentRef& a, const AssignmentRef& b) {
    // The zero-width guard keeps memcmp away from the null `words_` of
    // default-constructed refs (UB even at length 0).
    return a.num_bits_ == b.num_bits_ &&
           (a.num_bits_ == 0 ||
            std::memcmp(a.words_, b.words_,
                        sizeof(uint64_t) *
                            static_cast<size_t>(a.num_words())) == 0);
  }
  friend bool operator!=(const AssignmentRef& a, const AssignmentRef& b) {
    return !(a == b);
  }
  friend bool operator<(const AssignmentRef& a, const AssignmentRef& b) {
    return a.Compare(b) < 0;
  }

 private:
  const uint64_t* words_ = nullptr;
  int num_bits_ = 0;
};

/// The arena: a flat `uint64_t` buffer holding `size()` equally-sized
/// packed assignments. Appends grow geometrically like a vector; slots are
/// stable indices (never invalidated), views are not.
class PackedAssignments {
 public:
  PackedAssignments() = default;
  explicit PackedAssignments(int num_bits) { Reset(num_bits); }

  /// Clears the pool and fixes the per-assignment width. `num_bits == 0`
  /// returns the pool to the unset state (the next append fixes it).
  void Reset(int num_bits);

  /// Bits per assignment; 0 until the first append fixes it.
  int num_bits() const { return num_bits_; }
  int words_per_assignment() const { return words_per_; }

  /// Number of stored assignments.
  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends from 0/1 bytes; returns the new slot index. The first append
  /// to an unset pool fixes `num_bits`; later appends must match it.
  int AppendBytes(const uint8_t* bytes, int n);
  int AppendBytes(const std::vector<uint8_t>& bytes) {
    return AppendBytes(bytes.data(), static_cast<int>(bytes.size()));
  }

  /// Appends from ±1 spins (the sampler read-out path: no byte staging).
  int AppendSpins(const int8_t* spins, int n);
  int AppendSpins(const std::vector<int8_t>& spins) {
    return AppendSpins(spins.data(), static_cast<int>(spins.size()));
  }

  /// Appends `words_per_assignment()` canonical words (tail bits zero) —
  /// the word-wise copy path used when moving assignments between pools.
  int AppendWords(const uint64_t* words);

  /// Copies slot `slot` of `other` into this pool (word-wise).
  int AppendFrom(const PackedAssignments& other, int slot) {
    return AppendWords(other.word_ptr(slot));
  }

  /// Appends every assignment of `other` (one flat word copy); returns the
  /// slot the first appended assignment received. Widths must agree; an
  /// unset pool adopts `other`'s width.
  int AppendAll(const PackedAssignments& other);

  /// Grows the pool to exactly `size` zero-filled slots (requires a fixed
  /// width, i.e. a prior `Reset(num_bits)` with positive bits). Slots can
  /// then be written out of order with `StoreBytes`/`StoreSpins` — the
  /// chronological-`raw_reads` path of the parallel read engine, where each
  /// worker fills its own disjoint slots with no appends (and therefore no
  /// reallocation) racing the others.
  void Resize(int size);

  /// Drops every slot at index >= `size` (keeps the width). The
  /// `max_samples` truncation path: retained slots are contiguous from 0.
  void Truncate(int size);

  /// Overwrites slot `slot` in place (tail bits re-zeroed).
  void StoreBytes(int slot, const uint8_t* bytes, int n);
  void StoreSpins(int slot, const int8_t* spins, int n);
  void StoreSpins(int slot, const std::vector<int8_t>& spins) {
    StoreSpins(slot, spins.data(), static_cast<int>(spins.size()));
  }

  /// View of one slot. Invalidated by the next append/Reset.
  AssignmentRef operator[](int slot) const {
    return AssignmentRef(word_ptr(slot), num_bits_);
  }

  std::vector<uint8_t> ToBytes(int slot) const {
    return (*this)[slot].ToBytes();
  }

  /// Forward iteration over slots as `AssignmentRef` views (for range-for
  /// over e.g. `DeviceResult::raw_reads`). Invalidated like any view.
  class const_iterator {
   public:
    const_iterator(const PackedAssignments* pool, int slot)
        : pool_(pool), slot_(slot) {}
    AssignmentRef operator*() const { return (*pool_)[slot_]; }
    const_iterator& operator++() {
      ++slot_;
      return *this;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.slot_ != b.slot_;
    }

   private:
    const PackedAssignments* pool_;
    int slot_;
  };
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

  /// Heap bytes held by the word buffer (capacity, not size — the number
  /// the bench's `bytes_per_sample` accounting reports).
  size_t memory_bytes() const { return words_.capacity() * sizeof(uint64_t); }

  /// Reserves room for `assignments` total assignments (no-op while the
  /// width is unset). `SampleSet::Finalize` reserves its pre-dedup rebuild
  /// upper bound, then releases whatever dedup/cap-truncation left unused
  /// via `ShrinkToFit` — so finalized arenas carry no growth slack, which
  /// keeps the bench's bytes-per-sample accounting honest
  /// (`memory_bytes()` reports capacity).
  void Reserve(int assignments) {
    words_.reserve(static_cast<size_t>(assignments) *
                   static_cast<size_t>(words_per_));
  }

  /// Releases excess capacity down to `size()` assignments.
  void ShrinkToFit() { words_.shrink_to_fit(); }

  friend bool operator==(const PackedAssignments& a,
                         const PackedAssignments& b) {
    // Empty-pool guard: data() of an empty vector may be null, and null
    // memcmp arguments are UB even at length 0.
    return a.num_bits_ == b.num_bits_ && a.size_ == b.size_ &&
           (a.words_.empty() ||
            std::memcmp(a.words_.data(), b.words_.data(),
                        a.words_.size() * sizeof(uint64_t)) == 0);
  }
  friend bool operator!=(const PackedAssignments& a,
                         const PackedAssignments& b) {
    return !(a == b);
  }

 private:
  const uint64_t* word_ptr(int slot) const {
    return words_.data() +
           static_cast<size_t>(slot) * static_cast<size_t>(words_per_);
  }
  /// Fixes the width on first use (or checks it) and returns the write
  /// pointer for one new zero-initialized slot.
  uint64_t* GrowOne(int n);

  int num_bits_ = 0;
  int words_per_ = 0;
  int size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_PACKED_H_
