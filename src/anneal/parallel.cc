#include "anneal/parallel.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace qmqo {
namespace anneal {

SampleSet RunReads(int num_reads, int num_threads,
                   const std::function<void(int, SampleSet*)>& run_read,
                   util::Executor* executor, int max_samples) {
  SampleSet out;
  out.set_max_samples(max_samples);
  if (num_reads <= 0) {
    out.Finalize();
    return out;
  }
  const int workers = std::min(ResolveNumThreads(num_threads), num_reads);
  if (workers == 1) {
    for (int read = 0; read < num_reads; ++read) {
      run_read(read, &out);
    }
    out.Finalize();
    return out;
  }

  // Chunk-local accumulation on the pool; any partition works for
  // determinism — Finalize makes the result order-independent — the
  // executor's static contiguous chunking just keeps per-chunk work
  // predictable.
  util::Executor& pool =
      executor != nullptr ? *executor : util::Executor::Shared();
  std::vector<SampleSet> locals(static_cast<size_t>(workers));
  for (SampleSet& local : locals) local.set_max_samples(max_samples);
  pool.ParallelFor(num_reads, workers,
                   [&](int begin, int end, int chunk) {
                     SampleSet* local = &locals[static_cast<size_t>(chunk)];
                     for (int read = begin; read < end; ++read) {
                       run_read(read, local);
                     }
                   });
  for (SampleSet& local : locals) {
    out.Append(std::move(local));
  }
  out.Finalize();
  return out;
}

}  // namespace anneal
}  // namespace qmqo
