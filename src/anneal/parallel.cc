#include "anneal/parallel.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <vector>

namespace qmqo {
namespace anneal {

int ResolveNumThreads(int requested) {
  if (requested >= 1) return requested;
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

SampleSet RunReads(int num_reads, int num_threads,
                   const std::function<void(int, SampleSet*)>& run_read) {
  SampleSet out;
  if (num_reads <= 0) {
    out.Finalize();
    return out;
  }
  int workers = std::min(ResolveNumThreads(num_threads), num_reads);
  if (workers == 1) {
    for (int read = 0; read < num_reads; ++read) {
      run_read(read, &out);
    }
    out.Finalize();
    return out;
  }

  // Contiguous read ranges per worker; the first `remainder` workers take
  // one extra read. (Any partition works for determinism — Finalize makes
  // the result order-independent — contiguous ranges just keep per-thread
  // work predictable.)
  std::vector<SampleSet> locals(static_cast<size_t>(workers));
  std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  const int base = num_reads / workers;
  const int remainder = num_reads % workers;
  int begin = 0;
  for (int t = 0; t < workers; ++t) {
    const int count = base + (t < remainder ? 1 : 0);
    const int end = begin + count;
    threads.emplace_back([&, t, begin, end]() {
      try {
        for (int read = begin; read < end; ++read) {
          run_read(read, &locals[static_cast<size_t>(t)]);
        }
      } catch (...) {
        errors[static_cast<size_t>(t)] = std::current_exception();
      }
    });
    begin = end;
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  for (SampleSet& local : locals) {
    out.Append(std::move(local));
  }
  out.Finalize();
  return out;
}

}  // namespace anneal
}  // namespace qmqo
