#include "anneal/schedule.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace qmqo {
namespace anneal {

double Schedule::At(int step, int total) const {
  assert(total >= 1);
  if (total == 1) return end;
  double t = static_cast<double>(step) / static_cast<double>(total - 1);
  t = std::clamp(t, 0.0, 1.0);
  switch (shape) {
    case ScheduleShape::kLinear:
      return start + (end - start) * t;
    case ScheduleShape::kGeometric: {
      assert(start > 0.0 && end > 0.0);
      return start * std::pow(end / start, t);
    }
  }
  return end;
}

std::pair<double, double> SuggestBetaRange(const qubo::IsingProblem& ising) {
  // Largest and smallest (nonzero) magnitude of the effective field any
  // spin can experience.
  double max_field = 0.0;
  double min_field = std::numeric_limits<double>::infinity();
  const qubo::CsrGraph& csr = ising.csr();
  for (qubo::VarId i = 0; i < ising.num_spins(); ++i) {
    double field = std::fabs(ising.field(i));
    for (int32_t e = csr.row_offsets[static_cast<size_t>(i)];
         e < csr.row_offsets[static_cast<size_t>(i) + 1]; ++e) {
      field += std::fabs(csr.weights[static_cast<size_t>(e)]);
    }
    // A spin whose field sum is inf or NaN (overflowing or non-finite
    // couplings) says nothing useful about the temperature range — skip
    // it rather than let one bad weight poison both betas.
    if (!std::isfinite(field)) continue;
    if (field > 0.0) {
      max_field = std::max(max_field, field);
      min_field = std::min(min_field, field);
    }
  }
  if (max_field == 0.0) {
    return {0.1, 1.0};  // trivial (or fully degenerate) problem
  }
  if (!std::isfinite(min_field) || min_field <= 0.0) min_field = max_field;
  double beta_hot = std::log(2.0) / max_field;
  double beta_cold = std::log(100.0) / min_field;
  // Extreme magnitudes (near-overflow couplings, denormal fields) push the
  // betas toward 0 or inf, which inverts or degenerates downstream
  // geometric schedules. Clamp to a band far outside anything a sane
  // problem produces, keeping ordinary inputs bit-identical, and keep
  // beta_hot a decade below the ceiling so cold > hot always holds.
  constexpr double kMinBeta = 1e-9;
  constexpr double kMaxBeta = 1e9;
  beta_hot = std::clamp(beta_hot, kMinBeta, kMaxBeta / 10.0);
  beta_cold = std::isfinite(beta_cold)
                  ? std::clamp(beta_cold, kMinBeta, kMaxBeta)
                  : kMaxBeta;
  if (beta_cold <= beta_hot) beta_cold = beta_hot * 10.0;
  return {beta_hot, beta_cold};
}

}  // namespace anneal
}  // namespace qmqo
