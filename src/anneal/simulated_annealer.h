#ifndef QMQO_ANNEAL_SIMULATED_ANNEALER_H_
#define QMQO_ANNEAL_SIMULATED_ANNEALER_H_

/// \file simulated_annealer.h
/// Classical simulated annealing over Ising/QUBO problems.
///
/// This is both (a) the classical reference point the paper contrasts
/// quantum annealing against in Section 2, and (b) the default inner
/// sampler of the `DWaveSimulator` device model. The implementation keeps
/// per-spin local fields so a Metropolis step costs O(degree).

#include <cstdint>
#include <vector>

#include "anneal/sample_set.h"
#include "anneal/schedule.h"
#include "anneal/sweep_kernel.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace qmqo {
namespace util {
class Executor;
}  // namespace util

namespace anneal {

/// Options for `SimulatedAnnealer`.
struct SaOptions {
  /// Independent restarts; each contributes one sample.
  int num_reads = 100;
  /// Full sweeps over all spins per read.
  int sweeps_per_read = 1000;
  /// Inverse-temperature ramp; non-positive start/end triggers the
  /// `SuggestBetaRange` heuristic per problem.
  Schedule beta{0.0, 0.0, ScheduleShape::kGeometric};
  uint64_t seed = 1;
  /// Worker threads for the read loop: 1 = serial (default, keeps
  /// wall-clock measurements comparable across machines), 0 = hardware
  /// concurrency. Results are bit-identical for every thread count (see
  /// anneal/parallel.h).
  int num_threads = 1;
  /// Worker pool to fan reads across when `num_threads != 1`; null = the
  /// process-wide `util::Executor::Shared()` pool. Never owned.
  util::Executor* executor = nullptr;
  /// Metropolis sweep implementation (see anneal/sweep_kernel.h). The
  /// default `kScalar` is the bit-exact reference; the checkerboard
  /// kernels trade the frozen random stream for throughput (and, with
  /// `kCheckerboardFast`, a bounded-error exp).
  SweepKernel sweep_kernel = SweepKernel::kScalar;
  /// Concurrent chunks for the checkerboard kernels' per-class decide loop
  /// *within* one read (single-read latency): 1 = inline (default), 0 =
  /// hardware concurrency. Results are bit-identical at any value; ignored
  /// by `kScalar`. Runs on the same `executor` as the read fan-out.
  int sweep_threads = 1;
  /// Streaming top-k retention: keep only the best `max_samples` distinct
  /// assignments (0 = unlimited). Top-k membership, energies, and
  /// occurrence counts are exact and thread-count independent;
  /// `SampleSet::total_reads` still counts every read.
  int max_samples = 0;
};

/// Metropolis simulated annealing sampler.
class SimulatedAnnealer {
 public:
  explicit SimulatedAnnealer(const SaOptions& options) : options_(options) {}

  /// Samples an Ising problem; energies are Ising energies.
  SampleSet SampleIsing(const qubo::IsingProblem& ising) const;

  /// Samples a QUBO problem (internally via the exact Ising conversion);
  /// energies are QUBO energies.
  SampleSet Sample(const qubo::QuboProblem& problem) const;

  const SaOptions& options() const { return options_; }

 private:
  SaOptions options_;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_SIMULATED_ANNEALER_H_
