#include "anneal/dwave_simulator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "anneal/gauge.h"
#include "anneal/parallel.h"
#include "util/fault.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qmqo {
namespace anneal {
namespace {

// Fault sites of the device model (see DWaveOptions::faults for keys).
constexpr char kFaultProgram[] = "device.program";
constexpr char kFaultLatency[] = "device.latency";
constexpr char kFaultReadDropout[] = "device.read_dropout";
constexpr char kFaultStuckQubit[] = "device.stuck_qubit";
constexpr char kFaultChainBreak[] = "device.chain_break";

/// Per-read fault key: chronological read index within the call, shifted
/// into the epoch's band so retries (epoch + 1) draw fresh decisions while
/// epoch 0 keeps small keys for `fail_first` schedules.
uint64_t ReadFaultKey(uint64_t epoch, int read_index) {
  return (epoch << 32) | static_cast<uint64_t>(read_index);
}

/// Per-programming-cycle fault key: consecutive across epochs, so
/// "fail the first N programming cycles" spans retry attempts.
uint64_t CycleFaultKey(uint64_t epoch, int num_gauges, int gauge) {
  return epoch * static_cast<uint64_t>(num_gauges) +
         static_cast<uint64_t>(gauge);
}

/// Auto-scale factor fitting the Ising problem into the hardware range.
double ScaleFactor(const qubo::IsingProblem& ising, double h_range,
                   double j_range) {
  double max_h = ising.MaxAbsField();
  double max_j = ising.MaxAbsCoupling();
  double scale = 1.0;
  bool any = false;
  if (max_h > 0.0) {
    scale = h_range / max_h;
    any = true;
  }
  if (max_j > 0.0) {
    double j_scale = j_range / max_j;
    scale = any ? std::min(scale, j_scale) : j_scale;
    any = true;
  }
  return any ? scale : 1.0;
}

/// Returns `ising` scaled by `scale` with Gaussian control error applied:
/// each h is perturbed by N(0, sigma*h_range), each J by N(0, sigma*j_range)
/// — the per-programming "integrated control error" of the hardware.
qubo::IsingProblem ScaleAndPerturb(const qubo::IsingProblem& ising,
                                   double scale, double sigma, double h_range,
                                   double j_range, Rng* rng) {
  qubo::IsingProblem out(ising.num_spins());
  for (qubo::VarId i = 0; i < ising.num_spins(); ++i) {
    double h = ising.field(i) * scale;
    if (sigma > 0.0) h += rng->Gaussian(0.0, sigma * h_range);
    if (h != 0.0) out.AddField(i, h);
  }
  for (const qubo::Interaction& term : ising.couplings()) {
    double j = term.weight * scale;
    if (sigma > 0.0) j += rng->Gaussian(0.0, sigma * j_range);
    if (j != 0.0) out.AddCoupling(term.i, term.j, j);
  }
  return out;
}

/// Read-level fault payloads, applied to the gauge-restored spins: stuck
/// qubits report their forced value on every read; a fired chain-break
/// flips `intensity` deterministically chosen spins (hash of the read key,
/// distinct per flip), corrupting chains downstream.
void ApplyReadFaults(const util::FaultInjector* faults,
                     const std::vector<int8_t>& stuck, bool any_stuck,
                     bool corrupt, uint64_t read_key,
                     std::vector<int8_t>* spins) {
  if (any_stuck) {
    for (size_t q = 0; q < spins->size(); ++q) {
      if (stuck[q] != 0) (*spins)[q] = stuck[q];
    }
  }
  if (corrupt) {
    const int n = static_cast<int>(spins->size());
    const int flips = std::max(1, faults->Intensity(kFaultChainBreak));
    for (int f = 0; f < flips; ++f) {
      uint64_t bits = faults->HashAt(
          kFaultChainBreak, read_key * 131 + static_cast<uint64_t>(f));
      int idx = static_cast<int>(bits % static_cast<uint64_t>(n));
      (*spins)[static_cast<size_t>(idx)] =
          static_cast<int8_t>(-(*spins)[static_cast<size_t>(idx)]);
    }
  }
}

}  // namespace

Result<DeviceResult> DWaveSimulator::Sample(
    const qubo::QuboProblem& physical) const {
  if (options_.num_reads <= 0) {
    return Status::InvalidArgument("num_reads must be positive");
  }
  if (options_.num_gauges <= 0) {
    return Status::InvalidArgument("num_gauges must be positive");
  }
  if (options_.h_range <= 0.0 || options_.j_range <= 0.0) {
    return Status::InvalidArgument("weight ranges must be positive");
  }
  Stopwatch wall;
  qubo::IsingWithOffset converted = qubo::QuboToIsing(physical);
  physical.Finalize();  // shared read-only across worker threads
  const int num_spins = converted.ising.num_spins();
  const double scale =
      ScaleFactor(converted.ising, options_.h_range, options_.j_range);

  // Disarmed injectors cost exactly this one test on the whole call.
  const util::FaultInjector* faults =
      options_.faults != nullptr && options_.faults->armed() ? options_.faults
                                                             : nullptr;
  const uint64_t epoch = options_.fault_epoch;
  const int64_t faults_before = faults != nullptr ? faults->faults_injected() : 0;

  // Stuck/dead qubits are a property of the chip, decided once per call and
  // keyed by the physical variable alone (epoch-independent: a dead qubit
  // stays dead across retries). The forced spin value derives from payload
  // hash bits.
  std::vector<int8_t> stuck;
  bool any_stuck = false;
  if (faults != nullptr) {
    stuck.assign(static_cast<size_t>(num_spins), 0);
    for (int q = 0; q < num_spins; ++q) {
      if (faults->ShouldFail(kFaultStuckQubit, static_cast<uint64_t>(q))) {
        stuck[static_cast<size_t>(q)] =
            (faults->HashAt(kFaultStuckQubit, static_cast<uint64_t>(q)) & 1u)
                ? int8_t{1}
                : int8_t{-1};
        any_stuck = true;
      }
    }
  }

  DeviceResult result;
  result.samples.set_max_samples(options_.max_samples);
  if (options_.record_reads) result.raw_reads.Reset(num_spins);
  Rng rng(options_.seed);
  // One pool for every gauge (and the SQA backend): RunReads maps a null
  // executor to the shared singleton, so no gauge ever spawns threads.
  util::Executor* executor = options_.executor;
  const int reads_per_gauge =
      std::max(1, options_.num_reads / options_.num_gauges);
  int reads_left = options_.num_reads;
  int read_base = 0;

  for (int g = 0; g < options_.num_gauges && reads_left > 0; ++g) {
    int reads = std::min(reads_per_gauge, reads_left);
    if (g + 1 == options_.num_gauges) reads = reads_left;
    reads_left -= reads;
    // Serial per-cycle timing (the gauge loop itself never runs in
    // parallel), consumed by the trace layer as one span per gauge.
    Stopwatch gauge_wall;
    const int dropped_before = result.dropped_reads;
    const double latency_before = result.injected_latency_ms;

    if (faults != nullptr) {
      const uint64_t cycle_key = CycleFaultKey(epoch, options_.num_gauges, g);
      if (faults->ShouldFail(kFaultLatency, cycle_key)) {
        result.injected_latency_ms += faults->LatencyMillis(kFaultLatency);
      }
      if (faults->ShouldFail(kFaultProgram, cycle_key)) {
        return Status::Internal(StrFormat(
            "injected programming-cycle failure (gauge %d, epoch %llu)", g,
            static_cast<unsigned long long>(epoch)));
      }
    }

    // Per-read fault masks, decided serially before the read fan-out so the
    // parallel engine only reads them: bit-identical at any thread count.
    std::vector<uint8_t> drop_mask;
    std::vector<uint8_t> corrupt_mask;
    if (faults != nullptr) {
      drop_mask.assign(static_cast<size_t>(reads), 0);
      corrupt_mask.assign(static_cast<size_t>(reads), 0);
      for (int r = 0; r < reads; ++r) {
        const uint64_t key = ReadFaultKey(epoch, read_base + r);
        if (faults->ShouldFail(kFaultReadDropout, key)) {
          drop_mask[static_cast<size_t>(r)] = 1;
          ++result.dropped_reads;
        } else if (faults->ShouldFail(kFaultChainBreak, key)) {
          corrupt_mask[static_cast<size_t>(r)] = 1;
        }
      }
    }

    Rng gauge_rng = rng.Fork(static_cast<uint64_t>(g) * 2 + 1);
    GaugeTransform gauge =
        GaugeTransform::Random(converted.ising.num_spins(), &gauge_rng);
    // Programming cycle: gauge, scale, and apply control error once.
    qubo::IsingProblem programmed =
        ScaleAndPerturb(gauge.Apply(converted.ising), scale,
                        options_.control_error, options_.h_range,
                        options_.j_range, &gauge_rng);

    if (options_.backend == DeviceBackend::kSimulatedAnnealing) {
      Schedule beta{0.0, 0.0, ScheduleShape::kGeometric};
      auto [hot, cold] = SuggestBetaRange(programmed);
      beta.start = hot;
      beta.end = cold;
      programmed.Finalize();  // shared read-only across worker threads
      // The checkerboard kernels share one per-programming coloring across
      // the gauge's reads; the scalar kernel skips it.
      std::optional<SweepPlan> plan;
      if (options_.sweep_kernel != SweepKernel::kScalar) {
        plan.emplace(programmed);
      }
      const SweepPlan* plan_ptr = plan ? &*plan : nullptr;
      // Per-read slots keep `raw_reads` chronological regardless of which
      // worker executes a read: the arena is sized up front, so workers
      // pack their own disjoint word ranges with no append racing them.
      // Dropped reads leave zero slots that the serial compaction below
      // skips.
      PackedAssignments gauge_raw(converted.ising.num_spins());
      if (options_.record_reads) gauge_raw.Resize(reads);
      SampleSet gauge_samples = RunReads(
          reads, options_.num_threads,
          [&, beta](int read, SampleSet* local) {
            if (!drop_mask.empty() && drop_mask[static_cast<size_t>(read)]) {
              return;  // read lost at the (simulated) readout stage
            }
            Rng read_rng = gauge_rng.Fork(static_cast<uint64_t>(read));
            std::vector<int8_t> spins(
                static_cast<size_t>(programmed.num_spins()));
            InitSpins(options_.sweep_kernel, &read_rng, &spins);
            RunSweeps(programmed, plan_ptr, beta, options_.sa_sweeps,
                      options_.sweep_kernel, &read_rng, &spins);
            std::vector<int8_t> restored = gauge.RestoreSpins(spins);
            if (faults != nullptr) {
              ApplyReadFaults(
                  faults, stuck, any_stuck,
                  !corrupt_mask.empty() &&
                      corrupt_mask[static_cast<size_t>(read)] != 0,
                  ReadFaultKey(epoch, read_base + read), &restored);
            }
            // True energy on the customer's problem, not the noisy one.
            double energy = physical.EnergySpins(restored);
            if (options_.record_reads) {
              gauge_raw.StoreSpins(read, restored);
            }
            local->AddSpins(restored, energy);
          },
          executor, options_.max_samples);
      result.samples.Append(std::move(gauge_samples));
      if (options_.record_reads) {
        if (drop_mask.empty()) {
          result.raw_reads.AppendAll(gauge_raw);
        } else {
          for (int r = 0; r < reads; ++r) {
            if (!drop_mask[static_cast<size_t>(r)]) {
              result.raw_reads.AppendFrom(gauge_raw, r);
            }
          }
        }
      }
    } else {
      SqaOptions sqa_options = options_.sqa;
      sqa_options.num_reads = reads;
      sqa_options.seed = gauge_rng.Next();
      sqa_options.num_threads = options_.num_threads;
      sqa_options.executor = executor;
      sqa_options.sweep_kernel = options_.sweep_kernel;
      sqa_options.max_samples = options_.max_samples;
      SimulatedQuantumAnnealer sqa(sqa_options);
      SampleSet gauge_samples = sqa.SampleIsing(programmed);
      std::vector<int8_t> spins;
      int local_read = 0;
      for (const anneal::Sample& sample : gauge_samples.samples()) {
        sample.assignment.CopySpinsTo(&spins);
        std::vector<int8_t> restored = gauge.RestoreSpins(spins);
        for (int k = 0; k < sample.num_occurrences; ++k) {
          const int read = local_read++;
          if (!drop_mask.empty() && drop_mask[static_cast<size_t>(read)]) {
            continue;
          }
          if (faults != nullptr) {
            std::vector<int8_t> faulted = restored;
            ApplyReadFaults(
                faults, stuck, any_stuck,
                !corrupt_mask.empty() &&
                    corrupt_mask[static_cast<size_t>(read)] != 0,
                ReadFaultKey(epoch, read_base + read), &faulted);
            double energy = physical.EnergySpins(faulted);
            if (options_.record_reads) result.raw_reads.AppendSpins(faulted);
            result.samples.AddSpins(faulted, energy);
          } else {
            double energy = physical.EnergySpins(restored);
            if (options_.record_reads) result.raw_reads.AppendSpins(restored);
            result.samples.AddSpins(restored, energy);
          }
        }
      }
    }
    read_base += reads;
    GaugeTiming timing;
    timing.gauge = g;
    timing.reads = reads;
    timing.dropped_reads = result.dropped_reads - dropped_before;
    timing.wall_ms = gauge_wall.ElapsedMillis();
    timing.injected_latency_ms = result.injected_latency_ms - latency_before;
    result.gauge_timings.push_back(timing);
  }
  if (result.samples.samples().empty()) {
    // Every read dropped: nothing to report. Surfaced as a typed error so
    // orchestrators retry instead of consuming an empty result.
    return Status::ResourceExhausted(StrFormat(
        "device call lost all %d reads to injected dropout",
        options_.num_reads));
  }
  result.samples.Finalize();
  result.device_time_us = DeviceTimeForReads(options_.num_reads);
  result.wall_clock_ms = wall.ElapsedMillis();
  result.scale_factor = scale;
  if (faults != nullptr) {
    result.faults_injected = faults->faults_injected() - faults_before;
  }
  return result;
}

}  // namespace anneal
}  // namespace qmqo
