#include "anneal/dwave_simulator.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "anneal/gauge.h"
#include "anneal/parallel.h"
#include "util/stopwatch.h"

namespace qmqo {
namespace anneal {
namespace {

/// Auto-scale factor fitting the Ising problem into the hardware range.
double ScaleFactor(const qubo::IsingProblem& ising, double h_range,
                   double j_range) {
  double max_h = ising.MaxAbsField();
  double max_j = ising.MaxAbsCoupling();
  double scale = 1.0;
  bool any = false;
  if (max_h > 0.0) {
    scale = h_range / max_h;
    any = true;
  }
  if (max_j > 0.0) {
    double j_scale = j_range / max_j;
    scale = any ? std::min(scale, j_scale) : j_scale;
    any = true;
  }
  return any ? scale : 1.0;
}

/// Returns `ising` scaled by `scale` with Gaussian control error applied:
/// each h is perturbed by N(0, sigma*h_range), each J by N(0, sigma*j_range)
/// — the per-programming "integrated control error" of the hardware.
qubo::IsingProblem ScaleAndPerturb(const qubo::IsingProblem& ising,
                                   double scale, double sigma, double h_range,
                                   double j_range, Rng* rng) {
  qubo::IsingProblem out(ising.num_spins());
  for (qubo::VarId i = 0; i < ising.num_spins(); ++i) {
    double h = ising.field(i) * scale;
    if (sigma > 0.0) h += rng->Gaussian(0.0, sigma * h_range);
    if (h != 0.0) out.AddField(i, h);
  }
  for (const qubo::Interaction& term : ising.couplings()) {
    double j = term.weight * scale;
    if (sigma > 0.0) j += rng->Gaussian(0.0, sigma * j_range);
    if (j != 0.0) out.AddCoupling(term.i, term.j, j);
  }
  return out;
}

}  // namespace

Result<DeviceResult> DWaveSimulator::Sample(
    const qubo::QuboProblem& physical) const {
  if (options_.num_reads <= 0) {
    return Status::InvalidArgument("num_reads must be positive");
  }
  if (options_.num_gauges <= 0) {
    return Status::InvalidArgument("num_gauges must be positive");
  }
  if (options_.h_range <= 0.0 || options_.j_range <= 0.0) {
    return Status::InvalidArgument("weight ranges must be positive");
  }
  Stopwatch wall;
  qubo::IsingWithOffset converted = qubo::QuboToIsing(physical);
  physical.Finalize();  // shared read-only across worker threads
  const double scale =
      ScaleFactor(converted.ising, options_.h_range, options_.j_range);

  DeviceResult result;
  result.samples.set_max_samples(options_.max_samples);
  Rng rng(options_.seed);
  // One pool for every gauge (and the SQA backend): RunReads maps a null
  // executor to the shared singleton, so no gauge ever spawns threads.
  util::Executor* executor = options_.executor;
  const int reads_per_gauge =
      std::max(1, options_.num_reads / options_.num_gauges);
  int reads_left = options_.num_reads;

  for (int g = 0; g < options_.num_gauges && reads_left > 0; ++g) {
    int reads = std::min(reads_per_gauge, reads_left);
    if (g + 1 == options_.num_gauges) reads = reads_left;
    reads_left -= reads;

    Rng gauge_rng = rng.Fork(static_cast<uint64_t>(g) * 2 + 1);
    GaugeTransform gauge =
        GaugeTransform::Random(converted.ising.num_spins(), &gauge_rng);
    // Programming cycle: gauge, scale, and apply control error once.
    qubo::IsingProblem programmed =
        ScaleAndPerturb(gauge.Apply(converted.ising), scale,
                        options_.control_error, options_.h_range,
                        options_.j_range, &gauge_rng);

    if (options_.backend == DeviceBackend::kSimulatedAnnealing) {
      Schedule beta{0.0, 0.0, ScheduleShape::kGeometric};
      auto [hot, cold] = SuggestBetaRange(programmed);
      beta.start = hot;
      beta.end = cold;
      programmed.Finalize();  // shared read-only across worker threads
      // The checkerboard kernels share one per-programming coloring across
      // the gauge's reads; the scalar kernel skips it.
      std::optional<SweepPlan> plan;
      if (options_.sweep_kernel != SweepKernel::kScalar) {
        plan.emplace(programmed);
      }
      const SweepPlan* plan_ptr = plan ? &*plan : nullptr;
      // Per-read slots keep `raw_reads` chronological regardless of which
      // worker executes a read: the arena is sized up front, so workers
      // pack their own disjoint word ranges with no append racing them.
      PackedAssignments gauge_raw(converted.ising.num_spins());
      if (options_.record_reads) gauge_raw.Resize(reads);
      SampleSet gauge_samples = RunReads(
          reads, options_.num_threads,
          [&, beta](int read, SampleSet* local) {
            Rng read_rng = gauge_rng.Fork(static_cast<uint64_t>(read));
            std::vector<int8_t> spins(
                static_cast<size_t>(programmed.num_spins()));
            InitSpins(options_.sweep_kernel, &read_rng, &spins);
            RunSweeps(programmed, plan_ptr, beta, options_.sa_sweeps,
                      options_.sweep_kernel, &read_rng, &spins);
            std::vector<int8_t> restored = gauge.RestoreSpins(spins);
            // True energy on the customer's problem, not the noisy one.
            double energy = physical.EnergySpins(restored);
            if (options_.record_reads) {
              gauge_raw.StoreSpins(read, restored);
            }
            local->AddSpins(restored, energy);
          },
          executor, options_.max_samples);
      result.samples.Append(std::move(gauge_samples));
      if (options_.record_reads) result.raw_reads.AppendAll(gauge_raw);
    } else {
      SqaOptions sqa_options = options_.sqa;
      sqa_options.num_reads = reads;
      sqa_options.seed = gauge_rng.Next();
      sqa_options.num_threads = options_.num_threads;
      sqa_options.executor = executor;
      sqa_options.sweep_kernel = options_.sweep_kernel;
      sqa_options.max_samples = options_.max_samples;
      SimulatedQuantumAnnealer sqa(sqa_options);
      SampleSet gauge_samples = sqa.SampleIsing(programmed);
      std::vector<int8_t> spins;
      for (const anneal::Sample& sample : gauge_samples.samples()) {
        sample.assignment.CopySpinsTo(&spins);
        std::vector<int8_t> restored = gauge.RestoreSpins(spins);
        double energy = physical.EnergySpins(restored);
        for (int k = 0; k < sample.num_occurrences; ++k) {
          if (options_.record_reads) result.raw_reads.AppendSpins(restored);
          result.samples.AddSpins(restored, energy);
        }
      }
    }
  }
  result.samples.Finalize();
  result.device_time_us = DeviceTimeForReads(options_.num_reads);
  result.wall_clock_ms = wall.ElapsedMillis();
  result.scale_factor = scale;
  return result;
}

}  // namespace anneal
}  // namespace qmqo
