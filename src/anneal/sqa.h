#ifndef QMQO_ANNEAL_SQA_H_
#define QMQO_ANNEAL_SQA_H_

/// \file sqa.h
/// Simulated quantum annealing (SQA): a path-integral Monte Carlo emulation
/// of transverse-field quantum annealing, the standard classical model of
/// the D-Wave annealing process.
///
/// The quantum Hamiltonian H(t) = A(t) * H_driver + B(t) * H_problem with a
/// decaying transverse field Gamma is Trotterized into P coupled replicas
/// ("slices") of the classical problem. Slice k couples to slice k+1
/// (periodically) on each site with ferromagnetic strength
///
///   J_perp(Gamma) = -(1 / (2 beta_slice)) * ln tanh(beta_slice * Gamma),
///
/// which diverges as Gamma -> 0, freezing the replicas into a single
/// classical state. Metropolis sweeps alternate single-site moves and
/// global (all-slice) spin flips.

#include <cstdint>
#include <vector>

#include "anneal/sample_set.h"
#include "anneal/schedule.h"
#include "anneal/sweep_kernel.h"
#include "qubo/ising.h"
#include "qubo/qubo.h"
#include "util/rng.h"

namespace qmqo {
namespace util {
class Executor;
}  // namespace util

namespace anneal {

/// Options for `SimulatedQuantumAnnealer`.
struct SqaOptions {
  int num_reads = 100;
  /// Trotter slices P.
  int num_slices = 16;
  /// Annealing steps; each step sweeps every slice once plus one global
  /// sweep.
  int sweeps = 300;
  /// Inverse temperature of the quantum system (distributed over slices).
  double beta = 16.0;
  /// Transverse-field ramp (linear, as on the hardware).
  Schedule gamma{3.0, 0.01, ScheduleShape::kLinear};
  uint64_t seed = 1;
  /// Worker threads for the read loop: 1 = serial (default, keeps
  /// wall-clock measurements comparable across machines), 0 = hardware
  /// concurrency. Results are bit-identical for every thread count (see
  /// anneal/parallel.h).
  int num_threads = 1;
  /// Worker pool to fan reads across when `num_threads != 1`; null = the
  /// process-wide `util::Executor::Shared()` pool. Never owned.
  util::Executor* executor = nullptr;
  /// Sweep kernel for the single-site slice sweeps and global moves (see
  /// anneal/sweep_kernel.h): `kScalar` is the frozen bit-exact reference;
  /// the checkerboard kernels sweep each slice in color order with batched
  /// per-class uniforms (and, for `kCheckerboardFast`, `FastExp`).
  SweepKernel sweep_kernel = SweepKernel::kScalar;
  /// Streaming top-k retention for the returned SampleSet (0 = unlimited);
  /// see SaOptions::max_samples.
  int max_samples = 0;
};

/// Path-integral Monte Carlo sampler.
class SimulatedQuantumAnnealer {
 public:
  explicit SimulatedQuantumAnnealer(const SqaOptions& options)
      : options_(options) {}

  /// Samples an Ising problem; each read reports the best slice's state.
  SampleSet SampleIsing(const qubo::IsingProblem& ising) const;

  /// QUBO wrapper (exact Ising conversion; energies on the QUBO scale).
  SampleSet Sample(const qubo::QuboProblem& problem) const;

  const SqaOptions& options() const { return options_; }

 private:
  SqaOptions options_;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_SQA_H_
