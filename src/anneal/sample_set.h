#ifndef QMQO_ANNEAL_SAMPLE_SET_H_
#define QMQO_ANNEAL_SAMPLE_SET_H_

/// \file sample_set.h
/// Collections of annealing samples, mirroring the result format of
/// D-Wave's SAPI: assignments with energies and occurrence counts, sorted
/// by energy.

#include <cstdint>
#include <vector>

namespace qmqo {
namespace anneal {

/// One observed assignment.
struct Sample {
  std::vector<uint8_t> assignment;
  double energy = 0.0;
  int num_occurrences = 1;
};

/// An energy-sorted, deduplicated collection of samples.
class SampleSet {
 public:
  SampleSet() = default;

  /// Streaming top-k retention: with a positive cap, the set keeps only the
  /// best `max_samples` *distinct* assignments (by energy, then assignment)
  /// and compacts periodically during `Add`/`Append`/`Merge`, bounding
  /// memory at ~2k assignments regardless of the read count. The retained
  /// top-k is exact — membership, energies, and occurrence counts all match
  /// the uncapped set truncated after `Finalize` — because an assignment in
  /// the overall top-k ranks in the top-k of every subset it appears in, so
  /// it survives every intermediate compaction (including the chunk-local
  /// sets of the parallel read engine, keeping capped results bit-identical
  /// at any thread count). `total_reads` still counts every read, including
  /// those whose assignments were dropped. 0 = unlimited (the default).
  void set_max_samples(int max_samples) {
    max_samples_ = max_samples > 0 ? max_samples : 0;
  }
  int max_samples() const { return max_samples_; }

  /// Records one read. Not deduplicated until `Finalize`.
  void Add(std::vector<uint8_t> assignment, double energy);

  /// Sorts by energy (ascending) and merges identical assignments.
  void Finalize();

  /// Samples in ascending energy order (after `Finalize`).
  const std::vector<Sample>& samples() const { return samples_; }

  bool empty() const { return samples_.empty(); }

  /// The lowest-energy sample; requires a non-empty set.
  const Sample& best() const { return samples_.front(); }

  /// Total number of reads recorded (sum of occurrence counts).
  int total_reads() const { return total_reads_; }

  /// Merges another sample set into this one. When both sets are already
  /// finalized this is a linear two-way merge (no re-sort); the result is
  /// finalized either way.
  void Merge(const SampleSet& other);

  /// Appends another set's samples without sorting or deduplicating.
  /// Cheaper than `Merge` when accumulating many partial sets (e.g. the
  /// per-thread sets of the parallel read engine): append them all, then
  /// `Finalize` once. The rvalue overload moves the assignment vectors
  /// instead of copying them.
  void Append(const SampleSet& other);
  void Append(SampleSet&& other);

  /// Shifts every sample's energy by `offset` in place (sample order is
  /// unaffected). Used to re-express Ising energies on the QUBO scale.
  void AddEnergyOffset(double offset);

 private:
  /// Sort + dedup + truncate once the buffer outgrows twice the cap
  /// (amortized O(log) per add); no-op without a cap.
  void MaybeCompact();

  std::vector<Sample> samples_;
  int total_reads_ = 0;
  int max_samples_ = 0;
  bool finalized_ = false;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_SAMPLE_SET_H_
