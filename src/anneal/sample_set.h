#ifndef QMQO_ANNEAL_SAMPLE_SET_H_
#define QMQO_ANNEAL_SAMPLE_SET_H_

/// \file sample_set.h
/// Collections of annealing samples, mirroring the result format of
/// D-Wave's SAPI: assignments with energies and occurrence counts, sorted
/// by energy.
///
/// Storage model: assignments live bit-packed in one `PackedAssignments`
/// arena per set (64 spins per word — see anneal/packed.h), not as one
/// heap-allocated byte vector per sample. A retained 2048-spin sample costs
/// 256 bytes of pooled words plus a 16-byte entry record instead of a
/// ~2 KB `std::vector<uint8_t>`; `Sample` is therefore a lightweight *view*
/// (an `AssignmentRef` plus energy and count) whose assignment bits are
/// invalidated by the next mutation of the owning set, exactly like vector
/// iterators. All assignments in one set share one width (the problem
/// size), which every sampler guarantees by construction.
///
/// The ordering contract is unchanged from the byte-vector representation:
/// `Finalize` sorts by (energy, assignment) where assignment order is the
/// unpacked byte-lexicographic order (`AssignmentRef::Compare` reproduces
/// it bit-for-bit), so finalized sets — including capped top-k sets and the
/// parallel read engine's merged chunk results — are bit-identical to what
/// the unpacked representation produced.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "anneal/packed.h"

namespace qmqo {
namespace anneal {

/// One observed assignment: a view into the owning set's packed arena.
/// Cheap to copy; `assignment` is invalidated by mutation of the set.
struct Sample {
  AssignmentRef assignment;
  double energy = 0.0;
  int num_occurrences = 1;
};

/// An energy-sorted, deduplicated collection of samples.
class SampleSet {
 public:
  SampleSet() = default;

  /// Streaming top-k retention: with a positive cap, the set keeps only the
  /// best `max_samples` *distinct* assignments (by energy, then assignment)
  /// and compacts periodically during `Add`/`Append`/`Merge`, bounding
  /// memory at ~2k assignments regardless of the read count. The retained
  /// top-k is exact — membership, energies, and occurrence counts all match
  /// the uncapped set truncated after `Finalize` — because an assignment in
  /// the overall top-k ranks in the top-k of every subset it appears in, so
  /// it survives every intermediate compaction (including the chunk-local
  /// sets of the parallel read engine, keeping capped results bit-identical
  /// at any thread count). `total_reads` still counts every read, including
  /// those whose assignments were dropped. 0 = unlimited (the default).
  void set_max_samples(int max_samples) {
    max_samples_ = max_samples > 0 ? max_samples : 0;
  }
  int max_samples() const { return max_samples_; }

  /// Records one read from 0/1 bytes. Not deduplicated until `Finalize`.
  void Add(const std::vector<uint8_t>& assignment, double energy) {
    AddBytes(assignment.data(), static_cast<int>(assignment.size()), energy);
  }
  void AddBytes(const uint8_t* bytes, int n, double energy);

  /// Records one read straight from ±1 spins — the sampler read-out path:
  /// the spins are bit-packed word-wise into the arena with no intermediate
  /// byte vector.
  void AddSpins(const int8_t* spins, int n, double energy);
  void AddSpins(const std::vector<int8_t>& spins, double energy) {
    AddSpins(spins.data(), static_cast<int>(spins.size()), energy);
  }

  /// Sorts by energy (ascending) and merges identical assignments. Also
  /// rebuilds the arena in sorted order, releasing the words of merged
  /// (and, under a cap, dropped) samples.
  void Finalize();

  /// Random access view of sample `i` (after `Finalize`: ascending energy).
  Sample operator[](size_t i) const { return View(i); }

  /// Number of stored (post-`Finalize`: distinct) samples.
  size_t size() const { return entries_.size(); }

  /// Lightweight range over the samples, so callers keep writing
  /// `set.samples().size()`, `set.samples()[i]`, and
  /// `for (const Sample& s : set.samples())` against the packed storage.
  class SampleRange {
   public:
    class const_iterator {
     public:
      const_iterator(const SampleSet* set, size_t index)
          : set_(set), index_(index) {}
      Sample operator*() const { return set_->View(index_); }
      const_iterator& operator++() {
        ++index_;
        return *this;
      }
      friend bool operator==(const const_iterator& a,
                             const const_iterator& b) {
        return a.index_ == b.index_;
      }
      friend bool operator!=(const const_iterator& a,
                             const const_iterator& b) {
        return a.index_ != b.index_;
      }

     private:
      const SampleSet* set_;
      size_t index_;
    };

    explicit SampleRange(const SampleSet* set) : set_(set) {}
    size_t size() const { return set_->size(); }
    bool empty() const { return set_->size() == 0; }
    Sample operator[](size_t i) const { return set_->View(i); }
    Sample front() const { return set_->View(0); }
    const_iterator begin() const { return const_iterator(set_, 0); }
    const_iterator end() const { return const_iterator(set_, set_->size()); }

   private:
    const SampleSet* set_;
  };
  SampleRange samples() const { return SampleRange(this); }

  bool empty() const { return entries_.empty(); }

  /// The lowest-energy sample; requires a non-empty set.
  Sample best() const { return View(0); }

  /// Total number of reads recorded (sum of occurrence counts).
  int total_reads() const { return total_reads_; }

  /// Merges another sample set into this one. When both sets are already
  /// finalized this is a linear two-way merge (no re-sort); the result is
  /// finalized either way. Both sets must hold assignments of one common
  /// width (an empty set adopts the other's).
  void Merge(const SampleSet& other);

  /// Appends another set's samples without sorting or deduplicating.
  /// Cheaper than `Merge` when accumulating many partial sets (e.g. the
  /// per-thread sets of the parallel read engine): append them all, then
  /// `Finalize` once. Appending into an empty set moves the other set's
  /// arena instead of copying it; otherwise the words are copied in one
  /// flat block.
  void Append(const SampleSet& other);
  void Append(SampleSet&& other);

  /// Shifts every sample's energy by `offset` in place (sample order is
  /// unaffected). Used to re-express Ising energies on the QUBO scale.
  void AddEnergyOffset(double offset);

  /// The packed arena itself (entry order, i.e. energy-sorted after
  /// `Finalize`) — serialized by the golden determinism fixtures and
  /// measured by the bench's memory accounting.
  const PackedAssignments& assignments() const { return pool_; }

  /// Heap bytes held by the set: arena words plus entry records. The
  /// number behind the bench's `bytes_per_sample`.
  size_t memory_bytes() const {
    return pool_.memory_bytes() + entries_.capacity() * sizeof(Entry);
  }

 private:
  /// Entry record: 16 bytes per retained sample next to the packed words.
  struct Entry {
    double energy;
    int32_t slot;
    int32_t num_occurrences;
  };

  Sample View(size_t i) const {
    const Entry& entry = entries_[i];
    return Sample{pool_[entry.slot], entry.energy, entry.num_occurrences};
  }

  /// Sort + dedup + truncate once the buffer outgrows twice the cap
  /// (amortized O(log) per add); no-op without a cap.
  void MaybeCompact();

  PackedAssignments pool_;
  std::vector<Entry> entries_;
  int total_reads_ = 0;
  int max_samples_ = 0;
  bool finalized_ = false;
};

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_SAMPLE_SET_H_
