#include "anneal/sample_set.h"

#include <algorithm>
#include <cassert>

namespace qmqo {
namespace anneal {

void SampleSet::Add(std::vector<uint8_t> assignment, double energy) {
  Sample sample;
  sample.assignment = std::move(assignment);
  sample.energy = energy;
  sample.num_occurrences = 1;
  samples_.push_back(std::move(sample));
  total_reads_ += 1;
  finalized_ = false;
}

void SampleSet::Finalize() {
  if (finalized_) return;
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) {
              if (a.energy != b.energy) return a.energy < b.energy;
              return a.assignment < b.assignment;
            });
  std::vector<Sample> merged;
  for (Sample& sample : samples_) {
    if (!merged.empty() && merged.back().assignment == sample.assignment) {
      merged.back().num_occurrences += sample.num_occurrences;
    } else {
      merged.push_back(std::move(sample));
    }
  }
  samples_ = std::move(merged);
  finalized_ = true;
}

void SampleSet::Merge(const SampleSet& other) {
  for (const Sample& sample : other.samples_) {
    samples_.push_back(sample);
  }
  total_reads_ += other.total_reads_;
  finalized_ = false;
  Finalize();
}

}  // namespace anneal
}  // namespace qmqo
