#include "anneal/sample_set.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

namespace qmqo {
namespace anneal {
namespace {

/// The (energy, assignment) total order of the SampleSet contract;
/// assignment order is unpacked byte-lexicographic (see packed.h).
bool EntryLess(double energy_a, const AssignmentRef& a, double energy_b,
               const AssignmentRef& b) {
  if (energy_a != energy_b) return energy_a < energy_b;
  return a.Compare(b) < 0;
}

}  // namespace

void SampleSet::AddBytes(const uint8_t* bytes, int n, double energy) {
  const int slot = pool_.AppendBytes(bytes, n);
  entries_.push_back(Entry{energy, slot, 1});
  total_reads_ += 1;
  finalized_ = false;
  MaybeCompact();
}

void SampleSet::AddSpins(const int8_t* spins, int n, double energy) {
  const int slot = pool_.AppendSpins(spins, n);
  entries_.push_back(Entry{energy, slot, 1});
  total_reads_ += 1;
  finalized_ = false;
  MaybeCompact();
}

void SampleSet::MaybeCompact() {
  if (max_samples_ <= 0) return;
  if (static_cast<int>(entries_.size()) < 2 * max_samples_ + 64) return;
  // Finalize sorts, dedups, truncates to the cap, and rebuilds the arena
  // without the dropped words; total_reads_ keeps counting dropped reads.
  // Subsequent Adds clear finalized_ again.
  Finalize();
}

void SampleSet::Finalize() {
  if (finalized_) return;
  std::vector<int32_t> order(entries_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](int32_t x, int32_t y) {
    const Entry& a = entries_[static_cast<size_t>(x)];
    const Entry& b = entries_[static_cast<size_t>(y)];
    return EntryLess(a.energy, pool_[a.slot], b.energy, pool_[b.slot]);
  });
  // Rebuild arena + entries in sorted order, coalescing adjacent duplicate
  // assignments. Merged slots come out contiguous from 0, so the cap
  // truncation below is a flat arena truncation.
  PackedAssignments merged_pool(pool_.num_bits());
  merged_pool.Reserve(static_cast<int>(entries_.size()));
  std::vector<Entry> merged;
  merged.reserve(entries_.size());
  for (int32_t index : order) {
    const Entry& entry = entries_[static_cast<size_t>(index)];
    if (!merged.empty() &&
        merged_pool[merged.back().slot] == pool_[entry.slot]) {
      merged.back().num_occurrences += entry.num_occurrences;
    } else {
      Entry copy = entry;
      copy.slot = merged_pool.AppendFrom(pool_, entry.slot);
      merged.push_back(copy);
    }
  }
  if (max_samples_ > 0 &&
      static_cast<int>(merged.size()) > max_samples_) {
    merged.resize(static_cast<size_t>(max_samples_));
    merged_pool.Truncate(max_samples_);
  }
  // Release the slack dedup/truncation left behind the pre-merge reserve:
  // memory_bytes() reports capacity, so finalized sets must hold exactly
  // their retained words for the bytes-per-sample accounting to be honest.
  merged_pool.ShrinkToFit();
  merged.shrink_to_fit();
  pool_ = std::move(merged_pool);
  entries_ = std::move(merged);
  finalized_ = true;
}

void SampleSet::Merge(const SampleSet& other) {
  if (!finalized_ || !other.finalized_) {
    Append(other);
    Finalize();
    return;
  }
  assert(pool_.num_bits() == 0 || other.pool_.num_bits() == 0 ||
         pool_.num_bits() == other.pool_.num_bits());
  // Both inputs are sorted: linear merge + coalesce instead of re-sorting.
  PackedAssignments merged_pool(
      pool_.num_bits() != 0 ? pool_.num_bits() : other.pool_.num_bits());
  merged_pool.Reserve(
      static_cast<int>(entries_.size() + other.entries_.size()));
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  auto emit = [&merged, &merged_pool](const PackedAssignments& src,
                                      const Entry& entry) {
    if (!merged.empty() &&
        merged_pool[merged.back().slot] == src[entry.slot]) {
      merged.back().num_occurrences += entry.num_occurrences;
    } else {
      Entry copy = entry;
      copy.slot = merged_pool.AppendFrom(src, entry.slot);
      merged.push_back(copy);
    }
  };
  size_t a = 0;
  size_t b = 0;
  while (a < entries_.size() && b < other.entries_.size()) {
    const Entry& ea = entries_[a];
    const Entry& eb = other.entries_[b];
    if (EntryLess(eb.energy, other.pool_[eb.slot], ea.energy,
                  pool_[ea.slot])) {
      emit(other.pool_, eb);
      ++b;
    } else {
      emit(pool_, ea);
      ++a;
    }
  }
  while (a < entries_.size()) emit(pool_, entries_[a++]);
  while (b < other.entries_.size()) emit(other.pool_, other.entries_[b++]);
  if (max_samples_ > 0 &&
      static_cast<int>(merged.size()) > max_samples_) {
    merged.resize(static_cast<size_t>(max_samples_));
    merged_pool.Truncate(max_samples_);
  }
  merged_pool.ShrinkToFit();
  merged.shrink_to_fit();
  pool_ = std::move(merged_pool);
  entries_ = std::move(merged);
  total_reads_ += other.total_reads_;
}

void SampleSet::Append(const SampleSet& other) {
  const int base = pool_.AppendAll(other.pool_);
  for (const Entry& entry : other.entries_) {
    entries_.push_back(
        Entry{entry.energy, entry.slot + base, entry.num_occurrences});
  }
  total_reads_ += other.total_reads_;
  finalized_ = false;
  MaybeCompact();
}

void SampleSet::Append(SampleSet&& other) {
  if (entries_.empty() && pool_.empty()) {
    // Steal the arena outright: the common first append of the parallel
    // read engine's chunk-local accumulation.
    pool_ = std::move(other.pool_);
    entries_ = std::move(other.entries_);
    total_reads_ += other.total_reads_;
    finalized_ = false;
  } else {
    Append(static_cast<const SampleSet&>(other));
  }
  other.pool_.Reset(0);
  other.entries_.clear();
  other.total_reads_ = 0;
  MaybeCompact();
}

void SampleSet::AddEnergyOffset(double offset) {
  for (Entry& entry : entries_) {
    entry.energy += offset;
  }
  if (!finalized_) return;
  // A uniform shift preserves the energy order, but rounding can collapse
  // two distinct adjacent energies into a tie, where the (energy,
  // assignment) invariant that Merge's linear fast path relies on may no
  // longer hold. Detect and re-finalize in that (rare) case.
  for (size_t i = 1; i < entries_.size(); ++i) {
    const Entry& a = entries_[i - 1];
    const Entry& b = entries_[i];
    if (a.energy > b.energy ||
        (a.energy == b.energy &&
         pool_[a.slot].Compare(pool_[b.slot]) > 0)) {
      finalized_ = false;
      Finalize();
      return;
    }
  }
}

}  // namespace anneal
}  // namespace qmqo
