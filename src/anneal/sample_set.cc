#include "anneal/sample_set.h"

#include <algorithm>
#include <cassert>

namespace qmqo {
namespace anneal {

void SampleSet::Add(std::vector<uint8_t> assignment, double energy) {
  Sample sample;
  sample.assignment = std::move(assignment);
  sample.energy = energy;
  sample.num_occurrences = 1;
  samples_.push_back(std::move(sample));
  total_reads_ += 1;
  finalized_ = false;
  MaybeCompact();
}

void SampleSet::MaybeCompact() {
  if (max_samples_ <= 0) return;
  if (static_cast<int>(samples_.size()) < 2 * max_samples_ + 64) return;
  // Finalize sorts, dedups, and truncates to the cap; total_reads_ keeps
  // counting dropped reads. Subsequent Adds clear finalized_ again.
  Finalize();
}

void SampleSet::Finalize() {
  if (finalized_) return;
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) {
              if (a.energy != b.energy) return a.energy < b.energy;
              return a.assignment < b.assignment;
            });
  std::vector<Sample> merged;
  for (Sample& sample : samples_) {
    if (!merged.empty() && merged.back().assignment == sample.assignment) {
      merged.back().num_occurrences += sample.num_occurrences;
    } else {
      merged.push_back(std::move(sample));
    }
  }
  samples_ = std::move(merged);
  if (max_samples_ > 0 &&
      static_cast<int>(samples_.size()) > max_samples_) {
    samples_.resize(static_cast<size_t>(max_samples_));
  }
  finalized_ = true;
}

void SampleSet::Merge(const SampleSet& other) {
  if (!finalized_ || !other.finalized_) {
    Append(other);
    Finalize();
    return;
  }
  // Both inputs are sorted: linear merge + coalesce instead of re-sorting.
  auto less = [](const Sample& a, const Sample& b) {
    if (a.energy != b.energy) return a.energy < b.energy;
    return a.assignment < b.assignment;
  };
  std::vector<Sample> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  auto emit = [&merged](Sample sample) {
    if (!merged.empty() && merged.back().assignment == sample.assignment) {
      merged.back().num_occurrences += sample.num_occurrences;
    } else {
      merged.push_back(std::move(sample));
    }
  };
  size_t a = 0;
  size_t b = 0;
  while (a < samples_.size() && b < other.samples_.size()) {
    if (less(other.samples_[b], samples_[a])) {
      emit(other.samples_[b++]);
    } else {
      emit(std::move(samples_[a++]));
    }
  }
  while (a < samples_.size()) emit(std::move(samples_[a++]));
  while (b < other.samples_.size()) emit(other.samples_[b++]);
  samples_ = std::move(merged);
  if (max_samples_ > 0 &&
      static_cast<int>(samples_.size()) > max_samples_) {
    samples_.resize(static_cast<size_t>(max_samples_));
  }
  total_reads_ += other.total_reads_;
}

void SampleSet::Append(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  total_reads_ += other.total_reads_;
  finalized_ = false;
  MaybeCompact();
}

void SampleSet::Append(SampleSet&& other) {
  samples_.insert(samples_.end(),
                  std::make_move_iterator(other.samples_.begin()),
                  std::make_move_iterator(other.samples_.end()));
  total_reads_ += other.total_reads_;
  finalized_ = false;
  other.samples_.clear();
  other.total_reads_ = 0;
  MaybeCompact();
}

void SampleSet::AddEnergyOffset(double offset) {
  for (Sample& sample : samples_) {
    sample.energy += offset;
  }
  if (!finalized_) return;
  // A uniform shift preserves the energy order, but rounding can collapse
  // two distinct adjacent energies into a tie, where the (energy,
  // assignment) invariant that Merge's linear fast path relies on may no
  // longer hold. Detect and re-finalize in that (rare) case.
  for (size_t i = 1; i < samples_.size(); ++i) {
    const Sample& a = samples_[i - 1];
    const Sample& b = samples_[i];
    if (a.energy > b.energy ||
        (a.energy == b.energy && a.assignment > b.assignment)) {
      finalized_ = false;
      Finalize();
      return;
    }
  }
}

}  // namespace anneal
}  // namespace qmqo
