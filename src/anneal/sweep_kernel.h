#ifndef QMQO_ANNEAL_SWEEP_KERNEL_H_
#define QMQO_ANNEAL_SWEEP_KERNEL_H_

/// \file sweep_kernel.h
/// Selectable Metropolis sweep kernels for the annealing samplers.
///
/// A sweep proposes one flip per spin. The three kernels trade sweep order
/// and arithmetic for throughput:
///
///  * `kScalar` — the original per-spin loop, in ascending spin order with
///    per-proposal RNG draws (`Rng::UniformReal`) and `std::exp`. This is
///    the **bit-exact reference**: its random stream and results are frozen
///    across PRs and identical at any thread count.
///  * `kCheckerboard` — a two-color ("checkerboard") sweep over the color
///    classes of `qubo::ColorGraph` (Chimera is bipartite, arbitrary CSR
///    graphs fall back to a greedy coloring). Within a class no spin's
///    local field depends on another member, so uniforms are drawn into a
///    per-class buffer up front and the decide loop runs with no loop-carried
///    dependency — parallelizable across a `util::Executor`
///    (`sweep_threads`) with bit-identical results at any thread count.
///    Exact double-precision math (`std::exp`); the random stream differs
///    from `kScalar` (batched draws, color order), so trajectories differ
///    while energy quality is statistically equivalent.
///  * `kCheckerboardFast` — the same sweep with the fast-math opt-in:
///    acceptance probabilities from `FastExp` (bounded relative error
///    `kFastExpMaxRelError`, documented below) instead of `std::exp`. Still
///    deterministic per seed and thread count; NOT covered by the
///    bit-exactness contract of the default path.
///
/// Initialization pairs with the kernels: `kScalar` keeps the legacy
/// one-`Bernoulli`-per-spin `RandomSpins`, the checkerboard kernels use
/// `RandomSpinsBatched` (64 spins bit-unpacked per `Rng::Next` call), whose
/// sequence is pinned by `tests/sweep_kernel_test.cc`.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "anneal/schedule.h"
#include "qubo/csr.h"
#include "qubo/ising.h"
#include "util/rng.h"

namespace qmqo {
namespace util {
class Executor;
}  // namespace util

namespace anneal {

/// Which Metropolis sweep implementation a sampler runs.
enum class SweepKernel {
  kScalar,
  kCheckerboard,
  kCheckerboardFast,
};

/// Canonical names: "scalar", "checkerboard", "checkerboard_fast".
const char* SweepKernelName(SweepKernel kernel);

/// Parses a canonical name (as accepted by QMQO_BENCH_KERNEL). Returns
/// false (leaving `kernel` untouched) on anything else.
bool ParseSweepKernel(const std::string& name, SweepKernel* kernel);

/// Upper bound on |FastExp(x) - exp(x)| / exp(x) over x in [-708, 0] (the
/// full range the kernels evaluate: -beta * delta with delta > 0; arguments
/// below -708 return exactly 0, where exp(x) < 4e-308 is far beneath the
/// smallest nonzero uniform 2^-53). Asserted by tests/sweep_kernel_test.cc.
inline constexpr double kFastExpMaxRelError = 5e-7;

/// Bounded-error exp for non-positive arguments: exp(x) = 2^k * exp(r) with
/// k = round(x / ln 2) and a degree-6 Taylor polynomial for exp(r),
/// |r| <= ln(2)/2. The rounding uses the shift-by-1.5*2^52 trick and the
/// 2^k scaling is exact exponent-bit arithmetic, so the whole function is
/// branch-free straight-line code (no libm — `std::floor` without SSE4.1
/// codegen would cost more than the exp it replaces; the underflow guard
/// is a `maxsd`-style clamp, not a branch). Arguments below -708 are
/// clamped: the result ~3e-308 stays beneath every nonzero 53-bit uniform,
/// so Metropolis tests behave as exp = 0 there. Within [-708, 0] the
/// relative error is the polynomial truncation error, bounded by
/// `kFastExpMaxRelError`.
inline double FastExp(double x) {
  x = x < -708.0 ? -708.0 : x;  // branchless clamp keeps the result normal
  const double kLog2E = 1.4426950408889634;
  const double kLn2 = 0.6931471805599453;
  // 1.5 * 2^52: adding it forces rounding of x * log2(e) to an integer in
  // the mantissa's low bits (|x * log2(e)| < 2^31 here, so the low 32 bits
  // hold it exactly, two's complement).
  const double kRoundMagic = 6755399441055744.0;
  double shifted = x * kLog2E + kRoundMagic;
  int64_t shifted_bits;
  std::memcpy(&shifted_bits, &shifted, sizeof(shifted_bits));
  const int64_t k = static_cast<int32_t>(shifted_bits);
  double r = x - (shifted - kRoundMagic) * kLn2;
  double p =
      1.0 +
      r * (1.0 +
           r * (0.5 +
                r * (1.0 / 6.0 +
                     r * (1.0 / 24.0 +
                          r * (1.0 / 120.0 + r * (1.0 / 720.0))))));
  // p is in [2^-1/2, 2^1/2]; adding k to its exponent field multiplies by
  // 2^k exactly. The clamp above keeps the result normal (k >= -1021).
  uint64_t bits;
  std::memcpy(&bits, &p, sizeof(bits));
  bits += static_cast<uint64_t>(k) << 52;
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Per-problem precomputation shared by every read of a sampler call: the
/// color classes the checkerboard kernels sweep, plus a **color-major
/// permuted copy** of the problem — vertices renumbered so each class is
/// contiguous (`coloring().class_members` is the permuted→original map).
/// The class pass then walks spins and fields sequentially with no member
/// indirection, which is where the checkerboard layout's cache behavior
/// comes from. Cheap for `kScalar` callers to skip (pass null to
/// `RunSweeps`).
class SweepPlan {
 public:
  explicit SweepPlan(const qubo::IsingProblem& ising);

  const qubo::Coloring& coloring() const { return coloring_; }
  int max_class_size() const { return coloring_.max_class_size(); }

  /// CSR adjacency over permuted vertex ids (neighbor ids are permuted).
  const std::vector<int32_t>& row_offsets() const { return row_offsets_; }
  const std::vector<qubo::VarId>& neighbor_ids() const {
    return neighbor_ids_;
  }
  const std::vector<double>& weights() const { return weights_; }
  /// Ising fields h over permuted vertex ids.
  const std::vector<double>& fields() const { return fields_; }

 private:
  qubo::Coloring coloring_;
  std::vector<int32_t> row_offsets_;
  std::vector<qubo::VarId> neighbor_ids_;
  std::vector<double> weights_;
  std::vector<double> fields_;
};

/// Fills `spins` with uniform random ±1, one `Bernoulli` draw per spin —
/// the legacy initialization of the bit-exact `kScalar` path.
void RandomSpins(Rng* rng, std::vector<int8_t>* spins);

/// Fills `spins` with uniform random ±1, bit-unpacking 64 spins per
/// `Rng::Next` call. Used by the checkerboard kernels (whose streams
/// already differ from `kScalar`); the sequence for a given seed is part of
/// the documented seed contract and pinned by a regression test.
void RandomSpinsBatched(Rng* rng, std::vector<int8_t>* spins);

/// Kernel-matched initialization: legacy `RandomSpins` for `kScalar`,
/// `RandomSpinsBatched` otherwise.
void InitSpins(SweepKernel kernel, Rng* rng, std::vector<int8_t>* spins);

/// Runs `sweeps` Metropolis sweeps over `spins` in place with the selected
/// kernel. `plan` may be null for `kScalar` and must outlive the call
/// otherwise (build it once per problem, share across reads). The
/// checkerboard kernels fan their per-class decide loop across
/// `sweep_threads` concurrent chunks of `executor` (null = the process-wide
/// shared pool; <= 1 = inline) with bit-identical results at any thread
/// count, because the class's uniforms are drawn serially up front and each
/// chunk writes per-index accept slots.
void RunSweeps(const qubo::IsingProblem& ising, const SweepPlan* plan,
               const Schedule& beta, int sweeps, SweepKernel kernel, Rng* rng,
               std::vector<int8_t>* spins, util::Executor* executor = nullptr,
               int sweep_threads = 1);

}  // namespace anneal
}  // namespace qmqo

#endif  // QMQO_ANNEAL_SWEEP_KERNEL_H_
