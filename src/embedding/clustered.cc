#include "embedding/clustered.h"

#include <algorithm>

#include "embedding/clique_in_cell.h"
#include "embedding/triad.h"
#include "util/string_util.h"

namespace qmqo {
namespace embedding {

Result<Embedding> ClusteredEmbedder::Embed(
    const std::vector<int>& cluster_sizes,
    const chimera::ChimeraGraph& graph) {
  int total_vars = 0;
  for (int size : cluster_sizes) {
    if (size <= 0) {
      return Status::InvalidArgument("cluster sizes must be positive");
    }
    total_vars += size;
  }
  Embedding embedding(total_vars);

  // Per-cell free shore indices; a small clique consumes k-1 indices per
  // shore, so several small clusters can share one cell (e.g. two K_3
  // regions per cell — how 253 three-plan queries fit on a 12x12 chip).
  struct CellState {
    std::vector<int> free_left;
    std::vector<int> free_right;
  };
  std::vector<CellState> cells(static_cast<size_t>(graph.num_cells()));
  for (int r = 0; r < graph.rows(); ++r) {
    for (int c = 0; c < graph.cols(); ++c) {
      CellState& cell = cells[static_cast<size_t>(r * graph.cols() + c)];
      for (int i = 0; i < graph.shore(); ++i) {
        if (graph.IsWorking(graph.IdOf(r, c, 0, i))) {
          cell.free_left.push_back(i);
        }
        if (graph.IsWorking(graph.IdOf(r, c, 1, i))) {
          cell.free_right.push_back(i);
        }
      }
    }
  }
  auto cell_state = [&](int r, int c) -> CellState& {
    return cells[static_cast<size_t>(r * graph.cols() + c)];
  };
  auto cell_used = [&](int r, int c) {
    const CellState& cell = cell_state(r, c);
    return cell.free_left.size() + cell.free_right.size() <
           2 * static_cast<size_t>(graph.shore());
  };

  int var_base = 0;
  for (size_t cluster = 0; cluster < cluster_sizes.size(); ++cluster) {
    int size = cluster_sizes[cluster];
    bool placed = false;
    if (size <= CliqueInCellEmbedder::MaxK(graph.shore())) {
      // First-fit over cells with enough free indices on both shores.
      int need = size - 1;  // single-qubit K_1 handled below
      for (int r = 0; r < graph.rows() && !placed; ++r) {
        for (int c = 0; c < graph.cols() && !placed; ++c) {
          CellState& cell = cell_state(r, c);
          if (size == 1) {
            if (cell.free_left.empty() && cell.free_right.empty()) continue;
            Chain chain;
            if (!cell.free_left.empty()) {
              chain.qubits.push_back(graph.IdOf(r, c, 0, cell.free_left[0]));
              cell.free_left.erase(cell.free_left.begin());
            } else {
              chain.qubits.push_back(graph.IdOf(r, c, 1, cell.free_right[0]));
              cell.free_right.erase(cell.free_right.begin());
            }
            embedding.SetChain(var_base, std::move(chain));
            placed = true;
            break;
          }
          if (static_cast<int>(cell.free_left.size()) < need ||
              static_cast<int>(cell.free_right.size()) < need) {
            continue;
          }
          // Roles: {L_a}, {R_b}, then (L, R) pairs — any free indices work
          // because the cell is a complete bipartite coupler graph.
          {
            Chain chain;
            chain.qubits.push_back(graph.IdOf(r, c, 0, cell.free_left[0]));
            embedding.SetChain(var_base, std::move(chain));
          }
          {
            Chain chain;
            chain.qubits.push_back(graph.IdOf(r, c, 1, cell.free_right[0]));
            embedding.SetChain(var_base + 1, std::move(chain));
          }
          for (int i = 0; i < size - 2; ++i) {
            Chain chain;
            chain.qubits.push_back(
                graph.IdOf(r, c, 0, cell.free_left[static_cast<size_t>(1 + i)]));
            chain.qubits.push_back(graph.IdOf(
                r, c, 1, cell.free_right[static_cast<size_t>(1 + i)]));
            embedding.SetChain(var_base + 2 + i, std::move(chain));
          }
          cell.free_left.erase(cell.free_left.begin(),
                               cell.free_left.begin() + need);
          cell.free_right.erase(cell.free_right.begin(),
                                cell.free_right.begin() + need);
          placed = true;
        }
      }
    } else {
      // TRIAD block region: first free m x m block with enough intact
      // chains.
      int m = TriadEmbedder::BlockSize(size, graph.shore());
      for (int r = 0; r + m <= graph.rows() && !placed; ++r) {
        for (int c = 0; c + m <= graph.cols() && !placed; ++c) {
          bool free_block = true;
          for (int dr = 0; dr < m && free_block; ++dr) {
            for (int dc = 0; dc < m && free_block; ++dc) {
              if (cell_used(r + dr, c + dc)) free_block = false;
            }
          }
          if (!free_block) continue;
          TriadOptions options;
          options.origin_row = r;
          options.origin_col = c;
          auto block = TriadEmbedder::Embed(size, graph, options);
          if (!block.ok()) continue;
          for (int v = 0; v < size; ++v) {
            embedding.SetChain(var_base + v, block->chain(v));
          }
          // The whole block is consumed, including unused spare chains.
          for (int dr = 0; dr < m; ++dr) {
            for (int dc = 0; dc < m; ++dc) {
              cell_state(r + dr, c + dc).free_left.clear();
              cell_state(r + dr, c + dc).free_right.clear();
            }
          }
          placed = true;
        }
      }
    }
    if (!placed) {
      return Status::ResourceExhausted(StrFormat(
          "no remaining region can host cluster %zu (%d variables); placed "
          "%zu of %zu clusters",
          cluster, size, cluster, cluster_sizes.size()));
    }
    var_base += size;
  }
  return embedding;
}

std::vector<std::pair<chimera::QubitId, chimera::QubitId>>
PairMatchingEmbedder::MatchPairs(const chimera::ChimeraGraph& graph) {
  // match[q] = partner qubit, or -1.
  std::vector<chimera::QubitId> match(static_cast<size_t>(graph.num_qubits()),
                                      -1);
  auto matched = [&](chimera::QubitId q) {
    return match[static_cast<size_t>(q)] != -1;
  };
  // Pass 1: intra-cell couplers, pairing working left/right shore qubits.
  for (int r = 0; r < graph.rows(); ++r) {
    for (int c = 0; c < graph.cols(); ++c) {
      std::vector<chimera::QubitId> left;
      std::vector<chimera::QubitId> right;
      for (int i = 0; i < graph.shore(); ++i) {
        chimera::QubitId lq = graph.IdOf(r, c, 0, i);
        chimera::QubitId rq = graph.IdOf(r, c, 1, i);
        if (graph.IsWorking(lq)) left.push_back(lq);
        if (graph.IsWorking(rq)) right.push_back(rq);
      }
      size_t count = std::min(left.size(), right.size());
      for (size_t i = 0; i < count; ++i) {
        match[static_cast<size_t>(left[i])] = right[i];
        match[static_cast<size_t>(right[i])] = left[i];
      }
    }
  }
  // Pass 2: greedy over the remaining (inter-cell) couplers.
  for (chimera::QubitId q = 0; q < graph.num_qubits(); ++q) {
    if (matched(q) || graph.IsBroken(q)) continue;
    for (chimera::QubitId n : graph.Neighbors(q)) {
      if (n <= q) continue;
      if (matched(n) || graph.IsBroken(n)) continue;
      match[static_cast<size_t>(q)] = n;
      match[static_cast<size_t>(n)] = q;
      break;
    }
  }
  // Pass 3: length-3 augmenting paths — unmatched u, matched edge (v, w),
  // unmatched x with couplers u-v and w-x. Re-matching to (u,v), (w,x)
  // gains one pair. Iterate to a fixed point.
  bool improved = true;
  while (improved) {
    improved = false;
    for (chimera::QubitId u = 0; u < graph.num_qubits(); ++u) {
      if (matched(u) || graph.IsBroken(u)) continue;
      bool augmented = false;
      for (chimera::QubitId v : graph.Neighbors(u)) {
        if (graph.IsBroken(v) || !matched(v)) continue;
        chimera::QubitId w = match[static_cast<size_t>(v)];
        for (chimera::QubitId x : graph.Neighbors(w)) {
          if (x == u || x == v || graph.IsBroken(x) || matched(x)) continue;
          match[static_cast<size_t>(u)] = v;
          match[static_cast<size_t>(v)] = u;
          match[static_cast<size_t>(w)] = x;
          match[static_cast<size_t>(x)] = w;
          augmented = true;
          improved = true;
          break;
        }
        if (augmented) break;
      }
    }
  }
  std::vector<std::pair<chimera::QubitId, chimera::QubitId>> pairs;
  for (chimera::QubitId q = 0; q < graph.num_qubits(); ++q) {
    chimera::QubitId partner = match[static_cast<size_t>(q)];
    if (partner > q) pairs.emplace_back(q, partner);
  }
  return pairs;
}

Result<Embedding> PairMatchingEmbedder::Embed(
    int num_queries, const chimera::ChimeraGraph& graph) {
  if (num_queries < 0) {
    return Status::InvalidArgument(
        StrFormat("num_queries must be >= 0, got %d", num_queries));
  }
  auto pairs = MatchPairs(graph);
  if (static_cast<int>(pairs.size()) < num_queries) {
    return Status::ResourceExhausted(
        StrFormat("matching hosts %zu two-plan queries, %d requested",
                  pairs.size(), num_queries));
  }
  Embedding embedding(2 * num_queries);
  for (int q = 0; q < num_queries; ++q) {
    Chain plan_a;
    plan_a.qubits.push_back(pairs[static_cast<size_t>(q)].first);
    Chain plan_b;
    plan_b.qubits.push_back(pairs[static_cast<size_t>(q)].second);
    embedding.SetChain(2 * q, std::move(plan_a));
    embedding.SetChain(2 * q + 1, std::move(plan_b));
  }
  return embedding;
}

}  // namespace embedding
}  // namespace qmqo
