#include "embedding/triad.h"

#include <algorithm>

#include "util/string_util.h"

namespace qmqo {
namespace embedding {
namespace {

/// Builds the candidate chain of TRIAD variable (a, b) at block origin
/// (r0, c0); returns an empty chain if any qubit is broken.
Chain BuildChain(const chimera::ChimeraGraph& graph, int r0, int c0, int m,
                 int a, int b) {
  Chain chain;
  chain.qubits.reserve(static_cast<size_t>(m + 1));
  // Horizontal leg in path order: (a, 0) .. (a, a), right shore.
  for (int c = 0; c <= a; ++c) {
    chimera::QubitId q = graph.IdOf(r0 + a, c0 + c, 1, b);
    if (graph.IsBroken(q)) return Chain{};
    chain.qubits.push_back(q);
  }
  // Vertical leg: (a, a) .. (m-1, a), left shore. The first vertical qubit
  // shares cell (a, a) with the last horizontal qubit (intra-cell coupler).
  for (int r = a; r < m; ++r) {
    chimera::QubitId q = graph.IdOf(r0 + r, c0 + a, 0, b);
    if (graph.IsBroken(q)) return Chain{};
    chain.qubits.push_back(q);
  }
  return chain;
}

}  // namespace

int TriadEmbedder::BlockSize(int num_vars, int shore) {
  return (num_vars + shore - 1) / shore;
}

int TriadEmbedder::QubitsNeeded(int num_vars, int shore) {
  return num_vars * (BlockSize(num_vars, shore) + 1);
}

int TriadEmbedder::MaxCliqueSize(int rows, int cols, int shore) {
  return std::min(rows, cols) * shore;
}

Result<Embedding> TriadEmbedder::Embed(int num_vars,
                                       const chimera::ChimeraGraph& graph,
                                       const TriadOptions& options) {
  if (num_vars <= 0) {
    return Status::InvalidArgument("num_vars must be positive");
  }
  const int shore = graph.shore();
  const int m = BlockSize(num_vars, shore);
  if (m > graph.rows() || m > graph.cols()) {
    return Status::ResourceExhausted(StrFormat(
        "K_%d needs a %dx%d cell block; graph is %dx%d cells", num_vars, m, m,
        graph.rows(), graph.cols()));
  }
  // A fixed origin that cannot host the block is a caller error, not a
  // capacity problem — report it as such instead of falling through to a
  // misleading "0 intact chains" failure.
  if (options.origin_row >= 0 && options.origin_row + m > graph.rows()) {
    return Status::InvalidArgument(StrFormat(
        "origin row %d leaves no room for a %dx%d block in %d rows",
        options.origin_row, m, m, graph.rows()));
  }
  if (options.origin_col >= 0 && options.origin_col + m > graph.cols()) {
    return Status::InvalidArgument(StrFormat(
        "origin col %d leaves no room for a %dx%d block in %d cols",
        options.origin_col, m, m, graph.cols()));
  }

  int best_intact = -1;
  Embedding best(num_vars);
  const int r_lo = options.origin_row >= 0 ? options.origin_row : 0;
  const int r_hi =
      options.origin_row >= 0 ? options.origin_row : graph.rows() - m;
  const int c_lo = options.origin_col >= 0 ? options.origin_col : 0;
  const int c_hi =
      options.origin_col >= 0 ? options.origin_col : graph.cols() - m;
  for (int r0 = r_lo; r0 <= r_hi; ++r0) {
    for (int c0 = c_lo; c0 <= c_hi; ++c0) {
      if (r0 + m > graph.rows() || c0 + m > graph.cols()) continue;
      // Collect intact chains at this placement.
      std::vector<Chain> intact;
      for (int a = 0; a < m && static_cast<int>(intact.size()) < num_vars;
           ++a) {
        for (int b = 0; b < shore; ++b) {
          Chain chain = BuildChain(graph, r0, c0, m, a, b);
          if (!chain.qubits.empty()) {
            intact.push_back(std::move(chain));
            if (static_cast<int>(intact.size()) == num_vars) break;
          }
        }
      }
      if (static_cast<int>(intact.size()) > best_intact) {
        best_intact = static_cast<int>(intact.size());
        Embedding embedding(num_vars);
        for (int v = 0; v < static_cast<int>(intact.size()) && v < num_vars;
             ++v) {
          embedding.SetChain(v, intact[static_cast<size_t>(v)]);
        }
        best = std::move(embedding);
        if (best_intact >= num_vars) {
          return best;
        }
      }
    }
  }
  return Status::ResourceExhausted(StrFormat(
      "best placement provides only %d of %d intact TRIAD chains",
      std::max(best_intact, 0), num_vars));
}

}  // namespace embedding
}  // namespace qmqo
