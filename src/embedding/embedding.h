#ifndef QMQO_EMBEDDING_EMBEDDING_H_
#define QMQO_EMBEDDING_EMBEDDING_H_

/// \file embedding.h
/// Minor embeddings: the assignment of logical QUBO variables to chains of
/// physical qubits (Section 5 of the paper).
///
/// An embedding is valid for a hardware graph when every chain consists of
/// distinct working qubits and induces a connected subgraph, and chains are
/// pairwise disjoint. It is valid for a *logical problem* when additionally
/// every quadratic term of the problem can be realized by at least one
/// coupler between the two chains involved.

#include <string>
#include <vector>

#include "chimera/topology.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace embedding {

/// The qubits representing one logical variable. When the chain is a path,
/// qubits should be stored in path order; general connected chains are
/// allowed (a spanning tree is used for the chain couplings).
struct Chain {
  std::vector<chimera::QubitId> qubits;

  int size() const { return static_cast<int>(qubits.size()); }
};

/// A full logical-variable -> chain map.
class Embedding {
 public:
  /// Creates an embedding with `num_vars` empty chains.
  explicit Embedding(int num_vars) : chains_(static_cast<size_t>(num_vars)) {}

  int num_vars() const { return static_cast<int>(chains_.size()); }

  void SetChain(int var, Chain chain) {
    chains_[static_cast<size_t>(var)] = std::move(chain);
  }

  const Chain& chain(int var) const { return chains_[static_cast<size_t>(var)]; }

  /// Total number of physical qubits consumed.
  int TotalQubits() const;

  int MaxChainLength() const;
  double MeanChainLength() const;

  /// Maps each qubit id to the variable whose chain contains it (-1 when
  /// unused). Size = graph.num_qubits().
  std::vector<int> QubitToVar(const chimera::ChimeraGraph& graph) const;

  /// Validates chains against the hardware only: distinct working qubits,
  /// pairwise-disjoint chains, each chain connected via couplers.
  Status VerifyStructure(const chimera::ChimeraGraph& graph) const;

  /// `VerifyStructure` plus: every quadratic term of `logical` has at least
  /// one usable coupler between the two chains.
  Status VerifyForProblem(const chimera::ChimeraGraph& graph,
                          const qubo::QuboProblem& logical) const;

  /// One-line summary with chain-length statistics.
  std::string Summary() const;

 private:
  std::vector<Chain> chains_;
};

/// The physical coupler realizing one logical quadratic term: an endpoint
/// in each chain. `qubit_a` is -1 for terms that were not placed (zero
/// logical weight).
struct CrossChainPlacement {
  chimera::QubitId qubit_a = -1;  ///< in chain(term.i)
  chimera::QubitId qubit_b = -1;  ///< in chain(term.j)
};

/// Selects one usable coupler for every nonzero quadratic term of
/// `logical`, aligned with `logical.interactions()`. `owner` must be
/// `embedding.QubitToVar(graph)`.
///
/// Selection priority matches the historical per-term scan — first qubit in
/// chain(term.i) order, then first neighbor in ascending id order — so the
/// compiled physical problem is bit-identical to what the old double scan
/// produced. Each chain is scanned once in total (not once per term), which
/// is what makes this the shared fast path for both `VerifyForProblem` and
/// `EmbeddedQubo::Create`.
///
/// Fails with FailedPrecondition when some nonzero term has no usable
/// coupler between its chains.
Result<std::vector<CrossChainPlacement>> PlaceCrossChainCouplers(
    const Embedding& embedding, const chimera::ChimeraGraph& graph,
    const qubo::QuboProblem& logical, const std::vector<int>& owner);

/// A usable coupler joining chains of two different variables.
struct ChainCoupler {
  int var_a = -1;
  int var_b = -1;
  chimera::QubitId qubit_a = -1;
  chimera::QubitId qubit_b = -1;
};

/// Enumerates all usable couplers between chains of distinct variables.
/// This is how the paper-style workload generator decides which plan pairs
/// may share work ("test cases that map well to the quantum annealer").
std::vector<ChainCoupler> CrossChainCouplers(
    const Embedding& embedding, const chimera::ChimeraGraph& graph);

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_EMBEDDING_H_
