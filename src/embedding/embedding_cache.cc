#include "embedding/embedding_cache.h"

#include <utility>

namespace qmqo {
namespace embedding {
namespace {

/// SplitMix64 finalizer — the standard avalanche mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A running 64-bit structure hash; two instances with distinct seeds give
/// the cache its 128-bit key.
struct Hasher {
  uint64_t state;
  explicit Hasher(uint64_t seed) : state(seed) {}
  void Add(uint64_t v) { state = Mix64(state ^ Mix64(v)); }
};

}  // namespace

EmbeddingCache::CacheKey EmbeddingCache::KeyOf(
    const qubo::QuboProblem& logical, const Embedding& embedding,
    const chimera::ChimeraGraph& graph) {
  Hasher ha(0x51ed270b9f8f51abULL);
  Hasher hb(0xc2b2ae3d27d4eb4fULL);
  auto add = [&ha, &hb](uint64_t v) {
    ha.Add(v);
    hb.Add(v);
  };

  // Logical structure: variable count + CSR adjacency pattern. Weights are
  // deliberately excluded — that is the whole point of the cache.
  add(0x10u);  // section tags keep (say) a chain id from aliasing an offset
  add(static_cast<uint64_t>(logical.num_vars()));
  const qubo::CsrGraph& csr = logical.csr();
  for (int32_t offset : csr.row_offsets) {
    add(static_cast<uint64_t>(static_cast<uint32_t>(offset)));
  }
  for (qubo::VarId neighbor : csr.neighbor_ids) {
    add(static_cast<uint64_t>(static_cast<uint32_t>(neighbor)));
  }

  // The embedding: every chain, in order, length-prefixed.
  add(0x20u);
  int64_t total_chain_qubits = 0;
  for (int var = 0; var < embedding.num_vars(); ++var) {
    const Chain& chain = embedding.chain(var);
    add(static_cast<uint64_t>(chain.qubits.size()));
    for (chimera::QubitId q : chain.qubits) {
      add(static_cast<uint64_t>(static_cast<uint32_t>(q)));
    }
    total_chain_qubits += chain.size();
  }

  // The hardware graph: dimensions determine the topology, the defect set
  // determines which couplers are usable.
  add(0x30u);
  add(static_cast<uint64_t>(graph.rows()));
  add(static_cast<uint64_t>(graph.cols()));
  add(static_cast<uint64_t>(graph.shore()));
  for (chimera::QubitId q = 0; q < graph.num_qubits(); ++q) {
    if (graph.IsBroken(q)) add(static_cast<uint64_t>(static_cast<uint32_t>(q)));
  }
  add(static_cast<uint64_t>(graph.num_broken_qubits()));

  CacheKey key;
  key.hash_a = ha.state;
  key.hash_b = hb.state;
  key.num_vars = logical.num_vars();
  key.num_interactions = static_cast<int64_t>(csr.neighbor_ids.size() / 2);
  key.total_chain_qubits = total_chain_qubits;
  return key;
}

bool EmbeddingCache::LayoutMatches(const EmbeddedLayout& layout,
                                   const qubo::QuboProblem& logical,
                                   const Embedding& embedding) {
  if (layout.num_logical_vars != logical.num_vars() ||
      layout.num_logical_vars != embedding.num_vars()) {
    return false;
  }
  const std::vector<qubo::Interaction>& terms = logical.interactions();
  if (layout.pattern_i.size() != terms.size()) return false;
  for (size_t t = 0; t < terms.size(); ++t) {
    if (layout.pattern_i[t] != terms[t].i || layout.pattern_j[t] != terms[t].j) {
      return false;
    }
  }
  for (int var = 0; var < embedding.num_vars(); ++var) {
    const std::vector<chimera::QubitId>& want = embedding.chain(var).qubits;
    const std::vector<int>& have = layout.chains[static_cast<size_t>(var)];
    if (have.size() != want.size()) return false;
    for (size_t k = 0; k < want.size(); ++k) {
      if (layout.used_qubits[static_cast<size_t>(have[k])] != want[k]) {
        return false;
      }
    }
  }
  return true;
}

Result<EmbeddedQubo> EmbeddingCache::GetOrCreate(
    const qubo::QuboProblem& logical, const Embedding& embedding,
    const chimera::ChimeraGraph& graph, const EmbeddedQuboOptions& options,
    bool* was_hit) {
  if (was_hit != nullptr) *was_hit = false;

  // Zero-weight terms make the compiled coupler set weight-dependent
  // (Create drops them), so such requests are not structure-cacheable.
  bool cacheable = true;
  for (const qubo::Interaction& term : logical.interactions()) {
    if (term.weight == 0.0) {
      cacheable = false;
      break;
    }
  }
  if (!cacheable) {
    bypasses_.fetch_add(1, std::memory_order_relaxed);
    return EmbeddedQubo::Create(logical, embedding, graph, options);
  }

  const CacheKey key = KeyOf(logical, embedding, graph);
  std::shared_ptr<const EmbeddedLayout> layout;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() &&
        LayoutMatches(*it->second.layout, logical, embedding)) {
      layout = it->second.layout;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
  }
  if (layout != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    // Errors (only fault injection can fail here — the structure already
    // matched and weights are nonzero) are propagated, not retried cold,
    // so fault schedules observe exactly one "embed.compile" evaluation
    // per call, same as the uncached path.
    return EmbeddedQubo::ReweightFrom(*layout, logical, options);
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  // Cold compile outside the lock: concurrent requests for other
  // structures keep hitting while this one embeds.
  auto fresh = std::make_shared<EmbeddedLayout>();
  Result<EmbeddedQubo> compiled =
      EmbeddedQubo::Create(logical, embedding, graph, options, fresh.get());
  if (!compiled.ok()) return compiled;
  if (fresh->complete) {
    std::lock_guard<std::mutex> lock(mu_);
    // A racing insert of the same key wins harmlessly — equal structures
    // replay to bit-identical problems.
    if (entries_.find(key) == entries_.end()) {
      lru_.push_front(key);
      entries_.emplace(key, Entry{std::move(fresh), lru_.begin()});
      while (entries_.size() > max_entries_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  return compiled;
}

EmbeddingCacheStats EmbeddingCache::stats() const {
  EmbeddingCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.bypasses = bypasses_.load(std::memory_order_relaxed);
  return out;
}

size_t EmbeddingCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void EmbeddingCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace embedding
}  // namespace qmqo
