#include "embedding/embedding.h"

#include <algorithm>
#include <deque>

#include "util/string_util.h"

namespace qmqo {
namespace embedding {

int Embedding::TotalQubits() const {
  int total = 0;
  for (const Chain& chain : chains_) total += chain.size();
  return total;
}

int Embedding::MaxChainLength() const {
  int best = 0;
  for (const Chain& chain : chains_) best = std::max(best, chain.size());
  return best;
}

double Embedding::MeanChainLength() const {
  if (chains_.empty()) return 0.0;
  return static_cast<double>(TotalQubits()) /
         static_cast<double>(chains_.size());
}

std::vector<int> Embedding::QubitToVar(
    const chimera::ChimeraGraph& graph) const {
  std::vector<int> owner(static_cast<size_t>(graph.num_qubits()), -1);
  for (int var = 0; var < num_vars(); ++var) {
    for (chimera::QubitId q : chains_[static_cast<size_t>(var)].qubits) {
      owner[static_cast<size_t>(q)] = var;
    }
  }
  return owner;
}

Status Embedding::VerifyStructure(const chimera::ChimeraGraph& graph) const {
  std::vector<int> owner(static_cast<size_t>(graph.num_qubits()), -1);
  for (int var = 0; var < num_vars(); ++var) {
    const Chain& chain = chains_[static_cast<size_t>(var)];
    if (chain.qubits.empty()) {
      return Status::FailedPrecondition(
          StrFormat("variable %d has an empty chain", var));
    }
    for (chimera::QubitId q : chain.qubits) {
      if (q < 0 || q >= graph.num_qubits()) {
        return Status::OutOfRange(
            StrFormat("variable %d references qubit %d", var, q));
      }
      if (graph.IsBroken(q)) {
        return Status::FailedPrecondition(
            StrFormat("variable %d uses broken qubit %d", var, q));
      }
      if (owner[static_cast<size_t>(q)] != -1) {
        return Status::FailedPrecondition(
            StrFormat("qubit %d used by variables %d and %d", q,
                      owner[static_cast<size_t>(q)], var));
      }
      owner[static_cast<size_t>(q)] = var;
    }
    // Connectivity: BFS within the chain over usable couplers.
    std::deque<chimera::QubitId> frontier{chain.qubits.front()};
    std::vector<chimera::QubitId> seen{chain.qubits.front()};
    while (!frontier.empty()) {
      chimera::QubitId q = frontier.front();
      frontier.pop_front();
      for (chimera::QubitId n : graph.Neighbors(q)) {
        if (owner[static_cast<size_t>(n)] != var) continue;
        if (graph.IsBroken(n)) continue;
        if (std::find(seen.begin(), seen.end(), n) != seen.end()) continue;
        seen.push_back(n);
        frontier.push_back(n);
      }
    }
    if (static_cast<int>(seen.size()) != chain.size()) {
      return Status::FailedPrecondition(
          StrFormat("chain of variable %d is disconnected (%zu of %d qubits "
                    "reachable)",
                    var, seen.size(), chain.size()));
    }
  }
  return Status::OK();
}

Status Embedding::VerifyForProblem(const chimera::ChimeraGraph& graph,
                                   const qubo::QuboProblem& logical) const {
  if (logical.num_vars() != num_vars()) {
    return Status::InvalidArgument(
        StrFormat("embedding has %d chains, problem has %d variables",
                  num_vars(), logical.num_vars()));
  }
  QMQO_RETURN_IF_ERROR(VerifyStructure(graph));
  std::vector<int> owner = QubitToVar(graph);
  Result<std::vector<CrossChainPlacement>> placements =
      PlaceCrossChainCouplers(*this, graph, logical, owner);
  return placements.status();
}

Result<std::vector<CrossChainPlacement>> PlaceCrossChainCouplers(
    const Embedding& embedding, const chimera::ChimeraGraph& graph,
    const qubo::QuboProblem& logical, const std::vector<int>& owner) {
  const std::vector<qubo::Interaction>& terms = logical.interactions();
  std::vector<CrossChainPlacement> placements(terms.size());
  const int num_vars = logical.num_vars();
  // first_hit[j] = index into `hits` of the first usable coupler from the
  // current chain into chain j, or -1. Reset per source variable via the
  // `touched` list, so the pass is O(sum of chain degrees) overall.
  std::vector<int32_t> first_hit(
      static_cast<size_t>(std::max(num_vars, embedding.num_vars())), -1);
  std::vector<int> touched;
  std::vector<CrossChainPlacement> hits;
  size_t t = 0;  // walks `terms`, which are sorted by (i, j)
  for (int i = 0; i < num_vars && t < terms.size(); ++i) {
    if (terms[t].i != i) continue;  // no term has i as its lower endpoint
    for (chimera::QubitId qa : embedding.chain(i).qubits) {
      for (chimera::QubitId n : graph.Neighbors(qa)) {
        int j = owner[static_cast<size_t>(n)];
        if (j <= i) continue;  // terms store i < j; also skips unused (-1)
        if (first_hit[static_cast<size_t>(j)] != -1) continue;
        if (!graph.CouplerUsable(qa, n)) continue;
        first_hit[static_cast<size_t>(j)] = static_cast<int32_t>(hits.size());
        hits.push_back({qa, n});
        touched.push_back(j);
      }
    }
    for (; t < terms.size() && terms[t].i == i; ++t) {
      if (terms[t].weight == 0.0) continue;
      int32_t hit = first_hit[static_cast<size_t>(terms[t].j)];
      if (hit == -1) {
        return Status::FailedPrecondition(StrFormat(
            "no usable coupler between chains of variables %d and %d",
            terms[t].i, terms[t].j));
      }
      placements[t] = hits[static_cast<size_t>(hit)];
    }
    for (int j : touched) first_hit[static_cast<size_t>(j)] = -1;
    touched.clear();
    hits.clear();
  }
  return placements;
}

std::string Embedding::Summary() const {
  return StrFormat(
      "Embedding(%d vars, %d qubits, mean chain %.2f, max chain %d)",
      num_vars(), TotalQubits(), MeanChainLength(), MaxChainLength());
}

std::vector<ChainCoupler> CrossChainCouplers(
    const Embedding& embedding, const chimera::ChimeraGraph& graph) {
  std::vector<int> owner = embedding.QubitToVar(graph);
  std::vector<ChainCoupler> out;
  for (chimera::QubitId q = 0; q < graph.num_qubits(); ++q) {
    int var_q = owner[static_cast<size_t>(q)];
    if (var_q < 0 || graph.IsBroken(q)) continue;
    for (chimera::QubitId n : graph.Neighbors(q)) {
      if (n <= q) continue;  // each coupler once
      int var_n = owner[static_cast<size_t>(n)];
      if (var_n < 0 || var_n == var_q || graph.IsBroken(n)) continue;
      ChainCoupler coupler;
      coupler.var_a = std::min(var_q, var_n);
      coupler.var_b = std::max(var_q, var_n);
      coupler.qubit_a = var_q < var_n ? q : n;
      coupler.qubit_b = var_q < var_n ? n : q;
      out.push_back(coupler);
    }
  }
  return out;
}

}  // namespace embedding
}  // namespace qmqo
