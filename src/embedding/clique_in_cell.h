#ifndef QMQO_EMBEDDING_CLIQUE_IN_CELL_H_
#define QMQO_EMBEDDING_CLIQUE_IN_CELL_H_

/// \file clique_in_cell.h
/// Minimal-qubit clique embeddings inside a single Chimera unit cell.
///
/// A unit cell is a K_{L,L}; contracting qubit pairs yields small cliques
/// with far fewer qubits than a TRIAD block:
///
///   K_2: {left_0}, {right_0}                           (2 qubits)
///   K_3: {left_0}, {right_0}, {left_1, right_1}        (4 qubits)
///   K_4: ... + {left_2, right_2}                       (6 qubits)
///   K_5: ... + {left_3, right_3}                       (8 qubits)
///
/// i.e. K_k costs 2k-2 qubits for 2 <= k <= L+1. These are the layouts
/// behind the paper's four experiment classes: 2/3/4/5 plans per query cost
/// 1.0 / 1.33 / 1.5 / 1.6 qubits per variable.
///
/// The embedder is defect-aware: roles are assigned to whichever shore
/// indices are still working, since any left qubit couples to any right
/// qubit within the cell.

#include "embedding/embedding.h"

namespace qmqo {
namespace embedding {

/// Embeds small cliques into single unit cells.
class CliqueInCellEmbedder {
 public:
  /// Largest clique a single cell can host.
  static int MaxK(int shore) { return shore + 1; }

  /// Qubits consumed by K_k in an intact cell (k >= 1).
  static int QubitsNeeded(int k) { return k == 1 ? 1 : 2 * k - 2; }

  /// Embeds K_k in cell (row, col). Fails when the cell's defects leave too
  /// few working qubits on either shore.
  static Result<std::vector<Chain>> EmbedInCell(
      int k, int row, int col, const chimera::ChimeraGraph& graph);
};

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_CLIQUE_IN_CELL_H_
