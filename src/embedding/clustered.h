#ifndef QMQO_EMBEDDING_CLUSTERED_H_
#define QMQO_EMBEDDING_CLUSTERED_H_

/// \file clustered.h
/// The paper's clustered embedding (Section 5, Figure 3) plus the
/// pair-matching layout used for 2-plan-per-query workloads.
///
/// Clustered embedding: instead of one global TRIAD (whose qubit count
/// grows quadratically in the *total* variable count), each query cluster
/// receives its own clique region — a single unit cell for clusters of at
/// most shore+1 variables, a TRIAD block otherwise. All intra-cluster
/// couplings are realizable; inter-cluster couplings only where adjacent
/// regions happen to touch, which is exactly the sparsity the clustering
/// promises. This is what makes the number of required qubits grow linearly
/// in the number of clusters (Theorem 3 with fixed cluster size).
///
/// Pair matching: with two plans per query, a query needs only two
/// single-qubit chains joined by any working coupler. A maximal matching on
/// the working-coupler graph therefore hosts one query per matched edge —
/// this is how 537 two-plan queries fit on 1097 working qubits (~1.02
/// qubits per variable, the leftmost point of the paper's Figure 6).

#include <utility>
#include <vector>

#include "embedding/embedding.h"

namespace qmqo {
namespace embedding {

/// Embeds cluster-structured variable sets, one clique region per cluster.
class ClusteredEmbedder {
 public:
  /// `cluster_sizes[c]` = number of logical variables in cluster c;
  /// variables are numbered cluster-major (all of cluster 0 first, etc.).
  /// Regions are packed row-major over the cell grid; fails when the grid
  /// (minus defects) cannot host all clusters.
  static Result<Embedding> Embed(const std::vector<int>& cluster_sizes,
                                 const chimera::ChimeraGraph& graph);
};

/// Embeds n two-plan queries (2n single-qubit chains) on a maximal matching
/// of the working-coupler graph.
class PairMatchingEmbedder {
 public:
  /// Greedy maximal matching over usable couplers, intra-cell couplers
  /// first (they leave the sparser inter-cell couplers free for savings).
  static std::vector<std::pair<chimera::QubitId, chimera::QubitId>> MatchPairs(
      const chimera::ChimeraGraph& graph);

  /// Embedding for `num_queries` two-plan queries; variables 2q and 2q+1
  /// are the two plans of query q. Fails when the matching is too small.
  static Result<Embedding> Embed(int num_queries,
                                 const chimera::ChimeraGraph& graph);

  /// The number of two-plan queries the graph can host.
  static int Capacity(const chimera::ChimeraGraph& graph) {
    return static_cast<int>(MatchPairs(graph).size());
  }
};

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_CLUSTERED_H_
