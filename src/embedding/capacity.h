#ifndef QMQO_EMBEDDING_CAPACITY_H_
#define QMQO_EMBEDDING_CAPACITY_H_

/// \file capacity.h
/// Capacity model: how many queries of a given plan count fit on a qubit
/// budget (the paper's Figure 7) or on a concrete, possibly defective chip.

#include <vector>

#include "chimera/topology.h"

namespace qmqo {
namespace embedding {

/// One point of a capacity curve.
struct CapacityPoint {
  int plans_per_query = 0;
  int max_queries = 0;
};

/// Analytic capacity on an intact rows x cols x shore chip, assuming one
/// cluster per query (the paper's experimental setup):
///   l == 1                  -> one qubit per query;
///   2 <= l <= shore+1       -> floor(shore / (l-1)) queries per cell;
///   l > shore+1             -> one query per ceil(l/shore)^2-cell TRIAD
///                              block, packed on a block grid.
int MaxQueriesForDimensions(int rows, int cols, int shore,
                            int plans_per_query);

/// Capacity curve for plans/query in [1, max_plans], matching Figure 7's
/// axes (the paper evaluates budgets of 1152, 2304 and 4608 qubits, i.e.
/// 12x12, 12x24 and 24x24 cells).
std::vector<CapacityPoint> CapacityCurve(int rows, int cols, int shore,
                                         int max_plans);

/// Measured capacity on a concrete (possibly defective) graph: the largest
/// n such that n queries of `plans_per_query` plans embed. Uses the
/// pair-matching embedder for 2 plans and binary search over the clustered
/// embedder otherwise.
int MeasuredMaxQueries(const chimera::ChimeraGraph& graph,
                       int plans_per_query);

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_CAPACITY_H_
