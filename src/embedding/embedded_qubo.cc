#include "embedding/embedded_qubo.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "util/fault.h"
#include "util/string_util.h"

namespace qmqo {
namespace embedding {

Result<EmbeddedQubo> EmbeddedQubo::Create(const qubo::QuboProblem& logical,
                                          const Embedding& embedding,
                                          const chimera::ChimeraGraph& graph,
                                          const EmbeddedQuboOptions& options) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.chain_strength_scale < 0.0) {
    return Status::InvalidArgument("chain_strength_scale must be >= 0");
  }
  if (options.faults != nullptr) {
    QMQO_RETURN_IF_ERROR(
        options.faults->MaybeFail("embed.compile", options.fault_key));
  }
  QMQO_RETURN_IF_ERROR(embedding.VerifyForProblem(graph, logical));

  const int num_vars = logical.num_vars();
  // Compact index space over used qubits, ordered by hardware id.
  std::vector<chimera::QubitId> used;
  for (int var = 0; var < num_vars; ++var) {
    const Chain& chain = embedding.chain(var);
    used.insert(used.end(), chain.qubits.begin(), chain.qubits.end());
  }
  std::sort(used.begin(), used.end());
  std::vector<int> compact_index(static_cast<size_t>(graph.num_qubits()), -1);
  for (size_t i = 0; i < used.size(); ++i) {
    compact_index[static_cast<size_t>(used[i])] = static_cast<int>(i);
  }

  EmbeddedQubo out(logical, qubo::QuboProblem(static_cast<int>(used.size())));
  out.used_qubits_ = std::move(used);
  out.compact_index_ = std::move(compact_index);
  out.chains_.resize(static_cast<size_t>(num_vars));
  for (int var = 0; var < num_vars; ++var) {
    for (chimera::QubitId q : embedding.chain(var).qubits) {
      out.chains_[static_cast<size_t>(var)].push_back(out.compact_of(q));
    }
  }

  std::vector<int> owner = embedding.QubitToVar(graph);

  // Step 1: distribute linear weights over chains.
  for (int var = 0; var < num_vars; ++var) {
    double w = logical.linear(var);
    const auto& members = out.chains_[static_cast<size_t>(var)];
    if (w == 0.0) continue;
    double share = w / static_cast<double>(members.size());
    for (int member : members) {
      out.physical_.AddLinear(member, share);
    }
  }

  // Step 2: place each logical quadratic weight on one usable coupler
  // between the two chains.
  for (const qubo::Interaction& term : logical.interactions()) {
    if (term.weight == 0.0) continue;
    bool placed = false;
    for (chimera::QubitId qa : embedding.chain(term.i).qubits) {
      for (chimera::QubitId n : graph.Neighbors(qa)) {
        if (owner[static_cast<size_t>(n)] != term.j) continue;
        if (!graph.CouplerUsable(qa, n)) continue;
        out.physical_.AddQuadratic(out.compact_of(qa), out.compact_of(n),
                                   term.weight);
        placed = true;
        break;
      }
      if (placed) break;
    }
    if (!placed) {
      // VerifyForProblem guarantees a coupler exists, so reaching this
      // means the embedding or graph changed underneath us (or a defect
      // map diverged); surface it as a typed error instead of aborting.
      return Status::Internal(StrFormat(
          "no usable coupler joins the chains of variables %d and %d",
          term.i, term.j));
    }
  }

  // Chain strengths via Choi's bound, computed *before* the equality
  // gadgets are added so `neighbors` sees only problem couplings.
  out.chain_strength_.assign(static_cast<size_t>(num_vars), 0.0);
  for (int var = 0; var < num_vars; ++var) {
    const auto& members = out.chains_[static_cast<size_t>(var)];
    double sum_up = 0.0;    // sum of U_{0->1}
    double sum_down = 0.0;  // sum of U_{1->0}
    for (int member : members) {
      double v = out.physical_.linear(member);
      double pos = 0.0;
      double neg = 0.0;
      for (const auto& [other, w] : out.physical_.neighbors(member)) {
        // Neighbors inside the chain do not exist yet; every neighbor here
        // crosses to another chain.
        (void)other;
        if (w > 0.0) {
          pos += w;
        } else {
          neg += -w;
        }
      }
      sum_up += std::max(0.0, v + pos);
      sum_down += std::max(0.0, -v + neg);
    }
    double u = std::min(sum_up, sum_down);
    out.chain_strength_[static_cast<size_t>(var)] =
        std::max(options.epsilon,
                 options.chain_strength_scale * u + options.epsilon);
  }
  if (options.uniform_chain_strength) {
    double global = 0.0;
    for (double s : out.chain_strength_) global = std::max(global, s);
    std::fill(out.chain_strength_.begin(), out.chain_strength_.end(), global);
  }

  // Step 3: ferromagnetic equality gadgets on a spanning tree of each chain.
  for (int var = 0; var < num_vars; ++var) {
    const Chain& chain = embedding.chain(var);
    if (chain.size() <= 1) continue;
    double strength = out.chain_strength_[static_cast<size_t>(var)];
    // BFS spanning tree over usable couplers within the chain.
    std::vector<uint8_t> visited(chain.qubits.size(), 0);
    std::deque<size_t> frontier{0};
    visited[0] = 1;
    int edges = 0;
    while (!frontier.empty()) {
      size_t at = frontier.front();
      frontier.pop_front();
      chimera::QubitId qa = chain.qubits[at];
      for (size_t next = 0; next < chain.qubits.size(); ++next) {
        if (visited[next]) continue;
        chimera::QubitId qb = chain.qubits[next];
        if (!graph.CouplerUsable(qa, qb)) continue;
        visited[next] = 1;
        frontier.push_back(next);
        out.physical_.AddLinear(out.compact_of(qa), strength);
        out.physical_.AddLinear(out.compact_of(qb), strength);
        out.physical_.AddQuadratic(out.compact_of(qa), out.compact_of(qb),
                                   -2.0 * strength);
        ++edges;
      }
    }
    if (edges != chain.size() - 1) {
      // Verified connected by VerifyForProblem; a mismatch means the
      // coupler map changed between verification and compilation.
      return Status::Internal(StrFormat(
          "chain of variable %d is not connected over usable couplers "
          "(%d spanning edges for %d qubits)",
          var, edges, static_cast<int>(chain.size())));
    }
  }
  return out;
}

bool EmbeddedQubo::ChainsConsistent(
    const std::vector<uint8_t>& physical_x) const {
  for (const auto& members : chains_) {
    uint8_t first = physical_x[static_cast<size_t>(members.front())];
    for (int member : members) {
      if (physical_x[static_cast<size_t>(member)] != first) return false;
    }
  }
  return true;
}

double EmbeddedQubo::BrokenChainFraction(
    const std::vector<uint8_t>& physical_x) const {
  if (chains_.empty()) return 0.0;
  int broken = 0;
  for (const auto& members : chains_) {
    uint8_t first = physical_x[static_cast<size_t>(members.front())];
    for (int member : members) {
      if (physical_x[static_cast<size_t>(member)] != first) {
        ++broken;
        break;
      }
    }
  }
  return static_cast<double>(broken) / static_cast<double>(chains_.size());
}

Result<std::vector<uint8_t>> EmbeddedQubo::UnembedStrict(
    const std::vector<uint8_t>& physical_x) const {
  std::vector<uint8_t> logical_x(chains_.size(), 0);
  for (size_t var = 0; var < chains_.size(); ++var) {
    uint8_t first = physical_x[static_cast<size_t>(chains_[var].front())];
    for (int member : chains_[var]) {
      if (physical_x[static_cast<size_t>(member)] != first) {
        return Status::FailedPrecondition(
            StrFormat("chain of variable %zu is inconsistent", var));
      }
    }
    logical_x[var] = first;
  }
  return logical_x;
}

std::vector<uint8_t> EmbeddedQubo::Unembed(
    const std::vector<uint8_t>& physical_x) const {
  std::vector<uint8_t> logical_x(chains_.size(), 0);
  for (size_t var = 0; var < chains_.size(); ++var) {
    int ones = 0;
    for (int member : chains_[var]) {
      ones += physical_x[static_cast<size_t>(member)] ? 1 : 0;
    }
    logical_x[var] =
        2 * ones > static_cast<int>(chains_[var].size()) ? 1 : 0;
  }
  // Greedy descent on the logical energy repairs majority-vote errors on
  // broken chains. Terminates: each flip strictly lowers the energy.
  bool improved = true;
  int guard = 0;
  const int max_rounds = 100;
  while (improved && guard++ < max_rounds) {
    improved = false;
    for (int var = 0; var < logical_.num_vars(); ++var) {
      if (logical_.FlipDelta(logical_x, var) < 0.0) {
        logical_x[static_cast<size_t>(var)] ^= 1;
        improved = true;
      }
    }
  }
  return logical_x;
}

std::vector<uint8_t> EmbeddedQubo::EmbedAssignment(
    const std::vector<uint8_t>& logical_x) const {
  assert(logical_x.size() == chains_.size());
  std::vector<uint8_t> physical_x(used_qubits_.size(), 0);
  for (size_t var = 0; var < chains_.size(); ++var) {
    for (int member : chains_[var]) {
      physical_x[static_cast<size_t>(member)] = logical_x[var];
    }
  }
  return physical_x;
}

}  // namespace embedding
}  // namespace qmqo
