#include "embedding/embedded_qubo.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <tuple>
#include <utility>

#include "util/fault.h"
#include "util/string_util.h"

namespace qmqo {
namespace embedding {
namespace {

/// Fills `layout` with everything a `ReweightFrom` replay needs. `physical`
/// is the freshly compiled physical problem (finalizing it here is free —
/// the sampler would do it anyway), `placements` are the hardware-id
/// coupler selections aligned with `logical.interactions()`, and the tree
/// edges arrive in the BFS discovery order Create added them.
void CaptureLayout(const qubo::QuboProblem& physical,
                   const std::vector<chimera::QubitId>& used_qubits,
                   const std::vector<int>& compact_index,
                   const std::vector<std::vector<int>>& chains,
                   const qubo::QuboProblem& logical,
                   const std::vector<CrossChainPlacement>& placements,
                   std::vector<int32_t> tree_offsets,
                   std::vector<EmbeddedLayout::TreeEdge> tree_edges,
                   EmbeddedLayout* layout) {
  const std::vector<qubo::Interaction>& terms = logical.interactions();
  layout->num_logical_vars = logical.num_vars();
  layout->pattern_i.resize(terms.size());
  layout->pattern_j.resize(terms.size());
  layout->complete = true;
  for (size_t t = 0; t < terms.size(); ++t) {
    layout->pattern_i[t] = terms[t].i;
    layout->pattern_j[t] = terms[t].j;
    if (terms[t].weight == 0.0) layout->complete = false;
  }
  layout->used_qubits = used_qubits;
  layout->compact_index = compact_index;
  layout->chains = chains;

  // Physical pattern skeleton: the finalized interaction list with weights
  // stripped, plus its CSR rows (pattern-only — weights are scattered into
  // fresh arrays per replay).
  const std::vector<qubo::Interaction>& phys_terms = physical.interactions();
  layout->physical_pattern = phys_terms;
  for (qubo::Interaction& term : layout->physical_pattern) term.weight = 0.0;
  const qubo::CsrGraph& csr = physical.csr();
  layout->csr_row_offsets = csr.row_offsets;
  layout->csr_neighbor_ids = csr.neighbor_ids;

  auto pattern_pos_of = [&phys_terms](int a, int b) -> int32_t {
    if (a > b) std::swap(a, b);
    auto it = std::lower_bound(
        phys_terms.begin(), phys_terms.end(), std::make_pair(a, b),
        [](const qubo::Interaction& x, const std::pair<int, int>& key) {
          return std::tie(x.i, x.j) < std::tie(key.first, key.second);
        });
    assert(it != phys_terms.end());
    return static_cast<int32_t>(it - phys_terms.begin());
  };
  auto csr_slot_of = [&csr](int row, int other) -> int32_t {
    const qubo::VarId* begin =
        csr.neighbor_ids.data() + csr.row_offsets[static_cast<size_t>(row)];
    const qubo::VarId* end =
        csr.neighbor_ids.data() +
        csr.row_offsets[static_cast<size_t>(row) + 1];
    const qubo::VarId* slot = std::lower_bound(begin, end, other);
    return static_cast<int32_t>(slot - csr.neighbor_ids.data());
  };

  layout->cross_a.assign(terms.size(), -1);
  layout->cross_b.assign(terms.size(), -1);
  layout->cross_pattern_pos.assign(terms.size(), -1);
  // (member, other endpoint, term) triples of every placed coupler, from
  // both endpoints' perspectives.
  std::vector<std::array<int32_t, 3>> incident;
  incident.reserve(2 * terms.size());
  for (size_t t = 0; t < terms.size(); ++t) {
    if (placements[t].qubit_a < 0) continue;  // zero-weight term, unplaced
    int a = compact_index[static_cast<size_t>(placements[t].qubit_a)];
    int b = compact_index[static_cast<size_t>(placements[t].qubit_b)];
    layout->cross_a[t] = a;
    layout->cross_b[t] = b;
    layout->cross_pattern_pos[t] = pattern_pos_of(a, b);
    incident.push_back({static_cast<int32_t>(a), static_cast<int32_t>(b),
                        static_cast<int32_t>(t)});
    incident.push_back({static_cast<int32_t>(b), static_cast<int32_t>(a),
                        static_cast<int32_t>(t)});
  }
  for (EmbeddedLayout::TreeEdge& edge : tree_edges) {
    edge.pattern_pos = pattern_pos_of(edge.a, edge.b);
  }
  layout->tree_offsets = std::move(tree_offsets);
  layout->tree_edges = std::move(tree_edges);

  const size_t num_phys = used_qubits.size();
  layout->member_tree_count.assign(num_phys, 0);
  for (const EmbeddedLayout::TreeEdge& edge : layout->tree_edges) {
    ++layout->member_tree_count[static_cast<size_t>(edge.a)];
    ++layout->member_tree_count[static_cast<size_t>(edge.b)];
  }

  // Sorting by (member, other) reproduces the neighbor-id order of the
  // step-2-only CSR rows that Create's Choi sums iterate.
  std::sort(incident.begin(), incident.end());
  layout->member_cross_offsets.assign(num_phys + 1, 0);
  layout->member_cross_terms.resize(incident.size());
  for (size_t k = 0; k < incident.size(); ++k) {
    ++layout->member_cross_offsets[static_cast<size_t>(incident[k][0]) + 1];
    layout->member_cross_terms[k] = incident[k][2];
  }
  for (size_t m = 0; m < num_phys; ++m) {
    layout->member_cross_offsets[m + 1] += layout->member_cross_offsets[m];
  }

  layout->csr_slot_a.resize(phys_terms.size());
  layout->csr_slot_b.resize(phys_terms.size());
  for (size_t p = 0; p < phys_terms.size(); ++p) {
    layout->csr_slot_a[p] = csr_slot_of(phys_terms[p].i, phys_terms[p].j);
    layout->csr_slot_b[p] = csr_slot_of(phys_terms[p].j, phys_terms[p].i);
  }
}

}  // namespace

Result<EmbeddedQubo> EmbeddedQubo::Create(const qubo::QuboProblem& logical,
                                          const Embedding& embedding,
                                          const chimera::ChimeraGraph& graph,
                                          const EmbeddedQuboOptions& options,
                                          EmbeddedLayout* layout_out) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.chain_strength_scale < 0.0) {
    return Status::InvalidArgument("chain_strength_scale must be >= 0");
  }
  if (options.faults != nullptr) {
    QMQO_RETURN_IF_ERROR(
        options.faults->MaybeFail("embed.compile", options.fault_key));
  }
  if (logical.num_vars() != embedding.num_vars()) {
    return Status::InvalidArgument(
        StrFormat("embedding has %d chains, problem has %d variables",
                  embedding.num_vars(), logical.num_vars()));
  }
  QMQO_RETURN_IF_ERROR(embedding.VerifyStructure(graph));
  std::vector<int> owner = embedding.QubitToVar(graph);
  // One flat pass selects every cross-chain coupler (and proves one exists
  // per nonzero term — the check VerifyForProblem used to repeat with a
  // second scan).
  QMQO_ASSIGN_OR_RETURN(
      std::vector<CrossChainPlacement> placements,
      PlaceCrossChainCouplers(embedding, graph, logical, owner));

  const int num_vars = logical.num_vars();
  // Compact index space over used qubits, ordered by hardware id.
  std::vector<chimera::QubitId> used;
  for (int var = 0; var < num_vars; ++var) {
    const Chain& chain = embedding.chain(var);
    used.insert(used.end(), chain.qubits.begin(), chain.qubits.end());
  }
  std::sort(used.begin(), used.end());
  std::vector<int> compact_index(static_cast<size_t>(graph.num_qubits()), -1);
  for (size_t i = 0; i < used.size(); ++i) {
    compact_index[static_cast<size_t>(used[i])] = static_cast<int>(i);
  }

  EmbeddedQubo out(logical, qubo::QuboProblem(static_cast<int>(used.size())));
  out.used_qubits_ = std::move(used);
  out.compact_index_ = std::move(compact_index);
  out.chains_.resize(static_cast<size_t>(num_vars));
  for (int var = 0; var < num_vars; ++var) {
    for (chimera::QubitId q : embedding.chain(var).qubits) {
      out.chains_[static_cast<size_t>(var)].push_back(out.compact_of(q));
    }
  }

  // Step 1: distribute linear weights over chains.
  for (int var = 0; var < num_vars; ++var) {
    double w = logical.linear(var);
    const auto& members = out.chains_[static_cast<size_t>(var)];
    if (w == 0.0) continue;
    double share = w / static_cast<double>(members.size());
    for (int member : members) {
      out.physical_.AddLinear(member, share);
    }
  }

  // Step 2: each logical quadratic weight goes on its selected coupler.
  const std::vector<qubo::Interaction>& terms = logical.interactions();
  for (size_t t = 0; t < terms.size(); ++t) {
    if (terms[t].weight == 0.0) continue;
    out.physical_.AddQuadratic(out.compact_of(placements[t].qubit_a),
                               out.compact_of(placements[t].qubit_b),
                               terms[t].weight);
  }

  // Chain strengths via Choi's bound, computed *before* the equality
  // gadgets are added so `neighbors` sees only problem couplings.
  out.chain_strength_.assign(static_cast<size_t>(num_vars), 0.0);
  for (int var = 0; var < num_vars; ++var) {
    const auto& members = out.chains_[static_cast<size_t>(var)];
    double sum_up = 0.0;    // sum of U_{0->1}
    double sum_down = 0.0;  // sum of U_{1->0}
    for (int member : members) {
      double v = out.physical_.linear(member);
      double pos = 0.0;
      double neg = 0.0;
      for (const auto& [other, w] : out.physical_.neighbors(member)) {
        // Neighbors inside the chain do not exist yet; every neighbor here
        // crosses to another chain.
        (void)other;
        if (w > 0.0) {
          pos += w;
        } else {
          neg += -w;
        }
      }
      sum_up += std::max(0.0, v + pos);
      sum_down += std::max(0.0, -v + neg);
    }
    double u = std::min(sum_up, sum_down);
    out.chain_strength_[static_cast<size_t>(var)] =
        std::max(options.epsilon,
                 options.chain_strength_scale * u + options.epsilon);
  }
  if (options.uniform_chain_strength) {
    double global = 0.0;
    for (double s : out.chain_strength_) global = std::max(global, s);
    std::fill(out.chain_strength_.begin(), out.chain_strength_.end(), global);
  }

  // Step 3: ferromagnetic equality gadgets on a spanning tree of each chain.
  // When a layout is being captured, the discovery order of the tree edges
  // is recorded — the linear terms accumulate one `+= strength` per edge,
  // so a replay must add them the same way.
  std::vector<int32_t> tree_offsets(static_cast<size_t>(num_vars) + 1, 0);
  std::vector<EmbeddedLayout::TreeEdge> tree_edges;
  for (int var = 0; var < num_vars; ++var) {
    const Chain& chain = embedding.chain(var);
    tree_offsets[static_cast<size_t>(var) + 1] =
        static_cast<int32_t>(tree_edges.size());
    if (chain.size() <= 1) continue;
    double strength = out.chain_strength_[static_cast<size_t>(var)];
    // BFS spanning tree over usable couplers within the chain.
    std::vector<uint8_t> visited(chain.qubits.size(), 0);
    std::deque<size_t> frontier{0};
    visited[0] = 1;
    int edges = 0;
    while (!frontier.empty()) {
      size_t at = frontier.front();
      frontier.pop_front();
      chimera::QubitId qa = chain.qubits[at];
      for (size_t next = 0; next < chain.qubits.size(); ++next) {
        if (visited[next]) continue;
        chimera::QubitId qb = chain.qubits[next];
        if (!graph.CouplerUsable(qa, qb)) continue;
        visited[next] = 1;
        frontier.push_back(next);
        out.physical_.AddLinear(out.compact_of(qa), strength);
        out.physical_.AddLinear(out.compact_of(qb), strength);
        out.physical_.AddQuadratic(out.compact_of(qa), out.compact_of(qb),
                                   -2.0 * strength);
        ++edges;
        if (layout_out != nullptr) {
          EmbeddedLayout::TreeEdge edge;
          edge.a = out.compact_of(qa);
          edge.b = out.compact_of(qb);
          tree_edges.push_back(edge);
        }
      }
    }
    if (edges != chain.size() - 1) {
      // Verified connected by VerifyStructure; a mismatch means the
      // coupler map changed between verification and compilation.
      return Status::Internal(StrFormat(
          "chain of variable %d is not connected over usable couplers "
          "(%d spanning edges for %d qubits)",
          var, edges, static_cast<int>(chain.size())));
    }
    tree_offsets[static_cast<size_t>(var) + 1] =
        static_cast<int32_t>(tree_edges.size());
  }
  if (layout_out != nullptr) {
    CaptureLayout(out.physical_, out.used_qubits_, out.compact_index_,
                  out.chains_, logical, placements, std::move(tree_offsets),
                  std::move(tree_edges), layout_out);
  }
  return out;
}

Result<EmbeddedQubo> EmbeddedQubo::ReweightFrom(
    const EmbeddedLayout& layout, const qubo::QuboProblem& logical,
    const EmbeddedQuboOptions& options) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.chain_strength_scale < 0.0) {
    return Status::InvalidArgument("chain_strength_scale must be >= 0");
  }
  if (options.faults != nullptr) {
    QMQO_RETURN_IF_ERROR(
        options.faults->MaybeFail("embed.compile", options.fault_key));
  }
  if (!layout.complete) {
    return Status::FailedPrecondition(
        "layout is incomplete (captured from a problem with zero-weight "
        "quadratic terms); embed from scratch instead");
  }
  if (logical.num_vars() != layout.num_logical_vars) {
    return Status::InvalidArgument(
        StrFormat("layout was captured for %d variables, problem has %d",
                  layout.num_logical_vars, logical.num_vars()));
  }
  const std::vector<qubo::Interaction>& terms = logical.interactions();
  if (terms.size() != layout.pattern_i.size()) {
    return Status::InvalidArgument(
        StrFormat("layout was captured for %zu interactions, problem has %zu",
                  layout.pattern_i.size(), terms.size()));
  }
  for (size_t t = 0; t < terms.size(); ++t) {
    if (terms[t].i != layout.pattern_i[t] ||
        terms[t].j != layout.pattern_j[t]) {
      return Status::InvalidArgument(StrFormat(
          "interaction pattern mismatch at term %zu: layout has (%d,%d), "
          "problem has (%d,%d)",
          t, layout.pattern_i[t], layout.pattern_j[t], terms[t].i,
          terms[t].j));
    }
    if (terms[t].weight == 0.0) {
      return Status::FailedPrecondition(StrFormat(
          "quadratic term (%d,%d) has zero weight; Create drops zero-weight "
          "terms, so a cached layout cannot replay it — embed from scratch",
          terms[t].i, terms[t].j));
    }
  }

  const int num_vars = layout.num_logical_vars;
  const size_t num_phys = layout.used_qubits.size();

  // Step-1 replay: chain shares of the linear weights. `0.0 + share` is
  // bitwise `share`, matching Create's AddLinear on a fresh problem.
  std::vector<double> linear(num_phys, 0.0);
  for (int var = 0; var < num_vars; ++var) {
    double w = logical.linear(var);
    if (w == 0.0) continue;
    const std::vector<int>& members = layout.chains[static_cast<size_t>(var)];
    double share = w / static_cast<double>(members.size());
    for (int member : members) {
      linear[static_cast<size_t>(member)] += share;
    }
  }

  // Choi chain strengths, replayed in Create's exact accumulation order:
  // members in chain order, incident cross couplers sorted by the other
  // endpoint (= the neighbor-id order of the step-2-only CSR rows).
  std::vector<double> strength(static_cast<size_t>(num_vars), 0.0);
  for (int var = 0; var < num_vars; ++var) {
    const std::vector<int>& members = layout.chains[static_cast<size_t>(var)];
    double sum_up = 0.0;    // sum of U_{0->1}
    double sum_down = 0.0;  // sum of U_{1->0}
    for (int member : members) {
      double v = linear[static_cast<size_t>(member)];
      double pos = 0.0;
      double neg = 0.0;
      for (int32_t e = layout.member_cross_offsets[static_cast<size_t>(member)];
           e < layout.member_cross_offsets[static_cast<size_t>(member) + 1];
           ++e) {
        double w =
            terms[static_cast<size_t>(layout.member_cross_terms
                                          [static_cast<size_t>(e)])].weight;
        if (w > 0.0) {
          pos += w;
        } else {
          neg += -w;
        }
      }
      sum_up += std::max(0.0, v + pos);
      sum_down += std::max(0.0, -v + neg);
    }
    double u = std::min(sum_up, sum_down);
    strength[static_cast<size_t>(var)] =
        std::max(options.epsilon,
                 options.chain_strength_scale * u + options.epsilon);
  }
  if (options.uniform_chain_strength) {
    double global = 0.0;
    for (double s : strength) global = std::max(global, s);
    std::fill(strength.begin(), strength.end(), global);
  }

  // Step-3 replay: each tree edge adds `strength` to both endpoints' linear
  // terms, in the recorded discovery order (equal addends per member, so
  // the per-member count determines the float result exactly).
  for (int var = 0; var < num_vars; ++var) {
    double s = strength[static_cast<size_t>(var)];
    for (int32_t e = layout.tree_offsets[static_cast<size_t>(var)];
         e < layout.tree_offsets[static_cast<size_t>(var) + 1]; ++e) {
      const EmbeddedLayout::TreeEdge& edge =
          layout.tree_edges[static_cast<size_t>(e)];
      linear[static_cast<size_t>(edge.a)] += s;
      linear[static_cast<size_t>(edge.b)] += s;
    }
  }

  // Quadratic weights by pattern slot: each physical coupler received
  // exactly one AddQuadratic in Create, so positional fill is bit-exact.
  std::vector<qubo::Interaction> interactions = layout.physical_pattern;
  for (size_t t = 0; t < terms.size(); ++t) {
    interactions[static_cast<size_t>(layout.cross_pattern_pos[t])].weight =
        terms[t].weight;
  }
  for (int var = 0; var < num_vars; ++var) {
    double w = -2.0 * strength[static_cast<size_t>(var)];
    for (int32_t e = layout.tree_offsets[static_cast<size_t>(var)];
         e < layout.tree_offsets[static_cast<size_t>(var) + 1]; ++e) {
      const EmbeddedLayout::TreeEdge& edge =
          layout.tree_edges[static_cast<size_t>(e)];
      interactions[static_cast<size_t>(edge.pattern_pos)].weight = w;
    }
  }
  qubo::CsrGraph csr;
  csr.row_offsets = layout.csr_row_offsets;
  csr.neighbor_ids = layout.csr_neighbor_ids;
  csr.weights.resize(layout.csr_neighbor_ids.size());
  for (size_t p = 0; p < interactions.size(); ++p) {
    csr.weights[static_cast<size_t>(layout.csr_slot_a[p])] =
        interactions[p].weight;
    csr.weights[static_cast<size_t>(layout.csr_slot_b[p])] =
        interactions[p].weight;
  }

  EmbeddedQubo out(logical,
                   qubo::QuboProblem::FromSorted(
                       static_cast<int>(num_phys), std::move(linear),
                       std::move(interactions), std::move(csr)));
  out.used_qubits_ = layout.used_qubits;
  out.compact_index_ = layout.compact_index;
  out.chains_ = layout.chains;
  out.chain_strength_ = std::move(strength);
  return out;
}

bool EmbeddedQubo::ChainsConsistent(
    const std::vector<uint8_t>& physical_x) const {
  for (const auto& members : chains_) {
    uint8_t first = physical_x[static_cast<size_t>(members.front())];
    for (int member : members) {
      if (physical_x[static_cast<size_t>(member)] != first) return false;
    }
  }
  return true;
}

double EmbeddedQubo::BrokenChainFraction(
    const std::vector<uint8_t>& physical_x) const {
  if (chains_.empty()) return 0.0;
  int broken = 0;
  for (const auto& members : chains_) {
    uint8_t first = physical_x[static_cast<size_t>(members.front())];
    for (int member : members) {
      if (physical_x[static_cast<size_t>(member)] != first) {
        ++broken;
        break;
      }
    }
  }
  return static_cast<double>(broken) / static_cast<double>(chains_.size());
}

Result<std::vector<uint8_t>> EmbeddedQubo::UnembedStrict(
    const std::vector<uint8_t>& physical_x) const {
  std::vector<uint8_t> logical_x(chains_.size(), 0);
  for (size_t var = 0; var < chains_.size(); ++var) {
    uint8_t first = physical_x[static_cast<size_t>(chains_[var].front())];
    for (int member : chains_[var]) {
      if (physical_x[static_cast<size_t>(member)] != first) {
        return Status::FailedPrecondition(
            StrFormat("chain of variable %zu is inconsistent", var));
      }
    }
    logical_x[var] = first;
  }
  return logical_x;
}

std::vector<uint8_t> EmbeddedQubo::Unembed(
    const std::vector<uint8_t>& physical_x) const {
  std::vector<uint8_t> logical_x(chains_.size(), 0);
  for (size_t var = 0; var < chains_.size(); ++var) {
    int ones = 0;
    for (int member : chains_[var]) {
      ones += physical_x[static_cast<size_t>(member)] ? 1 : 0;
    }
    logical_x[var] =
        2 * ones > static_cast<int>(chains_[var].size()) ? 1 : 0;
  }
  // Greedy descent on the logical energy repairs majority-vote errors on
  // broken chains. Terminates: each flip strictly lowers the energy.
  bool improved = true;
  int guard = 0;
  const int max_rounds = 100;
  while (improved && guard++ < max_rounds) {
    improved = false;
    for (int var = 0; var < logical_.num_vars(); ++var) {
      if (logical_.FlipDelta(logical_x, var) < 0.0) {
        logical_x[static_cast<size_t>(var)] ^= 1;
        improved = true;
      }
    }
  }
  return logical_x;
}

std::vector<uint8_t> EmbeddedQubo::EmbedAssignment(
    const std::vector<uint8_t>& logical_x) const {
  assert(logical_x.size() == chains_.size());
  std::vector<uint8_t> physical_x(used_qubits_.size(), 0);
  for (size_t var = 0; var < chains_.size(); ++var) {
    for (int member : chains_[var]) {
      physical_x[static_cast<size_t>(member)] = logical_x[var];
    }
  }
  return physical_x;
}

}  // namespace embedding
}  // namespace qmqo
