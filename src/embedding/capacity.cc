#include "embedding/capacity.h"

#include <algorithm>

#include "embedding/clustered.h"
#include "embedding/triad.h"

namespace qmqo {
namespace embedding {

int MaxQueriesForDimensions(int rows, int cols, int shore,
                            int plans_per_query) {
  if (plans_per_query <= 0 || rows <= 0 || cols <= 0 || shore <= 0) return 0;
  int cells = rows * cols;
  if (plans_per_query == 1) {
    return cells * 2 * shore;
  }
  if (plans_per_query <= shore + 1) {
    int per_cell = shore / (plans_per_query - 1);
    return cells * per_cell;
  }
  int block = TriadEmbedder::BlockSize(plans_per_query, shore);
  if (block > rows || block > cols) return 0;
  return (rows / block) * (cols / block);
}

std::vector<CapacityPoint> CapacityCurve(int rows, int cols, int shore,
                                         int max_plans) {
  std::vector<CapacityPoint> curve;
  for (int l = 1; l <= max_plans; ++l) {
    CapacityPoint point;
    point.plans_per_query = l;
    point.max_queries = MaxQueriesForDimensions(rows, cols, shore, l);
    curve.push_back(point);
  }
  return curve;
}

int MeasuredMaxQueries(const chimera::ChimeraGraph& graph,
                       int plans_per_query) {
  if (plans_per_query == 2) {
    return PairMatchingEmbedder::Capacity(graph);
  }
  // Feasibility is monotone in the query count, so binary search over the
  // clustered embedder.
  int lo = 0;  // feasible
  int hi = MaxQueriesForDimensions(graph.rows(), graph.cols(), graph.shore(),
                                   plans_per_query) +
           1;  // infeasible (or sentinel)
  auto feasible = [&](int n) {
    if (n == 0) return true;
    std::vector<int> sizes(static_cast<size_t>(n), plans_per_query);
    return ClusteredEmbedder::Embed(sizes, graph).ok();
  };
  while (lo + 1 < hi) {
    int mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace embedding
}  // namespace qmqo
