#ifndef QMQO_EMBEDDING_EMBEDDED_QUBO_H_
#define QMQO_EMBEDDING_EMBEDDED_QUBO_H_

/// \file embedded_qubo.h
/// The physical mapping (Section 5): compiling a logical QUBO plus an
/// embedding into the *physical* energy formula the annealer actually
/// minimizes.
///
/// Construction follows the paper's three steps:
///  1. each logical linear weight w_i is split evenly (w_i / |B|) over the
///     chain B representing variable i;
///  2. each logical quadratic weight w_ij is placed on one usable coupler
///     joining the two chains;
///  3. every intra-chain (spanning-tree) coupler receives the ferromagnetic
///     equality gadget  w_B * (b1 + b2 − 2 b1 b2),  which is 0 for equal
///     values and w_B for a "broken" chain.
///
/// The chain strength w_B is set per chain with Choi's parameter-setting
/// bound: with U_{0->1}(b) = v + sum_i max(v_i, 0) (and the analogue for
/// 1->0) over the qubit weight v and couplings v_i leaving the chain,
///   U = min( sum_b U_{1->0}(b),  sum_b U_{0->1}(b) ),  w_B = U + epsilon,
/// which guarantees that the physical ground state has consistent chains.
///
/// For any chain-consistent physical assignment, the physical energy equals
/// the logical energy exactly; tests verify both properties exhaustively on
/// small instances.
///
/// Physical variables use a *compact* index space covering only the qubits
/// actually used by chains, so annealing never wastes sweeps on idle qubits;
/// `qubit_of` / `compact_of` translate to hardware ids.

#include <vector>

#include "chimera/topology.h"
#include "embedding/embedding.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace util {
class FaultInjector;
}  // namespace util

namespace embedding {

/// Tunables of the physical mapping.
struct EmbeddedQuboOptions {
  /// Slack above the chain-strength lower bound (paper: 0.25).
  double epsilon = 0.25;
  /// Multiplies the Choi bound; 1.0 is the paper setting. Values < 1 weaken
  /// chains (ablation: broken chains), large values blunt the energy signal.
  double chain_strength_scale = 1.0;
  /// Use one global strength (the max over chains) instead of per-chain
  /// strengths (ablation).
  bool uniform_chain_strength = false;
  /// Fault injection (never owned; null = no faults). Site
  /// "embed.compile" (key: `fault_key`) fails `Create` with a typed error —
  /// the hook the chaos suite uses to exercise preprocessing failures.
  const util::FaultInjector* faults = nullptr;
  /// Key passed to the "embed.compile" site; orchestrators set it to the
  /// attempt number so fail-first-N schedules apply across retries.
  uint64_t fault_key = 0;
};

/// The weight-independent part of a compiled embedding: everything
/// `EmbeddedQubo::Create` derives from the *structure* of (logical pattern,
/// chains, hardware graph) but not from the coefficients. A layout captured
/// once can be re-weighted per request (`EmbeddedQubo::ReweightFrom`),
/// skipping verification, coupler placement, and spanning-tree search — the
/// paper's gauge/chain-strength machinery already separates structure from
/// coefficients, so the replay is bit-identical to a fresh compile.
///
/// Immutable after capture; safe to share across threads by const
/// reference (the embedding cache hands out shared_ptrs).
struct EmbeddedLayout {
  /// One spanning-tree coupler inside a chain, as compact indices, plus its
  /// slot in the sorted physical interaction pattern.
  struct TreeEdge {
    int a = -1;
    int b = -1;
    int32_t pattern_pos = -1;
  };

  // ---- structure identity (checked on reuse) ----
  int num_logical_vars = 0;
  /// (i, j) of every logical interaction, in `interactions()` order.
  std::vector<qubo::VarId> pattern_i;
  std::vector<qubo::VarId> pattern_j;

  // ---- the embedding itself ----
  std::vector<chimera::QubitId> used_qubits;  ///< compact -> hardware id
  std::vector<int> compact_index;             ///< hardware id -> compact
  std::vector<std::vector<int>> chains;       ///< per var, compact indices

  // ---- replay script for the coefficient-dependent parts ----
  /// Cross-chain coupler of logical term t, as compact indices (a in
  /// chain(pattern_i[t]), b in chain(pattern_j[t])), plus its slot in the
  /// sorted physical pattern. Valid only for layouts captured with every
  /// term weight nonzero (`complete`).
  std::vector<int> cross_a;
  std::vector<int> cross_b;
  std::vector<int32_t> cross_pattern_pos;
  /// Spanning-tree edges of chain `var` live in
  /// tree_edges[tree_offsets[var] .. tree_offsets[var + 1]), in the BFS
  /// discovery order Create added them (the accumulation order matters for
  /// bit-identity of the linear terms).
  std::vector<int32_t> tree_offsets;
  std::vector<TreeEdge> tree_edges;
  /// Incident tree-edge count per compact index (each contributes one
  /// `+= strength` to that qubit's linear term).
  std::vector<int32_t> member_tree_count;
  /// Cross-chain placements incident to each compact index, sorted by the
  /// other endpoint's compact id — the exact iteration order of
  /// `physical().neighbors()` during Create's Choi chain-strength sums.
  /// Values are logical term indices (weight = that term's weight).
  std::vector<int32_t> member_cross_offsets;
  std::vector<int32_t> member_cross_terms;

  // ---- physical pattern skeleton ----
  /// Sorted (a < b lexicographic) physical interaction pattern; weights in
  /// these Interaction entries are zero and filled per re-weight.
  std::vector<qubo::Interaction> physical_pattern;
  /// CSR skeleton of the pattern (row offsets + neighbor ids, no weights).
  std::vector<int32_t> csr_row_offsets;
  std::vector<qubo::VarId> csr_neighbor_ids;
  /// The two CSR weight slots of pattern entry t (row a and row b copies).
  std::vector<int32_t> csr_slot_a;
  std::vector<int32_t> csr_slot_b;

  /// True when every logical term had nonzero weight at capture, i.e. every
  /// pattern slot has a recorded placement. Incomplete layouts cannot be
  /// re-weighted (Create skips zero-weight terms, so the replay script
  /// would not cover the pattern).
  bool complete = false;

  int num_physical_vars() const { return static_cast<int>(used_qubits.size()); }
};

/// A compiled physical QUBO with chain bookkeeping.
class EmbeddedQubo {
 public:
  /// Compiles `logical` onto the hardware through `embedding`. Fails when
  /// the embedding does not support the problem.
  ///
  /// When `layout_out` is non-null and compilation succeeds, the
  /// weight-independent layout is captured into it for later
  /// `ReweightFrom` replays (see `EmbeddedLayout::complete`).
  static Result<EmbeddedQubo> Create(
      const qubo::QuboProblem& logical, const Embedding& embedding,
      const chimera::ChimeraGraph& graph,
      const EmbeddedQuboOptions& options = EmbeddedQuboOptions(),
      EmbeddedLayout* layout_out = nullptr);

  /// Re-compiles a captured layout against the (new) coefficients of
  /// `logical`, producing an EmbeddedQubo bit-identical to what
  /// `Create(logical, ...)` would build for the same structure — without
  /// touching the hardware graph or re-running verification, placement, or
  /// spanning-tree search.
  ///
  /// Requirements: `logical` has the same variable count and interaction
  /// pattern the layout was captured from, every quadratic weight is
  /// nonzero, and the layout is `complete`. Honors the same
  /// "embed.compile" fault-injection site as `Create`.
  static Result<EmbeddedQubo> ReweightFrom(
      const EmbeddedLayout& layout, const qubo::QuboProblem& logical,
      const EmbeddedQuboOptions& options = EmbeddedQuboOptions());

  /// The physical energy formula over compact variable indices.
  const qubo::QuboProblem& physical() const { return physical_; }

  int num_physical_vars() const { return physical_.num_vars(); }
  int num_logical_vars() const { return static_cast<int>(chains_.size()); }

  /// Hardware qubit backing compact variable `i`.
  chimera::QubitId qubit_of(int compact_index) const {
    return used_qubits_[static_cast<size_t>(compact_index)];
  }

  /// Compact index of hardware qubit `q`, or -1 when unused.
  int compact_of(chimera::QubitId q) const {
    return compact_index_[static_cast<size_t>(q)];
  }

  /// Chain strength w_B chosen for logical variable `var`.
  double chain_strength(int var) const {
    return chain_strength_[static_cast<size_t>(var)];
  }

  /// Chain members of logical variable `var`, as compact indices.
  const std::vector<int>& chain_members(int var) const {
    return chains_[static_cast<size_t>(var)];
  }

  /// True when every chain is assigned a single consistent value.
  bool ChainsConsistent(const std::vector<uint8_t>& physical_x) const;

  /// Fraction of chains with inconsistent values (diagnostic).
  double BrokenChainFraction(const std::vector<uint8_t>& physical_x) const;

  /// Strict read-out: fails when any chain is inconsistent.
  Result<std::vector<uint8_t>> UnembedStrict(
      const std::vector<uint8_t>& physical_x) const;

  /// Total read-out: majority vote per chain (ties resolved toward 0),
  /// followed by one greedy-descent pass on the logical energy — the
  /// standard post-processing for broken chains.
  std::vector<uint8_t> Unembed(const std::vector<uint8_t>& physical_x) const;

  /// Lifts a logical assignment to the consistent physical assignment.
  std::vector<uint8_t> EmbedAssignment(
      const std::vector<uint8_t>& logical_x) const;

 private:
  EmbeddedQubo(qubo::QuboProblem logical, qubo::QuboProblem physical)
      : logical_(std::move(logical)), physical_(std::move(physical)) {}

  // The logical problem is copied so unembedding post-processing cannot
  // dangle if the caller's problem goes away.
  qubo::QuboProblem logical_;
  qubo::QuboProblem physical_;
  std::vector<chimera::QubitId> used_qubits_;
  std::vector<int> compact_index_;
  /// chains_[var] = compact indices of the chain of logical variable var.
  std::vector<std::vector<int>> chains_;
  std::vector<double> chain_strength_;
};

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_EMBEDDED_QUBO_H_
