#ifndef QMQO_EMBEDDING_EMBEDDED_QUBO_H_
#define QMQO_EMBEDDING_EMBEDDED_QUBO_H_

/// \file embedded_qubo.h
/// The physical mapping (Section 5): compiling a logical QUBO plus an
/// embedding into the *physical* energy formula the annealer actually
/// minimizes.
///
/// Construction follows the paper's three steps:
///  1. each logical linear weight w_i is split evenly (w_i / |B|) over the
///     chain B representing variable i;
///  2. each logical quadratic weight w_ij is placed on one usable coupler
///     joining the two chains;
///  3. every intra-chain (spanning-tree) coupler receives the ferromagnetic
///     equality gadget  w_B * (b1 + b2 − 2 b1 b2),  which is 0 for equal
///     values and w_B for a "broken" chain.
///
/// The chain strength w_B is set per chain with Choi's parameter-setting
/// bound: with U_{0->1}(b) = v + sum_i max(v_i, 0) (and the analogue for
/// 1->0) over the qubit weight v and couplings v_i leaving the chain,
///   U = min( sum_b U_{1->0}(b),  sum_b U_{0->1}(b) ),  w_B = U + epsilon,
/// which guarantees that the physical ground state has consistent chains.
///
/// For any chain-consistent physical assignment, the physical energy equals
/// the logical energy exactly; tests verify both properties exhaustively on
/// small instances.
///
/// Physical variables use a *compact* index space covering only the qubits
/// actually used by chains, so annealing never wastes sweeps on idle qubits;
/// `qubit_of` / `compact_of` translate to hardware ids.

#include <vector>

#include "chimera/topology.h"
#include "embedding/embedding.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace util {
class FaultInjector;
}  // namespace util

namespace embedding {

/// Tunables of the physical mapping.
struct EmbeddedQuboOptions {
  /// Slack above the chain-strength lower bound (paper: 0.25).
  double epsilon = 0.25;
  /// Multiplies the Choi bound; 1.0 is the paper setting. Values < 1 weaken
  /// chains (ablation: broken chains), large values blunt the energy signal.
  double chain_strength_scale = 1.0;
  /// Use one global strength (the max over chains) instead of per-chain
  /// strengths (ablation).
  bool uniform_chain_strength = false;
  /// Fault injection (never owned; null = no faults). Site
  /// "embed.compile" (key: `fault_key`) fails `Create` with a typed error —
  /// the hook the chaos suite uses to exercise preprocessing failures.
  const util::FaultInjector* faults = nullptr;
  /// Key passed to the "embed.compile" site; orchestrators set it to the
  /// attempt number so fail-first-N schedules apply across retries.
  uint64_t fault_key = 0;
};

/// A compiled physical QUBO with chain bookkeeping.
class EmbeddedQubo {
 public:
  /// Compiles `logical` onto the hardware through `embedding`. Fails when
  /// the embedding does not support the problem.
  static Result<EmbeddedQubo> Create(
      const qubo::QuboProblem& logical, const Embedding& embedding,
      const chimera::ChimeraGraph& graph,
      const EmbeddedQuboOptions& options = EmbeddedQuboOptions());

  /// The physical energy formula over compact variable indices.
  const qubo::QuboProblem& physical() const { return physical_; }

  int num_physical_vars() const { return physical_.num_vars(); }
  int num_logical_vars() const { return static_cast<int>(chains_.size()); }

  /// Hardware qubit backing compact variable `i`.
  chimera::QubitId qubit_of(int compact_index) const {
    return used_qubits_[static_cast<size_t>(compact_index)];
  }

  /// Compact index of hardware qubit `q`, or -1 when unused.
  int compact_of(chimera::QubitId q) const {
    return compact_index_[static_cast<size_t>(q)];
  }

  /// Chain strength w_B chosen for logical variable `var`.
  double chain_strength(int var) const {
    return chain_strength_[static_cast<size_t>(var)];
  }

  /// Chain members of logical variable `var`, as compact indices.
  const std::vector<int>& chain_members(int var) const {
    return chains_[static_cast<size_t>(var)];
  }

  /// True when every chain is assigned a single consistent value.
  bool ChainsConsistent(const std::vector<uint8_t>& physical_x) const;

  /// Fraction of chains with inconsistent values (diagnostic).
  double BrokenChainFraction(const std::vector<uint8_t>& physical_x) const;

  /// Strict read-out: fails when any chain is inconsistent.
  Result<std::vector<uint8_t>> UnembedStrict(
      const std::vector<uint8_t>& physical_x) const;

  /// Total read-out: majority vote per chain (ties resolved toward 0),
  /// followed by one greedy-descent pass on the logical energy — the
  /// standard post-processing for broken chains.
  std::vector<uint8_t> Unembed(const std::vector<uint8_t>& physical_x) const;

  /// Lifts a logical assignment to the consistent physical assignment.
  std::vector<uint8_t> EmbedAssignment(
      const std::vector<uint8_t>& logical_x) const;

 private:
  EmbeddedQubo(qubo::QuboProblem logical, qubo::QuboProblem physical)
      : logical_(std::move(logical)), physical_(std::move(physical)) {}

  // The logical problem is copied so unembedding post-processing cannot
  // dangle if the caller's problem goes away.
  qubo::QuboProblem logical_;
  qubo::QuboProblem physical_;
  std::vector<chimera::QubitId> used_qubits_;
  std::vector<int> compact_index_;
  /// chains_[var] = compact indices of the chain of logical variable var.
  std::vector<std::vector<int>> chains_;
  std::vector<double> chain_strength_;
};

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_EMBEDDED_QUBO_H_
