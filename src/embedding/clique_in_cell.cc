#include "embedding/clique_in_cell.h"

#include "util/string_util.h"

namespace qmqo {
namespace embedding {

Result<std::vector<Chain>> CliqueInCellEmbedder::EmbedInCell(
    int k, int row, int col, const chimera::ChimeraGraph& graph) {
  if (k < 1 || k > MaxK(graph.shore())) {
    return Status::InvalidArgument(
        StrFormat("K_%d does not fit in one cell (max K_%d)", k,
                  MaxK(graph.shore())));
  }
  if (row < 0 || row >= graph.rows() || col < 0 || col >= graph.cols()) {
    return Status::InvalidArgument(
        StrFormat("cell (%d,%d) outside the %dx%d grid", row, col,
                  graph.rows(), graph.cols()));
  }
  // Working shore indices of this cell.
  std::vector<int> left;
  std::vector<int> right;
  for (int i = 0; i < graph.shore(); ++i) {
    if (graph.IsWorking(graph.IdOf(row, col, 0, i))) left.push_back(i);
    if (graph.IsWorking(graph.IdOf(row, col, 1, i))) right.push_back(i);
  }

  std::vector<Chain> chains;
  if (k == 1) {
    if (left.empty() && right.empty()) {
      return Status::ResourceExhausted(
          StrFormat("cell (%d,%d) has no working qubit", row, col));
    }
    Chain chain;
    chain.qubits.push_back(left.empty() ? graph.IdOf(row, col, 1, right[0])
                                        : graph.IdOf(row, col, 0, left[0]));
    chains.push_back(std::move(chain));
    return chains;
  }
  // Roles: one single-qubit chain per shore, plus k-2 two-qubit
  // (left, right) pair chains. Any pairing works: K_{L,L} couples every
  // left to every right.
  int need = k - 1;
  if (static_cast<int>(left.size()) < need ||
      static_cast<int>(right.size()) < need) {
    return Status::ResourceExhausted(StrFormat(
        "cell (%d,%d) has %zu/%zu working left/right qubits; K_%d needs "
        "%d per shore",
        row, col, left.size(), right.size(), k, need));
  }
  {
    Chain chain;
    chain.qubits.push_back(graph.IdOf(row, col, 0, left[0]));
    chains.push_back(std::move(chain));
  }
  {
    Chain chain;
    chain.qubits.push_back(graph.IdOf(row, col, 1, right[0]));
    chains.push_back(std::move(chain));
  }
  for (int i = 0; i < k - 2; ++i) {
    Chain chain;
    chain.qubits.push_back(
        graph.IdOf(row, col, 0, left[static_cast<size_t>(1 + i)]));
    chain.qubits.push_back(
        graph.IdOf(row, col, 1, right[static_cast<size_t>(1 + i)]));
    chains.push_back(std::move(chain));
  }
  return chains;
}

}  // namespace embedding
}  // namespace qmqo
