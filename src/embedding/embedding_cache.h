#ifndef QMQO_EMBEDDING_EMBEDDING_CACHE_H_
#define QMQO_EMBEDDING_EMBEDDING_CACHE_H_

/// \file embedding_cache.h
/// A structure-keyed cache of embedding layouts.
///
/// Embedding is the expensive, structure-dependent stage of the pipeline,
/// and production MQO traffic repeats query-graph shapes endlessly. The
/// paper's gauge/chain-strength machinery already separates QUBO
/// *structure* from *coefficients*, so a compiled embedding can be reused
/// across requests whose logical problems share an interaction pattern:
/// the cache keys `EmbeddedLayout`s by a canonical 128-bit hash of
///
///   * the logical QUBO structure (variable count + CSR adjacency pattern,
///     weights excluded),
///   * the chains of the embedding, and
///   * the hardware graph (grid dimensions, shore, defect set),
///
/// and serves hits through `EmbeddedQubo::ReweightFrom`, which replays the
/// coefficient-dependent arithmetic in compile order — the resulting
/// physical problem, and therefore every downstream sample, is
/// bit-identical to a fresh `EmbeddedQubo::Create` at any thread count.
///
/// Entries are evicted least-recently-used beyond `max_entries`. All
/// methods are thread-safe: lookups and inserts take one mutex, the cold
/// compile runs outside it, and racing inserts of the same structure are
/// benign (equal structures replay to bit-identical problems). Counters
/// (hits / misses / evictions / bypasses) are exposed for service stats.
///
/// Requests whose logical problem carries a zero-weight quadratic term
/// bypass the cache entirely (counted in `bypasses`): `Create` drops
/// zero-weight terms, which makes the compiled coupler set depend on the
/// weights, not just the structure.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "chimera/topology.h"
#include "embedding/embedded_qubo.h"
#include "embedding/embedding.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace embedding {

/// Monotonic counters of one cache instance.
struct EmbeddingCacheStats {
  uint64_t hits = 0;        ///< served by ReweightFrom from a cached layout
  uint64_t misses = 0;      ///< cold Create runs (layout captured on success)
  uint64_t evictions = 0;   ///< entries dropped by the LRU bound
  uint64_t bypasses = 0;    ///< uncacheable requests (zero-weight terms)
};

class EmbeddingCache {
 public:
  struct Options {
    /// Maximum cached layouts; the least recently used entry is evicted
    /// beyond this. Must be >= 1.
    size_t max_entries = 64;
  };

  EmbeddingCache() : max_entries_(Options().max_entries) {}
  explicit EmbeddingCache(const Options& options)
      : max_entries_(options.max_entries > 0 ? options.max_entries : 1) {}

  EmbeddingCache(const EmbeddingCache&) = delete;
  EmbeddingCache& operator=(const EmbeddingCache&) = delete;

  /// Compiles `logical` onto the hardware through `embedding`, reusing a
  /// cached layout when one matches the request's structure. Results are
  /// bit-identical either way. `was_hit` (optional) reports whether the
  /// fast path served the request. Fault injection behaves exactly as in
  /// `EmbeddedQubo::Create`: the "embed.compile" site fires once per call
  /// on both paths.
  Result<EmbeddedQubo> GetOrCreate(
      const qubo::QuboProblem& logical, const Embedding& embedding,
      const chimera::ChimeraGraph& graph,
      const EmbeddedQuboOptions& options = EmbeddedQuboOptions(),
      bool* was_hit = nullptr);

  /// Snapshot of the counters (consistent enough for stats endpoints; each
  /// counter is individually atomic).
  EmbeddingCacheStats stats() const;

  /// Cached layouts currently held.
  size_t size() const;

  /// Drops every cached layout; counters are kept.
  void Clear();

 private:
  struct CacheKey {
    uint64_t hash_a = 0;
    uint64_t hash_b = 0;
    // Cheap plaintext check fields narrowing the collision surface.
    int num_vars = 0;
    int64_t num_interactions = 0;
    int64_t total_chain_qubits = 0;

    bool operator==(const CacheKey& other) const {
      return hash_a == other.hash_a && hash_b == other.hash_b &&
             num_vars == other.num_vars &&
             num_interactions == other.num_interactions &&
             total_chain_qubits == other.total_chain_qubits;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& key) const {
      return static_cast<size_t>(key.hash_a);
    }
  };
  struct Entry {
    std::shared_ptr<const EmbeddedLayout> layout;
    std::list<CacheKey>::iterator lru_it;
  };

  static CacheKey KeyOf(const qubo::QuboProblem& logical,
                        const Embedding& embedding,
                        const chimera::ChimeraGraph& graph);
  /// Full structural comparison between a cached layout and the request —
  /// the belt to the hash's suspenders (chains and interaction pattern are
  /// compared element-wise).
  static bool LayoutMatches(const EmbeddedLayout& layout,
                            const qubo::QuboProblem& logical,
                            const Embedding& embedding);

  const size_t max_entries_;

  mutable std::mutex mu_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> entries_;
  /// Most recently used first.
  std::list<CacheKey> lru_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> bypasses_{0};
};

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_EMBEDDING_CACHE_H_
