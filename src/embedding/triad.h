#ifndef QMQO_EMBEDDING_TRIAD_H_
#define QMQO_EMBEDDING_TRIAD_H_

/// \file triad.h
/// Choi's TRIAD pattern (Figure 2 of the paper): a complete-graph minor on
/// the Chimera topology, so *arbitrary* QUBO problems of bounded size can be
/// embedded.
///
/// For a clique K_n with shore size L, the pattern occupies an M x M block
/// of cells, M = ceil(n / L). The chain of variable v = L*a + b is L-shaped:
///
///   horizontal leg: right-shore qubit b of cells (a, 0..a)
///   vertical leg:   left-shore qubit b of cells (a..M-1, a)
///
/// joined in the diagonal cell (a, a) by an intra-cell coupler. Chains of
/// variables with block rows a < a' meet in cell (a', a) through an
/// intra-cell coupler, so all pairs are connected. Each chain has exactly
/// M + 1 qubits, giving the Theta(n^2 / L) qubit growth of Theorem 3.
///
/// Chains that contain broken qubits are unusable (Figure 2d); the embedder
/// searches all placements of the M x M block and uses any `n` intact
/// chains, failing only when no placement offers enough.

#include "embedding/embedding.h"

namespace qmqo {
namespace embedding {

/// Options for `TriadEmbedder::Embed`.
struct TriadOptions {
  /// Fixed placement of the block's top-left cell; -1 searches all offsets.
  int origin_row = -1;
  int origin_col = -1;
};

/// Embeds complete graphs via the TRIAD pattern.
class TriadEmbedder {
 public:
  /// Embeds K_`num_vars`. Fails when no placement yields enough intact
  /// chains.
  static Result<Embedding> Embed(int num_vars,
                                 const chimera::ChimeraGraph& graph,
                                 const TriadOptions& options = TriadOptions());

  /// Number of cells per side of the block for K_n.
  static int BlockSize(int num_vars, int shore);

  /// Qubits consumed by an intact K_n TRIAD: n * (BlockSize + 1).
  static int QubitsNeeded(int num_vars, int shore);

  /// Largest clique embeddable on an intact rows x cols x shore graph.
  static int MaxCliqueSize(int rows, int cols, int shore);
};

}  // namespace embedding
}  // namespace qmqo

#endif  // QMQO_EMBEDDING_TRIAD_H_
