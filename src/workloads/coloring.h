#ifndef QMQO_WORKLOADS_COLORING_H_
#define QMQO_WORKLOADS_COLORING_H_

/// \file coloring.h
/// Graph k-coloring as a one-hot penalty QUBO.
///
/// k binary variables per vertex (x_{v,c} = 1 <=> v takes color c; the
/// QUBO variable id is v*k + c):
///
///   minimize  A * sum_v (1 - sum_c x_{v,c})^2
///           + B * sum_{(u,v) in E} sum_c x_{u,c} x_{v,c}
///
/// The first penalty enforces exactly-one-color per vertex, the second
/// penalizes same-colored edges. Expanding the square leaves a constant
/// A*n, tracked as `energy_offset()`, so a proper k-coloring has
/// E(x) + offset == 0 — the generator-planted optimum of a k-colorable
/// instance. Decoding repairs arbitrary bitstrings by assigning each
/// vertex, in id order, the least-conflicting color among its already
/// repaired neighbors (lowest color on ties).

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace qmqo {
namespace workloads {

/// Penalty weights of the coloring QUBO. The defaults (A = B = 1) already
/// make zero-conflict colorings exactly the zero-energy states.
struct ColoringOptions {
  double one_hot_penalty = 1.0;   ///< A
  double conflict_penalty = 1.0;  ///< B
};

class ColoringWorkload : public Workload {
 public:
  /// Formulates `graph` with `num_colors` colors. The planted optimum is
  /// zero conflicts (the graph must be k-colorable by construction).
  static Result<std::shared_ptr<ColoringWorkload>> Create(
      Graph graph, int num_colors,
      const ColoringOptions& options = ColoringOptions());

  /// Convenience: generates a k-partite planted instance (see
  /// `KColorableGraph`) and formulates it.
  static Result<std::shared_ptr<ColoringWorkload>> MakePlanted(
      int num_nodes, int num_colors, double edge_prob, uint64_t seed,
      const ColoringOptions& options = ColoringOptions());

  WorkloadKind kind() const override { return WorkloadKind::kGraphColoring; }
  std::string name() const override;
  const Graph& graph() const override { return graph_; }
  const qubo::QuboProblem& qubo() const override { return qubo_; }
  /// The constant A*n from expanding the one-hot squares.
  double energy_offset() const override {
    return options_.one_hot_penalty * graph_.num_nodes();
  }
  /// Zero conflicting edges (the instance is k-colorable by construction).
  double known_optimum() const override { return 0.0; }
  ObjectiveSense sense() const override { return ObjectiveSense::kMinimize; }
  WorkloadSolution Decode(const std::vector<uint8_t>& x) const override;
  Status ValidateFeasible(const WorkloadSolution& solution) const override;

  int num_colors() const { return num_colors_; }

  /// Number of edges whose endpoints share a color.
  double ConflictCount(const std::vector<int>& color) const;

 private:
  ColoringWorkload(Graph graph, int num_colors,
                   const ColoringOptions& options);

  Graph graph_;
  int num_colors_;
  ColoringOptions options_;
  qubo::QuboProblem qubo_;
};

}  // namespace workloads
}  // namespace qmqo

#endif  // QMQO_WORKLOADS_COLORING_H_
